#!/usr/bin/env python3
"""Validate a BENCH_*.json perf-trajectory record against its schema.

Schema source of truth: src/telemetry/bench_report.hpp. Used by the CI
bench-smoke job; exits nonzero with a per-violation message on failure.

Validates any BENCH_*.json record sharing that schema, including
BENCH_scale.json (which carries the optional "index" section) and
BENCH_search.json (which carries the optional "cache" section).

Records carrying a top-level "kernels" key (BENCH_kernels.json, written
by bench_micro_kernels) use the kernel schema instead: "bench",
"git_rev" and "timestamp" as above, a non-empty "kernels" list of
{"name", "ns_per_op", "ops"} entries with unique names, an optional
"smoke" bool, optional "simd_isa" (str) / "simd_lanes" (int >= 1)
fields recording which SIMD path the run took, an optional
"twins_equal" bool (the scalar-vs-SIMD twin gate; must be true when
present), and an optional "bnb" section with the sequential-vs-
parallel branch-and-bound comparison (its "equal" flag is the
determinism gate and must be true) plus the optional multi-pair batch
timings "batch_ms" / "batch_speedup".

With --baseline OLD.json, kernels present in both records are compared
by ns_per_op: a regression above 15% prints a WARNING, above 50% it is
a validation failure. --warn-only downgrades baseline failures to
warnings (for CI runners whose hardware differs from the baseline's).

Usage: validate_bench_json.py [--baseline OLD.json] [--warn-only] \
           BENCH_search.json
"""
import json
import sys

# Baseline ns/op regression thresholds (fractions of the old figure).
WARN_REGRESSION = 0.15
FAIL_REGRESSION = 0.50

TIERS = ("invariant", "branch", "heuristic", "ot", "exact", "cache",
         "index")


def err(msg, problems):
    problems.append(msg)


def require(doc, key, kind, problems):
    if key not in doc:
        err(f"missing key {key!r}", problems)
        return None
    val = doc[key]
    # bool is an int subclass in Python; reject it explicitly.
    if isinstance(val, bool) or not isinstance(val, kind):
        err(f"key {key!r}: expected {kind}, got {type(val).__name__}",
            problems)
        return None
    return val


def validate_header(doc, problems):
    """The keys every BENCH_*.json record carries."""
    bench = require(doc, "bench", str, problems)
    if bench is not None and not bench:
        err("bench name is empty", problems)

    rev = require(doc, "git_rev", str, problems)
    if rev is not None and rev != "unknown":
        if len(rev) not in (40, 64) or any(
                c not in "0123456789abcdef" for c in rev):
            err(f"git_rev {rev!r} is neither a hex SHA nor 'unknown'",
                problems)

    ts = require(doc, "timestamp", int, problems)
    if ts is not None and ts <= 0:
        err(f"timestamp {ts} is not positive", problems)


def validate_kernels(doc, problems):
    """BENCH_kernels.json: per-kernel ns/op plus the bnb comparison."""
    validate_header(doc, problems)

    if "smoke" in doc and not isinstance(doc["smoke"], bool):
        err(f"smoke: expected bool, got {type(doc['smoke']).__name__}",
            problems)

    if "simd_isa" in doc:
        isa = require(doc, "simd_isa", str, problems)
        if isa is not None and isa not in ("avx2", "sse2", "neon",
                                           "scalar"):
            err(f"simd_isa {isa!r} is not a known ISA", problems)
    if "simd_lanes" in doc:
        lanes = require(doc, "simd_lanes", int, problems)
        if lanes is not None and lanes < 1:
            err(f"simd_lanes {lanes} is not positive", problems)
    if "twins_equal" in doc:
        if not isinstance(doc["twins_equal"], bool):
            err("key 'twins_equal': expected bool, got "
                f"{type(doc['twins_equal']).__name__}", problems)
        # Like bnb.equal: a record whose scalar and SIMD kernels disagree
        # is not a valid record.
        elif doc["twins_equal"] is False:
            err("twins_equal is false: scalar and SIMD kernels disagreed",
                problems)

    kernels = require(doc, "kernels", list, problems)
    if kernels is not None:
        if not kernels:
            err("kernels list is empty", problems)
        names = set()
        for i, entry in enumerate(kernels):
            if not isinstance(entry, dict):
                err(f"kernels[{i}] is not an object", problems)
                continue
            name = require(entry, "name", str, problems)
            if name is not None:
                if not name:
                    err(f"kernels[{i}].name is empty", problems)
                elif name in names:
                    err(f"kernels[{i}].name {name!r} is duplicated",
                        problems)
                names.add(name)
            ns = require(entry, "ns_per_op", (int, float), problems)
            if ns is not None and ns <= 0:
                err(f"kernels[{i}].ns_per_op {ns} is not positive",
                    problems)
            ops = require(entry, "ops", int, problems)
            if ops is not None and ops <= 0:
                err(f"kernels[{i}].ops {ops} is not positive", problems)
            for extra in sorted(set(entry) - {"name", "ns_per_op", "ops"}):
                err(f"kernels[{i}] has unknown key {extra!r}", problems)

    if "bnb" in doc:
        bnb = require(doc, "bnb", dict, problems)
        if bnb is not None:
            pairs = require(bnb, "pairs", int, problems)
            if pairs is not None and pairs <= 0:
                err(f"bnb.pairs {pairs} is not positive", problems)
            for key in ("seq_ms", "par_ms", "speedup"):
                val = require(bnb, key, (int, float), problems)
                if val is not None and val < 0:
                    err(f"bnb.{key} {val} is negative", problems)
            for key in ("batch_ms", "batch_speedup"):
                if key not in bnb:
                    continue
                val = require(bnb, key, (int, float), problems)
                if val is not None and val < 0:
                    err(f"bnb.{key} {val} is negative", problems)
            threads = require(bnb, "pool_threads", int, problems)
            if threads is not None and threads <= 0:
                err(f"bnb.pool_threads {threads} is not positive", problems)
            # `require` rejects bools (they are int subclasses), so the
            # one genuinely-boolean key is checked directly.
            if "equal" not in bnb:
                err("missing key 'equal'", problems)
            elif not isinstance(bnb["equal"], bool):
                err("key 'equal': expected bool, got "
                    f"{type(bnb['equal']).__name__}", problems)
            # The determinism gate is part of the schema: a record whose
            # parallel solver disagreed with itself is not a valid record.
            elif bnb["equal"] is False:
                err("bnb.equal is false: parallel branch-and-bound was "
                    "not deterministic", problems)
            for extra in sorted(set(bnb) - {"pairs", "seq_ms", "par_ms",
                                            "speedup", "batch_ms",
                                            "batch_speedup", "equal",
                                            "pool_threads"}):
                err(f"bnb has unknown key {extra!r}", problems)


def validate(doc, problems):
    if not isinstance(doc, dict):
        err("top level is not a JSON object", problems)
        return

    if "kernels" in doc:
        validate_kernels(doc, problems)
        return

    validate_header(doc, problems)

    for key in ("threads", "corpus_size", "num_queries"):
        val = require(doc, key, int, problems)
        if val is not None and val <= 0:
            err(f"{key} {val} is not positive", problems)

    qps = require(doc, "qps", (int, float), problems)
    if qps is not None and qps <= 0:
        err(f"qps {qps} is not positive", problems)

    lat = require(doc, "latency_ms", dict, problems)
    if lat is not None:
        for p in ("p50", "p95", "p99"):
            val = require(lat, p, (int, float), problems)
            if val is not None and val < 0:
                err(f"latency_ms.{p} {val} is negative", problems)
        if all(isinstance(lat.get(p), (int, float)) for p in
               ("p50", "p95", "p99")):
            if not lat["p50"] <= lat["p95"] <= lat["p99"]:
                err("latency percentiles are not monotone "
                    f"(p50={lat['p50']}, p95={lat['p95']}, "
                    f"p99={lat['p99']})", problems)

    fractions = require(doc, "tier_fractions", dict, problems)
    if fractions is not None:
        total = 0.0
        complete = True
        for tier in TIERS:
            val = require(fractions, tier, (int, float), problems)
            if val is None:
                complete = False
            elif not 0.0 <= val <= 1.0:
                err(f"tier_fractions.{tier} {val} outside [0, 1]", problems)
            else:
                total += val
        for extra in sorted(set(fractions) - set(TIERS)):
            err(f"tier_fractions has unknown tier {extra!r}", problems)
        # Every candidate pair is settled by exactly one tier, so the
        # fractions partition 1 (up to the 4-decimal serialization).
        if complete and abs(total - 1.0) > 0.01:
            err(f"tier_fractions sum to {total:.4f}, expected 1", problems)

    rate = require(doc, "cache_hit_rate", (int, float), problems)
    if rate is not None and not 0.0 <= rate <= 1.0:
        err(f"cache_hit_rate {rate} outside [0, 1]", problems)

    # Optional sections: absent is fine, present means fully valid.
    if "cache" in doc:
        cache = require(doc, "cache", dict, problems)
        if cache is not None:
            for key in ("repeat_ratio", "warm_hit_rate"):
                val = require(cache, key, (int, float), problems)
                if val is not None and not 0.0 <= val <= 1.0:
                    err(f"cache.{key} {val} outside [0, 1]", problems)
            lookups = require(cache, "warm_lookups", int, problems)
            if lookups is not None and lookups < 0:
                err(f"cache.warm_lookups {lookups} is negative", problems)
            for extra in sorted(set(cache) - {"repeat_ratio",
                                              "warm_hit_rate",
                                              "warm_lookups"}):
                err(f"cache has unknown key {extra!r}", problems)

    if "index" in doc:
        index = require(doc, "index", dict, problems)
        if index is not None:
            keys = ("candidate_fraction", "partition_prune_fraction",
                    "label_prune_fraction", "vptree_prune_fraction")
            for key in keys:
                val = require(index, key, (int, float), problems)
                if val is not None and not 0.0 <= val <= 1.0:
                    err(f"index.{key} {val} outside [0, 1]", problems)
            for extra in sorted(set(index) - set(keys)):
                err(f"index has unknown key {extra!r}", problems)


def kernel_map(doc):
    """name -> ns_per_op over well-formed kernel entries."""
    out = {}
    for entry in doc.get("kernels") or []:
        if not isinstance(entry, dict):
            continue
        name, ns = entry.get("name"), entry.get("ns_per_op")
        if (isinstance(name, str) and name and
                isinstance(ns, (int, float)) and
                not isinstance(ns, bool) and ns > 0):
            out[name] = float(ns)
    return out


def diff_baseline(doc, base, problems, warnings):
    """Per-kernel ns/op regression check against an older record.

    Kernels only one record carries are skipped (new kernels appear,
    retired ones vanish — neither is a regression). Smoke and full
    records share kernel names, so comparing across modes is the
    caller's mistake; a mode mismatch is reported as a warning.
    """
    if doc.get("smoke") != base.get("smoke"):
        warnings.append("baseline smoke mode differs from the record's; "
                        "ns/op figures are not comparable")
        return
    new, old = kernel_map(doc), kernel_map(base)
    for name in sorted(set(new) & set(old)):
        ratio = new[name] / old[name]
        if ratio > 1.0 + FAIL_REGRESSION:
            err(f"kernel {name!r} regressed {ratio:.2f}x vs baseline "
                f"({old[name]:.1f} -> {new[name]:.1f} ns/op, "
                f"limit {1.0 + FAIL_REGRESSION:.2f}x)", problems)
        elif ratio > 1.0 + WARN_REGRESSION:
            warnings.append(
                f"kernel {name!r} slowed {ratio:.2f}x vs baseline "
                f"({old[name]:.1f} -> {new[name]:.1f} ns/op)")


def load(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def main(argv):
    args = argv[1:]
    baseline_path = None
    warn_only = False
    paths = []
    while args:
        arg = args.pop(0)
        if arg == "--baseline":
            if not args:
                print("--baseline needs a path", file=sys.stderr)
                return 2
            baseline_path = args.pop(0)
        elif arg == "--warn-only":
            warn_only = True
        else:
            paths.append(arg)
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = paths[0]
    try:
        doc = load(path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: {exc}", file=sys.stderr)
        return 1
    problems = []
    warnings = []
    validate(doc, problems)
    if baseline_path is not None:
        try:
            base = load(baseline_path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{baseline_path}: {exc}", file=sys.stderr)
            return 1
        baseline_problems = []
        diff_baseline(doc, base, baseline_problems, warnings)
        if warn_only:
            warnings.extend(baseline_problems)
        else:
            problems.extend(baseline_problems)
    for warning in warnings:
        print(f"{path}: WARNING: {warning}", file=sys.stderr)
    for problem in problems:
        print(f"{path}: {problem}", file=sys.stderr)
    if not problems:
        print(f"{path}: OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
