#!/usr/bin/env python3
"""Validate a BENCH_*.json perf-trajectory record against its schema.

Schema source of truth: src/telemetry/bench_report.hpp. Used by the CI
bench-smoke job; exits nonzero with a per-violation message on failure.

Validates any BENCH_*.json record sharing that schema, including
BENCH_scale.json (which carries the optional "index" section) and
BENCH_search.json (which carries the optional "cache" section).

Records carrying a top-level "kernels" key (BENCH_kernels.json, written
by bench_micro_kernels) use the kernel schema instead: "bench",
"git_rev" and "timestamp" as above, a non-empty "kernels" list of
{"name", "ns_per_op", "ops"} entries with unique names, an optional
"smoke" bool, and an optional "bnb" section with the sequential-vs-
parallel branch-and-bound comparison (its "equal" flag is the
determinism gate and must be true).

Usage: validate_bench_json.py BENCH_search.json
"""
import json
import sys

TIERS = ("invariant", "branch", "heuristic", "ot", "exact", "cache",
         "index")


def err(msg, problems):
    problems.append(msg)


def require(doc, key, kind, problems):
    if key not in doc:
        err(f"missing key {key!r}", problems)
        return None
    val = doc[key]
    # bool is an int subclass in Python; reject it explicitly.
    if isinstance(val, bool) or not isinstance(val, kind):
        err(f"key {key!r}: expected {kind}, got {type(val).__name__}",
            problems)
        return None
    return val


def validate_header(doc, problems):
    """The keys every BENCH_*.json record carries."""
    bench = require(doc, "bench", str, problems)
    if bench is not None and not bench:
        err("bench name is empty", problems)

    rev = require(doc, "git_rev", str, problems)
    if rev is not None and rev != "unknown":
        if len(rev) not in (40, 64) or any(
                c not in "0123456789abcdef" for c in rev):
            err(f"git_rev {rev!r} is neither a hex SHA nor 'unknown'",
                problems)

    ts = require(doc, "timestamp", int, problems)
    if ts is not None and ts <= 0:
        err(f"timestamp {ts} is not positive", problems)


def validate_kernels(doc, problems):
    """BENCH_kernels.json: per-kernel ns/op plus the bnb comparison."""
    validate_header(doc, problems)

    if "smoke" in doc and not isinstance(doc["smoke"], bool):
        err(f"smoke: expected bool, got {type(doc['smoke']).__name__}",
            problems)

    kernels = require(doc, "kernels", list, problems)
    if kernels is not None:
        if not kernels:
            err("kernels list is empty", problems)
        names = set()
        for i, entry in enumerate(kernels):
            if not isinstance(entry, dict):
                err(f"kernels[{i}] is not an object", problems)
                continue
            name = require(entry, "name", str, problems)
            if name is not None:
                if not name:
                    err(f"kernels[{i}].name is empty", problems)
                elif name in names:
                    err(f"kernels[{i}].name {name!r} is duplicated",
                        problems)
                names.add(name)
            ns = require(entry, "ns_per_op", (int, float), problems)
            if ns is not None and ns <= 0:
                err(f"kernels[{i}].ns_per_op {ns} is not positive",
                    problems)
            ops = require(entry, "ops", int, problems)
            if ops is not None and ops <= 0:
                err(f"kernels[{i}].ops {ops} is not positive", problems)
            for extra in sorted(set(entry) - {"name", "ns_per_op", "ops"}):
                err(f"kernels[{i}] has unknown key {extra!r}", problems)

    if "bnb" in doc:
        bnb = require(doc, "bnb", dict, problems)
        if bnb is not None:
            pairs = require(bnb, "pairs", int, problems)
            if pairs is not None and pairs <= 0:
                err(f"bnb.pairs {pairs} is not positive", problems)
            for key in ("seq_ms", "par_ms", "speedup"):
                val = require(bnb, key, (int, float), problems)
                if val is not None and val < 0:
                    err(f"bnb.{key} {val} is negative", problems)
            threads = require(bnb, "pool_threads", int, problems)
            if threads is not None and threads <= 0:
                err(f"bnb.pool_threads {threads} is not positive", problems)
            # `require` rejects bools (they are int subclasses), so the
            # one genuinely-boolean key is checked directly.
            if "equal" not in bnb:
                err("missing key 'equal'", problems)
            elif not isinstance(bnb["equal"], bool):
                err("key 'equal': expected bool, got "
                    f"{type(bnb['equal']).__name__}", problems)
            # The determinism gate is part of the schema: a record whose
            # parallel solver disagreed with itself is not a valid record.
            elif bnb["equal"] is False:
                err("bnb.equal is false: parallel branch-and-bound was "
                    "not deterministic", problems)
            for extra in sorted(set(bnb) - {"pairs", "seq_ms", "par_ms",
                                            "speedup", "equal",
                                            "pool_threads"}):
                err(f"bnb has unknown key {extra!r}", problems)


def validate(doc, problems):
    if not isinstance(doc, dict):
        err("top level is not a JSON object", problems)
        return

    if "kernels" in doc:
        validate_kernels(doc, problems)
        return

    validate_header(doc, problems)

    for key in ("threads", "corpus_size", "num_queries"):
        val = require(doc, key, int, problems)
        if val is not None and val <= 0:
            err(f"{key} {val} is not positive", problems)

    qps = require(doc, "qps", (int, float), problems)
    if qps is not None and qps <= 0:
        err(f"qps {qps} is not positive", problems)

    lat = require(doc, "latency_ms", dict, problems)
    if lat is not None:
        for p in ("p50", "p95", "p99"):
            val = require(lat, p, (int, float), problems)
            if val is not None and val < 0:
                err(f"latency_ms.{p} {val} is negative", problems)
        if all(isinstance(lat.get(p), (int, float)) for p in
               ("p50", "p95", "p99")):
            if not lat["p50"] <= lat["p95"] <= lat["p99"]:
                err("latency percentiles are not monotone "
                    f"(p50={lat['p50']}, p95={lat['p95']}, "
                    f"p99={lat['p99']})", problems)

    fractions = require(doc, "tier_fractions", dict, problems)
    if fractions is not None:
        total = 0.0
        complete = True
        for tier in TIERS:
            val = require(fractions, tier, (int, float), problems)
            if val is None:
                complete = False
            elif not 0.0 <= val <= 1.0:
                err(f"tier_fractions.{tier} {val} outside [0, 1]", problems)
            else:
                total += val
        for extra in sorted(set(fractions) - set(TIERS)):
            err(f"tier_fractions has unknown tier {extra!r}", problems)
        # Every candidate pair is settled by exactly one tier, so the
        # fractions partition 1 (up to the 4-decimal serialization).
        if complete and abs(total - 1.0) > 0.01:
            err(f"tier_fractions sum to {total:.4f}, expected 1", problems)

    rate = require(doc, "cache_hit_rate", (int, float), problems)
    if rate is not None and not 0.0 <= rate <= 1.0:
        err(f"cache_hit_rate {rate} outside [0, 1]", problems)

    # Optional sections: absent is fine, present means fully valid.
    if "cache" in doc:
        cache = require(doc, "cache", dict, problems)
        if cache is not None:
            for key in ("repeat_ratio", "warm_hit_rate"):
                val = require(cache, key, (int, float), problems)
                if val is not None and not 0.0 <= val <= 1.0:
                    err(f"cache.{key} {val} outside [0, 1]", problems)
            lookups = require(cache, "warm_lookups", int, problems)
            if lookups is not None and lookups < 0:
                err(f"cache.warm_lookups {lookups} is negative", problems)
            for extra in sorted(set(cache) - {"repeat_ratio",
                                              "warm_hit_rate",
                                              "warm_lookups"}):
                err(f"cache has unknown key {extra!r}", problems)

    if "index" in doc:
        index = require(doc, "index", dict, problems)
        if index is not None:
            keys = ("candidate_fraction", "partition_prune_fraction",
                    "label_prune_fraction", "vptree_prune_fraction")
            for key in keys:
                val = require(index, key, (int, float), problems)
                if val is not None and not 0.0 <= val <= 1.0:
                    err(f"index.{key} {val} outside [0, 1]", problems)
            for extra in sorted(set(index) - set(keys)):
                err(f"index has unknown key {extra!r}", problems)


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: {exc}", file=sys.stderr)
        return 1
    problems = []
    validate(doc, problems)
    for problem in problems:
        print(f"{path}: {problem}", file=sys.stderr)
    if not problems:
        print(f"{path}: OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
