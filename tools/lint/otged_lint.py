#!/usr/bin/env python3
"""otged_lint — stdlib-only repo-invariant linter for the otged tree.

Rules (names are what `allow(...)` suppressions reference):

  atomic-order    every std::atomic load/store/RMW call names an explicit
                  std::memory_order; a defaulted (seq_cst) order on a hot
                  path is both a perf bug and an intent bug.
  hot-path        functions marked `// otged-lint: hot-path` may not
                  contain naked `new`, `std::rand`, or blocking locks
                  (MutexLock / lock_guard / unique_lock / scoped_lock /
                  .Lock()).
  metric-name     every telemetry metric name is registered under exactly
                  one kind (counter/gauge/histogram), appears in the
                  README metric catalog, and every cataloged name is used
                  somewhere in src/.
  include-guard   headers use the single repo guard style
                  `OTGED_<PATH>_HPP_` (repo-relative path, `src/`
                  dropped, uppercased) — `#ifndef` immediately followed
                  by a matching `#define`, and no `#pragma once`.

Suppressing one finding requires a reason:

    foo.bar();  // otged-lint: allow(atomic-order) -- frobnicates safely

The comment may sit on the offending line or the line directly above it.
An `allow` without a `-- reason` is itself a finding.

Exit status: 0 when the tree (or self-test) is clean, 1 otherwise.
"""

import argparse
import os
import re
import sys

RULES = ("atomic-order", "hot-path", "metric-name", "include-guard")

SCAN_DIRS = ("src", "tests", "examples", "bench")
FIXTURE_DIR = os.path.join("tests", "lint_fixtures")
CXX_EXT = (".hpp", ".cpp")

ALLOW_RE = re.compile(
    r"//\s*otged-lint:\s*allow\(([a-z-]+)\)(?:\s*--\s*(\S.*))?")
HOT_PATH_MARK_RE = re.compile(r"//\s*otged-lint:\s*hot-path\s*$")

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")

HOT_PATH_BANNED = (
    (re.compile(r"\bnew\b"), "naked `new` (allocation)"),
    (re.compile(r"\b(?:std::)?rand\s*\("), "`std::rand` (global-state PRNG)"),
    (re.compile(r"\b(?:MutexLock|lock_guard|unique_lock|scoped_lock)\b"),
     "blocking lock guard"),
    (re.compile(r"(?:\.|->)\s*[Ll]ock\s*\("), "blocking lock call"),
)

METRIC_MACROS = {
    "OTGED_COUNT": "counter",
    "OTGED_COUNT_N": "counter",
    "OTGED_GAUGE_SET": "gauge",
    "OTGED_GAUGE_ADD": "gauge",
    "OTGED_HIST_RECORD": "histogram",
    "GetCounter": "counter",
    "GetGauge": "gauge",
    "GetHistogram": "histogram",
}
METRIC_SITE_RE = re.compile(
    r"\b(" + "|".join(METRIC_MACROS) + r")\s*\(")
CHAR_CONST_RE = re.compile(
    r'constexpr\s+const\s+char\s*\*\s*(\w+)\s*=\s*"([^"]*)"')


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks comment/string interiors (layout preserved) so structural
    scans (brace matching, banned tokens) cannot match inside them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def balanced_span(text, open_pos, open_ch="(", close_ch=")"):
    """Returns the offset one past the matching close for the opener at
    open_pos, or len(text) when unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# ---------------------------------------------------------------- rules


def check_atomic_order(path, text, stripped):
    findings = []
    for m in ATOMIC_CALL_RE.finditer(stripped):
        open_paren = stripped.index("(", m.end() - 1)
        end = balanced_span(stripped, open_paren)
        args = text[open_paren + 1:end - 1]
        if "memory_order" not in args:
            findings.append(Finding(
                path, line_of(text, m.start()), "atomic-order",
                f"atomic `{m.group(1)}` without an explicit "
                "std::memory_order (defaulted seq_cst hides intent and "
                "costs fences on hot paths)"))
    return findings


def check_hot_path(path, text, stripped):
    findings = []
    lines = text.split("\n")
    for idx, line in enumerate(lines):
        if not HOT_PATH_MARK_RE.search(line):
            continue
        # Body = first '{' after the marker line to its matching '}'.
        offset = sum(len(l) + 1 for l in lines[:idx + 1])
        brace = stripped.find("{", offset)
        if brace < 0:
            findings.append(Finding(
                path, idx + 1, "hot-path",
                "hot-path marker with no function body after it"))
            continue
        end = balanced_span(stripped, brace, "{", "}")
        body = stripped[brace:end]
        for pattern, what in HOT_PATH_BANNED:
            bm = pattern.search(body)
            if bm:
                findings.append(Finding(
                    path, line_of(text, brace + bm.start()), "hot-path",
                    f"{what} inside a telemetry hot-path function"))
    return findings


def base_metric_name(name):
    return name.split("{", 1)[0]


def metric_sites(path, text, stripped):
    """Yields (line, base_name, kind) for every metric registration or
    update site whose name argument is statically resolvable."""
    consts = {m.group(1): m.group(2) for m in CHAR_CONST_RE.finditer(text)}
    for m in METRIC_SITE_RE.finditer(stripped):
        kind = METRIC_MACROS[m.group(1)]
        open_paren = stripped.index("(", m.end() - 1)
        end = balanced_span(stripped, open_paren)
        # Argument text from the original source (strings intact).
        args = text[open_paren + 1:end - 1].lstrip()
        name = None
        lit = re.match(r'(?:std::string\s*\(\s*)?"((?:[^"\\]|\\.)*)"', args)
        if lit:
            name = lit.group(1).replace('\\"', '"')
        else:
            ident = re.match(r"(\w+)\s*[,)]", args)
            if ident and ident.group(1) in consts:
                name = consts[ident.group(1)]
        if name is None or not name.startswith("otged_"):
            continue  # forwarding macro definition or non-metric call
        yield line_of(text, m.start()), base_metric_name(name), kind


CATALOG_NAME_RE = re.compile(r"`([^`]*otged_[^`]*)`")
BRACE_LIST_RE = re.compile(r"\{([a-z0-9_]+(?:,[a-z0-9_]+)+)\}")


def readme_catalog(root):
    """Base metric names from the README '### Metric catalog' table.
    Expands `otged_foo_{a,b}_total` shorthand; label selectors
    (`{tier=...}`) are stripped to the base name."""
    path = os.path.join(root, "README.md")
    names = set()
    try:
        text = open(path, encoding="utf-8").read()
    except OSError:
        return names
    section = re.search(r"### Metric catalog\n(.*?)(\n#|$)", text, re.S)
    if not section:
        return names
    for row in section.group(1).split("\n"):
        if not row.startswith("|"):
            continue
        for span in CATALOG_NAME_RE.findall(row):
            for token in re.split(r"`,\s*`|,\s+", span):
                token = base_metric_name(token.strip("` "))
                if not token.startswith("otged_"):
                    continue
                lists = BRACE_LIST_RE.search(token)
                if lists:
                    for part in lists.group(1).split(","):
                        names.add(token[:lists.start()] + part +
                                  token[lists.end():])
                else:
                    names.add(token)
    return names


def check_metric_names(root, files, catalog, tree_wide):
    findings = []
    kinds = {}   # base name -> (kind, path, line)
    used = set()
    for path in files:
        text = open(path, encoding="utf-8").read()
        stripped = strip_comments_and_strings(text)
        for line, name, kind in metric_sites(path, text, stripped):
            used.add(name)
            prev = kinds.get(name)
            if prev is None:
                kinds[name] = (kind, path, line)
            elif prev[0] != kind:
                findings.append(Finding(
                    path, line, "metric-name",
                    f"metric `{name}` registered as {kind} here but as "
                    f"{prev[0]} at {prev[1]}:{prev[2]}"))
            if name not in catalog:
                findings.append(Finding(
                    path, line, "metric-name",
                    f"metric `{name}` is missing from the README metric "
                    "catalog"))
    if tree_wide:
        for name in sorted(catalog - used):
            findings.append(Finding(
                os.path.join(root, "README.md"), 1, "metric-name",
                f"cataloged metric `{name}` is not registered anywhere "
                "in the tree"))
    return findings


def expected_guard(rel_path):
    rel = rel_path.replace(os.sep, "/")
    if rel.startswith("src/"):
        rel = rel[len("src/"):]
    return "OTGED_" + re.sub(r"[^A-Za-z0-9]", "_", rel).upper() + "_"


def check_include_guard(root, path, text):
    rel = os.path.relpath(path, root)
    guard = expected_guard(rel)
    findings = []
    if re.search(r"^\s*#\s*pragma\s+once", text, re.M):
        line = line_of(text, re.search(r"^\s*#\s*pragma\s+once", text,
                                       re.M).start())
        findings.append(Finding(
            path, line, "include-guard",
            "#pragma once — this repo uses #ifndef guards "
            f"(expected {guard})"))
        return findings
    m = re.search(r"^#ifndef\s+(\S+)\s*\n#define\s+(\S+)", text, re.M)
    if not m:
        findings.append(Finding(
            path, 1, "include-guard",
            f"missing include guard (expected #ifndef {guard} directly "
            "followed by its #define)"))
        return findings
    if m.group(1) != guard or m.group(2) != guard:
        findings.append(Finding(
            path, line_of(text, m.start()), "include-guard",
            f"guard `{m.group(1)}`/`{m.group(2)}` does not match the "
            f"repo style `{guard}`"))
    return findings


# --------------------------------------------------------- driver logic


def apply_suppressions(findings, file_lines_cache):
    kept = []
    for f in findings:
        lines = file_lines_cache.setdefault(
            f.path, open(f.path, encoding="utf-8").read().split("\n"))
        suppressed = False
        for lineno in (f.line, f.line - 1):
            if not 1 <= lineno <= len(lines):
                continue
            m = ALLOW_RE.search(lines[lineno - 1])
            if not m:
                continue
            if m.group(1) != f.rule:
                continue
            if not m.group(2):
                kept.append(Finding(
                    f.path, lineno, f.rule,
                    f"allow({f.rule}) suppression without a `-- reason`"))
            suppressed = True
            break
        if not suppressed:
            kept.append(f)
    return kept


def lint_file(root, path):
    text = open(path, encoding="utf-8").read()
    stripped = strip_comments_and_strings(text)
    findings = []
    findings += check_atomic_order(path, text, stripped)
    findings += check_hot_path(path, text, stripped)
    if path.endswith(".hpp"):
        findings += check_include_guard(root, path, text)
    return findings, text, stripped


def collect_files(root):
    files = []
    fixture_root = os.path.join(root, FIXTURE_DIR)
    for sub in SCAN_DIRS:
        base = os.path.join(root, sub)
        for dirpath, dirnames, filenames in os.walk(base):
            if os.path.commonpath([dirpath, fixture_root]) == fixture_root:
                continue
            for name in sorted(filenames):
                if name.endswith(CXX_EXT):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def lint_tree(root):
    files = collect_files(root)
    findings = []
    for path in files:
        file_findings, _, _ = lint_file(root, path)
        findings += file_findings
    src_files = [p for p in files
                 if os.path.commonpath(
                     [p, os.path.join(root, "src")]) == os.path.join(
                         root, "src")]
    findings += check_metric_names(root, src_files, readme_catalog(root),
                                   tree_wide=True)
    return apply_suppressions(findings, {})


# ------------------------------------------------------------ self-test


def self_test(root):
    """Fixture contract: tests/lint_fixtures/pass/* must produce zero
    findings; tests/lint_fixtures/fail/<rule-with-underscores>_*.{hpp,cpp}
    must each produce at least one finding of exactly that rule."""
    fixture_root = os.path.join(root, FIXTURE_DIR)
    catalog = readme_catalog(root)
    failures = []

    def fixture_findings(path):
        findings, text, stripped = lint_file(root, path)
        findings += check_metric_names(root, [path], catalog,
                                       tree_wide=False)
        return apply_suppressions(findings, {})

    pass_dir = os.path.join(fixture_root, "pass")
    fail_dir = os.path.join(fixture_root, "fail")
    pass_files = sorted(os.listdir(pass_dir)) if os.path.isdir(pass_dir) \
        else []
    fail_files = sorted(os.listdir(fail_dir)) if os.path.isdir(fail_dir) \
        else []
    if not pass_files or not fail_files:
        print("self-test: missing fixtures under " + fixture_root)
        return 1

    for name in pass_files:
        path = os.path.join(pass_dir, name)
        got = fixture_findings(path)
        if got:
            failures.append(f"pass fixture {name} produced findings:")
            failures += [f"  {f}" for f in got]

    seen_rules = set()
    for name in fail_files:
        path = os.path.join(fail_dir, name)
        rule = next((r for r in RULES
                     if name.startswith(r.replace("-", "_"))), None)
        if rule is None:
            failures.append(f"fail fixture {name} names no known rule")
            continue
        got = fixture_findings(path)
        if not any(f.rule == rule for f in got):
            failures.append(
                f"fail fixture {name} expected a {rule} finding, got: "
                + (", ".join(f.rule for f in got) or "none"))
        else:
            seen_rules.add(rule)

    for rule in RULES:
        if rule not in seen_rules:
            failures.append(f"no failing fixture exercises rule {rule}")

    if failures:
        print("\n".join(failures))
        print(f"self-test: FAIL ({len(failures)} problems)")
        return 1
    print(f"self-test: OK ({len(pass_files)} pass + {len(fail_files)} "
          "fail fixtures, all four rules exercised)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against its own fixtures")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    if args.self_test:
        return self_test(root)

    findings = lint_tree(root)
    for f in findings:
        print(f)
    if findings:
        print(f"otged-lint: {len(findings)} finding(s)")
        return 1
    print("otged-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
