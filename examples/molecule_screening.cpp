/// \file molecule_screening.cpp
/// \brief Antiviral-screening flavored demo (the AIDS dataset's origin):
/// given a reference compound graph, flag database compounds whose edit
/// distance is within a threshold. The screening itself is a single range
/// query against the filter–verify QueryEngine — cheap invariant bounds
/// dismiss unrelated molecules before any solver runs — and every hit
/// then gets a k-best edit-path certificate so a chemist can see exactly
/// which bonds/atoms differ. No training data needed.
#include <cstdio>

#include "assignment/kbest.hpp"
#include "models/gedgw.hpp"
#include "search/query_engine.hpp"

using namespace otged;

int main() {
  Rng rng(12);

  // Reference "compound" and a screening library of 40 molecules: half
  // are near-misses (few edits), half are unrelated molecules.
  Graph reference = AidsLikeGraph(&rng, 7, 10);
  GraphStore store;
  std::vector<bool> related;
  for (int i = 0; i < 20; ++i) {
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(1, 3);
    opt.num_labels = 29;
    store.Add(SyntheticEditPair(reference, opt, &rng).g2);
    related.push_back(true);
  }
  for (int i = 0; i < 20; ++i) {
    store.Add(AidsLikeGraph(&rng, 7, 10));
    related.push_back(false);
  }

  const int threshold = 4;
  QueryEngine engine(&store, {});
  std::printf("Screening %d compounds against the reference (GED <= %d):\n",
              store.Size(), threshold);
  RangeResult res = engine.Range(reference, threshold);

  GedgwSolver solver;
  int true_hits = 0;
  for (const RangeHit& h : res.hits) {
    if (related[h.id]) ++true_hits;
    // Certificate: a concrete edit path of that length (k-best matching
    // over the GEDGW coupling).
    auto [g1, g2] = OrderBySize(reference, store.graph(h.id));
    GepResult cert = KBestGepSearch(*g1, *g2, solver.Predict(*g1, *g2).coupling,
                                    /*k=*/12);
    std::printf("  compound %2d: GED%s%d, certificate path %d ops%s\n", h.id,
                h.exact_distance ? " = " : " <= ", h.ged, cert.ged,
                related[h.id] ? "" : "  [decoy]");
  }

  const CascadeStats& c = res.stats.cascade;
  std::printf(
      "\n%zu hits, %d of which are true near-misses (precision %.0f%%)\n",
      res.hits.size(), true_hits,
      res.hits.empty()
          ? 0.0
          : 100.0 * true_hits / static_cast<double>(res.hits.size()));
  std::printf(
      "cascade pruned %ld/%ld candidates before any solver ran "
      "(%.0f%%), %ld OT calls, %ld exact calls, %.2f ms\n",
      c.pruned_invariant + c.pruned_branch, c.candidates,
      100.0 * c.PrunedBeforeSolvers(), c.ot_calls, c.exact_calls,
      res.stats.wall_ms);
  return 0;
}
