/// \file molecule_screening.cpp
/// \brief Antiviral-screening flavored demo (the AIDS dataset's origin):
/// given a reference compound graph, flag database compounds whose edit
/// distance is within a threshold — using the *unsupervised* GEDGW solver
/// plus a k-best edit-path certificate for every hit, so a chemist can see
/// exactly which bonds/atoms differ. No training data needed.
#include <cstdio>

#include "assignment/kbest.hpp"
#include "models/gedgw.hpp"

using namespace otged;

int main() {
  Rng rng(12);

  // Reference "compound" and a screening library of 40 molecules: half
  // are near-misses (few edits), half are unrelated molecules.
  Graph reference = AidsLikeGraph(&rng, 7, 10);
  struct Candidate {
    Graph mol;
    bool related;
  };
  std::vector<Candidate> library;
  for (int i = 0; i < 20; ++i) {
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(1, 3);
    opt.num_labels = 29;
    library.push_back({SyntheticEditPair(reference, opt, &rng).g2, true});
  }
  for (int i = 0; i < 20; ++i) {
    library.push_back({AidsLikeGraph(&rng, 7, 10), false});
  }

  const double threshold = 4.0;
  GedgwSolver solver;
  int hits = 0, true_hits = 0;
  std::printf("Screening %zu compounds against the reference (GED <= %.0f):\n",
              library.size(), threshold);
  for (size_t i = 0; i < library.size(); ++i) {
    const Graph& mol = library[i].mol;
    const Graph& g1 = reference.NumNodes() <= mol.NumNodes() ? reference : mol;
    const Graph& g2 = reference.NumNodes() <= mol.NumNodes() ? mol : reference;
    Prediction p = solver.Predict(g1, g2);
    if (p.ged > threshold) continue;
    ++hits;
    if (library[i].related) ++true_hits;
    // Certificate: a concrete edit path of that length (k-best matching).
    GepResult cert = KBestGepSearch(g1, g2, p.coupling, /*k=*/12);
    std::printf("  compound %2zu: GED~%.1f, certificate path %d ops%s\n", i,
                p.ged, cert.ged, library[i].related ? "" : "  [decoy]");
  }
  std::printf("\n%d hits, %d of which are true near-misses (precision %.0f%%)\n",
              hits, true_hits, hits ? 100.0 * true_hits / hits : 0.0);
  return 0;
}
