/// \file otged_cli.cpp
/// \brief Command-line GED calculator over `t/v/e`-format graph files.
///
/// Usage:
///   otged_cli <graphs-file> [method] [k]
///     method: gedgw (default) | classic | hungarian | vj | exact | beam
///     k:      k-best width for path generation (default 16)
///
/// Computes the GED (and an explicit edit path where the method provides
/// one) between every consecutive pair of graphs in the file. With no
/// arguments, runs a self-demo on generated molecules.
#include <cstdio>
#include <cstring>

#include "assignment/kbest.hpp"
#include "exact/astar.hpp"
#include "graph/graph_io.hpp"
#include "graph/generator.hpp"
#include "heuristics/bipartite.hpp"
#include "heuristics/lower_bounds.hpp"
#include "models/gedgw.hpp"

using namespace otged;

namespace {

void Report(const Graph& a, const Graph& b, const std::string& method,
            int k) {
  const Graph& g1 = a.NumNodes() <= b.NumNodes() ? a : b;
  const Graph& g2 = a.NumNodes() <= b.NumNodes() ? b : a;
  std::printf("pair (%d nodes vs %d nodes), lower bound %d\n", g1.NumNodes(),
              g2.NumNodes(), BestLowerBound(g1, g2));
  if (method == "exact") {
    AstarOptions opt;
    opt.max_expansions = 2000000;
    auto res = AstarGed(g1, g2, opt);
    if (res.has_value()) {
      std::printf("  exact GED = %d (%ld expansions)\n", res->ged,
                  res->expansions);
    } else {
      std::printf("  exact search exceeded its budget; try beam/gedgw\n");
    }
    return;
  }
  HeuristicResult h;
  if (method == "classic") {
    h = ClassicGed(g1, g2);
  } else if (method == "hungarian") {
    h = HungarianGed(g1, g2);
  } else if (method == "vj") {
    h = VjGed(g1, g2);
  } else if (method == "beam") {
    GedSearchResult res = BeamGed(g1, g2, 32);
    std::printf("  beam GED <= %d\n", res.ged);
    return;
  } else {  // gedgw
    GedgwSolver solver;
    Prediction p = solver.Predict(g1, g2);
    GepResult path = KBestGepSearch(g1, g2, p.coupling, k);
    std::printf("  GEDGW estimate %.2f, certified path %d ops:\n", p.ged,
                path.ged);
    for (const EditOp& op : path.path)
      std::printf("    %s\n", op.ToString().c_str());
    return;
  }
  std::printf("  %s GED <= %d, path:\n", method.c_str(), h.ged);
  for (const EditOp& op : h.path)
    std::printf("    %s\n", op.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string method = argc > 2 ? argv[2] : "gedgw";
  int k = argc > 3 ? std::atoi(argv[3]) : 16;

  std::vector<Graph> graphs;
  if (argc > 1) {
    std::string error;
    graphs = LoadGraphs(argv[1], &error);
    if (graphs.size() < 2) {
      std::fprintf(stderr, "need >= 2 graphs in %s (%s)\n", argv[1],
                   error.c_str());
      return 1;
    }
  } else {
    std::printf("no input file; running a self-demo on two molecules\n");
    Rng rng(42);
    Graph g = AidsLikeGraph(&rng, 6, 9);
    SyntheticEditOptions opt;
    opt.num_edits = 3;
    opt.num_labels = 29;
    GedPair pair = SyntheticEditPair(g, opt, &rng);
    graphs = {pair.g1, pair.g2};
  }
  for (size_t i = 0; i + 1 < graphs.size(); ++i)
    Report(graphs[i], graphs[i + 1], method, k);
  return 0;
}
