/// \file edit_path_demo.cpp
/// \brief Edit-path deep dive: compute GED three ways on one pair (exact
/// A*, Hungarian heuristic, GEDGW + k-best) and replay each edit path to
/// verify it truly transforms G1 into G2 — the feasibility property the
/// paper's Tables 3-4 report.
#include <cstdio>

#include "assignment/kbest.hpp"
#include "exact/astar.hpp"
#include "graph/generator.hpp"
#include "heuristics/bipartite.hpp"
#include "models/gedgw.hpp"

using namespace otged;

namespace {

void Report(const char* name, const Graph& g1, const Graph& g2,
            const NodeMatching& matching) {
  std::vector<EditOp> path = EditPathFromMatching(g1, g2, matching);
  Graph rebuilt = ApplyEditPath(g1, g2, matching, path);
  std::printf("\n%s: %zu operations (replay %s)\n", name, path.size(),
              rebuilt == g2 ? "OK" : "FAILED");
  for (const EditOp& op : path) std::printf("  - %s\n", op.ToString().c_str());
}

}  // namespace

int main() {
  Rng rng(3);
  Graph g1 = AidsLikeGraph(&rng, 5, 7);
  SyntheticEditOptions opt;
  opt.num_edits = 4;
  opt.num_labels = 29;
  GedPair pair = SyntheticEditPair(g1, opt, &rng);

  std::printf("G1: %s\nG2: %s\n(true GED <= %d by construction)\n",
              pair.g1.ToString().c_str(), pair.g2.ToString().c_str(),
              pair.ged);

  auto exact = AstarGed(pair.g1, pair.g2);
  Report("Exact (A*)", pair.g1, pair.g2, exact->matching);

  HeuristicResult hung = HungarianGed(pair.g1, pair.g2);
  Report("Hungarian heuristic", pair.g1, pair.g2, hung.matching);

  GedgwSolver solver;
  Prediction gw = solver.Predict(pair.g1, pair.g2);
  GepResult kb = KBestGepSearch(pair.g1, pair.g2, gw.coupling, 16);
  Report("GEDGW + k-best", pair.g1, pair.g2, kb.matching);
  return 0;
}
