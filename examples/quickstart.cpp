/// \file quickstart.cpp
/// \brief 60-second tour of the otged public API: build two graphs,
/// estimate their GED with every family of method (exact, heuristic,
/// unsupervised OT, learned OT, ensemble), and print an edit path.
#include <cstdio>

#include "exact/astar.hpp"
#include "heuristics/bipartite.hpp"
#include "models/gediot.hpp"
#include "models/gedgw.hpp"
#include "models/gedhot.hpp"
#include "models/trainer.hpp"

using namespace otged;

int main() {
  // --- 1. Build a labeled graph pair (the paper's Figure 1 flavor). ---
  Graph g1(3, /*fill_label=*/0);  // u1, u2, u3
  g1.set_label(2, 1);
  g1.AddEdge(0, 1);
  g1.AddEdge(1, 2);

  Graph g2(4, 0);  // v1..v4: one node inserted, one relabeled
  g2.set_label(2, 2);
  g2.set_label(3, 1);
  g2.AddEdge(0, 1);
  g2.AddEdge(2, 3);

  std::printf("G1: %s\nG2: %s\n", g1.ToString().c_str(),
              g2.ToString().c_str());

  // --- 2. Exact GED (A*). ---
  auto exact = AstarGed(g1, g2);
  std::printf("\nExact GED (A*):        %d\n", exact->ged);

  // --- 3. Classical heuristic (bipartite matching; feasible path). ---
  HeuristicResult classic = ClassicGed(g1, g2);
  std::printf("Classic heuristic:     %d\n", classic.ged);

  // --- 4. Unsupervised OT (GEDGW): no training required. ---
  GedgwSolver gedgw;
  Prediction gw = gedgw.Predict(g1, g2);
  std::printf("GEDGW (OT + GW):       %.2f\n", gw.ged);

  // --- 5. Learned OT (GEDIOT): train a tiny model on synthetic pairs. ---
  Rng rng(1);
  std::vector<GedPair> train;
  for (int i = 0; i < 200; ++i) {
    Graph g = AidsLikeGraph(&rng, 3, 8);
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(1, 4);
    opt.num_labels = 29;
    train.push_back(SyntheticEditPair(g, opt, &rng));
  }
  GediotConfig cfg;
  cfg.trunk.num_labels = 29;
  cfg.trunk.conv_dims = {16, 16};
  cfg.trunk.out_dim = 8;
  GediotModel gediot(cfg);
  TrainOptions topt;
  topt.epochs = 6;
  TrainModel(&gediot, train, topt);
  std::printf("GEDIOT (trained):      %.2f\n", gediot.Predict(g1, g2).ged);

  // --- 6. Ensemble (GEDHOT) + edit-path generation. ---
  GedhotModel gedhot(&gediot, &gedgw);
  GepResult path = gedhot.GeneratePath(g1, g2, /*k=*/16);
  std::printf("GEDHOT edit path (%d ops):\n", path.ged);
  for (const EditOp& op : path.path)
    std::printf("  - %s\n", op.ToString().c_str());
  return 0;
}
