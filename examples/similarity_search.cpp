/// \file similarity_search.cpp
/// \brief Graph similarity search — the workload that motivates the
/// paper's evaluation protocol. A "database" of program-dependence-style
/// graphs is searched for the nearest neighbors of a query graph. Instead
/// of a hand-rolled pairwise loop, the database is ingested into a
/// GraphStore and served by the filter–verify QueryEngine, which prunes
/// most candidates with cheap admissible bounds and verifies the rest —
/// returning *exact* distances, so the retrieved ranking is the ground
/// truth ranking by construction.
#include <cstdio>

#include "eval/metrics.hpp"
#include "search/query_engine.hpp"

using namespace otged;

int main() {
  Rng rng(7);

  // Database: 60 variants of a query graph at increasing edit distance,
  // mimicking "find functions similar to this one" over a code corpus.
  Graph query = LinuxLikeGraph(&rng, 7, 9);
  GraphStore store;
  std::vector<int> true_ged;
  for (int i = 0; i < 60; ++i) {
    SyntheticEditOptions opt;
    opt.num_edits = 1 + i % 8;  // spread of true distances
    opt.num_labels = 1;
    opt.allow_relabel = false;
    GedPair pair = SyntheticEditPair(query, opt, &rng);
    store.Add(pair.g2);
    true_ged.push_back(pair.ged);
  }

  QueryEngine engine(&store, {});
  std::printf("serving on %d threads over %d graphs\n\n",
              engine.num_threads(), store.Size());

  // Top-10 nearest neighbors by exact GED.
  TopKResult topk = engine.TopK(query, 10);
  std::printf("Top-10 retrieved graphs (verified vs synthetic-edit GED):\n");
  for (size_t i = 0; i < topk.hits.size(); ++i) {
    const TopKHit& h = topk.hits[i];
    std::printf("  #%2zu  db[%2d]  ged %d  synthetic %d\n", i + 1, h.id,
                h.ged, true_ged[h.id]);
  }
  const CascadeStats& c = topk.stats.cascade;
  std::printf(
      "\ncascade: %ld candidates, %ld pruned by invariants, %ld by BRANCH, "
      "%ld OT calls, %ld exact calls (%.2f ms)\n",
      c.candidates, c.pruned_invariant, c.pruned_branch, c.ot_calls,
      c.exact_calls, topk.stats.wall_ms);

  // Ranking quality of the engine's exact distances against the
  // synthetic-edit ground truth over the whole database (top-k with
  // k = |DB| verifies every graph).
  TopKResult all = engine.TopK(query, store.Size());
  std::vector<double> pred, gt;
  std::vector<int> gt_int;
  for (const TopKHit& h : all.hits) {
    pred.push_back(h.ged);
    gt.push_back(true_ged[h.id]);
    gt_int.push_back(true_ged[h.id]);
  }
  std::printf("\nRanking quality over the whole database:\n");
  std::printf("  Spearman rho: %.3f\n", SpearmanRho(pred, gt));
  std::printf("  Kendall tau:  %.3f\n", KendallTau(pred, gt));
  std::printf("  p@10:         %.2f\n", PrecisionAtK(pred, gt_int, 10));
  std::printf("  p@20:         %.2f\n", PrecisionAtK(pred, gt_int, 20));
  return 0;
}
