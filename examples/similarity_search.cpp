/// \file similarity_search.cpp
/// \brief Graph similarity search — the workload that motivates the
/// paper's evaluation protocol. A "database" of program-dependence-style
/// graphs is ranked against a query graph by approximate GED; we compare
/// the ranking produced by GEDHOT against the ground truth and report
/// precision@k, exactly like a graph-database retrieval layer would.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "metrics/metrics.hpp"
#include "models/gediot.hpp"
#include "models/gedgw.hpp"
#include "models/gedhot.hpp"
#include "models/trainer.hpp"

using namespace otged;

int main() {
  Rng rng(7);

  // Database: 60 variants of a query graph at increasing edit distance,
  // mimicking "find functions similar to this one" over a code corpus.
  Graph query = LinuxLikeGraph(&rng, 7, 9);
  std::vector<GedPair> database;
  for (int i = 0; i < 60; ++i) {
    SyntheticEditOptions opt;
    opt.num_edits = 1 + i % 8;  // spread of true distances
    opt.num_labels = 1;
    opt.allow_relabel = false;
    database.push_back(SyntheticEditPair(query, opt, &rng));
  }

  // Train GEDIOT on an independent corpus of the same flavor.
  std::vector<GedPair> train;
  for (int i = 0; i < 300; ++i) {
    Graph g = LinuxLikeGraph(&rng);
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(1, 6);
    opt.num_labels = 1;
    opt.allow_relabel = false;
    train.push_back(SyntheticEditPair(g, opt, &rng));
  }
  GediotConfig cfg;
  cfg.trunk.num_labels = 1;
  cfg.trunk.conv_dims = {16, 16};
  cfg.trunk.out_dim = 8;
  GediotModel gediot(cfg);
  TrainOptions topt;
  topt.epochs = 8;
  TrainModel(&gediot, train, topt);
  GedgwSolver gedgw;
  GedhotModel gedhot(&gediot, &gedgw);

  // Rank the database by predicted GED.
  std::vector<double> pred;
  std::vector<int> gt;
  for (const GedPair& p : database) {
    pred.push_back(gedhot.Predict(p.g1, p.g2).ged);
    gt.push_back(p.ged);
  }
  std::vector<int> order(database.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return pred[a] < pred[b]; });

  std::printf("Top-10 retrieved graphs (predicted vs true GED):\n");
  for (int i = 0; i < 10; ++i) {
    int id = order[i];
    std::printf("  #%2d  db[%2d]  pred %.2f  true %d\n", i + 1, id, pred[id],
                gt[id]);
  }
  std::printf("\nRanking quality over the whole database:\n");
  std::vector<double> gt_d(gt.begin(), gt.end());
  std::printf("  Spearman rho: %.3f\n", SpearmanRho(pred, gt_d));
  std::printf("  Kendall tau:  %.3f\n", KendallTau(pred, gt_d));
  std::printf("  p@10:         %.2f\n", PrecisionAtK(pred, gt, 10));
  std::printf("  p@20:         %.2f\n", PrecisionAtK(pred, gt, 20));
  return 0;
}
