/// \file search_cli.cpp
/// \brief Command-line front end for the filter–verify search engine.
///
/// Three modes:
///
/// One-shot (original interface): builds a synthetic corpus, ingests it
/// into a GraphStore, and serves range or top-k queries, printing
/// per-query results and cascade telemetry.
///   search_cli [dataset] [count] [mode] [arg] [queries] [threads]
///     dataset  aids | linux | imdb | powerlaw   (default aids)
///     count    corpus size                      (default 200)
///     mode     range | topk                     (default range)
///     arg      tau for range, k for topk        (default 3)
///     queries  number of queries to serve       (default 5)
///     threads  worker threads, 0 = hardware     (default 0)
///
/// Metrics (`search_cli metrics [dataset] [count] [queries] [threads]`):
/// resets the process metrics registry, serves a range + top-k workload,
/// reconciles the registry's cascade AND index counters against the
/// summed QueryStats of the same run (they must match exactly, or the
/// command exits 1), then exports the registry twice — Prometheus text
/// after the `--- prometheus ---` marker, JSON after the `--- json ---`
/// marker.
///
/// REPL (`search_cli repl [threads]`): drives one dynamic GraphStore +
/// QueryEngine with commands from stdin, exercising mutation, persistence
/// and batched serving:
///   gen <dataset> <count>    insert synthetic graphs (stable ids printed)
///   add <path>               insert every graph of a t/v/e corpus file
///   rm <id>                  erase one graph by stable id
///   save <path>              persist store + compacted index (crc'd)
///   load <path>              replace the store from a persisted file
///                            (adopting its index section, if present)
///   range <tau> <n>          serve n synthetic queries, one at a time
///   topk <k> <n>             same, top-k
///   batch <tau> <n>          serve n queries as one RangeBatch pool pass
///   info                     store size / epoch / cache occupancy, plus a
///                            metrics snapshot (cache hit rate, per-tier
///                            settle fractions)
///   quit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "graph/graph_io.hpp"
#include "search/query_engine.hpp"
#include "search/store_serialize.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

using namespace otged;

namespace {

Graph MakeQueryGraph(const std::string& dataset, Rng* rng) {
  if (dataset == "linux") return LinuxLikeGraph(rng);
  if (dataset == "imdb") return ImdbLikeGraph(rng, 7, 30);
  if (dataset == "powerlaw")
    return PowerLawGraph(rng->UniformInt(10, 30), 2, rng);
  return AidsLikeGraph(rng);
}

void PrintStats(const QueryStats& stats) {
  const CascadeStats& c = stats.cascade;
  std::printf(
      "    %.2f ms | epoch %llu | %ld candidates: %ld index-pruned, "
      "%ld invariant-pruned, %ld branch-pruned, %ld heuristic, %ld ot, "
      "%ld exact, %ld cached | %ld OT calls, %ld exact calls | "
      "%.0f%% pruned before solvers\n",
      stats.wall_ms, static_cast<unsigned long long>(stats.epoch),
      c.candidates, c.pruned_index, c.pruned_invariant, c.pruned_branch,
      c.decided_heuristic, c.decided_ot, c.decided_exact, c.cache_hits,
      c.ot_calls, c.exact_calls, 100.0 * c.PrunedBeforeSolvers());
}

void PrintRange(const RangeResult& res, int tau) {
  std::printf("    %zu hits within tau=%d:", res.hits.size(), tau);
  for (const RangeHit& h : res.hits)
    std::printf(" %d(ged%s%d)", h.id, h.exact_distance ? "=" : "<=", h.ged);
  std::printf("\n");
  PrintStats(res.stats);
}

/// One-line digest of the process metrics registry: bound-cache hit rate
/// and the fraction of candidate pairs each tier settled.
void PrintMetricsSnapshot() {
  const telemetry::MetricsSnapshot snap = telemetry::Registry().Snapshot();
  const long hits = snap.CounterValue("otged_bound_cache_hits_total");
  const long misses = snap.CounterValue("otged_bound_cache_misses_total");
  const long lookups = hits + misses;
  const long candidates =
      snap.CounterValue("otged_cascade_candidates_total");
  std::printf("cache hit rate %.1f%% (%ld/%ld lookups)\n",
              lookups ? 100.0 * static_cast<double>(hits) /
                            static_cast<double>(lookups)
                      : 0.0,
              hits, lookups);
  if (candidates == 0) {
    std::printf("no candidate pairs evaluated yet\n");
    return;
  }
  struct {
    const char* label;
    const char* counter;
  } tiers[] = {
      {"index-pruned", "otged_cascade_pruned_total{tier=\"index\"}"},
      {"invariant-pruned", "otged_cascade_pruned_total{tier=\"invariant\"}"},
      {"identity-passed", "otged_cascade_passed_total{tier=\"invariant\"}"},
      {"branch-pruned", "otged_cascade_pruned_total{tier=\"branch\"}"},
      {"heuristic", "otged_cascade_decided_total{tier=\"heuristic\"}"},
      {"ot", "otged_cascade_decided_total{tier=\"ot\"}"},
      {"exact", "otged_cascade_decided_total{tier=\"exact\"}"},
      {"cached", "otged_cascade_cache_hits_total"},
  };
  std::printf("%ld candidate pairs settled by:", candidates);
  for (const auto& t : tiers)
    std::printf(" %s %.1f%%", t.label,
                100.0 * static_cast<double>(snap.CounterValue(t.counter)) /
                    static_cast<double>(candidates));
  std::printf("\n");
  // Gauges track the current index view; zero when no index is built.
  long index_size = 0, index_partitions = 0, index_overlay = 0;
  for (const auto& g : snap.gauges) {
    if (g.name == "otged_index_size") index_size = g.value;
    if (g.name == "otged_index_partitions") index_partitions = g.value;
    if (g.name == "otged_index_vp_overlay") index_overlay = g.value;
  }
  std::printf("index: %ld graphs in %ld partitions, vp overlay %ld\n",
              index_size, index_partitions, index_overlay);
}

/// `search_cli metrics`: serve a workload, then prove the exported
/// counters say the same thing as the per-query stats.
int RunMetrics(const std::string& dataset, int count, int num_queries,
               int threads) {
  telemetry::Registry().Reset();
  Rng rng(7);
  GraphStore store;
  std::vector<Graph> corpus;
  corpus.reserve(count);
  for (int i = 0; i < count; ++i)
    corpus.push_back(MakeQueryGraph(dataset, &rng));
  store.AddAll(corpus);

  EngineOptions opt;
  opt.num_threads = threads;
  opt.cascade.exact_budget = 500'000;
  QueryEngine engine(&store, opt);
  std::printf("corpus: %d %s graphs | %d worker threads | serving %d range "
              "+ %d top-k queries\n",
              store.Size(), dataset.c_str(), engine.num_threads(),
              num_queries, num_queries);

  CascadeStats total;
  IndexStats itotal;
  for (int q = 0; q < num_queries; ++q) {
    Graph query = MakeQueryGraph(dataset, &rng);
    RangeResult range = engine.Range(query, 3);
    total.Merge(range.stats.cascade);
    itotal.Merge(range.stats.index);
    TopKResult topk = engine.TopK(query, 5);
    total.Merge(topk.stats.cascade);
    itotal.Merge(topk.stats.index);
  }

  const telemetry::MetricsSnapshot snap = telemetry::Registry().Snapshot();
  struct {
    const char* counter;
    long expected;
  } rows[] = {
      {"otged_cascade_candidates_total", total.candidates},
      {"otged_cascade_pruned_total{tier=\"index\"}", total.pruned_index},
      {"otged_cascade_pruned_total{tier=\"invariant\"}",
       total.pruned_invariant},
      {"otged_cascade_passed_total{tier=\"invariant\"}",
       total.passed_invariant},
      {"otged_cascade_pruned_total{tier=\"branch\"}", total.pruned_branch},
      {"otged_cascade_decided_total{tier=\"heuristic\"}",
       total.decided_heuristic},
      {"otged_cascade_decided_total{tier=\"ot\"}", total.decided_ot},
      {"otged_cascade_decided_total{tier=\"exact\"}", total.decided_exact},
      {"otged_cascade_cache_hits_total", total.cache_hits},
      {"otged_cascade_ot_calls_total", total.ot_calls},
      {"otged_cascade_exact_calls_total", total.exact_calls},
      {"otged_cascade_exact_incomplete_total", total.exact_incomplete},
      // The index counters reconcile against the summed per-query
      // IndexStats the same way.
      {"otged_index_candidates_total", itotal.candidates},
      {"otged_index_pruned_total{level=\"partition\"}",
       itotal.partition_pruned},
      {"otged_index_pruned_total{level=\"label\"}", itotal.label_pruned},
      {"otged_index_pruned_total{level=\"vptree\"}", itotal.vptree_pruned},
      {"otged_index_partitions_opened_total", itotal.partitions_opened},
      {"otged_index_vp_nodes_visited_total", itotal.vp_nodes_visited},
  };
  bool ok = total.SettledTotal() == total.candidates;
  std::printf("\nreconciliation (registry counter vs summed QueryStats):\n");
  std::printf("  settled-by-some-tier %ld vs candidates %ld  [%s]\n",
              total.SettledTotal(), total.candidates,
              ok ? "PASS" : "FAIL");
  const bool index_ok =
      itotal.scanned == itotal.candidates + itotal.PrunedTotal();
  ok = ok && index_ok;
  std::printf("  index scanned %ld vs candidates+pruned %ld  [%s]\n",
              itotal.scanned, itotal.candidates + itotal.PrunedTotal(),
              index_ok ? "PASS" : "FAIL");
  for (const auto& row : rows) {
    // Absent counter == never incremented: a call site registers its
    // metric on first increment, so a workload with e.g. zero cache hits
    // legitimately leaves that counter unregistered.
    const long got = snap.CounterValue(row.counter, 0);
    const bool match = got == row.expected;
    ok = ok && match;
    std::printf("  %-52s %8ld vs %8ld  [%s]\n", row.counter, got,
                row.expected, match ? "PASS" : "FAIL");
  }

  std::printf("\n--- prometheus ---\n%s",
              telemetry::ToPrometheusText(snap).c_str());
  std::printf("\n--- json ---\n%s", telemetry::ToJson(snap).c_str());
  return ok ? 0 : 1;
}

int RunRepl(int threads) {
  GraphStore store;
  EngineOptions opt;
  opt.num_threads = threads;
  opt.cascade.exact_budget = 500'000;
  QueryEngine engine(&store, opt);
  std::printf("engine: %d worker threads; type commands (quit to exit)\n",
              engine.num_threads());

  Rng rng(7);
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream cmd(line);
    std::string op;
    if (!(cmd >> op) || op[0] == '#') continue;
    if (op == "quit" || op == "exit") break;

    if (op == "gen") {
      std::string dataset = "aids";
      int count = 10;
      cmd >> dataset >> count;
      int first = -1, last = -1;
      for (int i = 0; i < count; ++i) {
        last = store.Insert(MakeQueryGraph(dataset, &rng));
        if (first < 0) first = last;
      }
      std::printf("inserted %d %s graphs, ids %d..%d (epoch %llu)\n", count,
                  dataset.c_str(), first, last,
                  static_cast<unsigned long long>(store.Epoch()));
    } else if (op == "add") {
      std::string path, error;
      cmd >> path;
      std::vector<Graph> graphs = LoadGraphs(path, &error);
      if (!error.empty()) {
        std::printf("error: %s\n", error.c_str());
        continue;
      }
      for (Graph& g : graphs) store.Insert(std::move(g));
      std::printf("inserted %zu graphs from %s (size %d, epoch %llu)\n",
                  graphs.size(), path.c_str(), store.Size(),
                  static_cast<unsigned long long>(store.Epoch()));
    } else if (op == "rm") {
      int id = -1;
      cmd >> id;
      const bool erased = store.Erase(id);
      std::printf(erased ? "erased %d (epoch %llu)\n"
                         : "no graph with id %d (epoch %llu)\n",
                  id, static_cast<unsigned long long>(store.Epoch()));
    } else if (op == "save") {
      std::string path, error;
      cmd >> path;
      // Passing the engine's index persists its compacted VP-tree, so a
      // later `load` skips the index rebuild.
      if (SaveGraphStore(store, path, &error, engine.index()))
        std::printf("saved %d graphs to %s\n", store.Size(), path.c_str());
      else
        std::printf("error: %s\n", error.c_str());
    } else if (op == "load") {
      std::string path, error;
      cmd >> path;
      if (LoadGraphStore(&store, path, &error, engine.index()))
        std::printf("loaded %d graphs from %s (epoch %llu)\n", store.Size(),
                    path.c_str(),
                    static_cast<unsigned long long>(store.Epoch()));
      else
        std::printf("error: %s\n", error.c_str());
    } else if (op == "range" || op == "topk") {
      int arg = 3, n = 1;
      cmd >> arg >> n;
      for (int q = 0; q < n; ++q) {
        Graph query = MakeQueryGraph("aids", &rng);
        std::printf("query %d (n=%d m=%d):\n", q, query.NumNodes(),
                    query.NumEdges());
        if (op == "topk") {
          TopKResult res = engine.TopK(query, arg);
          for (const TopKHit& h : res.hits)
            std::printf("    id %4d  ged %d\n", h.id, h.ged);
          PrintStats(res.stats);
        } else {
          PrintRange(engine.Range(query, arg), arg);
        }
      }
    } else if (op == "batch") {
      int tau = 3, n = 4;
      cmd >> tau >> n;
      std::vector<Graph> queries;
      for (int q = 0; q < n; ++q)
        queries.push_back(MakeQueryGraph("aids", &rng));
      std::vector<RangeResult> results = engine.RangeBatch(queries, tau);
      for (int q = 0; q < n; ++q) {
        std::printf("query %d:\n", q);
        PrintRange(results[q], tau);
      }
    } else if (op == "info") {
      std::printf("size %d | epoch %llu | next id %d | cached pairs %zu\n",
                  store.Size(),
                  static_cast<unsigned long long>(store.Epoch()),
                  store.NextId(), engine.CacheSize());
      PrintMetricsSnapshot();
    } else {
      std::printf("unknown command: %s\n", op.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "repl") == 0)
    return RunRepl(argc > 2 ? std::atoi(argv[2]) : 0);
  if (argc > 1 && std::strcmp(argv[1], "metrics") == 0)
    return RunMetrics(argc > 2 ? argv[2] : "aids",
                      argc > 3 ? std::atoi(argv[3]) : 120,
                      argc > 4 ? std::atoi(argv[4]) : 4,
                      argc > 5 ? std::atoi(argv[5]) : 0);

  std::string dataset = argc > 1 ? argv[1] : "aids";
  int count = argc > 2 ? std::atoi(argv[2]) : 200;
  std::string mode = argc > 3 ? argv[3] : "range";
  int arg = argc > 4 ? std::atoi(argv[4]) : 3;
  int num_queries = argc > 5 ? std::atoi(argv[5]) : 5;
  int threads = argc > 6 ? std::atoi(argv[6]) : 0;

  Rng rng(7);
  GraphStore store;
  for (int i = 0; i < count; ++i) store.Insert(MakeQueryGraph(dataset, &rng));
  std::printf("corpus: %d %s graphs\n", store.Size(), dataset.c_str());

  EngineOptions opt;
  opt.num_threads = threads;
  opt.cascade.exact_budget = 500'000;
  QueryEngine engine(&store, opt);
  std::printf("engine: %d worker threads\n\n", engine.num_threads());

  for (int q = 0; q < num_queries; ++q) {
    Graph query = MakeQueryGraph(dataset, &rng);
    std::printf("query %d (n=%d m=%d):\n", q, query.NumNodes(),
                query.NumEdges());
    if (mode == "topk") {
      TopKResult res = engine.TopK(query, arg);
      for (const TopKHit& h : res.hits)
        std::printf("    id %4d  ged %d\n", h.id, h.ged);
      PrintStats(res.stats);
    } else {
      PrintRange(engine.Range(query, arg), arg);
    }
  }
  return 0;
}
