/// \file search_cli.cpp
/// \brief Command-line front end for the filter–verify search engine:
/// builds a synthetic corpus, ingests it into a GraphStore, and serves
/// range or top-k queries over the work-stealing pool, printing per-query
/// results and cascade telemetry.
///
/// Usage:
///   search_cli [dataset] [count] [mode] [arg] [queries] [threads]
///     dataset  aids | linux | imdb | powerlaw   (default aids)
///     count    corpus size                      (default 200)
///     mode     range | topk                     (default range)
///     arg      tau for range, k for topk        (default 3)
///     queries  number of queries to serve       (default 5)
///     threads  worker threads, 0 = hardware     (default 0)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "search/query_engine.hpp"

using namespace otged;

namespace {

Graph MakeQueryGraph(const std::string& dataset, Rng* rng) {
  if (dataset == "linux") return LinuxLikeGraph(rng);
  if (dataset == "imdb") return ImdbLikeGraph(rng, 7, 30);
  if (dataset == "powerlaw")
    return PowerLawGraph(rng->UniformInt(10, 30), 2, rng);
  return AidsLikeGraph(rng);
}

void PrintStats(const QueryStats& stats) {
  const CascadeStats& c = stats.cascade;
  std::printf(
      "    %.2f ms | %ld candidates: %ld invariant-pruned, %ld "
      "branch-pruned, %ld heuristic, %ld ot, %ld exact | %ld OT calls, "
      "%ld exact calls | %.0f%% pruned before solvers\n",
      stats.wall_ms, c.candidates, c.pruned_invariant, c.pruned_branch,
      c.decided_heuristic, c.decided_ot, c.decided_exact, c.ot_calls,
      c.exact_calls, 100.0 * c.PrunedBeforeSolvers());
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = argc > 1 ? argv[1] : "aids";
  int count = argc > 2 ? std::atoi(argv[2]) : 200;
  std::string mode = argc > 3 ? argv[3] : "range";
  int arg = argc > 4 ? std::atoi(argv[4]) : 3;
  int num_queries = argc > 5 ? std::atoi(argv[5]) : 5;
  int threads = argc > 6 ? std::atoi(argv[6]) : 0;

  Rng rng(7);
  GraphStore store;
  for (int i = 0; i < count; ++i) store.Add(MakeQueryGraph(dataset, &rng));
  std::printf("corpus: %d %s graphs\n", store.Size(), dataset.c_str());

  EngineOptions opt;
  opt.num_threads = threads;
  opt.cascade.exact_budget = 500'000;
  QueryEngine engine(&store, opt);
  std::printf("engine: %d worker threads\n\n", engine.num_threads());

  for (int q = 0; q < num_queries; ++q) {
    Graph query = MakeQueryGraph(dataset, &rng);
    std::printf("query %d (n=%d m=%d):\n", q, query.NumNodes(),
                query.NumEdges());
    if (mode == "topk") {
      TopKResult res = engine.TopK(query, arg);
      for (const TopKHit& h : res.hits)
        std::printf("    id %4d  ged %d\n", h.id, h.ged);
      PrintStats(res.stats);
    } else {
      RangeResult res = engine.Range(query, arg);
      std::printf("    %zu hits within tau=%d:", res.hits.size(), arg);
      for (const RangeHit& h : res.hits)
        std::printf(" %d(ged%s%d)", h.id, h.exact_distance ? "=" : "<=",
                    h.ged);
      std::printf("\n");
      PrintStats(res.stats);
    }
  }
  return 0;
}
