#include "editpath/edit_path.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"

namespace otged {
namespace {

// The paper's Figure 1 example: G1 (3 nodes, path) -> G2 (4 nodes), GED 4.
// G1: u1 - u2 - u3 (labels A A B); edge (u2,u3).   Edges: (u1,u2), (u2,u3).
// G2: v1 - v2, v3 - v4; edges (v1,v2), (v2,v3)? We reproduce the spirit:
// relabel + insert node + delete edge + insert edge.
TEST(EditPathTest, Figure1StyleExample) {
  Graph g1(3, 0);
  g1.set_label(2, 1);  // u3 has a different label
  g1.AddEdge(0, 1);
  g1.AddEdge(1, 2);
  Graph g2(4, 0);
  g2.set_label(2, 2);  // v3 relabeled
  g2.set_label(3, 1);  // inserted green node
  g2.AddEdge(0, 1);
  g2.AddEdge(2, 3);
  NodeMatching match = {0, 1, 2};  // u_i -> v_i
  auto path = EditPathFromMatching(g1, g2, match);
  // relabel v3, insert v4, delete (u2,u3), insert (v3,v4) = 4 ops.
  EXPECT_EQ(path.size(), 4u);
  EXPECT_EQ(EditCostFromMatching(g1, g2, match), 4);
}

TEST(EditPathTest, IdenticalGraphsEmptyPath) {
  Graph g(3, 1);
  g.AddEdge(0, 1);
  NodeMatching id = {0, 1, 2};
  EXPECT_TRUE(EditPathFromMatching(g, g, id).empty());
  EXPECT_EQ(EditCostFromMatching(g, g, id), 0);
}

TEST(EditPathTest, CostMatchesPathLength) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 7);
    Graph g2 = AidsLikeGraph(&rng, 7, 9);
    // Arbitrary (identity-prefix) matching.
    NodeMatching match(g1.NumNodes());
    for (int i = 0; i < g1.NumNodes(); ++i) match[i] = i;
    auto path = EditPathFromMatching(g1, g2, match);
    EXPECT_EQ(static_cast<int>(path.size()),
              EditCostFromMatching(g1, g2, match));
  }
}

TEST(EditPathTest, ApplyPathReconstructsG2) {
  Rng rng(43);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 7);
    Graph g2 = AidsLikeGraph(&rng, 7, 9);
    NodeMatching match(g1.NumNodes());
    for (int i = 0; i < g1.NumNodes(); ++i) match[i] = i;
    auto path = EditPathFromMatching(g1, g2, match);
    Graph result = ApplyEditPath(g1, g2, match, path);
    EXPECT_TRUE(result == g2) << "trial " << trial;
  }
}

TEST(EditPathTest, PathIntersection) {
  std::vector<EditOp> p1 = {{EditOpType::kInsertEdge, 0, 1, 0},
                            {EditOpType::kRelabelNode, 2, -1, 5}};
  std::vector<EditOp> p2 = {{EditOpType::kRelabelNode, 2, -1, 5},
                            {EditOpType::kDeleteEdge, 0, 1, 0}};
  EXPECT_EQ(PathIntersectionSize(p1, p2), 1);
  EXPECT_EQ(PathIntersectionSize(p1, p1), 2);
  EXPECT_EQ(PathIntersectionSize({}, p2), 0);
}

TEST(EditPathTest, CouplingMatrixRoundTrip) {
  NodeMatching m = {2, 0, 3};
  Matrix pi = CouplingMatrixFromMatching(m, 4);
  EXPECT_EQ(pi.rows(), 3);
  EXPECT_EQ(pi.cols(), 4);
  EXPECT_DOUBLE_EQ(pi.Sum(), 3.0);
  EXPECT_EQ(MatchingFromCouplingMatrix(pi), m);
}

TEST(EditOpTest, ToStringCoversAllTypes) {
  EditOp relabel = {EditOpType::kRelabelNode, 1, -1, 2};
  EditOp ins_node = {EditOpType::kInsertNode, 1, -1, 2};
  EditOp ins_edge = {EditOpType::kInsertEdge, 1, 2, 0};
  EditOp del_edge = {EditOpType::kDeleteEdge, 1, 2, 0};
  EXPECT_NE(relabel.ToString().find("relabel"), std::string::npos);
  EXPECT_NE(ins_node.ToString().find("insert_node"), std::string::npos);
  EXPECT_NE(ins_edge.ToString().find("insert_edge"), std::string::npos);
  EXPECT_NE(del_edge.ToString().find("delete_edge"), std::string::npos);
}

}  // namespace
}  // namespace otged
