/// \file search_dynamic_test.cpp
/// \brief Dynamic GraphStore semantics: stable ids, snapshot isolation,
/// the erase log, Restore validation, the bound cache — and a
/// linearizability-style hammer test interleaving insert/erase with
/// range queries, asserting every result is exact for the consistent
/// corpus its reported epoch names. The hammer test is written to be
/// clean under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "exact/branch_and_bound.hpp"
#include "graph/generator.hpp"
#include "heuristics/bipartite.hpp"
#include "search/bound_cache.hpp"
#include "search/query_engine.hpp"

namespace otged {
namespace {

int ExactGed(const Graph& a, const Graph& b) {
  auto [g1, g2] = OrderBySize(a, b);
  BnbOptions opt;
  opt.initial_upper_bound = ClassicGed(*g1, *g2).ged;
  GedSearchResult res = BranchAndBoundGed(*g1, *g2, opt);
  EXPECT_TRUE(res.exact);
  return res.ged;
}

TEST(DynamicGraphStoreTest, StableIdsAcrossErase) {
  Rng rng(5);
  GraphStore store;
  std::vector<Graph> graphs;
  for (int i = 0; i < 5; ++i) {
    graphs.push_back(AidsLikeGraph(&rng, 3, 6));
    EXPECT_EQ(store.Insert(graphs.back()), i);
  }
  EXPECT_TRUE(store.Erase(2));
  EXPECT_FALSE(store.Erase(2));  // already gone
  EXPECT_FALSE(store.Erase(99));
  EXPECT_EQ(store.Size(), 4);
  EXPECT_FALSE(store.Contains(2));
  for (int id : {0, 1, 3, 4}) {
    EXPECT_TRUE(store.Contains(id));
    EXPECT_TRUE(store.graph(id) == graphs[id]);  // survivors keep their id
  }
  // The next insert gets a fresh id, not the recycled one.
  EXPECT_EQ(store.Insert(AidsLikeGraph(&rng, 3, 6)), 5);

  auto snap = store.Snapshot();
  EXPECT_EQ(snap->SlotOf(2), -1);
  EXPECT_EQ(snap->SlotOf(3), 2);  // slots stay dense and id-ascending
  EXPECT_EQ(snap->id(snap->SlotOf(4)), 4);
}

TEST(DynamicGraphStoreTest, AddAllIsOneMutation) {
  Rng rng(19);
  std::vector<Graph> graphs;
  for (int i = 0; i < 8; ++i) graphs.push_back(AidsLikeGraph(&rng, 3, 6));
  GraphStore store;
  store.Insert(graphs[0]);
  const uint64_t before = store.Epoch();
  store.AddAll(graphs);
  EXPECT_EQ(store.Epoch(), before + 1);  // one snapshot for the batch
  EXPECT_EQ(store.Size(), 9);
  EXPECT_EQ(store.NextId(), 9);  // ids still consecutive, in order
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(store.graph(1 + i) == graphs[i]) << i;
  }
}

TEST(DynamicGraphStoreTest, SnapshotIsolation) {
  Rng rng(11);
  GraphStore store;
  for (int i = 0; i < 4; ++i) store.Insert(AidsLikeGraph(&rng, 3, 6));
  auto pinned = store.Snapshot();
  const uint64_t pinned_epoch = pinned->epoch();

  EXPECT_TRUE(store.Erase(1));
  store.Insert(AidsLikeGraph(&rng, 3, 6));

  // The pinned snapshot still sees the pre-mutation corpus.
  EXPECT_EQ(pinned->Size(), 4);
  EXPECT_EQ(pinned->epoch(), pinned_epoch);
  EXPECT_GE(pinned->SlotOf(1), 0);
  // The store has moved on.
  EXPECT_EQ(store.Size(), 4);
  EXPECT_EQ(store.Epoch(), pinned_epoch + 2);
  EXPECT_FALSE(store.Contains(1));
}

TEST(DynamicGraphStoreTest, ErasedSinceReplaysTheLog) {
  Rng rng(13);
  GraphStore store;
  for (int i = 0; i < 6; ++i) store.Insert(AidsLikeGraph(&rng, 3, 6));
  size_t cursor = 0;
  EXPECT_TRUE(store.ErasedSince(&cursor).empty());

  store.Erase(3);
  store.Erase(0);
  EXPECT_EQ(store.ErasedSince(&cursor), (std::vector<int>{3, 0}));
  EXPECT_TRUE(store.ErasedSince(&cursor).empty());  // cursor advanced
  store.Erase(5);
  EXPECT_EQ(store.ErasedSince(&cursor), (std::vector<int>{5}));

  size_t fresh_cursor = 0;  // independent consumers replay from zero
  EXPECT_EQ(store.ErasedSince(&fresh_cursor), (std::vector<int>{3, 0, 5}));
}

TEST(DynamicGraphStoreTest, RestoreRejectsNonIncreasingIds) {
  Rng rng(17);
  GraphStore store;
  store.Insert(AidsLikeGraph(&rng, 3, 6));
  Graph a = AidsLikeGraph(&rng, 3, 6), b = AidsLikeGraph(&rng, 3, 6);
  std::vector<std::pair<int, Graph>> bad;
  bad.emplace_back(7, a);
  bad.emplace_back(7, b);
  EXPECT_FALSE(store.Restore(std::move(bad), 10));
  EXPECT_EQ(store.Size(), 1);  // untouched

  std::vector<std::pair<int, Graph>> good;
  good.emplace_back(3, a);
  good.emplace_back(9, b);
  EXPECT_TRUE(store.Restore(std::move(good), 5));
  EXPECT_EQ(store.Size(), 2);
  EXPECT_TRUE(store.Contains(3));
  EXPECT_TRUE(store.Contains(9));
  EXPECT_EQ(store.NextId(), 10);  // max(old counter, given, max id + 1)
  // The old corpus' ids were logged so caches can drop them.
  size_t cursor = 0;
  EXPECT_EQ(store.ErasedSince(&cursor), (std::vector<int>{0}));
}

TEST(BoundCacheTest, InsertLookupEraseAndEvict) {
  BoundCache cache(/*capacity=*/16);  // 1 entry per shard
  EXPECT_FALSE(cache.Lookup(42, 0).has_value());
  cache.Insert(42, 0, 3);
  cache.Insert(42, 1, 5);
  ASSERT_TRUE(cache.Lookup(42, 0).has_value());
  EXPECT_EQ(*cache.Lookup(42, 0), 3);
  EXPECT_EQ(*cache.Lookup(42, 1), 5);
  EXPECT_EQ(cache.Size(), 2u);

  cache.EraseGraph(0);
  EXPECT_FALSE(cache.Lookup(42, 0).has_value());
  EXPECT_TRUE(cache.Lookup(42, 1).has_value());

  // Re-insert updates in place; distinct fingerprints are distinct keys.
  cache.Insert(42, 1, 4);
  EXPECT_EQ(*cache.Lookup(42, 1), 4);
  cache.Insert(43, 1, 9);
  EXPECT_EQ(*cache.Lookup(43, 1), 9);

  // Hammering one shard's capacity evicts the least recently used.
  for (int i = 0; i < 64; ++i) cache.Insert(1000 + i, 7, i);
  EXPECT_LE(cache.Size(), 16u);

  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_FALSE(cache.Lookup(43, 1).has_value());
}

/// Serving keeps caching across mutations: a pair proven exact before an
/// unrelated erase is still answered from the cache afterwards, while the
/// erased graph's entries are dropped at the next query.
TEST(DynamicQueryTest, CacheSurvivesUnrelatedMutations) {
  Rng rng(23);
  GraphStore store;
  for (int i = 0; i < 12; ++i)
    store.Insert(RandomConnectedGraph(4, 1, 2, &rng));
  EngineOptions opt;
  opt.num_threads = 2;
  QueryEngine engine(&store, opt);
  Graph query = RandomConnectedGraph(4, 1, 2, &rng);

  RangeResult cold = engine.Range(query, 2);
  EXPECT_EQ(cold.stats.cascade.cache_hits, 0);
  const size_t cached = engine.CacheSize();
  EXPECT_GT(cached, 0u);

  EXPECT_TRUE(store.Erase(7));
  RangeResult warm = engine.Range(query, 2);
  EXPECT_GT(warm.stats.cascade.cache_hits, 0);
  EXPECT_LE(engine.CacheSize(), cached);  // id 7's entries were dropped
  // Same answer minus any id-7 hit.
  std::vector<int> expected;
  for (const RangeHit& h : cold.hits)
    if (h.id != 7) expected.push_back(h.id);
  std::vector<int> got;
  for (const RangeHit& h : warm.hits) got.push_back(h.id);
  EXPECT_EQ(got, expected);
}

/// The hammer: one mutator thread inserts and erases graphs while two
/// query threads serve range queries. Every result must be the exact
/// brute-force answer for the corpus at its reported epoch — a torn read
/// (mixing two epochs) or a stale index entry would break the equality.
TEST(DynamicQueryTest, ConcurrentMutationsSeeConsistentEpochs) {
  constexpr int kBase = 15, kExtras = 20, kQueries = 8, kRounds = 5;
  constexpr int kTau = 2;
  Rng rng(31);

  // Universe: base graphs get ids 0..kBase-1, the i-th extra gets id
  // kBase+i (one mutator, ids are assigned monotonically), so universe
  // index == stable id throughout.
  std::vector<Graph> universe;
  for (int i = 0; i < kBase + kExtras; ++i)
    universe.push_back(RandomConnectedGraph(rng.UniformInt(3, 5), 1, 2,
                                            &rng));
  std::vector<Graph> queries;
  for (int q = 0; q < kQueries; ++q)
    queries.push_back(RandomConnectedGraph(4, 1, 2, &rng));

  // Brute-force ground truth for every (query, universe graph) pair,
  // computed up front so verification is a pure lookup.
  std::vector<std::vector<int>> exact(kQueries);
  for (int q = 0; q < kQueries; ++q)
    for (const Graph& g : universe)
      exact[q].push_back(ExactGed(queries[q], g));

  GraphStore store;
  for (int i = 0; i < kBase; ++i) store.Insert(universe[i]);

  // Epoch -> sorted ids present. The mutator records the set after every
  // mutation; with a single mutator, Epoch() right after an op is that
  // op's epoch.
  std::mutex epochs_mu;
  std::map<uint64_t, std::vector<int>> epoch_sets;
  std::vector<int> base_ids(kBase);
  for (int i = 0; i < kBase; ++i) base_ids[i] = i;
  epoch_sets[store.Epoch()] = base_ids;

  EngineOptions opt;
  opt.num_threads = 2;
  QueryEngine engine(&store, opt);

  std::thread mutator([&] {
    for (int i = 0; i < kExtras; ++i) {
      const int id = store.Insert(universe[kBase + i]);
      ASSERT_EQ(id, kBase + i);
      {
        std::lock_guard<std::mutex> lock(epochs_mu);
        std::vector<int> present = base_ids;
        present.push_back(id);
        epoch_sets[store.Epoch()] = std::move(present);
      }
      ASSERT_TRUE(store.Erase(id));
      {
        std::lock_guard<std::mutex> lock(epochs_mu);
        epoch_sets[store.Epoch()] = base_ids;
      }
    }
  });

  struct Observation {
    int query;
    uint64_t epoch;
    std::vector<int> hit_ids;
  };
  std::vector<std::vector<Observation>> observed(2);
  auto serve = [&](int worker) {
    for (int round = 0; round < kRounds; ++round) {
      for (int q = 0; q < kQueries; ++q) {
        RangeResult res = engine.Range(queries[q], kTau);
        Observation obs{q, res.stats.epoch, {}};
        for (const RangeHit& h : res.hits) obs.hit_ids.push_back(h.id);
        observed[worker].push_back(std::move(obs));
      }
    }
  };
  std::thread querier0([&] { serve(0); });
  std::thread querier1([&] { serve(1); });
  mutator.join();
  querier0.join();
  querier1.join();

  for (const auto& worker_obs : observed) {
    for (const Observation& obs : worker_obs) {
      auto it = epoch_sets.find(obs.epoch);
      ASSERT_NE(it, epoch_sets.end())
          << "served epoch " << obs.epoch << " was never a corpus state";
      std::vector<int> expected;
      for (int id : it->second)
        if (exact[obs.query][id] <= kTau) expected.push_back(id);
      EXPECT_EQ(obs.hit_ids, expected)
          << "query " << obs.query << " at epoch " << obs.epoch;
    }
  }
}

}  // namespace
}  // namespace otged
