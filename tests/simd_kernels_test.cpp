/// \file simd_kernels_test.cpp
/// \brief Scalar/SIMD twin equivalence for every vectorized kernel, swept
/// over sizes 3..64 so lane remainders (non-multiples of the vector
/// width) are exercised on both sides of every block boundary.
///
/// The contract split mirrors src/core/simd.hpp: integer kernels (WL
/// color refinement, degree-sequence L1 bound) and the assignment
/// solvers (whose vector bodies preserve the scalar association and
/// first-index tie-breaks) must match BIT FOR BIT; the reassociated
/// float kernels (Sinkhorn plain/log, GW tensor product) to a bounded
/// relative tolerance. The public entry points must dispatch to whichever
/// twin simd::Enabled() selects, so OTGED_SIMD=off runs are exactly the
/// scalar twins.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "assignment/hungarian.hpp"
#include "assignment/lapjv.hpp"
#include "core/random.hpp"
#include "core/simd.hpp"
#include "graph/generator.hpp"
#include "graph/wl_hash.hpp"
#include "ot/gromov.hpp"
#include "ot/sinkhorn.hpp"
#include "search/graph_store.hpp"

namespace otged {
namespace {

/// Bounded-ulp tolerance for the reassociated float kernels (vector
/// HSum order + the ~1 ulp vector exp, accumulated over <= 64 lanes).
constexpr double kUlpTol = 1e-9;

Matrix RandomCost(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m[i] = rng.Uniform(0, 1);
  return m;
}

/// Relative difference scaled to the larger magnitude (>= 1, so values
/// near zero are compared absolutely).
double RelDiff(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

void ExpectClose(const Matrix& a, const Matrix& b, const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int i = 0; i < a.size(); ++i)
    ASSERT_LE(RelDiff(a[i], b[i]), kUlpTol) << what << " entry " << i;
}

void ExpectSameAssignment(const AssignmentResult& a, const AssignmentResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.cost, b.cost) << what;          // bit-equal, not near
  EXPECT_EQ(a.row_to_col, b.row_to_col) << what;
  EXPECT_EQ(a.feasible, b.feasible) << what;
}

TEST(SimdTwinTest, AssignmentSolversBitIdentical) {
  for (int n = 3; n <= 64; ++n) {
    const uint64_t s = static_cast<uint64_t>(n);
    Matrix cost = RandomCost(n, n, 10 + s);
    ExpectSameAssignment(detail::SolveAssignmentScalar(cost),
                         detail::SolveAssignmentSimd(cost),
                         "hungarian n=" + std::to_string(n));
    ExpectSameAssignment(detail::SolveAssignmentJVScalar(cost),
                         detail::SolveAssignmentJVSimd(cost),
                         "lapjv n=" + std::to_string(n));
    // Ties force the first-index tie-break through the vector min scans.
    Matrix tied(n, n);
    Rng trng(70 + s);
    for (int i = 0; i < tied.size(); ++i)
      tied[i] = static_cast<double>(trng.UniformInt(0, 3));
    ExpectSameAssignment(detail::SolveAssignmentScalar(tied),
                         detail::SolveAssignmentSimd(tied),
                         "hungarian tied n=" + std::to_string(n));
    ExpectSameAssignment(detail::SolveAssignmentJVScalar(tied),
                         detail::SolveAssignmentJVSimd(tied),
                         "lapjv tied n=" + std::to_string(n));
    // Forbidden entries exercise the masked scans.
    Matrix masked = RandomCost(n, n, 40 + s);
    Rng mrng(50 + s);
    for (int i = 0; i < masked.size(); ++i)
      if (mrng.UniformInt(0, 4) == 0) masked[i] = kAssignInf;
    ExpectSameAssignment(detail::SolveAssignmentScalar(masked),
                         detail::SolveAssignmentSimd(masked),
                         "hungarian masked n=" + std::to_string(n));
    ExpectSameAssignment(detail::SolveAssignmentJVScalar(masked),
                         detail::SolveAssignmentJVSimd(masked),
                         "lapjv masked n=" + std::to_string(n));
  }
}

TEST(SimdTwinTest, SinkhornTwinsBoundedUlp) {
  for (int n = 3; n <= 64; ++n) {
    const uint64_t s = static_cast<uint64_t>(n);
    Matrix cost = RandomCost(n, n, 100 + s);
    Matrix mu = Matrix::ColVec(n, 1.0), nu = Matrix::ColVec(n, 1.0);
    SinkhornOptions opt;
    opt.max_iters = 25;
    const SinkhornResult ps = detail::SinkhornPlainScalar(cost, mu, nu, opt);
    const SinkhornResult pv = detail::SinkhornPlainSimd(cost, mu, nu, opt);
    ASSERT_LE(RelDiff(ps.cost, pv.cost), kUlpTol) << "plain n=" << n;
    ExpectClose(ps.coupling, pv.coupling, "plain n=" + std::to_string(n));
    opt.log_domain = true;
    const SinkhornResult ls = detail::SinkhornLogScalar(cost, mu, nu, opt);
    const SinkhornResult lv = detail::SinkhornLogSimd(cost, mu, nu, opt);
    ASSERT_LE(RelDiff(ls.cost, lv.cost), kUlpTol) << "log n=" << n;
    ExpectClose(ls.coupling, lv.coupling, "log n=" + std::to_string(n));
  }
}

TEST(SimdTwinTest, GwTensorTwinsBoundedUlp) {
  for (int n = 3; n <= 64; n += (n < 16 ? 1 : 7)) {
    const uint64_t s = static_cast<uint64_t>(n);
    Rng rng(200 + s);
    Graph g1 = PowerLawGraph(n, 2, &rng);
    Graph g2 = PowerLawGraph(n, 2, &rng);
    Matrix a1 = g1.AdjacencyMatrix(), a2 = g2.AdjacencyMatrix();
    Matrix pi = RandomCost(n, n, 300 + s);
    ExpectClose(detail::GwTensorProductScalar(a1, a2, pi),
                detail::GwTensorProductSimd(a1, a2, pi),
                "gw n=" + std::to_string(n));
    // Edge-labeled variant: per-class indicators from labeled graphs.
    Graph l1 = AidsLikeGraph(&rng, std::max(3, n / 2), n);
    Graph l2 = AidsLikeGraph(&rng, std::max(3, n / 2), n);
    const int padded = std::max(l1.NumNodes(), l2.NumNodes());
    std::vector<Label> alphabet = l1.EdgeLabelAlphabet();
    for (Label l : l2.EdgeLabelAlphabet()) alphabet.push_back(l);
    std::sort(alphabet.begin(), alphabet.end());
    alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                   alphabet.end());
    const std::vector<Matrix> c1 = EdgeClassMatrices(l1, padded, alphabet);
    const std::vector<Matrix> c2 = EdgeClassMatrices(l2, padded, alphabet);
    Matrix lpi = RandomCost(padded, padded, 400 + s);
    ExpectClose(detail::GwTensorProductClassesScalar(c1, c2, lpi),
                detail::GwTensorProductClassesSimd(c1, c2, lpi),
                "gw classes n=" + std::to_string(n));
  }
}

TEST(SimdTwinTest, WlColorsBitIdentical) {
  for (int n = 3; n <= 64; ++n) {
    const uint64_t s = static_cast<uint64_t>(n);
    Rng rng(500 + s);
    Graph pl = PowerLawGraph(n, 2, &rng);
    EXPECT_EQ(detail::RefinedColorsScalar(pl, 3),
              detail::RefinedColorsSimd(pl, 3))
        << "powerlaw n=" << n;
    Graph labeled = AidsLikeGraph(&rng, n, n + 4);
    EXPECT_EQ(detail::RefinedColorsScalar(labeled, 4),
              detail::RefinedColorsSimd(labeled, 4))
        << "labeled n=" << n;
  }
}

TEST(SimdTwinTest, DegreeBoundBitIdentical) {
  for (int n = 0; n <= 64; ++n) {
    const uint64_t s = static_cast<uint64_t>(n);
    Rng rng(600 + s);
    std::vector<int> a(static_cast<size_t>(n));
    std::vector<int> b(static_cast<size_t>(rng.UniformInt(0, n + 5)));
    for (int& d : a) d = rng.UniformInt(0, 12);
    for (int& d : b) d = rng.UniformInt(0, 12);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(detail::DegreeSequenceEdgeBoundScalar(a, b),
              detail::DegreeSequenceEdgeBoundSimd(a, b))
        << "n=" << n;
  }
}

TEST(SimdTwinTest, PublicEntryPointsDispatchOnEnabled) {
  const int n = 17;
  Matrix cost = RandomCost(n, n, 7);
  const AssignmentResult twin = simd::Enabled()
                                    ? detail::SolveAssignmentSimd(cost)
                                    : detail::SolveAssignmentScalar(cost);
  ExpectSameAssignment(SolveAssignment(cost), twin, "hungarian dispatch");
  const AssignmentResult jtwin = simd::Enabled()
                                     ? detail::SolveAssignmentJVSimd(cost)
                                     : detail::SolveAssignmentJVScalar(cost);
  ExpectSameAssignment(SolveAssignmentJV(cost), jtwin, "lapjv dispatch");

  Matrix mu = Matrix::ColVec(n, 1.0), nu = Matrix::ColVec(n, 1.0);
  SinkhornOptions sopt;
  sopt.max_iters = 15;
  const SinkhornResult stwin =
      simd::Enabled() ? detail::SinkhornPlainSimd(cost, mu, nu, sopt)
                      : detail::SinkhornPlainScalar(cost, mu, nu, sopt);
  const SinkhornResult spub = Sinkhorn(cost, mu, nu, sopt);
  EXPECT_EQ(spub.cost, stwin.cost);  // dispatch, so bit-equal
  EXPECT_EQ(spub.iters, stwin.iters);

  // ActiveDoubleLanes reflects the switch: the compile-time lane width
  // when enabled, 1 when the environment forced the scalar twins.
  EXPECT_EQ(simd::ActiveDoubleLanes(),
            simd::Enabled() ? simd::kDoubleLanes : 1);
}

}  // namespace
}  // namespace otged
