/// \file search_index_hammer_test.cpp
/// \brief Concurrency hammer for the candidate index, written to be
/// clean under ThreadSanitizer: one mutator thread churns the store
/// while query threads pull snapshot-consistent views and cross-check
/// indexed candidate sets against a brute-force scan of the very
/// snapshot each view was built for — a torn view, a stale posting, or
/// a half-applied VP-tree overlay would break the equality. A second
/// test hammers the full engine and verifies every served answer
/// against per-epoch exact ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "exact/branch_and_bound.hpp"
#include "graph/generator.hpp"
#include "heuristics/bipartite.hpp"
#include "search/index/graph_index.hpp"
#include "search/query_engine.hpp"

namespace otged {
namespace {

int ExactGed(const Graph& a, const Graph& b) {
  auto [g1, g2] = OrderBySize(a, b);
  BnbOptions opt;
  opt.initial_upper_bound = ClassicGed(*g1, *g2).ged;
  GedSearchResult res = BranchAndBoundGed(*g1, *g2, opt);
  EXPECT_TRUE(res.exact);
  return res.ged;
}

/// The index-level hammer: every view a querier obtains must agree with
/// a linear scan of the snapshot it claims to represent. The rebuild
/// threshold is forced low so the concurrent path crosses incremental
/// advances AND full VP-tree rebuilds.
TEST(IndexHammerTest, ConcurrentViewsMatchTheirSnapshots) {
  constexpr int kBase = 60, kMutations = 80, kTau = 2;
  Rng rng(171);
  GraphStore store;
  std::vector<Graph> pool;
  for (int i = 0; i < kBase; ++i) pool.push_back(AidsLikeGraph(&rng, 3, 9));
  store.AddAll(pool);
  std::vector<GraphInvariants> queries;
  for (int q = 0; q < 6; ++q)
    queries.push_back(ComputeInvariants(AidsLikeGraph(&rng, 3, 9)));

  IndexOptions iopt;
  iopt.vp_rebuild_min = 8;  // force rebuilds under churn
  iopt.vp_rebuild_fraction = 0.05;
  GraphIndex index(iopt);
  (void)index.ViewFor(store.Snapshot());

  std::thread mutator([&] {
    Rng mrng(172);
    for (int i = 0; i < kMutations; ++i) {
      if (i % 2 == 0) {
        store.Insert(pool[static_cast<size_t>(i) % pool.size()]);
      } else {
        (void)store.Erase(mrng.UniformInt(0, store.NextId() - 1));
      }
    }
  });

  auto serve = [&] {
    for (int round = 0; round < 40; ++round) {
      auto snap = store.Snapshot();
      auto view = index.ViewFor(snap);
      ASSERT_EQ(view->epoch(), snap->epoch());
      ASSERT_EQ(view->Size(), snap->Size());
      const GraphInvariants& qi =
          queries[static_cast<size_t>(round) % queries.size()];

      // Brute ground truth straight from the pinned snapshot.
      std::vector<int> lb_expected;
      for (int slot = 0; slot < snap->Size(); ++slot)
        if (InvariantLowerBound(qi, snap->invariants(slot)) <= kTau)
          lb_expected.push_back(snap->id(slot));

      std::vector<int> lb_got;
      IndexStats stats;
      view->LbRangeCandidates(qi, kTau, &lb_got, &stats);
      ASSERT_EQ(lb_got, lb_expected) << "epoch " << snap->epoch();

      std::vector<int> cand;
      IndexStats cstats;
      view->RangeCandidates(qi, kTau, &cand, &cstats);
      ASSERT_EQ(cstats.scanned, snap->Size());
      ASSERT_EQ(cstats.scanned, cstats.candidates + cstats.PrunedTotal());
      for (int id : lb_expected)  // superset of every true hit
        ASSERT_TRUE(std::binary_search(cand.begin(), cand.end(), id))
            << "epoch " << snap->epoch() << " id " << id;

      std::vector<std::pair<int, int>> seeds;
      IndexStats kstats;
      view->TopKSeeds(qi, 5, &seeds, &kstats);
      std::vector<std::pair<int, int>> brute;
      for (int slot = 0; slot < snap->Size(); ++slot)
        brute.emplace_back(
            InvariantLowerBound(qi, snap->invariants(slot)),
            snap->id(slot));
      std::sort(brute.begin(), brute.end());
      brute.resize(std::min<size_t>(brute.size(), 5));
      ASSERT_EQ(seeds, brute) << "epoch " << snap->epoch();
    }
  };
  std::thread querier0(serve);
  std::thread querier1(serve);
  mutator.join();
  querier0.join();
  querier1.join();
}

/// The engine-level hammer: indexed range queries racing one mutator
/// must return the exact brute-force answer for the corpus at their
/// reported epoch.
TEST(IndexHammerTest, IndexedServingIsExactAtEveryEpoch) {
  constexpr int kBase = 12, kExtras = 14, kQueries = 5, kRounds = 4;
  constexpr int kTau = 2;
  Rng rng(191);

  std::vector<Graph> universe;
  for (int i = 0; i < kBase + kExtras; ++i)
    universe.push_back(AidsLikeGraph(&rng, 3, 6));
  std::vector<Graph> queries;
  for (int q = 0; q < kQueries; ++q)
    queries.push_back(AidsLikeGraph(&rng, 3, 6));

  std::vector<std::vector<int>> exact(kQueries);
  for (int q = 0; q < kQueries; ++q)
    for (const Graph& g : universe)
      exact[static_cast<size_t>(q)].push_back(ExactGed(queries[q], g));

  GraphStore store;
  for (int i = 0; i < kBase; ++i) store.Insert(universe[i]);

  std::mutex epochs_mu;
  std::map<uint64_t, std::vector<int>> epoch_sets;
  std::vector<int> base_ids(kBase);
  for (int i = 0; i < kBase; ++i) base_ids[i] = i;
  epoch_sets[store.Epoch()] = base_ids;

  EngineOptions opt;
  opt.num_threads = 2;
  opt.index.vp_rebuild_min = 4;  // cross the rebuild path mid-hammer
  opt.index.vp_rebuild_fraction = 0.05;
  QueryEngine engine(&store, opt);

  std::thread mutator([&] {
    for (int i = 0; i < kExtras; ++i) {
      const int id = store.Insert(universe[kBase + i]);
      ASSERT_EQ(id, kBase + i);
      {
        std::lock_guard<std::mutex> lock(epochs_mu);
        std::vector<int> present = base_ids;
        present.push_back(id);
        epoch_sets[store.Epoch()] = std::move(present);
      }
      ASSERT_TRUE(store.Erase(id));
      {
        std::lock_guard<std::mutex> lock(epochs_mu);
        epoch_sets[store.Epoch()] = base_ids;
      }
    }
  });

  struct Observation {
    int query;
    uint64_t epoch;
    std::vector<int> hit_ids;
  };
  std::vector<std::vector<Observation>> observed(2);
  auto serve = [&](int worker) {
    for (int round = 0; round < kRounds; ++round) {
      for (int q = 0; q < kQueries; ++q) {
        RangeResult res = engine.Range(queries[q], kTau);
        EXPECT_EQ(res.stats.index.scanned,
                  res.stats.index.candidates +
                      res.stats.index.PrunedTotal());
        Observation obs{q, res.stats.epoch, {}};
        for (const RangeHit& h : res.hits) obs.hit_ids.push_back(h.id);
        observed[static_cast<size_t>(worker)].push_back(std::move(obs));
      }
    }
  };
  std::thread querier0([&] { serve(0); });
  std::thread querier1([&] { serve(1); });
  mutator.join();
  querier0.join();
  querier1.join();

  for (const auto& worker_obs : observed) {
    for (const Observation& obs : worker_obs) {
      auto it = epoch_sets.find(obs.epoch);
      ASSERT_NE(it, epoch_sets.end())
          << "served epoch " << obs.epoch << " was never a corpus state";
      std::vector<int> expected;
      for (int id : it->second)
        if (exact[static_cast<size_t>(obs.query)][static_cast<size_t>(
                id)] <= kTau)
          expected.push_back(id);
      EXPECT_EQ(obs.hit_ids, expected)
          << "query " << obs.query << " at epoch " << obs.epoch;
    }
  }
}

}  // namespace
}  // namespace otged
