/// Tests for edge-labeled GED support (paper Appendix H.1): storage,
/// edit-path semantics, exact search, labeled GW tensor, and the
/// edge-label-aware GEDGW solver.
#include <gtest/gtest.h>

#include "exact/astar.hpp"
#include "graph/generator.hpp"
#include "models/gedgw.hpp"
#include "ot/gromov.hpp"

namespace otged {
namespace {

TEST(EdgeLabelStorageTest, RoundTrip) {
  Graph g(3, 0);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 2);  // default unlabeled
  EXPECT_TRUE(g.HasEdgeLabels());
  EXPECT_EQ(g.edge_label(0, 1), 2);
  EXPECT_EQ(g.edge_label(1, 0), 2);  // symmetric
  EXPECT_EQ(g.edge_label(1, 2), 0);
  g.set_edge_label(1, 2, 5);
  EXPECT_EQ(g.edge_label(2, 1), 5);
  g.RemoveEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.edge_label(0, 1), 0);  // label did not survive removal
  std::vector<Label> alphabet = g.EdgeLabelAlphabet();
  ASSERT_EQ(alphabet.size(), 1u);
  EXPECT_EQ(alphabet[0], 5);
}

TEST(EdgeLabelPathTest, RelabelEdgeCostsOne) {
  Graph g1(2, 0);
  g1.AddEdge(0, 1, 1);
  Graph g2(2, 0);
  g2.AddEdge(0, 1, 2);
  NodeMatching id = {0, 1};
  EXPECT_EQ(EditCostFromMatching(g1, g2, id), 1);
  auto path = EditPathFromMatching(g1, g2, id);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].type, EditOpType::kRelabelEdge);
  EXPECT_EQ(path[0].l, 2);
  Graph rebuilt = ApplyEditPath(g1, g2, id, path);
  EXPECT_TRUE(rebuilt == g2);
}

TEST(EdgeLabelPathTest, InsertionCarriesLabel) {
  Graph g1(2, 0);
  Graph g2(2, 0);
  g2.AddEdge(0, 1, 3);
  NodeMatching id = {0, 1};
  auto path = EditPathFromMatching(g1, g2, id);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].type, EditOpType::kInsertEdge);
  EXPECT_EQ(path[0].l, 3);
  EXPECT_TRUE(ApplyEditPath(g1, g2, id, path) == g2);
}

TEST(EdgeLabelExactTest, AstarCountsEdgeRelabels) {
  Rng rng(1);
  Graph g1 = AidsLikeGraph(&rng, 4, 6);
  AssignRandomEdgeLabels(&g1, 3, &rng);
  Graph g2 = g1;
  // Flip one edge label.
  int u = 0;
  while (g1.Degree(u) == 0) ++u;
  int v = g1.Neighbors(u)[0];
  g2.set_edge_label(u, v, g1.edge_label(u, v) == 0 ? 1 : 0);
  auto res = AstarGed(g1, g2);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->ged, 1);
}

TEST(EdgeLabelExactTest, SyntheticDeltaIsUpperBound) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = AidsLikeGraph(&rng, 4, 7);
    AssignRandomEdgeLabels(&g, 3, &rng);
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(1, 4);
    opt.num_labels = 29;
    opt.num_edge_labels = 3;
    GedPair pair = SyntheticEditPair(g, opt, &rng);
    EXPECT_EQ(EditCostFromMatching(pair.g1, pair.g2, pair.gt_matching),
              pair.ged);
    if (pair.g2.NumNodes() <= 8) {
      auto exact = AstarGed(pair.g1, pair.g2);
      ASSERT_TRUE(exact.has_value());
      EXPECT_LE(exact->ged, pair.ged);
    }
  }
}

TEST(GwClassesTest, ReducesToUnlabeledTensorProduct) {
  Rng rng(3);
  Graph g1 = RandomConnectedGraph(5, 2, 1, &rng);
  Graph g2 = RandomConnectedGraph(5, 3, 1, &rng);
  Matrix pi(5, 5);
  for (int i = 0; i < pi.size(); ++i) pi[i] = rng.Uniform(0, 0.4);
  std::vector<Label> empty_alphabet;
  std::vector<Matrix> c1 = EdgeClassMatrices(g1, 5, empty_alphabet);
  std::vector<Matrix> c2 = EdgeClassMatrices(g2, 5, empty_alphabet);
  Matrix labeled = GwTensorProductClasses(c1, c2, pi);
  Matrix plain =
      GwTensorProduct(g1.AdjacencyMatrix(), g2.AdjacencyMatrix(), pi);
  EXPECT_LT(labeled.MaxAbsDiff(plain), 1e-9);
}

TEST(GwClassesTest, LabelMismatchRegisters) {
  // Two identical triangles except one edge label -> the identity
  // coupling has GW energy 2 (ordered pairs), i.e., edit cost 1.
  Graph g1(3, 0), g2(3, 0);
  g1.AddEdge(0, 1, 1);
  g2.AddEdge(0, 1, 2);
  g1.AddEdge(1, 2);
  g2.AddEdge(1, 2);
  std::vector<Label> alphabet = {1, 2};
  std::vector<Matrix> c1 = EdgeClassMatrices(g1, 3, alphabet);
  std::vector<Matrix> c2 = EdgeClassMatrices(g2, 3, alphabet);
  Matrix pi = Matrix::Identity(3);
  Matrix lp = GwTensorProductClasses(c1, c2, pi);
  EXPECT_NEAR(pi.Dot(lp), 2.0, 1e-9);
}

TEST(EdgeLabelGedgwTest, DetectsRelabelCost) {
  Rng rng(4);
  GedgwSolver solver;
  double total_err = 0;
  int count = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = AidsLikeGraph(&rng, 5, 8);
    AssignRandomEdgeLabels(&g, 3, &rng);
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(1, 3);
    opt.num_labels = 29;
    opt.num_edge_labels = 3;
    GedPair pair = SyntheticEditPair(g, opt, &rng);
    Prediction p = solver.Predict(pair.g1, pair.g2);
    total_err += std::abs(p.ged - pair.ged);
    ++count;
  }
  EXPECT_LT(total_err / count, 2.5);
}

TEST(EdgeLabelGedgwTest, ZeroOnIdenticalLabeledGraphs) {
  Rng rng(5);
  Graph g = AidsLikeGraph(&rng, 5, 8);
  AssignRandomEdgeLabels(&g, 4, &rng);
  GedgwSolver solver;
  EXPECT_NEAR(solver.Predict(g, g).ged, 0.0, 1e-6);
}

}  // namespace
}  // namespace otged
