#include "exact/astar.hpp"
#include "exact/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "heuristics/bipartite.hpp"

namespace otged {
namespace {

TEST(AstarTest, IdenticalGraphsGiveZero) {
  Rng rng(1);
  Graph g = AidsLikeGraph(&rng, 4, 8);
  auto res = AstarGed(g, g);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->ged, 0);
  EXPECT_TRUE(res->exact);
}

TEST(AstarTest, SingleRelabel) {
  Graph g1(3, 0);
  g1.AddEdge(0, 1);
  g1.AddEdge(1, 2);
  Graph g2 = g1;
  g2.set_label(2, 5);
  auto res = AstarGed(g1, g2);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->ged, 1);
}

TEST(AstarTest, NodeInsertionCountsEdgeToo) {
  Graph g1(2, 0);
  g1.AddEdge(0, 1);
  Graph g2(3, 0);
  g2.AddEdge(0, 1);
  g2.AddEdge(1, 2);
  auto res = AstarGed(g1, g2);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->ged, 2);  // insert node + insert edge
}

TEST(AstarTest, MatchingRealizesReportedGed) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 6);
    Graph g2 = AidsLikeGraph(&rng, 6, 8);
    auto res = AstarGed(g1, g2);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(EditCostFromMatching(g1, g2, res->matching), res->ged);
  }
}

TEST(AstarTest, NeverExceedsSyntheticDelta) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = AidsLikeGraph(&rng, 4, 7);
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(1, 4);
    opt.num_labels = 29;
    GedPair pair = SyntheticEditPair(g, opt, &rng);
    if (pair.g2.NumNodes() > 8) continue;
    auto res = AstarGed(pair.g1, pair.g2);
    ASSERT_TRUE(res.has_value());
    EXPECT_LE(res->ged, pair.ged);     // Δ is an upper bound
    EXPECT_GE(res->ged,
              LabelSetLowerBound(pair.g1, pair.g2));  // admissible LB
  }
}

TEST(AstarTest, RespectsExpansionBudget) {
  Rng rng(4);
  Graph g1 = ImdbLikeGraph(&rng, 9, 10);
  Graph g2 = ImdbLikeGraph(&rng, 10, 12);
  if (g1.NumNodes() > g2.NumNodes()) std::swap(g1, g2);
  AstarOptions opt;
  opt.max_expansions = 3;
  auto res = AstarGed(g1, g2, opt);
  // With such a tiny budget the search gives up (unless trivially done).
  if (res.has_value()) {
    EXPECT_LE(res->expansions, 4);
  }
}

TEST(BeamTest, IsFeasibleUpperBound) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 6);
    Graph g2 = AidsLikeGraph(&rng, 6, 8);
    auto exact = AstarGed(g1, g2);
    ASSERT_TRUE(exact.has_value());
    GedSearchResult beam = BeamGed(g1, g2, 5);
    EXPECT_GE(beam.ged, exact->ged);
    EXPECT_EQ(EditCostFromMatching(g1, g2, beam.matching), beam.ged);
  }
}

TEST(BeamTest, HugeBeamIsExhaustiveAndExact) {
  // Beam quality is not monotone in the width (a wider beam can displace
  // good states with optimistic dead-ends), but an exhaustive beam must
  // recover the exact GED.
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 5);
    Graph g2 = AidsLikeGraph(&rng, 5, 7);
    auto exact = AstarGed(g1, g2);
    ASSERT_TRUE(exact.has_value());
    GedSearchResult beam = BeamGed(g1, g2, 1 << 20);
    EXPECT_TRUE(beam.exact);
    EXPECT_EQ(beam.ged, exact->ged);
  }
}

TEST(BnbTest, AgreesWithAstar) {
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 6);
    Graph g2 = AidsLikeGraph(&rng, 6, 8);
    auto astar = AstarGed(g1, g2);
    ASSERT_TRUE(astar.has_value());
    GedSearchResult bnb = BranchAndBoundGed(g1, g2);
    EXPECT_TRUE(bnb.exact);
    EXPECT_EQ(bnb.ged, astar->ged) << "trial " << trial;
  }
}

TEST(BnbTest, UpperBoundHintSpeedsSearch) {
  Rng rng(8);
  Graph g1 = LinuxLikeGraph(&rng, 7, 9);
  Graph g2 = LinuxLikeGraph(&rng, 9, 10);
  if (g1.NumNodes() > g2.NumNodes()) std::swap(g1, g2);
  GedSearchResult base = BranchAndBoundGed(g1, g2);
  BnbOptions opt;
  opt.initial_upper_bound = base.ged;
  GedSearchResult hinted = BranchAndBoundGed(g1, g2, opt);
  EXPECT_EQ(hinted.ged, base.ged);
  EXPECT_LE(hinted.expansions, base.expansions);
}

TEST(BnbTest, BudgetBoundaryIsInclusive) {
  // The budget counts node expansions the same way AstarGed does, and it
  // is inclusive: a search whose tree takes exactly `max_visits`
  // expansions completes with exact == true. (The old driver burned one
  // budget unit per *visit* including the root, so a budget equal to the
  // tree size came up one short.)
  Rng rng(11);
  int boundary_cases = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 4, 7);
    Graph g2 = AidsLikeGraph(&rng, 7, 9);
    if (g1.NumNodes() > g2.NumNodes()) std::swap(g1, g2);
    GedSearchResult full = BranchAndBoundGed(g1, g2);
    ASSERT_TRUE(full.exact);
    if (full.expansions < 2) continue;  // need room below the boundary
    ++boundary_cases;
    BnbOptions opt;
    opt.max_visits = full.expansions;  // tree is exactly this large
    GedSearchResult at = BranchAndBoundGed(g1, g2, opt);
    EXPECT_TRUE(at.exact) << "trial " << trial;
    EXPECT_EQ(at.ged, full.ged) << "trial " << trial;
    EXPECT_EQ(at.expansions, full.expansions) << "trial " << trial;
    opt.max_visits = full.expansions - 1;
    GedSearchResult under = BranchAndBoundGed(g1, g2, opt);
    EXPECT_FALSE(under.exact) << "trial " << trial;
    EXPECT_EQ(under.expansions, full.expansions - 1) << "trial " << trial;
    // Even a truncated search returns a feasible witness.
    EXPECT_EQ(EditCostFromMatching(g1, g2, under.matching), under.ged)
        << "trial " << trial;
  }
  EXPECT_GT(boundary_cases, 0);
}

TEST(ExactPropertyTest, GedIsSymmetricUnderPairSwap) {
  // GED(g1, g2) == GED(g2, g1); our API requires n1 <= n2 so we compare
  // same-size pairs directly.
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g1 = RandomConnectedGraph(6, 2, 4, &rng);
    Graph g2 = RandomConnectedGraph(6, 3, 4, &rng);
    auto a = AstarGed(g1, g2);
    auto b = AstarGed(g2, g1);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(a->ged, b->ged);
  }
}

TEST(ExactPropertyTest, PermutationInvariance) {
  // GED(g, permute(g)) == 0.
  Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = AidsLikeGraph(&rng, 4, 8);
    std::vector<int> perm(g.NumNodes());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
    rng.Shuffle(&perm);
    auto res = AstarGed(g, PermuteGraph(g, perm));
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->ged, 0);
  }
}

}  // namespace
}  // namespace otged
