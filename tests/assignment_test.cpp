#include "assignment/hungarian.hpp"
#include "assignment/lapjv.hpp"

#include <gtest/gtest.h>

#include "core/random.hpp"

namespace otged {
namespace {

// Exhaustive minimum over all permutations (n <= 8).
double BruteForceMin(const Matrix& cost) {
  const int n = cost.rows();
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  double best = 1e300;
  do {
    double total = 0;
    for (int i = 0; i < n; ++i) total += cost(i, perm[i]);
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, KnownSmallInstance) {
  Matrix cost = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  AssignmentResult res = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(res.cost, 5.0);  // 1 + 2 + 2
  EXPECT_TRUE(res.feasible);
}

TEST(HungarianTest, PermutationIsValid) {
  Rng rng(1);
  Matrix cost(6, 6);
  for (int i = 0; i < cost.size(); ++i) cost[i] = rng.Uniform(0, 10);
  AssignmentResult res = SolveAssignment(cost);
  std::vector<char> used(6, 0);
  for (int c : res.row_to_col) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 6);
    EXPECT_FALSE(used[c]);
    used[c] = 1;
  }
}

TEST(HungarianTest, MatchesBruteForceRandom) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    int n = rng.UniformInt(2, 7);
    Matrix cost(n, n);
    for (int i = 0; i < cost.size(); ++i) cost[i] = rng.UniformInt(0, 9);
    EXPECT_DOUBLE_EQ(SolveAssignment(cost).cost, BruteForceMin(cost));
  }
}

TEST(LapjvTest, AgreesWithHungarianOnRandomInstances) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    int n = rng.UniformInt(2, 12);
    Matrix cost(n, n);
    for (int i = 0; i < cost.size(); ++i) cost[i] = rng.Uniform(0, 100);
    double a = SolveAssignment(cost).cost;
    double b = SolveAssignmentJV(cost).cost;
    EXPECT_NEAR(a, b, 1e-6) << "n=" << n << " trial=" << trial;
  }
}

TEST(LapjvTest, IntegerCostsWithTies) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    int n = rng.UniformInt(2, 8);
    Matrix cost(n, n);
    for (int i = 0; i < cost.size(); ++i) cost[i] = rng.UniformInt(0, 3);
    EXPECT_DOUBLE_EQ(SolveAssignmentJV(cost).cost, BruteForceMin(cost));
  }
}

TEST(RectangularTest, PadsWithZeroRows) {
  Matrix cost = {{5, 1, 7}};
  AssignmentResult res = SolveAssignmentRect(cost);
  ASSERT_EQ(res.row_to_col.size(), 1u);
  EXPECT_EQ(res.row_to_col[0], 1);
  EXPECT_DOUBLE_EQ(res.cost, 1.0);
}

TEST(MaxWeightTest, MaximizesInsteadOfMinimizes) {
  Matrix w = {{1, 9}, {8, 2}};
  AssignmentResult res = SolveMaxWeightAssignment(w);
  EXPECT_DOUBLE_EQ(res.cost, 17.0);
  EXPECT_EQ(res.row_to_col[0], 1);
  EXPECT_EQ(res.row_to_col[1], 0);
}

TEST(MaxWeightTest, RectangularWeights) {
  Matrix w = {{1, 9, 4}, {8, 2, 4}};
  AssignmentResult res = SolveMaxWeightAssignment(w);
  EXPECT_DOUBLE_EQ(res.cost, 17.0);
}

TEST(ForbiddenTest, AvoidsForbiddenEntries) {
  Matrix cost = {{kAssignInf, 1.0}, {1.0, kAssignInf}};
  AssignmentResult res = SolveAssignment(cost);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.row_to_col[0], 1);
  EXPECT_EQ(res.row_to_col[1], 0);
}

TEST(ForbiddenTest, ReportsInfeasibleWhenForced) {
  Matrix cost = {{kAssignInf, kAssignInf}, {1.0, kAssignInf}};
  AssignmentResult res = SolveAssignment(cost);
  EXPECT_FALSE(res.feasible);
}

}  // namespace
}  // namespace otged
