#include "ot/gromov.hpp"

#include <gtest/gtest.h>

#include "core/random.hpp"
#include "exact/astar.hpp"
#include "graph/generator.hpp"
#include "models/gedgw.hpp"

namespace otged {
namespace {

// O(n^4) reference implementation of L(C1,C2) ⊗ pi.
Matrix NaiveTensorProduct(const Matrix& c1, const Matrix& c2,
                          const Matrix& pi) {
  Matrix out(c1.rows(), c2.rows(), 0.0);
  for (int i = 0; i < c1.rows(); ++i)
    for (int k = 0; k < c2.rows(); ++k) {
      double s = 0;
      for (int j = 0; j < c1.rows(); ++j)
        for (int l = 0; l < c2.rows(); ++l) {
          double d = c1(i, j) - c2(k, l);
          s += d * d * pi(j, l);
        }
      out(i, k) = s;
    }
  return out;
}

TEST(GwTensorTest, MatchesNaiveComputation) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    int n = rng.UniformInt(2, 6);
    Matrix c1(n, n), c2(n, n), pi(n, n);
    for (int i = 0; i < n; ++i)
      for (int j = i; j < n; ++j) {
        c1(i, j) = c1(j, i) = rng.UniformInt(0, 1);
        c2(i, j) = c2(j, i) = rng.UniformInt(0, 1);
      }
    for (int i = 0; i < pi.size(); ++i) pi[i] = rng.Uniform(0, 1);
    Matrix fast = GwTensorProduct(c1, c2, pi);
    Matrix naive = NaiveTensorProduct(c1, c2, pi);
    EXPECT_LT(fast.MaxAbsDiff(naive), 1e-9);
  }
}

TEST(GwObjectiveTest, ZeroForIsomorphicPermutation) {
  Rng rng(2);
  Graph g = RandomConnectedGraph(6, 3, 1, &rng);
  std::vector<int> perm = {2, 4, 0, 5, 1, 3};
  Graph h = PermuteGraph(g, perm);
  Matrix pi(6, 6, 0.0);
  for (int u = 0; u < 6; ++u) pi(u, perm[u]) = 1.0;
  EXPECT_NEAR(GwObjective(g.AdjacencyMatrix(), h.AdjacencyMatrix(), pi), 0.0,
              1e-12);
}

TEST(CgTest, ObjectiveDecreasesMonotonically) {
  Rng rng(3);
  Graph g1 = RandomConnectedGraph(7, 3, 3, &rng);
  Graph g2 = RandomConnectedGraph(7, 5, 3, &rng);
  Matrix m = GedgwSolver::NodeCostMatrix(g1, g2);
  Matrix a1 = g1.AdjacencyMatrix(), a2 = g2.AdjacencyMatrix();
  double prev = 1e300;
  for (int iters : {1, 3, 10, 30}) {
    CgOptions opt;
    opt.max_iters = iters;
    opt.tol = 0.0;
    CgResult res = FusedGwConditionalGradient(m, a1, a2, 1.0, opt);
    EXPECT_LE(res.objective, prev + 1e-9);
    prev = res.objective;
  }
}

TEST(CgTest, CouplingStaysDoublyStochastic) {
  Rng rng(4);
  Graph g1 = RandomConnectedGraph(6, 2, 1, &rng);
  Graph g2 = RandomConnectedGraph(6, 4, 1, &rng);
  CgResult res = FusedGwConditionalGradient(
      GedgwSolver::NodeCostMatrix(g1, g2), g1.AdjacencyMatrix(),
      g2.AdjacencyMatrix());
  Matrix ones = Matrix::ColVec(6, 1.0);
  EXPECT_LT(res.coupling.RowSums().MaxAbsDiff(ones), 1e-9);
  EXPECT_LT(res.coupling.ColSums().Transpose().MaxAbsDiff(ones), 1e-9);
  EXPECT_GE(res.coupling.Min(), -1e-12);
}

TEST(GedgwTest, ZeroOnIdenticalGraphs) {
  Rng rng(5);
  Graph g = AidsLikeGraph(&rng, 4, 8);
  GedgwSolver solver;
  Prediction p = solver.Predict(g, g);
  EXPECT_NEAR(p.ged, 0.0, 1e-6);
}

TEST(GedgwTest, ReasonableOnSyntheticPairs) {
  Rng rng(6);
  GedgwSolver solver;
  double total_err = 0;
  int count = 0;
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = AidsLikeGraph(&rng, 5, 9);
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(1, 4);
    opt.num_labels = 29;
    GedPair pair = SyntheticEditPair(g, opt, &rng);
    Prediction p = solver.Predict(pair.g1, pair.g2);
    total_err += std::abs(p.ged - pair.ged);
    ++count;
    // The CG objective evaluates a relaxation-then-rounded matching; it
    // stays within a small constant of the true GED on these tiny pairs.
    EXPECT_LT(std::abs(p.ged - pair.ged), 6.0);
  }
  EXPECT_LT(total_err / count, 2.0);
}

TEST(GedgwTest, CouplingSupportsPathGeneration) {
  Rng rng(7);
  Graph g = LinuxLikeGraph(&rng, 6, 9);
  SyntheticEditOptions opt;
  opt.num_edits = 3;
  opt.num_labels = 1;
  GedPair pair = SyntheticEditPair(g, opt, &rng);
  GedgwSolver solver;
  Prediction p = solver.Predict(pair.g1, pair.g2);
  EXPECT_EQ(p.coupling.rows(), pair.g1.NumNodes());
  EXPECT_EQ(p.coupling.cols(), pair.g2.NumNodes());
  EXPECT_TRUE(p.coupling.AllFinite());
}

TEST(GedgwTest, NodeCostMatrixSemantics) {
  Graph g1(1, 5);
  Graph g2(2, 5);
  g2.set_label(1, 7);
  Matrix m = GedgwSolver::NodeCostMatrix(g1, g2);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);  // same label
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);  // relabel
  EXPECT_DOUBLE_EQ(m(1, 0), 1.0);  // dummy row: insertion cost
  EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
}

}  // namespace
}  // namespace otged
