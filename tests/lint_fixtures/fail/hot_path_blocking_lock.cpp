// Fail fixture: a marked hot-path function that takes a blocking lock,
// allocates, and calls std::rand — all banned on the wait-free path.
#include <cstdlib>
#include <mutex>

namespace otged_lint_fixture {

std::mutex g_mu;
long g_total = 0;

// otged-lint: hot-path
void HotPathBlocks(long n) {
  std::lock_guard<std::mutex> lock(g_mu);
  long* scratch = new long(std::rand());
  g_total += n + *scratch;
  delete scratch;
}

}  // namespace otged_lint_fixture
