// Fail fixture: the guard name does not match the path-derived style.
#ifndef SOME_HANDWRITTEN_GUARD_H
#define SOME_HANDWRITTEN_GUARD_H

namespace otged_lint_fixture {
inline int WrongGuardMarker() { return 2; }
}  // namespace otged_lint_fixture

#endif  // SOME_HANDWRITTEN_GUARD_H
