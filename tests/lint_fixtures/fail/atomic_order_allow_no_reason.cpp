// Fail fixture: a suppression without a `-- reason` is itself reported.
#include <atomic>

namespace otged_lint_fixture {

std::atomic<int> g_value{0};

int SuppressedWithoutReason() {
  // otged-lint: allow(atomic-order)
  return g_value.load();
}

}  // namespace otged_lint_fixture
