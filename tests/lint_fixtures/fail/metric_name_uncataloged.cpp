// Fail fixture: a metric name absent from the README catalog, plus one
// name registered under two different kinds.
#include "telemetry/metrics.hpp"

namespace otged_lint_fixture {

void UncatalogedAndCollidingMetrics() {
  OTGED_COUNT("otged_bogus_fixture_only_total", "not in the catalog");
  OTGED_COUNT("otged_store_inserts_total", "counter here");
  OTGED_GAUGE_SET("otged_store_inserts_total", "but gauge here", 0);
}

}  // namespace otged_lint_fixture
