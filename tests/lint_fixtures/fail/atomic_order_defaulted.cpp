// Fail fixture: defaulted (seq_cst) memory orders on load, store, and
// RMW calls — each is an atomic-order finding.
#include <atomic>

namespace otged_lint_fixture {

std::atomic<int> g_value{0};

int DefaultedEverywhere() {
  g_value.store(1);
  g_value.fetch_add(2);
  return g_value.load();
}

}  // namespace otged_lint_fixture
