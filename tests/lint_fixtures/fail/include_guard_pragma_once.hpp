// Fail fixture: #pragma once instead of the repo's #ifndef guard style.
#pragma once

namespace otged_lint_fixture {
inline int PragmaOnceMarker() { return 3; }
}  // namespace otged_lint_fixture
