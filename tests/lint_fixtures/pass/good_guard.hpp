// Pass fixture: the guard below is exactly what the include-guard rule
// derives from this file's repo-relative path.
#ifndef OTGED_TESTS_LINT_FIXTURES_PASS_GOOD_GUARD_HPP_
#define OTGED_TESTS_LINT_FIXTURES_PASS_GOOD_GUARD_HPP_

namespace otged_lint_fixture {
inline int GoodGuardMarker() { return 1; }
}  // namespace otged_lint_fixture

#endif  // OTGED_TESTS_LINT_FIXTURES_PASS_GOOD_GUARD_HPP_
