// Pass fixture: exercises every rule's happy path in one file. The
// self-test requires zero findings here.
#include <atomic>

namespace otged_lint_fixture {

std::atomic<long> g_counter{0};

// Explicit memory orders satisfy atomic-order.
long BumpAndRead() {
  g_counter.fetch_add(1, std::memory_order_relaxed);
  return g_counter.load(std::memory_order_acquire);
}

// A suppression with a reason is honored, not reported.
long LegacyDefaultedOrder() {
  // otged-lint: allow(atomic-order) -- fixture: documents suppression form
  return g_counter.load();
}

// A marked hot path may use wait-free atomics freely.
// otged-lint: hot-path
void HotPathOk(long n) {
  g_counter.fetch_add(n, std::memory_order_relaxed);
}

// Outside marked hot paths, allocation and locks are no lint concern.
int* ColdPathAllocates() { return new int(42); }

}  // namespace otged_lint_fixture
