// Pass fixture: metric names drawn from the README catalog, each used
// with a single kind.
#include "telemetry/metrics.hpp"

namespace otged_lint_fixture {

void TouchCatalogedMetrics() {
  OTGED_COUNT("otged_store_inserts_total", "graphs ingested into the store");
  OTGED_GAUGE_SET("otged_store_size", "graphs in the published snapshot", 0);
}

}  // namespace otged_lint_fixture
