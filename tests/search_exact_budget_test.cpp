/// \file search_exact_budget_test.cpp
/// \brief Exact-tier budget exhaustion semantics: a starved tier-4 budget
/// must keep candidates conservatively (no false dismissals, ever), must
/// never claim an unproven distance as exact, and must be visible in both
/// CascadeStats::exact_incomplete and the global
/// otged_cascade_exact_incomplete_total counter — plus reconciliation of
/// the otged_exact_parallel_* counters when the parallel verifier runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/generator.hpp"
#include "search/query_engine.hpp"
#include "telemetry/metrics.hpp"

namespace otged {
namespace {

/// A pair that usually needs the exact tier: a near-miss whose invariant
/// and heuristic bounds disagree around small taus.
GedPair HardPair(Rng* rng) {
  Graph base = AidsLikeGraph(rng, 6, 9);
  SyntheticEditOptions opt;
  opt.num_edits = rng->UniformInt(2, 4);
  opt.num_labels = 29;
  return SyntheticEditPair(base, opt, rng);
}

TEST(ExactBudgetTest, StarvedVerdictsAreConservativeNeverExact) {
  CascadeOptions starved_opt;
  starved_opt.use_ot_verify = false;  // force bound gaps into tier 4
  starved_opt.exact_budget = 1;
  FilterCascade starved(starved_opt);
  CascadeOptions full_opt;
  full_opt.use_ot_verify = false;
  FilterCascade full(full_opt);

  Rng rng(31);
  int starved_runs = 0;
  for (int trial = 0; trial < 60; ++trial) {
    GedPair pair = HardPair(&rng);
    const GraphInvariants qi = ComputeInvariants(pair.g1);
    const GraphInvariants gi = ComputeInvariants(pair.g2);
    for (int tau = 2; tau <= 3; ++tau) {
      CascadeStats ss, fs;
      const CascadeVerdict sv = starved.BoundedDistance(
          pair.g1, qi, pair.g2, gi, tau, /*need_distance=*/true, &ss);
      const CascadeVerdict fv = full.BoundedDistance(
          pair.g1, qi, pair.g2, gi, tau, /*need_distance=*/true, &fs);
      ASSERT_EQ(fs.exact_incomplete, 0) << "full budget starved?!";
      EXPECT_EQ(ss.SettledTotal(), ss.candidates);
      if (ss.exact_incomplete > 0) {
        ++starved_runs;
        // The starved run reached tier 4, so its LB was <= tau; the
        // unlimited cascade then escalates past every LB tier too and
        // must prove the distance.
        ASSERT_TRUE(fv.exact_distance) << "trial " << trial;
        EXPECT_EQ(ss.exact_incomplete, 1);
        EXPECT_EQ(ss.exact_calls, 1);
        // The three guarantees of an exhausted exact tier: the candidate
        // is kept, the distance is flagged unproven, and the reported
        // value is still a feasible upper bound on the true GED.
        EXPECT_TRUE(sv.within) << "trial " << trial << " tau " << tau;
        EXPECT_FALSE(sv.exact_distance) << "trial " << trial;
        EXPECT_GE(sv.ged, fv.ged) << "trial " << trial;
      } else {
        // Not starved means decided, and every decision is proof-backed:
        // the starved cascade must agree with the unlimited one.
        EXPECT_EQ(sv.within, fv.within) << "trial " << trial;
        if (sv.exact_distance) {
          ASSERT_TRUE(fv.exact_distance);
          EXPECT_EQ(sv.ged, fv.ged);
        }
      }
    }
  }
  EXPECT_GT(starved_runs, 0) << "fixture never reached a starved tier 4";
}

TEST(ExactBudgetTest, StarvedEngineKeepsEveryTrueHitAndReconciles) {
  // Unlabeled graphs keep the invariant/label lower bounds weak and the
  // heuristic upper bound loose, so bound gaps actually reach tier 4.
  Rng rng(91);
  Graph query = LinuxLikeGraph(&rng, 8, 10);
  std::vector<Graph> corpus;
  for (int i = 0; i < 10; ++i) {
    SyntheticEditOptions eopt;
    eopt.num_edits = rng.UniformInt(1, 4);
    eopt.num_labels = 1;
    corpus.push_back(SyntheticEditPair(query, eopt, &rng).g2);
  }
  for (int i = 0; i < 30; ++i) corpus.push_back(LinuxLikeGraph(&rng, 6, 10));
  GraphStore store;
  store.AddAll(corpus);

  EngineOptions truth_opt;
  truth_opt.num_threads = 2;
  truth_opt.cascade.use_ot_verify = false;
  QueryEngine truth_engine(&store, truth_opt);
  EngineOptions starved_opt = truth_opt;
  starved_opt.cascade.exact_budget = 1;
  QueryEngine starved_engine(&store, starved_opt);

  constexpr int kTau = 4;
  const RangeResult truth = truth_engine.Range(query, kTau);
  ASSERT_EQ(truth.stats.cascade.exact_incomplete, 0);

#if OTGED_TELEMETRY_COMPILED
  telemetry::SetEnabled(true);
  const telemetry::MetricsSnapshot before =
      telemetry::Registry().Snapshot();
#endif
  const RangeResult got = starved_engine.Range(query, kTau);
  const TopKResult topk = starved_engine.TopK(query, 5);
  CascadeStats total;
  total.Merge(got.stats.cascade);
  total.Merge(topk.stats.cascade);
#if OTGED_TELEMETRY_COMPILED
  const telemetry::MetricsSnapshot after = telemetry::Registry().Snapshot();
#endif

  // A starved exact tier must actually have happened for this test to
  // mean anything; top-k forces need_distance, so bound gaps cannot be
  // settled short of tier 4.
  EXPECT_GT(total.exact_incomplete, 0);
  EXPECT_GE(total.exact_calls, total.exact_incomplete);

  // No false dismissals: every proven hit survives starvation.
  std::set<int> starved_ids;
  for (const RangeHit& h : got.hits) starved_ids.insert(h.id);
  for (const RangeHit& h : truth.hits)
    EXPECT_TRUE(starved_ids.count(h.id)) << "dropped true hit id " << h.id;
  // Conservative keeps are flagged unproven, never exact: any starved
  // hit claiming an exact distance must be a true hit.
  std::set<int> truth_ids;
  for (const RangeHit& h : truth.hits) truth_ids.insert(h.id);
  for (const RangeHit& h : got.hits) {
    if (h.exact_distance) {
      EXPECT_TRUE(truth_ids.count(h.id)) << "false exact hit id " << h.id;
    }
  }
  // Top-k under starvation: order still (ged, id), unproven entries
  // flagged.
  for (size_t i = 1; i < topk.hits.size(); ++i) {
    const TopKHit& a = topk.hits[i - 1];
    const TopKHit& b = topk.hits[i];
    EXPECT_TRUE(a.ged < b.ged || (a.ged == b.ged && a.id < b.id));
  }

#if OTGED_TELEMETRY_COMPILED
  // The same starvation counted two independent ways.
  EXPECT_EQ(after.CounterValue("otged_cascade_exact_incomplete_total") -
                before.CounterValue("otged_cascade_exact_incomplete_total"),
            total.exact_incomplete);
  EXPECT_EQ(after.CounterValue("otged_cascade_exact_calls_total") -
                before.CounterValue("otged_cascade_exact_calls_total"),
            total.exact_calls);
#endif
}

TEST(ExactBudgetTest, ParallelExactCountersReconcile) {
  Rng rng(57);
  Graph query = AidsLikeGraph(&rng, 7, 9);
  std::vector<Graph> corpus;
  for (int i = 0; i < 8; ++i) {
    SyntheticEditOptions eopt;
    eopt.num_edits = rng.UniformInt(1, 3);
    eopt.num_labels = 29;
    corpus.push_back(SyntheticEditPair(query, eopt, &rng).g2);
  }
  for (int i = 0; i < 20; ++i) corpus.push_back(AidsLikeGraph(&rng, 5, 9));
  GraphStore store;
  store.AddAll(corpus);

  EngineOptions opt;
  opt.num_threads = 2;
  opt.cascade.use_ot_verify = false;
  opt.cascade.parallel_exact_threads = 2;
  QueryEngine engine(&store, opt);

#if OTGED_TELEMETRY_COMPILED
  telemetry::SetEnabled(true);
  const telemetry::MetricsSnapshot before =
      telemetry::Registry().Snapshot();
#endif
  CascadeStats total;
  total.Merge(engine.TopK(query, 4).stats.cascade);
  total.Merge(engine.Range(query, 3).stats.cascade);
#if OTGED_TELEMETRY_COMPILED
  const telemetry::MetricsSnapshot after = telemetry::Registry().Snapshot();
#endif

  // Top-k seed refinement routes through the parallel verifier too, so
  // runs can exceed tier-4 exact_calls — never the other way around.
  EXPECT_GT(total.exact_parallel_runs, 0);
  EXPECT_GE(total.exact_parallel_runs, total.exact_calls);
  EXPECT_GT(total.exact_parallel_rounds, 0);
  // Every parallel run is dispatched inside some multi-pair batch.
  EXPECT_GT(total.exact_parallel_batches, 0);
  EXPECT_GE(total.exact_parallel_runs, total.exact_parallel_batches);

#if OTGED_TELEMETRY_COMPILED
  const struct {
    const char* counter;
    long CascadeStats::*field;
  } kParallelFields[] = {
      {"otged_exact_parallel_runs_total",
       &CascadeStats::exact_parallel_runs},
      {"otged_exact_parallel_expansions_total",
       &CascadeStats::exact_parallel_expansions},
      {"otged_exact_parallel_subtrees_total",
       &CascadeStats::exact_parallel_subtrees},
      {"otged_exact_parallel_rounds_total",
       &CascadeStats::exact_parallel_rounds},
      {"otged_exact_parallel_incumbent_updates_total",
       &CascadeStats::exact_parallel_incumbent_updates},
      {"otged_exact_parallel_batches_total",
       &CascadeStats::exact_parallel_batches},
  };
  for (const auto& nf : kParallelFields)
    EXPECT_EQ(after.CounterValue(nf.counter) - before.CounterValue(nf.counter),
              total.*nf.field)
        << nf.counter;
#endif
}

}  // namespace
}  // namespace otged
