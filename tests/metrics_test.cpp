#include "eval/metrics.hpp"

#include <gtest/gtest.h>

namespace otged {
namespace {

TEST(ValueMetricsTest, MaeAccuracyFeasibility) {
  std::vector<double> pred = {1.0, 2.4, 3.6, 5.0};
  std::vector<int> gt = {1, 2, 3, 4};
  EXPECT_NEAR(MeanAbsoluteError(pred, gt), (0 + 0.4 + 0.6 + 1.0) / 4, 1e-12);
  EXPECT_NEAR(Accuracy(pred, gt), 0.5, 1e-12);  // 1.0 and 2.4 round right
  EXPECT_NEAR(Feasibility(pred, gt), 1.0, 1e-12);
  std::vector<double> under = {1.0, 1.0, 2.0, 3.0};
  EXPECT_NEAR(Feasibility(under, gt), 0.25, 1e-12);  // only 1.0 >= 1
}

TEST(SpearmanTest, PerfectAndReversed) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {10, 20, 30, 40, 50};
  EXPECT_NEAR(SpearmanRho(a, b), 1.0, 1e-12);
  std::vector<double> r = {50, 40, 30, 20, 10};
  EXPECT_NEAR(SpearmanRho(a, r), -1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTies) {
  std::vector<double> a = {1, 2, 2, 3};
  std::vector<double> b = {1, 2, 2, 3};
  EXPECT_NEAR(SpearmanRho(a, b), 1.0, 1e-12);
}

TEST(KendallTest, KnownValue) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {1, 3, 2};
  // Pairs: (1,2)+(1,3) concordant, (2,3) discordant: tau = (2-1)/3.
  EXPECT_NEAR(KendallTau(a, b), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(KendallTau(a, a), 1.0, 1e-12);
}

TEST(PrecisionAtKTest, TopKOverlap) {
  std::vector<double> pred = {0.1, 0.9, 0.2, 0.8, 0.3, 0.7};
  std::vector<int> gt = {1, 6, 2, 5, 3, 4};
  // Top-3 smallest pred: indices {0,2,4}; top-3 gt: {0,2,4} -> 1.0.
  EXPECT_NEAR(PrecisionAtK(pred, gt, 3), 1.0, 1e-12);
  std::vector<double> bad = {0.9, 0.1, 0.8, 0.2, 0.7, 0.3};
  EXPECT_NEAR(PrecisionAtK(bad, gt, 3), 0.0, 1e-12);
}

TEST(PrecisionAtKTest, KLargerThanNIsClamped) {
  std::vector<double> pred = {2, 1};
  std::vector<int> gt = {2, 1};
  EXPECT_NEAR(PrecisionAtK(pred, gt, 10), 1.0, 1e-12);
}

TEST(PathQualityTest, OverlapScores) {
  std::vector<EditOp> gt = {{EditOpType::kInsertEdge, 0, 1, 0},
                            {EditOpType::kDeleteEdge, 1, 2, 0},
                            {EditOpType::kRelabelNode, 3, -1, 4}};
  std::vector<EditOp> pred = {{EditOpType::kInsertEdge, 0, 1, 0},
                              {EditOpType::kRelabelNode, 3, -1, 4}};
  PathQuality q = EvaluatePath(pred, gt);
  EXPECT_NEAR(q.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.precision, 1.0, 1e-12);
  EXPECT_NEAR(q.f1, 0.8, 1e-12);
}

TEST(PathQualityTest, EmptyPaths) {
  PathQuality q = EvaluatePath({}, {});
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(TriangleTest, CountsViolations) {
  std::vector<double> d12 = {1, 1};
  std::vector<double> d23 = {1, 1};
  std::vector<double> d13 = {1.5, 3.0};
  EXPECT_NEAR(TriangleInequalityRate(d12, d23, d13), 0.5, 1e-12);
}

}  // namespace
}  // namespace otged
