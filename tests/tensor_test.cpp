#include "nn/tensor.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/random.hpp"

namespace otged {
namespace {

// Numeric gradient check: perturbs each entry of `param` and compares the
// finite difference of `scalar_fn` with the autograd gradient.
void CheckGradient(Tensor param, const std::function<Tensor()>& scalar_fn,
                   double h = 1e-6, double tol = 1e-4) {
  Tensor loss = scalar_fn();
  param.ZeroGrad();
  loss = scalar_fn();
  loss.Backward();
  Matrix analytic = param.grad();
  ASSERT_FALSE(analytic.empty());
  for (int i = 0; i < param.mutable_value().size(); ++i) {
    double orig = param.mutable_value()[i];
    param.mutable_value()[i] = orig + h;
    double up = scalar_fn().item();
    param.mutable_value()[i] = orig - h;
    double down = scalar_fn().item();
    param.mutable_value()[i] = orig;
    double numeric = (up - down) / (2 * h);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "entry " << i;
  }
}

Matrix RandMat(int r, int c, Rng* rng) {
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m[i] = rng->Uniform(-1, 1);
  return m;
}

TEST(TensorTest, AddSubGradients) {
  Rng rng(1);
  Tensor a(RandMat(2, 3, &rng), true);
  Tensor b(RandMat(2, 3, &rng), true);
  CheckGradient(a, [&] { return Sum(Sub(Add(a, b), b)); });
}

TEST(TensorTest, MatMulGradient) {
  Rng rng(2);
  Tensor a(RandMat(3, 4, &rng), true);
  Tensor b(RandMat(4, 2, &rng), true);
  CheckGradient(a, [&] { return Sum(MatMul(a, b)); });
  CheckGradient(b, [&] { return Sum(MatMul(a, b)); });
}

TEST(TensorTest, HadamardAndDivGradients) {
  Rng rng(3);
  Tensor a(RandMat(2, 2, &rng), true);
  Matrix bm = RandMat(2, 2, &rng);
  for (int i = 0; i < bm.size(); ++i) bm[i] = 2.0 + std::abs(bm[i]);
  Tensor b(bm, true);
  CheckGradient(a, [&] { return Sum(Hadamard(a, b)); });
  CheckGradient(a, [&] { return Sum(CwiseDiv(a, b)); });
  CheckGradient(b, [&] { return Sum(CwiseDiv(a, b)); });
}

TEST(TensorTest, NonlinearityGradients) {
  Rng rng(4);
  Tensor a(RandMat(3, 3, &rng), true);
  CheckGradient(a, [&] { return Sum(TanhT(a)); });
  CheckGradient(a, [&] { return Sum(Sigmoid(a)); });
  CheckGradient(a, [&] { return Sum(ExpT(a)); });
}

TEST(TensorTest, ReluGradientAwayFromKink) {
  Matrix m = {{0.5, -0.5}, {1.5, -2.0}};
  Tensor a(m, true);
  CheckGradient(a, [&] { return Sum(Relu(a)); });
}

TEST(TensorTest, ShapeOpGradients) {
  Rng rng(5);
  Tensor a(RandMat(3, 2, &rng), true);
  Tensor b(RandMat(3, 2, &rng), true);
  CheckGradient(a, [&] { return Sum(ConcatCols(a, b)); });
  CheckGradient(a, [&] { return Sum(ConcatRows(a, b)); });
  CheckGradient(a, [&] { return Sum(SliceRows(ConcatRows(a, b), 1, 4)); });
  CheckGradient(a, [&] { return Sum(Transpose(a)); });
}

TEST(TensorTest, ReductionGradients) {
  Rng rng(6);
  Tensor a(RandMat(4, 3, &rng), true);
  Tensor b(RandMat(4, 3, &rng), true);
  CheckGradient(a, [&] { return Dot(a, b); });
  CheckGradient(a, [&] { return Sum(RowMean(a)); });
}

TEST(TensorTest, ScaleScalarGradients) {
  Rng rng(7);
  Tensor a(RandMat(2, 2, &rng), true);
  Tensor s(Matrix(1, 1, 0.7), true);
  CheckGradient(a, [&] { return Sum(ScaleScalar(a, s)); });
  CheckGradient(s, [&] { return Sum(ScaleScalar(a, s)); });
  CheckGradient(s, [&] { return Sum(ScaleOnePlus(a, s)); });
}

TEST(TensorTest, KernelExpGradients) {
  Rng rng(8);
  Matrix cm = RandMat(3, 4, &rng);
  for (int i = 0; i < cm.size(); ++i) cm[i] = std::abs(cm[i]);
  Tensor c(cm, true);
  Tensor log_eps(Matrix(1, 1, std::log(0.5)), true);
  CheckGradient(c, [&] { return Sum(KernelExp(c, log_eps)); });
  CheckGradient(log_eps, [&] { return Sum(KernelExp(c, log_eps)); });
}

TEST(TensorTest, LossGradients) {
  Rng rng(9);
  Matrix pm(2, 3);
  for (int i = 0; i < pm.size(); ++i) pm[i] = rng.Uniform(0.2, 0.8);
  Tensor p(pm, true);
  Matrix target(2, 3);
  for (int i = 0; i < target.size(); ++i) target[i] = rng.Bernoulli(0.5);
  CheckGradient(p, [&] { return BceLoss(p, target); });

  Tensor s(Matrix(1, 1, 0.3), true);
  CheckGradient(s, [&] { return MseLoss(s, 0.8); });
}

TEST(TensorTest, ChainedExpressionGradient) {
  // A GEDIOT-like chain: sigmoid(<tanh(A W B^T), softratio>) etc.
  Rng rng(10);
  Tensor a(RandMat(3, 4, &rng), true);
  Tensor w(RandMat(4, 4, &rng), true);
  Tensor b(RandMat(5, 4, &rng), true);
  auto fn = [&] {
    Tensor cost = TanhT(MatMul(MatMul(a, w), Transpose(b)));
    return MseLoss(Sigmoid(Sum(cost)), 0.25);
  };
  CheckGradient(w, fn);
}

TEST(TensorTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor a(Matrix(1, 1, 2.0), true);
  Sum(a).Backward();
  Sum(a).Backward();
  EXPECT_DOUBLE_EQ(a.grad()(0, 0), 2.0);
  a.ZeroGrad();
  EXPECT_TRUE(a.grad().empty());
}

TEST(TensorTest, DiamondDependencyGradient) {
  // y = x * x via two paths sharing one node: dy/dx = 2x.
  Tensor x(Matrix(1, 1, 3.0), true);
  Tensor y = Dot(x, x);
  y.Backward();
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 6.0);
}

TEST(TensorTest, UnrolledSinkhornIterationGradient) {
  // Mini Sinkhorn chain: grads must flow through CwiseDiv/MatMul loops.
  Rng rng(11);
  Matrix cm(3, 3);
  for (int i = 0; i < cm.size(); ++i) cm[i] = rng.Uniform(0, 1);
  Tensor c(cm, true);
  Tensor log_eps(Matrix(1, 1, std::log(0.3)), true);
  auto fn = [&] {
    Tensor k = KernelExp(c, log_eps);
    Tensor mu(Matrix::ColVec(3, 1.0)), nu(Matrix::ColVec(3, 1.0));
    Tensor phi(Matrix::ColVec(3, 1.0));
    Tensor psi;
    for (int it = 0; it < 3; ++it) {
      psi = CwiseDiv(nu, MatMul(Transpose(k), phi));
      phi = CwiseDiv(mu, MatMul(k, psi));
    }
    Tensor pi = Hadamard(k, MatMul(phi, Transpose(psi)));
    return Dot(c, pi);
  };
  CheckGradient(c, fn, 1e-6, 1e-3);
  CheckGradient(log_eps, fn, 1e-6, 1e-3);
}

}  // namespace
}  // namespace otged
