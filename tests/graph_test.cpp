#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace otged {
namespace {

Graph Triangle() {
  Graph g(3, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  return g;
}

TEST(GraphTest, BasicConstruction) {
  Graph g(4, 7);
  EXPECT_EQ(g.NumNodes(), 4);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_EQ(g.label(2), 7);
  g.set_label(2, 3);
  EXPECT_EQ(g.label(2), 3);
}

TEST(GraphTest, AddRemoveEdges) {
  Graph g(3);
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
  g.RemoveEdge(1, 0);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 0);
}

TEST(GraphTest, AddNode) {
  Graph g(1, 5);
  int v = g.AddNode(9);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(g.label(v), 9);
  g.AddEdge(0, v);
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(GraphTest, AdjacencyMatrix) {
  Graph g = Triangle();
  Matrix a = g.AdjacencyMatrix();
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 6.0);  // 3 undirected edges
}

TEST(GraphTest, OneHotLabels) {
  Graph g(2, 0);
  g.set_label(1, 2);
  Matrix x = g.OneHotLabels(3);
  EXPECT_DOUBLE_EQ(x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(x.Sum(), 2.0);
  // Unlabeled convention: single constant column.
  Matrix u = g.OneHotLabels(1);
  EXPECT_EQ(u.cols(), 1);
  EXPECT_DOUBLE_EQ(u.Sum(), 2.0);
}

TEST(GraphTest, Connectivity) {
  Graph g(3);
  g.AddEdge(0, 1);
  EXPECT_FALSE(g.IsConnected());
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(Graph(1).IsConnected());
  EXPECT_TRUE(Graph(0).IsConnected());
}

TEST(GraphTest, Invariants) {
  Graph g = Triangle();
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(GraphTest, Equality) {
  EXPECT_TRUE(Triangle() == Triangle());
  Graph g = Triangle();
  g.set_label(0, 1);
  EXPECT_FALSE(g == Triangle());
}

TEST(GraphTest, MaxEditOps) {
  Graph g1(2), g2 = Triangle();
  g1.AddEdge(0, 1);
  EXPECT_EQ(MaxEditOps(g1, g2), 3 + 3);
}

TEST(LabelSetLowerBoundTest, IdenticalGraphsGiveZero) {
  EXPECT_EQ(LabelSetLowerBound(Triangle(), Triangle()), 0);
}

TEST(LabelSetLowerBoundTest, CountsLabelAndEdgeGaps) {
  Graph g1(2, 0);  // labels {0, 0}, no edges
  Graph g2(3, 0);  // labels {0, 1, 1}, 2 edges
  g2.set_label(1, 1);
  g2.set_label(2, 1);
  g2.AddEdge(0, 1);
  g2.AddEdge(1, 2);
  // Node side: G1 has {0,0}, G2 has {0,1,1}: deficit 2, surplus 1 -> 2.
  // Edge side: |0 - 2| = 2.
  EXPECT_EQ(LabelSetLowerBound(g1, g2), 4);
}

TEST(LabelSetLowerBoundTest, IsSymmetric) {
  Graph g1(2, 3);
  Graph g2(4, 5);
  g2.AddEdge(0, 1);
  EXPECT_EQ(LabelSetLowerBound(g1, g2), LabelSetLowerBound(g2, g1));
}

}  // namespace
}  // namespace otged
