#include <gtest/gtest.h>

#include "models/gediot.hpp"
#include "models/gedgnn.hpp"
#include "models/gedgw.hpp"
#include "models/gedhot.hpp"
#include "models/gpn.hpp"
#include "models/simgnn.hpp"
#include "models/tagsim.hpp"
#include "models/trainer.hpp"

namespace otged {
namespace {

std::vector<GedPair> TinyTrainSet(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<GedPair> pairs;
  for (int i = 0; i < count; ++i) {
    Graph g = AidsLikeGraph(&rng, 4, 8);
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(1, 4);
    opt.num_labels = 29;
    pairs.push_back(SyntheticEditPair(g, opt, &rng));
  }
  return pairs;
}

TrunkConfig TinyTrunk() {
  TrunkConfig cfg;
  cfg.num_labels = 29;
  cfg.conv_dims = {12, 12};
  cfg.out_dim = 8;
  return cfg;
}

TEST(GediotTest, ForwardShapesAndRanges) {
  GediotConfig cfg;
  cfg.trunk = TinyTrunk();
  GediotModel model(cfg);
  Rng rng(1);
  Graph g1 = AidsLikeGraph(&rng, 4, 6);
  Graph g2 = AidsLikeGraph(&rng, 6, 9);
  auto fwd = model.Run(g1, g2);
  EXPECT_EQ(fwd.coupling.rows(), g1.NumNodes());
  EXPECT_EQ(fwd.coupling.cols(), g2.NumNodes());
  EXPECT_GT(fwd.score.item(), 0.0);
  EXPECT_LT(fwd.score.item(), 1.0);
  // Coupling rows transport (approximately) unit mass.
  Matrix rs = fwd.coupling.value().RowSums();
  for (int i = 0; i < rs.rows(); ++i) EXPECT_NEAR(rs(i, 0), 1.0, 0.05);
  Prediction p = model.Predict(g1, g2);
  EXPECT_GE(p.ged, 0.0);
  EXPECT_LE(p.ged, MaxEditOps(g1, g2));
}

TEST(GediotTest, TrainingReducesLoss) {
  GediotConfig cfg;
  cfg.trunk = TinyTrunk();
  GediotModel model(cfg);
  auto pairs = TinyTrainSet(60, 2);
  TrainOptions topt;
  topt.epochs = 6;
  topt.batch_size = 16;
  auto losses = TrainModel(&model, pairs, topt);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(GediotTest, LearnableEpsilonMoves) {
  GediotConfig cfg;
  cfg.trunk = TinyTrunk();
  GediotModel model(cfg);
  double eps_before = model.CurrentEpsilon();
  auto pairs = TinyTrainSet(40, 3);
  TrainOptions topt;
  topt.epochs = 4;
  TrainModel(&model, pairs, topt);
  EXPECT_NE(model.CurrentEpsilon(), eps_before);
}

TEST(GediotTest, AblationVariantsRun) {
  for (int variant = 0; variant < 4; ++variant) {
    GediotConfig cfg;
    cfg.trunk = TinyTrunk();
    if (variant == 0) cfg.trunk.use_gcn = true;
    if (variant == 1) cfg.trunk.use_final_mlp = false;
    if (variant == 2) cfg.cost_inner_product = true;
    if (variant == 3) cfg.learnable_eps = false;
    GediotModel model(cfg);
    auto pairs = TinyTrainSet(20, 4 + variant);
    TrainOptions topt;
    topt.epochs = 2;
    auto losses = TrainModel(&model, pairs, topt);
    EXPECT_TRUE(std::isfinite(losses.back()));
    Prediction p = model.Predict(pairs[0].g1, pairs[0].g2);
    EXPECT_TRUE(std::isfinite(p.ged));
  }
}

template <typename ModelT, typename ConfigT>
void CheckTrainable(uint64_t seed) {
  ConfigT cfg;
  cfg.trunk = TinyTrunk();
  ModelT model(cfg);
  auto pairs = TinyTrainSet(50, seed);
  TrainOptions topt;
  topt.epochs = 5;
  auto losses = TrainModel(&model, pairs, topt);
  EXPECT_LT(losses.back(), losses.front() * 1.05);
  Prediction p = model.Predict(pairs[0].g1, pairs[0].g2);
  EXPECT_TRUE(std::isfinite(p.ged));
  EXPECT_GE(p.ged, 0.0);
}

TEST(BaselineModelsTest, GedgnnTrains) {
  CheckTrainable<GedgnnModel, GedgnnConfig>(5);
}
TEST(BaselineModelsTest, SimgnnTrains) {
  CheckTrainable<SimgnnModel, SimgnnConfig>(6);
}
TEST(BaselineModelsTest, GpnTrains) { CheckTrainable<GpnModel, GpnConfig>(7); }
TEST(BaselineModelsTest, TagsimTrains) {
  CheckTrainable<TagsimModel, TagsimConfig>(8);
}

TEST(TagsimTest, TypeCountsFromPath) {
  std::vector<EditOp> path = {{EditOpType::kRelabelNode, 0, -1, 1},
                              {EditOpType::kInsertNode, 1, -1, 0},
                              {EditOpType::kInsertEdge, 0, 1, 0},
                              {EditOpType::kInsertEdge, 1, 2, 0},
                              {EditOpType::kDeleteEdge, 2, 3, 0}};
  auto counts = TagsimModel::TypeCounts(path);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 1);
}

TEST(GpnTest, NodeSimilarityShape) {
  GpnConfig cfg;
  cfg.trunk = TinyTrunk();
  GpnModel model(cfg);
  Rng rng(9);
  Graph g1 = AidsLikeGraph(&rng, 4, 6);
  Graph g2 = AidsLikeGraph(&rng, 6, 8);
  Matrix sim = model.NodeSimilarity(g1, g2);
  EXPECT_EQ(sim.rows(), g1.NumNodes());
  EXPECT_EQ(sim.cols(), g2.NumNodes());
}

TEST(GedhotTest, TakesTheMinimum) {
  GediotConfig cfg;
  cfg.trunk = TinyTrunk();
  GediotModel iot(cfg);
  GedgwSolver gw;
  GedhotModel hot(&iot, &gw);
  Rng rng(10);
  Graph g = AidsLikeGraph(&rng, 5, 8);
  SyntheticEditOptions opt;
  opt.num_edits = 2;
  opt.num_labels = 29;
  GedPair pair = SyntheticEditPair(g, opt, &rng);
  double a = iot.Predict(pair.g1, pair.g2).ged;
  double b = gw.Predict(pair.g1, pair.g2).ged;
  double h = hot.Predict(pair.g1, pair.g2).ged;
  EXPECT_DOUBLE_EQ(h, std::min(a, b));
  EXPECT_GT(hot.ValueAdoptionIot() + 1e-12,
            a <= b ? 1.0 : 0.0);  // stat recorded
}

TEST(PredictOrderedTest, SwapsAndTransposes) {
  GedgwSolver gw;
  Rng rng(11);
  Graph small = AidsLikeGraph(&rng, 3, 5);
  Graph large = AidsLikeGraph(&rng, 6, 9);
  Prediction direct = PredictOrdered(&gw, small, large);
  Prediction swapped = PredictOrdered(&gw, large, small);
  EXPECT_NEAR(direct.ged, swapped.ged, 1e-9);
  EXPECT_EQ(swapped.coupling.rows(), large.NumNodes());
  EXPECT_EQ(swapped.coupling.cols(), small.NumNodes());
}

}  // namespace
}  // namespace otged
