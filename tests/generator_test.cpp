#include "graph/generator.hpp"

#include <gtest/gtest.h>

#include "editpath/edit_path.hpp"

namespace otged {
namespace {

TEST(GeneratorTest, RandomConnectedGraphIsConnected) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = RandomConnectedGraph(8, 3, 5, &rng);
    EXPECT_TRUE(g.IsConnected());
    EXPECT_TRUE(g.CheckInvariants());
    EXPECT_EQ(g.NumNodes(), 8);
    EXPECT_GE(g.NumEdges(), 7);
    for (int v = 0; v < g.NumNodes(); ++v) {
      EXPECT_GE(g.label(v), 0);
      EXPECT_LT(g.label(v), 5);
    }
  }
}

TEST(GeneratorTest, AidsLikeStatsMatchTable2Profile) {
  Rng rng(2);
  double nodes = 0, edges = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    Graph g = AidsLikeGraph(&rng);
    EXPECT_LE(g.NumNodes(), 10);
    EXPECT_GE(g.NumNodes(), 2);
    nodes += g.NumNodes();
    edges += g.NumEdges();
  }
  // Paper Table 2: AIDS has ~8.9 nodes and ~8.8 edges per graph; our
  // generator targets the same sparse regime (|E| within ~2x of |V|).
  EXPECT_GT(nodes / n, 4.0);
  EXPECT_LT(edges / n, 2.0 * nodes / n);
}

TEST(GeneratorTest, ImdbLikeIsDenser) {
  Rng rng(3);
  double nodes = 0, edges = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    Graph g = ImdbLikeGraph(&rng);
    nodes += g.NumNodes();
    edges += g.NumEdges();
    EXPECT_TRUE(g.CheckInvariants());
  }
  // Ego-nets should be clearly denser than trees.
  EXPECT_GT(edges / n, 1.5 * nodes / n);
}

TEST(GeneratorTest, PowerLawGraphHasHub) {
  Rng rng(4);
  Graph g = PowerLawGraph(100, 2, &rng);
  EXPECT_EQ(g.NumNodes(), 100);
  EXPECT_TRUE(g.CheckInvariants());
  int max_deg = 0;
  for (int v = 0; v < g.NumNodes(); ++v)
    max_deg = std::max(max_deg, g.Degree(v));
  // Preferential attachment produces hubs far above the minimum degree.
  EXPECT_GE(max_deg, 8);
}

TEST(GeneratorTest, PermuteGraphPreservesStructure) {
  Rng rng(5);
  Graph g = RandomConnectedGraph(6, 2, 3, &rng);
  std::vector<int> perm = {3, 0, 5, 1, 4, 2};
  Graph p = PermuteGraph(g, perm);
  EXPECT_EQ(p.NumNodes(), g.NumNodes());
  EXPECT_EQ(p.NumEdges(), g.NumEdges());
  for (int u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(p.label(perm[u]), g.label(u));
    for (int v : g.Neighbors(u)) EXPECT_TRUE(p.HasEdge(perm[u], perm[v]));
  }
}

class SyntheticEditPairTest : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticEditPairTest, GroundTruthMatchingRealizesDelta) {
  Rng rng(100 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = AidsLikeGraph(&rng, 4, 9);
    SyntheticEditOptions opt;
    opt.num_edits = GetParam();
    opt.num_labels = 29;
    GedPair pair = SyntheticEditPair(g, opt, &rng);
    EXPECT_EQ(pair.ged, opt.num_edits);
    EXPECT_LE(pair.g1.NumNodes(), pair.g2.NumNodes());
    // The recorded matching must induce an edit path of exactly Δ ops
    // (non-overlapping edits cannot cancel).
    EXPECT_EQ(EditCostFromMatching(pair.g1, pair.g2, pair.gt_matching),
              pair.ged);
    // And the recorded path must be that path (as a multiset).
    auto derived = EditPathFromMatching(pair.g1, pair.g2, pair.gt_matching);
    EXPECT_EQ(static_cast<int>(derived.size()), pair.ged);
    EXPECT_EQ(PathIntersectionSize(derived, pair.gt_path), pair.ged);
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, SyntheticEditPairTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SyntheticEditPairTest, UnlabeledGraphsNeverRelabel) {
  Rng rng(7);
  Graph g = LinuxLikeGraph(&rng);
  SyntheticEditOptions opt;
  opt.num_edits = 4;
  opt.num_labels = 1;
  opt.allow_relabel = false;
  GedPair pair = SyntheticEditPair(g, opt, &rng);
  for (const EditOp& op : pair.gt_path)
    EXPECT_NE(op.type, EditOpType::kRelabelNode);
}

}  // namespace
}  // namespace otged
