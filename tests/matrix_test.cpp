#include "core/matrix.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace otged {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(m[1], -2.0);  // row-major flat access
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6);
}

TEST(MatrixTest, IdentityAndOnes) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1);
  EXPECT_DOUBLE_EQ(id(0, 1), 0);
  EXPECT_DOUBLE_EQ(Matrix::Ones(2, 2).Sum(), 4);
}

TEST(MatrixTest, Arithmetic) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 6);
  EXPECT_DOUBLE_EQ((a - b)(1, 1), -4);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 0), 6);
  EXPECT_DOUBLE_EQ((-a)(0, 1), -2);
}

TEST(MatrixTest, MatMul) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  Matrix b = {{7, 8}, {9, 10}, {11, 12}};
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, MatMulIdentity) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix c = a.MatMul(Matrix::Identity(2));
  EXPECT_DOUBLE_EQ(c.MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, Transpose) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  EXPECT_DOUBLE_EQ(t.Transpose().MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, HadamardAndDiv) {
  Matrix a = {{2, 4}, {6, 8}};
  Matrix b = {{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(a.Hadamard(b)(1, 1), 32);
  EXPECT_DOUBLE_EQ(a.CwiseDiv(b)(1, 0), 2);
}

TEST(MatrixTest, CwiseDivClampsNearZero) {
  Matrix a = {{1.0}};
  Matrix b = {{0.0}};
  Matrix r = a.CwiseDiv(b, 1e-6);
  EXPECT_TRUE(std::isfinite(r(0, 0)));
  EXPECT_DOUBLE_EQ(r(0, 0), 1e6);
}

TEST(MatrixTest, Reductions) {
  Matrix a = {{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(a.Sum(), 10);
  EXPECT_DOUBLE_EQ(a.Min(), 1);
  EXPECT_DOUBLE_EQ(a.Max(), 4);
  EXPECT_DOUBLE_EQ(a.Dot(a), 30);
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), std::sqrt(30.0));
  EXPECT_DOUBLE_EQ(a.RowSums()(0, 0), 3);
  EXPECT_DOUBLE_EQ(a.ColSums()(0, 1), 6);
}

TEST(MatrixTest, SliceAndConcat) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  Matrix s = a.SliceRows(1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_DOUBLE_EQ(s(0, 0), 3);
  Matrix cc = a.ConcatCols(a);
  EXPECT_EQ(cc.cols(), 4);
  EXPECT_DOUBLE_EQ(cc(2, 3), 6);
  Matrix cr = a.ConcatRows(a);
  EXPECT_EQ(cr.rows(), 6);
  EXPECT_DOUBLE_EQ(cr(5, 1), 6);
}

TEST(MatrixTest, ScaleRowsCols) {
  Matrix a = Matrix::Ones(2, 2);
  Matrix v = {{2}, {3}};
  EXPECT_DOUBLE_EQ(a.ScaleRows(v)(1, 0), 3);
  EXPECT_DOUBLE_EQ(a.ScaleCols(v)(0, 1), 3);
}

TEST(MatrixTest, AllFinite) {
  Matrix a = {{1, 2}};
  EXPECT_TRUE(a.AllFinite());
  a(0, 0) = std::nan("");
  EXPECT_FALSE(a.AllFinite());
}

TEST(MatrixTest, Map) {
  Matrix a = {{1, 4}, {9, 16}};
  Matrix r = a.Map([](double x) { return std::sqrt(x); });
  EXPECT_DOUBLE_EQ(r(1, 1), 4);
}

}  // namespace
}  // namespace otged
