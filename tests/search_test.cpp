#include "search/query_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "exact/branch_and_bound.hpp"
#include "graph/generator.hpp"
#include "heuristics/bipartite.hpp"
#include "search/work_stealing_pool.hpp"

namespace otged {
namespace {

/// Exact GED by branch and bound seeded with the Classic upper bound;
/// graphs in the fixtures are small enough that the default budget is
/// never exhausted, so this is the brute-force ground truth.
int ExactGed(const Graph& a, const Graph& b) {
  auto [g1, g2] = OrderBySize(a, b);
  BnbOptions opt;
  opt.initial_upper_bound = ClassicGed(*g1, *g2).ged;
  GedSearchResult res = BranchAndBoundGed(*g1, *g2, opt);
  EXPECT_TRUE(res.exact);
  return res.ged;
}

GraphStore MakeSmallStore(int count, int num_labels, uint64_t seed) {
  Rng rng(seed);
  GraphStore store;
  for (int i = 0; i < count; ++i) {
    store.Add(RandomConnectedGraph(rng.UniformInt(3, 7),
                                   rng.UniformInt(0, 3), num_labels, &rng));
  }
  return store;
}

TEST(GraphStoreTest, InvariantsMatchGraph) {
  Rng rng(3);
  Graph g = AidsLikeGraph(&rng, 4, 9);
  GraphStore store;
  int id = store.Add(g);
  const GraphInvariants& inv = store.invariants(id);
  EXPECT_EQ(inv.num_nodes, g.NumNodes());
  EXPECT_EQ(inv.num_edges, g.NumEdges());
  EXPECT_EQ(static_cast<int>(inv.sorted_labels.size()), g.NumNodes());
  EXPECT_TRUE(std::is_sorted(inv.sorted_labels.begin(),
                             inv.sorted_labels.end()));
  EXPECT_TRUE(std::is_sorted(inv.sorted_degrees.begin(),
                             inv.sorted_degrees.end()));
  // Degree sum equals twice the edge count.
  EXPECT_EQ(std::accumulate(inv.sorted_degrees.begin(),
                            inv.sorted_degrees.end(), 0),
            2 * g.NumEdges());
}

TEST(InvariantLowerBoundTest, AdmissibleOnRandomPairs) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    int labels = trial % 2 ? 5 : 1;
    Graph a = RandomConnectedGraph(rng.UniformInt(3, 7),
                                   rng.UniformInt(0, 3), labels, &rng);
    Graph b = RandomConnectedGraph(rng.UniformInt(3, 7),
                                   rng.UniformInt(0, 3), labels, &rng);
    int lb = InvariantLowerBound(ComputeInvariants(a), ComputeInvariants(b));
    EXPECT_LE(lb, ExactGed(a, b));
  }
}

TEST(InvariantLowerBoundTest, ZeroOnIdenticalAndPermutedGraphs) {
  Rng rng(23);
  Graph g = AidsLikeGraph(&rng, 5, 9);
  std::vector<int> perm(g.NumNodes());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(&perm);
  Graph h = PermuteGraph(g, perm);
  EXPECT_EQ(InvariantLowerBound(ComputeInvariants(g), ComputeInvariants(h)),
            0);
}

TEST(WorkStealingPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    WorkStealingPool pool(threads);
    const int n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, /*grain=*/7,
                     [&](int64_t i, int) {
                       hits[i].fetch_add(1, std::memory_order_relaxed);
                     });
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 1);
  }
}

TEST(WorkStealingPoolTest, HandlesEmptyAndTinyLoops) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(
      0, 1, [&](int64_t, int) {
        count.fetch_add(1, std::memory_order_relaxed);
      });
  EXPECT_EQ(count.load(std::memory_order_relaxed), 0);
  pool.ParallelFor(3, 100, [&](int64_t, int) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(std::memory_order_relaxed), 3);
}

TEST(WorkStealingPoolTest, ReusableAcrossLoops) {
  WorkStealingPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<long> sum{0};
    pool.ParallelFor(100, 4, [&](int64_t i, int) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(std::memory_order_relaxed), 100 * 99 / 2);
  }
}

/// The headline property: a range query returns *exactly* the brute-force
/// answer set — admissible lower bounds never dismiss a true hit and
/// feasible upper bounds never admit a false one.
TEST(FilterCascadeTest, RangeMatchesBruteForceExactly) {
  GraphStore store = MakeSmallStore(40, 4, 5);
  EngineOptions opt;
  opt.num_threads = 2;
  QueryEngine engine(&store, opt);

  Rng rng(99);
  for (int q = 0; q < 4; ++q) {
    Graph query = RandomConnectedGraph(rng.UniformInt(3, 7),
                                       rng.UniformInt(0, 3), 4, &rng);
    for (int tau : {0, 1, 2, 4}) {
      RangeResult res = engine.Range(query, tau);
      std::vector<int> expected;
      for (int id = 0; id < store.Size(); ++id)
        if (ExactGed(query, store.graph(id)) <= tau) expected.push_back(id);
      std::vector<int> got;
      for (const RangeHit& h : res.hits) got.push_back(h.id);
      EXPECT_EQ(got, expected) << "tau=" << tau << " query=" << q;
      // Every reported distance is a valid upper bound within tau.
      for (const RangeHit& h : res.hits) {
        EXPECT_LE(h.ged, tau);
        EXPECT_GE(h.ged, ExactGed(query, store.graph(h.id)));
        if (h.exact_distance) {
          EXPECT_EQ(h.ged, ExactGed(query, store.graph(h.id)));
        }
      }
    }
  }
}

/// Even with a starved exact tier (budget exhausted on every pair that
/// reaches it), the cascade must never dismiss a true hit: unresolved
/// candidates are kept conservatively and flagged as unproven.
TEST(FilterCascadeTest, NoFalseDismissalUnderBudgetExhaustion) {
  GraphStore store = MakeSmallStore(30, 2, 9);
  EngineOptions opt;
  opt.cascade.exact_budget = 1;  // every exact verify exhausts immediately
  QueryEngine engine(&store, opt);
  Rng rng(55);
  Graph query = RandomConnectedGraph(5, 2, 2, &rng);
  for (int tau : {1, 3}) {
    RangeResult res = engine.Range(query, tau);
    std::vector<int> got;
    for (const RangeHit& h : res.hits) got.push_back(h.id);
    for (int id = 0; id < store.Size(); ++id) {
      if (ExactGed(query, store.graph(id)) <= tau) {
        EXPECT_TRUE(std::find(got.begin(), got.end(), id) != got.end())
            << "true hit " << id << " dismissed at tau=" << tau;
      }
    }
    // Unproven hits are flagged, proven hits respect tau.
    for (const RangeHit& h : res.hits) {
      if (h.exact_distance) {
        EXPECT_LE(h.ged, tau);
      }
    }
  }
}

TEST(FilterCascadeTest, StatsAreConsistent) {
  GraphStore store = MakeSmallStore(30, 1, 6);
  QueryEngine engine(&store, {});
  Rng rng(7);
  Graph query = RandomConnectedGraph(5, 2, 1, &rng);
  RangeResult res = engine.Range(query, 2);
  const CascadeStats& s = res.stats.cascade;
  EXPECT_EQ(s.candidates, store.Size());
  // Every candidate is accounted for by exactly one outcome bucket,
  // except tier-0/1 identity hits which fall through to no bucket.
  EXPECT_LE(s.pruned_invariant + s.pruned_branch + s.decided_heuristic +
                s.decided_ot + s.decided_exact,
            s.candidates);
  EXPECT_GE(s.pruned_invariant + s.pruned_branch, 0);
}

TEST(QueryEngineTest, TopKMatchesBruteForce) {
  GraphStore store = MakeSmallStore(35, 3, 11);
  EngineOptions opt;
  opt.num_threads = 2;
  QueryEngine engine(&store, opt);

  Rng rng(42);
  Graph query = RandomConnectedGraph(6, 2, 3, &rng);
  for (int k : {1, 5, 12}) {
    TopKResult res = engine.TopK(query, k);
    // Brute force: exact distance to every graph, sort by (ged, id).
    std::vector<TopKHit> expected;
    for (int id = 0; id < store.Size(); ++id)
      expected.push_back({id, ExactGed(query, store.graph(id))});
    std::sort(expected.begin(), expected.end(),
              [](const TopKHit& a, const TopKHit& b) {
                return a.ged != b.ged ? a.ged < b.ged : a.id < b.id;
              });
    expected.resize(k);
    ASSERT_EQ(res.hits.size(), expected.size()) << "k=" << k;
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ(res.hits[i].id, expected[i].id) << "k=" << k << " i=" << i;
      EXPECT_EQ(res.hits[i].ged, expected[i].ged) << "k=" << k << " i=" << i;
    }
  }
}

TEST(QueryEngineTest, FindsIdenticalGraphAtDistanceZero) {
  GraphStore store = MakeSmallStore(20, 2, 13);
  Rng rng(1);
  Graph needle = AidsLikeGraph(&rng, 5, 8);
  int id = store.Add(needle);
  QueryEngine engine(&store, {});
  TopKResult res = engine.TopK(needle, 1);
  ASSERT_EQ(res.hits.size(), 1u);
  EXPECT_EQ(res.hits[0].id, id);
  EXPECT_EQ(res.hits[0].ged, 0);
}

/// Parallel serving must be a pure function of (store, query): identical
/// hits and identical aggregate statistics for every thread count.
TEST(QueryEngineTest, DeterministicAcrossThreadCounts) {
  GraphStore store = MakeSmallStore(45, 2, 21);
  Rng rng(77);
  std::vector<Graph> queries;
  for (int q = 0; q < 3; ++q)
    queries.push_back(RandomConnectedGraph(rng.UniformInt(4, 7),
                                           rng.UniformInt(0, 2), 2, &rng));

  auto run = [&](int threads) {
    EngineOptions opt;
    opt.num_threads = threads;
    QueryEngine engine(&store, opt);
    std::vector<RangeResult> ranges = engine.RangeBatch(queries, 3);
    std::vector<TopKResult> topks = engine.TopKBatch(queries, 7);
    return std::make_pair(std::move(ranges), std::move(topks));
  };

  auto [base_range, base_topk] = run(1);
  for (int threads : {2, 4, 8}) {
    auto [ranges, topks] = run(threads);
    ASSERT_EQ(ranges.size(), base_range.size());
    for (size_t q = 0; q < ranges.size(); ++q) {
      ASSERT_EQ(ranges[q].hits.size(), base_range[q].hits.size())
          << "threads=" << threads << " q=" << q;
      for (size_t i = 0; i < ranges[q].hits.size(); ++i) {
        EXPECT_EQ(ranges[q].hits[i].id, base_range[q].hits[i].id);
        EXPECT_EQ(ranges[q].hits[i].ged, base_range[q].hits[i].ged);
      }
      ASSERT_EQ(topks[q].hits.size(), base_topk[q].hits.size());
      for (size_t i = 0; i < topks[q].hits.size(); ++i) {
        EXPECT_EQ(topks[q].hits[i].id, base_topk[q].hits[i].id);
        EXPECT_EQ(topks[q].hits[i].ged, base_topk[q].hits[i].ged);
      }
      // Aggregate statistics are schedule-independent too.
      EXPECT_EQ(ranges[q].stats.cascade.candidates,
                base_range[q].stats.cascade.candidates);
      EXPECT_EQ(ranges[q].stats.cascade.pruned_invariant,
                base_range[q].stats.cascade.pruned_invariant);
      EXPECT_EQ(ranges[q].stats.cascade.exact_calls,
                base_range[q].stats.cascade.exact_calls);
    }
  }
}

/// Acceptance property of the batch API: RangeBatch/TopKBatch return
/// exactly what the corresponding sequence of single-query calls returns
/// — same ids, same distances, same exactness flags. Checked both with
/// the bound cache disabled (covers duplicate queries in one batch) and
/// with the default cache on distinct queries.
TEST(QueryEngineTest, BatchEqualsPerQueryCalls) {
  GraphStore store = MakeSmallStore(40, 3, 29);
  Rng rng(61);
  std::vector<Graph> queries;
  for (int q = 0; q < 4; ++q)
    queries.push_back(RandomConnectedGraph(rng.UniformInt(4, 7),
                                           rng.UniformInt(0, 2), 3, &rng));

  auto check = [&](EngineOptions opt, const std::vector<Graph>& qs) {
    QueryEngine single(&store, opt);
    QueryEngine batched(&store, opt);
    for (int tau : {1, 3}) {
      std::vector<RangeResult> batch = batched.RangeBatch(qs, tau);
      ASSERT_EQ(batch.size(), qs.size());
      for (size_t q = 0; q < qs.size(); ++q) {
        RangeResult one = single.Range(qs[q], tau);
        ASSERT_EQ(batch[q].hits.size(), one.hits.size())
            << "tau=" << tau << " q=" << q;
        for (size_t i = 0; i < one.hits.size(); ++i) {
          EXPECT_EQ(batch[q].hits[i].id, one.hits[i].id);
          EXPECT_EQ(batch[q].hits[i].ged, one.hits[i].ged);
          EXPECT_EQ(batch[q].hits[i].exact_distance,
                    one.hits[i].exact_distance);
        }
      }
    }
    for (int k : {1, 6, 50 /* > Size() */}) {
      QueryEngine s2(&store, opt), b2(&store, opt);
      std::vector<TopKResult> batch = b2.TopKBatch(qs, k);
      for (size_t q = 0; q < qs.size(); ++q) {
        TopKResult one = s2.TopK(qs[q], k);
        ASSERT_EQ(batch[q].hits.size(), one.hits.size())
            << "k=" << k << " q=" << q;
        for (size_t i = 0; i < one.hits.size(); ++i) {
          EXPECT_EQ(batch[q].hits[i].id, one.hits[i].id);
          EXPECT_EQ(batch[q].hits[i].ged, one.hits[i].ged);
        }
      }
    }
  };

  EngineOptions cached;
  cached.num_threads = 2;
  check(cached, queries);

  // With the cache off, even a duplicated query in one batch must match
  // its per-query twin bit for bit.
  EngineOptions uncached;
  uncached.num_threads = 2;
  uncached.use_bound_cache = false;
  std::vector<Graph> with_dup = queries;
  with_dup.push_back(queries[0]);
  check(uncached, with_dup);

  // With the cache on, duplicates in one batch share one evaluation, so
  // their entries are byte-identical to each other for any thread count.
  QueryEngine dup_engine(&store, cached);
  std::vector<RangeResult> dup = dup_engine.RangeBatch(with_dup, 3);
  const RangeResult& a = dup.front();
  const RangeResult& b = dup.back();
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].id, b.hits[i].id);
    EXPECT_EQ(a.hits[i].ged, b.hits[i].ged);
    EXPECT_EQ(a.hits[i].exact_distance, b.hits[i].exact_distance);
  }
}

TEST(QueryEngineTest, CascadeTiersActuallyPrune) {
  // On a corpus with diverse sizes, most candidates must die in the
  // cheap tiers for a small tau — the whole point of filter–verify.
  Rng rng(31);
  GraphStore store;
  for (int i = 0; i < 60; ++i)
    store.Add(PowerLawGraph(rng.UniformInt(8, 24), rng.UniformInt(1, 3),
                            &rng));
  EngineOptions opt;
  opt.cascade.exact_budget = 50'000;  // keep the verify tier test-sized
  QueryEngine engine(&store, opt);
  Graph query = PowerLawGraph(15, 2, &rng);
  RangeResult res = engine.Range(query, 4);
  const CascadeStats& s = res.stats.cascade;
  EXPECT_EQ(s.candidates, store.Size());
  EXPECT_GE(s.PrunedBeforeSolvers(), 0.5)
      << "invariant+branch tiers pruned too little";
}

}  // namespace
}  // namespace otged
