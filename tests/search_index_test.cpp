/// \file search_index_test.cpp
/// \brief Consistency suite for the multi-level candidate index: the
/// pseudo-metric property the VP-tree's pruning rests on, VP-tree
/// range/knn vs brute force, candidate-set guarantees (superset for the
/// partition/label screen, exact for the LB-range cut, identical seeds
/// for top-k), metamorphic identities (insert-then-erase restores the
/// compacted digest; save→load equals rebuild; permuted queries see
/// identical candidates), erases after a Restore rebind dropping out of
/// every candidate set, and rejection of inconsistent persisted
/// sections (which never fails an otherwise-good load).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <numeric>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/generator.hpp"
#include "graph/graph_io.hpp"
#include "search/index/graph_index.hpp"
#include "search/index/vp_tree.hpp"
#include "search/query_engine.hpp"
#include "search/store_serialize.hpp"

namespace otged {
namespace {

std::vector<Graph> RandomCorpus(int n, Rng* rng) {
  std::vector<Graph> corpus;
  for (int i = 0; i < n; ++i) corpus.push_back(AidsLikeGraph(rng, 3, 10));
  return corpus;
}

/// Brute { (lb, id) } over a snapshot, for comparisons.
std::vector<std::pair<int, int>> BruteBounds(const StoreSnapshot& snap,
                                             const GraphInvariants& qi) {
  std::vector<std::pair<int, int>> out;
  for (int slot = 0; slot < snap.Size(); ++slot)
    out.emplace_back(InvariantLowerBound(qi, snap.invariants(slot)),
                     snap.id(slot));
  return out;
}

TEST(IndexMetricTest, InvariantLowerBoundIsAPseudoMetric) {
  Rng rng(101);
  std::vector<GraphInvariants> invs;
  for (int i = 0; i < 40; ++i)
    invs.push_back(ComputeInvariants(AidsLikeGraph(&rng, 2, 12)));
  for (const GraphInvariants& a : invs) {
    EXPECT_EQ(InvariantLowerBound(a, a), 0);
    for (const GraphInvariants& b : invs) {
      EXPECT_EQ(InvariantLowerBound(a, b), InvariantLowerBound(b, a));
      EXPECT_GE(InvariantLowerBound(a, b), 0);
      for (const GraphInvariants& c : invs) {
        // The triangle inequality is exactly what licenses VP-tree
        // pruning; a single violation would make pruning lossy.
        EXPECT_LE(InvariantLowerBound(a, c),
                  InvariantLowerBound(a, b) + InvariantLowerBound(b, c));
      }
    }
  }
}

TEST(VpTreeTest, RangeAndKnnMatchBruteForce) {
  Rng rng(7);
  GraphStore store;
  store.AddAll(RandomCorpus(120, &rng));
  auto snap = store.Snapshot();
  auto tree = VpTree::Build(snap->entry_ptrs());
  ASSERT_EQ(tree->Size(), snap->Size());

  for (int q = 0; q < 20; ++q) {
    const GraphInvariants qi =
        ComputeInvariants(AidsLikeGraph(&rng, 3, 10));
    const auto brute = BruteBounds(*snap, qi);
    for (int tau : {0, 1, 2, 4}) {
      std::vector<std::pair<int, int>> got;  // (id, distance)
      long visited = 0;
      tree->Range(qi, tau, {}, &got, &visited);
      std::sort(got.begin(), got.end());
      std::vector<std::pair<int, int>> expected;
      for (const auto& [lb, id] : brute)
        if (lb <= tau) expected.emplace_back(id, lb);
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(got, expected) << "tau=" << tau;
      EXPECT_LE(visited, snap->Size());
    }
    for (size_t k : {1u, 5u, 17u}) {
      std::vector<std::pair<int, int>> best;  // (distance, id)
      long visited = 0;
      tree->Knn(qi, k, {}, &best, &visited);
      std::vector<std::pair<int, int>> expected = brute;
      std::sort(expected.begin(), expected.end());
      expected.resize(std::min(expected.size(), k));
      EXPECT_EQ(best, expected) << "k=" << k;
    }
  }
}

TEST(VpTreeTest, DeadIdsServeAsVantagesButAreNeverEmitted) {
  Rng rng(13);
  GraphStore store;
  store.AddAll(RandomCorpus(60, &rng));
  auto snap = store.Snapshot();
  auto tree = VpTree::Build(snap->entry_ptrs());
  std::vector<int> dead = {0, 7, 31, 59};  // ascending
  const GraphInvariants qi = ComputeInvariants(AidsLikeGraph(&rng, 3, 10));

  std::vector<std::pair<int, int>> got;
  long visited = 0;
  tree->Range(qi, 3, dead, &got, &visited);
  for (const auto& [id, d] : got)
    EXPECT_FALSE(std::binary_search(dead.begin(), dead.end(), id)) << id;
  std::vector<std::pair<int, int>> live;
  tree->Range(qi, 3, {}, &live, &visited);
  std::vector<std::pair<int, int>> expected;
  for (const auto& [id, d] : live)
    if (!std::binary_search(dead.begin(), dead.end(), id))
      expected.emplace_back(id, d);
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);

  std::vector<std::pair<int, int>> best;
  tree->Knn(qi, 10, dead, &best, &visited);
  for (const auto& [d, id] : best)
    EXPECT_FALSE(std::binary_search(dead.begin(), dead.end(), id)) << id;
}

TEST(GraphIndexTest, RangeCandidatesAreASupersetAndLbRangeIsExact) {
  Rng rng(29);
  GraphStore store;
  store.AddAll(RandomCorpus(150, &rng));
  GraphIndex index;
  auto snap = store.Snapshot();
  auto view = index.ViewFor(snap);
  ASSERT_EQ(view->epoch(), snap->epoch());

  for (int q = 0; q < 15; ++q) {
    const GraphInvariants qi =
        ComputeInvariants(AidsLikeGraph(&rng, 3, 10));
    const auto brute = BruteBounds(*snap, qi);
    for (int tau : {0, 1, 3}) {
      std::vector<int> cand;
      IndexStats stats;
      view->RangeCandidates(qi, tau, &cand, &stats);
      EXPECT_TRUE(std::is_sorted(cand.begin(), cand.end()));
      EXPECT_EQ(stats.scanned, snap->Size());
      EXPECT_EQ(stats.scanned, stats.candidates + stats.PrunedTotal());
      // Levels 1+2 prune via bounds that never exceed the full
      // invariant bound, so every id with lb <= tau must survive.
      for (const auto& [lb, id] : brute) {
        if (lb <= tau) {
          EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(), id))
              << "tau=" << tau << " id=" << id;
        }
      }

      std::vector<int> lb_cand;
      IndexStats lb_stats;
      view->LbRangeCandidates(qi, tau, &lb_cand, &lb_stats);
      std::vector<int> expected;
      for (const auto& [lb, id] : brute)
        if (lb <= tau) expected.push_back(id);
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(lb_cand, expected) << "tau=" << tau;
    }
  }
}

TEST(GraphIndexTest, TopKSeedsMatchBruteSelection) {
  Rng rng(41);
  GraphStore store;
  store.AddAll(RandomCorpus(90, &rng));
  GraphIndex index;
  auto view = index.ViewFor(store.Snapshot());
  auto snap = store.Snapshot();

  for (int q = 0; q < 10; ++q) {
    const GraphInvariants qi =
        ComputeInvariants(AidsLikeGraph(&rng, 3, 10));
    auto brute = BruteBounds(*snap, qi);
    std::sort(brute.begin(), brute.end());
    for (size_t k : {1u, 8u, 25u}) {
      std::vector<std::pair<int, int>> seeds;
      IndexStats stats;
      view->TopKSeeds(qi, k, &seeds, &stats);
      std::vector<std::pair<int, int>> expected = brute;
      expected.resize(std::min(expected.size(), k));
      EXPECT_EQ(seeds, expected) << "k=" << k;
    }
  }
}

TEST(GraphIndexTest, IncrementalAdvanceMatchesFreshRebuild) {
  Rng rng(59);
  GraphStore store;
  store.AddAll(RandomCorpus(80, &rng));
  GraphIndex incremental;
  (void)incremental.ViewFor(store.Snapshot());  // prime the cached view

  // Random churn: the incremental index advances by diffing snapshots;
  // after every mutation its candidate sets must equal a from-scratch
  // index built on the same snapshot.
  std::vector<Graph> extras = RandomCorpus(30, &rng);
  for (int round = 0; round < 30; ++round) {
    if (round % 3 != 0) {
      store.Insert(extras[static_cast<size_t>(round) % extras.size()]);
    } else {
      (void)store.Erase(rng.UniformInt(0, store.NextId() - 1));
    }
    auto snap = store.Snapshot();
    auto view = incremental.ViewFor(snap);
    GraphIndex fresh;
    auto fresh_view = fresh.ViewFor(snap);
    const GraphInvariants qi =
        ComputeInvariants(AidsLikeGraph(&rng, 3, 10));
    for (int tau : {0, 2}) {
      std::vector<int> a, b;
      IndexStats sa, sb;
      view->RangeCandidates(qi, tau, &a, &sa);
      fresh_view->RangeCandidates(qi, tau, &b, &sb);
      EXPECT_EQ(a, b) << "round " << round << " tau " << tau;
      a.clear();
      b.clear();
      view->LbRangeCandidates(qi, tau, &a, &sa);
      fresh_view->LbRangeCandidates(qi, tau, &b, &sb);
      EXPECT_EQ(a, b) << "round " << round << " tau " << tau;
    }
  }
}

TEST(GraphIndexTest, InsertThenEraseRestoresTheCompactedDigest) {
  Rng rng(67);
  GraphStore store;
  store.AddAll(RandomCorpus(50, &rng));
  GraphIndex index;
  const uint64_t before =
      index.CompactViewFor(store.Snapshot())->StructuralDigest();

  std::vector<int> added;
  for (int i = 0; i < 12; ++i)
    added.push_back(store.Insert(AidsLikeGraph(&rng, 3, 10)));
  (void)index.ViewFor(store.Snapshot());  // observe the inserts
  for (int id : added) ASSERT_TRUE(store.Erase(id));

  // Content is back to the original set (ids included), so the
  // compacted view — overlay forced empty — must fingerprint equal.
  const uint64_t after =
      index.CompactViewFor(store.Snapshot())->StructuralDigest();
  EXPECT_EQ(before, after);

  // And it equals a from-scratch index on the same snapshot.
  GraphIndex fresh;
  EXPECT_EQ(after,
            fresh.CompactViewFor(store.Snapshot())->StructuralDigest());
}

TEST(GraphIndexTest, SaveThenLoadEqualsRebuild) {
  Rng rng(73);
  GraphStore store;
  store.AddAll(RandomCorpus(70, &rng));
  for (int id : {3, 17, 44}) ASSERT_TRUE(store.Erase(id));
  GraphIndex index;
  (void)index.ViewFor(store.Snapshot());

  const std::string path = ::testing::TempDir() + "index_roundtrip.otg";
  std::string error;
  ASSERT_TRUE(SaveGraphStore(store, path, &error, &index)) << error;

  GraphStore loaded;
  GraphIndex loaded_index;
  ASSERT_TRUE(LoadGraphStore(&loaded, path, &error, &loaded_index))
      << error;
  std::remove(path.c_str());

  // The adopted index must fingerprint identically to a from-scratch
  // rebuild of the loaded snapshot — reload == rebuild, structurally.
  GraphIndex rebuilt;
  EXPECT_EQ(
      loaded_index.ViewFor(loaded.Snapshot())->StructuralDigest(),
      rebuilt.CompactViewFor(loaded.Snapshot())->StructuralDigest());

  // And behaviorally: identical candidate sets on both sides.
  auto lview = loaded_index.ViewFor(loaded.Snapshot());
  auto rview = rebuilt.ViewFor(loaded.Snapshot());
  for (int q = 0; q < 8; ++q) {
    const GraphInvariants qi =
        ComputeInvariants(AidsLikeGraph(&rng, 3, 10));
    std::vector<int> a, b;
    IndexStats sa, sb;
    lview->RangeCandidates(qi, 2, &a, &sa);
    rview->RangeCandidates(qi, 2, &b, &sb);
    EXPECT_EQ(a, b);
  }
}

TEST(GraphIndexTest, PermutedQueriesSeeIdenticalCandidates) {
  Rng rng(83);
  GraphStore store;
  store.AddAll(RandomCorpus(100, &rng));
  GraphIndex index;
  auto view = index.ViewFor(store.Snapshot());

  for (int q = 0; q < 10; ++q) {
    const Graph query = AidsLikeGraph(&rng, 4, 10);
    std::vector<int> perm(static_cast<size_t>(query.NumNodes()));
    std::iota(perm.begin(), perm.end(), 0);
    for (size_t i = perm.size(); i > 1; --i)
      std::swap(perm[i - 1],
                perm[static_cast<size_t>(
                    rng.UniformInt(0, static_cast<int>(i) - 1))]);
    const Graph permuted = PermuteGraph(query, perm);

    const GraphInvariants qi = ComputeInvariants(query);
    const GraphInvariants pi = ComputeInvariants(permuted);
    for (int tau : {0, 1, 3}) {
      std::vector<int> a, b;
      IndexStats sa, sb;
      view->RangeCandidates(qi, tau, &a, &sa);
      view->RangeCandidates(pi, tau, &b, &sb);
      EXPECT_EQ(a, b) << "tau=" << tau;
    }
    std::vector<std::pair<int, int>> seeds_a, seeds_b;
    IndexStats sa, sb;
    view->TopKSeeds(qi, 7, &seeds_a, &sa);
    view->TopKSeeds(pi, 7, &seeds_b, &sb);
    EXPECT_EQ(seeds_a, seeds_b);
  }
}

TEST(GraphIndexTest, RestoreReboundIdsAreFullyForgottenOnErase) {
  // Regression: a Restore rebinds ids to fresh entry objects, which the
  // incremental diff records as remove + add — the stale tree resident
  // goes dead while the fresh entry lands in the delta, so the id sits
  // in both overlay halves at once. A later Erase must then clear the
  // delta entry too; marking the resident dead again is not enough, or
  // the erased id keeps being served from the delta.
  Rng rng(127);
  GraphStore store;
  store.AddAll(RandomCorpus(20, &rng));
  GraphIndex index;
  (void)index.ViewFor(store.Snapshot());

  std::vector<std::pair<int, Graph>> entries;
  {
    auto snap = store.Snapshot();
    for (int slot = 0; slot < snap->Size(); ++slot)
      entries.emplace_back(snap->id(slot), snap->graph(slot));
  }
  ASSERT_TRUE(store.Restore(std::move(entries), store.NextId()));
  (void)index.ViewFor(store.Snapshot());  // absorb the rebind as overlay

  const int victim = 5;
  ASSERT_TRUE(store.Erase(victim));
  auto post = store.Snapshot();
  auto view = index.ViewFor(post);
  // The overlay stayed under the rebuild threshold — the buggy path.
  ASSERT_FALSE(view->OverlayEmpty());

  const GraphInvariants qi = ComputeInvariants(AidsLikeGraph(&rng, 3, 10));
  std::vector<int> ids;
  IndexStats stats;
  view->LbRangeCandidates(qi, 1 << 20, &ids, &stats);  // tau covers all
  EXPECT_FALSE(std::binary_search(ids.begin(), ids.end(), victim));
  EXPECT_EQ(ids.size(), static_cast<size_t>(post->Size()));

  std::vector<std::pair<int, int>> seeds;
  view->TopKSeeds(qi, static_cast<size_t>(post->Size()) + 5, &seeds,
                  &stats);
  EXPECT_EQ(seeds.size(), static_cast<size_t>(post->Size()));
  for (const auto& [lb, id] : seeds) EXPECT_NE(id, victim);

  std::vector<int> range_ids;
  view->RangeCandidates(qi, 1 << 20, &range_ids, &stats);
  EXPECT_FALSE(
      std::binary_search(range_ids.begin(), range_ids.end(), victim));
}

TEST(GraphIndexTest, LoadWithInconsistentIndexSectionRestoresAndRebuilds) {
  // A checksum-valid file whose index digest is wrong (e.g. a buggy
  // writer): the load must still succeed — the corpus is independently
  // verified against recomputed invariants — with adoption skipped and
  // the next view rebuilt from scratch.
  Rng rng(131);
  GraphStore store;
  store.AddAll(RandomCorpus(30, &rng));
  GraphIndex index;
  const std::string path = ::testing::TempDir() + "index_bad_digest.otg";
  std::string error;
  ASSERT_TRUE(SaveGraphStore(store, path, &error, &index)) << error;

  {  // Flip a digest bit (the last 8 payload bytes) and re-checksum.
    std::ifstream in(path, std::ios::binary);
    std::string file((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GE(file.size(), 32u);
    file[file.size() - 16] = static_cast<char>(file[file.size() - 16] ^ 1);
    const uint64_t checksum =
        Fnv1a64(std::string_view(file).substr(16, file.size() - 24));
    std::memcpy(&file[file.size() - 8], &checksum, 8);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
  }

  GraphStore loaded;
  GraphIndex loaded_index;
  ASSERT_TRUE(LoadGraphStore(&loaded, path, &error, &loaded_index))
      << error;
  std::remove(path.c_str());
  EXPECT_EQ(loaded.Size(), store.Size());

  // Adoption was refused, so the next view is a from-scratch rebuild
  // matching the saving side's compacted view.
  GraphIndex fresh;
  EXPECT_EQ(loaded_index.ViewFor(loaded.Snapshot())->StructuralDigest(),
            fresh.CompactViewFor(loaded.Snapshot())->StructuralDigest());
}

TEST(GraphIndexTest, AdoptPersistedRejectsInconsistentSections) {
  Rng rng(97);
  GraphStore store;
  store.AddAll(RandomCorpus(40, &rng));
  GraphIndex source;
  auto snap = store.Snapshot();
  PersistedIndex good = MakePersistedIndex(*source.CompactViewFor(snap));

  {  // wrong digest
    PersistedIndex bad = good;
    bad.digest ^= 0x1;
    GraphIndex target;
    std::string error;
    EXPECT_FALSE(target.AdoptPersisted(snap, bad, &error));
    EXPECT_FALSE(error.empty());
  }
  {  // structurally broken node array
    PersistedIndex bad = good;
    bad.nodes[0].inner = static_cast<int32_t>(bad.nodes.size()) + 5;
    GraphIndex target;
    std::string error;
    EXPECT_FALSE(target.AdoptPersisted(snap, bad, &error));
  }
  {  // vantage id list out of sync with the snapshot
    PersistedIndex bad = good;
    std::swap(bad.node_ids[0], bad.node_ids[1]);
    GraphIndex target;
    std::string error;
    EXPECT_FALSE(target.AdoptPersisted(snap, bad, &error));
  }
  // A rejecting index stays usable: the next ViewFor rebuilds.
  GraphIndex target;
  std::string error;
  PersistedIndex empty;
  empty.digest = 1;
  ASSERT_FALSE(target.AdoptPersisted(snap, empty, &error));
  auto view = target.ViewFor(snap);
  EXPECT_EQ(view->StructuralDigest(),
            source.CompactViewFor(snap)->StructuralDigest());

  // The genuine section is adopted verbatim.
  GraphIndex adopter;
  ASSERT_TRUE(adopter.AdoptPersisted(snap, good, &error)) << error;
  EXPECT_EQ(adopter.ViewFor(snap)->StructuralDigest(), good.digest);
}

TEST(GraphIndexTest, EngineAnswersAreByteIdenticalWithAndWithoutIndex) {
  Rng rng(113);
  GraphStore store;
  store.AddAll(RandomCorpus(120, &rng));
  EngineOptions with;
  with.num_threads = 2;
  EngineOptions without = with;
  without.use_index = false;
  QueryEngine indexed(&store, with);
  QueryEngine brute(&store, without);

  for (int q = 0; q < 6; ++q) {
    const Graph query = AidsLikeGraph(&rng, 3, 10);
    for (int tau : {0, 2}) {
      RangeResult a = indexed.Range(query, tau);
      RangeResult b = brute.Range(query, tau);
      ASSERT_EQ(a.hits.size(), b.hits.size());
      for (size_t i = 0; i < a.hits.size(); ++i) {
        EXPECT_EQ(a.hits[i].id, b.hits[i].id);
        EXPECT_EQ(a.hits[i].ged, b.hits[i].ged);
        EXPECT_EQ(a.hits[i].exact_distance, b.hits[i].exact_distance);
      }
      // The fold keeps candidates == corpus size on both paths.
      EXPECT_EQ(a.stats.cascade.candidates, b.stats.cascade.candidates);
      EXPECT_EQ(a.stats.index.scanned,
                a.stats.index.candidates + a.stats.index.PrunedTotal());
    }
    TopKResult ta = indexed.TopK(query, 9);
    TopKResult tb = brute.TopK(query, 9);
    ASSERT_EQ(ta.hits.size(), tb.hits.size());
    for (size_t i = 0; i < ta.hits.size(); ++i) {
      EXPECT_EQ(ta.hits[i].id, tb.hits[i].id);
      EXPECT_EQ(ta.hits[i].ged, tb.hits[i].ged);
      EXPECT_EQ(ta.hits[i].exact_distance, tb.hits[i].exact_distance);
    }
  }
}

}  // namespace
}  // namespace otged
