#include "graph/graph_io.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "graph/wl_hash.hpp"
#include "heuristics/lower_bounds.hpp"

#include "exact/astar.hpp"

namespace otged {
namespace {

TEST(GraphIoTest, RoundTripSingleGraph) {
  Rng rng(1);
  Graph g = AidsLikeGraph(&rng, 4, 9);
  AssignRandomEdgeLabels(&g, 3, &rng);
  std::stringstream ss;
  WriteGraph(ss, g);
  std::optional<Graph> back = ReadGraph(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == g);
}

TEST(GraphIoTest, CorpusRoundTripViaFile) {
  Rng rng(2);
  std::vector<Graph> graphs;
  for (int i = 0; i < 5; ++i) graphs.push_back(LinuxLikeGraph(&rng));
  std::string path = ::testing::TempDir() + "/otged_corpus.txt";
  ASSERT_TRUE(SaveGraphs(path, graphs));
  std::string error;
  std::vector<Graph> loaded = LoadGraphs(path, &error);
  ASSERT_EQ(loaded.size(), graphs.size()) << error;
  for (size_t i = 0; i < graphs.size(); ++i)
    EXPECT_TRUE(loaded[i] == graphs[i]);
}

TEST(GraphIoTest, RejectsMalformedInput) {
  std::stringstream bad("t 2 1\nv 0 0\nv 1 0\ne 0 5\n");  // edge out of range
  std::string error;
  EXPECT_FALSE(ReadGraph(bad, &error).has_value());
  EXPECT_FALSE(error.empty());

  std::stringstream dup("t 2 2\nv 0 0\nv 1 0\ne 0 1\ne 1 0\n");
  EXPECT_FALSE(ReadGraph(dup, &error).has_value());
}

TEST(GraphIoTest, EmptyStreamIsCleanEof) {
  std::stringstream empty("");
  std::string error;
  EXPECT_FALSE(ReadGraph(empty, &error).has_value());
  EXPECT_TRUE(error.empty());
}

TEST(WlHashTest, PermutationInvariant) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = AidsLikeGraph(&rng, 4, 10);
    std::vector<int> perm(g.NumNodes());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
    rng.Shuffle(&perm);
    EXPECT_EQ(WlHash(g), WlHash(PermuteGraph(g, perm)));
  }
}

TEST(WlHashTest, SensitiveToEdits) {
  Rng rng(4);
  int differing = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    Graph g = AidsLikeGraph(&rng, 5, 10);
    SyntheticEditOptions opt;
    opt.num_edits = 1;
    opt.num_labels = 29;
    GedPair pair = SyntheticEditPair(g, opt, &rng);
    if (!WlEquivalent(pair.g1, pair.g2)) ++differing;
  }
  // A single edit almost always changes the WL fingerprint.
  EXPECT_GE(differing, trials - 1);
}

TEST(WlHashTest, SeesEdgeLabels) {
  Graph g1(2, 0), g2(2, 0);
  g1.AddEdge(0, 1, 1);
  g2.AddEdge(0, 1, 2);
  EXPECT_FALSE(WlEquivalent(g1, g2));
}

TEST(BranchLowerBoundTest, NeverExceedsExactGed) {
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 6);
    Graph g2 = AidsLikeGraph(&rng, 6, 8);
    auto exact = AstarGed(g1, g2);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(BranchLowerBound(g1, g2), exact->ged + 1e-9);
    EXPECT_LE(BestLowerBound(g1, g2), exact->ged);
    EXPECT_GE(BestLowerBound(g1, g2), LabelSetLowerBound(g1, g2));
  }
}

TEST(BranchLowerBoundTest, TightOnDegreeGap) {
  // Star K1,4 vs path P5: same size, very different degree sequences; the
  // BRANCH bound sees the gap while the label-set bound is blind to it.
  Graph star(5, 0), path(5, 0);
  for (int v = 1; v < 5; ++v) star.AddEdge(0, v);
  for (int v = 0; v < 4; ++v) path.AddEdge(v, v + 1);
  EXPECT_EQ(LabelSetLowerBound(star, path), 0);
  EXPECT_GT(BestLowerBound(star, path), 0);
}

}  // namespace
}  // namespace otged
