/// End-to-end integration tests: dataset synthesis -> training -> OT
/// inference -> k-best path generation -> metric evaluation, crossing
/// every module boundary in the library.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "exact/astar.hpp"
#include "exact/branch_and_bound.hpp"
#include "heuristics/bipartite.hpp"
#include "models/gediot.hpp"
#include "models/gedgw.hpp"
#include "models/gedhot.hpp"
#include "models/trainer.hpp"
#include "nn/serialize.hpp"

namespace otged {
namespace {

PairSet SmallPairSet(DatasetKind kind, uint64_t seed) {
  Dataset d = MakeDataset(kind, 40, seed);
  PairSetOptions opt;
  opt.num_train_pairs = 120;
  opt.num_test_queries = 2;
  opt.pairs_per_query = 15;
  opt.exactify_small = false;  // keep the test fast; Δ ground truth
  opt.seed = seed + 1;
  return MakePairSet(d, opt);
}

TEST(IntegrationTest, TrainedGediotBeatsUntrained) {
  PairSet set = SmallPairSet(DatasetKind::kAids, 21);
  GediotConfig cfg;
  cfg.trunk.num_labels = 29;
  cfg.trunk.conv_dims = {12, 12};
  cfg.trunk.out_dim = 8;
  GediotModel model(cfg);

  GedRow before = EvaluateGed("untrained", GedFnFromModel(&model), set.test);
  TrainOptions topt;
  topt.epochs = 8;
  topt.batch_size = 32;
  TrainModel(&model, set.train, topt);
  GedRow after = EvaluateGed("trained", GedFnFromModel(&model), set.test);
  EXPECT_LT(after.mae, before.mae);
}

TEST(IntegrationTest, GedgwOutperformsClassicOnValue) {
  // Dense unlabeled ego-nets are where bipartite heuristics struggle
  // (paper Table 3, IMDB: Classic MAE 12.98 vs GEDGW 0.82).
  Dataset d = MakeDataset(DatasetKind::kImdb, 40, 22);
  PairSetOptions popt;
  popt.num_train_pairs = 1;
  popt.num_test_queries = 3;
  popt.pairs_per_query = 10;
  popt.max_edits_large = 8;
  popt.exactify_small = false;
  PairSet set = MakePairSet(d, popt);
  GedgwSolver gw;
  GedRow gw_row = EvaluateGed("GEDGW", GedFnFromModel(&gw), set.test);
  GedRow classic = EvaluateGed(
      "Classic",
      [](const GedPair& p) {
        return static_cast<double>(ClassicGed(p.g1, p.g2).ged);
      },
      set.test);
  EXPECT_LT(gw_row.mae, classic.mae);
}

TEST(IntegrationTest, GedhotNeverWorseThanMembers) {
  PairSet set = SmallPairSet(DatasetKind::kLinux, 23);
  GediotConfig cfg;
  cfg.trunk.num_labels = 1;
  cfg.trunk.conv_dims = {12, 12};
  cfg.trunk.out_dim = 8;
  GediotModel iot(cfg);
  TrainOptions topt;
  topt.epochs = 6;
  TrainModel(&iot, set.train, topt);
  GedgwSolver gw;
  GedhotModel hot(&iot, &gw);

  auto pairs = FlattenGroups(set.test);
  for (const GedPair* p : pairs) {
    double hi = hot.Predict(p->g1, p->g2).ged;
    double a = iot.Predict(p->g1, p->g2).ged;
    double b = gw.Predict(p->g1, p->g2).ged;
    EXPECT_LE(hi, std::min(a, b) + 1e-9);
  }
}

TEST(IntegrationTest, CouplingDrivenPathsAreFeasible) {
  PairSet set = SmallPairSet(DatasetKind::kAids, 24);
  GediotConfig cfg;
  cfg.trunk.num_labels = 29;
  cfg.trunk.conv_dims = {12, 12};
  cfg.trunk.out_dim = 8;
  GediotModel model(cfg);
  TrainOptions topt;
  topt.epochs = 4;
  TrainModel(&model, set.train, topt);

  GepFn gep = GepFnFromModel(&model, /*k=*/8);
  for (const GedPair* p : FlattenGroups(set.test)) {
    GepResult res = gep(*p);
    // Feasibility: a real edit path of the reported length exists.
    EXPECT_EQ(static_cast<int>(res.path.size()), res.ged);
    EXPECT_GE(res.ged, LabelSetLowerBound(p->g1, p->g2));
    Graph rebuilt = ApplyEditPath(p->g1, p->g2, res.matching, res.path);
    EXPECT_TRUE(rebuilt == p->g2);
  }
}

TEST(IntegrationTest, SaveLoadPreservesPredictions) {
  GediotConfig cfg;
  cfg.trunk.num_labels = 1;
  cfg.trunk.conv_dims = {10, 10};
  cfg.trunk.out_dim = 6;
  GediotModel model(cfg);
  PairSet set = SmallPairSet(DatasetKind::kLinux, 25);
  TrainOptions topt;
  topt.epochs = 2;
  TrainModel(&model, set.train, topt);

  std::string path = ::testing::TempDir() + "/gediot_model.bin";
  auto params = model.Params();
  ASSERT_TRUE(SaveParameters(params, path));

  GediotModel fresh(cfg);
  auto fresh_params = fresh.Params();
  ASSERT_TRUE(LoadParameters(&fresh_params, path));

  const GedPair& p = set.train[0];
  EXPECT_NEAR(model.Predict(p.g1, p.g2).ged, fresh.Predict(p.g1, p.g2).ged,
              1e-9);
}

TEST(IntegrationTest, ExactSolversAgreeWithHeuristicSandwich) {
  // LB <= exact <= heuristic on arbitrary small pairs, across all engines.
  Rng rng(26);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 6);
    Graph g2 = AidsLikeGraph(&rng, 6, 8);
    auto astar = AstarGed(g1, g2);
    ASSERT_TRUE(astar.has_value());
    GedSearchResult bnb = BranchAndBoundGed(g1, g2);
    EXPECT_EQ(astar->ged, bnb.ged);
    EXPECT_GE(astar->ged, LabelSetLowerBound(g1, g2));
    EXPECT_LE(astar->ged, ClassicGed(g1, g2).ged);
    EXPECT_LE(astar->ged, BeamGed(g1, g2, 4).ged);
  }
}

}  // namespace
}  // namespace otged
