/// \file telemetry_test.cpp
/// \brief Telemetry subsystem: sharded counters under thread hammering,
/// log-linear histogram bucket geometry and percentile accuracy, registry
/// snapshot/reset, the TraceSink ring, exporter output — and end-to-end
/// reconciliation: the global cascade counters must agree exactly with
/// the per-query CascadeStats the engine returns on a randomized corpus.
/// The concurrency tests are written to be clean under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/generator.hpp"
#include "search/query_engine.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace otged {
namespace {

using telemetry::HistogramBuckets;

TEST(TelemetryCounterTest, ConcurrentIncrementsSumExactly) {
  telemetry::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Inc();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(), long{kThreads} * kPerThread);
  counter.Inc(42);
  EXPECT_EQ(counter.Value(), long{kThreads} * kPerThread + 42);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(TelemetryGaugeTest, SetAndAdd) {
  telemetry::Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 4);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(TelemetryHistogramTest, BucketGeometry) {
  // Exact buckets below kLinear, then every value lands in a bucket whose
  // bounds contain it and whose relative width is at most 2^-kSubBits.
  for (long v = 0; v < HistogramBuckets::kLinear; ++v)
    EXPECT_EQ(HistogramBuckets::BucketOf(v), static_cast<int>(v));
  long probes[] = {16, 17, 100, 1000, 4097, 1 << 20, (1L << 40) + 12345};
  for (long v : probes) {
    int b = HistogramBuckets::BucketOf(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, HistogramBuckets::kCount);
    EXPECT_LE(HistogramBuckets::LowerBound(b), v);
    EXPECT_GE(HistogramBuckets::UpperBound(b), v);
    double width = static_cast<double>(HistogramBuckets::UpperBound(b) -
                                       HistogramBuckets::LowerBound(b) + 1);
    EXPECT_LE(width / static_cast<double>(HistogramBuckets::LowerBound(b)),
              1.0 / HistogramBuckets::kSub + 1e-9);
  }
  // Buckets tile the value axis: consecutive bounds are adjacent.
  for (int b = 0; b + 1 < HistogramBuckets::kCount; ++b)
    ASSERT_EQ(HistogramBuckets::UpperBound(b) + 1,
              HistogramBuckets::LowerBound(b + 1))
        << "gap or overlap at bucket " << b;
}

TEST(TelemetryHistogramTest, PercentilesWithinBucketTolerance) {
  telemetry::Histogram hist;
  for (long v = 1; v <= 1000; ++v) hist.Record(v);
  telemetry::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_EQ(snap.sum, 1000 * 1001 / 2);
  EXPECT_NEAR(snap.Mean(), 500.5, 0.001);
  // A percentile is reported as its bucket's midpoint, so the error is at
  // most half the <=12.5% bucket width; 15% covers it with margin.
  struct { double q, expected; } cases[] = {
      {0.50, 500}, {0.90, 900}, {0.95, 950}, {0.99, 990}};
  for (auto [q, expected] : cases)
    EXPECT_NEAR(snap.Percentile(q), expected, 0.15 * expected)
        << "q=" << q;
  EXPECT_GE(snap.Max(), 1000);
  hist.Reset();
  EXPECT_EQ(hist.Snapshot().count, 0);
  EXPECT_EQ(hist.Snapshot().Percentile(0.5), 0.0);
}

TEST(TelemetryHistogramTest, ConcurrentRecordsKeepExactCountAndSum) {
  telemetry::Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) hist.Record(t * 1000 + i % 97);
    });
  for (auto& th : threads) th.join();
  telemetry::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, long{kThreads} * kPerThread);
  long expected_sum = 0;
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i) expected_sum += t * 1000 + i % 97;
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(TelemetryRegistryTest, SnapshotAndReset) {
  auto& reg = telemetry::Registry();
  // Unique names keep this test independent of instrumented library code
  // sharing the process-wide registry.
  telemetry::Counter& c = reg.GetCounter("test_registry_counter", "help c");
  telemetry::Gauge& g = reg.GetGauge("test_registry_gauge", "help g");
  telemetry::Histogram& h = reg.GetHistogram("test_registry_hist", "help h");
  c.Inc(5);
  g.Set(-2);
  h.Record(123);
  // Same name returns the same metric, not a fresh one.
  reg.GetCounter("test_registry_counter").Inc(1);
  EXPECT_EQ(c.Value(), 6);

  telemetry::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("test_registry_counter"), 6);
  EXPECT_EQ(snap.CounterValue("no_such_counter", -7), -7);
  bool saw_gauge = false, saw_hist = false;
  for (const auto& named : snap.gauges)
    if (named.name == "test_registry_gauge") {
      saw_gauge = true;
      EXPECT_EQ(named.value, -2);
      EXPECT_EQ(named.help, "help g");
    }
  for (const auto& named : snap.histograms)
    if (named.name == "test_registry_hist") {
      saw_hist = true;
      EXPECT_EQ(named.hist.count, 1);
    }
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));

  reg.Reset();
  EXPECT_EQ(c.Value(), 0);       // handles survive a reset
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Snapshot().count, 0);
  c.Inc(3);
  EXPECT_EQ(reg.Snapshot().CounterValue("test_registry_counter"), 3);
}

TEST(TelemetryTraceTest, RingOverwritesOldestAndCountsDrops) {
  telemetry::TraceSink sink(4);
  EXPECT_EQ(sink.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    telemetry::TraceEvent ev;
    ev.query_id = 100 + i;
    ev.graph_id = i;
    sink.Record(ev);
  }
  EXPECT_EQ(sink.Size(), 4u);
  EXPECT_EQ(sink.TotalRecorded(), 10u);
  EXPECT_EQ(sink.Dropped(), 6u);
  std::vector<telemetry::TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {  // oldest first, last four survive
    EXPECT_EQ(events[i].query_id, 100u + 6 + i);
    EXPECT_EQ(events[i].graph_id, 6 + i);
  }
  std::string json = sink.DumpJson();
  EXPECT_NE(json.find("\"dropped\": 6"), std::string::npos);

  std::vector<telemetry::TraceEvent> drained = sink.Drain();
  EXPECT_EQ(drained.size(), 4u);
  EXPECT_EQ(sink.Size(), 0u);
  EXPECT_EQ(sink.TotalRecorded(), 10u);  // totals persist across Drain

  sink.SetCapacity(2);
  EXPECT_EQ(sink.capacity(), 2u);
  EXPECT_EQ(sink.Size(), 0u);
}

TEST(TelemetryExportTest, PrometheusTextAndJsonShapes) {
  telemetry::MetricsRegistry reg;  // private registry: exact, tiny output
  reg.GetCounter("demo_total{tier=\"a\"}", "demo counter").Inc(3);
  reg.GetCounter("demo_total{tier=\"b\"}", "demo counter").Inc(4);
  reg.GetGauge("demo_gauge", "demo gauge").Set(9);
  reg.GetHistogram("demo_us", "demo histogram").Record(5);
  telemetry::MetricsSnapshot snap = reg.Snapshot();

  std::string prom = telemetry::ToPrometheusText(snap);
  EXPECT_NE(prom.find("# HELP demo_total demo counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE demo_total counter"), std::string::npos);
  // One family header even with two labeled series.
  EXPECT_EQ(prom.find("# TYPE demo_total counter"),
            prom.rfind("# TYPE demo_total counter"));
  EXPECT_NE(prom.find("demo_total{tier=\"a\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("demo_total{tier=\"b\"} 4"), std::string::npos);
  EXPECT_NE(prom.find("demo_gauge 9"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE demo_us histogram"), std::string::npos);
  EXPECT_NE(prom.find("demo_us_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("demo_us_count 1"), std::string::npos);
  EXPECT_NE(prom.find("demo_us_sum 5"), std::string::npos);

  std::string json = telemetry::ToJson(snap);
  EXPECT_NE(json.find("\"demo_total{tier=\\\"a\\\"}\": 3"),
            std::string::npos);
  EXPECT_NE(json.find("\"demo_gauge\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(TelemetryBenchReportTest, PercentileAndGitRevision) {
  std::vector<double> samples = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(telemetry::PercentileOf(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(telemetry::PercentileOf(samples, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(telemetry::PercentileOf(samples, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(telemetry::PercentileOf({}, 0.5), 0.0);
  std::string rev = telemetry::GitRevision();
  EXPECT_FALSE(rev.empty());  // a hex SHA or the literal "unknown"
}

// ------------------------------------------------------------ end to end
// These tests assert that the library's instrumentation fires, so they
// only make sense when it is compiled in (the unit tests above exercise
// the metric types directly and run either way).
#if OTGED_TELEMETRY_COMPILED

// Counter deltas across a serving burst must match the CascadeStats
// totals the engine itself returns — the same decisions counted two
// independent ways (per-worker stats buffers vs the sharded global
// counters).
struct NamedField {
  const char* counter;
  long CascadeStats::*field;
};

constexpr NamedField kCascadeFields[] = {
    {"otged_cascade_candidates_total", &CascadeStats::candidates},
    {"otged_cascade_pruned_total{tier=\"index\"}",
     &CascadeStats::pruned_index},
    {"otged_cascade_pruned_total{tier=\"invariant\"}",
     &CascadeStats::pruned_invariant},
    {"otged_cascade_passed_total{tier=\"invariant\"}",
     &CascadeStats::passed_invariant},
    {"otged_cascade_pruned_total{tier=\"branch\"}",
     &CascadeStats::pruned_branch},
    {"otged_cascade_decided_total{tier=\"heuristic\"}",
     &CascadeStats::decided_heuristic},
    {"otged_cascade_decided_total{tier=\"ot\"}", &CascadeStats::decided_ot},
    {"otged_cascade_decided_total{tier=\"exact\"}",
     &CascadeStats::decided_exact},
    {"otged_cascade_ot_calls_total", &CascadeStats::ot_calls},
    {"otged_cascade_exact_calls_total", &CascadeStats::exact_calls},
    {"otged_cascade_exact_incomplete_total",
     &CascadeStats::exact_incomplete},
    {"otged_cascade_cache_hits_total", &CascadeStats::cache_hits},
    // Parallel-exact counters: zero when parallel_exact_threads <= 1 (as
    // here), so this verifies the mirror path never fires spuriously; the
    // nonzero reconciliation lives in search_exact_budget_test.cpp.
    {"otged_exact_parallel_runs_total", &CascadeStats::exact_parallel_runs},
    {"otged_exact_parallel_expansions_total",
     &CascadeStats::exact_parallel_expansions},
    {"otged_exact_parallel_subtrees_total",
     &CascadeStats::exact_parallel_subtrees},
    {"otged_exact_parallel_rounds_total",
     &CascadeStats::exact_parallel_rounds},
    {"otged_exact_parallel_incumbent_updates_total",
     &CascadeStats::exact_parallel_incumbent_updates},
};

TEST(TelemetryEndToEndTest, CascadeCountersReconcileWithQueryStats) {
  telemetry::SetEnabled(true);
  Rng rng(1234);
  GraphStore store;
  std::vector<Graph> graphs;
  for (int i = 0; i < 70; ++i) graphs.push_back(AidsLikeGraph(&rng, 4, 10));
  store.AddAll(graphs);
  EngineOptions opt;
  opt.num_threads = 4;
  QueryEngine engine(&store, opt);

  std::vector<Graph> queries;
  for (int q = 0; q < 5; ++q) queries.push_back(AidsLikeGraph(&rng, 4, 10));

  telemetry::MetricsSnapshot before = telemetry::Registry().Snapshot();
  CascadeStats total;
  for (const RangeResult& res : engine.RangeBatch(queries, 3))
    total.Merge(res.stats.cascade);
  for (const TopKResult& res : engine.TopKBatch(queries, 4))
    total.Merge(res.stats.cascade);
  // Second range pass hits the bound cache, exercising the cache-hit
  // mirror path too.
  for (const RangeResult& res : engine.RangeBatch(queries, 3))
    total.Merge(res.stats.cascade);
  telemetry::MetricsSnapshot after = telemetry::Registry().Snapshot();

  ASSERT_GT(total.candidates, 0);
  EXPECT_GT(total.cache_hits, 0) << "warm pass should hit the bound cache";
  // Every candidate is settled by exactly one tier or the cache.
  EXPECT_EQ(total.SettledTotal(), total.candidates);
  for (const NamedField& nf : kCascadeFields)
    EXPECT_EQ(after.CounterValue(nf.counter) - before.CounterValue(nf.counter),
              total.*nf.field)
        << nf.counter;
}

TEST(TelemetryEndToEndTest, TraceEventsMatchCandidateDecisions) {
  telemetry::SetEnabled(true);
  telemetry::TraceSink& sink = telemetry::GlobalTrace();
  sink.SetCapacity(1 << 16);
  sink.Clear();
  sink.SetEnabled(true);

  Rng rng(77);
  GraphStore store;
  for (int i = 0; i < 40; ++i) store.Add(AidsLikeGraph(&rng, 4, 9));
  QueryEngine engine(&store, {});
  std::vector<Graph> queries;
  for (int q = 0; q < 3; ++q) queries.push_back(AidsLikeGraph(&rng, 4, 9));

  CascadeStats total;
  std::set<uint64_t> trace_ids;
  for (const RangeResult& res : engine.RangeBatch(queries, 3)) {
    total.Merge(res.stats.cascade);
    EXPECT_NE(res.stats.trace_id, 0u);
    trace_ids.insert(res.stats.trace_id);
  }
  sink.SetEnabled(false);

  EXPECT_EQ(trace_ids.size(), queries.size());  // distinct queries
  std::vector<telemetry::TraceEvent> events = sink.Drain();
  // One event per (query, candidate) cascade decision. Candidates the
  // index dismissed never reach the cascade (that is the point of the
  // index), so they produce no trace events.
  EXPECT_EQ(static_cast<long>(events.size()),
            total.candidates - total.pruned_index);
  long by_tier[6] = {0, 0, 0, 0, 0, 0};
  for (const telemetry::TraceEvent& ev : events) {
    ASSERT_GE(ev.tier, 0);
    ASSERT_LE(ev.tier, 5);
    ++by_tier[ev.tier];
    EXPECT_TRUE(trace_ids.count(ev.query_id)) << ev.query_id;
    EXPECT_GE(ev.graph_id, 0);
    EXPECT_EQ(ev.cache_hit, ev.tier == 5);
    if (ev.tier == 0 && !ev.within) {
      EXPECT_EQ(ev.ged, -1);
    }
    if (ev.exact) {
      EXPECT_GE(ev.ged, 0);
    }
  }
  EXPECT_EQ(by_tier[0], total.pruned_invariant + total.passed_invariant);
  EXPECT_EQ(by_tier[1], total.pruned_branch);
  EXPECT_EQ(by_tier[2], total.decided_heuristic);
  EXPECT_EQ(by_tier[3], total.decided_ot);
  EXPECT_EQ(by_tier[4], total.decided_exact);
  EXPECT_EQ(by_tier[5], total.cache_hits);
}

#endif  // OTGED_TELEMETRY_COMPILED

// Per-query wall times and trace ids are first-class QueryStats fields,
// populated whether or not telemetry is compiled in.
TEST(TelemetryEndToEndTest, BatchQueriesReportIndividualWallTimes) {
  Rng rng(55);
  GraphStore store;
  for (int i = 0; i < 50; ++i) store.Add(AidsLikeGraph(&rng, 4, 10));
  EngineOptions opt;
  opt.num_threads = 4;
  QueryEngine engine(&store, opt);
  std::vector<Graph> queries;
  for (int q = 0; q < 6; ++q) queries.push_back(AidsLikeGraph(&rng, 4, 10));

  auto start = std::chrono::steady_clock::now();
  std::vector<RangeResult> results = engine.RangeBatch(queries, 3);
  double outer_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  ASSERT_EQ(results.size(), queries.size());
  for (const RangeResult& res : results) {
    EXPECT_GT(res.stats.wall_ms, 0.0);
    // A query cannot take longer than the call that served it.
    EXPECT_LE(res.stats.wall_ms, outer_ms);
  }
  for (const TopKResult& res : engine.TopKBatch(queries, 3)) {
    EXPECT_GT(res.stats.wall_ms, 0.0);
    EXPECT_NE(res.stats.trace_id, 0u);
  }
}

}  // namespace
}  // namespace otged
