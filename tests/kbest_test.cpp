#include "assignment/kbest.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/random.hpp"
#include "graph/generator.hpp"

namespace otged {
namespace {

double WeightOf(const Matrix& w, const NodeMatching& m) {
  double s = 0;
  for (size_t i = 0; i < m.size(); ++i) s += w(static_cast<int>(i), m[i]);
  return s;
}

// All matchings of an n1 x n2 weight matrix by brute force, sorted by
// weight descending.
std::vector<double> AllWeightsSorted(const Matrix& w) {
  const int n1 = w.rows(), n2 = w.cols();
  std::vector<int> cols(n2);
  for (int j = 0; j < n2; ++j) cols[j] = j;
  std::vector<double> weights;
  std::sort(cols.begin(), cols.end());
  do {
    double s = 0;
    for (int i = 0; i < n1; ++i) s += w(i, cols[i]);
    weights.push_back(s);
  } while (std::next_permutation(cols.begin(), cols.end()));
  std::sort(weights.rbegin(), weights.rend());
  // Deduplicate column choices beyond n1: the same first-n1 prefix appears
  // (n2-n1)! times; collapsing by value is fine for weight comparison.
  return weights;
}

TEST(KBestTest, FirstMatchingIsOptimal) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    int n1 = rng.UniformInt(2, 5), n2 = rng.UniformInt(n1, 6);
    Matrix w(n1, n2);
    for (int i = 0; i < w.size(); ++i) w[i] = rng.Uniform(0, 1);
    auto matchings = KBestMatchings(w, 3);
    ASSERT_FALSE(matchings.empty());
    EXPECT_NEAR(WeightOf(w, matchings[0]), AllWeightsSorted(w)[0], 1e-9);
  }
}

TEST(KBestTest, WeightsAreNonIncreasing) {
  Rng rng(2);
  Matrix w(4, 5);
  for (int i = 0; i < w.size(); ++i) w[i] = rng.Uniform(0, 1);
  auto matchings = KBestMatchings(w, 8);
  for (size_t i = 1; i < matchings.size(); ++i) {
    EXPECT_LE(WeightOf(w, matchings[i]), WeightOf(w, matchings[i - 1]) + 1e-9);
  }
}

TEST(KBestTest, MatchingsAreDistinct) {
  Rng rng(3);
  Matrix w(3, 4);
  for (int i = 0; i < w.size(); ++i) w[i] = rng.Uniform(0, 1);
  auto matchings = KBestMatchings(w, 10);
  std::set<NodeMatching> unique(matchings.begin(), matchings.end());
  EXPECT_EQ(unique.size(), matchings.size());
}

TEST(KBestTest, ExhaustsSmallSpaces) {
  // 2x2 has exactly 2 matchings; asking for 10 returns 2.
  Matrix w = {{1.0, 0.5}, {0.2, 0.9}};
  auto matchings = KBestMatchings(w, 10);
  EXPECT_EQ(matchings.size(), 2u);
}

TEST(KBestGepTest, FindsGroundTruthOnSyntheticPairs) {
  Rng rng(4);
  int found = 0, total = 0;
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = AidsLikeGraph(&rng, 4, 8);
    SyntheticEditOptions opt;
    opt.num_edits = 2;
    opt.num_labels = 29;
    GedPair pair = SyntheticEditPair(g, opt, &rng);
    // Feed the ground-truth coupling: k-best must recover a path no longer
    // than the ground-truth length immediately.
    Matrix pi =
        CouplingMatrixFromMatching(pair.gt_matching, pair.g2.NumNodes());
    GepResult res = KBestGepSearch(pair.g1, pair.g2, pi, 4);
    EXPECT_LE(res.ged, pair.ged);
    EXPECT_EQ(static_cast<int>(res.path.size()), res.ged);
    ++total;
    if (res.ged == pair.ged) ++found;
  }
  // Δ = 2 non-overlapping edits is almost always the true GED; allow a
  // couple of pairs where k-best finds an even shorter path.
  EXPECT_GE(found, total - 2);
}

TEST(KBestGepTest, LargerKNeverHurts) {
  Rng rng(5);
  Graph g = LinuxLikeGraph(&rng);
  SyntheticEditOptions opt;
  opt.num_edits = 4;
  opt.num_labels = 1;
  GedPair pair = SyntheticEditPair(g, opt, &rng);
  // A noisy coupling (uniform): more partitions can only improve the path.
  Matrix pi(pair.g1.NumNodes(), pair.g2.NumNodes(), 0.5);
  int prev = -1;
  for (int k : {1, 4, 16}) {
    GepResult res = KBestGepSearch(pair.g1, pair.g2, pi, k);
    if (prev >= 0) {
      EXPECT_LE(res.ged, prev);
    }
    prev = res.ged;
  }
}

TEST(KBestGepTest, ResultIsAlwaysFeasible) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = AidsLikeGraph(&rng, 3, 8);
    SyntheticEditOptions opt;
    opt.num_edits = 3;
    opt.num_labels = 29;
    GedPair pair = SyntheticEditPair(g, opt, &rng);
    Matrix pi(pair.g1.NumNodes(), pair.g2.NumNodes(), 1.0);
    GepResult res = KBestGepSearch(pair.g1, pair.g2, pi, 4);
    // Feasibility: applying the path yields G2 exactly.
    Graph rebuilt = ApplyEditPath(pair.g1, pair.g2, res.matching, res.path);
    EXPECT_TRUE(rebuilt == pair.g2);
  }
}

}  // namespace
}  // namespace otged
