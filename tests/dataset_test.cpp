#include "graph/dataset.hpp"

#include <gtest/gtest.h>

namespace otged {
namespace {

TEST(DatasetTest, StatsMatchKind) {
  Dataset aids = MakeDataset(DatasetKind::kAids, 50, 1);
  EXPECT_EQ(aids.name, "AIDS-like");
  EXPECT_EQ(aids.num_labels, 29);
  EXPECT_EQ(aids.graphs.size(), 50u);
  EXPECT_LE(aids.MaxNodes(), 10);

  Dataset imdb = MakeDataset(DatasetKind::kImdb, 50, 2);
  EXPECT_EQ(imdb.num_labels, 1);
  // Ego-nets are denser than molecules.
  EXPECT_GT(imdb.AvgEdges() / imdb.AvgNodes(),
            aids.AvgEdges() / aids.AvgNodes());
}

TEST(DatasetTest, PairSetShapes) {
  Dataset d = MakeDataset(DatasetKind::kLinux, 40, 3);
  PairSetOptions opt;
  opt.num_train_pairs = 30;
  opt.num_test_queries = 3;
  opt.pairs_per_query = 5;
  opt.exactify_small = false;
  PairSet set = MakePairSet(d, opt);
  EXPECT_EQ(set.train.size(), 30u);
  EXPECT_EQ(set.test.size(), 3u);
  for (const QueryGroup& g : set.test) EXPECT_EQ(g.pairs.size(), 5u);
  for (const GedPair& p : set.train) {
    EXPECT_LE(p.g1.NumNodes(), p.g2.NumNodes());
    EXPECT_GE(p.ged, 1);
    EXPECT_EQ(EditCostFromMatching(p.g1, p.g2, p.gt_matching), p.ged);
  }
}

TEST(DatasetTest, ExactifiedPairsAreOptimal) {
  Dataset d = MakeDataset(DatasetKind::kAids, 30, 4);
  PairSetOptions opt;
  opt.num_train_pairs = 20;
  opt.num_test_queries = 2;
  opt.pairs_per_query = 4;
  opt.exactify_small = true;
  opt.exact_max_nodes = 8;
  PairSet set = MakePairSet(d, opt);
  int exact_count = 0;
  for (const GedPair& p : set.train) {
    if (p.exact) {
      ++exact_count;
      // The stored matching realizes the stored GED.
      EXPECT_EQ(EditCostFromMatching(p.g1, p.g2, p.gt_matching), p.ged);
      EXPECT_EQ(static_cast<int>(p.gt_path.size()), p.ged);
    }
  }
  EXPECT_GT(exact_count, 0);
}

TEST(DatasetTest, QueryGroupAroundFixedGraph) {
  Rng rng(5);
  Graph g = LinuxLikeGraph(&rng, 6, 9);
  QueryGroup group = MakeQueryGroup(g, 8, 4, 1, &rng);
  EXPECT_EQ(group.pairs.size(), 8u);
  for (const GedPair& p : group.pairs) {
    EXPECT_TRUE(p.g1 == g);
    EXPECT_GE(p.ged, 1);
    EXPECT_LE(p.ged, 4);
  }
}

TEST(DatasetTest, DeterministicUnderSeed) {
  Dataset a = MakeDataset(DatasetKind::kAids, 10, 42);
  Dataset b = MakeDataset(DatasetKind::kAids, 10, 42);
  for (size_t i = 0; i < a.graphs.size(); ++i)
    EXPECT_TRUE(a.graphs[i] == b.graphs[i]);
}

}  // namespace
}  // namespace otged

namespace otged {
namespace {

TEST(ArbitraryPairSetTest, ExactGroundTruthIsSandwiched) {
  Dataset d = MakeDataset(DatasetKind::kAids, 30, 9);
  ArbitraryPairOptions opt;
  opt.num_train_pairs = 25;
  opt.num_test_queries = 2;
  opt.pairs_per_query = 5;
  PairSet set = MakeArbitraryPairSet(d, opt);
  EXPECT_EQ(set.train.size(), 25u);
  int exact_count = 0;
  for (const GedPair& p : set.train) {
    EXPECT_LE(p.g1.NumNodes(), p.g2.NumNodes());
    // GT matching always realizes the stored GED (feasible path exists).
    EXPECT_EQ(EditCostFromMatching(p.g1, p.g2, p.gt_matching), p.ged);
    EXPECT_GE(p.ged, LabelSetLowerBound(p.g1, p.g2));
    if (p.exact) ++exact_count;
  }
  // On <=10-node molecules, branch-and-bound virtually always completes.
  EXPECT_GT(exact_count, 20);
}

TEST(ArbitraryPairSetTest, QueryGroupsShareTheQueryGraph) {
  Dataset d = MakeDataset(DatasetKind::kLinux, 30, 10);
  ArbitraryPairOptions opt;
  opt.num_train_pairs = 5;
  opt.num_test_queries = 2;
  opt.pairs_per_query = 6;
  PairSet set = MakeArbitraryPairSet(d, opt);
  ASSERT_EQ(set.test.size(), 2u);
  for (const QueryGroup& g : set.test) {
    ASSERT_EQ(g.pairs.size(), 6u);
    // All pairs in a group involve one shared query graph (as g1 or g2).
    for (const GedPair& p : g.pairs) {
      EXPECT_GE(p.ged, 0);
      EXPECT_EQ(static_cast<int>(p.gt_path.size()), p.ged);
    }
  }
}

}  // namespace
}  // namespace otged
