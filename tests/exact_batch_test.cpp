/// \file exact_batch_test.cpp
/// \brief The multi-pair batched exact verifier and its engine wiring:
/// ParallelBranchAndBoundGedBatch must reproduce every solo run byte for
/// byte — results AND deterministic run stats — for any pool thread
/// count ({1, 2, 8}) and any batch composition (whole pool, halves,
/// interleaved slices), including pairs whose expansion budget runs out.
/// At the engine level, a parallel-exact engine (which routes tier-4
/// work and top-k seed refinement through ExactSearchBatch) must return
/// the same hits and the same cascade counters as a sequential-exact
/// engine whenever budgets are generous enough that both solvers prove
/// their distances, and the exact_parallel_batches counter must
/// reconcile per query.
#include <gtest/gtest.h>

#include <vector>

#include "exact/parallel_bnb.hpp"
#include "graph/generator.hpp"
#include "search/query_engine.hpp"
#include "search/work_stealing_pool.hpp"
#include "telemetry/metrics.hpp"

namespace otged {
namespace {

bool SameResult(const GedSearchResult& a, const GedSearchResult& b) {
  return a.ged == b.ged && a.matching == b.matching && a.exact == b.exact &&
         a.expansions == b.expansions;
}

bool SameStats(const ParallelBnbStats& a, const ParallelBnbStats& b) {
  return a.subtrees == b.subtrees && a.rounds == b.rounds &&
         a.incumbent_updates == b.incumbent_updates;
}

/// ~200 hard pairs of mixed families, sizes and per-pair options: some
/// carry an upper-bound hint, some a starved expansion budget (so the
/// incomplete path is part of the determinism surface), some a tiny
/// round quota (many rounds, many incumbent folds).
struct BatchFixture {
  std::vector<GedPair> pairs;
  std::vector<ParallelBnbBatchItem> items;

  explicit BatchFixture(int count) {
    Rng rng(4242);
    pairs.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      SyntheticEditOptions eopt;
      eopt.num_edits = 2 + i % 3;
      Graph base;
      if (i % 3 == 0) {
        base = AidsLikeGraph(&rng, 6, 10);
        eopt.num_labels = 29;
      } else {
        base = LinuxLikeGraph(&rng, 6, 9);
        eopt.num_labels = 1;
        eopt.allow_relabel = false;
      }
      pairs.push_back(SyntheticEditPair(base, eopt, &rng));
    }
    items.resize(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      items[i].g1 = &pairs[i].g1;
      items[i].g2 = &pairs[i].g2;
      items[i].opt.max_expansions = i % 7 == 3 ? 500 : 50'000;
      if (i % 5 == 1) items[i].opt.initial_upper_bound = pairs[i].ged;
      if (i % 11 == 4) items[i].opt.round_quota = 64;
    }
  }
};

TEST(ExactBatchTest, BatchMatchesSoloForAnyPoolAndComposition) {
  const BatchFixture fx(200);
  WorkStealingPool pool1(1), pool2(2), pool8(8);

  // Reference: every pair solved solo (thread count is already proven
  // irrelevant by exact_parallel_test; pool2 stands in for all).
  std::vector<GedSearchResult> solo(fx.items.size());
  std::vector<ParallelBnbStats> solo_stats(fx.items.size());
  int incomplete = 0;
  for (size_t i = 0; i < fx.items.size(); ++i) {
    solo[i] =
        ParallelBranchAndBoundGed(*fx.items[i].g1, *fx.items[i].g2, &pool2,
                                  fx.items[i].opt, &solo_stats[i]);
    incomplete += solo[i].exact ? 0 : 1;
  }
  ASSERT_GT(incomplete, 0) << "fixture never exhausts a budget";

  // One batch over every pool size.
  for (WorkStealingPool* pool : {&pool1, &pool2, &pool8}) {
    std::vector<ParallelBnbStats> stats;
    const std::vector<GedSearchResult> got =
        ParallelBranchAndBoundGedBatch(fx.items, pool, &stats);
    ASSERT_EQ(got.size(), solo.size());
    ASSERT_EQ(stats.size(), solo.size());
    for (size_t i = 0; i < solo.size(); ++i) {
      EXPECT_TRUE(SameResult(got[i], solo[i]))
          << "pool " << pool->num_threads() << " pair " << i;
      EXPECT_TRUE(SameStats(stats[i], solo_stats[i]))
          << "pool " << pool->num_threads() << " pair " << i;
    }
  }

  // Composition independence: halves and a stride-3 slice must each
  // reproduce their pairs' solo results exactly.
  const size_t half = fx.items.size() / 2;
  const std::vector<ParallelBnbBatchItem> front(fx.items.begin(),
                                                fx.items.begin() + half);
  const std::vector<GedSearchResult> front_got =
      ParallelBranchAndBoundGedBatch(front, &pool2);
  for (size_t i = 0; i < front.size(); ++i)
    EXPECT_TRUE(SameResult(front_got[i], solo[i])) << "front pair " << i;
  std::vector<ParallelBnbBatchItem> strided;
  std::vector<size_t> origin;
  for (size_t i = 0; i < fx.items.size(); i += 3) {
    strided.push_back(fx.items[i]);
    origin.push_back(i);
  }
  const std::vector<GedSearchResult> strided_got =
      ParallelBranchAndBoundGedBatch(strided, &pool8);
  for (size_t i = 0; i < strided.size(); ++i)
    EXPECT_TRUE(SameResult(strided_got[i], solo[origin[i]]))
        << "strided pair " << i;

  // Degenerate compositions.
  EXPECT_TRUE(ParallelBranchAndBoundGedBatch({}, &pool2).empty());
  const std::vector<GedSearchResult> single = ParallelBranchAndBoundGedBatch(
      {fx.items[0]}, /*pool=*/nullptr);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_TRUE(SameResult(single[0], solo[0]));
}

/// Store + queries where tier 4 actually fires: unlabeled graphs keep
/// the cheap bounds loose.
struct EngineFixture {
  std::vector<Graph> queries;
  GraphStore store;

  EngineFixture() {
    Rng rng(9091);
    std::vector<Graph> corpus;
    for (int q = 0; q < 3; ++q)
      queries.push_back(LinuxLikeGraph(&rng, 7, 9));
    for (const Graph& q : queries) {
      for (int i = 0; i < 6; ++i) {
        SyntheticEditOptions eopt;
        eopt.num_edits = rng.UniformInt(1, 4);
        eopt.num_labels = 1;
        corpus.push_back(SyntheticEditPair(q, eopt, &rng).g2);
      }
    }
    for (int i = 0; i < 20; ++i)
      corpus.push_back(LinuxLikeGraph(&rng, 6, 9));
    store.AddAll(corpus);
  }
};

TEST(ExactBatchTest, EngineParallelModeMatchesSequentialMode) {
  const EngineFixture fx;
  EngineOptions seq_opt;
  seq_opt.num_threads = 2;
  QueryEngine seq_engine(&fx.store, seq_opt);
  EngineOptions par_opt = seq_opt;
  par_opt.cascade.parallel_exact_threads = 2;
  QueryEngine par_engine(&fx.store, par_opt);

  const auto expect_same_decisions = [](const CascadeStats& a,
                                        const CascadeStats& b) {
    // With both solvers inside budget every decision is proof-backed,
    // so the per-tier settlement counters must agree exactly; only the
    // exact_parallel_* observability fields may differ between modes.
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.pruned_index, b.pruned_index);
    EXPECT_EQ(a.pruned_invariant, b.pruned_invariant);
    EXPECT_EQ(a.passed_invariant, b.passed_invariant);
    EXPECT_EQ(a.pruned_branch, b.pruned_branch);
    EXPECT_EQ(a.decided_heuristic, b.decided_heuristic);
    EXPECT_EQ(a.decided_ot, b.decided_ot);
    EXPECT_EQ(a.decided_exact, b.decided_exact);
    EXPECT_EQ(a.ot_calls, b.ot_calls);
    EXPECT_EQ(a.exact_calls, b.exact_calls);
    EXPECT_EQ(a.exact_incomplete, b.exact_incomplete);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
  };

  const std::vector<RangeResult> seq_range =
      seq_engine.RangeBatch(fx.queries, 4);
  const std::vector<RangeResult> par_range =
      par_engine.RangeBatch(fx.queries, 4);
  ASSERT_EQ(seq_range.size(), par_range.size());
  long par_batches = 0;
  for (size_t q = 0; q < seq_range.size(); ++q) {
    ASSERT_EQ(seq_range[q].stats.cascade.exact_incomplete, 0)
        << "budget too small for a mode-equivalence check";
    ASSERT_EQ(seq_range[q].hits.size(), par_range[q].hits.size()) << q;
    for (size_t h = 0; h < seq_range[q].hits.size(); ++h) {
      EXPECT_EQ(seq_range[q].hits[h].id, par_range[q].hits[h].id);
      EXPECT_EQ(seq_range[q].hits[h].ged, par_range[q].hits[h].ged);
      EXPECT_EQ(seq_range[q].hits[h].exact_distance,
                par_range[q].hits[h].exact_distance);
    }
    expect_same_decisions(seq_range[q].stats.cascade,
                          par_range[q].stats.cascade);
    par_batches += par_range[q].stats.cascade.exact_parallel_batches;
  }
  // The parallel engine must actually have batched (the queries reach
  // tier 4), and the sequential engine must never report batches.
  EXPECT_GT(par_batches, 0);
  for (const RangeResult& r : seq_range)
    EXPECT_EQ(r.stats.cascade.exact_parallel_batches, 0);

  const std::vector<TopKResult> seq_topk =
      seq_engine.TopKBatch(fx.queries, 5);
  const std::vector<TopKResult> par_topk =
      par_engine.TopKBatch(fx.queries, 5);
  ASSERT_EQ(seq_topk.size(), par_topk.size());
  for (size_t q = 0; q < seq_topk.size(); ++q) {
    ASSERT_EQ(seq_topk[q].stats.cascade.exact_incomplete, 0);
    ASSERT_EQ(seq_topk[q].hits.size(), par_topk[q].hits.size()) << q;
    for (size_t h = 0; h < seq_topk[q].hits.size(); ++h) {
      EXPECT_EQ(seq_topk[q].hits[h].id, par_topk[q].hits[h].id);
      EXPECT_EQ(seq_topk[q].hits[h].ged, par_topk[q].hits[h].ged);
      EXPECT_EQ(seq_topk[q].hits[h].exact_distance,
                par_topk[q].hits[h].exact_distance);
    }
    expect_same_decisions(seq_topk[q].stats.cascade,
                          par_topk[q].stats.cascade);
  }
}

TEST(ExactBatchTest, BatchCounterReconcilesWithTelemetry) {
  const EngineFixture fx;
  EngineOptions opt;
  opt.num_threads = 2;
  opt.cascade.parallel_exact_threads = 2;
  QueryEngine engine(&fx.store, opt);

#if OTGED_TELEMETRY_COMPILED
  telemetry::SetEnabled(true);
  const telemetry::MetricsSnapshot before =
      telemetry::Registry().Snapshot();
#endif
  CascadeStats total;
  for (const RangeResult& r : engine.RangeBatch(fx.queries, 4))
    total.Merge(r.stats.cascade);
  for (const TopKResult& r : engine.TopKBatch(fx.queries, 5))
    total.Merge(r.stats.cascade);
#if OTGED_TELEMETRY_COMPILED
  const telemetry::MetricsSnapshot after = telemetry::Registry().Snapshot();
#endif

  // Batching happened, and every parallel run belongs to some batch.
  EXPECT_GT(total.exact_parallel_batches, 0);
  EXPECT_GE(total.exact_parallel_runs, total.exact_parallel_batches);

#if OTGED_TELEMETRY_COMPILED
  EXPECT_EQ(after.CounterValue("otged_exact_parallel_batches_total") -
                before.CounterValue("otged_exact_parallel_batches_total"),
            total.exact_parallel_batches);
  EXPECT_EQ(after.CounterValue("otged_exact_parallel_runs_total") -
                before.CounterValue("otged_exact_parallel_runs_total"),
            total.exact_parallel_runs);
#endif
}

}  // namespace
}  // namespace otged
