/// \file exact_parallel_test.cpp
/// \brief The deterministic parallel exact verifier: byte-identical
/// results for any thread count (including under budget exhaustion),
/// agreement with the sequential branch-and-bound and A*, the
/// structure-of-arrays scratch state against the recompute-from-scratch
/// reference, and a TSan-targeted concurrent verify hammer where many
/// caller threads share one cascade (and its shared-incumbent exact
/// pool) with every per-pair result checked against single-threaded
/// branch-and-bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "exact/astar.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/parallel_bnb.hpp"
#include "exact/search_common.hpp"
#include "graph/generator.hpp"
#include "search/filter_cascade.hpp"

namespace otged {
namespace {

/// One graph drawn from a family indexed in [0, 4): labeled ER,
/// unlabeled ER, sparse power-law, AIDS-like molecules.
Graph SampleGraph(int family, Rng* rng) {
  switch (family) {
    case 0:
      return RandomConnectedGraph(rng->UniformInt(3, 8),
                                  rng->UniformInt(0, 3), 5, rng);
    case 1:
      return RandomConnectedGraph(rng->UniformInt(3, 8),
                                  rng->UniformInt(0, 3), 1, rng);
    case 2:
      return PowerLawGraph(rng->UniformInt(4, 8), 1, rng);
    default:
      return AidsLikeGraph(rng, 4, 8);
  }
}

/// A pair ordered so n1 <= n2, as every exact search requires.
std::pair<Graph, Graph> SamplePair(int trial, Rng* rng) {
  Graph a = SampleGraph(trial % 4, rng);
  Graph b = SampleGraph((trial + 1 + trial / 4) % 4, rng);
  if (a.NumNodes() > b.NumNodes()) std::swap(a, b);
  return {std::move(a), std::move(b)};
}

bool SameResult(const GedSearchResult& x, const GedSearchResult& y) {
  return x.ged == y.ged && x.matching == y.matching && x.exact == y.exact &&
         x.expansions == y.expansions;
}

// The acceptance bar: byte-identical GedSearchResult (ged, matching,
// exact flag — and expansions, which subsumes the budget accounting)
// for thread counts {1, 2, 8} on 200+ randomized pairs, plus agreement
// with the sequential solver and a feasibility witness.
TEST(ParallelBnbTest, ByteIdenticalAcrossThreadCounts) {
  WorkStealingPool pool1(1), pool2(2), pool8(8);
  Rng rng(20250807);
  ParallelBnbStats st1, st2, st8;
  long parallel_pairs = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto [g1, g2] = SamplePair(trial, &rng);
    const GedSearchResult r1 =
        ParallelBranchAndBoundGed(g1, g2, &pool1, {}, &st1);
    const GedSearchResult r2 =
        ParallelBranchAndBoundGed(g1, g2, &pool2, {}, &st2);
    const GedSearchResult r8 =
        ParallelBranchAndBoundGed(g1, g2, &pool8, {}, &st8);
    const GedSearchResult inl =
        ParallelBranchAndBoundGed(g1, g2, nullptr, {}, nullptr);
    EXPECT_TRUE(SameResult(r1, r2)) << "trial " << trial;
    EXPECT_TRUE(SameResult(r1, r8)) << "trial " << trial;
    EXPECT_TRUE(SameResult(r1, inl)) << "trial " << trial;
    // Stats are part of the determinism contract too.
    EXPECT_EQ(st1.subtrees, st2.subtrees) << "trial " << trial;
    EXPECT_EQ(st1.rounds, st8.rounds) << "trial " << trial;
    EXPECT_EQ(st1.incumbent_updates, st8.incumbent_updates)
        << "trial " << trial;
    if (st1.subtrees > 1) ++parallel_pairs;

    // Agreement with the sequential driver (these graphs are small
    // enough that neither budget is ever exhausted).
    const GedSearchResult seq = BranchAndBoundGed(g1, g2);
    ASSERT_TRUE(seq.exact) << "trial " << trial;
    EXPECT_TRUE(r1.exact) << "trial " << trial;
    EXPECT_EQ(r1.ged, seq.ged) << "trial " << trial;
    EXPECT_EQ(EditCostFromMatching(g1, g2, r1.matching), r1.ged)
        << "trial " << trial;
  }
  // The harness must actually exercise multi-subtree searches, not
  // degenerate single-leaf ones.
  EXPECT_GT(parallel_pairs, 100);
}

TEST(ParallelBnbTest, AgreesWithAstar) {
  WorkStealingPool pool(4);
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 6);
    Graph g2 = AidsLikeGraph(&rng, 6, 8);
    auto astar = AstarGed(g1, g2);
    ASSERT_TRUE(astar.has_value());
    const GedSearchResult par = ParallelBranchAndBoundGed(g1, g2, &pool);
    EXPECT_TRUE(par.exact);
    EXPECT_EQ(par.ged, astar->ged) << "trial " << trial;
  }
}

// Budget exhaustion must be deterministic as well: the expansions a run
// consumed, the incomplete flag, and the incumbent it got to must not
// depend on the thread count.
TEST(ParallelBnbTest, BudgetExhaustionIsDeterministic) {
  WorkStealingPool pool1(1), pool4(4);
  Rng rng(4242);
  int exhausted = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Graph a = ImdbLikeGraph(&rng, 8, 10);
    Graph b = ImdbLikeGraph(&rng, 8, 10);
    if (a.NumNodes() > b.NumNodes()) std::swap(a, b);
    ParallelBnbOptions opt;
    opt.max_expansions = 64;  // starve: these trees need far more
    opt.round_quota = 8;
    const GedSearchResult r1 =
        ParallelBranchAndBoundGed(a, b, &pool1, opt);
    const GedSearchResult r4 =
        ParallelBranchAndBoundGed(a, b, &pool4, opt);
    EXPECT_TRUE(SameResult(r1, r4)) << "trial " << trial;
    // Even incomplete results must carry a feasible witness.
    EXPECT_EQ(EditCostFromMatching(a, b, r1.matching), r1.ged)
        << "trial " << trial;
    if (!r1.exact) ++exhausted;
  }
  EXPECT_GT(exhausted, 0) << "starvation fixture never actually starved";
}

// The SoA do/undo scratch must agree with the recompute-from-scratch
// reference at every step: DeltaFast vs Delta, the incremental O(1)
// heuristic vs the O(n + m) recompute, and Push/Pop as exact inverses.
TEST(SearchScratchTest, MatchesRecomputeReferenceOnRandomWalks) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    auto [g1, g2] = SamplePair(trial, &rng);
    internal::Searcher searcher(g1, g2);
    const int n1 = searcher.ctx().n1, n2 = searcher.ctx().n2;
    internal::SearchState s = searcher.Root();
    internal::DfsState d = searcher.MakeDfs();
    const internal::DfsState fresh = searcher.MakeDfs();
    EXPECT_EQ(searcher.HeuristicOf(d), s.h) << "trial " << trial;
    for (int depth = 0; depth < n1; ++depth) {
      std::vector<int> free_v;
      for (int v = 0; v < n2; ++v)
        if (!(s.used >> v & 1)) free_v.push_back(v);
      for (int v : free_v)
        ASSERT_EQ(searcher.DeltaFast(d, v), searcher.Delta(s, v))
            << "trial " << trial << " depth " << depth << " v " << v;
      const int v = free_v[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(free_v.size()) - 1))];
      searcher.Push(&d, v, searcher.DeltaFast(d, v));
      s = searcher.Child(s, v);
      ASSERT_EQ(d.g, s.g);
      ASSERT_EQ(d.used, s.used);
      ASSERT_EQ(searcher.HeuristicOf(d), s.h)
          << "trial " << trial << " depth " << depth;
    }
    if (n1 > 0) {
      // Leaves: the O(1) heuristic degenerates to the completion cost.
      ASSERT_EQ(searcher.HeuristicOf(d), searcher.CompletionCost(s));
      ASSERT_EQ(searcher.ExtractMatching(d), searcher.ExtractMatching(s));
    }
    for (int depth = 0; depth < n1; ++depth) searcher.Pop(&d);
    // Pop is an exact inverse of Push: the state returns to the root.
    EXPECT_EQ(d.g, 0);
    EXPECT_EQ(d.used, 0u);
    EXPECT_EQ(d.depth, 0);
    EXPECT_EQ(d.surplus, fresh.surplus);
    EXPECT_EQ(d.m1_rem, fresh.m1_rem);
    EXPECT_EQ(d.m2_rem, fresh.m2_rem);
    EXPECT_EQ(d.map1to2, fresh.map1to2);
    EXPECT_EQ(d.map2to1, fresh.map2to1);
    EXPECT_EQ(d.c1_rem, fresh.c1_rem);
    EXPECT_EQ(d.c2_rem, fresh.c2_rem);
  }
}

// Concurrent verify hammer, written to run under ThreadSanitizer: many
// caller threads share one FilterCascade whose exact tier fans each
// pair over a shared-incumbent parallel pool; every per-pair result is
// checked against single-threaded branch-and-bound.
TEST(ParallelBnbHammerTest, ConcurrentCallersMatchSequential) {
  constexpr int kPairs = 24;
  constexpr int kThreads = 8;
  Rng rng(1357);
  std::vector<std::pair<Graph, Graph>> pairs;
  std::vector<GedSearchResult> want;
  for (int i = 0; i < kPairs; ++i) {
    pairs.push_back(SamplePair(i, &rng));
    want.push_back(BranchAndBoundGed(pairs.back().first,
                                     pairs.back().second));
    ASSERT_TRUE(want.back().exact);
  }
  CascadeOptions copt;
  copt.parallel_exact_threads = 4;
  FilterCascade cascade(copt);
  std::atomic<int> next{0};
  std::atomic<int> mismatches{0};
  std::vector<CascadeStats> stats(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = next.fetch_add(1, std::memory_order_relaxed);
           i < kPairs * 4;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        const auto& [g1, g2] = pairs[static_cast<size_t>(i % kPairs)];
        const GedSearchResult got = cascade.ExactSearch(
            g1, g2, /*budget=*/20'000'000, /*initial_upper_bound=*/-1,
            &stats[t]);
        if (!got.exact ||
            got.ged != want[static_cast<size_t>(i % kPairs)].ged ||
            EditCostFromMatching(g1, g2, got.matching) != got.ged) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0);
  CascadeStats total;
  for (const CascadeStats& s : stats) total.Merge(s);
  EXPECT_EQ(total.exact_parallel_runs, long{kPairs} * 4);
  EXPECT_GT(total.exact_parallel_subtrees, 0);
  EXPECT_GT(total.exact_parallel_rounds, 0);
}

}  // namespace
}  // namespace otged
