#include "heuristics/bipartite.hpp"

#include "assignment/hungarian.hpp"

#include <gtest/gtest.h>

#include "exact/astar.hpp"
#include "graph/generator.hpp"

namespace otged {
namespace {

TEST(BipartiteCostTest, ShapeAndBlocks) {
  Graph g1(2, 0);
  g1.AddEdge(0, 1);
  Graph g2(3, 0);
  g2.AddEdge(0, 1);
  Matrix c = BipartiteCostMatrix(g1, g2, false);
  EXPECT_EQ(c.rows(), 5);
  EXPECT_EQ(c.cols(), 5);
  // Substitution of same-label same-degree nodes costs 0.
  EXPECT_DOUBLE_EQ(c(0, 0), 0.0);
  // Deletion diagonal: 1 + deg/2.
  EXPECT_DOUBLE_EQ(c(0, 3), 1.5);
  // Deletion off-diagonal forbidden.
  EXPECT_GE(c(0, 4), kAssignInf / 2);
  // eps-eps block free.
  EXPECT_DOUBLE_EQ(c(3, 3), 0.0);
}

class HeuristicUpperBoundTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HeuristicUpperBoundTest, AlwaysFeasibleUpperBound) {
  auto [seed, num_labels] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g1 = RandomConnectedGraph(rng.UniformInt(3, 6),
                                    rng.UniformInt(0, 2), num_labels, &rng);
    Graph g2 = RandomConnectedGraph(rng.UniformInt(6, 8),
                                    rng.UniformInt(0, 3), num_labels, &rng);
    auto exact = AstarGed(g1, g2);
    ASSERT_TRUE(exact.has_value());
    for (const HeuristicResult& res :
         {HungarianGed(g1, g2), VjGed(g1, g2), ClassicGed(g1, g2)}) {
      EXPECT_GE(res.ged, exact->ged);
      EXPECT_EQ(static_cast<int>(res.path.size()), res.ged);
      // The path must transform g1 into g2.
      Graph rebuilt = ApplyEditPath(g1, g2, res.matching, res.path);
      EXPECT_TRUE(rebuilt == g2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, HeuristicUpperBoundTest,
    ::testing::Values(std::make_tuple(1, 29), std::make_tuple(2, 1),
                      std::make_tuple(3, 5), std::make_tuple(4, 2)));

TEST(ClassicTest, NeverWorseThanEitherMember) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g1 = AidsLikeGraph(&rng, 3, 7);
    Graph g2 = AidsLikeGraph(&rng, 7, 9);
    int h = HungarianGed(g1, g2).ged;
    int v = VjGed(g1, g2).ged;
    int c = ClassicGed(g1, g2).ged;
    EXPECT_EQ(c, std::min(h, v));
  }
}

TEST(ClassicTest, ExactOnIdenticalGraphs) {
  Rng rng(12);
  Graph g = AidsLikeGraph(&rng, 5, 9);
  EXPECT_EQ(ClassicGed(g, g).ged, 0);
}

TEST(ClassicTest, HandlesSingleNodeGraphs) {
  Graph g1(1, 3);
  Graph g2(2, 3);
  g2.AddEdge(0, 1);
  HeuristicResult res = ClassicGed(g1, g2);
  EXPECT_EQ(res.ged, 2);  // insert node + insert edge
}

}  // namespace
}  // namespace otged
