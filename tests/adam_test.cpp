#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include "nn/serialize.hpp"

namespace otged {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, start at 0; Adam should approach 3.
  Tensor x(Matrix(1, 1, 0.0), true);
  Adam::Options opt;
  opt.lr = 0.1;
  opt.weight_decay = 0.0;
  Adam adam({x}, opt);
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    MseLoss(Sum(x), 3.0).Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.value()(0, 0), 3.0, 1e-2);
}

TEST(AdamTest, WeightDecayShrinksUnusedParams) {
  Tensor used(Matrix(1, 1, 1.0), true);
  Tensor x(Matrix(1, 1, 5.0), true);
  Adam::Options opt;
  opt.lr = 0.05;
  opt.weight_decay = 0.1;
  Adam adam({x}, opt);
  for (int step = 0; step < 200; ++step) {
    adam.ZeroGrad();
    // Give x a zero but present gradient so decay applies.
    ScaleConst(Sum(x), 0.0).Backward();
    adam.Step();
  }
  EXPECT_LT(std::abs(x.value()(0, 0)), 1.0);
}

TEST(AdamTest, ClipBoundsGradients) {
  Tensor x(Matrix(1, 2, 0.0), true);
  Adam adam({x});
  adam.ZeroGrad();
  ScaleConst(Sum(x), 100.0).Backward();
  adam.ClipGradients(1.0);
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x.grad()(0, 1), 1.0);
}

TEST(AdamTest, SkipsParamsWithoutGrads) {
  Tensor x(Matrix(1, 1, 2.0), true);
  Adam adam({x});
  adam.Step();  // no gradient accumulated: value must not change
  EXPECT_DOUBLE_EQ(x.value()(0, 0), 2.0);
}

TEST(SerializeTest, RoundTrip) {
  std::vector<Tensor> params = {Tensor(Matrix{{1, 2}, {3, 4}}, true),
                                Tensor(Matrix(1, 1, 9.0), true)};
  std::string path = ::testing::TempDir() + "/otged_params.bin";
  ASSERT_TRUE(SaveParameters(params, path));
  std::vector<Tensor> loaded = {Tensor(Matrix(2, 2, 0.0), true),
                                Tensor(Matrix(1, 1, 0.0), true)};
  ASSERT_TRUE(LoadParameters(&loaded, path));
  EXPECT_DOUBLE_EQ(loaded[0].value()(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(loaded[1].value()(0, 0), 9.0);
}

TEST(SerializeTest, RejectsShapeMismatch) {
  std::vector<Tensor> params = {Tensor(Matrix(2, 2, 1.0), true)};
  std::string path = ::testing::TempDir() + "/otged_params2.bin";
  ASSERT_TRUE(SaveParameters(params, path));
  std::vector<Tensor> wrong = {Tensor(Matrix(3, 2, 0.0), true)};
  EXPECT_FALSE(LoadParameters(&wrong, path));
  EXPECT_FALSE(LoadParameters(&params, path + ".missing"));
}

}  // namespace
}  // namespace otged
