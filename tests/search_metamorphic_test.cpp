/// \file search_metamorphic_test.cpp
/// \brief Metamorphic relations for the search layer: transformations of
/// the input with a known effect on the output.
///
///   - GED is invariant under node-id permutation of either argument
///     (labels travel with the permutation), and so are query results
///     when the corpus is permuted graph-by-graph.
///   - Inserting graphs and erasing them again restores the store to a
///     state that answers every query identically (modulo the retired
///     ids, which were never part of the original answers).
///   - save -> load -> query equals rebuild -> query, bit for bit.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <numeric>
#include <string>
#include <vector>

#include "exact/branch_and_bound.hpp"
#include "graph/generator.hpp"
#include "heuristics/bipartite.hpp"
#include "search/query_engine.hpp"
#include "search/store_serialize.hpp"

namespace otged {
namespace {

int ExactGed(const Graph& a, const Graph& b) {
  auto [g1, g2] = OrderBySize(a, b);
  BnbOptions opt;
  opt.initial_upper_bound = ClassicGed(*g1, *g2).ged;
  GedSearchResult res = BranchAndBoundGed(*g1, *g2, opt);
  EXPECT_TRUE(res.exact);
  return res.ged;
}

Graph RandomPermutation(const Graph& g, Rng* rng) {
  std::vector<int> perm(g.NumNodes());
  std::iota(perm.begin(), perm.end(), 0);
  rng->Shuffle(&perm);
  return PermuteGraph(g, perm);
}

GraphStore MakeStore(int count, int num_labels, uint64_t seed) {
  Rng rng(seed);
  GraphStore store;
  for (int i = 0; i < count; ++i) {
    store.Insert(RandomConnectedGraph(rng.UniformInt(3, 7),
                                      rng.UniformInt(0, 3), num_labels,
                                      &rng));
  }
  return store;
}

void ExpectSameRange(const RangeResult& a, const RangeResult& b,
                     const std::string& context) {
  ASSERT_EQ(a.hits.size(), b.hits.size()) << context;
  for (size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].id, b.hits[i].id) << context << " hit " << i;
    EXPECT_EQ(a.hits[i].ged, b.hits[i].ged) << context << " hit " << i;
    EXPECT_EQ(a.hits[i].exact_distance, b.hits[i].exact_distance)
        << context << " hit " << i;
  }
}

void ExpectSameTopK(const TopKResult& a, const TopKResult& b,
                    const std::string& context) {
  ASSERT_EQ(a.hits.size(), b.hits.size()) << context;
  for (size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].id, b.hits[i].id) << context << " hit " << i;
    EXPECT_EQ(a.hits[i].ged, b.hits[i].ged) << context << " hit " << i;
    EXPECT_EQ(a.hits[i].exact_distance, b.hits[i].exact_distance)
        << context << " hit " << i;
  }
}

TEST(SearchMetamorphicTest, ExactGedIsPermutationInvariant) {
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    const int labels = trial % 2 ? 4 : 1;
    Graph a = RandomConnectedGraph(rng.UniformInt(3, 7),
                                   rng.UniformInt(0, 3), labels, &rng);
    Graph b = RandomConnectedGraph(rng.UniformInt(3, 7),
                                   rng.UniformInt(0, 3), labels, &rng);
    const int base = ExactGed(a, b);
    EXPECT_EQ(ExactGed(RandomPermutation(a, &rng), b), base) << trial;
    EXPECT_EQ(ExactGed(a, RandomPermutation(b, &rng)), base) << trial;
    EXPECT_EQ(ExactGed(RandomPermutation(a, &rng),
                       RandomPermutation(b, &rng)),
              base)
        << trial;
  }
}

/// Range membership is permutation-invariant (GED is), and so is every
/// distance both sides prove exact. Non-exact upper bounds may differ —
/// heuristic tie-breaking is node-order dependent — so only membership
/// and exact distances are compared.
void ExpectSameAnswerSet(const RangeResult& a, const RangeResult& b,
                         const std::string& context) {
  ASSERT_EQ(a.hits.size(), b.hits.size()) << context;
  for (size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].id, b.hits[i].id) << context << " hit " << i;
    if (a.hits[i].exact_distance && b.hits[i].exact_distance) {
      EXPECT_EQ(a.hits[i].ged, b.hits[i].ged) << context << " hit " << i;
    }
  }
}

/// Permuting the query's node ids must not change the answer set, nor
/// any exact distance (top-k distances are all exact at this scale).
TEST(SearchMetamorphicTest, QueryResultsArePermutationInvariant) {
  GraphStore store = MakeStore(30, 3, 103);
  Rng rng(107);
  for (int trial = 0; trial < 3; ++trial) {
    Graph query = RandomConnectedGraph(6, 2, 3, &rng);
    Graph permuted = RandomPermutation(query, &rng);
    QueryEngine a(&store, {}), b(&store, {});
    ExpectSameAnswerSet(a.Range(query, 3), b.Range(permuted, 3),
                        "range trial " + std::to_string(trial));
    TopKResult ta = a.TopK(query, 6), tb = b.TopK(permuted, 6);
    ASSERT_EQ(ta.hits.size(), tb.hits.size()) << trial;
    for (size_t i = 0; i < ta.hits.size(); ++i) {
      ASSERT_TRUE(ta.hits[i].exact_distance && tb.hits[i].exact_distance);
      EXPECT_EQ(ta.hits[i].id, tb.hits[i].id) << trial << " hit " << i;
      EXPECT_EQ(ta.hits[i].ged, tb.hits[i].ged) << trial << " hit " << i;
    }
  }
}

/// Permuting every stored graph must not change the answer set either —
/// ids are assigned by insertion order, which both corpora share.
TEST(SearchMetamorphicTest, CorpusPermutationLeavesResultsUnchanged) {
  Rng rng(109);
  GraphStore original, permuted;
  for (int i = 0; i < 30; ++i) {
    Graph g = RandomConnectedGraph(rng.UniformInt(3, 7),
                                   rng.UniformInt(0, 3), 3, &rng);
    original.Insert(g);
    permuted.Insert(RandomPermutation(g, &rng));
  }
  QueryEngine a(&original, {}), b(&permuted, {});
  for (int trial = 0; trial < 3; ++trial) {
    Graph query = RandomConnectedGraph(5, 2, 3, &rng);
    ExpectSameAnswerSet(a.Range(query, 3), b.Range(query, 3),
                        "corpus permutation trial " + std::to_string(trial));
  }
}

/// Insert-then-erase is an identity on query answers: after the churn the
/// same queries return byte-identical hits on a cold engine.
TEST(SearchMetamorphicTest, InsertEraseRestoresQueryAnswers) {
  GraphStore store = MakeStore(25, 2, 113);
  Rng rng(127);
  std::vector<Graph> queries;
  for (int q = 0; q < 3; ++q)
    queries.push_back(RandomConnectedGraph(rng.UniformInt(4, 6), 2, 2,
                                           &rng));

  std::vector<RangeResult> before;
  {
    QueryEngine engine(&store, {});
    for (const Graph& q : queries) before.push_back(engine.Range(q, 3));
  }

  const uint64_t epoch_before = store.Epoch();
  std::vector<int> churn_ids;
  for (int i = 0; i < 6; ++i)
    churn_ids.push_back(
        store.Insert(RandomConnectedGraph(5, 2, 2, &rng)));
  for (int id : churn_ids) EXPECT_TRUE(store.Erase(id));
  EXPECT_EQ(store.Epoch(), epoch_before + 12);  // 6 inserts + 6 erases

  QueryEngine engine(&store, {});
  for (size_t q = 0; q < queries.size(); ++q) {
    ExpectSameRange(before[q], engine.Range(queries[q], 3),
                    "after churn, query " + std::to_string(q));
  }
}

/// save -> load -> query gives bit-identical results to rebuild -> query;
/// ids (including gaps from erasures) and the id counter survive.
TEST(SearchMetamorphicTest, SaveLoadQueryEqualsRebuildQuery) {
  GraphStore store = MakeStore(30, 3, 131);
  // Punch holes so the file must preserve non-dense ids.
  EXPECT_TRUE(store.Erase(4));
  EXPECT_TRUE(store.Erase(17));

  const std::string path =
      ::testing::TempDir() + "/store_roundtrip.otgstore";
  std::string error;
  ASSERT_TRUE(SaveGraphStore(store, path, &error)) << error;

  GraphStore loaded;
  ASSERT_TRUE(LoadGraphStore(&loaded, path, &error)) << error;

  ASSERT_EQ(loaded.Size(), store.Size());
  EXPECT_EQ(loaded.NextId(), store.NextId());
  EXPECT_FALSE(loaded.Contains(4));
  EXPECT_FALSE(loaded.Contains(17));
  auto snap = store.Snapshot();
  auto loaded_snap = loaded.Snapshot();
  for (int slot = 0; slot < snap->Size(); ++slot) {
    EXPECT_EQ(loaded_snap->id(slot), snap->id(slot));
    EXPECT_TRUE(loaded_snap->graph(slot) == snap->graph(slot));
    EXPECT_TRUE(loaded_snap->invariants(slot) == snap->invariants(slot));
  }

  Rng rng(137);
  QueryEngine rebuilt(&store, {}), reloaded(&loaded, {});
  for (int trial = 0; trial < 3; ++trial) {
    Graph query = RandomConnectedGraph(6, 2, 3, &rng);
    ExpectSameRange(rebuilt.Range(query, 3), reloaded.Range(query, 3),
                    "roundtrip range " + std::to_string(trial));
    ExpectSameTopK(rebuilt.TopK(query, 5), reloaded.TopK(query, 5),
                   "roundtrip topk " + std::to_string(trial));
  }

  // Inserting after the reload keeps ids fresh: never below the counter.
  Graph extra = RandomConnectedGraph(4, 1, 3, &rng);
  EXPECT_EQ(loaded.Insert(extra), store.NextId());
  std::remove(path.c_str());
}

TEST(SearchMetamorphicTest, LoadRejectsCorruptFiles) {
  GraphStore store = MakeStore(5, 2, 139);
  const std::string path = ::testing::TempDir() + "/store_corrupt.otgstore";
  std::string error;
  ASSERT_TRUE(SaveGraphStore(store, path, &error)) << error;

  // Flip one payload byte; the checksum must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 40, SEEK_SET);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }
  GraphStore loaded;
  EXPECT_FALSE(LoadGraphStore(&loaded, path, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  EXPECT_EQ(loaded.Size(), 0);  // failed load leaves the store untouched

  // Truncation is rejected too (either as a short file or a bad sum).
  ASSERT_TRUE(SaveGraphStore(store, path, &error)) << error;
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(LoadGraphStore(&loaded, path, &error));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace otged
