#include "nn/modules.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "models/embedding_trunk.hpp"
#include "ot/sinkhorn.hpp"

namespace otged {
namespace {

TEST(LinearTest, ShapeAndBias) {
  Rng rng(1);
  Linear lin(4, 3, &rng);
  Tensor x(Matrix::Zeros(2, 4));
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
  // With zero input, output equals the bias broadcast per row.
  lin.bias.mutable_value()(0, 1) = 7.0;
  y = lin.Forward(x);
  EXPECT_DOUBLE_EQ(y.value()(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(y.value()(1, 1), 7.0);
}

TEST(MlpTest, DepthAndParams) {
  Rng rng(2);
  Mlp mlp({8, 16, 4}, &rng);
  std::vector<Tensor> params;
  mlp.CollectParams(&params);
  EXPECT_EQ(params.size(), 4u);  // 2 layers x (W, b)
  Tensor y = mlp.Forward(Tensor(Matrix::Ones(3, 8)));
  EXPECT_EQ(y.cols(), 4);
}

TEST(GinLayerTest, AggregatesNeighbors) {
  Rng rng(3);
  GinLayer gin(1, 4, &rng);
  // Path graph 0-1-2: node 1 sees two neighbors.
  Graph g(3, 0);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Tensor x(g.OneHotLabels(1));
  Tensor h = gin.Forward(x, Tensor(g.AdjacencyMatrix()));
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 4);
  // Permutation equivariance: swapping 0 and 2 leaves node 1's embedding
  // unchanged (same multiset of neighbors).
  EXPECT_TRUE(h.value().AllFinite());
}

TEST(GinLayerTest, PermutationEquivariance) {
  Rng rng(4);
  GinLayer gin(1, 4, &rng);
  Graph g = RandomConnectedGraph(5, 2, 1, &rng);
  std::vector<int> perm = {4, 2, 0, 1, 3};
  Graph p = PermuteGraph(g, perm);
  Matrix hg =
      gin.Forward(Tensor(g.OneHotLabels(1)), Tensor(g.AdjacencyMatrix()))
          .value();
  Matrix hp =
      gin.Forward(Tensor(p.OneHotLabels(1)), Tensor(p.AdjacencyMatrix()))
          .value();
  for (int u = 0; u < 5; ++u)
    for (int d = 0; d < 4; ++d)
      EXPECT_NEAR(hg(u, d), hp(perm[u], d), 1e-12);
}

TEST(AttentionPoolingTest, OutputIsRowVector) {
  Rng rng(5);
  AttentionPooling pool(6, &rng);
  Tensor h(GlorotInit(4, 6, &rng));
  Tensor hg = pool.Forward(h);
  EXPECT_EQ(hg.rows(), 1);
  EXPECT_EQ(hg.cols(), 6);
}

TEST(AttentionPoolingTest, PermutationInvariance) {
  Rng rng(6);
  AttentionPooling pool(5, &rng);
  Matrix hm = GlorotInit(4, 5, &rng);
  Matrix hswap = hm;
  for (int j = 0; j < 5; ++j) std::swap(hswap(0, j), hswap(3, j));
  Matrix a = pool.Forward(Tensor(hm)).value();
  Matrix b = pool.Forward(Tensor(hswap)).value();
  EXPECT_LT(a.MaxAbsDiff(b), 1e-12);
}

TEST(NtnTest, OutputShapeAndNonnegativity) {
  Rng rng(7);
  Ntn ntn(6, 8, &rng);
  Tensor a(GlorotInit(1, 6, &rng)), b(GlorotInit(1, 6, &rng));
  Tensor s = ntn.Forward(a, b);
  EXPECT_EQ(s.rows(), 1);
  EXPECT_EQ(s.cols(), 8);
  EXPECT_GE(s.value().Min(), 0.0);  // ReLU output
}

TEST(CostMatrixLayerTest, RangeAndAblation) {
  Rng rng(8);
  CostMatrixLayer layer(4, &rng);
  Tensor h1(GlorotInit(3, 4, &rng)), h2(GlorotInit(5, 4, &rng));
  Tensor c = layer.Forward(h1, h2);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 5);
  EXPECT_LE(c.value().Max(), 1.0);   // tanh range
  EXPECT_GE(c.value().Min(), -1.0);
  Tensor inner = layer.Forward(h1, h2, /*inner_product_only=*/true);
  EXPECT_LT(inner.value().MaxAbsDiff(
                h1.value().MatMul(h2.value().Transpose())),
            1e-12);
}

TEST(SinkhornLayerTest, MatchesReferenceSolver) {
  Rng rng(9);
  Matrix cm(3, 5);
  for (int i = 0; i < cm.size(); ++i) cm[i] = rng.Uniform(-1, 1);
  SinkhornLayer layer(0.1, 40);
  Matrix learned = layer.Forward(Tensor(cm)).value();
  SinkhornOptions opt;
  opt.epsilon = 0.1;
  opt.max_iters = 40;
  Matrix reference = SolveGedOt(cm, opt).coupling;
  EXPECT_LT(learned.MaxAbsDiff(reference), 1e-6);
}

TEST(SinkhornLayerTest, RowMarginalsApproachOne) {
  Rng rng(10);
  Matrix cm(4, 6);
  for (int i = 0; i < cm.size(); ++i) cm[i] = rng.Uniform(-1, 1);
  SinkhornLayer layer(0.05, 30);
  Matrix pi = layer.Forward(Tensor(cm)).value();
  Matrix rs = pi.RowSums();
  for (int i = 0; i < rs.rows(); ++i) EXPECT_NEAR(rs(i, 0), 1.0, 1e-3);
}

TEST(SinkhornLayerTest, FrozenEpsilonHasNoParams) {
  SinkhornLayer frozen(0.05, 5, /*learnable=*/false);
  std::vector<Tensor> params;
  frozen.CollectParams(&params);
  EXPECT_TRUE(params.empty());
  SinkhornLayer learnable(0.05, 5, /*learnable=*/true);
  learnable.CollectParams(&params);
  EXPECT_EQ(params.size(), 1u);
  EXPECT_NEAR(learnable.CurrentEpsilon(), 0.05, 1e-12);
}

TEST(EmbeddingTrunkTest, OutputDims) {
  Rng rng(11);
  TrunkConfig cfg;
  cfg.num_labels = 3;
  cfg.conv_dims = {8, 8};
  cfg.out_dim = 4;
  EmbeddingTrunk trunk(cfg, &rng);
  Graph g = RandomConnectedGraph(5, 2, 3, &rng);
  Tensor h = trunk.Embed(g);
  EXPECT_EQ(h.rows(), 5);
  EXPECT_EQ(h.cols(), 4);
  EXPECT_EQ(trunk.OutDim(), 4);
}

TEST(EmbeddingTrunkTest, NoMlpAblationUsesLastConvDim) {
  Rng rng(12);
  TrunkConfig cfg;
  cfg.num_labels = 1;
  cfg.conv_dims = {8, 6};
  cfg.use_final_mlp = false;
  EmbeddingTrunk trunk(cfg, &rng);
  Graph g = RandomConnectedGraph(4, 1, 1, &rng);
  EXPECT_EQ(trunk.Embed(g).cols(), 6);
  EXPECT_EQ(trunk.OutDim(), 6);
}

TEST(EmbeddingTrunkTest, GcnVariantRuns) {
  Rng rng(13);
  TrunkConfig cfg;
  cfg.num_labels = 2;
  cfg.use_gcn = true;
  EmbeddingTrunk trunk(cfg, &rng);
  Graph g = RandomConnectedGraph(6, 3, 2, &rng);
  Tensor h = trunk.Embed(g);
  EXPECT_TRUE(h.value().AllFinite());
}

TEST(NormalizedAdjacencyTest, RowSumsBounded) {
  Rng rng(14);
  Graph g = RandomConnectedGraph(5, 3, 1, &rng);
  Matrix a = NormalizedAdjacency(g);
  EXPECT_TRUE(a.AllFinite());
  // Symmetric normalization keeps the spectral radius at 1.
  EXPECT_LE(a.Max(), 1.0 + 1e-12);
}

}  // namespace
}  // namespace otged

namespace otged {
namespace {

TEST(NodeInputFeaturesTest, DegreeBucketsBreakSymmetry) {
  Graph g(3, 0);        // unlabeled path: degrees 1, 2, 1
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TrunkConfig cfg;
  cfg.num_labels = 1;
  cfg.degree_features = true;
  Matrix x = NodeInputFeatures(g, cfg);
  EXPECT_EQ(x.cols(), 1 + kDegreeBuckets);
  // Node 1 (degree 2) gets a different bucket than nodes 0/2 (degree 1).
  bool differs = false;
  for (int j = 0; j < x.cols(); ++j)
    if (x(0, j) != x(1, j)) differs = true;
  EXPECT_TRUE(differs);
  // Without degree features the rows are identical.
  cfg.degree_features = false;
  Matrix plain = NodeInputFeatures(g, cfg);
  EXPECT_EQ(plain.cols(), 1);
  EXPECT_DOUBLE_EQ(plain(0, 0), plain(1, 0));
}

TEST(NodeInputFeaturesTest, BucketIsLogarithmic) {
  Graph g(20, 0);
  for (int v = 1; v < 20; ++v) g.AddEdge(0, v);  // star: center degree 19
  TrunkConfig cfg;
  cfg.num_labels = 1;
  Matrix x = NodeInputFeatures(g, cfg);
  // deg 19 -> bucket floor(log2(19)) + 1 = 5; leaf deg 1 -> bucket 1.
  EXPECT_DOUBLE_EQ(x(0, 1 + 5), 1.0);
  EXPECT_DOUBLE_EQ(x(1, 1 + 1), 1.0);
}

}  // namespace
}  // namespace otged
