#include "ot/sinkhorn.hpp"

#include <gtest/gtest.h>

#include "assignment/hungarian.hpp"
#include "core/random.hpp"

namespace otged {
namespace {

TEST(SinkhornTest, MarginalsAreRespected) {
  Rng rng(1);
  Matrix cost(4, 4);
  for (int i = 0; i < cost.size(); ++i) cost[i] = rng.Uniform(0, 2);
  Matrix mu = Matrix::ColVec(4, 1.0);
  Matrix nu = Matrix::ColVec(4, 1.0);
  SinkhornOptions opt;
  opt.epsilon = 0.5;  // moderate regularization converges geometrically
  opt.max_iters = 2000;
  SinkhornResult res = Sinkhorn(cost, mu, nu, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.coupling.RowSums().MaxAbsDiff(mu), 1e-6);
  EXPECT_LT(res.coupling.ColSums().Transpose().MaxAbsDiff(nu), 1e-6);
}

TEST(SinkhornTest, SmallEpsilonApproachesExactAssignment) {
  // With tiny regularization the entropic OT cost approaches the LAP
  // optimum (log-domain for stability).
  Rng rng(2);
  Matrix cost(5, 5);
  for (int i = 0; i < cost.size(); ++i) cost[i] = rng.Uniform(0, 1);
  double lap = SolveAssignment(cost).cost;
  SinkhornOptions opt;
  opt.epsilon = 0.002;
  opt.max_iters = 4000;
  opt.log_domain = true;
  SinkhornResult res =
      Sinkhorn(cost, Matrix::ColVec(5, 1.0), Matrix::ColVec(5, 1.0), opt);
  EXPECT_NEAR(res.cost, lap, 0.05);
}

TEST(SinkhornTest, LogDomainMatchesPlainForModerateEps) {
  Rng rng(3);
  Matrix cost(6, 4);
  for (int i = 0; i < cost.size(); ++i) cost[i] = rng.Uniform(0, 3);
  Matrix mu = Matrix::ColVec(6, 2.0 / 3.0);
  Matrix nu = Matrix::ColVec(4, 1.0);
  SinkhornOptions a;
  a.epsilon = 0.2;
  a.max_iters = 2000;
  SinkhornOptions b = a;
  b.log_domain = true;
  Matrix pa = Sinkhorn(cost, mu, nu, a).coupling;
  Matrix pb = Sinkhorn(cost, mu, nu, b).coupling;
  EXPECT_LT(pa.MaxAbsDiff(pb), 1e-5);
}

TEST(SinkhornTest, LargerEpsilonMeansMoreEntropy) {
  Matrix cost = {{0.0, 1.0}, {1.0, 0.0}};
  Matrix mu = Matrix::ColVec(2, 1.0), nu = Matrix::ColVec(2, 1.0);
  SinkhornOptions sharp, smooth;
  sharp.epsilon = 0.05;
  smooth.epsilon = 5.0;
  sharp.max_iters = smooth.max_iters = 1000;
  Matrix ps = Sinkhorn(cost, mu, nu, sharp).coupling;
  Matrix pm = Sinkhorn(cost, mu, nu, smooth).coupling;
  // Sharp coupling concentrates on the diagonal; smooth spreads to ~0.5.
  EXPECT_GT(ps(0, 0), 0.95);
  EXPECT_NEAR(pm(0, 0), 0.5, 0.1);
}

TEST(SolveGedOtTest, DummyRowAbsorbsExtraMass) {
  // 2 x 4: two real nodes, dummy absorbs mass 2.
  Matrix cost(2, 4, 1.0);
  cost(0, 0) = 0.0;
  cost(1, 1) = 0.0;
  SinkhornOptions opt;
  opt.max_iters = 500;
  SinkhornResult res = SolveGedOt(cost, opt);
  EXPECT_EQ(res.coupling.rows(), 2);
  EXPECT_EQ(res.coupling.cols(), 4);
  // Every real row still transports total mass 1.
  Matrix rs = res.coupling.RowSums();
  EXPECT_NEAR(rs(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(rs(1, 0), 1.0, 1e-6);
  // And the cheap cells dominate their rows.
  EXPECT_GT(res.coupling(0, 0), res.coupling(0, 1));
  EXPECT_GT(res.coupling(1, 1), res.coupling(1, 0));
}

TEST(SolveGedOtTest, EqualSizesDegenerateDummy) {
  Matrix cost = {{0.0, 1.0}, {1.0, 0.0}};
  SinkhornOptions opt;
  opt.max_iters = 500;
  SinkhornResult res = SolveGedOt(cost, opt);
  EXPECT_EQ(res.coupling.rows(), 2);
  // Dummy mass is zero; real rows still sum to ~1.
  EXPECT_NEAR(res.coupling.RowSums()(0, 0), 1.0, 1e-5);
  EXPECT_GT(res.coupling(0, 0), 0.9);
}

class SinkhornEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(SinkhornEpsSweep, CouplingStaysFiniteAndFeasible) {
  Rng rng(4);
  Matrix cost(5, 7);
  for (int i = 0; i < cost.size(); ++i) cost[i] = rng.Uniform(-1, 1);
  SinkhornOptions opt;
  opt.epsilon = GetParam();
  opt.max_iters = 300;
  opt.log_domain = GetParam() < 0.01;
  SinkhornResult res = SolveGedOt(cost, opt);
  EXPECT_TRUE(res.coupling.AllFinite());
  EXPECT_GE(res.coupling.Min(), -1e-12);
}

INSTANTIATE_TEST_SUITE_P(EpsRange, SinkhornEpsSweep,
                         ::testing::Values(0.005, 0.01, 0.05, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace otged
