/// \file search_property_test.cpp
/// \brief Property-based admissibility harness for the search layer.
///
/// The filter cascade's exactness guarantee rests on two families of
/// proofs: every lower bound is admissible (never exceeds the true GED)
/// and every upper bound is witnessed by a feasible edit path (never
/// undercuts it). Instead of hand-picked examples, this harness samples
/// ~200 random graph pairs across generator families — ER-style random
/// connected graphs and power-law graphs, labeled and unlabeled, plus
/// cross-family pairs — and checks the full sandwich
///     every LB  <=  exact GED  <=  every UB
/// on each, then checks that range and top-k serving match brute force
/// on a mixed corpus. Everything is seeded, so failures replay exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "assignment/kbest.hpp"
#include "exact/branch_and_bound.hpp"
#include "graph/generator.hpp"
#include "heuristics/bipartite.hpp"
#include "heuristics/lower_bounds.hpp"
#include "models/gedgw.hpp"
#include "search/query_engine.hpp"

namespace otged {
namespace {

/// Exact GED ground truth; fixture graphs are small enough that the
/// default branch-and-bound budget is never exhausted.
int ExactGed(const Graph& a, const Graph& b) {
  auto [g1, g2] = OrderBySize(a, b);
  BnbOptions opt;
  opt.initial_upper_bound = ClassicGed(*g1, *g2).ged;
  GedSearchResult res = BranchAndBoundGed(*g1, *g2, opt);
  EXPECT_TRUE(res.exact);
  return res.ged;
}

/// One graph drawn from a family indexed by `family` in [0, 4): labeled
/// ER, unlabeled ER, sparse power-law, denser power-law.
Graph SampleGraph(int family, Rng* rng) {
  switch (family) {
    case 0:
      return RandomConnectedGraph(rng->UniformInt(3, 7),
                                  rng->UniformInt(0, 3), 5, rng);
    case 1:
      return RandomConnectedGraph(rng->UniformInt(3, 7),
                                  rng->UniformInt(0, 3), 1, rng);
    case 2:
      return PowerLawGraph(rng->UniformInt(4, 8), 1, rng);
    default:
      return PowerLawGraph(rng->UniformInt(4, 7), 2, rng);
  }
}

/// 200 random pairs, cycling through same-family and cross-family
/// combinations: every lower bound of the cascade is admissible and
/// every upper bound is feasible.
TEST(SearchPropertyTest, BoundsSandwichExactGedOnRandomPairs) {
  Rng rng(20250729);
  for (int trial = 0; trial < 200; ++trial) {
    Graph a = SampleGraph(trial % 4, &rng);
    Graph b = SampleGraph((trial + trial / 4) % 4, &rng);
    const int exact = ExactGed(a, b);
    auto [g1, g2] = OrderBySize(a, b);

    // Tier-0 lower bound from invariants alone.
    const int inv_lb =
        InvariantLowerBound(ComputeInvariants(a), ComputeInvariants(b));
    EXPECT_LE(inv_lb, exact) << "invariant LB inadmissible at trial "
                             << trial;

    // Tier-1 BRANCH bipartite lower bound (ceil'ed as the cascade does).
    const int branch_lb =
        static_cast<int>(std::ceil(BranchLowerBound(*g1, *g2) - 1e-9));
    EXPECT_LE(branch_lb, exact) << "BRANCH LB inadmissible at trial "
                                << trial;

    // Tier-2 Classic heuristic upper bound.
    const int classic_ub = ClassicGed(*g1, *g2).ged;
    EXPECT_GE(classic_ub, exact) << "Classic UB infeasible at trial "
                                 << trial;

    // Tier-3 OT upper bound (GEDGW coupling -> k-best edit path); the
    // OT solve dominates the harness runtime, so sample every 4th pair.
    if (trial % 4 == 0) {
      GedgwConfig gw_cfg;
      gw_cfg.cg_iters = 20;
      GedgwSolver gw(gw_cfg);
      Prediction pred = gw.Predict(*g1, *g2);
      GepResult gep = KBestGepSearch(*g1, *g2, pred.coupling, 8);
      EXPECT_GE(gep.ged, exact) << "OT UB infeasible at trial " << trial;
    }
  }
}

/// Range and top-k results over a mixed-family corpus equal brute force:
/// same ids, and exact distances wherever the engine claims exactness.
TEST(SearchPropertyTest, ServingMatchesBruteForceOnMixedCorpus) {
  Rng rng(424243);
  GraphStore store;
  for (int i = 0; i < 48; ++i) store.Insert(SampleGraph(i % 4, &rng));
  EngineOptions opt;
  opt.num_threads = 2;
  QueryEngine engine(&store, opt);

  for (int q = 0; q < 5; ++q) {
    Graph query = SampleGraph(q % 4, &rng);
    std::vector<int> exact(store.Size());
    for (int id = 0; id < store.Size(); ++id)
      exact[id] = ExactGed(query, store.graph(id));

    for (int tau : {0, 1, 2, 3, 5}) {
      RangeResult res = engine.Range(query, tau);
      std::vector<int> expected;
      for (int id = 0; id < store.Size(); ++id)
        if (exact[id] <= tau) expected.push_back(id);
      std::vector<int> got;
      for (const RangeHit& h : res.hits) got.push_back(h.id);
      EXPECT_EQ(got, expected) << "q=" << q << " tau=" << tau;
      for (const RangeHit& h : res.hits) {
        EXPECT_GE(h.ged, exact[h.id]);
        EXPECT_LE(h.ged, tau);
        if (h.exact_distance) {
          EXPECT_EQ(h.ged, exact[h.id]);
        }
      }
    }

    for (int k : {1, 4, 9}) {
      TopKResult res = engine.TopK(query, k);
      std::vector<TopKHit> expected;
      for (int id = 0; id < store.Size(); ++id)
        expected.push_back({id, exact[id]});
      std::sort(expected.begin(), expected.end(),
                [](const TopKHit& a, const TopKHit& b) {
                  return a.ged != b.ged ? a.ged < b.ged : a.id < b.id;
                });
      expected.resize(k);
      ASSERT_EQ(res.hits.size(), expected.size()) << "q=" << q << " k=" << k;
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(res.hits[i].id, expected[i].id) << "q=" << q << " k=" << k;
        EXPECT_EQ(res.hits[i].ged, expected[i].ged)
            << "q=" << q << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace otged
