/// \file bench_fig12_growing_ged.cpp
/// \brief Reproduces Figure 12: generalizability on large IMDB graphs as
/// the synthetic GED grows (Δ = ceil(r * n), r in 10%..50%). Expected
/// shape: non-learning methods (Classic, GEDGW) are stable in relative
/// terms; "-small"-trained neural models degrade as Δ leaves the training
/// distribution, with GEDIOT-small ahead of GEDGNN-small.
#include <cmath>

#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

int main() {
  Workload w = MakeWorkload(DatasetKind::kImdb, 150, 800, 5, 25);
  std::vector<GedPair> small_train;
  for (const GedPair& p : w.pairs.train)
    if (p.g2.NumNodes() <= 10) small_train.push_back(p);

  TrainOptions topt = BenchTrain();
  GedgnnConfig gnn_cfg;
  gnn_cfg.trunk = BenchTrunk(1);
  GedgnnModel gedgnn(gnn_cfg);
  TrainOrLoad(&gedgnn, "IMDB-fig8-small", small_train, topt);
  GediotConfig iot_cfg;
  iot_cfg.trunk = BenchTrunk(1);
  GediotModel gediot(iot_cfg);
  TrainOrLoad(&gediot, "IMDB-fig8-small", small_train, topt);
  GedgwSolver gedgw;
  GedhotModel gedhot(&gediot, &gedgw);

  std::printf("== Figure 12 (IMDB-like): MAE / accuracy vs edit ratio r ==\n");
  std::printf("%-6s %-14s %10s %10s\n", "r", "method", "MAE", "Acc");
  for (double r : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    Rng rng(1000 + static_cast<uint64_t>(r * 100));
    std::vector<QueryGroup> groups;
    for (int q = 0; q < 4; ++q) {
      Graph g = ImdbLikeGraph(&rng, 12, 30);
      int delta = std::max(1, static_cast<int>(std::ceil(r * g.NumNodes())));
      QueryGroup group;
      for (int i = 0; i < 20; ++i) {
        SyntheticEditOptions sopt;
        sopt.num_edits = delta;
        sopt.num_labels = 1;
        sopt.allow_relabel = false;
        group.pairs.push_back(SyntheticEditPair(g, sopt, &rng));
      }
      groups.push_back(std::move(group));
    }
    struct Entry {
      const char* name;
      GedFn fn;
    };
    std::vector<Entry> methods;
    methods.push_back({"GEDGNN-small", GedFnFromModel(&gedgnn)});
    methods.push_back({"GEDIOT-small", GedFnFromModel(&gediot)});
    methods.push_back({"GEDHOT-small", GedhotFn(&gedhot)});
    methods.push_back({"GEDGW", GedFnFromModel(&gedgw)});
    methods.push_back({"Classic", ClassicFn()});
    for (auto& m : methods) {
      GedRow row = EvaluateGed(m.name, m.fn, groups);
      std::printf("%-6.1f %-14s %10.3f %9.1f%%\n", r, m.name, row.mae,
                  100 * row.accuracy);
    }
  }
  return 0;
}
