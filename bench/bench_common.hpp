/// \file bench_common.hpp
/// \brief Shared machinery for the experiment benches: bench-scale dataset
/// construction, model training with on-disk caching (so table benches
/// sharing the same configuration do not retrain), and the method roster.
///
/// Scale note: the paper trains for hours on a GPU; these benches train
/// scaled-down models for seconds on a CPU (DESIGN.md §3, substitution 5).
/// The *orderings* between methods are the reproduction target, not the
/// absolute values.
#ifndef OTGED_BENCH_BENCH_COMMON_HPP_
#define OTGED_BENCH_BENCH_COMMON_HPP_

#include <cstdio>
#include <memory>
#include <string>

#include "eval/experiment.hpp"
#include "exact/astar.hpp"
#include "heuristics/bipartite.hpp"
#include "models/gedgnn.hpp"
#include "models/gediot.hpp"
#include "models/gedgw.hpp"
#include "models/gedhot.hpp"
#include "models/gpn.hpp"
#include "models/simgnn.hpp"
#include "models/tagsim.hpp"
#include "models/trainer.hpp"
#include "nn/serialize.hpp"

namespace otged::bench {

/// Bench-scale workload for one of the paper's datasets.
struct Workload {
  Dataset dataset;
  PairSet pairs;
};

inline Workload MakeWorkload(DatasetKind kind, int graphs = 120,
                             int train_pairs = 1200, int queries = 6,
                             int pairs_per_query = 30, uint64_t seed = 7) {
  Workload w;
  if (kind == DatasetKind::kImdb) {
    // IMDB: large graphs -> the paper's synthetic-edit ground truth.
    // Ego-net size is capped so k-best path search stays CPU-friendly;
    // the heavy-tailed profile is preserved.
    Rng rng(seed);
    w.dataset.name = "IMDB-like";
    w.dataset.num_labels = 1;
    for (int i = 0; i < graphs; ++i)
      w.dataset.graphs.push_back(ImdbLikeGraph(&rng, 7, 36));
    PairSetOptions opt;
    opt.num_train_pairs = train_pairs;
    opt.num_test_queries = queries;
    opt.pairs_per_query = pairs_per_query;
    opt.exactify_small = false;
    opt.seed = seed + 1;
    w.pairs = MakePairSet(w.dataset, opt);
  } else {
    // AIDS / LINUX: small graphs -> arbitrary pairs with exact
    // branch-and-bound ground truth (the paper's A* protocol).
    w.dataset = MakeDataset(kind, graphs, seed);
    ArbitraryPairOptions opt;
    opt.num_train_pairs = train_pairs;
    opt.num_test_queries = queries;
    opt.pairs_per_query = pairs_per_query;
    opt.seed = seed + 1;
    w.pairs = MakeArbitraryPairSet(w.dataset, opt);
  }
  return w;
}

inline TrunkConfig BenchTrunk(int num_labels) {
  TrunkConfig cfg;
  cfg.num_labels = num_labels;
  cfg.conv_dims = {24, 24, 24};
  cfg.out_dim = 16;
  return cfg;
}

inline TrainOptions BenchTrain(int epochs = 20) {
  TrainOptions opt;
  opt.epochs = epochs;
  opt.batch_size = 32;
  opt.lr = 3e-3;
  return opt;
}

/// Trains (or loads from the on-disk cache) a model. The cache key folds
/// in the model name, dataset name and training-set size; benches within
/// one build tree share trained weights.
template <typename ModelT>
void TrainOrLoad(ModelT* model, const std::string& dataset_name,
                 const std::vector<GedPair>& train,
                 const TrainOptions& topt) {
  std::string path = "otged_cache_" + model->Name() + "_" + dataset_name +
                     "_" + std::to_string(train.size()) + "_" +
                     std::to_string(topt.epochs) + ".bin";
  auto params = model->Params();
  if (LoadParameters(&params, path)) {
    std::fprintf(stderr, "[bench] loaded cached %s for %s\n",
                 model->Name().c_str(), dataset_name.c_str());
    return;
  }
  std::fprintf(stderr, "[bench] training %s on %s (%zu pairs)...\n",
               model->Name().c_str(), dataset_name.c_str(), train.size());
  TrainModel(model, train, topt);
  SaveParameters(model->Params(), path);
}

/// The Noah stand-in: GPN-guided A*-beam (DESIGN.md §3, substitution 3).
inline GedFn NoahFn(GpnModel* gpn, int beam_width = 16) {
  return [gpn, beam_width](const GedPair& p) {
    Matrix guide = gpn->NodeSimilarity(p.g1, p.g2);
    return static_cast<double>(
        BeamGed(p.g1, p.g2, beam_width, &guide).ged);
  };
}

inline GepFn NoahGepFn(GpnModel* gpn, int beam_width = 16) {
  return [gpn, beam_width](const GedPair& p) {
    Matrix guide = gpn->NodeSimilarity(p.g1, p.g2);
    GedSearchResult r = BeamGed(p.g1, p.g2, beam_width, &guide);
    GepResult out;
    out.ged = r.ged;
    out.matching = r.matching;
    out.path = EditPathFromMatching(p.g1, p.g2, r.matching);
    return out;
  };
}

inline GedFn ClassicFn() {
  return [](const GedPair& p) {
    return static_cast<double>(ClassicGed(p.g1, p.g2).ged);
  };
}

inline GepFn ClassicGepFn() {
  return [](const GedPair& p) {
    HeuristicResult r = ClassicGed(p.g1, p.g2);
    GepResult out;
    out.ged = r.ged;
    out.matching = r.matching;
    out.path = r.path;
    return out;
  };
}

/// GEDHOT as value function (min of both members).
inline GedFn GedhotFn(GedhotModel* hot) {
  return [hot](const GedPair& p) { return hot->Predict(p.g1, p.g2).ged; };
}

inline GepFn GedhotGepFn(GedhotModel* hot, int k) {
  return [hot, k](const GedPair& p) {
    return hot->GeneratePath(p.g1, p.g2, k);
  };
}

}  // namespace otged::bench

#endif  // OTGED_BENCH_BENCH_COMMON_HPP_
