/// \file bench_micro_kernels.cpp
/// \brief Microbenchmarks of the numeric kernels that dominate the
/// paper's complexity analysis (Section 5.3): the Sinkhorn sweep
/// (O(M n^2)), the Hungarian LAP (O(n^3)), the Jonker-Volgenant LAP,
/// the GW tensor product (O(n^3)), conditional gradient, the exact
/// searchers — and the branch-and-bound state machinery: the legacy
/// copy-and-recompute SearchState walk vs the structure-of-arrays
/// Push/Pop walk with the O(1) incremental heuristic, plus sequential
/// vs parallel branch-and-bound wall time with an equality gate across
/// pool sizes {1, 2, 8}.
///
/// A plain executable (no google-benchmark dependency): each kernel is
/// timed until a minimum wall budget and reported as ns/op, and the run
/// is persisted as `BENCH_kernels.json` (schema in
/// tools/validate_bench_json.py) so the kernel-level perf trajectory
/// accumulates in git history next to BENCH_search.json.
///
/// Flags: --smoke  shrink sizes/iterations for CI smoke runs
///        --out P  write the record to P (default BENCH_kernels.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "assignment/hungarian.hpp"
#include "assignment/lapjv.hpp"
#include "core/random.hpp"
#include "exact/astar.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/parallel_bnb.hpp"
#include "exact/search_common.hpp"
#include "graph/generator.hpp"
#include "models/gedgw.hpp"
#include "ot/gromov.hpp"
#include "ot/sinkhorn.hpp"
#include "telemetry/bench_report.hpp"

using namespace otged;

namespace {

/// Keeps a computed value alive without printing it (DCE barrier).
template <class T>
inline void Keep(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

struct KernelTiming {
  std::string name;
  double ns_per_op = 0.0;
  long ops = 0;
};

/// Runs `body` repeatedly until `min_ms` of wall time (or an iteration
/// cap) and reports the mean ns per call. One untimed warmup call keeps
/// first-touch page faults and lazy allocations out of the figure.
template <class F>
KernelTiming TimeKernel(const std::string& name, F&& body, double min_ms) {
  body();
  const auto start = std::chrono::steady_clock::now();
  long iters = 0;
  double total_ns = 0.0;
  do {
    body();
    ++iters;
    total_ns = std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  } while (total_ns < min_ms * 1e6 && iters < 1'000'000);
  KernelTiming t;
  t.name = name;
  t.ns_per_op = total_ns / static_cast<double>(iters);
  t.ops = iters;
  return t;
}

Matrix RandomCost(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m[i] = rng.Uniform(0, 1);
  return m;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc)
      out_path = argv[++a];
  }
  const double min_ms = smoke ? 5.0 : 50.0;
  std::vector<KernelTiming> timings;
  const auto report = [&](const KernelTiming& t) {
    timings.push_back(t);
    std::printf("  %-28s %12.1f ns/op  (%ld ops)\n", t.name.c_str(),
                t.ns_per_op, t.ops);
  };

  std::printf("== numeric kernels ==\n");
  const std::vector<int> sizes = smoke ? std::vector<int>{10}
                                       : std::vector<int>{10, 50, 200};
  for (int n : sizes) {
    Matrix cost = RandomCost(n, n, 1);
    Matrix mu = Matrix::ColVec(n, 1.0), nu = Matrix::ColVec(n, 1.0);
    SinkhornOptions sopt;
    sopt.max_iters = 20;
    report(TimeKernel(
        "sinkhorn_n" + std::to_string(n),
        [&] { Keep(Sinkhorn(cost, mu, nu, sopt).cost); }, min_ms));
    Matrix hcost = RandomCost(n, n, 2);
    report(TimeKernel("hungarian_n" + std::to_string(n),
                      [&] { Keep(SolveAssignment(hcost).cost); }, min_ms));
    Matrix jcost = RandomCost(n, n, 3);
    report(TimeKernel("lapjv_n" + std::to_string(n),
                      [&] { Keep(SolveAssignmentJV(jcost).cost); },
                      min_ms));
    Rng grng(4);
    Graph pg1 = PowerLawGraph(n, 2, &grng), pg2 = PowerLawGraph(n, 2, &grng);
    Matrix a1 = pg1.AdjacencyMatrix(), a2 = pg2.AdjacencyMatrix();
    Matrix pi(n, n, 1.0 / n);
    report(TimeKernel("gw_tensor_n" + std::to_string(n),
                      [&] { Keep(GwTensorProduct(a1, a2, pi).Sum()); },
                      min_ms));
  }
  {
    const int n = smoke ? 10 : 30;
    Rng rng(5);
    Graph g = PowerLawGraph(n, 2, &rng);
    SyntheticEditOptions eopt;
    eopt.num_edits = 5;
    eopt.num_labels = 1;
    eopt.allow_relabel = false;
    GedPair pair = SyntheticEditPair(g, eopt, &rng);
    GedgwSolver solver;
    report(TimeKernel("gedgw_solve_n" + std::to_string(n),
                      [&] { Keep(solver.Predict(pair.g1, pair.g2).ged); },
                      min_ms));
  }

  std::printf("== exact searchers ==\n");
  {
    Rng rng(6);
    Graph g = AidsLikeGraph(&rng, 6, 8);
    SyntheticEditOptions eopt;
    eopt.num_edits = 3;
    eopt.num_labels = 29;
    GedPair pair = SyntheticEditPair(g, eopt, &rng);
    report(TimeKernel("astar_exact_small",
                      [&] { Keep(AstarGed(pair.g1, pair.g2)->ged); },
                      min_ms));
  }
  {
    Rng rng(7);
    Graph g = ImdbLikeGraph(&rng, 12, 16);
    SyntheticEditOptions eopt;
    eopt.num_edits = 5;
    eopt.num_labels = 1;
    eopt.allow_relabel = false;
    GedPair pair = SyntheticEditPair(g, eopt, &rng);
    report(TimeKernel("beam_search_w16",
                      [&] { Keep(BeamGed(pair.g1, pair.g2, 16).ged); },
                      min_ms));
  }

  // One root-to-leaf walk, legacy vs SoA: Child copies the state and
  // recomputes the O(n + m) heuristic at every depth; Push/Pop maintain
  // everything incrementally with an O(1) heuristic read. The ratio is
  // the per-node saving the branch-and-bound rewrite banks.
  std::printf("== branch-and-bound state machinery ==\n");
  {
    Rng rng(8);
    Graph a = AidsLikeGraph(&rng, 8, 10);
    Graph b = AidsLikeGraph(&rng, 10, 12);
    if (a.NumNodes() > b.NumNodes()) std::swap(a, b);
    internal::Searcher searcher(a, b);
    const int n1 = searcher.ctx().n1;
    // Fixed cheapest-first path, chosen once so both walks are identical.
    std::vector<int> path;
    {
      internal::DfsState d = searcher.MakeDfs();
      for (int depth = 0; depth < n1; ++depth) {
        int best_v = -1, best_delta = 0;
        for (int v = 0; v < searcher.ctx().n2; ++v) {
          if (d.used >> v & 1) continue;
          const int delta = searcher.DeltaFast(d, v);
          if (best_v < 0 || delta < best_delta) {
            best_v = v;
            best_delta = delta;
          }
        }
        path.push_back(best_v);
        searcher.Push(&d, best_v, best_delta);
      }
    }
    report(TimeKernel(
        "state_walk_legacy_child",
        [&] {
          internal::SearchState s = searcher.Root();
          for (int v : path) s = searcher.Child(s, v);
          Keep(s.f());
        },
        min_ms));
    report(TimeKernel(
        "state_walk_soa_push_pop",
        [&] {
          internal::DfsState d = searcher.MakeDfs();
          int f = 0;
          for (int v : path) {
            searcher.Push(&d, v, searcher.DeltaFast(d, v));
            f = d.g + searcher.HeuristicOf(d);
          }
          for (int depth = 0; depth < n1; ++depth) searcher.Pop(&d);
          Keep(f);
        },
        min_ms));
  }

  // Sequential vs parallel branch and bound over a pool of hard pairs,
  // with a determinism gate: the parallel result must be identical for
  // pool sizes 1, 2 and 8, and its distance must match the sequential
  // solver's on every completed pair.
  std::printf("== branch and bound: sequential vs parallel ==\n");
  const int bnb_pairs_n = smoke ? 3 : 6;
  double seq_ms = 0.0, par_ms = 0.0;
  bool equal = true;
  {
    Rng rng(9);
    std::vector<GedPair> pairs;
    for (int i = 0; i < bnb_pairs_n; ++i) {
      Graph base = LinuxLikeGraph(&rng, smoke ? 7 : 8, smoke ? 9 : 10);
      SyntheticEditOptions eopt;
      eopt.num_edits = 2 + i % 3;
      eopt.allow_relabel = false;
      pairs.push_back(SyntheticEditPair(base, eopt, &rng));
    }
    WorkStealingPool pool1(1), pool2(2), pool8(8);
    const auto time_ms = [](auto&& body) {
      const auto start = std::chrono::steady_clock::now();
      body();
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    std::vector<GedSearchResult> seq(pairs.size());
    seq_ms = time_ms([&] {
      for (size_t i = 0; i < pairs.size(); ++i)
        seq[i] = BranchAndBoundGed(pairs[i].g1, pairs[i].g2);
    });
    std::vector<GedSearchResult> par(pairs.size());
    par_ms = time_ms([&] {
      for (size_t i = 0; i < pairs.size(); ++i)
        par[i] = ParallelBranchAndBoundGed(pairs[i].g1, pairs[i].g2,
                                           &pool8);
    });
    for (size_t i = 0; i < pairs.size(); ++i) {
      const GedSearchResult r1 =
          ParallelBranchAndBoundGed(pairs[i].g1, pairs[i].g2, &pool1);
      const GedSearchResult r2 =
          ParallelBranchAndBoundGed(pairs[i].g1, pairs[i].g2, &pool2);
      equal = equal && r1.ged == par[i].ged && r2.ged == par[i].ged &&
              r1.matching == par[i].matching &&
              r2.matching == par[i].matching &&
              r1.exact == par[i].exact && r2.exact == par[i].exact &&
              r1.expansions == par[i].expansions &&
              r2.expansions == par[i].expansions;
      equal = equal && (!par[i].exact || !seq[i].exact ||
                        par[i].ged == seq[i].ged);
    }
    std::printf("  %d pairs: sequential %.2f ms | parallel(8) %.2f ms | "
                "speedup %.2fx\n",
                bnb_pairs_n, seq_ms, par_ms,
                par_ms > 0.0 ? seq_ms / par_ms : 0.0);
    std::printf("  determinism across pools {1, 2, 8} + sequential "
                "agreement: [%s]\n",
                equal ? "PASS" : "FAIL");
  }

  // ---------------------------------------------------------- the record
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_micro_kernels\",\n");
  std::fprintf(f, "  \"git_rev\": \"%s\",\n",
               JsonEscape(telemetry::GitRevision()).c_str());
  std::fprintf(f, "  \"timestamp\": %lld,\n",
               static_cast<long long>(std::time(nullptr)));
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < timings.size(); ++i)
    std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"ops\": %ld}%s\n",
                 JsonEscape(timings[i].name).c_str(), timings[i].ns_per_op,
                 timings[i].ops, i + 1 < timings.size() ? "," : "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"bnb\": {\"pairs\": %d, \"seq_ms\": %.3f, "
               "\"par_ms\": %.3f, \"speedup\": %.3f, \"equal\": %s, "
               "\"pool_threads\": 8}\n",
               bnb_pairs_n, seq_ms, par_ms,
               par_ms > 0.0 ? seq_ms / par_ms : 0.0,
               equal ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("kernel record written to %s\n", out_path.c_str());
  return equal ? 0 : 1;
}
