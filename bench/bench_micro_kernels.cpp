/// \file bench_micro_kernels.cpp
/// \brief Microbenchmarks of the numeric kernels that dominate the
/// paper's complexity analysis (Section 5.3): the Sinkhorn sweep
/// (O(M n^2)), the Hungarian LAP (O(n^3)), the Jonker-Volgenant LAP,
/// the GW tensor product (O(n^3)), conditional gradient, the exact
/// searchers — and the branch-and-bound state machinery: the legacy
/// copy-and-recompute SearchState walk vs the structure-of-arrays
/// Push/Pop walk with the O(1) incremental heuristic, plus sequential
/// vs parallel branch-and-bound wall time with an equality gate across
/// pool sizes {1, 2, 8}.
///
/// The vectorized kernels are benchmarked through their public entry
/// points (which honor OTGED_SIMD) and next to their always-compiled
/// scalar twins (`*_scalar_*` kernels), so one record carries the
/// before/after of the SIMD layer. A correctness gate re-runs every
/// scalar/SIMD twin pair over a size sweep that straddles the lane
/// width: integer kernels (Hungarian, LAPJV, WL colors, degree bound)
/// must match bit for bit, reassociated float kernels (Sinkhorn, GW
/// tensor) to a bounded relative tolerance. The multi-pair batch solver
/// is gated too: ParallelBranchAndBoundGedBatch over the hard-pair pool
/// must reproduce every solo result byte-for-byte on pools {1, 2, 8}.
/// Any gate failure makes the run exit nonzero.
///
/// A plain executable (no google-benchmark dependency): each kernel is
/// timed until a minimum wall budget and reported as ns/op, and the run
/// is persisted as `BENCH_kernels.json` (schema in
/// tools/validate_bench_json.py) so the kernel-level perf trajectory
/// accumulates in git history next to BENCH_search.json.
///
/// Flags: --smoke  shrink sizes/iterations for CI smoke runs
///        --out P  write the record to P (default BENCH_kernels.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "assignment/hungarian.hpp"
#include "assignment/lapjv.hpp"
#include "core/random.hpp"
#include "core/simd.hpp"
#include "exact/astar.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/parallel_bnb.hpp"
#include "exact/search_common.hpp"
#include "graph/generator.hpp"
#include "graph/wl_hash.hpp"
#include "models/gedgw.hpp"
#include "ot/gromov.hpp"
#include "ot/sinkhorn.hpp"
#include "search/graph_store.hpp"
#include "telemetry/bench_report.hpp"

using namespace otged;

namespace {

/// Keeps a computed value alive without printing it (DCE barrier).
template <class T>
inline void Keep(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

struct KernelTiming {
  std::string name;
  double ns_per_op = 0.0;
  long ops = 0;
};

/// Runs `body` repeatedly until `min_ms` of wall time (or an iteration
/// cap) and reports the mean ns per call. One untimed warmup call keeps
/// first-touch page faults and lazy allocations out of the figure.
template <class F>
KernelTiming TimeKernel(const std::string& name, F&& body, double min_ms) {
  body();
  const auto start = std::chrono::steady_clock::now();
  long iters = 0;
  double total_ns = 0.0;
  do {
    body();
    ++iters;
    total_ns = std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  } while (total_ns < min_ms * 1e6 && iters < 1'000'000);
  KernelTiming t;
  t.name = name;
  t.ns_per_op = total_ns / static_cast<double>(iters);
  t.ops = iters;
  return t;
}

Matrix RandomCost(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m[i] = rng.Uniform(0, 1);
  return m;
}

/// Relative difference scaled to the larger magnitude (>= 1 so values
/// near zero are compared absolutely).
double RelDiff(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

/// Entrywise RelDiff bound over two same-shape matrices.
bool MatricesClose(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int i = 0; i < a.size(); ++i)
    if (RelDiff(a[i], b[i]) > tol) return false;
  return true;
}

bool SameAssignment(const AssignmentResult& a, const AssignmentResult& b) {
  return a.cost == b.cost && a.row_to_col == b.row_to_col &&
         a.feasible == b.feasible;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc)
      out_path = argv[++a];
  }
  const double min_ms = smoke ? 5.0 : 50.0;
  std::vector<KernelTiming> timings;
  const auto report = [&](const KernelTiming& t) {
    timings.push_back(t);
    std::printf("  %-28s %12.1f ns/op  (%ld ops)\n", t.name.c_str(),
                t.ns_per_op, t.ops);
  };

  std::printf("== numeric kernels ==\n");
  const std::vector<int> sizes = smoke ? std::vector<int>{10}
                                       : std::vector<int>{10, 50, 200};
  for (int n : sizes) {
    Matrix cost = RandomCost(n, n, 1);
    Matrix mu = Matrix::ColVec(n, 1.0), nu = Matrix::ColVec(n, 1.0);
    SinkhornOptions sopt;
    sopt.max_iters = 20;
    report(TimeKernel(
        "sinkhorn_n" + std::to_string(n),
        [&] { Keep(Sinkhorn(cost, mu, nu, sopt).cost); }, min_ms));
    report(TimeKernel(
        "sinkhorn_scalar_n" + std::to_string(n),
        [&] { Keep(detail::SinkhornPlainScalar(cost, mu, nu, sopt).cost); },
        min_ms));
    Matrix hcost = RandomCost(n, n, 2);
    report(TimeKernel("hungarian_n" + std::to_string(n),
                      [&] { Keep(SolveAssignment(hcost).cost); }, min_ms));
    report(TimeKernel(
        "hungarian_scalar_n" + std::to_string(n),
        [&] { Keep(detail::SolveAssignmentScalar(hcost).cost); }, min_ms));
    Matrix jcost = RandomCost(n, n, 3);
    report(TimeKernel("lapjv_n" + std::to_string(n),
                      [&] { Keep(SolveAssignmentJV(jcost).cost); },
                      min_ms));
    report(TimeKernel(
        "lapjv_scalar_n" + std::to_string(n),
        [&] { Keep(detail::SolveAssignmentJVScalar(jcost).cost); }, min_ms));
    Rng grng(4);
    Graph pg1 = PowerLawGraph(n, 2, &grng), pg2 = PowerLawGraph(n, 2, &grng);
    Matrix a1 = pg1.AdjacencyMatrix(), a2 = pg2.AdjacencyMatrix();
    Matrix pi(n, n, 1.0 / n);
    report(TimeKernel("gw_tensor_n" + std::to_string(n),
                      [&] { Keep(GwTensorProduct(a1, a2, pi).Sum()); },
                      min_ms));
    report(TimeKernel(
        "gw_tensor_scalar_n" + std::to_string(n),
        [&] { Keep(detail::GwTensorProductScalar(a1, a2, pi).Sum()); },
        min_ms));
  }
  {
    const int n = smoke ? 10 : 30;
    Rng rng(5);
    Graph g = PowerLawGraph(n, 2, &rng);
    SyntheticEditOptions eopt;
    eopt.num_edits = 5;
    eopt.num_labels = 1;
    eopt.allow_relabel = false;
    GedPair pair = SyntheticEditPair(g, eopt, &rng);
    GedgwSolver solver;
    report(TimeKernel("gedgw_solve_n" + std::to_string(n),
                      [&] { Keep(solver.Predict(pair.g1, pair.g2).ged); },
                      min_ms));
  }

  // Scalar/SIMD twin gate: the same inputs through both paths of every
  // vectorized kernel, over sizes that straddle the lane width (odd,
  // prime, sub-lane and multi-block). Integer kernels must agree bit for
  // bit; the reassociated float kernels to a bounded relative tolerance.
  std::printf("== scalar vs simd twin gate (lanes=%d, isa=%s) ==\n",
              simd::kDoubleLanes, simd::kIsaName);
  bool twins_ok = true;
  {
    constexpr double kUlpTol = 1e-9;
    bool ok_hung = true, ok_lapjv = true, ok_sink = true, ok_gw = true,
         ok_wl = true, ok_deg = true;
    for (int n : {3, 5, 8, 13, 33}) {
      const uint64_t s = static_cast<uint64_t>(n);
      Matrix c = RandomCost(n, n, 100 + s);
      ok_hung = ok_hung && SameAssignment(detail::SolveAssignmentScalar(c),
                                          detail::SolveAssignmentSimd(c));
      ok_lapjv = ok_lapjv &&
                 SameAssignment(detail::SolveAssignmentJVScalar(c),
                                detail::SolveAssignmentJVSimd(c));
      Matrix mu = Matrix::ColVec(n, 1.0), nu = Matrix::ColVec(n, 1.0);
      SinkhornOptions sopt;
      sopt.max_iters = 20;
      const SinkhornResult ps = detail::SinkhornPlainScalar(c, mu, nu, sopt);
      const SinkhornResult pv = detail::SinkhornPlainSimd(c, mu, nu, sopt);
      ok_sink = ok_sink && RelDiff(ps.cost, pv.cost) <= kUlpTol &&
                MatricesClose(ps.coupling, pv.coupling, kUlpTol);
      sopt.log_domain = true;
      const SinkhornResult ls = detail::SinkhornLogScalar(c, mu, nu, sopt);
      const SinkhornResult lv = detail::SinkhornLogSimd(c, mu, nu, sopt);
      ok_sink = ok_sink && RelDiff(ls.cost, lv.cost) <= kUlpTol &&
                MatricesClose(ls.coupling, lv.coupling, kUlpTol);
      Rng grng(200 + s);
      Graph tg1 = PowerLawGraph(n, 2, &grng);
      Graph tg2 = PowerLawGraph(n, 2, &grng);
      Matrix a1 = tg1.AdjacencyMatrix(), a2 = tg2.AdjacencyMatrix();
      Matrix pi(n, n, 1.0 / n);
      ok_gw = ok_gw && MatricesClose(detail::GwTensorProductScalar(a1, a2, pi),
                                     detail::GwTensorProductSimd(a1, a2, pi),
                                     kUlpTol);
      ok_wl = ok_wl && detail::RefinedColorsScalar(tg1, 3) ==
                           detail::RefinedColorsSimd(tg1, 3);
      Rng drng(300 + s);
      std::vector<int> da(static_cast<size_t>(n)),
          db(static_cast<size_t>(n) + 3);
      for (int& d : da) d = static_cast<int>(drng.Uniform(0, 9));
      for (int& d : db) d = static_cast<int>(drng.Uniform(0, 9));
      std::sort(da.begin(), da.end());
      std::sort(db.begin(), db.end());
      ok_deg = ok_deg && detail::DegreeSequenceEdgeBoundScalar(da, db) ==
                             detail::DegreeSequenceEdgeBoundSimd(da, db);
    }
    const auto gate = [&](const char* name, bool ok) {
      std::printf("  %-28s [%s]\n", name, ok ? "PASS" : "FAIL");
      twins_ok = twins_ok && ok;
    };
    gate("hungarian (bit-equal)", ok_hung);
    gate("lapjv (bit-equal)", ok_lapjv);
    gate("sinkhorn (<=1e-9 rel)", ok_sink);
    gate("gw_tensor (<=1e-9 rel)", ok_gw);
    gate("wl_colors (bit-equal)", ok_wl);
    gate("degree_bound (bit-equal)", ok_deg);
  }

  std::printf("== exact searchers ==\n");
  {
    Rng rng(6);
    Graph g = AidsLikeGraph(&rng, 6, 8);
    SyntheticEditOptions eopt;
    eopt.num_edits = 3;
    eopt.num_labels = 29;
    GedPair pair = SyntheticEditPair(g, eopt, &rng);
    report(TimeKernel("astar_exact_small",
                      [&] { Keep(AstarGed(pair.g1, pair.g2)->ged); },
                      min_ms));
  }
  {
    Rng rng(7);
    Graph g = ImdbLikeGraph(&rng, 12, 16);
    SyntheticEditOptions eopt;
    eopt.num_edits = 5;
    eopt.num_labels = 1;
    eopt.allow_relabel = false;
    GedPair pair = SyntheticEditPair(g, eopt, &rng);
    report(TimeKernel("beam_search_w16",
                      [&] { Keep(BeamGed(pair.g1, pair.g2, 16).ged); },
                      min_ms));
  }

  // One root-to-leaf walk, legacy vs SoA: Child copies the state and
  // recomputes the O(n + m) heuristic at every depth; Push/Pop maintain
  // everything incrementally with an O(1) heuristic read. The ratio is
  // the per-node saving the branch-and-bound rewrite banks.
  std::printf("== branch-and-bound state machinery ==\n");
  {
    Rng rng(8);
    Graph a = AidsLikeGraph(&rng, 8, 10);
    Graph b = AidsLikeGraph(&rng, 10, 12);
    if (a.NumNodes() > b.NumNodes()) std::swap(a, b);
    internal::Searcher searcher(a, b);
    const int n1 = searcher.ctx().n1;
    // Fixed cheapest-first path, chosen once so both walks are identical.
    std::vector<int> path;
    {
      internal::DfsState d = searcher.MakeDfs();
      for (int depth = 0; depth < n1; ++depth) {
        int best_v = -1, best_delta = 0;
        for (int v = 0; v < searcher.ctx().n2; ++v) {
          if (d.used >> v & 1) continue;
          const int delta = searcher.DeltaFast(d, v);
          if (best_v < 0 || delta < best_delta) {
            best_v = v;
            best_delta = delta;
          }
        }
        path.push_back(best_v);
        searcher.Push(&d, best_v, best_delta);
      }
    }
    report(TimeKernel(
        "state_walk_legacy_child",
        [&] {
          internal::SearchState s = searcher.Root();
          for (int v : path) s = searcher.Child(s, v);
          Keep(s.f());
        },
        min_ms));
    report(TimeKernel(
        "state_walk_soa_push_pop",
        [&] {
          internal::DfsState d = searcher.MakeDfs();
          int f = 0;
          for (int v : path) {
            searcher.Push(&d, v, searcher.DeltaFast(d, v));
            f = d.g + searcher.HeuristicOf(d);
          }
          for (int depth = 0; depth < n1; ++depth) searcher.Pop(&d);
          Keep(f);
        },
        min_ms));
  }

  // Sequential vs parallel branch and bound over a pool of hard pairs,
  // with a determinism gate: the parallel result must be identical for
  // pool sizes 1, 2 and 8, and its distance must match the sequential
  // solver's on every completed pair. The multi-pair batch solver is
  // timed and gated alongside: one ParallelBranchAndBoundGedBatch over
  // all pairs (their subtrees sharing each round) must reproduce every
  // solo result — ged, matching, exact flag, expansion count — on every
  // pool size.
  std::printf("== branch and bound: sequential vs parallel ==\n");
  const int bnb_pairs_n = smoke ? 3 : 6;
  double seq_ms = 0.0, par_ms = 0.0, batch_ms = 0.0;
  bool equal = true;
  {
    Rng rng(9);
    std::vector<GedPair> pairs;
    for (int i = 0; i < bnb_pairs_n; ++i) {
      Graph base = LinuxLikeGraph(&rng, smoke ? 7 : 8, smoke ? 9 : 10);
      SyntheticEditOptions eopt;
      eopt.num_edits = 2 + i % 3;
      eopt.allow_relabel = false;
      pairs.push_back(SyntheticEditPair(base, eopt, &rng));
    }
    WorkStealingPool pool1(1), pool2(2), pool8(8);
    const auto time_ms = [](auto&& body) {
      const auto start = std::chrono::steady_clock::now();
      body();
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    std::vector<GedSearchResult> seq(pairs.size());
    seq_ms = time_ms([&] {
      for (size_t i = 0; i < pairs.size(); ++i)
        seq[i] = BranchAndBoundGed(pairs[i].g1, pairs[i].g2);
    });
    std::vector<GedSearchResult> par(pairs.size());
    par_ms = time_ms([&] {
      for (size_t i = 0; i < pairs.size(); ++i)
        par[i] = ParallelBranchAndBoundGed(pairs[i].g1, pairs[i].g2,
                                           &pool8);
    });
    for (size_t i = 0; i < pairs.size(); ++i) {
      const GedSearchResult r1 =
          ParallelBranchAndBoundGed(pairs[i].g1, pairs[i].g2, &pool1);
      const GedSearchResult r2 =
          ParallelBranchAndBoundGed(pairs[i].g1, pairs[i].g2, &pool2);
      equal = equal && r1.ged == par[i].ged && r2.ged == par[i].ged &&
              r1.matching == par[i].matching &&
              r2.matching == par[i].matching &&
              r1.exact == par[i].exact && r2.exact == par[i].exact &&
              r1.expansions == par[i].expansions &&
              r2.expansions == par[i].expansions;
      equal = equal && (!par[i].exact || !seq[i].exact ||
                        par[i].ged == seq[i].ged);
    }
    // Multi-pair batch: all pairs under one pool acquisition, subtrees
    // sharing every round. Byte-identical to the solo runs by design;
    // the gate checks it on every pool size.
    std::vector<ParallelBnbBatchItem> bitems(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      bitems[i].g1 = &pairs[i].g1;
      bitems[i].g2 = &pairs[i].g2;
    }
    std::vector<GedSearchResult> batch8;
    batch_ms = time_ms(
        [&] { batch8 = ParallelBranchAndBoundGedBatch(bitems, &pool8); });
    const std::vector<GedSearchResult> batch1 =
        ParallelBranchAndBoundGedBatch(bitems, &pool1);
    const std::vector<GedSearchResult> batch2 =
        ParallelBranchAndBoundGedBatch(bitems, &pool2);
    const auto same = [](const GedSearchResult& a, const GedSearchResult& b) {
      return a.ged == b.ged && a.matching == b.matching &&
             a.exact == b.exact && a.expansions == b.expansions;
    };
    for (size_t i = 0; i < pairs.size(); ++i)
      equal = equal && same(batch8[i], par[i]) && same(batch1[i], par[i]) &&
              same(batch2[i], par[i]);
    std::printf("  %d pairs: sequential %.2f ms | parallel(8) %.2f ms | "
                "speedup %.2fx | batch(8) %.2f ms\n",
                bnb_pairs_n, seq_ms, par_ms,
                par_ms > 0.0 ? seq_ms / par_ms : 0.0, batch_ms);
    std::printf("  determinism across pools {1, 2, 8} + sequential "
                "agreement + batch == solo: [%s]\n",
                equal ? "PASS" : "FAIL");
  }

  // ---------------------------------------------------------- the record
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_micro_kernels\",\n");
  std::fprintf(f, "  \"git_rev\": \"%s\",\n",
               JsonEscape(telemetry::GitRevision()).c_str());
  std::fprintf(f, "  \"timestamp\": %lld,\n",
               static_cast<long long>(std::time(nullptr)));
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"simd_isa\": \"%s\",\n", simd::kIsaName);
  std::fprintf(f, "  \"simd_lanes\": %d,\n", simd::ActiveDoubleLanes());
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < timings.size(); ++i)
    std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"ops\": %ld}%s\n",
                 JsonEscape(timings[i].name).c_str(), timings[i].ns_per_op,
                 timings[i].ops, i + 1 < timings.size() ? "," : "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"bnb\": {\"pairs\": %d, \"seq_ms\": %.3f, "
               "\"par_ms\": %.3f, \"speedup\": %.3f, "
               "\"batch_ms\": %.3f, \"batch_speedup\": %.3f, "
               "\"equal\": %s, \"pool_threads\": 8},\n",
               bnb_pairs_n, seq_ms, par_ms,
               par_ms > 0.0 ? seq_ms / par_ms : 0.0, batch_ms,
               batch_ms > 0.0 ? seq_ms / batch_ms : 0.0,
               equal ? "true" : "false");
  std::fprintf(f, "  \"twins_equal\": %s\n", twins_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("kernel record written to %s\n", out_path.c_str());
  return equal && twins_ok ? 0 : 1;
}
