/// \file bench_micro_kernels.cpp
/// \brief google-benchmark microbenchmarks of the numeric kernels that
/// dominate the paper's complexity analysis (Section 5.3): the Sinkhorn
/// sweep (O(M n^2)), the Hungarian LAP (O(n^3)), the GW tensor product
/// (O(n^3)), conditional gradient, and the exact searchers.
#include <benchmark/benchmark.h>

#include "assignment/hungarian.hpp"
#include "assignment/lapjv.hpp"
#include "core/random.hpp"
#include "exact/astar.hpp"
#include "graph/generator.hpp"
#include "models/gedgw.hpp"
#include "ot/gromov.hpp"
#include "ot/sinkhorn.hpp"

namespace {

using namespace otged;

Matrix RandomCost(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Matrix m(r, c);
  for (int i = 0; i < m.size(); ++i) m[i] = rng.Uniform(0, 1);
  return m;
}

void BM_Sinkhorn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix cost = RandomCost(n, n, 1);
  Matrix mu = Matrix::ColVec(n, 1.0), nu = Matrix::ColVec(n, 1.0);
  SinkhornOptions opt;
  opt.max_iters = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sinkhorn(cost, mu, nu, opt).cost);
  }
}
BENCHMARK(BM_Sinkhorn)->Arg(10)->Arg(50)->Arg(200);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix cost = RandomCost(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignment(cost).cost);
  }
}
BENCHMARK(BM_Hungarian)->Arg(10)->Arg(50)->Arg(200);

void BM_Lapjv(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix cost = RandomCost(n, n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignmentJV(cost).cost);
  }
}
BENCHMARK(BM_Lapjv)->Arg(10)->Arg(50)->Arg(200);

void BM_GwTensorProduct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  Graph g1 = PowerLawGraph(n, 2, &rng);
  Graph g2 = PowerLawGraph(n, 2, &rng);
  Matrix a1 = g1.AdjacencyMatrix(), a2 = g2.AdjacencyMatrix();
  Matrix pi(n, n, 1.0 / n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GwTensorProduct(a1, a2, pi).Sum());
  }
}
BENCHMARK(BM_GwTensorProduct)->Arg(10)->Arg(50)->Arg(200);

void BM_GedgwSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  Graph g = PowerLawGraph(n, 2, &rng);
  SyntheticEditOptions opt;
  opt.num_edits = 5;
  opt.num_labels = 1;
  opt.allow_relabel = false;
  GedPair pair = SyntheticEditPair(g, opt, &rng);
  GedgwSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Predict(pair.g1, pair.g2).ged);
  }
}
BENCHMARK(BM_GedgwSolve)->Arg(10)->Arg(30)->Arg(100);

void BM_AstarExactSmall(benchmark::State& state) {
  Rng rng(6);
  Graph g = AidsLikeGraph(&rng, 6, 8);
  SyntheticEditOptions opt;
  opt.num_edits = 3;
  opt.num_labels = 29;
  GedPair pair = SyntheticEditPair(g, opt, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AstarGed(pair.g1, pair.g2)->ged);
  }
}
BENCHMARK(BM_AstarExactSmall);

void BM_BeamSearch(benchmark::State& state) {
  Rng rng(7);
  Graph g = ImdbLikeGraph(&rng, 12, 16);
  SyntheticEditOptions opt;
  opt.num_edits = 5;
  opt.num_labels = 1;
  opt.allow_relabel = false;
  GedPair pair = SyntheticEditPair(g, opt, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BeamGed(pair.g1, pair.g2, 16).ged);
  }
}
BENCHMARK(BM_BeamSearch);

}  // namespace

BENCHMARK_MAIN();
