/// \file bench_table4_gep.cpp
/// \brief Reproduces Table 4: edit-path (GEP) generation quality of
/// Classic, Noah (stand-in), GEDGNN, GEDIOT, GEDGW, and GEDHOT. Every
/// reported GED here is the length of a concrete, verified edit path
/// (always feasible), mirroring the paper's setup where coupling-driven
/// methods run the k-best matching framework.
#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

void RunDataset(DatasetKind kind, int k) {
  // Path search is cubic in n per split: use a lighter pair budget.
  Workload w = MakeWorkload(kind, /*graphs=*/120, /*train_pairs=*/1200,
                            /*queries=*/4, /*pairs_per_query=*/25);
  const int labels = w.dataset.num_labels;
  TrainOptions topt = BenchTrain();

  GpnConfig gpn_cfg;
  gpn_cfg.trunk = BenchTrunk(labels);
  GpnModel gpn(gpn_cfg);
  TrainOrLoad(&gpn, w.dataset.name, w.pairs.train, topt);

  GedgnnConfig gnn_cfg;
  gnn_cfg.trunk = BenchTrunk(labels);
  GedgnnModel gedgnn(gnn_cfg);
  TrainOrLoad(&gedgnn, w.dataset.name, w.pairs.train, topt);

  GediotConfig iot_cfg;
  iot_cfg.trunk = BenchTrunk(labels);
  GediotModel gediot(iot_cfg);
  TrainOrLoad(&gediot, w.dataset.name, w.pairs.train, topt);

  GedgwSolver gedgw;
  GedhotModel gedhot(&gediot, &gedgw);

  std::vector<GepRow> rows;
  rows.push_back(EvaluateGep("Classic", ClassicGepFn(), w.pairs.test));
  rows.push_back(EvaluateGep("Noah", NoahGepFn(&gpn), w.pairs.test));
  rows.push_back(
      EvaluateGep("GEDGNN", GepFnFromModel(&gedgnn, k), w.pairs.test));
  rows.push_back(
      EvaluateGep("GEDIOT", GepFnFromModel(&gediot, k), w.pairs.test));
  rows.push_back(
      EvaluateGep("GEDGW", GepFnFromModel(&gedgw, k), w.pairs.test));
  rows.push_back(
      EvaluateGep("GEDHOT", GedhotGepFn(&gedhot, k), w.pairs.test));
  PrintGepTable("Table 4 (" + w.dataset.name + "): GEP generation, k=" +
                    std::to_string(k),
                rows);
}

}  // namespace

int main() {
  RunDataset(DatasetKind::kAids, /*k=*/16);
  RunDataset(DatasetKind::kLinux, /*k=*/16);
  RunDataset(DatasetKind::kImdb, /*k=*/6);
  return 0;
}
