/// \file bench_fig17_epsilon.cpp
/// \brief Reproduces Figure 17: GEDIOT accuracy/MAE as the initial
/// Sinkhorn regularization coefficient eps0 varies. Expected shape: flat
/// curves — the learnable-epsilon mechanism absorbs the initialization.
#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind, 100, 400, 4, 25);
  std::printf("-- %s --\n", w.dataset.name.c_str());
  std::printf("%-8s %10s %10s %12s\n", "eps0", "MAE", "Acc", "final eps");
  for (double eps0 : {0.005, 0.01, 0.05, 0.1, 0.5, 1.0}) {
    GediotConfig cfg;
    cfg.trunk = BenchTrunk(w.dataset.num_labels);
    cfg.eps0 = eps0;
    GediotModel model(cfg);
    TrainOrLoad(&model, w.dataset.name + "_eps" + std::to_string(eps0),
                w.pairs.train, BenchTrain(6));
    GedRow row = EvaluateGed("GEDIOT", GedFnFromModel(&model), w.pairs.test);
    std::printf("%-8.3f %10.3f %9.1f%% %12.4f\n", eps0, row.mae,
                100 * row.accuracy, model.CurrentEpsilon());
  }
}

}  // namespace

int main() {
  std::printf("== Figure 17: varying eps0 in the learnable Sinkhorn ==\n");
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  return 0;
}
