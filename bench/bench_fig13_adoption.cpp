/// \file bench_fig13_adoption.cpp
/// \brief Reproduces Figure 13: fraction of test pairs where GEDHOT
/// adopts GEDIOT's result vs GEDGW's, for GED computation and GEP
/// generation. Paper shape (AIDS): ~80% of GED values and ~63% of paths
/// come from GEDIOT.
#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind, 120, 1200, 4, 20);
  GediotConfig iot_cfg;
  iot_cfg.trunk = BenchTrunk(w.dataset.num_labels);
  GediotModel gediot(iot_cfg);
  TrainOrLoad(&gediot, w.dataset.name, w.pairs.train, BenchTrain());
  GedgwSolver gedgw;
  GedhotModel gedhot(&gediot, &gedgw);

  const int k = kind == DatasetKind::kImdb ? 6 : 12;
  for (const GedPair* p : FlattenGroups(w.pairs.test)) {
    gedhot.Predict(p->g1, p->g2);
    gedhot.GeneratePath(p->g1, p->g2, k);
  }
  std::printf("%-12s GED: GEDIOT %.1f%% / GEDGW %.1f%%   "
              "GEP: GEDIOT %.1f%% / GEDGW %.1f%%\n",
              w.dataset.name.c_str(), 100 * gedhot.ValueAdoptionIot(),
              100 * (1 - gedhot.ValueAdoptionIot()),
              100 * gedhot.PathAdoptionIot(),
              100 * (1 - gedhot.PathAdoptionIot()));
}

}  // namespace

int main() {
  std::printf("== Figure 13: GEDHOT adoption rate (GEDIOT vs GEDGW) ==\n");
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  RunDataset(DatasetKind::kImdb);
  return 0;
}
