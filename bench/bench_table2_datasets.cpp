/// \file bench_table2_datasets.cpp
/// \brief Reproduces Table 2: statistics of the three graph datasets.
/// Paper values for reference: AIDS |V|avg 8.9 |E|avg 8.8 |L| 29;
/// LINUX 7.6 / 6.9 / 1; IMDB 13 / 65.9 / 1.
#include <cstdio>

#include "graph/dataset.hpp"

using namespace otged;

int main() {
  std::printf("== Table 2: Statistics of Graph Datasets ==\n");
  std::printf("%-12s %6s %8s %8s %8s %8s %6s\n", "D", "|D|", "|V|avg",
              "|E|avg", "|V|max", "|E|max", "|L|");
  struct Row {
    DatasetKind kind;
    int count;
  };
  const Row rows[] = {{DatasetKind::kAids, 700},
                      {DatasetKind::kLinux, 1000},
                      {DatasetKind::kImdb, 1500}};
  for (const Row& r : rows) {
    Dataset d = MakeDataset(r.kind, r.count, 99);
    std::printf("%-12s %6zu %8.1f %8.1f %8d %8d %6d\n", d.name.c_str(),
                d.graphs.size(), d.AvgNodes(), d.AvgEdges(), d.MaxNodes(),
                d.MaxEdges(), d.num_labels);
  }
  std::printf(
      "\nPaper reference: AIDS 700/8.9/8.8/10/14/29,"
      " LINUX 1000/7.6/6.9/10/13/1,"
      " IMDB 1500/13/65.9/89/1467/1\n");
  return 0;
}
