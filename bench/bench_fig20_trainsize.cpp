/// \file bench_fig20_trainsize.cpp
/// \brief Reproduces Figure 20: GEDIOT quality and training time as the
/// training-set fraction varies (10%..100%). Expected shape: MAE falls
/// and accuracy rises with more data (flattening); training time grows
/// linearly.
#include <chrono>

#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind, 100, 500, 4, 25);
  std::printf("-- %s --\n", w.dataset.name.c_str());
  std::printf("%-8s %12s %10s %10s\n", "frac", "train(s)", "MAE", "Acc");
  for (double frac : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    size_t count =
        static_cast<size_t>(frac * static_cast<double>(w.pairs.train.size()));
    std::vector<GedPair> subset(w.pairs.train.begin(),
                                w.pairs.train.begin() + count);
    GediotConfig cfg;
    cfg.trunk = BenchTrunk(w.dataset.num_labels);
    GediotModel model(cfg);
    auto t0 = std::chrono::steady_clock::now();
    TrainModel(&model, subset, BenchTrain(6));
    double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    GedRow row = EvaluateGed("GEDIOT", GedFnFromModel(&model), w.pairs.test);
    std::printf("%-8.1f %12.2f %10.3f %9.1f%%\n", frac, secs, row.mae,
                100 * row.accuracy);
  }
}

}  // namespace

int main() {
  std::printf("== Figure 20: varying the training-set size ==\n");
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  return 0;
}
