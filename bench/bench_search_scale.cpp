/// \file bench_search_scale.cpp
/// \brief Scale benchmark for the multi-level candidate index.
///
/// Answers one question: does the GraphIndex make candidate generation
/// sublinear on a corpus two orders of magnitude past the throughput
/// bench, without changing a single answer? Five sections:
///
///   1. BUILD      — generate a deterministic 100k+ labeled corpus
///                   (AIDS-like molecule graphs plus perturbed variants
///                   of every query seed, so queries have true
///                   neighbors) and time the index build.
///   2. CANDIDATES — sampled range queries at realistic tau; reports
///                   the candidate fraction (index candidates / corpus)
///                   and the per-level prune split.
///                   GATE: candidate fraction < 5%.
///   3. VERIFY     — 100+ sampled queries (range plus k=1 top-k
///                   probes; see the mix note in main) served by the
///                   indexed engine and re-served by an engine with
///                   `use_index = false` (a full linear scan over the
///                   same snapshot); hit lists must match byte for byte
///                   (id, distance, exactness). GATE: zero mismatches.
///   4. CHURN      — bulk inserts plus random erases against the same
///                   store; the incremental index (no full rebuild at
///                   this churn level) is re-verified against the
///                   linear scan. GATE: zero mismatches.
///   5. RECORD     — QPS and p50/p95/p99 latency over the indexed
///                   serving sections, persisted as `BENCH_scale.json`
///                   (schema in src/telemetry/bench_report.hpp, with
///                   the optional "index" section).
///
/// Every gate failure flips the exit code to 1; CI runs `--smoke`.
///
/// Flags: --smoke  shrink the corpus (~3k) and query counts for CI
///        --out P  write the bench report to P (default BENCH_scale.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "graph/generator.hpp"
#include "search/query_engine.hpp"
#include "telemetry/bench_report.hpp"

using namespace otged;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool SameHits(const std::vector<SearchHit>& a,
              const std::vector<SearchHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i].id != b[i].id || a[i].ged != b[i].ged ||
        a[i].exact_distance != b[i].exact_distance)
      return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // progress visible when piped
  bool smoke = false;
  std::string out_path = "BENCH_scale.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc)
      out_path = argv[++a];
  }
  const int corpus_n = smoke ? 3'000 : 100'000;
  const int num_seeds = smoke ? 24 : 100;     // query seeds with variants
  const int variants_per_seed = 12;           // guarantees top-k neighbors
  const int fraction_queries = smoke ? 24 : 200;
  // The verify mix is range-heavy on purpose. Exact top-k computes a
  // true distance for every graph whose lower bound is under the k-th
  // seed's refined upper bound — a cost both engines pay identically.
  // On this corpus the invariant bound concentrates at 3-4 between
  // unrelated molecule graphs, so any cap >= 3 (i.e. k >= 2, whose
  // k-th true neighbor sits at distance ~3) degenerates into a full
  // verification sweep: minutes per query at 3k graphs, hours at 100k,
  // and a bound-resolution ceiling no candidate index can lift (see
  // ROADMAP: anytime top-k). The top-k probes therefore run k=1 on
  // 1-edit queries — the seed refinement proves a cap of 1 and the
  // LB-range collapses — which still drives the full indexed top-k
  // path (VP seeding, cap, LB-range verify) end to end at scale;
  // k>=2 parity is covered corpus-wide by the unit and hammer tests.
  const int verify_range = smoke ? 16 : 97;
  const int verify_topk = smoke ? 4 : 3;
  const int churn_n = smoke ? 200 : 2'000;
  const int churn_verify = smoke ? 6 : 20;
  const int tau = 2;
  const int k = 1;
  bool failed = false;

  // ------------------------------------------------------------ 1. build
  Rng rng(20250807);
  std::vector<Graph> corpus;
  corpus.reserve(static_cast<size_t>(corpus_n) +
                 static_cast<size_t>(num_seeds) * variants_per_seed);
  for (int i = 0; i < corpus_n; ++i)
    corpus.push_back(AidsLikeGraph(&rng, 6, 14));
  // Query seeds are corpus-like graphs; their perturbed variants go into
  // the corpus so range queries have true hits and top-k has close
  // neighbors (keeping the exact phase cheap and realistic).
  std::vector<Graph> seeds;
  for (int s = 0; s < num_seeds; ++s) {
    seeds.push_back(AidsLikeGraph(&rng, 6, 14));
    for (int v = 0; v < variants_per_seed; ++v) {
      SyntheticEditOptions sopt;
      sopt.num_edits = 1 + v % 3;
      sopt.num_labels = 29;
      corpus.push_back(SyntheticEditPair(seeds.back(), sopt, &rng).g2);
    }
  }
  GraphStore store;
  auto t0 = std::chrono::steady_clock::now();
  store.AddAll(corpus);
  const double ingest_s = Seconds(t0);

  EngineOptions iopt;
  iopt.num_threads = 4;
  // Identical budgets on both engines keep the byte-identical comparison
  // meaningful; the cap keeps a rare hard pair from burning minutes in
  // the exact tier (such pairs are kept conservatively, on both sides).
  iopt.cascade.exact_budget = 50'000;
  // Deep probe pool, shallow per-probe refinement: at 100k graphs a few
  // dozen unrelated graphs tie the true neighbors at the lowest invariant
  // bounds, so the pool must reach past them, while a true neighbor
  // proves its small distance in a few hundred branch-and-bound visits —
  // false friends get cut off before they burn the budget.
  iopt.topk_seed_probes = 48;
  iopt.topk_seed_refine_budget = 5'000;
  QueryEngine indexed(&store, iopt);
  EngineOptions bopt = iopt;
  bopt.use_index = false;
  QueryEngine brute(&store, bopt);

  // The first query builds the index; time it through a throwaway call.
  t0 = std::chrono::steady_clock::now();
  indexed.Range(seeds[0], 0);
  const double build_s = Seconds(t0);
  std::printf("== build: %d graphs ingested in %.2f s, index built in "
              "%.2f s ==\n\n",
              store.Size(), ingest_s, build_s);

  // ----------------------------------------- 2. candidate fraction gate
  // Queries are fresh perturbations of known seeds — near misses, the
  // regime where a threshold query is actually useful.
  std::vector<Graph> fraction_set;
  for (int q = 0; q < fraction_queries; ++q) {
    SyntheticEditOptions sopt;
    sopt.num_edits = 1 + q % 2;
    sopt.num_labels = 29;
    fraction_set.push_back(
        SyntheticEditPair(seeds[static_cast<size_t>(q) % seeds.size()],
                          sopt, &rng)
            .g2);
  }
  IndexStats frac_total;
  CascadeStats cascade_total;
  std::vector<double> latencies_ms;
  t0 = std::chrono::steady_clock::now();
  for (const Graph& q : fraction_set) {
    RangeResult res = indexed.Range(q, tau);
    frac_total.Merge(res.stats.index);
    cascade_total.Merge(res.stats.cascade);
    latencies_ms.push_back(res.stats.wall_ms);
  }
  double serving_s = Seconds(t0);
  const double scanned = static_cast<double>(
      frac_total.scanned > 0 ? frac_total.scanned : 1);
  const double cand_fraction =
      static_cast<double>(frac_total.candidates) / scanned;
  std::printf("== candidates: %d range queries, tau=%d ==\n",
              fraction_queries, tau);
  std::printf("  %ld of %ld (query, graph) pairs survived the index "
              "(%.2f%%)\n",
              frac_total.candidates, frac_total.scanned,
              100.0 * cand_fraction);
  std::printf("  pruned: %.1f%% partition, %.1f%% label, %.1f%% vptree | "
              "%ld of %ld partitions opened\n",
              100.0 * static_cast<double>(frac_total.partition_pruned) /
                  scanned,
              100.0 * static_cast<double>(frac_total.label_pruned) / scanned,
              100.0 * static_cast<double>(frac_total.vptree_pruned) / scanned,
              frac_total.partitions_opened, frac_total.partitions_seen);
  const bool frac_ok = cand_fraction < 0.05;
  std::printf("  candidate fraction %.2f%%  [%s]\n\n",
              100.0 * cand_fraction,
              frac_ok ? "PASS <5%" : "FAIL >=5%");
  failed = failed || !frac_ok;

  // ------------------------------------- 3. brute-force verification
  // Each sampled query runs on the indexed engine and again on a
  // `use_index = false` engine over the same store; answers must match
  // byte for byte.
  std::printf("== verify: %d range + %d top-k queries vs full linear "
              "scan ==\n",
              verify_range, verify_topk);
  long mismatched = 0;
  t0 = std::chrono::steady_clock::now();
  for (int q = 0; q < verify_range; ++q) {
    SyntheticEditOptions sopt;
    sopt.num_edits = 1 + q % 3;
    sopt.num_labels = 29;
    const Graph query =
        SyntheticEditPair(seeds[static_cast<size_t>(q) % seeds.size()],
                          sopt, &rng)
            .g2;
    auto tq = std::chrono::steady_clock::now();
    RangeResult got = indexed.Range(query, tau);
    const double idx_s = Seconds(tq);
    latencies_ms.push_back(got.stats.wall_ms);
    cascade_total.Merge(got.stats.cascade);
    frac_total.Merge(got.stats.index);
    tq = std::chrono::steady_clock::now();
    RangeResult expected = brute.Range(query, tau);
    std::printf("  [range %2d] indexed %.2f s, brute %.2f s, %zu hits\n", q,
                idx_s, Seconds(tq), got.hits.size());
    if (!SameHits(got.hits, expected.hits)) ++mismatched;
  }
  for (int q = 0; q < verify_topk; ++q) {
    SyntheticEditOptions sopt;
    sopt.num_edits = 1;  // keeps the k=1 refined cap at 1 (see above)
    sopt.num_labels = 29;
    const Graph query =
        SyntheticEditPair(seeds[static_cast<size_t>(q) % seeds.size()],
                          sopt, &rng)
            .g2;
    auto tq = std::chrono::steady_clock::now();
    TopKResult got = indexed.TopK(query, k);
    const double idx_s = Seconds(tq);
    latencies_ms.push_back(got.stats.wall_ms);
    cascade_total.Merge(got.stats.cascade);
    frac_total.Merge(got.stats.index);
    tq = std::chrono::steady_clock::now();
    TopKResult expected = brute.TopK(query, k);
    std::printf(
        "  [topk  %2d] indexed %.2f s, brute %.2f s, %ld cascade-evaluated\n",
        q, idx_s, Seconds(tq),
        got.stats.cascade.candidates - got.stats.cascade.pruned_index);
    if (!SameHits(got.hits, expected.hits)) ++mismatched;
  }
  serving_s += Seconds(t0);
  std::printf("  %d queries checked, %ld mismatched  [%s]\n\n",
              verify_range + verify_topk, mismatched,
              mismatched == 0 ? "PASS byte-identical" : "FAIL");
  failed = failed || mismatched != 0;

  // ------------------------------------------------- 4. mutation churn
  // Bulk insert + random erases; the index advances incrementally (the
  // churn stays below the rebuild threshold at full scale) and must
  // still agree with the linear scan.
  std::printf("== churn: +%d inserts, -%d erases, then %d re-verified "
              "queries ==\n",
              churn_n, churn_n, churn_verify);
  {
    std::vector<Graph> fresh;
    for (int i = 0; i < churn_n; ++i)
      fresh.push_back(AidsLikeGraph(&rng, 6, 14));
    store.AddAll(fresh);
    int erased = 0;
    while (erased < churn_n) {
      if (store.Erase(rng.UniformInt(0, store.NextId() - 1))) ++erased;
    }
  }
  long churn_mismatched = 0;
  t0 = std::chrono::steady_clock::now();
  for (int q = 0; q < churn_verify; ++q) {
    SyntheticEditOptions sopt;
    sopt.num_edits = 1 + q % 3;
    sopt.num_labels = 29;
    const Graph query =
        SyntheticEditPair(seeds[static_cast<size_t>(q) % seeds.size()],
                          sopt, &rng)
            .g2;
    RangeResult got = indexed.Range(query, tau);
    latencies_ms.push_back(got.stats.wall_ms);
    cascade_total.Merge(got.stats.cascade);
    frac_total.Merge(got.stats.index);
    RangeResult expected = brute.Range(query, tau);
    if (!SameHits(got.hits, expected.hits)) ++churn_mismatched;
  }
  serving_s += Seconds(t0);
  std::printf("  store now %d graphs | %d queries checked, %ld "
              "mismatched  [%s]\n\n",
              store.Size(), churn_verify, churn_mismatched,
              churn_mismatched == 0 ? "PASS byte-identical" : "FAIL");
  failed = failed || churn_mismatched != 0;

  // ------------------------------------------------- 5. perf record
  telemetry::BenchReport report;
  report.bench = "bench_search_scale";
  report.threads = 4;
  report.corpus_size = store.Size();
  report.num_queries = static_cast<int>(latencies_ms.size());
  report.qps = static_cast<double>(latencies_ms.size()) / serving_s;
  report.p50_ms = telemetry::PercentileOf(latencies_ms, 0.50);
  report.p95_ms = telemetry::PercentileOf(latencies_ms, 0.95);
  report.p99_ms = telemetry::PercentileOf(latencies_ms, 0.99);
  const double cand = static_cast<double>(
      cascade_total.candidates > 0 ? cascade_total.candidates : 1);
  report.tier_fractions[0] =
      static_cast<double>(cascade_total.pruned_invariant +
                          cascade_total.passed_invariant) /
      cand;
  report.tier_fractions[1] =
      static_cast<double>(cascade_total.pruned_branch) / cand;
  report.tier_fractions[2] =
      static_cast<double>(cascade_total.decided_heuristic) / cand;
  report.tier_fractions[3] =
      static_cast<double>(cascade_total.decided_ot) / cand;
  report.tier_fractions[4] =
      static_cast<double>(cascade_total.decided_exact) / cand;
  report.tier_fractions[5] =
      static_cast<double>(cascade_total.cache_hits) / cand;
  report.tier_fractions[6] =
      static_cast<double>(cascade_total.pruned_index) / cand;
  report.cache_hit_rate =
      static_cast<double>(cascade_total.cache_hits) / cand;
  report.has_index = true;
  const double all_scanned = static_cast<double>(
      frac_total.scanned > 0 ? frac_total.scanned : 1);
  report.index_candidate_fraction =
      static_cast<double>(frac_total.candidates) / all_scanned;
  report.index_partition_prune_fraction =
      static_cast<double>(frac_total.partition_pruned) / all_scanned;
  report.index_label_prune_fraction =
      static_cast<double>(frac_total.label_pruned) / all_scanned;
  report.index_vptree_prune_fraction =
      static_cast<double>(frac_total.vptree_pruned) / all_scanned;

  std::printf("== record: %.2f queries/s | latency p50 %.2f ms, p95 "
              "%.2f ms, p99 %.2f ms ==\n",
              report.qps, report.p50_ms, report.p95_ms, report.p99_ms);
  std::string error;
  if (!telemetry::WriteBenchJson(report, out_path, &error)) {
    std::printf("  FAILED to write %s: %s\n", out_path.c_str(),
                error.c_str());
    return 1;
  }
  std::printf("  perf record written to %s\n", out_path.c_str());
  return failed ? 1 : 0;
}
