/// \file bench_fig14_triangle.cpp
/// \brief Reproduces Figure 14: fraction of graph triples whose predicted
/// GEDs satisfy the triangle inequality, for each learned method and the
/// OT-based methods, on AIDS-like and LINUX-like data. Paper shape: all
/// methods preserve the property in > 95% of cases; GEDIOT/GEDHOT ~99.9%
/// on AIDS.
#include "bench_common.hpp"
#include "eval/metrics.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

// Builds triples (G1, G2, G3) where all three pairwise orderings satisfy
// our n1 <= n2 convention: G2 = G1 + edits, G3 = G2 + edits.
struct Triple {
  Graph g1, g2, g3;
};

std::vector<Triple> MakeTriples(DatasetKind kind, int count, int num_labels,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Triple> out;
  for (int i = 0; i < count; ++i) {
    Graph base = kind == DatasetKind::kAids ? AidsLikeGraph(&rng, 4, 8)
                                            : LinuxLikeGraph(&rng, 4, 8);
    SyntheticEditOptions opt;
    opt.num_labels = num_labels;
    opt.allow_relabel = num_labels > 1;
    opt.num_edits = rng.UniformInt(1, 3);
    GedPair p12 = SyntheticEditPair(base, opt, &rng);
    opt.num_edits = rng.UniformInt(1, 3);
    GedPair p23 = SyntheticEditPair(p12.g2, opt, &rng);
    out.push_back({p12.g1, p12.g2, p23.g2});
  }
  return out;
}

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind);
  const int labels = w.dataset.num_labels;
  TrainOptions topt = BenchTrain();

  SimgnnConfig sim_cfg;
  sim_cfg.trunk = BenchTrunk(labels);
  SimgnnModel simgnn(sim_cfg);
  TrainOrLoad(&simgnn, w.dataset.name, w.pairs.train, topt);
  GedgnnConfig gnn_cfg;
  gnn_cfg.trunk = BenchTrunk(labels);
  GedgnnModel gedgnn(gnn_cfg);
  TrainOrLoad(&gedgnn, w.dataset.name, w.pairs.train, topt);
  GediotConfig iot_cfg;
  iot_cfg.trunk = BenchTrunk(labels);
  GediotModel gediot(iot_cfg);
  TrainOrLoad(&gediot, w.dataset.name, w.pairs.train, topt);
  GedgwSolver gedgw;
  GedhotModel gedhot(&gediot, &gedgw);

  auto triples = MakeTriples(kind, 150, labels, 77);
  struct Entry {
    const char* name;
    GedModel* model;
  };
  Entry entries[] = {{"SimGNN", &simgnn},
                     {"GEDGNN", &gedgnn},
                     {"GEDIOT", &gediot},
                     {"GEDGW", &gedgw},
                     {"GEDHOT", &gedhot}};
  std::printf("-- %s --\n", w.dataset.name.c_str());
  for (const Entry& e : entries) {
    std::vector<double> d12, d23, d13;
    for (const Triple& t : triples) {
      d12.push_back(PredictOrdered(e.model, t.g1, t.g2).ged);
      d23.push_back(PredictOrdered(e.model, t.g2, t.g3).ged);
      d13.push_back(PredictOrdered(e.model, t.g1, t.g3).ged);
    }
    std::printf("  %-10s triangle preserved: %5.1f%%\n", e.name,
                100 * TriangleInequalityRate(d12, d23, d13));
  }
}

}  // namespace

int main() {
  std::printf("== Figure 14: triangle-inequality preservation ==\n");
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  return 0;
}
