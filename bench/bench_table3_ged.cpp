/// \file bench_table3_ged.cpp
/// \brief Reproduces Table 3: GED-computation quality of all nine methods
/// (learning-based: SimGNN, GPN, TaGSim, GEDGNN, GEDIOT; non-learning:
/// Classic, GEDGW; hybrid: Noah stand-in, GEDHOT) on the three datasets.
///
/// Expected shape (paper): GEDIOT beats all learned baselines on MAE and
/// ranking; GEDGW crushes Classic among non-learning methods; GEDHOT is
/// best overall; Classic/GEDGW/Noah have 100% feasibility.
#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind);
  const int labels = w.dataset.num_labels;
  TrainOptions topt = BenchTrain();

  SimgnnConfig sim_cfg;
  sim_cfg.trunk = BenchTrunk(labels);
  SimgnnModel simgnn(sim_cfg);
  TrainOrLoad(&simgnn, w.dataset.name, w.pairs.train, topt);

  GpnConfig gpn_cfg;
  gpn_cfg.trunk = BenchTrunk(labels);
  GpnModel gpn(gpn_cfg);
  TrainOrLoad(&gpn, w.dataset.name, w.pairs.train, topt);

  TagsimConfig tag_cfg;
  tag_cfg.trunk = BenchTrunk(labels);
  TagsimModel tagsim(tag_cfg);
  TrainOrLoad(&tagsim, w.dataset.name, w.pairs.train, topt);

  GedgnnConfig gnn_cfg;
  gnn_cfg.trunk = BenchTrunk(labels);
  GedgnnModel gedgnn(gnn_cfg);
  TrainOrLoad(&gedgnn, w.dataset.name, w.pairs.train, topt);

  GediotConfig iot_cfg;
  iot_cfg.trunk = BenchTrunk(labels);
  GediotModel gediot(iot_cfg);
  TrainOrLoad(&gediot, w.dataset.name, w.pairs.train, topt);

  GedgwSolver gedgw;
  GedhotModel gedhot(&gediot, &gedgw);

  std::vector<GedRow> rows;
  rows.push_back(EvaluateGed("SimGNN", GedFnFromModel(&simgnn), w.pairs.test));
  rows.push_back(EvaluateGed("GPN", GedFnFromModel(&gpn), w.pairs.test));
  rows.push_back(EvaluateGed("TaGSim", GedFnFromModel(&tagsim), w.pairs.test));
  rows.push_back(EvaluateGed("GEDGNN", GedFnFromModel(&gedgnn), w.pairs.test));
  rows.push_back(EvaluateGed("GEDIOT", GedFnFromModel(&gediot), w.pairs.test));
  rows.push_back(EvaluateGed("Classic", ClassicFn(), w.pairs.test));
  rows.push_back(EvaluateGed("GEDGW", GedFnFromModel(&gedgw), w.pairs.test));
  rows.push_back(EvaluateGed("Noah", NoahFn(&gpn), w.pairs.test));
  rows.push_back(EvaluateGed("GEDHOT", GedhotFn(&gedhot), w.pairs.test));
  PrintGedTable("Table 3 (" + w.dataset.name + "): GED computation", rows);
}

}  // namespace

int main() {
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  RunDataset(DatasetKind::kImdb);
  return 0;
}
