/// \file bench_search_throughput.cpp
/// \brief Serving benchmark for the filter–verify search engine.
///
/// Five sections:
///   1. PRUNING    — range queries over a power-law corpus; reports the
///                   fraction of candidate pairs dismissed by the
///                   invariant + BRANCH tiers, i.e. before any OT or
///                   exact solver call (target: >= 50%).
///   2. CORRECTNESS— range results on a small AIDS-like corpus compared
///                   pair-by-pair against brute-force exact GED.
///   3. THROUGHPUT — queries/second for 1, 2 and 4 worker threads over
///                   the same power-law corpus.
///   4. BATCHING   — the same query set served as Q sequential Range
///                   calls vs one RangeBatch (a single flattened pool
///                   pass); reports the amortization speedup.
///   5. WARM CACHE — the query set served twice on one engine; the
///                   second pass answers proven-exact pairs from the
///                   bound cache, reporting hit counts and speedup.
///   7. PARALLEL EXACT — an exact-heavy workload (unlabeled near-
///                   duplicate corpus, OT tier off so bound gaps land in
///                   tier 4) served by engines with
///                   `parallel_exact_threads` 0 vs 4. Hits must be
///                   byte-identical (hard gate: the parallel verifier
///                   proves the same distances); the p99 speedup is
///                   reported, PASS at >= 2x only on machines with >= 4
///                   hardware threads (informational WARN below that —
///                   a single-core host cannot show a real speedup).
///   6. SLO        — per-query latency distribution under a serving loop
///                   with an explicit repeat mix: a cold phase serves
///                   every SLO query once (filling the bound cache),
///                   then a warm phase serves a stream in which each
///                   entry repeats an earlier query with probability
///                   ~0.5 (the realized repeat ratio is reported — a
///                   cache-hit rate is meaningless without it). Warm
///                   hit rate and lookup counts come from the
///                   otged_bound_cache_{hits,misses}_total counter
///                   deltas across the warm phase. Reports QPS and
///                   p50/p95/p99 latency over both phases and persists
///                   the run as `BENCH_search.json` (schema in
///                   src/telemetry/bench_report.hpp), the
///                   perf-trajectory record re-anchors diff across
///                   commits.
///
/// The default corpus is 2,000 generator-seeded graphs (1,960 random
/// power-law + 5 perturbed variants of each of the 8 queries), all
/// deterministic in the seed.
///
/// Flags: --smoke  shrink corpus/query counts for CI smoke runs
///        --out P  write the bench report to P (default BENCH_search.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exact/branch_and_bound.hpp"
#include "graph/generator.hpp"
#include "heuristics/bipartite.hpp"
#include "search/query_engine.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/metrics.hpp"

using namespace otged;

namespace {

int ExactGed(const Graph& a, const Graph& b) {
  auto [g1, g2] = OrderBySize(a, b);
  BnbOptions opt;
  opt.initial_upper_bound = ClassicGed(*g1, *g2).ged;
  return BranchAndBoundGed(*g1, *g2, opt).ged;
}

GraphStore PowerLawStore(int count, Rng* rng) {
  GraphStore store;
  for (int i = 0; i < count; ++i)
    store.Add(PowerLawGraph(rng->UniformInt(10, 32), rng->UniformInt(1, 3),
                            rng));
  return store;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_search.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc)
      out_path = argv[++a];
  }
  const int corpus_n = smoke ? 40 : 1960;
  const int num_queries = smoke ? 4 : 8;
  const int variants_per_query = smoke ? 2 : 5;
  const int slo_queries = smoke ? 4 : 16;
  const int warm_stream_n = smoke ? 8 : 32;

  // ---------------------------------------------------------- 1. pruning
  Rng rng(7);
  std::vector<Graph> queries;
  for (int q = 0; q < num_queries; ++q)
    queries.push_back(PowerLawGraph(rng.UniformInt(12, 28), 2, &rng));
  // Corpus: random power-law graphs plus a few perturbed variants of each
  // query, so range queries have true neighbors to find.
  GraphStore store = PowerLawStore(corpus_n, &rng);
  for (const Graph& q : queries) {
    for (int v = 0; v < variants_per_query; ++v) {
      SyntheticEditOptions sopt;
      sopt.num_edits = 1 + v;
      sopt.allow_relabel = false;
      store.Add(SyntheticEditPair(q, sopt, &rng).g2);
    }
  }

  EngineOptions opt;
  opt.cascade.exact_budget = 200'000;
  QueryEngine engine(&store, opt);

  const int tau = 4;
  std::printf("== pruning: %d range queries (tau=%d) over %d power-law "
              "graphs ==\n",
              static_cast<int>(queries.size()), tau, store.Size());
  CascadeStats total;
  for (const RangeResult& res : engine.RangeBatch(queries, tau))
    total.Merge(res.stats.cascade);
  std::printf(
      "  %ld candidate pairs: %ld index-pruned, %ld invariant-pruned, "
      "%ld branch-pruned, %ld heuristic-decided, %ld ot-decided, "
      "%ld exact-decided (%ld kept unproven on budget exhaustion)\n",
      total.candidates, total.pruned_index, total.pruned_invariant,
      total.pruned_branch, total.decided_heuristic, total.decided_ot,
      total.decided_exact, total.exact_incomplete);
  double pruned = total.PrunedBeforeSolvers();
  std::printf("  pruned before any OT/exact solver call: %.1f%%  [%s]\n\n",
              100.0 * pruned, pruned >= 0.5 ? "PASS >=50%" : "FAIL <50%");

  // ------------------------------------------------------ 2. correctness
  Rng crng(21);
  GraphStore small;
  for (int i = 0; i < 60; ++i) small.Add(AidsLikeGraph(&crng, 4, 9));
  QueryEngine verifier(&small, {});
  long checked = 0, mismatched = 0;
  for (int q = 0; q < 4; ++q) {
    Graph query = AidsLikeGraph(&crng, 4, 9);
    for (int t : {1, 2, 3}) {
      RangeResult res = verifier.Range(query, t);
      std::vector<int> got;
      for (const RangeHit& h : res.hits) got.push_back(h.id);
      std::vector<int> expected;
      for (int id = 0; id < small.Size(); ++id)
        if (ExactGed(query, small.graph(id)) <= t) expected.push_back(id);
      checked += small.Size();
      if (got != expected) ++mismatched;
    }
  }
  std::printf("== correctness: %ld brute-force-verified pairs, %ld "
              "mismatched query results  [%s] ==\n\n",
              checked, mismatched, mismatched == 0 ? "PASS" : "FAIL");

  // ------------------------------------------------------- 3. throughput
  std::printf("== throughput: same corpus, range tau=%d ==\n", tau);
  for (int threads : {1, 2, 4}) {
    EngineOptions topt = opt;
    topt.num_threads = threads;
    QueryEngine te(&store, topt);
    auto start = std::chrono::steady_clock::now();
    std::vector<RangeResult> results = te.RangeBatch(queries, tau);
    double sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    long hits = 0;
    for (const RangeResult& r : results) hits += r.hits.size();
    std::printf("  %d thread(s): %6.2f queries/s  (%zu queries, %ld hits, "
                "%.2f s)\n",
                threads, static_cast<double>(queries.size()) / sec,
                queries.size(), hits, sec);
  }

  // -------------------------------------------- 4. batch amortization
  // One flattened (query x candidate) pool pass vs sequential per-query
  // passes: the batch overlaps one query's straggler pairs with other
  // queries' work instead of idling workers at per-query barriers. Fresh
  // engines per run keep the bound cache cold so only batching differs.
  std::printf("\n== batch amortization: %zu range queries, tau=%d, 4 "
              "threads ==\n",
              queries.size(), tau);
  {
    EngineOptions bopt = opt;
    bopt.num_threads = 4;
    auto time_run = [&](auto&& serve) {
      auto start = std::chrono::steady_clock::now();
      serve();
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    QueryEngine seq_engine(&store, bopt);
    double seq_s = time_run([&] {
      for (const Graph& q : queries) seq_engine.Range(q, tau);
    });
    QueryEngine batch_engine(&store, bopt);
    double batch_s =
        time_run([&] { batch_engine.RangeBatch(queries, tau); });
    std::printf("  sequential: %.3f s | batched: %.3f s | speedup %.2fx  "
                "[%s]\n",
                seq_s, batch_s, seq_s / batch_s,
                batch_s < seq_s ? "PASS batched faster" : "FAIL");
  }

  // ------------------------------------------------- 5. warm bound cache
  std::printf("\n== warm cache: same %zu queries twice on one engine ==\n",
              queries.size());
  {
    EngineOptions wopt = opt;
    wopt.num_threads = 4;
    QueryEngine engine2(&store, wopt);
    double pass_sec[2] = {0.0, 0.0};
    for (int pass = 0; pass < 2; ++pass) {
      auto start = std::chrono::steady_clock::now();
      std::vector<RangeResult> results = engine2.RangeBatch(queries, tau);
      pass_sec[pass] = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      CascadeStats pass_total;
      for (const RangeResult& r : results)
        pass_total.Merge(r.stats.cascade);
      std::printf("  pass %d: %.3f s | %ld cache hits / %ld candidates | "
                  "%ld OT calls, %ld exact calls | %zu pairs cached\n",
                  pass, pass_sec[pass], pass_total.cache_hits,
                  pass_total.candidates, pass_total.ot_calls,
                  pass_total.exact_calls, engine2.CacheSize());
    }
    std::printf("  warm speedup: %.2fx  [%s]\n",
                pass_sec[0] / pass_sec[1],
                pass_sec[1] < pass_sec[0] ? "PASS warm faster" : "FAIL");
  }

  // ------------------------------------------------ 6. SLO / perf record
  // Per-query latency distribution under a serving loop with an
  // explicit repeat mix. A cache-hit rate is only meaningful relative
  // to how often the workload actually repeats a query, so the warm
  // phase draws a stream in which each entry is, with probability
  // ~0.5, a verbatim repeat of an already-served query (fresh
  // otherwise), and both the realized repeat ratio and the bound-cache
  // hit rate measured across exactly that phase (via the
  // otged_bound_cache_{hits,misses}_total counter deltas) go into the
  // record. Each query's own wall_ms is a latency sample; QPS is
  // measured over both phases. The run is persisted as a BENCH_*.json
  // record so the perf trajectory accumulates in git history.
  std::printf("\n== SLO: %d cold + %d warm (repeat-mix) range queries, "
              "tau=%d, 4 threads ==\n",
              slo_queries, warm_stream_n, tau);
  {
    Rng srng(97);
    std::vector<Graph> served;  // pool of queries already seen once
    for (int q = 0; q < slo_queries; ++q)
      served.push_back(PowerLawGraph(srng.UniformInt(12, 28), 2, &srng));
    EngineOptions sopt = opt;
    sopt.num_threads = 4;
    QueryEngine slo_engine(&store, sopt);
    std::vector<double> latencies_ms;
    CascadeStats slo_total;
    auto start = std::chrono::steady_clock::now();
    // Cold phase: every query served once, filling the bound cache.
    for (const Graph& q : served) {
      RangeResult res = slo_engine.Range(q, tau);
      latencies_ms.push_back(res.stats.wall_ms);
      slo_total.Merge(res.stats.cascade);
    }
    // Warm phase: repeat an earlier query with probability 1/2.
    const auto before = telemetry::Registry().Snapshot();
    int repeats = 0;
    for (int i = 0; i < warm_stream_n; ++i) {
      Graph q;
      if (srng.UniformInt(0, 1) == 0) {
        ++repeats;
        q = served[static_cast<size_t>(
            srng.UniformInt(0, static_cast<int>(served.size()) - 1))];
      } else {
        q = PowerLawGraph(srng.UniformInt(12, 28), 2, &srng);
        served.push_back(q);
      }
      RangeResult res = slo_engine.Range(q, tau);
      latencies_ms.push_back(res.stats.wall_ms);
      slo_total.Merge(res.stats.cascade);
    }
    const auto after = telemetry::Registry().Snapshot();
    const long warm_hits =
        after.CounterValue("otged_bound_cache_hits_total") -
        before.CounterValue("otged_bound_cache_hits_total");
    const long warm_misses =
        after.CounterValue("otged_bound_cache_misses_total") -
        before.CounterValue("otged_bound_cache_misses_total");
    const long warm_lookups = warm_hits + warm_misses;
    double sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();

    telemetry::BenchReport report;
    report.bench = "bench_search_throughput";
    report.threads = 4;
    report.corpus_size = store.Size();
    report.num_queries = static_cast<int>(latencies_ms.size());
    report.qps = static_cast<double>(latencies_ms.size()) / sec;
    report.p50_ms = telemetry::PercentileOf(latencies_ms, 0.50);
    report.p95_ms = telemetry::PercentileOf(latencies_ms, 0.95);
    report.p99_ms = telemetry::PercentileOf(latencies_ms, 0.99);
    const double cand = static_cast<double>(
        slo_total.candidates > 0 ? slo_total.candidates : 1);
    report.tier_fractions[0] =
        static_cast<double>(slo_total.pruned_invariant +
                            slo_total.passed_invariant) /
        cand;
    report.tier_fractions[1] =
        static_cast<double>(slo_total.pruned_branch) / cand;
    report.tier_fractions[2] =
        static_cast<double>(slo_total.decided_heuristic) / cand;
    report.tier_fractions[3] = static_cast<double>(slo_total.decided_ot) / cand;
    report.tier_fractions[4] =
        static_cast<double>(slo_total.decided_exact) / cand;
    report.tier_fractions[5] = static_cast<double>(slo_total.cache_hits) / cand;
    report.tier_fractions[6] =
        static_cast<double>(slo_total.pruned_index) / cand;
    report.cache_hit_rate = static_cast<double>(slo_total.cache_hits) / cand;
    report.has_cache = true;
    report.cache_repeat_ratio =
        static_cast<double>(repeats) / static_cast<double>(warm_stream_n);
    report.cache_warm_hit_rate =
        warm_lookups > 0
            ? static_cast<double>(warm_hits) / static_cast<double>(warm_lookups)
            : 0.0;
    report.cache_warm_lookups = warm_lookups;

    std::printf("  %.2f queries/s | latency p50 %.2f ms, p95 %.2f ms, "
                "p99 %.2f ms\n",
                report.qps, report.p50_ms, report.p95_ms, report.p99_ms);
    std::printf("  warm phase: repeat ratio %.2f | %ld cache lookups, "
                "hit rate %.1f%%  [%s]\n",
                report.cache_repeat_ratio, warm_lookups,
                100.0 * report.cache_warm_hit_rate,
                report.cache_warm_hit_rate > 0.05
                    ? "PASS warm hits"
                    : "WARN warm hit rate low");
    std::string error;
    if (!telemetry::WriteBenchJson(report, out_path, &error)) {
      std::printf("  FAILED to write %s: %s\n", out_path.c_str(),
                  error.c_str());
      return 1;
    }
    std::printf("  perf record written to %s\n", out_path.c_str());
  }

  // -------------------------------------------- 7. parallel exact verify
  // Exact-heavy workload: unlabeled near-duplicates keep the invariant
  // and label bounds weak, and with the OT tier off every bound gap must
  // be settled by tier-4 branch and bound. Hits are a hard equality
  // gate — the deterministic parallel verifier proves the same distances
  // as the sequential solver — while the p99 speedup is hardware-bound:
  // it can only PASS on a machine with >= 4 hardware threads.
  std::printf("\n== parallel exact verify: exact-heavy workload, "
              "parallel_exact_threads 0 vs 4 ==\n");
  {
    Rng prng(131);
    const int hard_queries_n = smoke ? 3 : 6;
    const int dups_per_query = smoke ? 3 : 8;
    const int hard_tau = 4;
    GraphStore hard;
    std::vector<Graph> hard_queries;
    for (int q = 0; q < hard_queries_n; ++q) {
      Graph base = LinuxLikeGraph(&prng, 8, 10);
      hard_queries.push_back(base);
      for (int v = 0; v < dups_per_query; ++v) {
        SyntheticEditOptions sopt;
        sopt.num_edits = 1 + v % 4;
        sopt.allow_relabel = false;
        hard.Add(SyntheticEditPair(base, sopt, &prng).g2);
      }
    }
    for (int i = 0; i < (smoke ? 10 : 40); ++i)
      hard.Add(LinuxLikeGraph(&prng, 7, 10));

    EngineOptions hopt;
    hopt.num_threads = 2;
    hopt.cascade.use_ot_verify = false;
    hopt.cascade.exact_budget = 2'000'000;
    const auto serve = [&](int exact_threads,
                           std::vector<std::vector<RangeHit>>* hits,
                           std::vector<double>* lat, CascadeStats* sum) {
      EngineOptions eopt = hopt;
      eopt.cascade.parallel_exact_threads = exact_threads;
      QueryEngine e(&hard, eopt);
      for (const Graph& q : hard_queries) {
        RangeResult res = e.Range(q, hard_tau);
        hits->push_back(res.hits);
        lat->push_back(res.stats.wall_ms);
        sum->Merge(res.stats.cascade);
      }
    };
    std::vector<std::vector<RangeHit>> seq_hits, par_hits;
    std::vector<double> seq_lat, par_lat;
    CascadeStats seq_sum, par_sum;
    serve(0, &seq_hits, &seq_lat, &seq_sum);
    serve(4, &par_hits, &par_lat, &par_sum);

    bool identical = seq_hits.size() == par_hits.size();
    for (size_t q = 0; identical && q < seq_hits.size(); ++q) {
      identical = seq_hits[q].size() == par_hits[q].size();
      for (size_t i = 0; identical && i < seq_hits[q].size(); ++i)
        identical = seq_hits[q][i].id == par_hits[q][i].id &&
                    seq_hits[q][i].ged == par_hits[q][i].ged &&
                    seq_hits[q][i].exact_distance ==
                        par_hits[q][i].exact_distance;
    }
    std::printf("  workload: %zu queries x %d graphs | %ld exact calls "
                "(%ld starved) | %ld parallel runs, %ld subtrees\n",
                hard_queries.size(), hard.Size(), par_sum.exact_calls,
                par_sum.exact_incomplete, par_sum.exact_parallel_runs,
                par_sum.exact_parallel_subtrees);
    std::printf("  hit equality (id, ged, exact flag): [%s]\n",
                identical ? "PASS byte-identical" : "FAIL");
    const double seq_p99 = telemetry::PercentileOf(seq_lat, 0.99);
    const double par_p99 = telemetry::PercentileOf(par_lat, 0.99);
    const double speedup = par_p99 > 0.0 ? seq_p99 / par_p99 : 0.0;
    const unsigned hw = std::thread::hardware_concurrency();
    const char* verdict = hw >= 4
                              ? (speedup >= 2.0 ? "PASS >=2x"
                                                : "WARN <2x on >=4 cores")
                              : "WARN <4 hardware threads, speedup not "
                                "measurable";
    std::printf("  p99 latency: sequential %.2f ms | parallel %.2f ms | "
                "speedup %.2fx  [%s]\n",
                seq_p99, par_p99, speedup, verdict);
    if (!identical) return 1;  // hard gate: determinism before speed
  }
  return 0;
}
