/// \file bench_fig15_exact_time.cpp
/// \brief Reproduces Figure 15: running time of exact GED engines vs
/// GEDIOT as graph size (n = 20, 30, 40) and GED (Δ = 5..11) grow.
/// Our exact engines (A* and DFS branch-and-bound) stand in for
/// AStar-BMao / Nass (DESIGN.md §3, substitution 4). Expected shape:
/// exact time explodes with n and Δ (some configurations exhaust their
/// budget, marked ">"), while GEDIOT stays flat (O(n^2) inference).
#include <chrono>

#include "bench_common.hpp"
#include "exact/branch_and_bound.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

using Clock = std::chrono::steady_clock;

double TimeIt(const std::function<void()>& fn) {
  auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("== Figure 15: exact engines vs GEDIOT, sec/100 pairs ==\n");

  // Train GEDIOT once on mixed-size power-law pairs.
  Rng rng(2024);
  std::vector<GedPair> train;
  for (int i = 0; i < 300; ++i) {
    Graph g = PowerLawGraph(rng.UniformInt(15, 45), 2, &rng);
    SyntheticEditOptions opt;
    opt.num_edits = rng.UniformInt(3, 11);
    opt.num_labels = 1;
    opt.allow_relabel = false;
    train.push_back(SyntheticEditPair(g, opt, &rng));
  }
  GediotConfig cfg;
  cfg.trunk = BenchTrunk(1);
  GediotModel gediot(cfg);
  TrainOrLoad(&gediot, "fig15-powerlaw", train, BenchTrain(6));

  std::printf("%-4s %-5s %14s %14s %14s\n", "n", "GED", "A*", "BnB",
              "GEDIOT");
  const int pairs_per_cell = 3;
  for (int n : {20, 30, 40}) {
    for (int delta : {5, 7, 9, 11}) {
      std::vector<GedPair> cell;
      for (int i = 0; i < pairs_per_cell; ++i) {
        Graph g = PowerLawGraph(n, 2, &rng);
        SyntheticEditOptions opt;
        opt.num_edits = delta;
        opt.num_labels = 1;
        opt.allow_relabel = false;
        cell.push_back(SyntheticEditPair(g, opt, &rng));
      }
      bool astar_capped = false, bnb_capped = false;
      double t_astar = TimeIt([&] {
        for (const GedPair& p : cell) {
          AstarOptions opt;
          opt.max_expansions = 100000;
          auto r = AstarGed(p.g1, p.g2, opt);
          if (!r.has_value()) astar_capped = true;
        }
      });
      double t_bnb = TimeIt([&] {
        for (const GedPair& p : cell) {
          BnbOptions opt;
          opt.max_visits = 500000;
          opt.initial_upper_bound = p.ged;  // similarity-search-style bound
          GedSearchResult r = BranchAndBoundGed(p.g1, p.g2, opt);
          if (!r.exact) bnb_capped = true;
        }
      });
      double t_iot = TimeIt([&] {
        for (const GedPair& p : cell) gediot.Predict(p.g1, p.g2);
      });
      const double scale = 100.0 / pairs_per_cell;
      std::printf("%-4d %-5d %13.2f%s %13.2f%s %14.3f\n", n, delta,
                  t_astar * scale, astar_capped ? ">" : " ",
                  t_bnb * scale, bnb_capped ? ">" : " ", t_iot * scale);
    }
  }
  std::printf("('>' = expansion budget exhausted on at least one pair; the\n"
              " reported time is then a lower bound, as in the paper where\n"
              " some exact configurations failed to finish.)\n");
  return 0;
}
