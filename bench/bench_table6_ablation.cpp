/// \file bench_table6_ablation.cpp
/// \brief Reproduces Table 6: ablation of GEDIOT components on the
/// AIDS-like and LINUX-like datasets — GIN vs GCN trunk, removing the
/// final MLP, replacing the cost-matrix layer with a raw inner product,
/// and freezing the Sinkhorn regularization coefficient.
#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

GedRow RunVariant(const std::string& name, const Workload& w,
                  GediotConfig cfg) {
  GediotModel model(cfg);
  // Distinct cache entries per variant: fold the name into the "dataset".
  TrainOrLoad(&model, w.dataset.name + "_" + name, w.pairs.train,
              BenchTrain());
  GedRow row = EvaluateGed(name, GedFnFromModel(&model), w.pairs.test);
  return row;
}

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind);
  const int labels = w.dataset.num_labels;

  std::vector<GedRow> rows;
  GediotConfig base;
  base.trunk = BenchTrunk(labels);
  rows.push_back(RunVariant("GEDIOT", w, base));

  GediotConfig gcn = base;
  gcn.trunk.use_gcn = true;
  rows.push_back(RunVariant("w/ GCN", w, gcn));

  GediotConfig no_mlp = base;
  no_mlp.trunk.use_final_mlp = false;
  rows.push_back(RunVariant("w/o MLP", w, no_mlp));

  GediotConfig no_cost = base;
  no_cost.cost_inner_product = true;
  rows.push_back(RunVariant("w/o Cost", w, no_cost));

  GediotConfig fixed_eps = base;
  fixed_eps.learnable_eps = false;
  rows.push_back(RunVariant("w/o learn-eps", w, fixed_eps));

  PrintGedTable("Table 6 (" + w.dataset.name + "): GEDIOT ablation", rows);
}

}  // namespace

int main() {
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  return 0;
}
