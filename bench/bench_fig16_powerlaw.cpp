/// \file bench_fig16_powerlaw.cpp
/// \brief Reproduces Figure 16: relative GED error and running time on
/// large synthetic power-law graphs (n = 50, 100, 200, 400). Expected
/// shape: GEDGW / GEDHOT relative error near 0, GEDGNN large (~2);
/// approximate methods orders of magnitude faster than exact search.
#include <chrono>

#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

std::vector<GedPair> PowerLawPairs(int n, int count, Rng* rng) {
  std::vector<GedPair> out;
  for (int i = 0; i < count; ++i) {
    Graph g = PowerLawGraph(n, 2, rng);
    SyntheticEditOptions opt;
    opt.num_edits = rng->UniformInt(5, 15);
    opt.num_labels = 1;
    opt.allow_relabel = false;
    out.push_back(SyntheticEditPair(g, opt, rng));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Figure 16: power-law graphs, relative error & time ==\n");
  Rng rng(555);

  // Train the neural models on n=50 power-law pairs.
  std::vector<GedPair> train = PowerLawPairs(50, 250, &rng);
  GedgnnConfig gnn_cfg;
  gnn_cfg.trunk = BenchTrunk(1);
  GedgnnModel gedgnn(gnn_cfg);
  TrainOrLoad(&gedgnn, "fig16-powerlaw", train, BenchTrain(6));
  GediotConfig iot_cfg;
  iot_cfg.trunk = BenchTrunk(1);
  GediotModel gediot(iot_cfg);
  TrainOrLoad(&gediot, "fig16-powerlaw", train, BenchTrain(6));
  GedgwConfig gw_cfg;
  gw_cfg.cg_iters = 80;  // large graphs need a long CG schedule to align
  GedgwSolver gedgw(gw_cfg);
  GedhotModel gedhot(&gediot, &gedgw);

  std::printf("%-5s %-8s %14s %14s\n", "n", "method", "rel.err",
              "sec/100p");
  for (int n : {50, 100, 200, 400}) {
    int count = n <= 100 ? 8 : 4;
    std::vector<GedPair> pairs = PowerLawPairs(n, count, &rng);
    // As in the paper, the figure reports the methods *with the k-best
    // matching framework*: the coupling is rounded to its best matching
    // and the GED is the induced (feasible) edit-path length. A full
    // k-best split is cubic-per-candidate at n = 400, so we use the
    // k = 1 rounding here.
    auto path_ged = [](GedModel* model, const GedPair& p) {
      Prediction pred = model->Predict(p.g1, p.g2);
      AssignmentResult lap = SolveMaxWeightAssignment(pred.coupling);
      return EditCostFromMatching(p.g1, p.g2, lap.row_to_col);
    };
    struct Entry {
      const char* name;
      std::function<double(const GedPair&)> fn;
    };
    std::vector<Entry> entries;
    entries.push_back(
        {"GEDGNN", [&](const GedPair& p) { return path_ged(&gedgnn, p); }});
    entries.push_back(
        {"GEDIOT", [&](const GedPair& p) { return path_ged(&gediot, p); }});
    entries.push_back(
        {"GEDGW", [&](const GedPair& p) { return path_ged(&gedgw, p); }});
    entries.push_back({"GEDHOT", [&](const GedPair& p) {
                         return std::min(path_ged(&gediot, p),
                                         path_ged(&gedgw, p));
                       }});
    for (const Entry& e : entries) {
      double rel = 0;
      auto t0 = std::chrono::steady_clock::now();
      for (const GedPair& p : pairs) rel += (e.fn(p) - p.ged) / p.ged;
      double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double np = static_cast<double>(pairs.size());
      std::printf("%-5d %-8s %14.3f %14.2f\n", n, e.name, rel / np,
                  secs / np * 100);
    }
  }
  return 0;
}
