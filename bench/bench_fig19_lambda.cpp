/// \file bench_fig19_lambda.cpp
/// \brief Reproduces Figure 19: GEDIOT quality as the loss balance
/// lambda (value loss vs matching loss, Eq. 15) varies in 0.5..0.9.
/// Expected shape: quality improves with lambda and stabilizes ~0.8.
#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind, 100, 400, 4, 25);
  std::printf("-- %s --\n", w.dataset.name.c_str());
  std::printf("%-8s %10s %10s\n", "lambda", "MAE", "Acc");
  for (double lambda : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    GediotConfig cfg;
    cfg.trunk = BenchTrunk(w.dataset.num_labels);
    cfg.lambda = lambda;
    GediotModel model(cfg);
    TrainOrLoad(&model, w.dataset.name + "_lam" + std::to_string(lambda),
                w.pairs.train, BenchTrain(6));
    GedRow row = EvaluateGed("GEDIOT", GedFnFromModel(&model), w.pairs.test);
    std::printf("%-8.1f %10.3f %9.1f%%\n", lambda, row.mae,
                100 * row.accuracy);
  }
}

}  // namespace

int main() {
  std::printf("== Figure 19: varying lambda in the GEDIOT loss ==\n");
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  return 0;
}
