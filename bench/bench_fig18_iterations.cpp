/// \file bench_fig18_iterations.cpp
/// \brief Reproduces Figure 18: GEDIOT quality and inference time as the
/// number of unrolled Sinkhorn iterations varies (1, 5, 10, 15, 20).
/// Expected shape: quality improves then saturates around 10-15
/// iterations; time grows with the iteration count.
#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind, 100, 400, 4, 25);
  std::printf("-- %s --\n", w.dataset.name.c_str());
  std::printf("%-6s %10s %10s %12s\n", "iters", "MAE", "Acc", "sec/100p");
  for (int iters : {1, 5, 10, 15, 20}) {
    GediotConfig cfg;
    cfg.trunk = BenchTrunk(w.dataset.num_labels);
    cfg.sinkhorn_iters = iters;
    GediotModel model(cfg);
    TrainOrLoad(&model, w.dataset.name + "_it" + std::to_string(iters),
                w.pairs.train, BenchTrain(6));
    GedRow row = EvaluateGed("GEDIOT", GedFnFromModel(&model), w.pairs.test);
    std::printf("%-6d %10.3f %9.1f%% %12.3f\n", iters, row.mae,
                100 * row.accuracy, row.sec_per_100p);
  }
}

}  // namespace

int main() {
  std::printf("== Figure 18: varying Sinkhorn iterations in GEDIOT ==\n");
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  return 0;
}
