/// \file bench_fig21_kbest.cpp
/// \brief Reproduces Figure 21: GEP quality and time as k in the k-best
/// matching framework grows (1..48), for GEDIOT, GEDGW, and GEDHOT on
/// AIDS-like and LINUX-like data. Expected shape: MAE decreases and
/// accuracy increases monotonically-ish with k; time grows with k.
#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind, 100, 500, 3, 20);
  GediotConfig cfg;
  cfg.trunk = BenchTrunk(w.dataset.num_labels);
  GediotModel gediot(cfg);
  TrainOrLoad(&gediot, w.dataset.name, w.pairs.train, BenchTrain(6));
  GedgwSolver gedgw;
  GedhotModel gedhot(&gediot, &gedgw);

  std::printf("-- %s --\n", w.dataset.name.c_str());
  std::printf("%-4s %-8s %10s %10s %12s\n", "k", "method", "MAE", "Acc",
              "sec/100p");
  for (int k : {1, 4, 12, 24, 48}) {
    struct Entry {
      const char* name;
      GepFn fn;
    };
    std::vector<Entry> methods;
    methods.push_back({"GEDIOT", GepFnFromModel(&gediot, k)});
    methods.push_back({"GEDGW", GepFnFromModel(&gedgw, k)});
    methods.push_back({"GEDHOT", GedhotGepFn(&gedhot, k)});
    for (auto& m : methods) {
      GepRow row = EvaluateGep(m.name, m.fn, w.pairs.test);
      std::printf("%-4d %-8s %10.3f %9.1f%% %12.3f\n", k, m.name, row.mae,
                  100 * row.accuracy, row.sec_per_100p);
    }
  }
}

}  // namespace

int main() {
  std::printf("== Figure 21: varying k in k-best matching ==\n");
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  return 0;
}
