/// \file bench_table5_unseen.cpp
/// \brief Reproduces Table 5: GED computation on *unseen* graph pairs.
/// The paper re-samples test pairs so both graphs are unseen in training;
/// here the query groups are built around freshly generated graphs (a
/// disjoint seed), so neither endpoint distribution was seen. The five
/// learned methods are evaluated with the same trained weights as the
/// Table 3 bench (cache-shared). Expected shape: all methods degrade
/// slightly vs Table 3; GEDIOT stays clearly ahead of GEDGNN.
#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

namespace {

std::vector<QueryGroup> UnseenGroups(DatasetKind kind, int num_labels,
                                     int queries, int per_query) {
  Rng rng(0xDEADBEEF);  // disjoint from every training seed
  std::vector<QueryGroup> groups;
  for (int q = 0; q < queries; ++q) {
    QueryGroup group;
    if (kind == DatasetKind::kImdb) {
      // Large graphs: synthetic-edit ground truth, as in training.
      Graph g = ImdbLikeGraph(&rng, 7, 36);
      group = MakeQueryGroup(g, per_query, 8, num_labels, &rng);
    } else {
      // Small graphs: arbitrary unseen pairs with exact ground truth,
      // matching the arbitrary-pair training protocol.
      auto fresh = [&] {
        return kind == DatasetKind::kAids ? AidsLikeGraph(&rng)
                                          : LinuxLikeGraph(&rng);
      };
      Graph query = fresh();
      for (int p = 0; p < per_query; ++p)
        group.pairs.push_back(MakeExactPair(query, fresh()));
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

void RunDataset(DatasetKind kind) {
  Workload w = MakeWorkload(kind);
  const int labels = w.dataset.num_labels;
  TrainOptions topt = BenchTrain();

  SimgnnConfig sim_cfg;
  sim_cfg.trunk = BenchTrunk(labels);
  SimgnnModel simgnn(sim_cfg);
  TrainOrLoad(&simgnn, w.dataset.name, w.pairs.train, topt);

  GpnConfig gpn_cfg;
  gpn_cfg.trunk = BenchTrunk(labels);
  GpnModel gpn(gpn_cfg);
  TrainOrLoad(&gpn, w.dataset.name, w.pairs.train, topt);

  TagsimConfig tag_cfg;
  tag_cfg.trunk = BenchTrunk(labels);
  TagsimModel tagsim(tag_cfg);
  TrainOrLoad(&tagsim, w.dataset.name, w.pairs.train, topt);

  GedgnnConfig gnn_cfg;
  gnn_cfg.trunk = BenchTrunk(labels);
  GedgnnModel gedgnn(gnn_cfg);
  TrainOrLoad(&gedgnn, w.dataset.name, w.pairs.train, topt);

  GediotConfig iot_cfg;
  iot_cfg.trunk = BenchTrunk(labels);
  GediotModel gediot(iot_cfg);
  TrainOrLoad(&gediot, w.dataset.name, w.pairs.train, topt);

  auto groups = UnseenGroups(kind, labels, 6, 30);
  std::vector<GedRow> rows;
  rows.push_back(EvaluateGed("SimGNN", GedFnFromModel(&simgnn), groups));
  rows.push_back(EvaluateGed("GPN", GedFnFromModel(&gpn), groups));
  rows.push_back(EvaluateGed("TaGSim", GedFnFromModel(&tagsim), groups));
  rows.push_back(EvaluateGed("GEDGNN", GedFnFromModel(&gedgnn), groups));
  rows.push_back(EvaluateGed("GEDIOT", GedFnFromModel(&gediot), groups));
  PrintGedTable("Table 5 (" + w.dataset.name + "): unseen graph pairs",
                rows);
}

}  // namespace

int main() {
  RunDataset(DatasetKind::kAids);
  RunDataset(DatasetKind::kLinux);
  RunDataset(DatasetKind::kImdb);
  return 0;
}
