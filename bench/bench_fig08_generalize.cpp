/// \file bench_fig08_generalize.cpp
/// \brief Reproduces Figure 8: generalization to large unseen graphs on
/// the IMDB-like dataset. Models with the "-small" suffix are trained
/// only on pairs of small graphs (<= 10 nodes) and tested on pairs of
/// large graphs (> 10 nodes). Expected shape: "-small" models degrade;
/// GEDIOT-small/GEDHOT-small stay ahead of GEDGNN-small; unsupervised
/// GEDGW is unaffected (highest accuracy).
#include <algorithm>

#include "bench_common.hpp"

using namespace otged;
using namespace otged::bench;

int main() {
  Workload w = MakeWorkload(DatasetKind::kImdb, 150, 800, 5, 25);

  // Small-graph-only training subset.
  std::vector<GedPair> small_train;
  for (const GedPair& p : w.pairs.train)
    if (p.g2.NumNodes() <= 10) small_train.push_back(p);
  std::fprintf(stderr, "[fig8] %zu/%zu training pairs are small\n",
               small_train.size(), w.pairs.train.size());

  // Large-graph-only test groups.
  Rng rng(314);
  std::vector<QueryGroup> large_test;
  for (int q = 0; q < 5; ++q) {
    Graph g = ImdbLikeGraph(&rng, 12, 36);
    large_test.push_back(MakeQueryGroup(g, 25, 8, 1, &rng));
  }

  TrainOptions topt = BenchTrain();
  const int labels = 1;

  GedgnnConfig gnn_cfg;
  gnn_cfg.trunk = BenchTrunk(labels);
  GedgnnModel gedgnn_full(gnn_cfg), gedgnn_small(gnn_cfg);
  TrainOrLoad(&gedgnn_full, "IMDB-fig8-full", w.pairs.train, topt);
  TrainOrLoad(&gedgnn_small, "IMDB-fig8-small", small_train, topt);

  GediotConfig iot_cfg;
  iot_cfg.trunk = BenchTrunk(labels);
  GediotModel gediot_full(iot_cfg), gediot_small(iot_cfg);
  TrainOrLoad(&gediot_full, "IMDB-fig8-full", w.pairs.train, topt);
  TrainOrLoad(&gediot_small, "IMDB-fig8-small", small_train, topt);

  GedgwSolver gedgw;
  GedhotModel gedhot_full(&gediot_full, &gedgw);
  GedhotModel gedhot_small(&gediot_small, &gedgw);

  std::vector<GedRow> rows;
  rows.push_back(
      EvaluateGed("GEDGNN", GedFnFromModel(&gedgnn_full), large_test));
  rows.push_back(
      EvaluateGed("GEDIOT", GedFnFromModel(&gediot_full), large_test));
  rows.push_back(EvaluateGed("GEDHOT", GedhotFn(&gedhot_full), large_test));
  rows.push_back(
      EvaluateGed("GEDGNN-small", GedFnFromModel(&gedgnn_small), large_test));
  rows.push_back(
      EvaluateGed("GEDIOT-small", GedFnFromModel(&gediot_small), large_test));
  rows.push_back(
      EvaluateGed("GEDHOT-small", GedhotFn(&gedhot_small), large_test));
  rows.push_back(EvaluateGed("Classic", ClassicFn(), large_test));
  rows.push_back(EvaluateGed("GEDGW", GedFnFromModel(&gedgw), large_test));
  PrintGedTable("Figure 8 (IMDB-like): generalization to large graphs",
                rows);
  return 0;
}
