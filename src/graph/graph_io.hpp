/// \file graph_io.hpp
/// \brief Plain-text graph (de)serialization and corpus I/O, so users can
/// run otged on their own data (and so the CLI example has a format).
///
/// Format (one graph):
///   t <num_nodes> <num_edges>
///   v <id> <label>            (num_nodes lines, ids 0..n-1)
///   e <u> <v> [edge_label]    (num_edges lines)
/// A corpus file is a concatenation of graphs.
#ifndef OTGED_GRAPH_GRAPH_IO_HPP_
#define OTGED_GRAPH_GRAPH_IO_HPP_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace otged {

/// Writes one graph in the `t/v/e` format.
void WriteGraph(std::ostream& out, const Graph& g);

/// Reads one graph; returns nullopt at end-of-stream. Malformed input is
/// reported via the optional `error` string (nullopt returned).
std::optional<Graph> ReadGraph(std::istream& in, std::string* error = nullptr);

/// Whole-corpus helpers. Load returns an empty vector + error on failure.
bool SaveGraphs(const std::string& path, const std::vector<Graph>& graphs);
std::vector<Graph> LoadGraphs(const std::string& path,
                              std::string* error = nullptr);

}  // namespace otged

#endif  // OTGED_GRAPH_GRAPH_IO_HPP_
