/// \file graph_io.hpp
/// \brief Graph (de)serialization and corpus I/O, so users can run otged
/// on their own data (and so the CLI example has a format).
///
/// Text format (one graph):
///   t <num_nodes> <num_edges>
///   v <id> <label>            (num_nodes lines, ids 0..n-1)
///   e <u> <v> [edge_label]    (num_edges lines)
/// A corpus file is a concatenation of graphs.
///
/// The binary encoding (AppendGraphBinary/DecodeGraphBinary) is the
/// building block of the GraphStore persistence format and of the
/// content fingerprint the query bound cache keys on: it is canonical —
/// two graphs encode to the same bytes iff they are node-identity equal.
#ifndef OTGED_GRAPH_GRAPH_IO_HPP_
#define OTGED_GRAPH_GRAPH_IO_HPP_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace otged {

/// Writes one graph in the `t/v/e` format.
void WriteGraph(std::ostream& out, const Graph& g);

/// Reads one graph; returns nullopt at end-of-stream. Malformed input is
/// reported via the optional `error` string (nullopt returned).
std::optional<Graph> ReadGraph(std::istream& in, std::string* error = nullptr);

/// Whole-corpus helpers. Load returns an empty vector + error on failure.
bool SaveGraphs(const std::string& path, const std::vector<Graph>& graphs);
std::vector<Graph> LoadGraphs(const std::string& path,
                              std::string* error = nullptr);

/// Appends the canonical binary encoding of `g` to `buf`: int32 n, m;
/// n int32 node labels; m edges as int32 (u, v, edge_label) with u < v,
/// ascending (u, v). Little-endian fixed-width fields.
void AppendGraphBinary(std::string* buf, const Graph& g);

/// Decodes one graph written by AppendGraphBinary, starting at *offset
/// into `buf`; advances *offset past it. Malformed input returns nullopt
/// with `error` set and leaves *offset unspecified.
std::optional<Graph> DecodeGraphBinary(std::string_view buf, size_t* offset,
                                       std::string* error = nullptr);

/// FNV-1a 64-bit hash; used as the corpus-file checksum and, over a
/// graph's canonical binary encoding, as the bound cache's query
/// fingerprint.
uint64_t Fnv1a64(std::string_view bytes);

/// Fnv1a64 over the canonical binary encoding: equal iff (modulo hash
/// collisions) the graphs are node-identity equal.
uint64_t GraphContentFingerprint(const Graph& g);

}  // namespace otged

#endif  // OTGED_GRAPH_GRAPH_IO_HPP_
