/// \file dataset.hpp
/// \brief Synthetic dataset construction mirroring the paper's AIDS /
/// LINUX / IMDB setup (Table 2) and its train / validation / test pairing
/// protocol (Section 6.1, Appendix F.1).
#ifndef OTGED_GRAPH_DATASET_HPP_
#define OTGED_GRAPH_DATASET_HPP_

#include <string>
#include <vector>

#include "graph/generator.hpp"

namespace otged {

/// A graph corpus with its label alphabet size.
struct Dataset {
  std::string name;
  std::vector<Graph> graphs;
  int num_labels = 1;

  double AvgNodes() const;
  double AvgEdges() const;
  int MaxNodes() const;
  int MaxEdges() const;
};

/// Which of the paper's three datasets to emulate.
enum class DatasetKind { kAids, kLinux, kImdb };

/// Builds a corpus of `count` graphs of the given kind.
Dataset MakeDataset(DatasetKind kind, int count, uint64_t seed);

/// A set of evaluation pairs grouped by query graph; ranking metrics
/// (Spearman, Kendall, p@k) are computed within each group, as in the
/// paper's similarity-search protocol.
struct QueryGroup {
  std::vector<GedPair> pairs;
};

struct PairSet {
  std::vector<GedPair> train;          ///< flat training pairs
  std::vector<QueryGroup> test;        ///< grouped test pairs
  std::vector<QueryGroup> validation;  ///< grouped validation pairs
};

/// Options controlling pair synthesis.
struct PairSetOptions {
  int num_train_pairs = 1200;
  int num_test_queries = 10;
  int pairs_per_query = 40;   ///< paper uses 100; scaled for CPU budget
  int max_edits_small = 5;    ///< Δ range for graphs with <= 10 nodes
  int max_edits_large = 10;   ///< Δ range for larger graphs (paper's (0,10])
  /// If true, re-solve small pairs (<= `exact_max_nodes` nodes) with the
  /// exact A* solver so ged / gt_matching / gt_path are provably optimal.
  bool exactify_small = true;
  int exact_max_nodes = 8;
  int exact_budget = 200000;  ///< A* expansion budget per pair
  uint64_t seed = 7;
};

/// Builds train/validation/test pairs over `dataset` using the
/// synthetic-edit ground-truth technique (plus optional A* exactification).
PairSet MakePairSet(const Dataset& dataset, const PairSetOptions& opt);

/// Builds one query group of `count` pairs around base graph `g`.
QueryGroup MakeQueryGroup(const Graph& g, int count, int max_edits,
                          int num_labels, Rng* rng);

/// Options for the arbitrary-pair protocol (paper Section 6.1: each test
/// query is paired with graphs sampled from the training split, and the
/// ground truth is computed exactly on small graphs).
struct ArbitraryPairOptions {
  int num_train_pairs = 1200;
  int num_test_queries = 6;
  int pairs_per_query = 30;
  long exact_budget = 400000;  ///< branch-and-bound visit budget per pair
  uint64_t seed = 7;
};

/// Ground truth for one arbitrary pair: orders by size, seeds
/// branch-and-bound with the Classic upper bound, and returns the pair
/// with exact (or, on budget exhaustion, best-found feasible) GED.
GedPair MakeExactPair(const Graph& a, const Graph& b,
                      long exact_budget = 400000);

/// Builds train/validation/test pairs by sampling *arbitrary* graph pairs
/// from the corpus (not perturbations), with exact GED ground truth from
/// branch-and-bound seeded with the Classic upper bound. Pairs whose
/// exact search exhausts the budget keep the best feasible result found
/// and are flagged `exact = false`. Intended for corpora of small graphs
/// (<= ~10 nodes), matching the paper's AIDS / LINUX protocol.
PairSet MakeArbitraryPairSet(const Dataset& dataset,
                             const ArbitraryPairOptions& opt);

}  // namespace otged

#endif  // OTGED_GRAPH_DATASET_HPP_
