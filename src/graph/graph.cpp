#include "graph/graph.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace otged {

int Graph::AddNode(Label l) {
  labels_.push_back(l);
  adj_.emplace_back();
  return NumNodes() - 1;
}

void Graph::AddEdge(int u, int v, Label edge_label) {
  OTGED_CHECK(u >= 0 && u < NumNodes() && v >= 0 && v < NumNodes());
  OTGED_CHECK_MSG(u != v, "self loops not supported");
  OTGED_CHECK_MSG(!HasEdge(u, v), "duplicate edge");
  adj_[u].insert(std::lower_bound(adj_[u].begin(), adj_[u].end(), v), v);
  adj_[v].insert(std::lower_bound(adj_[v].begin(), adj_[v].end(), u), u);
  if (edge_label != 0) edge_labels_[EdgeKey(u, v)] = edge_label;
  ++num_edges_;
}

void Graph::RemoveEdge(int u, int v) {
  OTGED_CHECK(HasEdge(u, v));
  adj_[u].erase(std::lower_bound(adj_[u].begin(), adj_[u].end(), v));
  adj_[v].erase(std::lower_bound(adj_[v].begin(), adj_[v].end(), u));
  edge_labels_.erase(EdgeKey(u, v));
  --num_edges_;
}

Label Graph::edge_label(int u, int v) const {
  OTGED_DCHECK(HasEdge(u, v));
  auto it = edge_labels_.find(EdgeKey(u, v));
  return it == edge_labels_.end() ? 0 : it->second;
}

void Graph::set_edge_label(int u, int v, Label l) {
  OTGED_CHECK(HasEdge(u, v));
  if (l == 0) {
    edge_labels_.erase(EdgeKey(u, v));
  } else {
    edge_labels_[EdgeKey(u, v)] = l;
  }
}

std::vector<Label> Graph::EdgeLabelAlphabet() const {
  std::vector<Label> out;
  for (const auto& [key, l] : edge_labels_) out.push_back(l);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Graph::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= NumNodes() || v >= NumNodes()) return false;
  const auto& a = adj_[u];
  return std::binary_search(a.begin(), a.end(), v);
}

Matrix Graph::AdjacencyMatrix() const {
  const int n = NumNodes();
  Matrix a(n, n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v : adj_[u]) a(u, v) = 1.0;
  return a;
}

Matrix Graph::OneHotLabels(int num_labels) const {
  OTGED_CHECK(num_labels >= 1);
  const int n = NumNodes();
  Matrix x(n, num_labels, 0.0);
  for (int v = 0; v < n; ++v) {
    if (num_labels == 1) {
      x(v, 0) = 1.0;  // unlabeled: constant feature
    } else {
      OTGED_CHECK(labels_[v] >= 0 && labels_[v] < num_labels);
      x(v, labels_[v]) = 1.0;
    }
  }
  return x;
}

bool Graph::IsConnected() const {
  const int n = NumNodes();
  if (n <= 1) return true;
  std::vector<char> seen(n, 0);
  std::vector<int> stack = {0};
  seen[0] = 1;
  int count = 1;
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    for (int v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count == n;
}

bool Graph::CheckInvariants() const {
  int edge_endpoints = 0;
  for (int u = 0; u < NumNodes(); ++u) {
    if (!std::is_sorted(adj_[u].begin(), adj_[u].end())) return false;
    if (std::adjacent_find(adj_[u].begin(), adj_[u].end()) != adj_[u].end())
      return false;
    for (int v : adj_[u]) {
      if (v < 0 || v >= NumNodes() || v == u) return false;
      if (!HasEdge(v, u)) return false;
    }
    edge_endpoints += static_cast<int>(adj_[u].size());
  }
  return edge_endpoints == 2 * num_edges_;
}

bool Graph::operator==(const Graph& o) const {
  return labels_ == o.labels_ && adj_ == o.adj_ &&
         edge_labels_ == o.edge_labels_;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << NumNodes() << " " << NumEdges() << " |";
  for (Label l : labels_) os << " " << l;
  os << " |";
  for (int u = 0; u < NumNodes(); ++u)
    for (int v : adj_[u])
      if (u < v) os << " (" << u << "," << v << ")";
  return os.str();
}

int MaxEditOps(const Graph& g1, const Graph& g2) {
  return std::max(g1.NumNodes(), g2.NumNodes()) +
         std::max(g1.NumEdges(), g2.NumEdges());
}

int LabelSetLowerBound(const Graph& g1, const Graph& g2) {
  std::map<Label, int> count;
  for (int v = 0; v < g1.NumNodes(); ++v) count[g1.label(v)]++;
  for (int v = 0; v < g2.NumNodes(); ++v) count[g2.label(v)]--;
  // Multiset symmetric difference |A xor B| = sum |count|; each relabel
  // fixes two mismatched labels but each insertion fixes one, so the number
  // of node ops needed is at least max(surplus, deficit).
  int surplus = 0, deficit = 0;
  for (const auto& [l, c] : count) {
    if (c > 0) surplus += c;
    else deficit -= c;
  }
  int node_lb = std::max(surplus, deficit);
  int edge_lb = std::abs(g1.NumEdges() - g2.NumEdges());
  return node_lb + edge_lb;
}

}  // namespace otged
