#include "graph/wl_hash.hpp"

#include <algorithm>
#include <vector>

namespace otged {

namespace {

// 64-bit mix (splitmix64 finalizer); good avalanche for color combining.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::vector<uint64_t> RefinedColors(const Graph& g, int iterations) {
  const int n = g.NumNodes();
  std::vector<uint64_t> color(n), next(n);
  for (int v = 0; v < n; ++v)
    color[v] = Mix(0xC0FFEEull + static_cast<uint64_t>(g.label(v)));
  for (int it = 0; it < iterations; ++it) {
    for (int v = 0; v < n; ++v) {
      // Order-independent neighbor aggregation: sum of mixed
      // (neighbor color, edge label) signatures.
      uint64_t agg = 0;
      for (int w : g.Neighbors(v)) {
        uint64_t e = static_cast<uint64_t>(g.edge_label(v, w));
        agg += Mix(color[w] ^ Mix(e + 0xED6Eull));
      }
      next[v] = Mix(color[v] ^ Mix(agg));
    }
    color.swap(next);
  }
  return color;
}

}  // namespace

uint64_t WlHash(const Graph& g, int iterations) {
  std::vector<uint64_t> color = RefinedColors(g, iterations);
  std::sort(color.begin(), color.end());
  uint64_t h = Mix(static_cast<uint64_t>(g.NumNodes()) << 32 |
                   static_cast<uint32_t>(g.NumEdges()));
  for (uint64_t c : color) h = Mix(h ^ c);
  return h;
}

bool WlEquivalent(const Graph& g1, const Graph& g2, int iterations) {
  return WlHash(g1, iterations) == WlHash(g2, iterations);
}

}  // namespace otged
