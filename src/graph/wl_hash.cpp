#include "graph/wl_hash.hpp"

#include <algorithm>
#include <vector>

#include "core/simd.hpp"

namespace otged {

namespace {

// 64-bit mix (splitmix64 finalizer); good avalanche for color combining.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Lane-parallel splitmix64 finalizer; VecU64 add/xor/shift/MulLo are
// exact mod 2^64, so this matches Mix() bit for bit per lane.
simd::VecU64 MixV(simd::VecU64 x) {
  using simd::MulLo;
  using simd::ShiftRight;
  using simd::VecU64;
  x = x + VecU64::Broadcast(0x9E3779B97F4A7C15ull);
  x = MulLo(x ^ ShiftRight<30>(x), VecU64::Broadcast(0xBF58476D1CE4E5B9ull));
  x = MulLo(x ^ ShiftRight<27>(x), VecU64::Broadcast(0x94D049BB133111EBull));
  return x ^ ShiftRight<31>(x);
}

}  // namespace

namespace detail {

std::vector<uint64_t> RefinedColorsScalar(const Graph& g, int iterations) {
  const int n = g.NumNodes();
  std::vector<uint64_t> color(n), next(n);
  for (int v = 0; v < n; ++v)
    color[v] = Mix(0xC0FFEEull + static_cast<uint64_t>(g.label(v)));
  for (int it = 0; it < iterations; ++it) {
    for (int v = 0; v < n; ++v) {
      // Order-independent neighbor aggregation: sum of mixed
      // (neighbor color, edge label) signatures.
      uint64_t agg = 0;
      for (int w : g.Neighbors(v)) {
        uint64_t e = static_cast<uint64_t>(g.edge_label(v, w));
        agg += Mix(color[w] ^ Mix(e + 0xED6Eull));
      }
      next[v] = Mix(color[v] ^ Mix(agg));
    }
    color.swap(next);
  }
  return color;
}

// Same refinement with the per-round work flattened onto arrays: the
// (map-backed) edge-label lookups are hoisted into a CSR of per-slot
// signatures built once, and every Mix runs lane-parallel via MixV.
// Wrap-around sums and MixV are exact, so the colors — and therefore
// WlHash — match RefinedColorsScalar bit for bit.
// otged-lint: hot-path
std::vector<uint64_t> RefinedColorsSimd(const Graph& g, int iterations) {
  const int n = g.NumNodes();
  std::vector<uint64_t> color(n), next(n);
  for (int v = 0; v < n; ++v)
    color[v] = Mix(0xC0FFEEull + static_cast<uint64_t>(g.label(v)));
  if (iterations <= 0 || n == 0) return color;

  std::vector<size_t> off(static_cast<size_t>(n) + 1, 0);
  std::vector<int> nbr;
  std::vector<uint64_t> sig;
  for (int v = 0; v < n; ++v) {
    off[static_cast<size_t>(v)] = nbr.size();
    for (int w : g.Neighbors(v)) {
      nbr.push_back(w);
      sig.push_back(Mix(static_cast<uint64_t>(g.edge_label(v, w)) +
                        0xED6Eull));
    }
  }
  off[static_cast<size_t>(n)] = nbr.size();
  const size_t m = nbr.size();
  std::vector<uint64_t> buf(m), agg(static_cast<size_t>(n));
  constexpr int L = simd::kDoubleLanes;

  for (int it = 0; it < iterations; ++it) {
    for (size_t t = 0; t < m; ++t)
      buf[t] = color[static_cast<size_t>(nbr[t])] ^ sig[t];
    size_t t = 0;
    if constexpr (L > 1) {
      for (; t + L <= m; t += L)
        MixV(simd::VecU64::Load(buf.data() + t)).Store(buf.data() + t);
    }
    for (; t < m; ++t) buf[t] = Mix(buf[t]);
    for (int v = 0; v < n; ++v) {
      uint64_t a = 0;
      for (size_t e = off[static_cast<size_t>(v)];
           e < off[static_cast<size_t>(v) + 1]; ++e)
        a += buf[e];
      agg[static_cast<size_t>(v)] = a;
    }
    int v = 0;
    if constexpr (L > 1) {
      for (; v + L <= n; v += L)
        MixV(simd::VecU64::Load(color.data() + v) ^
             MixV(simd::VecU64::Load(agg.data() + v)))
            .Store(next.data() + v);
    }
    for (; v < n; ++v)
      next[static_cast<size_t>(v)] =
          Mix(color[static_cast<size_t>(v)] ^
              Mix(agg[static_cast<size_t>(v)]));
    color.swap(next);
  }
  return color;
}

}  // namespace detail

uint64_t WlHash(const Graph& g, int iterations) {
  std::vector<uint64_t> color = simd::Enabled()
                                    ? detail::RefinedColorsSimd(g, iterations)
                                    : detail::RefinedColorsScalar(g, iterations);
  std::sort(color.begin(), color.end());
  uint64_t h = Mix(static_cast<uint64_t>(g.NumNodes()) << 32 |
                   static_cast<uint32_t>(g.NumEdges()));
  for (uint64_t c : color) h = Mix(h ^ c);
  return h;
}

bool WlEquivalent(const Graph& g1, const Graph& g2, int iterations) {
  return WlHash(g1, iterations) == WlHash(g2, iterations);
}

}  // namespace otged
