/// \file wl_hash.hpp
/// \brief Weisfeiler-Lehman color-refinement hash: a cheap isomorphism
/// *invariant* (equal hashes are necessary, not sufficient, for
/// isomorphism). Used by tests as a permutation-invariance oracle and by
/// users as a fast GED==0 pre-filter. The paper motivates GIN by its
/// equivalence to this very test (Section 4.1).
#ifndef OTGED_GRAPH_WL_HASH_HPP_
#define OTGED_GRAPH_WL_HASH_HPP_

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace otged {

/// WL hash after `iterations` rounds of color refinement seeded with node
/// labels (edge labels folded into the neighbor multiset).
uint64_t WlHash(const Graph& g, int iterations = 3);

/// True if the two graphs cannot be distinguished by `iterations` rounds
/// of WL refinement (a necessary condition for GED == 0).
bool WlEquivalent(const Graph& g1, const Graph& g2, int iterations = 3);

namespace detail {

/// Scalar / SIMD twins of the WL color-refinement rounds behind WlHash
/// (dispatch on simd::Enabled()). Integer mixing and wrap-around sums
/// are exact in both, so the refined colors are bit-identical; the SIMD
/// twin additionally hoists the per-edge label lookups into a CSR built
/// once per call.
std::vector<uint64_t> RefinedColorsScalar(const Graph& g, int iterations);
std::vector<uint64_t> RefinedColorsSimd(const Graph& g, int iterations);

}  // namespace detail

}  // namespace otged

#endif  // OTGED_GRAPH_WL_HASH_HPP_
