/// \file generator.hpp
/// \brief Synthetic graph generators mimicking the paper's datasets and the
/// synthetic-edit ground-truth technique of [1, 35].
#ifndef OTGED_GRAPH_GENERATOR_HPP_
#define OTGED_GRAPH_GENERATOR_HPP_

#include <vector>

#include "core/random.hpp"
#include "editpath/edit_path.hpp"
#include "graph/graph.hpp"

namespace otged {

/// Random connected graph: a random spanning tree plus `extra_edges`
/// uniformly random additional edges. Labels drawn from a skewed
/// categorical distribution over `num_labels` (chemistry-like when
/// num_labels > 1; pass 1 for unlabeled).
Graph RandomConnectedGraph(int num_nodes, int extra_edges, int num_labels,
                           Rng* rng);

/// AIDS-like molecule graph: n in [min_nodes, max_nodes], sparse
/// (m ~ n), 29 node labels with a heavy-tailed frequency profile.
Graph AidsLikeGraph(Rng* rng, int min_nodes = 2, int max_nodes = 10);

/// LINUX-like program-dependence graph: unlabeled, sparse, n in
/// [min_nodes, max_nodes], m ~ n - 1 .. n + 2.
Graph LinuxLikeGraph(Rng* rng, int min_nodes = 4, int max_nodes = 10);

/// IMDB-like ego network: unlabeled, built from overlapping cliques so
/// the density profile matches actor collaboration ego-nets; n drawn from
/// a heavy-tailed range [min_nodes, max_nodes].
Graph ImdbLikeGraph(Rng* rng, int min_nodes = 7, int max_nodes = 89);

/// Barabasi-Albert style power-law graph with `num_nodes` nodes,
/// attachment parameter `m_attach`; used by the Fig. 16 experiment.
Graph PowerLawGraph(int num_nodes, int m_attach, Rng* rng);

/// A graph pair with known ground truth: the exact (or, for synthetic-edit
/// pairs, upper-bound) GED, the ground-truth coupling matrix pi* (n1 x n2)
/// and one ground-truth edit path in canonical G2 coordinates.
struct GedPair {
  Graph g1, g2;
  int ged = 0;
  NodeMatching gt_matching;       ///< G1 node -> G2 node
  std::vector<EditOp> gt_path;    ///< canonical coordinates w.r.t. g2
  bool exact = false;             ///< true if `ged` was verified exact
};

/// Options for the synthetic-edit pair generator.
struct SyntheticEditOptions {
  int num_edits = 3;             ///< Δ, the number of edit operations
  bool allow_relabel = true;     ///< only meaningful for labeled graphs
  int num_labels = 1;            ///< label alphabet for relabels/insertions
  int num_edge_labels = 1;       ///< > 1 enables edge-relabel operations
};

/// The ground-truth generation technique of [1, 35]: applies `num_edits`
/// non-overlapping random edit operations to a copy of `g`, then randomly
/// permutes node ids of the result. Returns the pair with Δ as the GED
/// (an upper bound that is almost surely tight for Δ << n + m) and the
/// known node correspondence. G2 always has >= as many nodes as G1.
GedPair SyntheticEditPair(const Graph& g, const SyntheticEditOptions& opt,
                          Rng* rng);

/// Permutes node ids of `g` by `perm` (node v becomes perm[v]); node and
/// edge labels travel with the permutation.
Graph PermuteGraph(const Graph& g, const std::vector<int>& perm);

/// Assigns a skewed random edge label in [0, num_edge_labels) to every
/// edge (paper Appendix H.1; label 0 plays the "single bond" role).
void AssignRandomEdgeLabels(Graph* g, int num_edge_labels, Rng* rng);

}  // namespace otged

#endif  // OTGED_GRAPH_GENERATOR_HPP_
