#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>

namespace otged {

void WriteGraph(std::ostream& out, const Graph& g) {
  out << "t " << g.NumNodes() << " " << g.NumEdges() << "\n";
  for (int v = 0; v < g.NumNodes(); ++v)
    out << "v " << v << " " << g.label(v) << "\n";
  for (int u = 0; u < g.NumNodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (u >= v) continue;
      out << "e " << u << " " << v;
      if (g.edge_label(u, v) != 0) out << " " << g.edge_label(u, v);
      out << "\n";
    }
  }
}

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::optional<Graph> ReadGraph(std::istream& in, std::string* error) {
  std::string line;
  // Skip blank lines before the header.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') break;
  }
  if (!in && line.empty()) return std::nullopt;  // clean EOF
  std::istringstream header(line);
  char tag = 0;
  int n = -1, m = -1;
  if (!(header >> tag >> n >> m) || tag != 't' || n < 0 || m < 0) {
    Fail(error, "bad graph header: " + line);
    return std::nullopt;
  }
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    int id = -1, label = 0;
    if (!std::getline(in, line)) {
      Fail(error, "truncated node section");
      return std::nullopt;
    }
    std::istringstream node(line);
    if (!(node >> tag >> id >> label) || tag != 'v' || id != i) {
      Fail(error, "bad node line: " + line);
      return std::nullopt;
    }
    g.set_label(id, label);
  }
  for (int i = 0; i < m; ++i) {
    if (!std::getline(in, line)) {
      Fail(error, "truncated edge section");
      return std::nullopt;
    }
    std::istringstream edge(line);
    int u = -1, v = -1, el = 0;
    if (!(edge >> tag >> u >> v) || tag != 'e' || u < 0 || v < 0 || u >= n ||
        v >= n || u == v) {
      Fail(error, "bad edge line: " + line);
      return std::nullopt;
    }
    edge >> el;  // optional label
    if (g.HasEdge(u, v)) {
      Fail(error, "duplicate edge: " + line);
      return std::nullopt;
    }
    g.AddEdge(u, v, el);
  }
  return g;
}

bool SaveGraphs(const std::string& path, const std::vector<Graph>& graphs) {
  std::ofstream out(path);
  if (!out) return false;
  for (const Graph& g : graphs) WriteGraph(out, g);
  return static_cast<bool>(out);
}

std::vector<Graph> LoadGraphs(const std::string& path, std::string* error) {
  std::ifstream in(path);
  std::vector<Graph> graphs;
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return graphs;
  }
  while (true) {
    std::string local_error;
    std::optional<Graph> g = ReadGraph(in, &local_error);
    if (!g.has_value()) {
      if (!local_error.empty()) {
        if (error != nullptr) *error = local_error;
        graphs.clear();
      }
      break;
    }
    graphs.push_back(std::move(*g));
  }
  return graphs;
}

}  // namespace otged
