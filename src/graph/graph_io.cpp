#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>

namespace otged {

void WriteGraph(std::ostream& out, const Graph& g) {
  out << "t " << g.NumNodes() << " " << g.NumEdges() << "\n";
  for (int v = 0; v < g.NumNodes(); ++v)
    out << "v " << v << " " << g.label(v) << "\n";
  for (int u = 0; u < g.NumNodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (u >= v) continue;
      out << "e " << u << " " << v;
      if (g.edge_label(u, v) != 0) out << " " << g.edge_label(u, v);
      out << "\n";
    }
  }
}

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::optional<Graph> ReadGraph(std::istream& in, std::string* error) {
  std::string line;
  // Skip blank lines before the header.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') break;
  }
  if (!in && line.empty()) return std::nullopt;  // clean EOF
  std::istringstream header(line);
  char tag = 0;
  int n = -1, m = -1;
  if (!(header >> tag >> n >> m) || tag != 't' || n < 0 || m < 0) {
    Fail(error, "bad graph header: " + line);
    return std::nullopt;
  }
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    int id = -1, label = 0;
    if (!std::getline(in, line)) {
      Fail(error, "truncated node section");
      return std::nullopt;
    }
    std::istringstream node(line);
    if (!(node >> tag >> id >> label) || tag != 'v' || id != i) {
      Fail(error, "bad node line: " + line);
      return std::nullopt;
    }
    g.set_label(id, label);
  }
  for (int i = 0; i < m; ++i) {
    if (!std::getline(in, line)) {
      Fail(error, "truncated edge section");
      return std::nullopt;
    }
    std::istringstream edge(line);
    int u = -1, v = -1, el = 0;
    if (!(edge >> tag >> u >> v) || tag != 'e' || u < 0 || v < 0 || u >= n ||
        v >= n || u == v) {
      Fail(error, "bad edge line: " + line);
      return std::nullopt;
    }
    edge >> el;  // optional label
    if (g.HasEdge(u, v)) {
      Fail(error, "duplicate edge: " + line);
      return std::nullopt;
    }
    g.AddEdge(u, v, el);
  }
  return g;
}

namespace {

void AppendI32(std::string* buf, int32_t v) {
  for (int b = 0; b < 4; ++b)
    buf->push_back(static_cast<char>((static_cast<uint32_t>(v) >> (8 * b)) &
                                     0xff));
}

bool ReadI32(std::string_view buf, size_t* offset, int32_t* out) {
  if (*offset + 4 > buf.size()) return false;
  uint32_t v = 0;
  for (int b = 0; b < 4; ++b)
    v |= static_cast<uint32_t>(static_cast<unsigned char>((buf)[*offset + b]))
         << (8 * b);
  *offset += 4;
  *out = static_cast<int32_t>(v);
  return true;
}

}  // namespace

void AppendGraphBinary(std::string* buf, const Graph& g) {
  AppendI32(buf, g.NumNodes());
  AppendI32(buf, g.NumEdges());
  for (int v = 0; v < g.NumNodes(); ++v) AppendI32(buf, g.label(v));
  for (int u = 0; u < g.NumNodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (u >= v) continue;  // adjacency lists are sorted, so (u, v) ascend
      AppendI32(buf, u);
      AppendI32(buf, v);
      AppendI32(buf, g.edge_label(u, v));
    }
  }
}

std::optional<Graph> DecodeGraphBinary(std::string_view buf, size_t* offset,
                                       std::string* error) {
  int32_t n = -1, m = -1;
  if (!ReadI32(buf, offset, &n) || !ReadI32(buf, offset, &m) || n < 0 ||
      m < 0) {
    Fail(error, "bad binary graph header");
    return std::nullopt;
  }
  // Don't trust the counts for allocation: the encoded sections must
  // actually fit in the remaining bytes (4 per node, 12 per edge).
  if (buf.size() - *offset < 4ull * n + 12ull * m) {
    Fail(error, "truncated binary graph");
    return std::nullopt;
  }
  Graph g(n);
  for (int32_t i = 0; i < n; ++i) {
    int32_t label = 0;
    if (!ReadI32(buf, offset, &label)) {
      Fail(error, "truncated binary node section");
      return std::nullopt;
    }
    g.set_label(i, label);
  }
  for (int32_t i = 0; i < m; ++i) {
    int32_t u = -1, v = -1, el = 0;
    if (!ReadI32(buf, offset, &u) || !ReadI32(buf, offset, &v) ||
        !ReadI32(buf, offset, &el) || u < 0 || v < 0 || u >= n || v >= n ||
        u == v || g.HasEdge(u, v)) {
      Fail(error, "bad binary edge record");
      return std::nullopt;
    }
    g.AddEdge(u, v, el);
  }
  return g;
}

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t GraphContentFingerprint(const Graph& g) {
  std::string buf;
  buf.reserve(8 + 4 * static_cast<size_t>(g.NumNodes()) +
              12 * static_cast<size_t>(g.NumEdges()));
  AppendGraphBinary(&buf, g);
  return Fnv1a64(buf);
}

bool SaveGraphs(const std::string& path, const std::vector<Graph>& graphs) {
  std::ofstream out(path);
  if (!out) return false;
  for (const Graph& g : graphs) WriteGraph(out, g);
  return static_cast<bool>(out);
}

std::vector<Graph> LoadGraphs(const std::string& path, std::string* error) {
  std::ifstream in(path);
  std::vector<Graph> graphs;
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return graphs;
  }
  while (true) {
    std::string local_error;
    std::optional<Graph> g = ReadGraph(in, &local_error);
    if (!g.has_value()) {
      if (!local_error.empty()) {
        if (error != nullptr) *error = local_error;
        graphs.clear();
      }
      break;
    }
    graphs.push_back(std::move(*g));
  }
  return graphs;
}

}  // namespace otged
