#include "graph/dataset.hpp"

#include <algorithm>

#include "exact/astar.hpp"
#include "exact/branch_and_bound.hpp"
#include "heuristics/bipartite.hpp"

namespace otged {

double Dataset::AvgNodes() const {
  if (graphs.empty()) return 0.0;
  double s = 0.0;
  for (const Graph& g : graphs) s += g.NumNodes();
  return s / static_cast<double>(graphs.size());
}

double Dataset::AvgEdges() const {
  if (graphs.empty()) return 0.0;
  double s = 0.0;
  for (const Graph& g : graphs) s += g.NumEdges();
  return s / static_cast<double>(graphs.size());
}

int Dataset::MaxNodes() const {
  int m = 0;
  for (const Graph& g : graphs) m = std::max(m, g.NumNodes());
  return m;
}

int Dataset::MaxEdges() const {
  int m = 0;
  for (const Graph& g : graphs) m = std::max(m, g.NumEdges());
  return m;
}

Dataset MakeDataset(DatasetKind kind, int count, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < count; ++i) {
    switch (kind) {
      case DatasetKind::kAids:
        d.name = "AIDS-like";
        d.num_labels = 29;
        d.graphs.push_back(AidsLikeGraph(&rng));
        break;
      case DatasetKind::kLinux:
        d.name = "LINUX-like";
        d.num_labels = 1;
        d.graphs.push_back(LinuxLikeGraph(&rng));
        break;
      case DatasetKind::kImdb:
        d.name = "IMDB-like";
        d.num_labels = 1;
        d.graphs.push_back(ImdbLikeGraph(&rng));
        break;
    }
  }
  return d;
}

namespace {

// Δ budget for a base graph: small graphs use the small range, larger
// graphs the paper's (0, 10] convention.
int DrawEdits(const Graph& g, int max_small, int max_large, Rng* rng) {
  int cap = g.NumNodes() <= 10 ? max_small : max_large;
  cap = std::min(cap, std::max(1, g.NumNodes() + g.NumEdges() - 1));
  return rng->UniformInt(1, cap);
}

// Re-solves a small pair exactly so (ged, matching, path) are optimal.
// The synthetic Δ is a valid upper bound, so A* can never return more.
void ExactifyPair(GedPair* pair, int max_nodes, long budget) {
  if (pair->g2.NumNodes() > max_nodes) return;
  AstarOptions opt;
  opt.max_expansions = budget;
  auto res = AstarGed(pair->g1, pair->g2, opt);
  if (!res.has_value()) return;  // budget exhausted; keep Δ ground truth
  OTGED_CHECK_MSG(res->ged <= pair->ged,
                  "A* exceeded the synthetic-edit upper bound");
  pair->ged = res->ged;
  pair->gt_matching = res->matching;
  pair->gt_path = EditPathFromMatching(pair->g1, pair->g2, res->matching);
  pair->exact = true;
}

}  // namespace

QueryGroup MakeQueryGroup(const Graph& g, int count, int max_edits,
                          int num_labels, Rng* rng) {
  QueryGroup group;
  for (int i = 0; i < count; ++i) {
    SyntheticEditOptions opt;
    opt.num_edits = rng->UniformInt(1, std::max(1, max_edits));
    opt.num_labels = num_labels;
    opt.allow_relabel = num_labels > 1;
    group.pairs.push_back(SyntheticEditPair(g, opt, rng));
  }
  return group;
}

PairSet MakePairSet(const Dataset& dataset, const PairSetOptions& opt) {
  Rng rng(opt.seed);
  PairSet set;
  OTGED_CHECK(!dataset.graphs.empty());
  const int n_graphs = static_cast<int>(dataset.graphs.size());

  // 60/20/20 split of base graphs, as in the paper.
  std::vector<int> idx(n_graphs);
  for (int i = 0; i < n_graphs; ++i) idx[i] = i;
  rng.Shuffle(&idx);
  const int n_train = std::max(1, n_graphs * 6 / 10);
  const int n_test = std::max(1, n_graphs * 2 / 10);
  std::vector<int> train_idx(idx.begin(), idx.begin() + n_train);
  std::vector<int> test_idx(idx.begin() + n_train,
                            idx.begin() + std::min(n_graphs, n_train + n_test));
  std::vector<int> val_idx(idx.begin() + std::min(n_graphs, n_train + n_test),
                           idx.end());
  if (val_idx.empty()) val_idx = test_idx;

  auto edits_for = [&](const Graph& g) {
    return DrawEdits(g, opt.max_edits_small, opt.max_edits_large, &rng);
  };

  // Training pairs: base graph sampled from the train split.
  for (int i = 0; i < opt.num_train_pairs; ++i) {
    const Graph& g = dataset.graphs[train_idx[rng.UniformInt(
        0, static_cast<int>(train_idx.size()) - 1)]];
    SyntheticEditOptions sopt;
    sopt.num_edits = edits_for(g);
    sopt.num_labels = dataset.num_labels;
    sopt.allow_relabel = dataset.num_labels > 1;
    GedPair pair = SyntheticEditPair(g, sopt, &rng);
    if (opt.exactify_small)
      ExactifyPair(&pair, opt.exact_max_nodes, opt.exact_budget);
    set.train.push_back(std::move(pair));
  }

  // Test / validation groups: one group per query graph.
  auto make_groups = [&](const std::vector<int>& pool, int n_queries) {
    std::vector<QueryGroup> groups;
    for (int q = 0; q < n_queries; ++q) {
      const Graph& g = dataset.graphs[pool[rng.UniformInt(
          0, static_cast<int>(pool.size()) - 1)]];
      QueryGroup group;
      for (int p = 0; p < opt.pairs_per_query; ++p) {
        SyntheticEditOptions sopt;
        sopt.num_edits = edits_for(g);
        sopt.num_labels = dataset.num_labels;
        sopt.allow_relabel = dataset.num_labels > 1;
        GedPair pair = SyntheticEditPair(g, sopt, &rng);
        if (opt.exactify_small)
          ExactifyPair(&pair, opt.exact_max_nodes, opt.exact_budget);
        group.pairs.push_back(std::move(pair));
      }
      groups.push_back(std::move(group));
    }
    return groups;
  };
  set.test = make_groups(test_idx, opt.num_test_queries);
  set.validation = make_groups(val_idx, std::max(1, opt.num_test_queries / 2));
  return set;
}

GedPair MakeExactPair(const Graph& a, const Graph& b, long budget) {
  GedPair pair;
  pair.g1 = a.NumNodes() <= b.NumNodes() ? a : b;
  pair.g2 = a.NumNodes() <= b.NumNodes() ? b : a;
  HeuristicResult ub = ClassicGed(pair.g1, pair.g2);
  BnbOptions opt;
  opt.max_visits = budget;
  opt.initial_upper_bound = ub.ged;
  GedSearchResult res = BranchAndBoundGed(pair.g1, pair.g2, opt);
  if (res.ged <= ub.ged) {
    pair.ged = res.ged;
    pair.gt_matching = res.matching;
  } else {
    pair.ged = ub.ged;
    pair.gt_matching = ub.matching;
  }
  pair.exact = res.exact;
  pair.gt_path = EditPathFromMatching(pair.g1, pair.g2, pair.gt_matching);
  OTGED_CHECK(static_cast<int>(pair.gt_path.size()) == pair.ged);
  return pair;
}

PairSet MakeArbitraryPairSet(const Dataset& dataset,
                             const ArbitraryPairOptions& opt) {
  Rng rng(opt.seed);
  PairSet set;
  const int n_graphs = static_cast<int>(dataset.graphs.size());
  OTGED_CHECK(n_graphs >= 4);

  // 60/20/20 split, as in MakePairSet.
  std::vector<int> idx(n_graphs);
  for (int i = 0; i < n_graphs; ++i) idx[i] = i;
  rng.Shuffle(&idx);
  const int n_train = std::max(2, n_graphs * 6 / 10);
  const int n_test = std::max(1, n_graphs * 2 / 10);
  std::vector<int> train_idx(idx.begin(), idx.begin() + n_train);
  std::vector<int> test_idx(idx.begin() + n_train,
                            idx.begin() + std::min(n_graphs, n_train + n_test));
  std::vector<int> val_idx(idx.begin() + std::min(n_graphs, n_train + n_test),
                           idx.end());
  if (val_idx.empty()) val_idx = test_idx;

  auto pick = [&](const std::vector<int>& pool) {
    return dataset.graphs[pool[rng.UniformInt(
        0, static_cast<int>(pool.size()) - 1)]];
  };

  for (int i = 0; i < opt.num_train_pairs; ++i) {
    set.train.push_back(
        MakeExactPair(pick(train_idx), pick(train_idx), opt.exact_budget));
  }
  // Test / validation: a query graph paired with training-split graphs
  // (the paper's graph-similarity-search protocol).
  auto make_groups = [&](const std::vector<int>& pool, int n_queries) {
    std::vector<QueryGroup> groups;
    for (int q = 0; q < n_queries; ++q) {
      Graph query = pick(pool);
      QueryGroup group;
      for (int p = 0; p < opt.pairs_per_query; ++p) {
        group.pairs.push_back(
            MakeExactPair(query, pick(train_idx), opt.exact_budget));
      }
      groups.push_back(std::move(group));
    }
    return groups;
  };
  set.test = make_groups(test_idx, opt.num_test_queries);
  set.validation = make_groups(val_idx, std::max(1, opt.num_test_queries / 2));
  return set;
}

}  // namespace otged
