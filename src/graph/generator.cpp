#include "graph/generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace otged {

namespace {

// Skewed label frequency profile: label k gets weight ~ 1/(k+1)^1.2,
// mimicking the dominance of C/O/N in molecule datasets.
std::vector<double> SkewedLabelWeights(int num_labels) {
  std::vector<double> w(num_labels);
  for (int k = 0; k < num_labels; ++k) w[k] = 1.0 / std::pow(k + 1, 1.2);
  return w;
}

}  // namespace

Graph RandomConnectedGraph(int num_nodes, int extra_edges, int num_labels,
                           Rng* rng) {
  OTGED_CHECK(num_nodes >= 1);
  Graph g(num_nodes);
  std::vector<double> weights = SkewedLabelWeights(num_labels);
  for (int v = 0; v < num_nodes; ++v)
    g.set_label(v, num_labels == 1 ? 0 : rng->Categorical(weights));
  // Random spanning tree: attach node v to a uniformly random earlier node.
  for (int v = 1; v < num_nodes; ++v) g.AddEdge(v, rng->UniformInt(0, v - 1));
  // Extra edges among non-adjacent pairs.
  const int max_extra =
      num_nodes * (num_nodes - 1) / 2 - (num_nodes - 1);
  extra_edges = std::min(extra_edges, max_extra);
  int added = 0, guard = 0;
  while (added < extra_edges && guard < 100 * (extra_edges + 1)) {
    ++guard;
    int u = rng->UniformInt(0, num_nodes - 1);
    int v = rng->UniformInt(0, num_nodes - 1);
    if (u == v || g.HasEdge(u, v)) continue;
    g.AddEdge(u, v);
    ++added;
  }
  return g;
}

Graph AidsLikeGraph(Rng* rng, int min_nodes, int max_nodes) {
  // Bias toward the top of the range (paper: |V|avg 8.9 with max 10).
  int n = std::max(rng->UniformInt(min_nodes, max_nodes),
                   rng->UniformInt(min_nodes, max_nodes));
  // Molecules are near-trees: |E| ~ |V| (Table 2: 8.9 nodes, 8.8 edges).
  int extra = n <= 2 ? 0 : rng->UniformInt(0, std::min(3, n - 2));
  return RandomConnectedGraph(n, extra, /*num_labels=*/29, rng);
}

Graph LinuxLikeGraph(Rng* rng, int min_nodes, int max_nodes) {
  int n = rng->UniformInt(min_nodes, max_nodes);
  // PDGs are sparse: |E| ~ |V| - 1 .. |V| + 2 (Table 2: 7.6 nodes, 6.9 edges).
  int extra = rng->UniformInt(0, std::min(3, std::max(0, n - 2)));
  return RandomConnectedGraph(n, extra, /*num_labels=*/1, rng);
}

Graph ImdbLikeGraph(Rng* rng, int min_nodes, int max_nodes) {
  // Heavy-tailed size mixture (paper: |V|avg 13 with max 89): most
  // ego-nets are small; a minority stretch far into the tail.
  int n;
  if (rng->Bernoulli(0.85) || max_nodes <= min_nodes + 10) {
    n = rng->UniformInt(min_nodes, std::min(max_nodes, min_nodes + 9));
  } else {
    double u = rng->Uniform();
    int lo = std::min(max_nodes, min_nodes + 10);
    n = lo + static_cast<int>((max_nodes - lo) * u * u);
  }
  Graph g(n, 0);
  // Ego-net: overlapping cliques (movies) over the n actors; ensures the
  // dense profile of Table 2 (13 nodes, 65.9 edges on average).
  int num_cliques = std::max(1, n / 4 + rng->UniformInt(0, 2));
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  for (int c = 0; c < num_cliques; ++c) {
    int size = std::min(n, 2 + rng->UniformInt(1, std::max(2, n / 3)));
    std::vector<int> members = rng->SampleWithoutReplacement(n, size);
    for (size_t i = 0; i < members.size(); ++i)
      for (size_t j = i + 1; j < members.size(); ++j)
        if (!g.HasEdge(members[i], members[j]))
          g.AddEdge(members[i], members[j]);
  }
  // Connect any isolated leftovers so the ego-net is a single component.
  for (int v = 1; v < n; ++v) {
    if (g.Degree(v) == 0) g.AddEdge(v, rng->UniformInt(0, v - 1));
  }
  return g;
}

Graph PowerLawGraph(int num_nodes, int m_attach, Rng* rng) {
  OTGED_CHECK(num_nodes > m_attach && m_attach >= 1);
  Graph g(num_nodes, 0);
  // Seed clique of m_attach + 1 nodes.
  for (int u = 0; u <= m_attach; ++u)
    for (int v = u + 1; v <= m_attach; ++v) g.AddEdge(u, v);
  // Preferential attachment via the repeated-endpoints trick.
  std::vector<int> endpoints;
  for (int u = 0; u <= m_attach; ++u)
    for (int v : g.Neighbors(u)) {
      (void)v;
      endpoints.push_back(u);
    }
  for (int v = m_attach + 1; v < num_nodes; ++v) {
    std::set<int> targets;
    int guard = 0;
    while (static_cast<int>(targets.size()) < m_attach && guard < 1000) {
      ++guard;
      int t = endpoints[rng->UniformInt(
          0, static_cast<int>(endpoints.size()) - 1)];
      if (t != v) targets.insert(t);
    }
    for (int t : targets) {
      g.AddEdge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph PermuteGraph(const Graph& g, const std::vector<int>& perm) {
  OTGED_CHECK(static_cast<int>(perm.size()) == g.NumNodes());
  Graph out(g.NumNodes());
  for (int v = 0; v < g.NumNodes(); ++v) out.set_label(perm[v], g.label(v));
  for (int u = 0; u < g.NumNodes(); ++u)
    for (int v : g.Neighbors(u))
      if (u < v) out.AddEdge(perm[u], perm[v], g.edge_label(u, v));
  return out;
}

void AssignRandomEdgeLabels(Graph* g, int num_edge_labels, Rng* rng) {
  OTGED_CHECK(num_edge_labels >= 2);
  // Skewed like chemical bond types: single >> double >> triple.
  std::vector<double> weights(num_edge_labels);
  for (int k = 0; k < num_edge_labels; ++k)
    weights[k] = 1.0 / std::pow(2.0, k);
  for (int u = 0; u < g->NumNodes(); ++u)
    for (int v : g->Neighbors(u))
      if (u < v) g->set_edge_label(u, v, rng->Categorical(weights));
}

GedPair SyntheticEditPair(const Graph& g, const SyntheticEditOptions& opt,
                          Rng* rng) {
  Graph h = g;  // will become G2 (pre-permutation)
  const int n1 = g.NumNodes();
  std::vector<EditOp> ops;  // recorded in pre-permutation coordinates
  // Non-overlap bookkeeping so the Δ operations cannot cancel each other:
  // a node is relabeled at most once, an edge slot is flipped at most once,
  // and inserted nodes are not otherwise touched.
  std::set<int> relabeled;
  std::set<std::pair<int, int>> touched_edges;

  auto edge_key = [](int u, int v) {
    return std::make_pair(std::min(u, v), std::max(u, v));
  };
  std::vector<double> label_weights(std::max(1, opt.num_labels), 1.0);

  int made = 0, guard = 0;
  while (made < opt.num_edits && guard < 1000 * (opt.num_edits + 1)) {
    ++guard;
    // Weighted op choice; relabels only when labels exist.
    double r = rng->Uniform();
    bool labeled = opt.allow_relabel && opt.num_labels > 1;
    if (labeled && r < 0.35) {
      // Relabel a not-yet-relabeled original node.
      int v = rng->UniformInt(0, n1 - 1);
      if (relabeled.count(v)) continue;
      Label nl = rng->UniformInt(0, opt.num_labels - 1);
      if (nl == h.label(v)) continue;
      h.set_label(v, nl);
      relabeled.insert(v);
      ops.push_back({EditOpType::kRelabelNode, v, -1, nl});
      ++made;
    } else if (r < (labeled ? 0.45 : 0.15)) {
      // Insert a node (isolated); subsequent edge insertions may attach it.
      Label nl = opt.num_labels > 1 ? rng->UniformInt(0, opt.num_labels - 1)
                                    : 0;
      int v = h.AddNode(nl);
      ops.push_back({EditOpType::kInsertNode, v, -1, nl});
      ++made;
      // Attach with one edge so the graph stays connected (counts as an
      // operation too, if the budget allows; otherwise leave isolated).
      if (made < opt.num_edits && h.NumNodes() >= 2) {
        int t = rng->UniformInt(0, h.NumNodes() - 2);
        h.AddEdge(v, t);
        touched_edges.insert(edge_key(v, t));
        ops.push_back({EditOpType::kInsertEdge, std::min(v, t),
                       std::max(v, t), 0});
        ++made;
      }
    } else if (opt.num_edge_labels > 1 &&
               r < (labeled ? 0.55 : 0.35)) {
      // Relabel an untouched existing edge (edge-labeled graphs only).
      if (h.NumEdges() == 0) continue;
      int u = rng->UniformInt(0, h.NumNodes() - 1);
      if (h.Degree(u) == 0) continue;
      int v = h.Neighbors(u)[rng->UniformInt(0, h.Degree(u) - 1)];
      if (touched_edges.count(edge_key(u, v))) continue;
      Label nl = rng->UniformInt(0, opt.num_edge_labels - 1);
      if (nl == h.edge_label(u, v)) continue;
      h.set_edge_label(u, v, nl);
      touched_edges.insert(edge_key(u, v));
      ops.push_back({EditOpType::kRelabelEdge, std::min(u, v),
                     std::max(u, v), nl});
      ++made;
    } else if (r < (labeled ? 0.75 : 0.6)) {
      // Insert an edge between non-adjacent untouched pair.
      if (h.NumNodes() < 2) continue;
      int u = rng->UniformInt(0, h.NumNodes() - 1);
      int v = rng->UniformInt(0, h.NumNodes() - 1);
      if (u == v || h.HasEdge(u, v) || touched_edges.count(edge_key(u, v)))
        continue;
      Label el = opt.num_edge_labels > 1
                     ? rng->UniformInt(0, opt.num_edge_labels - 1)
                     : 0;
      h.AddEdge(u, v, el);
      touched_edges.insert(edge_key(u, v));
      ops.push_back({EditOpType::kInsertEdge, std::min(u, v), std::max(u, v),
                     el});
      ++made;
    } else {
      // Delete an untouched edge.
      if (h.NumEdges() == 0) continue;
      int u = rng->UniformInt(0, h.NumNodes() - 1);
      if (h.Degree(u) == 0) continue;
      int v = h.Neighbors(u)[rng->UniformInt(0, h.Degree(u) - 1)];
      if (touched_edges.count(edge_key(u, v))) continue;
      h.RemoveEdge(u, v);
      touched_edges.insert(edge_key(u, v));
      ops.push_back({EditOpType::kDeleteEdge, std::min(u, v), std::max(u, v),
                     0});
      ++made;
    }
  }

  // Random permutation of G2's node ids hides the identity correspondence.
  const int n2 = h.NumNodes();
  std::vector<int> perm(n2);
  for (int i = 0; i < n2; ++i) perm[i] = i;
  rng->Shuffle(&perm);

  GedPair pair;
  pair.g1 = g;
  pair.g2 = PermuteGraph(h, perm);
  pair.ged = made;
  pair.exact = false;
  pair.gt_matching.resize(n1);
  for (int u = 0; u < n1; ++u) pair.gt_matching[u] = perm[u];
  // Rewrite the recorded ops into canonical (post-permutation) coordinates.
  for (EditOp op : ops) {
    switch (op.type) {
      case EditOpType::kRelabelNode:
      case EditOpType::kInsertNode:
        op.a = perm[op.a];
        break;
      case EditOpType::kInsertEdge:
      case EditOpType::kDeleteEdge:
      case EditOpType::kRelabelEdge: {
        int a = perm[op.a], b = perm[op.b];
        op.a = std::min(a, b);
        op.b = std::max(a, b);
        break;
      }
      case EditOpType::kDeleteNode:
        break;
    }
    pair.gt_path.push_back(op);
  }
  return pair;
}

}  // namespace otged
