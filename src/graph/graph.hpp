/// \file graph.hpp
/// \brief Labeled undirected graph — the problem input type of otged.
#ifndef OTGED_GRAPH_GRAPH_HPP_
#define OTGED_GRAPH_GRAPH_HPP_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "core/matrix.hpp"

namespace otged {

/// Node label id. Unlabeled datasets (LINUX/IMDB-like) use label 0 for
/// every node; labeled datasets use ids in [0, num_labels).
using Label = int;

/// A node-labeled undirected simple graph. Nodes are dense ids
/// [0, NumNodes()). Edges are stored both as adjacency lists (sorted) and
/// are exportable as a dense adjacency matrix.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes, Label fill_label = 0)
      : labels_(num_nodes, fill_label), adj_(num_nodes) {}

  int NumNodes() const { return static_cast<int>(labels_.size()); }
  int NumEdges() const { return num_edges_; }

  Label label(int v) const {
    OTGED_DCHECK(v >= 0 && v < NumNodes());
    return labels_[v];
  }
  void set_label(int v, Label l) {
    OTGED_DCHECK(v >= 0 && v < NumNodes());
    labels_[v] = l;
  }

  /// Adds an isolated node with the given label; returns its id.
  int AddNode(Label l);
  /// Adds edge {u, v} with an optional edge label (paper Appendix H.1;
  /// 0 = unlabeled). Requires u != v and the edge to be absent.
  void AddEdge(int u, int v, Label edge_label = 0);
  /// Removes edge {u, v}. Requires the edge to be present.
  void RemoveEdge(int u, int v);
  bool HasEdge(int u, int v) const;
  /// Label of edge {u, v}; requires the edge to be present.
  Label edge_label(int u, int v) const;
  void set_edge_label(int u, int v, Label l);
  /// True if any edge carries a non-zero label.
  bool HasEdgeLabels() const { return !edge_labels_.empty(); }
  /// Distinct edge labels in use (0 excluded); at most this many + 1
  /// classes matter for edge-label-aware GED.
  std::vector<Label> EdgeLabelAlphabet() const;
  int Degree(int v) const { return static_cast<int>(adj_[v].size()); }
  const std::vector<int>& Neighbors(int v) const { return adj_[v]; }

  /// Dense 0/1 adjacency matrix (n x n, symmetric, zero diagonal).
  Matrix AdjacencyMatrix() const;
  /// One-hot label features (n x num_labels). For unlabeled graphs
  /// (num_labels == 1) this is a constant-1 column, matching the paper's
  /// convention for unlabeled datasets.
  Matrix OneHotLabels(int num_labels) const;

  bool IsConnected() const;
  /// Structural sanity: symmetric sorted adjacency, no loops/multi-edges.
  bool CheckInvariants() const;

  /// Node-identity equality (same labels and edge set).
  bool operator==(const Graph& o) const;

  /// Compact textual form for debugging: "n m | labels | edges".
  std::string ToString() const;

 private:
  static uint64_t EdgeKey(int u, int v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
  }

  std::vector<Label> labels_;
  std::vector<std::vector<int>> adj_;
  /// Sparse edge-label store: only non-zero labels are recorded, so
  /// node-labeled-only workloads (the paper's main setting) pay nothing.
  std::map<uint64_t, Label> edge_labels_;
  int num_edges_ = 0;
};

/// Maximum possible number of edit operations between g1 and g2
/// (the paper's GED normalizer): max(n1,n2) + max(m1,m2).
int MaxEditOps(const Graph& g1, const Graph& g2);

/// Label-set based GED lower bound, Eq. (22) of the paper:
/// |L(V1) xor L(V2)| multiset difference plus | |E1| - |E2| |.
int LabelSetLowerBound(const Graph& g1, const Graph& g2);

}  // namespace otged

#endif  // OTGED_GRAPH_GRAPH_HPP_
