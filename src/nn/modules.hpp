/// \file modules.hpp
/// \brief Neural modules mirroring the paper's architecture (Section 4):
/// GIN / GCN convolutions, MLP, attention graph pooling (Eq. 13), the
/// neural tensor network (Eq. 14), the cost-matrix layer (Eq. 10), and
/// the learnable Sinkhorn layer (Eq. 12).
#ifndef OTGED_NN_MODULES_HPP_
#define OTGED_NN_MODULES_HPP_

#include <vector>

#include "core/random.hpp"
#include "nn/tensor.hpp"

namespace otged {

/// Dense layer y = x W + b (x: n x in, W: in x out, b broadcast per row).
class Linear {
 public:
  Linear() = default;
  Linear(int in, int out, Rng* rng);
  Tensor Forward(const Tensor& x) const;
  void CollectParams(std::vector<Tensor>* out);

  Tensor weight, bias;
};

/// Multi-layer perceptron with ReLU between layers (none after the last).
class Mlp {
 public:
  Mlp() = default;
  /// dims = {in, h1, ..., out}.
  Mlp(const std::vector<int>& dims, Rng* rng);
  Tensor Forward(const Tensor& x) const;
  void CollectParams(std::vector<Tensor>* out);

  std::vector<Linear> layers;
};

/// Graph Isomorphism Network layer (Eq. 8):
///   h' = MLP((1 + delta) h + A h), delta trainable.
class GinLayer {
 public:
  GinLayer() = default;
  GinLayer(int in, int out, Rng* rng);
  /// `adj` is the constant n x n adjacency tensor of the graph.
  Tensor Forward(const Tensor& h, const Tensor& adj) const;
  void CollectParams(std::vector<Tensor>* out);

  Tensor delta;  // 1x1
  Mlp mlp;       // two dense layers, ReLU inside
};

/// GCN layer (ablation "w/ GCN"): h' = ReLU(\hat{A} h W), where \hat{A}
/// is the symmetric-normalized adjacency with self-loops (precomputed by
/// the caller and passed as `norm_adj`).
class GcnLayer {
 public:
  GcnLayer() = default;
  GcnLayer(int in, int out, Rng* rng);
  Tensor Forward(const Tensor& h, const Tensor& norm_adj) const;
  void CollectParams(std::vector<Tensor>* out);

  Linear linear;
};

/// Attention graph pooling (Eq. 13): global context c = tanh(mean(H) W1),
/// weights a = sigmoid(H c^T), embedding h_G = a^T H (1 x d).
class AttentionPooling {
 public:
  AttentionPooling() = default;
  AttentionPooling(int dim, Rng* rng);
  Tensor Forward(const Tensor& h) const;
  void CollectParams(std::vector<Tensor>* out);

  Tensor w1;  // d x d
};

/// Neural tensor network (Eq. 14): L bilinear slices + linear + bias,
/// ReLU; inputs are 1 x d graph embeddings, output is 1 x L.
class Ntn {
 public:
  Ntn() = default;
  Ntn(int dim, int slices, Rng* rng);
  Tensor Forward(const Tensor& hg1, const Tensor& hg2) const;
  void CollectParams(std::vector<Tensor>* out);

  std::vector<Tensor> w2;  // L slices of d x d
  Tensor w3;               // 2d x L
  Tensor bias;             // 1 x L
};

/// Cost-matrix layer (Eq. 10): C = tanh(H1 W H2^T) (n1 x n2).
class CostMatrixLayer {
 public:
  CostMatrixLayer() = default;
  CostMatrixLayer(int dim, Rng* rng);
  /// `inner_product_only` drops W and tanh (the "w/o Cost" ablation).
  Tensor Forward(const Tensor& h1, const Tensor& h2,
                 bool inner_product_only = false) const;
  void CollectParams(std::vector<Tensor>* out);

  Tensor w;  // d x d
};

/// Learnable Sinkhorn layer (Section 4.2): unrolls `iters` dual updates of
/// Algorithm 1 on the dummy-row-extended cost matrix; the regularization
/// coefficient eps = exp(log_eps) is trainable unless frozen.
class SinkhornLayer {
 public:
  SinkhornLayer() = default;
  explicit SinkhornLayer(double eps0, int iters, bool learnable = true);
  /// `cost` is n1 x n2 with n1 <= n2; returns the n1 x n2 coupling.
  Tensor Forward(const Tensor& cost) const;
  void CollectParams(std::vector<Tensor>* out);
  double CurrentEpsilon() const;

  Tensor log_eps;  // 1x1
  int iters = 5;
  bool learnable = true;
};

/// Xavier/Glorot-uniform initialized matrix.
Matrix GlorotInit(int in, int out, Rng* rng);

}  // namespace otged

#endif  // OTGED_NN_MODULES_HPP_
