#include "nn/modules.hpp"

#include <cmath>

namespace otged {

Matrix GlorotInit(int in, int out, Rng* rng) {
  double bound = std::sqrt(6.0 / (in + out));
  Matrix w(in, out);
  for (int i = 0; i < w.size(); ++i) w[i] = rng->Uniform(-bound, bound);
  return w;
}

// ---- Linear ---------------------------------------------------------------

Linear::Linear(int in, int out, Rng* rng)
    : weight(GlorotInit(in, out, rng), /*requires_grad=*/true),
      bias(Matrix(1, out, 0.0), /*requires_grad=*/true) {}

Tensor Linear::Forward(const Tensor& x) const {
  // Broadcast bias to every row via ones(n,1) * bias(1,out).
  Tensor ones(Matrix::Ones(x.rows(), 1));
  return Add(MatMul(x, weight), MatMul(ones, bias));
}

void Linear::CollectParams(std::vector<Tensor>* out) {
  out->push_back(weight);
  out->push_back(bias);
}

// ---- Mlp ------------------------------------------------------------------

Mlp::Mlp(const std::vector<int>& dims, Rng* rng) {
  OTGED_CHECK(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i)
    layers.emplace_back(dims[i], dims[i + 1], rng);
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers.size(); ++i) {
    h = layers[i].Forward(h);
    if (i + 1 < layers.size()) h = Relu(h);
  }
  return h;
}

void Mlp::CollectParams(std::vector<Tensor>* out) {
  for (Linear& l : layers) l.CollectParams(out);
}

// ---- GinLayer -------------------------------------------------------------

GinLayer::GinLayer(int in, int out, Rng* rng)
    : delta(Matrix(1, 1, 0.0), /*requires_grad=*/true),
      mlp({in, out, out}, rng) {}

Tensor GinLayer::Forward(const Tensor& h, const Tensor& adj) const {
  Tensor aggregated = Add(ScaleOnePlus(h, delta), MatMul(adj, h));
  return Relu(mlp.Forward(aggregated));
}

void GinLayer::CollectParams(std::vector<Tensor>* out) {
  out->push_back(delta);
  mlp.CollectParams(out);
}

// ---- GcnLayer -------------------------------------------------------------

GcnLayer::GcnLayer(int in, int out, Rng* rng) : linear(in, out, rng) {}

Tensor GcnLayer::Forward(const Tensor& h, const Tensor& norm_adj) const {
  return Relu(linear.Forward(MatMul(norm_adj, h)));
}

void GcnLayer::CollectParams(std::vector<Tensor>* out) {
  linear.CollectParams(out);
}

// ---- AttentionPooling -----------------------------------------------------

AttentionPooling::AttentionPooling(int dim, Rng* rng)
    : w1(GlorotInit(dim, dim, rng), /*requires_grad=*/true) {}

Tensor AttentionPooling::Forward(const Tensor& h) const {
  Tensor context = TanhT(MatMul(RowMean(h), w1));        // 1 x d
  Tensor att = Sigmoid(MatMul(h, Transpose(context)));   // n x 1
  return MatMul(Transpose(att), h);                      // 1 x d
}

void AttentionPooling::CollectParams(std::vector<Tensor>* out) {
  out->push_back(w1);
}

// ---- Ntn ------------------------------------------------------------------

Ntn::Ntn(int dim, int slices, Rng* rng) {
  for (int l = 0; l < slices; ++l)
    w2.emplace_back(GlorotInit(dim, dim, rng), /*requires_grad=*/true);
  w3 = Tensor(GlorotInit(2 * dim, slices, rng), /*requires_grad=*/true);
  bias = Tensor(Matrix(1, slices, 0.0), /*requires_grad=*/true);
}

Tensor Ntn::Forward(const Tensor& hg1, const Tensor& hg2) const {
  // Bilinear slices: s_l = hg1 W2_l hg2^T -> build a 1 x L row.
  Tensor row;
  for (size_t l = 0; l < w2.size(); ++l) {
    Tensor s = MatMul(MatMul(hg1, w2[l]), Transpose(hg2));  // 1x1
    row = l == 0 ? s : ConcatCols(row, s);
  }
  Tensor lin = MatMul(ConcatCols(hg1, hg2), w3);  // 1 x L
  return Relu(Add(Add(row, lin), bias));
}

void Ntn::CollectParams(std::vector<Tensor>* out) {
  for (Tensor& t : w2) out->push_back(t);
  out->push_back(w3);
  out->push_back(bias);
}

// ---- CostMatrixLayer ------------------------------------------------------

CostMatrixLayer::CostMatrixLayer(int dim, Rng* rng)
    : w(GlorotInit(dim, dim, rng), /*requires_grad=*/true) {}

Tensor CostMatrixLayer::Forward(const Tensor& h1, const Tensor& h2,
                                bool inner_product_only) const {
  if (inner_product_only) return MatMul(h1, Transpose(h2));
  return TanhT(MatMul(MatMul(h1, w), Transpose(h2)));
}

void CostMatrixLayer::CollectParams(std::vector<Tensor>* out) {
  out->push_back(w);
}

// ---- SinkhornLayer ---------------------------------------------------------

SinkhornLayer::SinkhornLayer(double eps0, int iters_, bool learnable_)
    : log_eps(Matrix(1, 1, std::log(eps0)), /*requires_grad=*/learnable_),
      iters(iters_),
      learnable(learnable_) {}

Tensor SinkhornLayer::Forward(const Tensor& cost) const {
  const int n1 = cost.rows(), n2 = cost.cols();
  OTGED_CHECK(n1 <= n2);
  // Dummy-row extension (Eq. 11): zero row, mass n2 - n1.
  Tensor zero_row(Matrix(1, n2, 0.0));
  Tensor ext = ConcatRows(cost, zero_row);  // (n1+1) x n2
  Matrix mu_m = Matrix::ColVec(n1 + 1, 1.0);
  mu_m(n1, 0) = static_cast<double>(n2 - n1);
  Tensor mu(mu_m), nu(Matrix::ColVec(n2, 1.0));

  Tensor kernel = KernelExp(ext, log_eps);
  Tensor kernel_t = Transpose(kernel);
  Tensor phi(Matrix::ColVec(n1 + 1, 1.0));
  Tensor psi;
  for (int m = 0; m < iters; ++m) {
    psi = CwiseDiv(nu, MatMul(kernel_t, phi));
    phi = CwiseDiv(mu, MatMul(kernel, psi));
  }
  // pi = diag(phi) K diag(psi) = K ∘ (phi psi^T); drop the dummy row.
  Tensor pi = Hadamard(kernel, MatMul(phi, Transpose(psi)));
  return SliceRows(pi, 0, n1);
}

void SinkhornLayer::CollectParams(std::vector<Tensor>* out) {
  if (learnable) out->push_back(log_eps);
}

double SinkhornLayer::CurrentEpsilon() const {
  return std::exp(log_eps.item());
}

}  // namespace otged
