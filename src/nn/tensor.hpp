/// \file tensor.hpp
/// \brief Minimal reverse-mode automatic differentiation over dense
/// matrices — the training substrate for GEDIOT and the learned baselines.
///
/// Design: define-by-run. Every operation allocates a graph node holding
/// the result value, its parents, and a backward closure that scatters the
/// incoming gradient to the parents. `Tensor` is a cheap shared handle.
/// Gradients are accumulated by `Backward()` on a scalar (1x1) output via
/// reverse topological order. The op set is exactly what the paper's
/// architecture needs (GIN, MLP, NTN, attention pooling, learnable
/// Sinkhorn, BCE/MSE losses) — nothing speculative.
#ifndef OTGED_NN_TENSOR_HPP_
#define OTGED_NN_TENSOR_HPP_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/matrix.hpp"

namespace otged {

namespace internal {
struct TensorNode {
  Matrix value;
  Matrix grad;              // allocated lazily on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  std::function<void(TensorNode&)> backward;  // scatters node.grad to parents

  void AccumulateGrad(const Matrix& g);
};
}  // namespace internal

/// Shared handle to an autograd node.
class Tensor {
 public:
  Tensor() = default;
  /// Leaf tensor. `requires_grad` marks trainable parameters; constants
  /// (adjacency matrices, mass vectors, targets) leave it false.
  explicit Tensor(Matrix value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value; }
  /// Mutable access for optimizers (in-place parameter updates).
  Matrix& mutable_value() { return node_->value; }
  const Matrix& grad() const { return node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }
  void ZeroGrad();

  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }
  /// Scalar convenience for 1x1 tensors.
  double item() const {
    OTGED_CHECK(rows() == 1 && cols() == 1);
    return node_->value(0, 0);
  }

  /// Runs reverse-mode accumulation from this scalar (1x1) tensor.
  void Backward();

  std::shared_ptr<internal::TensorNode> node() const { return node_; }

 private:
  friend Tensor MakeOp(Matrix value, std::vector<Tensor> parents,
                       std::function<void(internal::TensorNode&)> backward);
  std::shared_ptr<internal::TensorNode> node_;
};

/// Internal op constructor (exposed for the modules layer).
Tensor MakeOp(Matrix value, std::vector<Tensor> parents,
              std::function<void(internal::TensorNode&)> backward);

// ---- Core ops -------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Neg(const Tensor& a);
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor Hadamard(const Tensor& a, const Tensor& b);
/// Element-wise a / b with denominator clamped away from 0 by `eps`.
Tensor CwiseDiv(const Tensor& a, const Tensor& b, double eps = 1e-30);
Tensor Transpose(const Tensor& a);
Tensor ScaleConst(const Tensor& a, double s);
/// out = a * s where s is a trainable 1x1 scalar tensor.
Tensor ScaleScalar(const Tensor& a, const Tensor& s);
/// out = a * (1 + s): the GIN self-weighting.
Tensor ScaleOnePlus(const Tensor& a, const Tensor& s);

// ---- Non-linearities ------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor TanhT(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor ExpT(const Tensor& a);

// ---- Shape ops ------------------------------------------------------------

Tensor ConcatCols(const Tensor& a, const Tensor& b);
Tensor ConcatRows(const Tensor& a, const Tensor& b);
Tensor SliceRows(const Tensor& a, int r0, int r1);

// ---- Reductions -----------------------------------------------------------

/// Sum of all entries -> 1x1.
Tensor Sum(const Tensor& a);
/// Mean over rows -> 1 x cols.
Tensor RowMean(const Tensor& a);
/// Frobenius dot product <a, b> -> 1x1.
Tensor Dot(const Tensor& a, const Tensor& b);

// ---- Fused ops for the learnable Sinkhorn layer ---------------------------

/// K = exp(-c / eps) with eps = exp(log_eps) (1x1 trainable scalar). The
/// exp parameterization keeps the learnable regularization coefficient
/// strictly positive (Section 4.2: "learnable epsilon").
Tensor KernelExp(const Tensor& c, const Tensor& log_eps);

// ---- Losses ---------------------------------------------------------------

/// Mean binary cross-entropy between prediction `p` (entries clamped to
/// (delta, 1-delta)) and constant target `t` in [0,1]; normalized by the
/// entry count (the paper's L_m with 1/(n1 n2)).
Tensor BceLoss(const Tensor& p, const Matrix& t, double delta = 1e-7);
/// Squared error (pred - target)^2 of a 1x1 prediction.
Tensor MseLoss(const Tensor& pred, double target);

}  // namespace otged

#endif  // OTGED_NN_TENSOR_HPP_
