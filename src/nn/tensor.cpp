#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace otged {

namespace internal {

void TensorNode::AccumulateGrad(const Matrix& g) {
  if (grad.empty()) {
    grad = g;
  } else {
    grad += g;
  }
}

}  // namespace internal

using internal::TensorNode;

Tensor::Tensor(Matrix value, bool requires_grad) {
  node_ = std::make_shared<TensorNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

void Tensor::ZeroGrad() { node_->grad = Matrix(); }

Tensor MakeOp(Matrix value, std::vector<Tensor> parents,
              std::function<void(TensorNode&)> backward) {
  Tensor t;
  t.node_ = std::make_shared<TensorNode>();
  t.node_->value = std::move(value);
  t.node_->requires_grad = false;
  for (const Tensor& p : parents) {
    OTGED_CHECK(p.defined());
    t.node_->parents.push_back(p.node());
  }
  t.node_->backward = std::move(backward);
  return t;
}

void Tensor::Backward() {
  OTGED_CHECK(rows() == 1 && cols() == 1);
  // Reverse topological order via iterative DFS.
  std::vector<TensorNode*> order;
  std::unordered_set<TensorNode*> visited;
  std::vector<std::pair<TensorNode*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, i] = stack.back();
    if (i < n->parents.size()) {
      TensorNode* p = n->parents[i++].get();
      if (!visited.count(p)) {
        visited.insert(p);
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  node_->grad = Matrix(1, 1, 1.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode* n = *it;
    if (n->backward && !n->grad.empty()) n->backward(*n);
  }
}

// ---- Core ops -------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  Matrix v = a.value() + b.value();
  return MakeOp(std::move(v), {a, b}, [](TensorNode& n) {
    n.parents[0]->AccumulateGrad(n.grad);
    n.parents[1]->AccumulateGrad(n.grad);
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Matrix v = a.value() - b.value();
  return MakeOp(std::move(v), {a, b}, [](TensorNode& n) {
    n.parents[0]->AccumulateGrad(n.grad);
    n.parents[1]->AccumulateGrad(-n.grad);
  });
}

Tensor Neg(const Tensor& a) {
  return MakeOp(-a.value(), {a}, [](TensorNode& n) {
    n.parents[0]->AccumulateGrad(-n.grad);
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Matrix v = a.value().MatMul(b.value());
  return MakeOp(std::move(v), {a, b}, [](TensorNode& n) {
    const Matrix& av = n.parents[0]->value;
    const Matrix& bv = n.parents[1]->value;
    n.parents[0]->AccumulateGrad(n.grad.MatMul(bv.Transpose()));
    n.parents[1]->AccumulateGrad(av.Transpose().MatMul(n.grad));
  });
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  Matrix v = a.value().Hadamard(b.value());
  return MakeOp(std::move(v), {a, b}, [](TensorNode& n) {
    n.parents[0]->AccumulateGrad(n.grad.Hadamard(n.parents[1]->value));
    n.parents[1]->AccumulateGrad(n.grad.Hadamard(n.parents[0]->value));
  });
}

Tensor CwiseDiv(const Tensor& a, const Tensor& b, double eps) {
  Matrix v = a.value().CwiseDiv(b.value(), eps);
  return MakeOp(std::move(v), {a, b}, [eps](TensorNode& n) {
    const Matrix& av = n.parents[0]->value;
    const Matrix& bv = n.parents[1]->value;
    Matrix inv_b = Matrix::Ones(bv.rows(), bv.cols()).CwiseDiv(bv, eps);
    n.parents[0]->AccumulateGrad(n.grad.Hadamard(inv_b));
    // d/db (a/b) = -a / b^2
    Matrix db = n.grad.Hadamard(av).Hadamard(inv_b).Hadamard(inv_b);
    n.parents[1]->AccumulateGrad(-db);
  });
}

Tensor Transpose(const Tensor& a) {
  return MakeOp(a.value().Transpose(), {a}, [](TensorNode& n) {
    n.parents[0]->AccumulateGrad(n.grad.Transpose());
  });
}

Tensor ScaleConst(const Tensor& a, double s) {
  return MakeOp(a.value() * s, {a}, [s](TensorNode& n) {
    n.parents[0]->AccumulateGrad(n.grad * s);
  });
}

Tensor ScaleScalar(const Tensor& a, const Tensor& s) {
  OTGED_CHECK(s.rows() == 1 && s.cols() == 1);
  Matrix v = a.value() * s.item();
  return MakeOp(std::move(v), {a, s}, [](TensorNode& n) {
    double sv = n.parents[1]->value(0, 0);
    n.parents[0]->AccumulateGrad(n.grad * sv);
    Matrix ds(1, 1, n.grad.Dot(n.parents[0]->value));
    n.parents[1]->AccumulateGrad(ds);
  });
}

Tensor ScaleOnePlus(const Tensor& a, const Tensor& s) {
  OTGED_CHECK(s.rows() == 1 && s.cols() == 1);
  Matrix v = a.value() * (1.0 + s.item());
  return MakeOp(std::move(v), {a, s}, [](TensorNode& n) {
    double sv = 1.0 + n.parents[1]->value(0, 0);
    n.parents[0]->AccumulateGrad(n.grad * sv);
    Matrix ds(1, 1, n.grad.Dot(n.parents[0]->value));
    n.parents[1]->AccumulateGrad(ds);
  });
}

// ---- Non-linearities ------------------------------------------------------

Tensor Relu(const Tensor& a) {
  Matrix v = a.value().Map([](double x) { return x > 0 ? x : 0.0; });
  return MakeOp(std::move(v), {a}, [](TensorNode& n) {
    Matrix g = n.grad;
    const Matrix& av = n.parents[0]->value;
    for (int i = 0; i < g.size(); ++i)
      if (av[i] <= 0) g[i] = 0.0;
    n.parents[0]->AccumulateGrad(g);
  });
}

Tensor TanhT(const Tensor& a) {
  Matrix v = a.value().Map([](double x) { return std::tanh(x); });
  Matrix saved = v;
  return MakeOp(std::move(v), {a}, [saved](TensorNode& n) {
    Matrix g = n.grad;
    for (int i = 0; i < g.size(); ++i) g[i] *= 1.0 - saved[i] * saved[i];
    n.parents[0]->AccumulateGrad(g);
  });
}

Tensor Sigmoid(const Tensor& a) {
  Matrix v = a.value().Map([](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  Matrix saved = v;
  return MakeOp(std::move(v), {a}, [saved](TensorNode& n) {
    Matrix g = n.grad;
    for (int i = 0; i < g.size(); ++i) g[i] *= saved[i] * (1.0 - saved[i]);
    n.parents[0]->AccumulateGrad(g);
  });
}

Tensor ExpT(const Tensor& a) {
  Matrix v = a.value().Map([](double x) { return std::exp(x); });
  Matrix saved = v;
  return MakeOp(std::move(v), {a}, [saved](TensorNode& n) {
    n.parents[0]->AccumulateGrad(n.grad.Hadamard(saved));
  });
}

// ---- Shape ops ------------------------------------------------------------

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  Matrix v = a.value().ConcatCols(b.value());
  int ca = a.cols();
  return MakeOp(std::move(v), {a, b}, [ca](TensorNode& n) {
    const Matrix& g = n.grad;
    Matrix ga(n.parents[0]->value.rows(), ca);
    Matrix gb(n.parents[1]->value.rows(), g.cols() - ca);
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < ca; ++j) ga(i, j) = g(i, j);
      for (int j = ca; j < g.cols(); ++j) gb(i, j - ca) = g(i, j);
    }
    n.parents[0]->AccumulateGrad(ga);
    n.parents[1]->AccumulateGrad(gb);
  });
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  Matrix v = a.value().ConcatRows(b.value());
  int ra = a.rows();
  return MakeOp(std::move(v), {a, b}, [ra](TensorNode& n) {
    n.parents[0]->AccumulateGrad(n.grad.SliceRows(0, ra));
    n.parents[1]->AccumulateGrad(n.grad.SliceRows(ra, n.grad.rows()));
  });
}

Tensor SliceRows(const Tensor& a, int r0, int r1) {
  Matrix v = a.value().SliceRows(r0, r1);
  return MakeOp(std::move(v), {a}, [r0](TensorNode& n) {
    Matrix g(n.parents[0]->value.rows(), n.parents[0]->value.cols(), 0.0);
    for (int i = 0; i < n.grad.rows(); ++i)
      for (int j = 0; j < n.grad.cols(); ++j) g(r0 + i, j) = n.grad(i, j);
    n.parents[0]->AccumulateGrad(g);
  });
}

// ---- Reductions -----------------------------------------------------------

Tensor Sum(const Tensor& a) {
  Matrix v(1, 1, a.value().Sum());
  return MakeOp(std::move(v), {a}, [](TensorNode& n) {
    double g = n.grad(0, 0);
    n.parents[0]->AccumulateGrad(
        Matrix(n.parents[0]->value.rows(), n.parents[0]->value.cols(), g));
  });
}

Tensor RowMean(const Tensor& a) {
  const int r = a.rows();
  Matrix v = a.value().ColSums() * (1.0 / r);
  return MakeOp(std::move(v), {a}, [r](TensorNode& n) {
    Matrix g(n.parents[0]->value.rows(), n.parents[0]->value.cols());
    for (int i = 0; i < g.rows(); ++i)
      for (int j = 0; j < g.cols(); ++j) g(i, j) = n.grad(0, j) / r;
    n.parents[0]->AccumulateGrad(g);
  });
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  Matrix v(1, 1, a.value().Dot(b.value()));
  return MakeOp(std::move(v), {a, b}, [](TensorNode& n) {
    double g = n.grad(0, 0);
    n.parents[0]->AccumulateGrad(n.parents[1]->value * g);
    n.parents[1]->AccumulateGrad(n.parents[0]->value * g);
  });
}

// ---- Fused ops ------------------------------------------------------------

Tensor KernelExp(const Tensor& c, const Tensor& log_eps) {
  OTGED_CHECK(log_eps.rows() == 1 && log_eps.cols() == 1);
  const double eps = std::exp(log_eps.item());
  Matrix v = c.value().Map([eps](double x) { return std::exp(-x / eps); });
  Matrix saved = v;
  return MakeOp(std::move(v), {c, log_eps}, [saved, eps](TensorNode& n) {
    const Matrix& cv = n.parents[0]->value;
    // dK/dC = -K / eps
    n.parents[0]->AccumulateGrad(n.grad.Hadamard(saved) * (-1.0 / eps));
    // dK/d(log_eps) = K * C / eps  (since d eps/d log_eps = eps)
    double s = 0.0;
    for (int i = 0; i < cv.size(); ++i)
      s += n.grad[i] * saved[i] * cv[i] / eps;
    n.parents[1]->AccumulateGrad(Matrix(1, 1, s));
  });
}

// ---- Losses ---------------------------------------------------------------

Tensor BceLoss(const Tensor& p, const Matrix& t, double delta) {
  OTGED_CHECK(p.rows() == t.rows() && p.cols() == t.cols());
  const int count = t.size();
  OTGED_CHECK(count > 0);
  const Matrix& pv = p.value();
  double loss = 0.0;
  for (int i = 0; i < count; ++i) {
    double x = std::clamp(pv[i], delta, 1.0 - delta);
    loss -= t[i] * std::log(x) + (1.0 - t[i]) * std::log(1.0 - x);
  }
  loss /= count;
  Matrix target = t;
  return MakeOp(Matrix(1, 1, loss), {p},
                [target, delta, count](TensorNode& n) {
    const Matrix& pval = n.parents[0]->value;
    double g = n.grad(0, 0);
    Matrix dp(pval.rows(), pval.cols());
    for (int i = 0; i < count; ++i) {
      double x = std::clamp(pval[i], delta, 1.0 - delta);
      dp[i] = g * (-target[i] / x + (1.0 - target[i]) / (1.0 - x)) / count;
    }
    n.parents[0]->AccumulateGrad(dp);
  });
}

Tensor MseLoss(const Tensor& pred, double target) {
  OTGED_CHECK(pred.rows() == 1 && pred.cols() == 1);
  double diff = pred.item() - target;
  return MakeOp(Matrix(1, 1, diff * diff), {pred}, [diff](TensorNode& n) {
    n.parents[0]->AccumulateGrad(Matrix(1, 1, 2.0 * diff * n.grad(0, 0)));
  });
}

}  // namespace otged
