#include "nn/adam.hpp"

#include <algorithm>
#include <cmath>

namespace otged {

Adam::Adam(std::vector<Tensor> params, const AdamOptions& opt)
    : params_(std::move(params)), opt_(opt) {
  for (const Tensor& p : params_) {
    OTGED_CHECK(p.defined() && p.requires_grad());
    m_.emplace_back(p.rows(), p.cols(), 0.0);
    v_.emplace_back(p.rows(), p.cols(), 0.0);
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opt_.beta1, t_);
  const double bc2 = 1.0 - std::pow(opt_.beta2, t_);
  for (size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    if (p.grad().empty()) continue;  // parameter unused this step
    Matrix& val = p.mutable_value();
    const Matrix& g = p.grad();
    for (int i = 0; i < val.size(); ++i) {
      double grad = g[i] + opt_.weight_decay * val[i];
      m_[k][i] = opt_.beta1 * m_[k][i] + (1.0 - opt_.beta1) * grad;
      v_[k][i] = opt_.beta2 * v_[k][i] + (1.0 - opt_.beta2) * grad * grad;
      double mhat = m_[k][i] / bc1;
      double vhat = v_[k][i] / bc2;
      val[i] -= opt_.lr * mhat / (std::sqrt(vhat) + opt_.eps);
    }
  }
}

void Adam::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

void Adam::ClipGradients(double clip) {
  for (Tensor& p : params_) {
    if (p.grad().empty()) continue;
    // In-place clamp via const_cast-free path: copy, clamp, re-accumulate.
    Matrix g = p.grad();
    for (int i = 0; i < g.size(); ++i) g[i] = std::clamp(g[i], -clip, clip);
    p.ZeroGrad();
    p.node()->AccumulateGrad(g);
  }
}

}  // namespace otged
