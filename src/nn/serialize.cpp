#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace otged {

namespace {
constexpr uint64_t kMagic = 0x4F544745442E3031ull;  // "OTGED.01"
}

bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  uint64_t magic = kMagic;
  uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    int64_t r = p.rows(), c = p.cols();
    out.write(reinterpret_cast<const char*>(&r), sizeof(r));
    out.write(reinterpret_cast<const char*>(&c), sizeof(c));
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(sizeof(double)) * r * c);
  }
  return static_cast<bool>(out);
}

bool LoadParameters(std::vector<Tensor>* params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic || count != params->size()) return false;
  for (Tensor& p : *params) {
    int64_t r = 0, c = 0;
    in.read(reinterpret_cast<char*>(&r), sizeof(r));
    in.read(reinterpret_cast<char*>(&c), sizeof(c));
    if (!in || r != p.rows() || c != p.cols()) return false;
    in.read(reinterpret_cast<char*>(p.mutable_value().data()),
            static_cast<std::streamsize>(sizeof(double)) * r * c);
    if (!in) return false;
  }
  return true;
}

}  // namespace otged
