/// \file serialize.hpp
/// \brief Binary (de)serialization of parameter tensors, so trained models
/// can be cached across example/benchmark runs.
#ifndef OTGED_NN_SERIALIZE_HPP_
#define OTGED_NN_SERIALIZE_HPP_

#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace otged {

/// Writes all parameter values (shapes + doubles) to `path`. Returns
/// false on I/O failure.
bool SaveParameters(const std::vector<Tensor>& params,
                    const std::string& path);

/// Loads parameters saved by SaveParameters into `params` (shapes must
/// match exactly). Returns false on I/O failure or shape mismatch.
bool LoadParameters(std::vector<Tensor>* params, const std::string& path);

}  // namespace otged

#endif  // OTGED_NN_SERIALIZE_HPP_
