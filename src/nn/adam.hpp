/// \file adam.hpp
/// \brief Adam optimizer with decoupled weight decay, operating on the
/// parameter tensors collected from modules.
#ifndef OTGED_NN_ADAM_HPP_
#define OTGED_NN_ADAM_HPP_

#include <vector>

#include "nn/tensor.hpp"

namespace otged {

/// Hyperparameters for Adam, matching the paper's training setup
/// (lr 1e-3, weight decay 5e-4).
struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 5e-4;
};

/// Adam (Kingma & Ba) with optional weight decay.
class Adam {
 public:
  /// Back-compat alias so call sites can say Adam::Options.
  using Options = AdamOptions;

  Adam(std::vector<Tensor> params, const AdamOptions& opt = AdamOptions());

  /// Applies one update using the accumulated gradients, then leaves the
  /// gradients in place (call ZeroGrad()).
  void Step();
  /// Clears all parameter gradients.
  void ZeroGrad();
  /// Clips gradient entries to [-clip, clip] (training stability).
  void ClipGradients(double clip);

  const std::vector<Tensor>& params() const { return params_; }

 private:
  std::vector<Tensor> params_;
  std::vector<Matrix> m_, v_;
  AdamOptions opt_;
  long t_ = 0;
};

}  // namespace otged

#endif  // OTGED_NN_ADAM_HPP_
