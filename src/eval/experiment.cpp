#include "eval/experiment.hpp"

#include <chrono>
#include <cstdio>

namespace otged {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

GedRow EvaluateGed(const std::string& name, const GedFn& fn,
                   const std::vector<QueryGroup>& groups) {
  GedRow row;
  row.method = name;
  std::vector<double> all_pred;
  std::vector<int> all_gt;
  double rho_sum = 0, tau_sum = 0, p10_sum = 0, p20_sum = 0;
  int group_count = 0;
  long pair_count = 0;

  auto start = Clock::now();
  for (const QueryGroup& group : groups) {
    std::vector<double> pred;
    std::vector<double> gt_d;
    std::vector<int> gt;
    for (const GedPair& pair : group.pairs) {
      double p = fn(pair);
      pred.push_back(p);
      gt.push_back(pair.ged);
      gt_d.push_back(pair.ged);
      all_pred.push_back(p);
      all_gt.push_back(pair.ged);
      ++pair_count;
    }
    if (pred.size() >= 2) {
      rho_sum += SpearmanRho(pred, gt_d);
      tau_sum += KendallTau(pred, gt_d);
      p10_sum += PrecisionAtK(pred, gt, 10);
      p20_sum += PrecisionAtK(pred, gt, 20);
      ++group_count;
    }
  }
  double elapsed = SecondsSince(start);

  row.mae = MeanAbsoluteError(all_pred, all_gt);
  row.accuracy = Accuracy(all_pred, all_gt);
  row.feasibility = Feasibility(all_pred, all_gt);
  if (group_count > 0) {
    row.rho = rho_sum / group_count;
    row.tau = tau_sum / group_count;
    row.p_at_10 = p10_sum / group_count;
    row.p_at_20 = p20_sum / group_count;
  }
  row.sec_per_100p =
      pair_count > 0 ? elapsed / static_cast<double>(pair_count) * 100.0 : 0.0;
  return row;
}

GepRow EvaluateGep(const std::string& name, const GepFn& fn,
                   const std::vector<QueryGroup>& groups) {
  GepRow row;
  row.method = name;
  std::vector<double> all_pred;
  std::vector<int> all_gt;
  double rho_sum = 0, tau_sum = 0, p10_sum = 0, p20_sum = 0;
  double rec_sum = 0, prec_sum = 0, f1_sum = 0;
  int group_count = 0;
  long pair_count = 0;

  auto start = Clock::now();
  for (const QueryGroup& group : groups) {
    std::vector<double> pred;
    std::vector<double> gt_d;
    std::vector<int> gt;
    for (const GedPair& pair : group.pairs) {
      GepResult res = fn(pair);
      pred.push_back(res.ged);
      gt.push_back(pair.ged);
      gt_d.push_back(pair.ged);
      all_pred.push_back(res.ged);
      all_gt.push_back(pair.ged);
      PathQuality q = EvaluatePath(res.path, pair.gt_path);
      rec_sum += q.recall;
      prec_sum += q.precision;
      f1_sum += q.f1;
      ++pair_count;
    }
    if (pred.size() >= 2) {
      rho_sum += SpearmanRho(pred, gt_d);
      tau_sum += KendallTau(pred, gt_d);
      p10_sum += PrecisionAtK(pred, gt, 10);
      p20_sum += PrecisionAtK(pred, gt, 20);
      ++group_count;
    }
  }
  double elapsed = SecondsSince(start);

  row.mae = MeanAbsoluteError(all_pred, all_gt);
  row.accuracy = Accuracy(all_pred, all_gt);
  if (group_count > 0) {
    row.rho = rho_sum / group_count;
    row.tau = tau_sum / group_count;
    row.p_at_10 = p10_sum / group_count;
    row.p_at_20 = p20_sum / group_count;
  }
  if (pair_count > 0) {
    const double pairs = static_cast<double>(pair_count);
    row.recall = rec_sum / pairs;
    row.precision = prec_sum / pairs;
    row.f1 = f1_sum / pairs;
    row.sec_per_100p = elapsed / pairs * 100.0;
  }
  return row;
}

GedFn GedFnFromModel(GedModel* model) {
  return [model](const GedPair& pair) {
    return model->Predict(pair.g1, pair.g2).ged;
  };
}

GepFn GepFnFromModel(GedModel* model, int k) {
  return [model, k](const GedPair& pair) {
    Prediction p = model->Predict(pair.g1, pair.g2);
    OTGED_CHECK_MSG(!p.coupling.empty(),
                    "model does not produce a coupling matrix");
    return KBestGepSearch(pair.g1, pair.g2, p.coupling, k);
  };
}

void PrintGedTable(const std::string& title,
                   const std::vector<GedRow>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-16s %8s %9s %7s %7s %7s %7s %7s %12s\n", "Method", "MAE",
              "Acc", "rho", "tau", "p@10", "p@20", "Feas",
              "sec/100p");
  for (const GedRow& r : rows) {
    std::printf("%-16s %8.3f %8.1f%% %7.3f %7.3f %7.3f %7.3f %6.1f%% %12.3f\n",
                r.method.c_str(), r.mae, 100 * r.accuracy, r.rho, r.tau,
                r.p_at_10, r.p_at_20, 100 * r.feasibility, r.sec_per_100p);
  }
}

void PrintGepTable(const std::string& title,
                   const std::vector<GepRow>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-16s %8s %9s %7s %7s %7s %7s %7s %7s %7s %12s\n", "Method",
              "MAE", "Acc", "rho", "tau", "p@10", "p@20", "Recall", "Prec",
              "F1", "sec/100p");
  for (const GepRow& r : rows) {
    std::printf(
        "%-16s %8.3f %8.1f%% %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f "
        "%12.3f\n",
        r.method.c_str(), r.mae, 100 * r.accuracy, r.rho, r.tau, r.p_at_10,
        r.p_at_20, r.recall, r.precision, r.f1, r.sec_per_100p);
  }
}

std::vector<const GedPair*> FlattenGroups(
    const std::vector<QueryGroup>& groups) {
  std::vector<const GedPair*> out;
  for (const QueryGroup& g : groups)
    for (const GedPair& p : g.pairs) out.push_back(&p);
  return out;
}

}  // namespace otged
