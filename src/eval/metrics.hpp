/// \file metrics.hpp
/// \brief Evaluation metrics from Section 6.3 of the paper: value metrics
/// (MAE, accuracy, feasibility), ranking metrics (Spearman rho, Kendall
/// tau, precision@k), and path metrics (recall / precision / F1).
#ifndef OTGED_EVAL_METRICS_HPP_
#define OTGED_EVAL_METRICS_HPP_

#include <vector>

#include "editpath/edit_path.hpp"

namespace otged {

/// Mean absolute error between predictions and ground truths.
double MeanAbsoluteError(const std::vector<double>& pred,
                         const std::vector<int>& gt);

/// Fraction of predictions equal to the ground truth after rounding to
/// the nearest integer.
double Accuracy(const std::vector<double>& pred, const std::vector<int>& gt);

/// Fraction of predictions that are >= the ground truth (after rounding),
/// i.e., lengths for which a feasible edit path exists.
double Feasibility(const std::vector<double>& pred,
                   const std::vector<int>& gt);

/// Spearman's rank correlation coefficient (average ranks for ties).
double SpearmanRho(const std::vector<double>& a, const std::vector<double>& b);

/// Kendall's tau-b (tie-corrected).
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

/// Precision at k: |top-k(pred) ∩ top-k(gt)| / k, where "top" means the
/// k smallest values (most similar graphs). Ties are broken by index.
double PrecisionAtK(const std::vector<double>& pred,
                    const std::vector<int>& gt, int k);

/// Path quality (paper Eq. for Recall/Precision/F1): multiset overlap of
/// canonical edit operations.
struct PathQuality {
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
};
PathQuality EvaluatePath(const std::vector<EditOp>& predicted,
                         const std::vector<EditOp>& ground_truth);

/// Fraction of sampled triples satisfying the triangle inequality
/// d(1,3) <= d(1,2) + d(2,3) under the given prediction values.
double TriangleInequalityRate(const std::vector<double>& d12,
                              const std::vector<double>& d23,
                              const std::vector<double>& d13);

}  // namespace otged

#endif  // OTGED_EVAL_METRICS_HPP_
