#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace otged {

namespace {

// Average ranks (1-based) with tie averaging.
std::vector<double> AverageRanks(const std::vector<double>& x) {
  const size_t n = x.size();
  std::vector<int> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](int a, int b) { return x[a] < x[b]; });
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && x[idx[j + 1]] == x[idx[i]]) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[idx[k]] = avg;
    i = j + 1;
  }
  return rank;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = a.size();
  if (n < 2) return 1.0;
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / static_cast<double>(n);
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / static_cast<double>(n);
  double num = 0, da = 0, db = 0;
  for (size_t i = 0; i < n; ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0 || db <= 0) return da == db ? 1.0 : 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace

double MeanAbsoluteError(const std::vector<double>& pred,
                         const std::vector<int>& gt) {
  OTGED_CHECK(pred.size() == gt.size() && !pred.empty());
  double s = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) s += std::abs(pred[i] - gt[i]);
  return s / static_cast<double>(pred.size());
}

double Accuracy(const std::vector<double>& pred, const std::vector<int>& gt) {
  OTGED_CHECK(pred.size() == gt.size() && !pred.empty());
  int hit = 0;
  for (size_t i = 0; i < pred.size(); ++i)
    if (static_cast<int>(std::lround(pred[i])) == gt[i]) ++hit;
  return static_cast<double>(hit) / static_cast<double>(pred.size());
}

double Feasibility(const std::vector<double>& pred,
                   const std::vector<int>& gt) {
  OTGED_CHECK(pred.size() == gt.size() && !pred.empty());
  int ok = 0;
  for (size_t i = 0; i < pred.size(); ++i)
    if (std::lround(pred[i]) >= gt[i]) ++ok;
  return static_cast<double>(ok) / static_cast<double>(pred.size());
}

double SpearmanRho(const std::vector<double>& a,
                   const std::vector<double>& b) {
  OTGED_CHECK(a.size() == b.size());
  return PearsonCorrelation(AverageRanks(a), AverageRanks(b));
}

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  OTGED_CHECK(a.size() == b.size());
  const size_t n = a.size();
  long concordant = 0, discordant = 0, ties_a = 0, ties_b = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j], db = b[i] - b[j];
      if (da == 0 && db == 0) continue;
      if (da == 0) {
        ++ties_a;
      } else if (db == 0) {
        ++ties_b;
      } else if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  double denom = std::sqrt(static_cast<double>(concordant + discordant +
                                               ties_a) *
                           static_cast<double>(concordant + discordant +
                                               ties_b));
  if (denom == 0) return 1.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double PrecisionAtK(const std::vector<double>& pred,
                    const std::vector<int>& gt, int k) {
  OTGED_CHECK(pred.size() == gt.size());
  const int n = static_cast<int>(pred.size());
  k = std::min(k, n);
  if (k == 0) return 1.0;
  std::vector<int> ip(n), ig(n);
  std::iota(ip.begin(), ip.end(), 0);
  ig = ip;
  std::stable_sort(ip.begin(), ip.end(),
                   [&](int x, int y) { return pred[x] < pred[y]; });
  std::stable_sort(ig.begin(), ig.end(),
                   [&](int x, int y) { return gt[x] < gt[y]; });
  std::vector<char> in_gt(n, 0);
  for (int i = 0; i < k; ++i) in_gt[ig[i]] = 1;
  int hit = 0;
  for (int i = 0; i < k; ++i)
    if (in_gt[ip[i]]) ++hit;
  return static_cast<double>(hit) / k;
}

PathQuality EvaluatePath(const std::vector<EditOp>& predicted,
                         const std::vector<EditOp>& ground_truth) {
  PathQuality q;
  if (predicted.empty() && ground_truth.empty()) {
    q.recall = q.precision = q.f1 = 1.0;
    return q;
  }
  int common = PathIntersectionSize(predicted, ground_truth);
  q.recall = ground_truth.empty()
                 ? 1.0
                 : static_cast<double>(common) /
                       static_cast<double>(ground_truth.size());
  q.precision =
      predicted.empty()
          ? 1.0
          : static_cast<double>(common) / static_cast<double>(predicted.size());
  q.f1 = (q.recall + q.precision) > 0
             ? 2 * q.recall * q.precision / (q.recall + q.precision)
             : 0.0;
  return q;
}

double TriangleInequalityRate(const std::vector<double>& d12,
                              const std::vector<double>& d23,
                              const std::vector<double>& d13) {
  OTGED_CHECK(d12.size() == d23.size() && d23.size() == d13.size());
  if (d12.empty()) return 1.0;
  int ok = 0;
  for (size_t i = 0; i < d12.size(); ++i)
    if (d13[i] <= d12[i] + d23[i] + 1e-9) ++ok;
  return static_cast<double>(ok) / static_cast<double>(d12.size());
}

}  // namespace otged
