/// \file experiment.hpp
/// \brief Experiment drivers shared by the bench binaries: run a GED (or
/// GEP) method over grouped test pairs, aggregate the paper's metric
/// suite, and print paper-style tables.
#ifndef OTGED_EVAL_EXPERIMENT_HPP_
#define OTGED_EVAL_EXPERIMENT_HPP_

#include <functional>
#include <string>
#include <vector>

#include "assignment/kbest.hpp"
#include "graph/dataset.hpp"
#include "eval/metrics.hpp"
#include "models/model.hpp"

namespace otged {

/// One row of a Table-3-style GED evaluation.
struct GedRow {
  std::string method;
  double mae = 0, accuracy = 0, rho = 0, tau = 0, p_at_10 = 0, p_at_20 = 0;
  double feasibility = 0;
  double sec_per_100p = 0;
};

/// One row of a Table-4-style GEP evaluation.
struct GepRow {
  std::string method;
  double mae = 0, accuracy = 0, rho = 0, tau = 0, p_at_10 = 0, p_at_20 = 0;
  double recall = 0, precision = 0, f1 = 0;
  double sec_per_100p = 0;
};

/// A GED estimator under evaluation: continuous prediction per pair.
using GedFn = std::function<double(const GedPair&)>;
/// A GEP generator under evaluation.
using GepFn = std::function<GepResult(const GedPair&)>;

/// Runs `fn` on every pair; value metrics are computed over all pairs,
/// ranking metrics within each query group and then averaged (the
/// paper's protocol).
GedRow EvaluateGed(const std::string& name, const GedFn& fn,
                   const std::vector<QueryGroup>& groups);

GepRow EvaluateGep(const std::string& name, const GepFn& fn,
                   const std::vector<QueryGroup>& groups);

/// Wraps a model into a GedFn (Predict().ged).
GedFn GedFnFromModel(GedModel* model);
/// Wraps a coupling-producing model into a GepFn via k-best matching.
GepFn GepFnFromModel(GedModel* model, int k);

void PrintGedTable(const std::string& title,
                   const std::vector<GedRow>& rows);
void PrintGepTable(const std::string& title,
                   const std::vector<GepRow>& rows);

/// Flattens the grouped pairs (handy for training-set reuse in benches).
std::vector<const GedPair*> FlattenGroups(
    const std::vector<QueryGroup>& groups);

}  // namespace otged

#endif  // OTGED_EVAL_EXPERIMENT_HPP_
