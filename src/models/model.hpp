/// \file model.hpp
/// \brief Common interfaces for GED estimators: classical, optimization-
/// based and learned models all expose Predict(); trainable models
/// additionally expose parameters and a per-pair loss.
#ifndef OTGED_MODELS_MODEL_HPP_
#define OTGED_MODELS_MODEL_HPP_

#include <string>
#include <vector>

#include "graph/generator.hpp"
#include "nn/tensor.hpp"

namespace otged {

/// A GED prediction: the continuous estimate plus (when the method
/// produces one) a soft coupling matrix usable for edit-path generation.
struct Prediction {
  double ged = 0.0;    ///< continuous GED estimate
  Matrix coupling;     ///< n1 x n2 node-matching confidence (may be empty)
};

/// Base interface. All models assume g1.NumNodes() <= g2.NumNodes()
/// (callers swap; the library's pair generators guarantee it).
class GedModel {
 public:
  virtual ~GedModel() = default;
  virtual std::string Name() const = 0;
  virtual Prediction Predict(const Graph& g1, const Graph& g2) = 0;
};

/// Learned models: parameters + per-pair training loss (built on the
/// autograd tape; call Backward() on it).
class TrainableGedModel : public GedModel {
 public:
  virtual std::vector<Tensor> Params() = 0;
  virtual Tensor Loss(const GedPair& pair) = 0;
};

/// Swap-safe wrapper: orders the pair by size, predicts, and transposes
/// the coupling back if a swap happened.
Prediction PredictOrdered(GedModel* model, const Graph& g1, const Graph& g2);

}  // namespace otged

#endif  // OTGED_MODELS_MODEL_HPP_
