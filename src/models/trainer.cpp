#include "models/trainer.hpp"

#include <cstdio>

#include "core/random.hpp"
#include "nn/adam.hpp"

namespace otged {

std::vector<double> TrainModel(TrainableGedModel* model,
                               const std::vector<GedPair>& pairs,
                               const TrainOptions& opt) {
  OTGED_CHECK(!pairs.empty());
  Adam::Options aopt;
  aopt.lr = opt.lr;
  aopt.weight_decay = opt.weight_decay;
  Adam optimizer(model->Params(), aopt);
  Rng rng(opt.seed);

  std::vector<int> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  std::vector<double> epoch_losses;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    size_t i = 0;
    while (i < order.size()) {
      size_t batch_end = std::min(order.size(), i + opt.batch_size);
      const double scale = 1.0 / static_cast<double>(batch_end - i);
      optimizer.ZeroGrad();
      for (; i < batch_end; ++i) {
        Tensor loss = model->Loss(pairs[order[i]]);
        total += loss.item();
        ScaleConst(loss, scale).Backward();
      }
      if (opt.grad_clip > 0) optimizer.ClipGradients(opt.grad_clip);
      optimizer.Step();
    }
    epoch_losses.push_back(total / static_cast<double>(pairs.size()));
    if (opt.verbose) {
      std::fprintf(stderr, "[train] %s epoch %d/%d loss %.5f\n",
                   model->Name().c_str(), epoch + 1, opt.epochs,
                   epoch_losses.back());
    }
  }
  return epoch_losses;
}

}  // namespace otged
