/// \file gedgw.hpp
/// \brief GEDGW: the paper's unsupervised method (Section 5). GED
/// computation is cast as a fused OT + Gromov-Wasserstein optimization
/// over couplings of the dummy-node-padded pair (Eq. 17) and solved by
/// conditional gradient (Algorithm 2). No training required.
#ifndef OTGED_MODELS_GEDGW_HPP_
#define OTGED_MODELS_GEDGW_HPP_

#include <string>

#include "models/model.hpp"
#include "ot/gromov.hpp"

namespace otged {

struct GedgwConfig {
  int cg_iters = 30;
};

class GedgwSolver : public GedModel {
 public:
  explicit GedgwSolver(const GedgwConfig& config = {}) : config_(config) {}

  std::string Name() const override { return "GEDGW"; }
  Prediction Predict(const Graph& g1, const Graph& g2) override;

  /// The node-edit cost matrix M of Eq. (16) on the padded pair: 1 where
  /// labels differ (relabel) or the G1 node is a dummy (insertion).
  static Matrix NodeCostMatrix(const Graph& g1, const Graph& g2);

 private:
  GedgwConfig config_;
};

}  // namespace otged

#endif  // OTGED_MODELS_GEDGW_HPP_
