/// \file gediot.hpp
/// \brief GEDIOT: the paper's supervised model based on inverse optimal
/// transport (Section 4). Node embeddings -> learnable cost matrix ->
/// learnable Sinkhorn layer -> coupling matrix + transport cost w1;
/// a graph discrepancy component (attention pooling + NTN) supplies w2;
/// GED = sigmoid(w1 + w2) * (max(n1,n2) + max(m1,m2)).
#ifndef OTGED_MODELS_GEDIOT_HPP_
#define OTGED_MODELS_GEDIOT_HPP_

#include <string>

#include "models/embedding_trunk.hpp"
#include "models/model.hpp"

namespace otged {

/// Hyperparameters (paper Appendix F.2, scaled for CPU training).
struct GediotConfig {
  TrunkConfig trunk;
  int ntn_slices = 8;        ///< L (paper: 16)
  double lambda = 0.8;       ///< value/matching loss balance (Eq. 15)
  double eps0 = 0.05;        ///< initial Sinkhorn regularization
  int sinkhorn_iters = 5;    ///< unrolled dual updates
  bool learnable_eps = true; ///< ablation "w/o learnable eps"
  bool cost_inner_product = false;  ///< ablation "w/o Cost"
  uint64_t seed = 11;
};

/// The GEDIOT network. Forward pieces are exposed so ablation benches and
/// tests can inspect intermediate tensors.
class GediotModel : public TrainableGedModel {
 public:
  explicit GediotModel(const GediotConfig& config);

  std::string Name() const override { return "GEDIOT"; }
  std::vector<Tensor> Params() override;
  Tensor Loss(const GedPair& pair) override;
  Prediction Predict(const Graph& g1, const Graph& g2) override;

  /// Intermediate results of one forward pass.
  struct Forward {
    Tensor coupling;  ///< n1 x n2 (dummy row removed)
    Tensor cost;      ///< n1 x n2 learned cost matrix
    Tensor score;     ///< 1x1, normalized GED in (0, 1)
  };
  Forward Run(const Graph& g1, const Graph& g2) const;

  double CurrentEpsilon() const { return sinkhorn_.CurrentEpsilon(); }
  const GediotConfig& config() const { return config_; }

 private:
  GediotConfig config_;
  EmbeddingTrunk trunk_;
  CostMatrixLayer cost_layer_;
  SinkhornLayer sinkhorn_;
  AttentionPooling pooling_;
  Ntn ntn_;
  Mlp readout_;  ///< reduces the NTN vector to the scalar w2
};

}  // namespace otged

#endif  // OTGED_MODELS_GEDIOT_HPP_
