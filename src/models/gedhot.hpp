/// \file gedhot.hpp
/// \brief GEDHOT: the paper's ensemble (Section 5.2) — run both GEDIOT
/// and GEDGW; take the smaller GED estimate and, for edit paths, the
/// shorter of the two k-best-matching paths. Tracks which member's
/// result was adopted (Fig. 13).
#ifndef OTGED_MODELS_GEDHOT_HPP_
#define OTGED_MODELS_GEDHOT_HPP_

#include <string>

#include "assignment/kbest.hpp"
#include "models/gediot.hpp"
#include "models/gedgw.hpp"

namespace otged {

class GedhotModel : public GedModel {
 public:
  /// Does not take ownership; both members must outlive the ensemble.
  GedhotModel(GediotModel* iot, GedgwSolver* gw) : iot_(iot), gw_(gw) {}

  std::string Name() const override { return "GEDHOT"; }
  Prediction Predict(const Graph& g1, const Graph& g2) override;

  /// Edit-path ensemble: k-best search from both couplings, shorter wins.
  GepResult GeneratePath(const Graph& g1, const Graph& g2, int k);

  /// Adoption statistics (Fig. 13): fraction of calls where GEDIOT's
  /// result was used.
  double ValueAdoptionIot() const;
  double PathAdoptionIot() const;
  void ResetStats();

 private:
  GediotModel* iot_;
  GedgwSolver* gw_;
  long value_total_ = 0, value_iot_ = 0;
  long path_total_ = 0, path_iot_ = 0;
};

}  // namespace otged

#endif  // OTGED_MODELS_GEDHOT_HPP_
