/// \file gedgnn.hpp
/// \brief GEDGNN-style baseline [35]: identical embedding trunk and graph
/// discrepancy component as GEDIOT, but the node-matching matrix is
/// produced by a *direct* bilinear sigmoid fit (no OT layer) — exactly
/// the contrast the paper draws in Fig. 2(b) vs 2(c).
#ifndef OTGED_MODELS_GEDGNN_HPP_
#define OTGED_MODELS_GEDGNN_HPP_

#include <string>

#include "models/embedding_trunk.hpp"
#include "models/model.hpp"

namespace otged {

struct GedgnnConfig {
  TrunkConfig trunk;
  int ntn_slices = 8;
  double lambda = 0.8;
  uint64_t seed = 13;
};

class GedgnnModel : public TrainableGedModel {
 public:
  explicit GedgnnModel(const GedgnnConfig& config);

  std::string Name() const override { return "GEDGNN"; }
  std::vector<Tensor> Params() override;
  Tensor Loss(const GedPair& pair) override;
  Prediction Predict(const Graph& g1, const Graph& g2) override;

  struct Forward {
    Tensor matching;  ///< n1 x n2 sigmoid matching matrix (fit to pi*)
    Tensor cost;      ///< n1 x n2 cost matrix
    Tensor score;     ///< 1x1 normalized GED
  };
  Forward Run(const Graph& g1, const Graph& g2) const;

 private:
  GedgnnConfig config_;
  EmbeddingTrunk trunk_;
  Tensor w_match_, w_cost_;  // d x d bilinear maps
  AttentionPooling pooling_;
  Ntn ntn_;
  Mlp readout_;
};

}  // namespace otged

#endif  // OTGED_MODELS_GEDGNN_HPP_
