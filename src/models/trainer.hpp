/// \file trainer.hpp
/// \brief Generic mini-batch training loop (Adam, gradient clipping,
/// shuffled epochs) shared by all learned models.
#ifndef OTGED_MODELS_TRAINER_HPP_
#define OTGED_MODELS_TRAINER_HPP_

#include <vector>

#include "models/model.hpp"

namespace otged {

struct TrainOptions {
  int epochs = 10;
  int batch_size = 32;
  double lr = 1e-3;
  double weight_decay = 5e-4;
  double grad_clip = 5.0;
  uint64_t seed = 123;
  bool verbose = false;
};

/// Trains `model` on `pairs`; returns the mean loss of each epoch.
std::vector<double> TrainModel(TrainableGedModel* model,
                               const std::vector<GedPair>& pairs,
                               const TrainOptions& opt = {});

}  // namespace otged

#endif  // OTGED_MODELS_TRAINER_HPP_
