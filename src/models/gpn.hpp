/// \file gpn.hpp
/// \brief GPN-style baseline [62]: a plain graph-level regressor (pooled
/// embeddings + MLP). Also serves as the learned guidance for the Noah
/// stand-in (GPN + A*-beam): NodeSimilarity() exposes the cross-graph
/// embedding affinity used to order beam expansions.
#ifndef OTGED_MODELS_GPN_HPP_
#define OTGED_MODELS_GPN_HPP_

#include <string>

#include "models/embedding_trunk.hpp"
#include "models/model.hpp"

namespace otged {

struct GpnConfig {
  TrunkConfig trunk;
  uint64_t seed = 19;
};

class GpnModel : public TrainableGedModel {
 public:
  explicit GpnModel(const GpnConfig& config);

  std::string Name() const override { return "GPN"; }
  std::vector<Tensor> Params() override;
  Tensor Loss(const GedPair& pair) override;
  Prediction Predict(const Graph& g1, const Graph& g2) override;

  /// n1 x n2 embedding affinity H1 H2^T (beam-search guidance).
  Matrix NodeSimilarity(const Graph& g1, const Graph& g2) const;

 private:
  Tensor Score(const Graph& g1, const Graph& g2) const;

  GpnConfig config_;
  EmbeddingTrunk trunk_;
  AttentionPooling pooling_;
  Mlp readout_;
};

}  // namespace otged

#endif  // OTGED_MODELS_GPN_HPP_
