#include "models/model.hpp"

namespace otged {

Prediction PredictOrdered(GedModel* model, const Graph& g1, const Graph& g2) {
  if (g1.NumNodes() <= g2.NumNodes()) return model->Predict(g1, g2);
  Prediction p = model->Predict(g2, g1);
  if (!p.coupling.empty()) p.coupling = p.coupling.Transpose();
  return p;
}

}  // namespace otged
