#include "models/gpn.hpp"

namespace otged {

GpnModel::GpnModel(const GpnConfig& config) : config_(config) {
  Rng rng(config.seed);
  trunk_ = EmbeddingTrunk(config.trunk, &rng);
  const int d = trunk_.OutDim();
  pooling_ = AttentionPooling(d, &rng);
  readout_ = Mlp({2 * d, d, 1}, &rng);
}

std::vector<Tensor> GpnModel::Params() {
  std::vector<Tensor> out;
  trunk_.CollectParams(&out);
  pooling_.CollectParams(&out);
  readout_.CollectParams(&out);
  return out;
}

Tensor GpnModel::Score(const Graph& g1, const Graph& g2) const {
  Tensor hg1 = pooling_.Forward(trunk_.Embed(g1));
  Tensor hg2 = pooling_.Forward(trunk_.Embed(g2));
  return Sigmoid(readout_.Forward(ConcatCols(hg1, hg2)));
}

Tensor GpnModel::Loss(const GedPair& pair) {
  double norm_ged =
      static_cast<double>(pair.ged) / MaxEditOps(pair.g1, pair.g2);
  return MseLoss(Score(pair.g1, pair.g2), norm_ged);
}

Prediction GpnModel::Predict(const Graph& g1, const Graph& g2) {
  Prediction p;
  p.ged = Score(g1, g2).item() * MaxEditOps(g1, g2);
  return p;
}

Matrix GpnModel::NodeSimilarity(const Graph& g1, const Graph& g2) const {
  Tensor h1 = trunk_.Embed(g1);
  Tensor h2 = trunk_.Embed(g2);
  return h1.value().MatMul(h2.value().Transpose());
}

}  // namespace otged
