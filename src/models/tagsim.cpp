#include "models/tagsim.hpp"

#include <algorithm>

namespace otged {

TagsimModel::TagsimModel(const TagsimConfig& config) : config_(config) {
  Rng rng(config.seed);
  trunk_ = EmbeddingTrunk(config.trunk, &rng);
  const int d = trunk_.OutDim();
  pooling_ = AttentionPooling(d, &rng);
  readout_ = Mlp({2 * d, d, 4}, &rng);
}

std::vector<Tensor> TagsimModel::Params() {
  std::vector<Tensor> out;
  trunk_.CollectParams(&out);
  pooling_.CollectParams(&out);
  readout_.CollectParams(&out);
  return out;
}

std::array<int, 4> TagsimModel::TypeCounts(const std::vector<EditOp>& path) {
  std::array<int, 4> counts = {0, 0, 0, 0};
  for (const EditOp& op : path) {
    switch (op.type) {
      case EditOpType::kRelabelNode:
        counts[0]++;
        break;
      case EditOpType::kInsertNode:
      case EditOpType::kDeleteNode:
        counts[1]++;
        break;
      case EditOpType::kInsertEdge:
        counts[2]++;
        break;
      case EditOpType::kDeleteEdge:
      case EditOpType::kRelabelEdge:
        counts[3]++;
        break;
    }
  }
  return counts;
}

std::array<double, 4> TagsimModel::TypeNormalizers(const Graph& g1,
                                                   const Graph& g2) {
  double nmax = std::max(g1.NumNodes(), g2.NumNodes());
  double emax = std::max(g1.NumEdges(), g2.NumEdges()) + 1.0;
  return {nmax, nmax, emax, emax};
}

Tensor TagsimModel::TypeScores(const Graph& g1, const Graph& g2) const {
  Tensor hg1 = pooling_.Forward(trunk_.Embed(g1));
  Tensor hg2 = pooling_.Forward(trunk_.Embed(g2));
  return Sigmoid(readout_.Forward(ConcatCols(hg1, hg2)));  // 1 x 4
}

Tensor TagsimModel::Loss(const GedPair& pair) {
  Tensor scores = TypeScores(pair.g1, pair.g2);
  std::array<int, 4> counts = TypeCounts(pair.gt_path);
  std::array<double, 4> norm = TypeNormalizers(pair.g1, pair.g2);
  Matrix target(1, 4);
  for (int t = 0; t < 4; ++t)
    target(0, t) = std::min(1.0, counts[t] / norm[t]);
  // Mean squared error across the four normalized type counts.
  Tensor diff = Sub(scores, Tensor(target));
  return ScaleConst(Dot(diff, diff), 0.25);
}

Prediction TagsimModel::Predict(const Graph& g1, const Graph& g2) {
  Tensor scores = TypeScores(g1, g2);
  std::array<double, 4> norm = TypeNormalizers(g1, g2);
  Prediction p;
  p.ged = 0.0;
  for (int t = 0; t < 4; ++t) p.ged += scores.value()(0, t) * norm[t];
  return p;
}

}  // namespace otged
