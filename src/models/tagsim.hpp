/// \file tagsim.hpp
/// \brief TaGSim-style baseline [1]: type-aware similarity — instead of a
/// single GED scalar, the model regresses the number of edit operations
/// in each of four categories (node relabel, node insert/delete, edge
/// insert, edge delete); the GED estimate is their sum.
#ifndef OTGED_MODELS_TAGSIM_HPP_
#define OTGED_MODELS_TAGSIM_HPP_

#include <array>
#include <string>

#include "models/embedding_trunk.hpp"
#include "models/model.hpp"

namespace otged {

struct TagsimConfig {
  TrunkConfig trunk;
  uint64_t seed = 23;
};

class TagsimModel : public TrainableGedModel {
 public:
  explicit TagsimModel(const TagsimConfig& config);

  std::string Name() const override { return "TaGSim"; }
  std::vector<Tensor> Params() override;
  Tensor Loss(const GedPair& pair) override;
  Prediction Predict(const Graph& g1, const Graph& g2) override;

  /// Ground-truth per-type counts of a canonical edit path:
  /// {relabel, node ins/del, edge insert, edge delete}.
  static std::array<int, 4> TypeCounts(const std::vector<EditOp>& path);

 private:
  /// 1 x 4 sigmoid outputs (normalized per-type counts).
  Tensor TypeScores(const Graph& g1, const Graph& g2) const;
  static std::array<double, 4> TypeNormalizers(const Graph& g1,
                                               const Graph& g2);

  TagsimConfig config_;
  EmbeddingTrunk trunk_;
  AttentionPooling pooling_;
  Mlp readout_;  ///< 2d -> ... -> 4
};

}  // namespace otged

#endif  // OTGED_MODELS_TAGSIM_HPP_
