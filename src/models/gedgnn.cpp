#include "models/gedgnn.hpp"

namespace otged {

GedgnnModel::GedgnnModel(const GedgnnConfig& config) : config_(config) {
  Rng rng(config.seed);
  trunk_ = EmbeddingTrunk(config.trunk, &rng);
  const int d = trunk_.OutDim();
  w_match_ = Tensor(GlorotInit(d, d, &rng), /*requires_grad=*/true);
  w_cost_ = Tensor(GlorotInit(d, d, &rng), /*requires_grad=*/true);
  pooling_ = AttentionPooling(d, &rng);
  ntn_ = Ntn(d, config.ntn_slices, &rng);
  readout_ = Mlp({config.ntn_slices, config.ntn_slices / 2, 1}, &rng);
}

std::vector<Tensor> GedgnnModel::Params() {
  std::vector<Tensor> out;
  trunk_.CollectParams(&out);
  out.push_back(w_match_);
  out.push_back(w_cost_);
  pooling_.CollectParams(&out);
  ntn_.CollectParams(&out);
  readout_.CollectParams(&out);
  return out;
}

GedgnnModel::Forward GedgnnModel::Run(const Graph& g1,
                                      const Graph& g2) const {
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  Tensor h1 = trunk_.Embed(g1);
  Tensor h2 = trunk_.Embed(g2);

  Forward fwd;
  // Direct pairwise-scoring fit of the matching matrix (no OT module).
  fwd.matching = Sigmoid(MatMul(MatMul(h1, w_match_), Transpose(h2)));
  fwd.cost = TanhT(MatMul(MatMul(h1, w_cost_), Transpose(h2)));
  // Same head normalization as GEDIOT (see gediot.cpp).
  Tensor w1 = ScaleConst(Dot(fwd.cost, fwd.matching),
                         4.0 / MaxEditOps(g1, g2));
  Tensor hg1 = pooling_.Forward(h1);
  Tensor hg2 = pooling_.Forward(h2);
  Tensor w2 = readout_.Forward(ntn_.Forward(hg1, hg2));
  fwd.score = Sigmoid(Add(w1, w2));
  return fwd;
}

Tensor GedgnnModel::Loss(const GedPair& pair) {
  Forward fwd = Run(pair.g1, pair.g2);
  double norm_ged =
      static_cast<double>(pair.ged) / MaxEditOps(pair.g1, pair.g2);
  Tensor value_loss = MseLoss(fwd.score, norm_ged);
  Matrix pi_star =
      CouplingMatrixFromMatching(pair.gt_matching, pair.g2.NumNodes());
  Tensor match_loss = BceLoss(fwd.matching, pi_star);
  return Add(ScaleConst(value_loss, config_.lambda),
             ScaleConst(match_loss, 1.0 - config_.lambda));
}

Prediction GedgnnModel::Predict(const Graph& g1, const Graph& g2) {
  Forward fwd = Run(g1, g2);
  Prediction p;
  p.ged = fwd.score.item() * MaxEditOps(g1, g2);
  p.coupling = fwd.matching.value();
  return p;
}

}  // namespace otged
