#include "models/gedgw.hpp"

#include <algorithm>
#include <cmath>

#include "ot/sinkhorn.hpp"

namespace otged {

Matrix GedgwSolver::NodeCostMatrix(const Graph& g1, const Graph& g2) {
  const int n1 = g1.NumNodes(), n = g2.NumNodes();
  OTGED_CHECK(n1 <= n);
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      if (i >= n1) {
        m(i, k) = 1.0;  // dummy -> any real node: node insertion
      } else {
        m(i, k) = g1.label(i) != g2.label(k) ? 1.0 : 0.0;  // relabel
      }
    }
  }
  return m;
}

Prediction GedgwSolver::Predict(const Graph& g1, const Graph& g2) {
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  const int n1 = g1.NumNodes(), n = g2.NumNodes();
  Matrix m = NodeCostMatrix(g1, g2);
  CgOptions cg;
  cg.max_iters = config_.cg_iters;
  // Warm start: entropic OT plan over node-edit cost + half the degree
  // gap (the hand-crafted cost of the paper's Fig. 3). On large graphs
  // this pulls the conditional gradient into the right alignment basin.
  Matrix init;
  if (n > 16) {
    Matrix warm_cost = m;
    for (int i = 0; i < n; ++i) {
      double di = i < n1 ? g1.Degree(i) : 0.0;
      for (int k = 0; k < n; ++k)
        warm_cost(i, k) += 0.5 * std::abs(di - g2.Degree(k));
    }
    SinkhornOptions sopt;
    sopt.epsilon = 0.2;
    sopt.max_iters = 60;
    init = Sinkhorn(warm_cost, Matrix::ColVec(n, 1.0),
                    Matrix::ColVec(n, 1.0), sopt).coupling;
    cg.init = &init;
  }

  CgResult res;
  if (g1.HasEdgeLabels() || g2.HasEdgeLabels()) {
    // Edge-labeled variant (Appendix H.1): mismatch over edge classes.
    std::vector<Label> alphabet = g1.EdgeLabelAlphabet();
    for (Label l : g2.EdgeLabelAlphabet()) alphabet.push_back(l);
    std::sort(alphabet.begin(), alphabet.end());
    alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                   alphabet.end());
    std::vector<Matrix> c1 = EdgeClassMatrices(g1, n, alphabet);
    std::vector<Matrix> c2 = EdgeClassMatrices(g2, n, alphabet);
    res = FusedGwConditionalGradientGeneral(
        m,
        [&](const Matrix& pi) { return GwTensorProductClasses(c1, c2, pi); },
        /*alpha=*/1.0, cg);
  } else {
    // Pad G1's adjacency with isolated dummy nodes.
    Matrix a1(n, n, 0.0);
    for (int u = 0; u < n1; ++u)
      for (int v : g1.Neighbors(u)) a1(u, v) = 1.0;
    Matrix a2 = g2.AdjacencyMatrix();
    res = FusedGwConditionalGradient(m, a1, a2, /*alpha=*/1.0, cg);
  }

  Prediction p;
  p.ged = res.objective;
  p.coupling = res.coupling.SliceRows(0, n1);  // real G1 nodes only
  return p;
}

}  // namespace otged
