#include "models/embedding_trunk.hpp"

#include <cmath>

namespace otged {

Matrix NormalizedAdjacency(const Graph& g) {
  const int n = g.NumNodes();
  Matrix a = g.AdjacencyMatrix();
  for (int i = 0; i < n; ++i) a(i, i) = 1.0;  // self loops
  std::vector<double> dinv(n);
  for (int i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int j = 0; j < n; ++j) deg += a(i, j);
    dinv[i] = 1.0 / std::sqrt(deg);
  }
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) a(i, j) *= dinv[i] * dinv[j];
  return a;
}

Matrix NodeInputFeatures(const Graph& g, const TrunkConfig& config) {
  Matrix x = g.OneHotLabels(config.num_labels);
  if (!config.degree_features) return x;
  Matrix deg(g.NumNodes(), kDegreeBuckets, 0.0);
  for (int v = 0; v < g.NumNodes(); ++v) {
    int bucket = 0;
    for (int d = g.Degree(v); d > 0 && bucket < kDegreeBuckets - 1; d >>= 1)
      ++bucket;  // bucket = floor(log2(deg)) + 1, clamped
    deg(v, bucket) = 1.0;
  }
  return x.ConcatCols(deg);
}

EmbeddingTrunk::EmbeddingTrunk(const TrunkConfig& config, Rng* rng)
    : config_(config) {
  int in = config.num_labels +
           (config.degree_features ? kDegreeBuckets : 0);
  for (int out : config.conv_dims) {
    if (config.use_gcn) {
      gcn_layers_.emplace_back(in, out, rng);
    } else {
      gin_layers_.emplace_back(in, out, rng);
    }
    in = out;
  }
  if (config.use_final_mlp) {
    // Concatenation of the input features and every conv layer's output.
    int concat_dim = config.num_labels +
                     (config.degree_features ? kDegreeBuckets : 0);
    for (int d : config.conv_dims) concat_dim += d;
    final_mlp_ = Mlp({concat_dim, 2 * config.out_dim, config.out_dim}, rng);
  }
}

int EmbeddingTrunk::OutDim() const {
  return config_.use_final_mlp ? config_.out_dim : config_.conv_dims.back();
}

Tensor EmbeddingTrunk::Embed(const Graph& g) const {
  Tensor x(NodeInputFeatures(g, config_));
  Tensor adj(config_.use_gcn ? NormalizedAdjacency(g) : g.AdjacencyMatrix());

  Tensor h = x;
  Tensor concat = x;
  const size_t n_layers =
      config_.use_gcn ? gcn_layers_.size() : gin_layers_.size();
  for (size_t i = 0; i < n_layers; ++i) {
    h = config_.use_gcn ? gcn_layers_[i].Forward(h, adj)
                        : gin_layers_[i].Forward(h, adj);
    concat = ConcatCols(concat, h);
  }
  if (!config_.use_final_mlp) return h;
  return final_mlp_.Forward(concat);
}

void EmbeddingTrunk::CollectParams(std::vector<Tensor>* out) {
  for (GinLayer& l : gin_layers_) l.CollectParams(out);
  for (GcnLayer& l : gcn_layers_) l.CollectParams(out);
  if (config_.use_final_mlp) final_mlp_.CollectParams(out);
}

}  // namespace otged
