/// \file simgnn.hpp
/// \brief SimGNN-style baseline [2]: graph-level regression only — GNN
/// embeddings, attention pooling, NTN interaction, MLP readout. No node
/// matching is produced, so it supports GED computation but not GEP
/// generation (as in the paper's tables).
#ifndef OTGED_MODELS_SIMGNN_HPP_
#define OTGED_MODELS_SIMGNN_HPP_

#include <string>

#include "models/embedding_trunk.hpp"
#include "models/model.hpp"

namespace otged {

struct SimgnnConfig {
  TrunkConfig trunk;
  int ntn_slices = 8;
  uint64_t seed = 17;
};

class SimgnnModel : public TrainableGedModel {
 public:
  explicit SimgnnModel(const SimgnnConfig& config);

  std::string Name() const override { return "SimGNN"; }
  std::vector<Tensor> Params() override;
  Tensor Loss(const GedPair& pair) override;
  Prediction Predict(const Graph& g1, const Graph& g2) override;

 private:
  Tensor Score(const Graph& g1, const Graph& g2) const;

  SimgnnConfig config_;
  EmbeddingTrunk trunk_;
  AttentionPooling pooling_;
  Ntn ntn_;
  Mlp readout_;
};

}  // namespace otged

#endif  // OTGED_MODELS_SIMGNN_HPP_
