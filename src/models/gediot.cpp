#include "models/gediot.hpp"

namespace otged {

GediotModel::GediotModel(const GediotConfig& config) : config_(config) {
  Rng rng(config.seed);
  trunk_ = EmbeddingTrunk(config.trunk, &rng);
  const int d = trunk_.OutDim();
  cost_layer_ = CostMatrixLayer(d, &rng);
  sinkhorn_ = SinkhornLayer(config.eps0, config.sinkhorn_iters,
                            config.learnable_eps);
  pooling_ = AttentionPooling(d, &rng);
  ntn_ = Ntn(d, config.ntn_slices, &rng);
  readout_ = Mlp({config.ntn_slices, config.ntn_slices / 2, 1}, &rng);
}

std::vector<Tensor> GediotModel::Params() {
  std::vector<Tensor> out;
  trunk_.CollectParams(&out);
  cost_layer_.CollectParams(&out);
  sinkhorn_.CollectParams(&out);
  pooling_.CollectParams(&out);
  ntn_.CollectParams(&out);
  readout_.CollectParams(&out);
  return out;
}

GediotModel::Forward GediotModel::Run(const Graph& g1,
                                      const Graph& g2) const {
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  Tensor h1 = trunk_.Embed(g1);
  Tensor h2 = trunk_.Embed(g2);

  Forward fwd;
  fwd.cost = cost_layer_.Forward(h1, h2, config_.cost_inner_product);
  fwd.coupling = sinkhorn_.Forward(fwd.cost);
  // w1: expected transport cost <C, pi> (learnable OT component), scaled
  // by the same normalizer as the GED target so the sigmoid head stays in
  // its responsive range regardless of graph size.
  Tensor w1 = ScaleConst(Dot(fwd.cost, fwd.coupling),
                         4.0 / MaxEditOps(g1, g2));
  // w2: graph discrepancy component for the unmatched-node edits.
  Tensor hg1 = pooling_.Forward(h1);
  Tensor hg2 = pooling_.Forward(h2);
  Tensor w2 = readout_.Forward(ntn_.Forward(hg1, hg2));
  fwd.score = Sigmoid(Add(w1, w2));
  return fwd;
}

Tensor GediotModel::Loss(const GedPair& pair) {
  Forward fwd = Run(pair.g1, pair.g2);
  double norm_ged =
      static_cast<double>(pair.ged) / MaxEditOps(pair.g1, pair.g2);
  Tensor value_loss = MseLoss(fwd.score, norm_ged);
  Matrix pi_star =
      CouplingMatrixFromMatching(pair.gt_matching, pair.g2.NumNodes());
  Tensor match_loss = BceLoss(fwd.coupling, pi_star);
  return Add(ScaleConst(value_loss, config_.lambda),
             ScaleConst(match_loss, 1.0 - config_.lambda));
}

Prediction GediotModel::Predict(const Graph& g1, const Graph& g2) {
  Forward fwd = Run(g1, g2);
  Prediction p;
  p.ged = fwd.score.item() * MaxEditOps(g1, g2);
  p.coupling = fwd.coupling.value();
  return p;
}

}  // namespace otged
