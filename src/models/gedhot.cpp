#include "models/gedhot.hpp"

namespace otged {

Prediction GedhotModel::Predict(const Graph& g1, const Graph& g2) {
  Prediction a = iot_->Predict(g1, g2);
  Prediction b = gw_->Predict(g1, g2);
  ++value_total_;
  // GED is a minimum over edit paths, so the smaller estimate is kept
  // (ties go to GEDIOT, the paper's default).
  if (a.ged <= b.ged) {
    ++value_iot_;
    return a;
  }
  return b;
}

GepResult GedhotModel::GeneratePath(const Graph& g1, const Graph& g2, int k) {
  Prediction a = iot_->Predict(g1, g2);
  Prediction b = gw_->Predict(g1, g2);
  GepResult pa = KBestGepSearch(g1, g2, a.coupling, k);
  GepResult pb = KBestGepSearch(g1, g2, b.coupling, k);
  ++path_total_;
  if (pa.ged <= pb.ged) {
    ++path_iot_;
    return pa;
  }
  return pb;
}

double GedhotModel::ValueAdoptionIot() const {
  return value_total_ == 0 ? 0.0
                           : static_cast<double>(value_iot_) /
                                 static_cast<double>(value_total_);
}

double GedhotModel::PathAdoptionIot() const {
  return path_total_ == 0 ? 0.0
                          : static_cast<double>(path_iot_) /
                                static_cast<double>(path_total_);
}

void GedhotModel::ResetStats() {
  value_total_ = value_iot_ = path_total_ = path_iot_ = 0;
}

}  // namespace otged
