#include "models/simgnn.hpp"

namespace otged {

SimgnnModel::SimgnnModel(const SimgnnConfig& config) : config_(config) {
  Rng rng(config.seed);
  trunk_ = EmbeddingTrunk(config.trunk, &rng);
  const int d = trunk_.OutDim();
  pooling_ = AttentionPooling(d, &rng);
  ntn_ = Ntn(d, config.ntn_slices, &rng);
  readout_ = Mlp({config.ntn_slices, config.ntn_slices / 2, 1}, &rng);
}

std::vector<Tensor> SimgnnModel::Params() {
  std::vector<Tensor> out;
  trunk_.CollectParams(&out);
  pooling_.CollectParams(&out);
  ntn_.CollectParams(&out);
  readout_.CollectParams(&out);
  return out;
}

Tensor SimgnnModel::Score(const Graph& g1, const Graph& g2) const {
  Tensor hg1 = pooling_.Forward(trunk_.Embed(g1));
  Tensor hg2 = pooling_.Forward(trunk_.Embed(g2));
  return Sigmoid(readout_.Forward(ntn_.Forward(hg1, hg2)));
}

Tensor SimgnnModel::Loss(const GedPair& pair) {
  double norm_ged =
      static_cast<double>(pair.ged) / MaxEditOps(pair.g1, pair.g2);
  return MseLoss(Score(pair.g1, pair.g2), norm_ged);
}

Prediction SimgnnModel::Predict(const Graph& g1, const Graph& g2) {
  Prediction p;
  p.ged = Score(g1, g2).item() * MaxEditOps(g1, g2);
  return p;
}

}  // namespace otged
