/// \file embedding_trunk.hpp
/// \brief The siamese node-embedding component shared by all learned
/// models (Section 4.1): stacked GIN (or GCN) layers, cross-layer
/// concatenation, and a final MLP producing d-dimensional embeddings.
#ifndef OTGED_MODELS_EMBEDDING_TRUNK_HPP_
#define OTGED_MODELS_EMBEDDING_TRUNK_HPP_

#include <vector>

#include "graph/graph.hpp"
#include "nn/modules.hpp"

namespace otged {

/// Configuration of the embedding trunk. Dimensions are scaled-down but
/// faithful analogues of the paper's 128/64/32 GIN stack with d = 32
/// (see DESIGN.md §3, substitution 5).
struct TrunkConfig {
  int num_labels = 1;
  std::vector<int> conv_dims = std::vector<int>(3, 32);
  int out_dim = 16;            ///< final embedding dimension d
  bool use_gcn = false;        ///< ablation "w/ GCN"
  bool use_final_mlp = true;   ///< ablation "w/o MLP"
  /// Append a log-degree-bucket one-hot to the input features. For
  /// unlabeled datasets (num_labels == 1) this is the only signal that
  /// breaks the constant-feature symmetry before the first convolution.
  bool degree_features = true;
};

/// Number of log-degree buckets appended when degree_features is on.
inline constexpr int kDegreeBuckets = 8;

/// Input features: one-hot labels, optionally concatenated with the
/// log2-degree bucket one-hot.
Matrix NodeInputFeatures(const Graph& g, const TrunkConfig& config);

/// Siamese GNN trunk: Embed() maps a graph to its n x d embedding matrix.
class EmbeddingTrunk {
 public:
  EmbeddingTrunk() = default;
  EmbeddingTrunk(const TrunkConfig& config, Rng* rng);

  /// Node embeddings H (n x OutDim()).
  Tensor Embed(const Graph& g) const;
  /// Dimension of Embed()'s output (depends on the MLP ablation).
  int OutDim() const;
  void CollectParams(std::vector<Tensor>* out);
  const TrunkConfig& config() const { return config_; }

 private:
  TrunkConfig config_;
  std::vector<GinLayer> gin_layers_;
  std::vector<GcnLayer> gcn_layers_;
  Mlp final_mlp_;
};

/// Symmetric-normalized adjacency with self-loops, D^-1/2 (A+I) D^-1/2.
Matrix NormalizedAdjacency(const Graph& g);

}  // namespace otged

#endif  // OTGED_MODELS_EMBEDDING_TRUNK_HPP_
