/// \file edit_path.hpp
/// \brief Edit operations and edit-path generation from a node matching
/// (Algorithm 3 of the paper).
///
/// Conventions follow the paper: for a pair (G1, G2) we assume
/// n1 <= n2 (callers swap otherwise), so a matching assigns every node of
/// G1 to a distinct node of G2 and the only node operations are
/// relabelings and insertions (into G1).
#ifndef OTGED_EDITPATH_EDIT_PATH_HPP_
#define OTGED_EDITPATH_EDIT_PATH_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace otged {

/// The five edit-operation kinds. With the n1 <= n2 convention, node
/// deletions never appear in generated paths but the enum keeps the kind
/// for completeness (e.g., synthetic generators that shrink graphs).
enum class EditOpType : uint8_t {
  kRelabelNode,
  kInsertNode,
  kDeleteNode,
  kInsertEdge,
  kDeleteEdge,
  kRelabelEdge,  ///< edge-labeled graphs only (paper Appendix H.1)
};

/// One edit operation, stored in *canonical G2 coordinates* so that two
/// paths produced from different matchings can be compared as multisets
/// (the paper's path Recall/Precision/F1 metrics):
///  - kRelabelNode: a = G2 node the relabeled G1 node maps to, l = new label
///  - kInsertNode:  a = inserted (unmatched) G2 node, l = its label
///  - kInsertEdge / kDeleteEdge: (a, b) = G2 endpoints with a < b; for
///    insertions l carries the edge label (0 when unlabeled)
///  - kRelabelEdge: (a, b) = G2 endpoints with a < b, l = new edge label
struct EditOp {
  EditOpType type;
  int a = -1;
  int b = -1;
  Label l = 0;

  bool operator==(const EditOp& o) const = default;
  bool operator<(const EditOp& o) const {
    if (type != o.type) return type < o.type;
    if (a != o.a) return a < o.a;
    if (b != o.b) return b < o.b;
    return l < o.l;
  }
  std::string ToString() const;
};

/// A node matching of (G1, G2): match[u] in [0, n2) is the G2 node that
/// G1 node u maps to; values are distinct. Size n1.
using NodeMatching = std::vector<int>;

/// Generates the edit path induced by `match` (Algorithm 3). The returned
/// path, applied to G1, yields a graph isomorphic to G2 under `match`.
/// O(n2 + m1 + m2).
std::vector<EditOp> EditPathFromMatching(const Graph& g1, const Graph& g2,
                                         const NodeMatching& match);

/// Length of the edit path induced by `match` without materializing it.
int EditCostFromMatching(const Graph& g1, const Graph& g2,
                         const NodeMatching& match);

/// Applies `path` (canonical G2 coordinates) to a copy of G1 positioned
/// under `match` and returns the result; used by tests to verify that the
/// generated path truly transforms G1 into G2.
Graph ApplyEditPath(const Graph& g1, const Graph& g2,
                    const NodeMatching& match,
                    const std::vector<EditOp>& path);

/// Multiset intersection size |P1 ∩ P2| of two canonical paths.
int PathIntersectionSize(std::vector<EditOp> p1, std::vector<EditOp> p2);

/// Converts a binary coupling matrix (n1 x n2, exactly one 1 per row,
/// at most one per column) into a NodeMatching.
NodeMatching MatchingFromCouplingMatrix(const Matrix& pi);

/// Converts a matching into the paper's 0/1 coupling matrix form.
Matrix CouplingMatrixFromMatching(const NodeMatching& match, int n2);

}  // namespace otged

#endif  // OTGED_EDITPATH_EDIT_PATH_HPP_
