#include "editpath/edit_path.hpp"

#include <algorithm>
#include <sstream>

namespace otged {

std::string EditOp::ToString() const {
  std::ostringstream os;
  switch (type) {
    case EditOpType::kRelabelNode:
      os << "relabel(v" << a << " -> " << l << ")";
      break;
    case EditOpType::kInsertNode:
      os << "insert_node(v" << a << ", label " << l << ")";
      break;
    case EditOpType::kDeleteNode:
      os << "delete_node(v" << a << ")";
      break;
    case EditOpType::kInsertEdge:
      os << "insert_edge(v" << a << ", v" << b << ")";
      break;
    case EditOpType::kDeleteEdge:
      os << "delete_edge(v" << a << ", v" << b << ")";
      break;
    case EditOpType::kRelabelEdge:
      os << "relabel_edge(v" << a << ", v" << b << " -> " << l << ")";
      break;
  }
  return os.str();
}

namespace {

// Validates the matching and builds the inverse map (G2 -> G1, -1 if
// unmatched).
std::vector<int> InverseMatching(const Graph& g1, const Graph& g2,
                                 const NodeMatching& match) {
  OTGED_CHECK(static_cast<int>(match.size()) == g1.NumNodes());
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  std::vector<int> inv(g2.NumNodes(), -1);
  for (int u = 0; u < g1.NumNodes(); ++u) {
    OTGED_CHECK(match[u] >= 0 && match[u] < g2.NumNodes());
    OTGED_CHECK_MSG(inv[match[u]] == -1, "matching not injective");
    inv[match[u]] = u;
  }
  return inv;
}

}  // namespace

std::vector<EditOp> EditPathFromMatching(const Graph& g1, const Graph& g2,
                                         const NodeMatching& match) {
  std::vector<int> inv = InverseMatching(g1, g2, match);
  std::vector<EditOp> path;

  // Node relabelings and insertions (checked per G2 node).
  for (int v = 0; v < g2.NumNodes(); ++v) {
    if (inv[v] == -1) {
      path.push_back({EditOpType::kInsertNode, v, -1, g2.label(v)});
    } else if (g1.label(inv[v]) != g2.label(v)) {
      path.push_back({EditOpType::kRelabelNode, v, -1, g2.label(v)});
    }
  }
  // Edge deletions and relabelings: edges of G1 against their G2 slots.
  for (int u = 0; u < g1.NumNodes(); ++u) {
    for (int w : g1.Neighbors(u)) {
      if (u >= w) continue;
      int a = std::min(match[u], match[w]);
      int b = std::max(match[u], match[w]);
      if (!g2.HasEdge(a, b)) {
        path.push_back({EditOpType::kDeleteEdge, a, b, 0});
      } else if (g1.edge_label(u, w) != g2.edge_label(a, b)) {
        path.push_back({EditOpType::kRelabelEdge, a, b, g2.edge_label(a, b)});
      }
    }
  }
  // Edge insertions: edges of G2 with no counterpart in G1.
  for (int v = 0; v < g2.NumNodes(); ++v) {
    for (int w : g2.Neighbors(v)) {
      if (v >= w) continue;
      bool exists = inv[v] != -1 && inv[w] != -1 && g1.HasEdge(inv[v], inv[w]);
      if (!exists)
        path.push_back({EditOpType::kInsertEdge, v, w, g2.edge_label(v, w)});
    }
  }
  return path;
}

int EditCostFromMatching(const Graph& g1, const Graph& g2,
                         const NodeMatching& match) {
  std::vector<int> inv = InverseMatching(g1, g2, match);
  int cost = 0;
  for (int v = 0; v < g2.NumNodes(); ++v) {
    if (inv[v] == -1 || g1.label(inv[v]) != g2.label(v)) ++cost;
  }
  int common = 0;
  for (int u = 0; u < g1.NumNodes(); ++u) {
    for (int w : g1.Neighbors(u)) {
      if (u >= w) continue;
      if (g2.HasEdge(match[u], match[w])) {
        ++common;
        if (g1.edge_label(u, w) != g2.edge_label(match[u], match[w]))
          ++cost;  // edge relabel
      }
    }
  }
  cost += (g1.NumEdges() - common) + (g2.NumEdges() - common);
  return cost;
}

Graph ApplyEditPath(const Graph& g1, const Graph& g2,
                    const NodeMatching& match,
                    const std::vector<EditOp>& path) {
  // Re-house G1 into G2's coordinate system, then replay the path.
  Graph out(g2.NumNodes(), /*fill_label=*/-1);
  std::vector<int> inv = InverseMatching(g1, g2, match);
  std::vector<char> present(g2.NumNodes(), 0);
  for (int u = 0; u < g1.NumNodes(); ++u) {
    out.set_label(match[u], g1.label(u));
    present[match[u]] = 1;
  }
  for (int u = 0; u < g1.NumNodes(); ++u)
    for (int w : g1.Neighbors(u))
      if (u < w) out.AddEdge(match[u], match[w], g1.edge_label(u, w));

  for (const EditOp& op : path) {
    switch (op.type) {
      case EditOpType::kRelabelNode:
        OTGED_CHECK(present[op.a]);
        out.set_label(op.a, op.l);
        break;
      case EditOpType::kInsertNode:
        OTGED_CHECK(!present[op.a]);
        present[op.a] = 1;
        out.set_label(op.a, op.l);
        break;
      case EditOpType::kInsertEdge:
        OTGED_CHECK(present[op.a] && present[op.b]);
        out.AddEdge(op.a, op.b, op.l);
        break;
      case EditOpType::kDeleteEdge:
        out.RemoveEdge(op.a, op.b);
        break;
      case EditOpType::kRelabelEdge:
        out.set_edge_label(op.a, op.b, op.l);
        break;
      case EditOpType::kDeleteNode:
        OTGED_CHECK_MSG(false, "node deletion not expected with n1 <= n2");
    }
  }
  for (char p : present) OTGED_CHECK_MSG(p, "path left a node missing");
  return out;
}

int PathIntersectionSize(std::vector<EditOp> p1, std::vector<EditOp> p2) {
  std::sort(p1.begin(), p1.end());
  std::sort(p2.begin(), p2.end());
  size_t i = 0, j = 0;
  int common = 0;
  while (i < p1.size() && j < p2.size()) {
    if (p1[i] == p2[j]) {
      ++common;
      ++i;
      ++j;
    } else if (p1[i] < p2[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return common;
}

NodeMatching MatchingFromCouplingMatrix(const Matrix& pi) {
  NodeMatching match(pi.rows(), -1);
  std::vector<char> used(pi.cols(), 0);
  for (int i = 0; i < pi.rows(); ++i) {
    for (int j = 0; j < pi.cols(); ++j) {
      if (pi(i, j) > 0.5) {
        OTGED_CHECK_MSG(match[i] == -1, "row with multiple 1s");
        OTGED_CHECK_MSG(!used[j], "column with multiple 1s");
        match[i] = j;
        used[j] = 1;
      }
    }
    OTGED_CHECK_MSG(match[i] != -1, "row without a 1");
  }
  return match;
}

Matrix CouplingMatrixFromMatching(const NodeMatching& match, int n2) {
  Matrix pi(static_cast<int>(match.size()), n2, 0.0);
  for (size_t u = 0; u < match.size(); ++u) {
    OTGED_CHECK(match[u] >= 0 && match[u] < n2);
    pi(static_cast<int>(u), match[u]) = 1.0;
  }
  return pi;
}

}  // namespace otged
