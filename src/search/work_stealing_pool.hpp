/// \file work_stealing_pool.hpp
/// \brief Work-stealing thread pool for data-parallel loops over query
/// candidates. Each worker owns a deque of index ranges; workers split
/// their own bottom range (LIFO, cache-friendly) and idle workers steal
/// whole ranges from a victim's top (FIFO, coarsest-first), which is the
/// classic Cilk/PASGAL scheduling discipline. Deques are mutex-guarded —
/// contention is per-steal, not per-item, because work is moved in ranges.
///
/// The pool only schedules; it never reorders results. Callers write into
/// pre-sized per-index slots, so parallel loops are deterministic for any
/// thread count.
#ifndef OTGED_SEARCH_WORK_STEALING_POOL_HPP_
#define OTGED_SEARCH_WORK_STEALING_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace otged {

class WorkStealingPool {
 public:
  /// Spawns `num_threads - 1` workers; the caller participates as worker 0
  /// during ParallelFor, so `num_threads == 1` runs fully inline.
  explicit WorkStealingPool(int num_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i, worker) for every i in [0, n), distributing ranges over
  /// the pool; blocks until all n indices are done. `worker` is in
  /// [0, num_threads()) and lets callers keep contention-free per-worker
  /// accumulators. `grain` is the largest chunk a worker processes between
  /// deque interactions. Not reentrant.
  void ParallelFor(int64_t n, int grain,
                   const std::function<void(int64_t, int)>& body);

 private:
  struct Range {
    int64_t lo, hi;
  };

  struct Deque {
    std::mutex mu;
    std::deque<Range> ranges;
  };

  void WorkerLoop(int worker);
  /// Executes available work until the current loop is drained.
  void RunLoop(int worker);
  bool PopBottom(int worker, Range* out);
  bool StealTop(int thief, Range* out);

  const int num_threads_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a new loop
  std::condition_variable done_cv_;   ///< caller waits for completion
  const std::function<void(int64_t, int)>* body_ = nullptr;
  int grain_ = 1;
  std::atomic<int64_t> remaining_{0};  ///< indices not yet completed
  int active_ = 0;                    ///< workers currently inside RunLoop
  uint64_t epoch_ = 0;                ///< bumped per ParallelFor
  bool shutdown_ = false;
};

}  // namespace otged

#endif  // OTGED_SEARCH_WORK_STEALING_POOL_HPP_
