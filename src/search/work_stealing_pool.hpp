/// \file work_stealing_pool.hpp
/// \brief Work-stealing thread pool for data-parallel loops over query
/// candidates. Each worker owns a deque of index ranges; workers split
/// their own bottom range (LIFO, cache-friendly) and idle workers steal
/// whole ranges from a victim's top (FIFO, coarsest-first), which is the
/// classic Cilk/PASGAL scheduling discipline. Deques are mutex-guarded —
/// contention is per-steal, not per-item, because work is moved in ranges.
///
/// The pool only schedules; it never reorders results. Callers write into
/// pre-sized per-index slots, so parallel loops are deterministic for any
/// thread count.
#ifndef OTGED_SEARCH_WORK_STEALING_POOL_HPP_
#define OTGED_SEARCH_WORK_STEALING_POOL_HPP_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/thread_annotations.hpp"

namespace otged {

class WorkStealingPool {
 public:
  /// Spawns `num_threads - 1` workers; the caller participates as worker 0
  /// during ParallelFor, so `num_threads == 1` runs fully inline.
  explicit WorkStealingPool(int num_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i, worker) for every i in [0, n), distributing ranges over
  /// the pool; blocks until all n indices are done. `worker` is in
  /// [0, num_threads()) and lets callers keep contention-free per-worker
  /// accumulators. `grain` is the largest chunk a worker processes between
  /// deque interactions. Not reentrant.
  void ParallelFor(int64_t n, int grain,
                   const std::function<void(int64_t, int)>& body)
      EXCLUDES(mu_);

 private:
  struct Range {
    int64_t lo, hi;
  };

  struct Deque {
    Mutex mu;
    std::deque<Range> ranges GUARDED_BY(mu);
  };

  void WorkerLoop(int worker) EXCLUDES(mu_);
  /// Executes available work until the current loop is drained.
  void RunLoop(int worker) EXCLUDES(mu_);
  bool PopBottom(int worker, Range* out);
  bool StealTop(int thief, Range* out);

  const int num_threads_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;

  Mutex mu_;
  CondVar work_cv_;  ///< workers wait for a new loop
  CondVar done_cv_;  ///< caller waits for completion
  /// Loop state below is written by ParallelFor under mu_ before waking
  /// the workers; RunLoop re-reads it under mu_ at entry.
  const std::function<void(int64_t, int)>* body_ GUARDED_BY(mu_) = nullptr;
  int grain_ GUARDED_BY(mu_) = 1;
  std::atomic<int64_t> remaining_{0};  ///< indices not yet completed
  int active_ GUARDED_BY(mu_) = 0;     ///< workers inside RunLoop
  uint64_t epoch_ GUARDED_BY(mu_) = 0; ///< bumped per ParallelFor
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace otged

#endif  // OTGED_SEARCH_WORK_STEALING_POOL_HPP_
