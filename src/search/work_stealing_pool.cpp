#include "search/work_stealing_pool.hpp"

#include <algorithm>
#include <chrono>

#include "core/check.hpp"
#include "telemetry/metrics.hpp"

// Outstanding (not yet claimed) ranges across every deque; a coarse
// backlog signal, not an exact instantaneous census.
#define OTGED_POOL_QUEUE_GAUGE(n)                                         \
  OTGED_GAUGE_ADD("otged_pool_queued_ranges",                             \
                  "work ranges sitting in deques awaiting execution", (n))

namespace otged {

WorkStealingPool::WorkStealingPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  deques_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i)
    deques_.push_back(std::make_unique<Deque>());
  threads_.reserve(num_threads_ - 1);
  for (int i = 1; i < num_threads_; ++i)
    threads_.emplace_back([this, i] { WorkerLoop(i); });
}

WorkStealingPool::~WorkStealingPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void WorkStealingPool::ParallelFor(
    int64_t n, int grain, const std::function<void(int64_t, int)>& body) {
  if (n <= 0) return;
  OTGED_CHECK(grain >= 1);
  OTGED_COUNT("otged_pool_parallel_fors_total",
              "parallel loops dispatched to the pool");
  if (num_threads_ == 1 || n <= grain) {
    for (int64_t i = 0; i < n; ++i) body(i, 0);
    OTGED_COUNT_N("otged_pool_tasks_total",
                  "loop indices executed by the pool", n);
    return;
  }
  {
    MutexLock lock(mu_);
    OTGED_CHECK_MSG(body_ == nullptr, "ParallelFor is not reentrant");
    body_ = &body;
    grain_ = grain;
    remaining_.store(n, std::memory_order_relaxed);
    // Seed every deque with one contiguous slice of [0, n).
    const int64_t per = (n + num_threads_ - 1) / num_threads_;
    for (int w = 0; w < num_threads_; ++w) {
      int64_t lo = std::min<int64_t>(n, w * per);
      int64_t hi = std::min<int64_t>(n, lo + per);
      if (lo < hi) {
        MutexLock dlock(deques_[w]->mu);
        deques_[w]->ranges.push_back({lo, hi});
        OTGED_POOL_QUEUE_GAUGE(+1);
      }
    }
    ++epoch_;
  }
  work_cv_.NotifyAll();

  RunLoop(/*worker=*/0);

  // Wait until every index is done AND every woken worker has left
  // RunLoop; only then may the next epoch's state be written (a worker
  // still inside RunLoop would otherwise observe it mid-flight).
  MutexLock lock(mu_);
  while (remaining_.load(std::memory_order_acquire) != 0 || active_ != 0)
    done_cv_.Wait(mu_);
  body_ = nullptr;
}

void WorkStealingPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      MutexLock lock(mu_);
      while (!shutdown_ && epoch_ == seen_epoch) work_cv_.Wait(mu_);
      if (shutdown_) return;
      seen_epoch = epoch_;
      ++active_;
    }
    RunLoop(worker);
    {
      MutexLock lock(mu_);
      --active_;
    }
    done_cv_.NotifyAll();
  }
}

void WorkStealingPool::RunLoop(int worker) {
  // Snapshot the loop state under the lock: workers reach here only
  // between ParallelFor's publish (under mu_) and the caller's drain
  // wait, so body_/grain_ are stable for the whole loop — but the
  // analysis (and TSan) rightly insist the reads be synchronized.
  const std::function<void(int64_t, int)>* body;
  int grain;
  {
    MutexLock lock(mu_);
    body = body_;
    grain = grain_;
  }
  int victim = (worker + 1) % num_threads_;
  int dry_sweeps = 0;
  while (remaining_.load(std::memory_order_acquire) > 0) {
    Range r;
    if (!PopBottom(worker, &r)) {
      // Own deque dry: scan victims once. If everything is dry the
      // remaining work is in-flight inside other workers' chunks —
      // yield a few times, then back off to a short sleep so a long
      // tail chunk doesn't pin every idle worker at 100% CPU.
      bool stolen = false;
      for (int tries = 0; tries < num_threads_ - 1 && !stolen; ++tries) {
        if (victim == worker) victim = (victim + 1) % num_threads_;
        stolen = StealTop(victim, &r);
        victim = (victim + 1) % num_threads_;
      }
      if (stolen)
        OTGED_COUNT("otged_pool_steals_total",
                    "ranges stolen from another worker's deque");
      if (!stolen) {
        if (++dry_sweeps < 16) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        continue;
      }
    }
    dry_sweeps = 0;
    // Keep one grain, return the rest to our own bottom for further
    // splitting or stealing.
    if (r.hi - r.lo > grain) {
      MutexLock lock(deques_[worker]->mu);
      deques_[worker]->ranges.push_back({r.lo + grain, r.hi});
      OTGED_POOL_QUEUE_GAUGE(+1);
      r.hi = r.lo + grain;
    }
    for (int64_t i = r.lo; i < r.hi; ++i) (*body)(i, worker);
    OTGED_COUNT_N("otged_pool_tasks_total",
                  "loop indices executed by the pool", r.hi - r.lo);
    if (remaining_.fetch_sub(r.hi - r.lo, std::memory_order_acq_rel) ==
        r.hi - r.lo) {
      done_cv_.NotifyAll();
    }
  }
}

bool WorkStealingPool::PopBottom(int worker, Range* out) {
  Deque& d = *deques_[worker];
  MutexLock lock(d.mu);
  if (d.ranges.empty()) return false;
  *out = d.ranges.back();
  d.ranges.pop_back();
  OTGED_POOL_QUEUE_GAUGE(-1);
  return true;
}

bool WorkStealingPool::StealTop(int thief, Range* out) {
  Deque& d = *deques_[thief];
  MutexLock lock(d.mu);
  if (d.ranges.empty()) return false;
  *out = d.ranges.front();
  d.ranges.pop_front();
  OTGED_POOL_QUEUE_GAUGE(-1);
  return true;
}

}  // namespace otged
