#include "search/store_serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <optional>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/graph_io.hpp"

namespace otged {

namespace {

constexpr uint64_t kMagic = 0x31524F545347544Full;  // "OTGSTOR1" LE

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

template <typename T>
void AppendPod(std::string* buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buf->append(bytes, sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view buf, size_t* offset, T* out) {
  if (*offset + sizeof(T) > buf.size()) return false;
  std::memcpy(out, buf.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

void AppendInvariants(std::string* buf, const GraphInvariants& inv) {
  AppendPod<int32_t>(buf, inv.num_nodes);
  AppendPod<int32_t>(buf, inv.num_edges);
  AppendPod<uint64_t>(buf, inv.wl_hash);
  for (Label l : inv.sorted_labels) AppendPod<int32_t>(buf, l);
  for (int d : inv.sorted_degrees) AppendPod<int32_t>(buf, d);
}

bool ReadInvariants(std::string_view buf, size_t* offset,
                    GraphInvariants* inv) {
  int32_t n = 0, m = 0;
  if (!ReadPod(buf, offset, &n) || !ReadPod(buf, offset, &m) || n < 0)
    return false;
  inv->num_nodes = n;
  inv->num_edges = m;
  if (!ReadPod(buf, offset, &inv->wl_hash)) return false;
  inv->sorted_labels.resize(n);
  for (int32_t i = 0; i < n; ++i) {
    int32_t l = 0;
    if (!ReadPod(buf, offset, &l)) return false;
    inv->sorted_labels[i] = l;
  }
  inv->sorted_degrees.resize(n);
  for (int32_t i = 0; i < n; ++i) {
    int32_t d = 0;
    if (!ReadPod(buf, offset, &d)) return false;
    inv->sorted_degrees[i] = d;
  }
  return true;
}

}  // namespace

bool SaveGraphStore(const GraphStore& store, const std::string& path,
                    std::string* error, GraphIndex* index) {
  // Pin one snapshot so the file is internally consistent even if the
  // store mutates mid-save; NextId is read after and only moves forward,
  // so it is always >= every id in the snapshot.
  auto snap = store.Snapshot();
  const int64_t next_id = store.NextId();

  std::string payload;
  AppendPod<int64_t>(&payload, next_id);
  AppendPod<uint64_t>(&payload, static_cast<uint64_t>(snap->Size()));
  for (int slot = 0; slot < snap->Size(); ++slot) {
    AppendPod<int64_t>(&payload, snap->id(slot));
    AppendGraphBinary(&payload, snap->graph(slot));
    AppendInvariants(&payload, snap->invariants(slot));
  }
  if (index != nullptr) {
    // Compact first (empty overlay) so the persisted tree — and its
    // digest — equal a deterministic from-scratch rebuild of this
    // snapshot.
    const PersistedIndex pi =
        MakePersistedIndex(*index->CompactViewFor(snap));
    AppendPod<uint8_t>(&payload, 1u);
    AppendPod<int32_t>(&payload, pi.wl_prefix_bits);
    AppendPod<uint64_t>(&payload, static_cast<uint64_t>(pi.nodes.size()));
    for (size_t i = 0; i < pi.nodes.size(); ++i) {
      AppendPod<int64_t>(&payload, pi.node_ids[i]);
      AppendPod<int32_t>(&payload, pi.nodes[i].r_in_max);
      AppendPod<int32_t>(&payload, pi.nodes[i].r_out_min);
      AppendPod<int32_t>(&payload, pi.nodes[i].inner);
    }
    AppendPod<uint64_t>(&payload, pi.digest);
  } else {
    AppendPod<uint8_t>(&payload, 0u);
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  std::string header;
  AppendPod<uint64_t>(&header, kMagic);
  AppendPod<uint32_t>(&header, kStoreFormatVersion);
  AppendPod<uint32_t>(&header, 0u);  // reserved
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  std::string checksum;
  AppendPod<uint64_t>(&checksum, Fnv1a64(payload));
  out.write(checksum.data(), static_cast<std::streamsize>(checksum.size()));
  if (!out) return Fail(error, "write failure on " + path);
  return true;
}

bool LoadGraphStore(GraphStore* store, const std::string& path,
                    std::string* error, GraphIndex* index) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return Fail(error, "read failure on " + path);

  size_t offset = 0;
  uint64_t magic = 0;
  uint32_t version = 0, reserved = 0;
  if (!ReadPod<uint64_t>(file, &offset, &magic) || magic != kMagic)
    return Fail(error, "not a GraphStore file (bad magic)");
  if (!ReadPod<uint32_t>(file, &offset, &version) ||
      (version != 1 && version != kStoreFormatVersion))
    return Fail(error, "unsupported format version " +
                           std::to_string(version));
  if (!ReadPod<uint32_t>(file, &offset, &reserved))
    return Fail(error, "truncated header");

  if (file.size() < offset + sizeof(uint64_t))
    return Fail(error, "truncated file (no checksum)");
  const size_t payload_end = file.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  {
    size_t ck_offset = payload_end;
    ReadPod<uint64_t>(file, &ck_offset, &stored_checksum);
  }
  const std::string_view payload(file.data() + offset, payload_end - offset);
  if (Fnv1a64(payload) != stored_checksum)
    return Fail(error, "checksum mismatch (corrupt file)");

  size_t p = 0;  // offsets below are relative to the payload
  int64_t next_id = 0;
  uint64_t count = 0;
  if (!ReadPod(payload, &p, &next_id) || !ReadPod(payload, &p, &count) ||
      next_id < 0 || next_id > std::numeric_limits<int>::max())
    return Fail(error, "malformed payload header");
  // Don't trust the count for allocation: each entry occupies at least
  // an id (8) plus the graph and invariant headers (8 + 16 bytes).
  if (count > (payload.size() - p) / 32)
    return Fail(error, "entry count exceeds payload size");

  std::vector<std::pair<int, Graph>> entries;
  entries.reserve(count);
  int64_t prev_id = -1;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t id = -1;
    if (!ReadPod(payload, &p, &id) || id <= prev_id || id >= next_id)
      return Fail(error, "malformed or non-increasing graph id");
    prev_id = id;
    std::string decode_error;
    std::optional<Graph> g = DecodeGraphBinary(payload, &p, &decode_error);
    if (!g.has_value())
      return Fail(error, "entry " + std::to_string(i) + ": " + decode_error);
    GraphInvariants stored_inv;
    if (!ReadInvariants(payload, &p, &stored_inv))
      return Fail(error, "entry " + std::to_string(i) +
                             ": truncated invariants");
    // A reload must be bit-identical to a rebuild: recompute and compare.
    if (!(ComputeInvariants(*g) == stored_inv))
      return Fail(error, "entry " + std::to_string(i) +
                             ": invariants do not match the graph");
    entries.emplace_back(static_cast<int>(id), std::move(*g));
  }

  // --- index section (v2+) ---------------------------------------------
  // Parsed and validated against the entry list *before* Restore, so a
  // malformed file never mutates the store. Deeper checks (preorder tree
  // shape, structural digest) need the restored snapshot and run in
  // AdoptPersisted below — those failures are non-fatal by design: the
  // graphs have already been verified against recomputed invariants, and
  // the index is derived data the next query rebuilds from them.
  PersistedIndex pi;
  bool has_index = false;
  if (version >= 2) {
    uint8_t flag = 0;
    if (!ReadPod(payload, &p, &flag) || flag > 1)
      return Fail(error, "malformed index flag");
    if (flag == 1) {
      has_index = true;
      int32_t bits = 0;
      uint64_t node_count = 0;
      if (!ReadPod(payload, &p, &bits) ||
          !ReadPod(payload, &p, &node_count) || bits < 1 || bits > 64)
        return Fail(error, "malformed index header");
      if (node_count != count)
        return Fail(error, "index node count != entry count");
      pi.wl_prefix_bits = bits;
      pi.node_ids.reserve(node_count);
      pi.nodes.reserve(node_count);
      for (uint64_t i = 0; i < node_count; ++i) {
        int64_t id = -1;
        VpTreeNode node;
        if (!ReadPod(payload, &p, &id) ||
            !ReadPod(payload, &p, &node.r_in_max) ||
            !ReadPod(payload, &p, &node.r_out_min) ||
            !ReadPod(payload, &p, &node.inner))
          return Fail(error, "truncated index node");
        // Vantage ids must name graphs in the entry list (ascending by
        // id, so a binary search suffices).
        const auto it = std::lower_bound(
            entries.begin(), entries.end(), id,
            [](const auto& e, int64_t v) { return e.first < v; });
        if (it == entries.end() || it->first != id)
          return Fail(error, "index references unknown graph id");
        pi.node_ids.push_back(static_cast<int>(id));
        pi.nodes.push_back(node);
      }
      if (!ReadPod(payload, &p, &pi.digest))
        return Fail(error, "truncated index digest");
    }
  }
  if (p != payload.size())
    return Fail(error, "trailing bytes after last entry");

  if (!store->Restore(std::move(entries), static_cast<int>(next_id)))
    return Fail(error, "store rejected the id sequence");
  if (index != nullptr && has_index &&
      pi.wl_prefix_bits == index->options().wl_prefix_bits) {
    // Config mismatch or adoption failure (bad tree shape / digest) both
    // skip adoption; the store is fully restored either way and the next
    // query rebuilds the index from it.
    std::string adopt_error;
    (void)index->AdoptPersisted(store->Snapshot(), pi, &adopt_error);
  }
  return true;
}

}  // namespace otged
