#include "search/filter_cascade.hpp"

#include <algorithm>
#include <cmath>

#include "assignment/kbest.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/parallel_bnb.hpp"
#include "heuristics/bipartite.hpp"
#include "heuristics/lower_bounds.hpp"
#include "models/gedgw.hpp"
#include "telemetry/metrics.hpp"

namespace otged {

void CascadeStats::Merge(const CascadeStats& o) {
  candidates += o.candidates;
  pruned_index += o.pruned_index;
  pruned_invariant += o.pruned_invariant;
  passed_invariant += o.passed_invariant;
  pruned_branch += o.pruned_branch;
  decided_heuristic += o.decided_heuristic;
  decided_ot += o.decided_ot;
  decided_exact += o.decided_exact;
  ot_calls += o.ot_calls;
  exact_calls += o.exact_calls;
  exact_incomplete += o.exact_incomplete;
  cache_hits += o.cache_hits;
  exact_parallel_runs += o.exact_parallel_runs;
  exact_parallel_expansions += o.exact_parallel_expansions;
  exact_parallel_subtrees += o.exact_parallel_subtrees;
  exact_parallel_rounds += o.exact_parallel_rounds;
  exact_parallel_incumbent_updates += o.exact_parallel_incumbent_updates;
  exact_parallel_batches += o.exact_parallel_batches;
}

double CascadeStats::PrunedBeforeSolvers() const {
  if (candidates == 0) return 0.0;
  return static_cast<double>(pruned_index + pruned_invariant +
                             pruned_branch) /
         static_cast<double>(candidates);
}

FilterCascade::FilterCascade(const CascadeOptions& opt) : opt_(opt) {
  if (opt_.parallel_exact_threads > 1)
    exact_pool_ =
        std::make_unique<WorkStealingPool>(opt_.parallel_exact_threads);
}

#if OTGED_TELEMETRY_COMPILED
namespace {

/// All cascade metric handles, resolved once. A plain OTGED_COUNT macro
/// would pin the *first* name it sees per call site, so tier-indexed
/// metrics are looked up here instead.
struct CascadeMetrics {
  telemetry::Counter* candidates;
  telemetry::Counter* pruned[2];     ///< tier 0 (invariant), tier 1 (branch)
  telemetry::Counter* passed_invariant;
  telemetry::Counter* decided[3];    ///< heuristic, ot, exact
  telemetry::Counter* escalated[4];  ///< entered branch/heuristic/ot/exact
  telemetry::Counter* ot_calls;
  telemetry::Counter* exact_calls;
  telemetry::Counter* exact_incomplete;
  telemetry::Counter* parallel_runs;
  telemetry::Counter* parallel_expansions;
  telemetry::Counter* parallel_subtrees;
  telemetry::Counter* parallel_rounds;
  telemetry::Counter* parallel_incumbent_updates;
  telemetry::Counter* parallel_batches;
  telemetry::Histogram* tier_latency[5];
};

const CascadeMetrics& Metrics() {
  static const CascadeMetrics* m = [] {
    auto* mm = new CascadeMetrics;
    auto& reg = telemetry::Registry();
    static const char* kTier[5] = {"invariant", "branch", "heuristic", "ot",
                                   "exact"};
    mm->candidates =
        &reg.GetCounter("otged_cascade_candidates_total",
                        "candidate pairs fed into the filter cascade");
    for (int t : {0, 1})
      mm->pruned[t] = &reg.GetCounter(
          std::string("otged_cascade_pruned_total{tier=\"") + kTier[t] +
              "\"}",
          "pairs dismissed by an admissible lower bound at this tier");
    mm->passed_invariant = &reg.GetCounter(
        "otged_cascade_passed_total{tier=\"invariant\"}",
        "pairs settled by the tier-0 identity fast path (GED == 0)");
    for (int t : {2, 3, 4})
      mm->decided[t - 2] = &reg.GetCounter(
          std::string("otged_cascade_decided_total{tier=\"") + kTier[t] +
              "\"}",
          "pairs whose membership or distance this tier settled");
    for (int t : {1, 2, 3, 4})
      mm->escalated[t - 1] = &reg.GetCounter(
          std::string("otged_cascade_escalated_total{to=\"") + kTier[t] +
              "\"}",
          "pairs the previous tiers could not settle");
    mm->ot_calls = &reg.GetCounter("otged_cascade_ot_calls_total",
                                   "GEDGW solver invocations");
    mm->exact_calls = &reg.GetCounter("otged_cascade_exact_calls_total",
                                      "branch-and-bound invocations");
    mm->exact_incomplete =
        &reg.GetCounter("otged_cascade_exact_incomplete_total",
                        "exact runs that exhausted their visit budget");
    mm->parallel_runs =
        &reg.GetCounter("otged_exact_parallel_runs_total",
                        "parallel branch-and-bound invocations");
    mm->parallel_expansions =
        &reg.GetCounter("otged_exact_parallel_expansions_total",
                        "search-tree nodes expanded by parallel runs");
    mm->parallel_subtrees =
        &reg.GetCounter("otged_exact_parallel_subtrees_total",
                        "root subtrees distributed over the exact pool");
    mm->parallel_rounds =
        &reg.GetCounter("otged_exact_parallel_rounds_total",
                        "round barriers executed by parallel runs");
    mm->parallel_incumbent_updates = &reg.GetCounter(
        "otged_exact_parallel_incumbent_updates_total",
        "stable-incumbent improvements folded at round barriers");
    mm->parallel_batches = &reg.GetCounter(
        "otged_exact_parallel_batches_total",
        "multi-pair batch dispatches onto the exact pool");
    for (int t = 0; t < 5; ++t)
      mm->tier_latency[t] = &reg.GetHistogram(
          std::string("otged_cascade_tier_latency_us{tier=\"") + kTier[t] +
              "\"}",
          "wall time spent inside this tier per pair that entered it");
    return mm;
  }();
  return *m;
}

}  // namespace
#endif  // OTGED_TELEMETRY_COMPILED

CascadeVerdict FilterCascade::BoundedDistance(const Graph& query,
                                              const GraphInvariants& qi,
                                              const Graph& g,
                                              const GraphInvariants& gi,
                                              int tau, bool need_distance,
                                              CascadeStats* stats,
                                              CascadeProbe* probe,
                                              DeferredExact* defer) const {
  OTGED_DCHECK(stats != nullptr);
  stats->candidates++;
#if OTGED_TELEMETRY_COMPILED
  const bool metered = telemetry::Enabled();
  if (metered) Metrics().candidates->Inc();
#else
  constexpr bool metered = false;
#endif
  const bool timed = probe != nullptr || metered;
  double tier_us[5] = {0, 0, 0, 0, 0};
  double t_prev = timed ? telemetry::NowUs() : 0.0;
  // Charges the wall time since the previous mark to `tier`.
  auto mark = [&](CascadeTier tier) {
    if (!timed) return;
    const double now = telemetry::NowUs();
    tier_us[static_cast<int>(tier)] += now - t_prev;
    t_prev = now;
  };
  int best_lb = -1, best_ub = -1;
  long exact_expansions = 0;
  auto finish = [&](const CascadeVerdict& v) {
    if (probe != nullptr) {
      probe->lb = best_lb;
      probe->ub = best_ub;
      probe->exact_expansions = exact_expansions;
      std::copy(tier_us, tier_us + 5, probe->tier_us);
    }
#if OTGED_TELEMETRY_COMPILED
    if (metered) {
      for (int t = 0; t < 5; ++t)
        if (tier_us[t] > 0.0)
          Metrics().tier_latency[t]->Record(std::lround(tier_us[t]));
    }
#endif
    return v;
  };
  CascadeVerdict v;

  // --- tier 0: invariants only, no adjacency access --------------------
  int lb = InvariantLowerBound(qi, gi);
  best_lb = lb;
  if (lb > tau) {
    stats->pruned_invariant++;
#if OTGED_TELEMETRY_COMPILED
    if (metered) Metrics().pruned[0]->Inc();
#endif
    v.tier = CascadeTier::kInvariant;
    mark(CascadeTier::kInvariant);
    return finish(v);
  }
  if (lb == 0 && qi.wl_hash == gi.wl_hash && query == g) {
    // Identity fast path (node-identity equality implies GED == 0).
    stats->passed_invariant++;
#if OTGED_TELEMETRY_COMPILED
    if (metered) Metrics().passed_invariant->Inc();
#endif
    v.within = true;
    v.ged = 0;
    v.exact_distance = true;
    v.tier = CascadeTier::kInvariant;
    best_ub = 0;
    mark(CascadeTier::kInvariant);
    return finish(v);
  }
  mark(CascadeTier::kInvariant);

  auto [g1, g2] = OrderBySize(query, g);

  // --- tier 1: BRANCH bipartite lower bound ----------------------------
  if (opt_.use_branch_bound) {
#if OTGED_TELEMETRY_COMPILED
    if (metered) Metrics().escalated[0]->Inc();
#endif
    lb = std::max(lb, static_cast<int>(
                          std::ceil(BranchLowerBound(*g1, *g2) - 1e-9)));
    best_lb = lb;
    if (lb > tau) {
      stats->pruned_branch++;
#if OTGED_TELEMETRY_COMPILED
      if (metered) Metrics().pruned[1]->Inc();
#endif
      v.tier = CascadeTier::kBranch;
      mark(CascadeTier::kBranch);
      return finish(v);
    }
    mark(CascadeTier::kBranch);
  }

  // --- tier 2: Classic heuristic upper bound ---------------------------
#if OTGED_TELEMETRY_COMPILED
  if (metered) Metrics().escalated[1]->Inc();
#endif
  int ub = ClassicGed(*g1, *g2).ged;
  best_ub = ub;
  if (lb == ub) {
    // Certificate: admissible LB meets feasible UB, distance is exact.
    stats->decided_heuristic++;
#if OTGED_TELEMETRY_COMPILED
    if (metered) Metrics().decided[0]->Inc();
#endif
    v.within = ub <= tau;
    v.ged = ub;
    v.exact_distance = true;
    v.tier = CascadeTier::kHeuristic;
    mark(CascadeTier::kHeuristic);
    return finish(v);
  }
  if (!need_distance && ub <= tau) {
    // The feasible edit path already witnesses membership.
    stats->decided_heuristic++;
#if OTGED_TELEMETRY_COMPILED
    if (metered) Metrics().decided[0]->Inc();
#endif
    v.within = true;
    v.ged = ub;
    v.tier = CascadeTier::kHeuristic;
    mark(CascadeTier::kHeuristic);
    return finish(v);
  }
  mark(CascadeTier::kHeuristic);

  // --- tier 3: OT verify (GEDGW coupling -> k-best edit path) ----------
  if (opt_.use_ot_verify) {
    stats->ot_calls++;
#if OTGED_TELEMETRY_COMPILED
    if (metered) {
      Metrics().escalated[2]->Inc();
      Metrics().ot_calls->Inc();
    }
#endif
    GedgwConfig gw_cfg;
    gw_cfg.cg_iters = opt_.gw_iters;
    GedgwSolver gw(gw_cfg);
    Prediction pred = gw.Predict(*g1, *g2);
    GepResult gep = KBestGepSearch(*g1, *g2, pred.coupling, opt_.kbest_k);
    ub = std::min(ub, gep.ged);
    best_ub = ub;
    if (lb == ub) {
      stats->decided_ot++;
#if OTGED_TELEMETRY_COMPILED
      if (metered) Metrics().decided[1]->Inc();
#endif
      v.within = ub <= tau;
      v.ged = ub;
      v.exact_distance = true;
      v.tier = CascadeTier::kOt;
      mark(CascadeTier::kOt);
      return finish(v);
    }
    if (!need_distance && ub <= tau) {
      stats->decided_ot++;
#if OTGED_TELEMETRY_COMPILED
      if (metered) Metrics().decided[1]->Inc();
#endif
      v.within = true;
      v.ged = ub;
      v.tier = CascadeTier::kOt;
      mark(CascadeTier::kOt);
      return finish(v);
    }
    mark(CascadeTier::kOt);
  }

  // --- tier 4: exact verify (branch and bound, seeded with best UB) ----
  stats->exact_calls++;
#if OTGED_TELEMETRY_COMPILED
  if (metered) {
    Metrics().escalated[3]->Inc();
    Metrics().exact_calls->Inc();
  }
#endif
  if (defer != nullptr) {
    // Hand the pair back for batch verification. Escalation is already
    // charged above; FinishDeferredExact charges the decision counters,
    // so the split stays counter-for-counter identical to running here.
    defer->pending = true;
    defer->g1 = g1;
    defer->g2 = g2;
    defer->tau = tau;
    defer->lb = lb;
    defer->ub = ub;
    v.ged = ub;  // placeholder — the caller must discard this verdict
    v.tier = CascadeTier::kExact;
    mark(CascadeTier::kExact);
    return finish(v);
  }
  GedSearchResult exact = ExactSearch(*g1, *g2, opt_.exact_budget, ub, stats);
  exact_expansions = exact.expansions;
  if (!exact.exact) {
    stats->exact_incomplete++;
#if OTGED_TELEMETRY_COMPILED
    if (metered) Metrics().exact_incomplete->Inc();
#endif
  }
  stats->decided_exact++;
#if OTGED_TELEMETRY_COMPILED
  if (metered) Metrics().decided[2]->Inc();
#endif
  // On budget exhaustion `exact.ged` is only a feasible upper bound; the
  // only valid dismissal evidence is an admissible LB > tau, and here
  // lb <= tau. Keep the candidate (no false dismissals, ever) and flag
  // the distance as unproven.
  v.within = exact.ged <= tau || !exact.exact;
  v.ged = exact.ged;
  v.exact_distance = exact.exact;
  v.tier = CascadeTier::kExact;
  best_ub = exact.ged;
  mark(CascadeTier::kExact);
  return finish(v);
}

CascadeVerdict FilterCascade::FinishDeferredExact(
    const DeferredExact& defer, const GedSearchResult& exact,
    CascadeStats* stats) const {
  OTGED_DCHECK(stats != nullptr && defer.pending);
#if OTGED_TELEMETRY_COMPILED
  const bool metered = telemetry::Enabled();
#endif
  if (!exact.exact) {
    stats->exact_incomplete++;
#if OTGED_TELEMETRY_COMPILED
    if (metered) Metrics().exact_incomplete->Inc();
#endif
  }
  stats->decided_exact++;
#if OTGED_TELEMETRY_COMPILED
  if (metered) Metrics().decided[2]->Inc();
#endif
  // Same no-false-dismissals rule as the inline tier: on budget
  // exhaustion the distance is only a feasible upper bound, so keep the
  // candidate and flag it unproven.
  CascadeVerdict v;
  v.within = exact.ged <= defer.tau || !exact.exact;
  v.ged = exact.ged;
  v.exact_distance = exact.exact;
  v.tier = CascadeTier::kExact;
  return v;
}

GedSearchResult FilterCascade::ExactSearch(const Graph& g1, const Graph& g2,
                                           long budget,
                                           int initial_upper_bound,
                                           CascadeStats* stats) const {
  OTGED_DCHECK(stats != nullptr);
  if (exact_pool_ == nullptr) {
    BnbOptions bnb;
    bnb.max_visits = budget;
    bnb.initial_upper_bound = initial_upper_bound;
    return BranchAndBoundGed(g1, g2, bnb);
  }
  ParallelBnbOptions par;
  par.max_expansions = budget;
  par.initial_upper_bound = initial_upper_bound;
  ParallelBnbStats ps;
  GedSearchResult res;
  {
    // The private pool is non-reentrant, so concurrent hard pairs take
    // turns — each still fans its own search tree over every exact
    // thread, which is the point: one hard pair no longer pins a core.
    MutexLock exact_lock(exact_mu_);
    res = ParallelBranchAndBoundGed(g1, g2, exact_pool_.get(), par, &ps);
  }
  stats->exact_parallel_runs++;
  stats->exact_parallel_expansions += res.expansions;
  stats->exact_parallel_subtrees += ps.subtrees;
  stats->exact_parallel_rounds += ps.rounds;
  stats->exact_parallel_incumbent_updates += ps.incumbent_updates;
#if OTGED_TELEMETRY_COMPILED
  if (telemetry::Enabled()) {
    const CascadeMetrics& m = Metrics();
    m.parallel_runs->Inc();
    m.parallel_expansions->Inc(res.expansions);
    m.parallel_subtrees->Inc(ps.subtrees);
    m.parallel_rounds->Inc(ps.rounds);
    m.parallel_incumbent_updates->Inc(ps.incumbent_updates);
  }
#endif
  return res;
}

std::vector<GedSearchResult> FilterCascade::ExactSearchBatch(
    const std::vector<ExactBatchRequest>& items,
    const std::vector<CascadeStats*>& stats) const {
  OTGED_CHECK(items.size() == stats.size());
  std::vector<GedSearchResult> out;
  out.reserve(items.size());
  if (items.empty()) return out;
  if (exact_pool_ == nullptr) {
    // Sequential fallback: per-pair dispatch, identical to looping
    // ExactSearch (no parallel counters move on this path either).
    for (size_t i = 0; i < items.size(); ++i)
      out.push_back(ExactSearch(*items[i].g1, *items[i].g2, items[i].budget,
                                items[i].initial_upper_bound, stats[i]));
    return out;
  }
  std::vector<ParallelBnbBatchItem> batch;
  batch.reserve(items.size());
  for (const ExactBatchRequest& it : items) {
    ParallelBnbBatchItem b;
    b.g1 = it.g1;
    b.g2 = it.g2;
    b.opt.max_expansions = it.budget;
    b.opt.initial_upper_bound = it.initial_upper_bound;
    batch.push_back(b);
  }
  std::vector<ParallelBnbStats> ps;
  {
    // One pool acquisition for the whole batch: all pairs' subtrees share
    // each round's ParallelFor, so a pair down to straggler subtrees no
    // longer leaves exact threads idle while other hard pairs wait.
    MutexLock exact_lock(exact_mu_);
    out = ParallelBranchAndBoundGedBatch(batch, exact_pool_.get(), &ps);
  }
  stats[0]->exact_parallel_batches++;
  for (size_t i = 0; i < items.size(); ++i) {
    stats[i]->exact_parallel_runs++;
    stats[i]->exact_parallel_expansions += out[i].expansions;
    stats[i]->exact_parallel_subtrees += ps[i].subtrees;
    stats[i]->exact_parallel_rounds += ps[i].rounds;
    stats[i]->exact_parallel_incumbent_updates += ps[i].incumbent_updates;
  }
#if OTGED_TELEMETRY_COMPILED
  if (telemetry::Enabled()) {
    const CascadeMetrics& m = Metrics();
    m.parallel_batches->Inc();
    m.parallel_runs->Inc(static_cast<long>(items.size()));
    for (size_t i = 0; i < items.size(); ++i) {
      m.parallel_expansions->Inc(out[i].expansions);
      m.parallel_subtrees->Inc(ps[i].subtrees);
      m.parallel_rounds->Inc(ps[i].rounds);
      m.parallel_incumbent_updates->Inc(ps[i].incumbent_updates);
    }
  }
#endif
  return out;
}

}  // namespace otged
