#include "search/filter_cascade.hpp"

#include <algorithm>
#include <cmath>

#include "assignment/kbest.hpp"
#include "exact/branch_and_bound.hpp"
#include "heuristics/bipartite.hpp"
#include "heuristics/lower_bounds.hpp"
#include "models/gedgw.hpp"

namespace otged {

void CascadeStats::Merge(const CascadeStats& o) {
  candidates += o.candidates;
  pruned_invariant += o.pruned_invariant;
  pruned_branch += o.pruned_branch;
  decided_heuristic += o.decided_heuristic;
  decided_ot += o.decided_ot;
  decided_exact += o.decided_exact;
  ot_calls += o.ot_calls;
  exact_calls += o.exact_calls;
  exact_incomplete += o.exact_incomplete;
  cache_hits += o.cache_hits;
}

double CascadeStats::PrunedBeforeSolvers() const {
  if (candidates == 0) return 0.0;
  return static_cast<double>(pruned_invariant + pruned_branch) / candidates;
}

FilterCascade::FilterCascade(const CascadeOptions& opt) : opt_(opt) {}

CascadeVerdict FilterCascade::BoundedDistance(const Graph& query,
                                              const GraphInvariants& qi,
                                              const Graph& g,
                                              const GraphInvariants& gi,
                                              int tau, bool need_distance,
                                              CascadeStats* stats) const {
  OTGED_DCHECK(stats != nullptr);
  stats->candidates++;
  CascadeVerdict v;

  // --- tier 0: invariants only, no adjacency access --------------------
  int lb = InvariantLowerBound(qi, gi);
  if (lb > tau) {
    stats->pruned_invariant++;
    v.tier = CascadeTier::kInvariant;
    return v;
  }
  if (lb == 0 && qi.wl_hash == gi.wl_hash && query == g) {
    // Identity fast path (node-identity equality implies GED == 0).
    v.within = true;
    v.ged = 0;
    v.exact_distance = true;
    v.tier = CascadeTier::kInvariant;
    return v;
  }

  auto [g1, g2] = OrderBySize(query, g);

  // --- tier 1: BRANCH bipartite lower bound ----------------------------
  if (opt_.use_branch_bound) {
    lb = std::max(lb, static_cast<int>(
                          std::ceil(BranchLowerBound(*g1, *g2) - 1e-9)));
    if (lb > tau) {
      stats->pruned_branch++;
      v.tier = CascadeTier::kBranch;
      return v;
    }
  }

  // --- tier 2: Classic heuristic upper bound ---------------------------
  int ub = ClassicGed(*g1, *g2).ged;
  if (lb == ub) {
    // Certificate: admissible LB meets feasible UB, distance is exact.
    stats->decided_heuristic++;
    v.within = ub <= tau;
    v.ged = ub;
    v.exact_distance = true;
    v.tier = CascadeTier::kHeuristic;
    return v;
  }
  if (!need_distance && ub <= tau) {
    // The feasible edit path already witnesses membership.
    stats->decided_heuristic++;
    v.within = true;
    v.ged = ub;
    v.tier = CascadeTier::kHeuristic;
    return v;
  }

  // --- tier 3: OT verify (GEDGW coupling -> k-best edit path) ----------
  if (opt_.use_ot_verify) {
    stats->ot_calls++;
    GedgwConfig gw_cfg;
    gw_cfg.cg_iters = opt_.gw_iters;
    GedgwSolver gw(gw_cfg);
    Prediction pred = gw.Predict(*g1, *g2);
    GepResult gep = KBestGepSearch(*g1, *g2, pred.coupling, opt_.kbest_k);
    ub = std::min(ub, gep.ged);
    if (lb == ub) {
      stats->decided_ot++;
      v.within = ub <= tau;
      v.ged = ub;
      v.exact_distance = true;
      v.tier = CascadeTier::kOt;
      return v;
    }
    if (!need_distance && ub <= tau) {
      stats->decided_ot++;
      v.within = true;
      v.ged = ub;
      v.tier = CascadeTier::kOt;
      return v;
    }
  }

  // --- tier 4: exact verify (branch and bound, seeded with best UB) ----
  stats->exact_calls++;
  BnbOptions bnb;
  bnb.max_visits = opt_.exact_budget;
  bnb.initial_upper_bound = ub;
  GedSearchResult exact = BranchAndBoundGed(*g1, *g2, bnb);
  if (!exact.exact) stats->exact_incomplete++;
  stats->decided_exact++;
  // On budget exhaustion `exact.ged` is only a feasible upper bound; the
  // only valid dismissal evidence is an admissible LB > tau, and here
  // lb <= tau. Keep the candidate (no false dismissals, ever) and flag
  // the distance as unproven.
  v.within = exact.ged <= tau || !exact.exact;
  v.ged = exact.ged;
  v.exact_distance = exact.exact;
  v.tier = CascadeTier::kExact;
  return v;
}

}  // namespace otged
