/// \file filter_cascade.hpp
/// \brief The filter–verify decision procedure behind the search engine.
///
/// A candidate pair (query, stored graph) escalates through tiers of
/// increasing cost until its GED relative to a threshold is decided:
///
///   tier 0  invariant bound     O(n)       label-multiset (Eq. 22) and
///                                          degree-sequence lower bounds
///                                          from GraphStore invariants
///   tier 1  BRANCH bound        O(n^3)     bipartite assignment LB
///   tier 2  heuristic verify    O(n^3)     Classic (Hungarian+VJ) upper
///                                          bound; LB == UB certifies
///   tier 3  OT verify           O(I n^3)   GEDGW conditional gradient +
///                                          k-best edit-path upper bound
///   tier 4  exact verify        exp(n)     branch-and-bound, seeded with
///                                          the best upper bound
///
/// Lower bounds are admissible and upper bounds are witnessed by feasible
/// edit paths, so a range decision (`GED <= tau`?) made at any tier equals
/// the brute-force answer: no false dismissals, no false hits. The one
/// exception is an exact-tier budget exhaustion, where the pair is kept
/// conservatively (still no false dismissals) and flagged as unproven.
#ifndef OTGED_SEARCH_FILTER_CASCADE_HPP_
#define OTGED_SEARCH_FILTER_CASCADE_HPP_

#include <memory>
#include <optional>

#include "exact/astar.hpp"
#include "search/graph_store.hpp"
#include "search/work_stealing_pool.hpp"

namespace otged {

struct CascadeOptions {
  bool use_branch_bound = true;  ///< enable the tier-1 bipartite LB
  bool use_ot_verify = true;     ///< enable the tier-3 GEDGW refinement
  int kbest_k = 8;               ///< path-search width for the OT tier
  int gw_iters = 20;             ///< conditional-gradient iterations
  /// Tier-4 branch-and-bound node-expansion budget.
  long exact_budget = 20'000'000;
  /// > 1: run the tier-4 verifier (and top-k seed refinement) as the
  /// deterministic parallel branch-and-bound on a private pool of this
  /// many threads, so one hard pair no longer serializes on a single
  /// core. The parallel solver's output is byte-identical for any value
  /// here (see parallel_bnb.hpp); concurrent hard pairs serialize on the
  /// private pool — except through ExactSearchBatch, which solves many
  /// pairs under one acquisition with their subtrees sharing each round
  /// (the QueryEngine routes batch tier-4 work and top-k seed refinement
  /// through it). 0 or 1 = sequential solver (the default).
  int parallel_exact_threads = 0;
};

/// Where a candidate's fate was decided (statistics only). kCache is not
/// a cascade tier proper: it marks pairs the QueryEngine answered from
/// its bound cache without entering the cascade.
enum class CascadeTier : int {
  kInvariant = 0,
  kBranch = 1,
  kHeuristic = 2,
  kOt = 3,
  kExact = 4,
  kCache = 5,
};

/// Per-run filter statistics; totals over many candidates are obtained by
/// Merge, which is associative and commutative, so parallel accumulation
/// into per-worker buffers stays deterministic.
struct CascadeStats {
  long candidates = 0;  ///< pairs considered (incl. index-pruned ones)
  long pruned_index = 0;  ///< dismissed by the index before the cascade ran
  long pruned_invariant = 0;  ///< dismissed by tier 0 alone
  long passed_invariant = 0;  ///< settled by the tier-0 identity fast path
  long pruned_branch = 0;     ///< dismissed by the tier-1 LB
  long decided_heuristic = 0; ///< decided by the tier-2 UB (incl. LB==UB)
  long decided_ot = 0;        ///< decided by the tier-3 OT bound
  long decided_exact = 0;     ///< needed the exact solver
  long ot_calls = 0;          ///< GEDGW invocations
  long exact_calls = 0;       ///< branch-and-bound invocations
  long exact_incomplete = 0;  ///< exact runs that exhausted their budget
  long cache_hits = 0;        ///< pairs answered from the bound cache
  // Parallel-exact observability (zero when parallel_exact_threads <= 1).
  // Every field is deterministic — a pure function of the evaluated
  // pairs — and reconciles exactly with the otged_exact_parallel_*
  // telemetry counters.
  long exact_parallel_runs = 0;        ///< parallel B&B invocations
  long exact_parallel_expansions = 0;  ///< nodes expanded by those runs
  long exact_parallel_subtrees = 0;    ///< root subtrees distributed
  long exact_parallel_rounds = 0;      ///< round barriers executed
  long exact_parallel_incumbent_updates = 0;  ///< incumbent folds
  /// Multi-pair batch dispatches (ExactSearchBatch calls that ran on the
  /// parallel pool). A batch spanning several queries is attributed to
  /// the first pair's stats sink, so summing over queries still
  /// reconciles with otged_exact_parallel_batches_total.
  long exact_parallel_batches = 0;

  void Merge(const CascadeStats& o);
  /// Fraction of candidates dismissed before any OT or exact solver ran.
  double PrunedBeforeSolvers() const;
  /// Every candidate is settled by exactly one tier (or the cache), so
  /// this always equals `candidates` — telemetry reconciliation relies
  /// on it.
  long SettledTotal() const {
    return pruned_index + pruned_invariant + passed_invariant +
           pruned_branch + decided_heuristic + decided_ot + decided_exact +
           cache_hits;
  }
};

/// Optional per-candidate probe filled by BoundedDistance: the bound
/// values and solver effort behind one verdict, plus wall time spent in
/// each tier entered. This is the raw material of a TraceEvent — the
/// QueryEngine passes a probe only when tracing is enabled, so the
/// cascade pays for clock reads only when someone is looking.
struct CascadeProbe {
  int lb = -1;              ///< best admissible lower bound established
  int ub = -1;              ///< best feasible upper bound (-1: none)
  long exact_expansions = 0;  ///< branch-and-bound nodes visited
  double tier_us[5] = {0, 0, 0, 0, 0};  ///< wall us per tier entered
};

/// Outcome of a bounded-distance evaluation.
struct CascadeVerdict {
  bool within = false;  ///< GED(q, g) <= tau
  int ged = -1;         ///< best distance known (-1 if dismissed by a LB)
  bool exact_distance = false;  ///< `ged` is provably the exact GED
  CascadeTier tier = CascadeTier::kInvariant;  ///< deciding tier
};

/// A tier-4 verification BoundedDistance handed back instead of running:
/// everything the exact solver needs (the size-ordered pair and the best
/// feasible seed bound) plus the context FinishDeferredExact needs to
/// complete the verdict. `pending` is set iff the pair actually reached
/// tier 4 — when an earlier tier settled it, the returned verdict is
/// final and the deferral must be ignored. The graph pointers alias the
/// caller's arguments and stay valid only as long as those do.
struct DeferredExact {
  bool pending = false;
  const Graph* g1 = nullptr;  ///< ordered: g1->NumNodes() <= g2->NumNodes()
  const Graph* g2 = nullptr;
  int tau = 0;
  int lb = -1;  ///< best admissible lower bound established by tiers 0-3
  int ub = -1;  ///< best feasible upper bound (the exact solver's seed)
};

/// Stateless (after construction) decision procedure over graph pairs;
/// safe to share across threads. The cascade is corpus-agnostic: callers
/// (the QueryEngine) hand it the stored graph and its precomputed
/// invariants from whichever StoreSnapshot they pinned. With
/// `parallel_exact_threads > 1` it owns a private exact-verify pool
/// (concurrent hard pairs serialize on it; every other tier stays fully
/// concurrent) — the cascade is then move-only, never copied.
class FilterCascade {
 public:
  explicit FilterCascade(const CascadeOptions& opt = {});

  /// Decides whether GED(query, g) <= tau, escalating only as far as
  /// needed. With `need_distance`, membership alone never settles a
  /// candidate: the cascade continues (through the exact tier if the
  /// bounds disagree) until `ged` is the exact distance — top-k ranking
  /// needs this; range queries do not. `qi` must be
  /// ComputeInvariants(query) and `gi` ComputeInvariants(g).
  /// With `defer` non-null, a pair the cheap tiers cannot settle is NOT
  /// verified here: the cascade fills `defer` (pending = true, escalation
  /// counters already charged) and returns a placeholder verdict the
  /// caller must discard. The caller then solves the collected pairs —
  /// typically via one ExactSearchBatch — and completes each verdict with
  /// FinishDeferredExact. Settled pairs leave `defer->pending` false and
  /// their verdict is final, exactly as without deferral.
  CascadeVerdict BoundedDistance(const Graph& query,
                                 const GraphInvariants& qi, const Graph& g,
                                 const GraphInvariants& gi, int tau,
                                 bool need_distance, CascadeStats* stats,
                                 CascadeProbe* probe = nullptr,
                                 DeferredExact* defer = nullptr) const;

  /// Completes a deferred tier-4 decision from the solver's result:
  /// charges the decided/incomplete counters and assembles the verdict
  /// with the same no-false-dismissals rule the inline tier applies. The
  /// combination BoundedDistance(defer) + ExactSearch + this is
  /// counter-for-counter and bit-for-bit identical to the non-deferred
  /// call.
  CascadeVerdict FinishDeferredExact(const DeferredExact& defer,
                                     const GedSearchResult& exact,
                                     CascadeStats* stats) const;

  const CascadeOptions& options() const { return opt_; }

  /// Tier-4 exact-search entry point, shared by BoundedDistance and the
  /// QueryEngine's top-k seed refinement: dispatches to the
  /// deterministic parallel branch-and-bound when parallel_exact_threads
  /// > 1 and to the sequential solver otherwise. Both prove the same
  /// distance when complete; the parallel path additionally accumulates
  /// its deterministic run counters into `stats` and mirrors them into
  /// the global otged_exact_parallel_* telemetry.
  GedSearchResult ExactSearch(const Graph& g1, const Graph& g2, long budget,
                              int initial_upper_bound,
                              CascadeStats* stats) const
      EXCLUDES(exact_mu_);

  /// One pair of an ExactSearchBatch: the size-ordered graphs plus the
  /// same per-pair knobs ExactSearch takes.
  struct ExactBatchRequest {
    const Graph* g1 = nullptr;  ///< g1->NumNodes() <= g2->NumNodes()
    const Graph* g2 = nullptr;
    long budget = 0;
    int initial_upper_bound = -1;
  };

  /// Multi-pair tier-4 entry point: solves every request with ONE
  /// parallel branch-and-bound batch (one pool acquisition, all pairs'
  /// subtrees sharing each round's ParallelFor — see
  /// ParallelBranchAndBoundGedBatch), or a sequential per-pair loop when
  /// parallel_exact_threads <= 1. results[i] is byte-identical to
  /// ExactSearch(*items[i].g1, *items[i].g2, ...) for any batch
  /// composition. `stats[i]` (same length as `items`, entries may
  /// repeat) receives pair i's parallel-run counters, so a batch spanning
  /// several queries attributes work to the right query; the one
  /// batch-level counter goes to stats[0] (see exact_parallel_batches).
  std::vector<GedSearchResult> ExactSearchBatch(
      const std::vector<ExactBatchRequest>& items,
      const std::vector<CascadeStats*>& stats) const EXCLUDES(exact_mu_);

 private:
  CascadeOptions opt_;
  /// Private pool for the parallel exact verifier (engine pools are busy
  /// with the candidate loop and non-reentrant). Null when sequential.
  std::unique_ptr<WorkStealingPool> exact_pool_;
  mutable Mutex exact_mu_;  ///< one parallel exact run at a time
};

}  // namespace otged

#endif  // OTGED_SEARCH_FILTER_CASCADE_HPP_
