/// \file bound_cache.hpp
/// \brief Sharded LRU cache of verified (query, stored-graph) distances.
///
/// The cache only stores distances the cascade *proved exact* — an
/// admissible lower bound meeting a feasible upper bound, or a completed
/// branch-and-bound run. Exact GED is a pure function of the graph pair,
/// so a hit is correct for any tau and any need_distance mode, and cache
/// contents never depend on the order or thresholds of past queries;
/// warm-cache serving therefore stays deterministic. Keys pair the query
/// graph's content fingerprint with the stored graph's stable id; ids are
/// never reused, so a stale entry can never alias a different graph —
/// EraseGraph invalidation is memory hygiene (and protection against id
/// reuse across a GraphStore::Restore), not a correctness requirement for
/// plain Erase.
///
/// Sharded by key hash: lookups and inserts from the work-stealing pool
/// contend only within a shard, and each shard runs its own LRU.
#ifndef OTGED_SEARCH_BOUND_CACHE_HPP_
#define OTGED_SEARCH_BOUND_CACHE_HPP_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/thread_annotations.hpp"

namespace otged {

class BoundCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards.
  explicit BoundCache(size_t capacity = 1 << 16);

  /// Exact GED of (query with this fingerprint, stored graph id), if
  /// known. A hit refreshes the entry's LRU position.
  std::optional<int> Lookup(uint64_t query_fp, int graph_id);

  /// Records a proven-exact distance; refreshes on re-insert. Evicts the
  /// shard's least-recently-used entry when the shard is full.
  void Insert(uint64_t query_fp, int graph_id, int exact_ged);

  /// Drops every entry for `graph_id` (all shards).
  void EraseGraph(int graph_id);

  /// Drops every entry for any id in `graph_ids` in one sweep per shard
  /// — O(cache size) total for the whole batch, not per id, which is
  /// what the serving path wants when draining an erase-log backlog.
  void EraseGraphs(const std::vector<int>& graph_ids);

  void Clear();
  size_t Size() const;

 private:
  struct Key {
    uint64_t fp;
    int id;
    bool operator==(const Key& o) const { return fp == o.fp && id == o.id; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.fp ^ (static_cast<uint64_t>(k.id) * 0x9e3779b97f4a7c15ull);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };
  struct Shard {
    mutable Mutex mu;
    /// front = most recently used
    std::list<std::pair<Key, int>> lru GUARDED_BY(mu);
    std::unordered_map<Key, std::list<std::pair<Key, int>>::iterator, KeyHash>
        map GUARDED_BY(mu);
  };

  Shard& ShardFor(const Key& k) {
    return *shards_[KeyHash{}(k) % shards_.size()];
  }

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace otged

#endif  // OTGED_SEARCH_BOUND_CACHE_HPP_
