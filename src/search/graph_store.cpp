#include "search/graph_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "graph/wl_hash.hpp"

namespace otged {

GraphInvariants ComputeInvariants(const Graph& g) {
  GraphInvariants inv;
  inv.num_nodes = g.NumNodes();
  inv.num_edges = g.NumEdges();
  inv.wl_hash = WlHash(g);
  inv.sorted_labels.reserve(g.NumNodes());
  inv.sorted_degrees.reserve(g.NumNodes());
  for (int v = 0; v < g.NumNodes(); ++v) {
    inv.sorted_labels.push_back(g.label(v));
    inv.sorted_degrees.push_back(g.Degree(v));
  }
  std::sort(inv.sorted_labels.begin(), inv.sorted_labels.end());
  std::sort(inv.sorted_degrees.begin(), inv.sorted_degrees.end());
  return inv;
}

namespace {

/// Multiset symmetric-difference accounting of Eq. (22) over two sorted
/// label vectors: a relabel fixes one surplus and one deficit label, an
/// insertion fixes one, so node ops >= max(surplus, deficit).
int LabelMultisetNodeBound(const std::vector<Label>& a,
                           const std::vector<Label>& b) {
  size_t i = 0, j = 0;
  int surplus = 0, deficit = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i, ++j;
    } else if (a[i] < b[j]) {
      ++surplus, ++i;
    } else {
      ++deficit, ++j;
    }
  }
  surplus += static_cast<int>(a.size() - i);
  deficit += static_cast<int>(b.size() - j);
  return std::max(surplus, deficit);
}

/// L1 distance between the two ascending degree sequences, zero-padded to
/// equal length. Ascending index-by-index pairing minimizes the L1 sum
/// over all pairings (rearrangement inequality), and each edge edit
/// changes exactly two degrees by one, so edge edits >= ceil(L1 / 2).
int DegreeSequenceEdgeBound(const std::vector<int>& a,
                            const std::vector<int>& b) {
  const size_t n = std::max(a.size(), b.size());
  long l1 = 0;
  for (size_t i = 0; i < n; ++i) {
    // Zero-pad at the *front* of the shorter (ascending) sequence.
    const size_t pad_a = n - a.size(), pad_b = n - b.size();
    int da = i < pad_a ? 0 : a[i - pad_a];
    int db = i < pad_b ? 0 : b[i - pad_b];
    l1 += std::abs(da - db);
  }
  return static_cast<int>((l1 + 1) / 2);
}

}  // namespace

int InvariantLowerBound(const GraphInvariants& a, const GraphInvariants& b) {
  int label_bound = LabelMultisetNodeBound(a.sorted_labels, b.sorted_labels) +
                    std::abs(a.num_edges - b.num_edges);
  int degree_bound = DegreeSequenceEdgeBound(a.sorted_degrees,
                                             b.sorted_degrees);
  return std::max(label_bound, degree_bound);
}

int GraphStore::Add(Graph g) {
  invariants_.push_back(ComputeInvariants(g));
  graphs_.push_back(std::move(g));
  return Size() - 1;
}

void GraphStore::AddAll(const std::vector<Graph>& graphs) {
  for (const Graph& g : graphs) Add(g);
}

}  // namespace otged
