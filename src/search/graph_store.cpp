#include "search/graph_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "core/simd.hpp"
#include "graph/wl_hash.hpp"
#include "telemetry/metrics.hpp"

#define OTGED_STORE_GAUGES(snap)                                          \
  do {                                                                    \
    OTGED_GAUGE_SET("otged_store_epoch", "epoch of the published snapshot", \
                    static_cast<long>((snap)->epoch_));                   \
    OTGED_GAUGE_SET("otged_store_size", "graphs in the published snapshot", \
                    (snap)->Size());                                      \
  } while (0)

namespace otged {

GraphInvariants ComputeInvariants(const Graph& g) {
  GraphInvariants inv;
  inv.num_nodes = g.NumNodes();
  inv.num_edges = g.NumEdges();
  inv.wl_hash = WlHash(g);
  inv.sorted_labels.reserve(g.NumNodes());
  inv.sorted_degrees.reserve(g.NumNodes());
  for (int v = 0; v < g.NumNodes(); ++v) {
    inv.sorted_labels.push_back(g.label(v));
    inv.sorted_degrees.push_back(g.Degree(v));
  }
  std::sort(inv.sorted_labels.begin(), inv.sorted_labels.end());
  std::sort(inv.sorted_degrees.begin(), inv.sorted_degrees.end());
  return inv;
}

namespace {

/// Multiset symmetric-difference accounting of Eq. (22) over two sorted
/// label vectors: a relabel fixes one surplus and one deficit label, an
/// insertion fixes one, so node ops >= max(surplus, deficit).
int LabelMultisetNodeBound(const std::vector<Label>& a,
                           const std::vector<Label>& b) {
  size_t i = 0, j = 0;
  int surplus = 0, deficit = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i, ++j;
    } else if (a[i] < b[j]) {
      ++surplus, ++i;
    } else {
      ++deficit, ++j;
    }
  }
  surplus += static_cast<int>(a.size() - i);
  deficit += static_cast<int>(b.size() - j);
  return std::max(surplus, deficit);
}

}  // namespace

namespace detail {

/// L1 distance between the two ascending degree sequences, zero-padded to
/// equal length. Ascending index-by-index pairing minimizes the L1 sum
/// over all pairings (rearrangement inequality), and each edge edit
/// changes exactly two degrees by one, so edge edits >= ceil(L1 / 2).
int DegreeSequenceEdgeBoundScalar(const std::vector<int>& a,
                                  const std::vector<int>& b) {
  const size_t n = std::max(a.size(), b.size());
  long l1 = 0;
  for (size_t i = 0; i < n; ++i) {
    // Zero-pad at the *front* of the shorter (ascending) sequence.
    const size_t pad_a = n - a.size(), pad_b = n - b.size();
    int da = i < pad_a ? 0 : a[i - pad_a];
    int db = i < pad_b ? 0 : b[i - pad_b];
    l1 += std::abs(da - db);
  }
  return static_cast<int>((l1 + 1) / 2);
}

// Only the shorter sequence is padded (at the front), so the padding
// region reduces to a plain prefix sum of the longer one and the rest is
// an aligned integer |a - b| reduction — exact, hence identical to the
// scalar twin.
// otged-lint: hot-path
int DegreeSequenceEdgeBoundSimd(const std::vector<int>& a,
                                const std::vector<int>& b) {
  const std::vector<int>& s = a.size() <= b.size() ? a : b;
  const std::vector<int>& l = a.size() <= b.size() ? b : a;
  const size_t pad = l.size() - s.size();
  long l1 = 0;
  for (size_t i = 0; i < pad; ++i) l1 += std::abs(l[i]);
  l1 += simd::L1DiffI32(s.data(), l.data() + pad,
                        static_cast<int>(s.size()));
  return static_cast<int>((l1 + 1) / 2);
}

}  // namespace detail

int InvariantLowerBound(const GraphInvariants& a, const GraphInvariants& b) {
  int label_bound = LabelMultisetNodeBound(a.sorted_labels, b.sorted_labels) +
                    std::abs(a.num_edges - b.num_edges);
  int degree_bound =
      simd::Enabled()
          ? detail::DegreeSequenceEdgeBoundSimd(a.sorted_degrees,
                                                b.sorted_degrees)
          : detail::DegreeSequenceEdgeBoundScalar(a.sorted_degrees,
                                                  b.sorted_degrees);
  return std::max(label_bound, degree_bound);
}

int StoreSnapshot::SlotOf(int id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const std::shared_ptr<const StoreEntry>& e, int v) {
        return e->id < v;
      });
  if (it == entries_.end() || (*it)->id != id) return -1;
  return static_cast<int>(it - entries_.begin());
}

GraphStore::GraphStore() : snap_(std::make_shared<StoreSnapshot>()) {}

GraphStore::GraphStore(GraphStore&& o) noexcept {
  MutexLock lock(o.mu_);
  snap_ = std::move(o.snap_);
  next_id_ = o.next_id_;
  erase_log_ = std::move(o.erase_log_);
  o.snap_ = std::make_shared<StoreSnapshot>();
  o.next_id_ = 0;
}

GraphStore& GraphStore::operator=(GraphStore&& o) noexcept {
  if (this == &o) return *this;
  // Lock both stores in address order — a deterministic total order, so
  // two cross-assignments can never deadlock.
  Mutex* first = this < &o ? &mu_ : &o.mu_;
  Mutex* second = this < &o ? &o.mu_ : &mu_;
  MutexLock lock_first(*first);
  MutexLock lock_second(*second);
  snap_ = std::move(o.snap_);
  next_id_ = o.next_id_;
  erase_log_ = std::move(o.erase_log_);
  o.snap_ = std::make_shared<StoreSnapshot>();
  o.next_id_ = 0;
  return *this;
}

int GraphStore::Insert(Graph g) {
  auto entry = std::make_shared<StoreEntry>();
  entry->invariants = ComputeInvariants(g);
  entry->graph = std::move(g);
  MutexLock lock(mu_);
  entry->id = next_id_++;
  auto next = std::make_shared<StoreSnapshot>();
  next->epoch_ = snap_->epoch_ + 1;
  next->entries_ = snap_->entries_;
  next->entries_.push_back(std::move(entry));
  const int id = next->entries_.back()->id;
  snap_ = std::move(next);
  OTGED_COUNT("otged_store_inserts_total", "graphs ingested into the store");
  OTGED_STORE_GAUGES(snap_);
  return id;
}

void GraphStore::AddAll(const std::vector<Graph>& graphs) {
  if (graphs.empty()) return;
  // Invariants are computed outside the lock; one snapshot publication
  // covers the whole batch, keeping bulk ingest O(N) instead of O(N^2).
  std::vector<std::shared_ptr<StoreEntry>> pending;
  pending.reserve(graphs.size());
  for (const Graph& g : graphs) {
    auto entry = std::make_shared<StoreEntry>();
    entry->invariants = ComputeInvariants(g);
    entry->graph = g;
    pending.push_back(std::move(entry));
  }
  MutexLock lock(mu_);
  auto next = std::make_shared<StoreSnapshot>();
  next->epoch_ = snap_->epoch_ + 1;
  next->entries_ = snap_->entries_;
  next->entries_.reserve(next->entries_.size() + pending.size());
  for (auto& entry : pending) {
    entry->id = next_id_++;
    next->entries_.push_back(std::move(entry));
  }
  snap_ = std::move(next);
  OTGED_COUNT_N("otged_store_inserts_total",
                "graphs ingested into the store",
                static_cast<long>(pending.size()));
  OTGED_STORE_GAUGES(snap_);
}

bool GraphStore::Erase(int id) {
  MutexLock lock(mu_);
  const int slot = snap_->SlotOf(id);
  if (slot < 0) return false;
  auto next = std::make_shared<StoreSnapshot>();
  next->epoch_ = snap_->epoch_ + 1;
  next->entries_ = snap_->entries_;
  next->entries_.erase(next->entries_.begin() + slot);
  snap_ = std::move(next);
  erase_log_.push_back(id);
  OTGED_COUNT("otged_store_erases_total", "graphs erased from the store");
  OTGED_STORE_GAUGES(snap_);
  return true;
}

int GraphStore::Size() const {
  MutexLock lock(mu_);
  return snap_->Size();
}

uint64_t GraphStore::Epoch() const {
  MutexLock lock(mu_);
  return snap_->epoch_;
}

int GraphStore::NextId() const {
  MutexLock lock(mu_);
  return next_id_;
}

bool GraphStore::Contains(int id) const {
  MutexLock lock(mu_);
  return snap_->SlotOf(id) >= 0;
}

std::shared_ptr<const StoreSnapshot> GraphStore::Snapshot() const {
  MutexLock lock(mu_);
  OTGED_COUNT("otged_store_snapshot_pins_total",
              "snapshots pinned by readers");
  return snap_;
}

std::shared_ptr<const StoreSnapshot> GraphStore::SnapshotAndErased(
    size_t* cursor, std::vector<int>* erased) const {
  OTGED_DCHECK(cursor != nullptr && erased != nullptr);
  MutexLock lock(mu_);
  erased->clear();
  if (*cursor < erase_log_.size()) {
    erased->assign(erase_log_.begin() + static_cast<long>(*cursor),
                   erase_log_.end());
    *cursor = erase_log_.size();
  }
  OTGED_COUNT("otged_store_snapshot_pins_total",
              "snapshots pinned by readers");
  return snap_;
}

const Graph& GraphStore::graph(int id) const {
  MutexLock lock(mu_);
  const int slot = snap_->SlotOf(id);
  OTGED_CHECK(slot >= 0);
  return snap_->graph(slot);
}

const GraphInvariants& GraphStore::invariants(int id) const {
  MutexLock lock(mu_);
  const int slot = snap_->SlotOf(id);
  OTGED_CHECK(slot >= 0);
  return snap_->invariants(slot);
}

bool GraphStore::Restore(std::vector<std::pair<int, Graph>> entries,
                         int next_id) {
  int max_id = -1;
  for (const auto& [id, g] : entries) {
    if (id <= max_id) return false;  // ids must be strictly increasing
    max_id = id;
  }
  auto next = std::make_shared<StoreSnapshot>();
  next->entries_.reserve(entries.size());
  for (auto& [id, g] : entries) {
    auto entry = std::make_shared<StoreEntry>();
    entry->id = id;
    entry->invariants = ComputeInvariants(g);
    entry->graph = std::move(g);
    next->entries_.push_back(std::move(entry));
  }
  MutexLock lock(mu_);
  // Retire every id that was present: after the swap the same id may name
  // a different graph, so downstream bound caches must drop it.
  for (const auto& e : snap_->entries_) erase_log_.push_back(e->id);
  next->epoch_ = snap_->epoch_ + 1;
  next_id_ = std::max({next_id_, next_id, max_id + 1});
  snap_ = std::move(next);
  OTGED_COUNT("otged_store_restores_total",
              "whole-corpus replacements (persistence loads)");
  OTGED_STORE_GAUGES(snap_);
  return true;
}

std::vector<int> GraphStore::ErasedSince(size_t* cursor) const {
  OTGED_DCHECK(cursor != nullptr);
  MutexLock lock(mu_);
  std::vector<int> out;
  if (*cursor < erase_log_.size()) {
    out.assign(erase_log_.begin() + static_cast<long>(*cursor),
               erase_log_.end());
    *cursor = erase_log_.size();
  }
  return out;
}

}  // namespace otged
