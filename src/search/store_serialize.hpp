/// \file store_serialize.hpp
/// \brief Versioned binary persistence of a GraphStore, following the
/// nn/serialize conventions: magic + fixed-width fields, multi-byte
/// scalars in host byte order (the graph section from graph_io is
/// little-endian), so files are not portable to an opposite-endian host
/// — there they fail cleanly on the magic/checksum validation.
///
/// File layout (version 2; version-1 files, which end after the entry
/// list, still load):
///   uint64  magic "OTGSTOR1"
///   uint32  format version
///   uint32  reserved (zero)
///   payload:
///     int64   next_id          (id counter, so reloads never reuse ids)
///     uint64  entry count
///     entry*: int64 id
///             graph          (canonical binary encoding, graph_io)
///             invariants     (n, m int32; wl_hash uint64;
///                             n int32 labels; n int32 degrees)
///     uint8   has_index      (v2+: 1 iff an index section follows)
///     index:  int32  wl_prefix_bits
///             uint64 node count (== entry count)
///             node*: int64 vantage id, int32 r_in_max, int32 r_out_min,
///                    int32 inner        (VP-tree preorder layout)
///             uint64 structural digest of the full rebuilt view
///   uint64  FNV-1a checksum of the payload bytes
///
/// Load validates magic, version and checksum, then *recomputes* every
/// graph's invariants and rejects the file on any mismatch with the
/// stored ones — so a successfully loaded corpus is guaranteed
/// bit-identical to a rebuild from the same graphs, and silent
/// corruption of the graphs cannot slip through.
///
/// The index section persists only the VP-tree (partitions and postings
/// are derived data, rebuilt from the entries on adoption); the adopted
/// view's StructuralDigest must match the digest stored in the same
/// file, which — because saving always compacts the view first — the
/// writer computed from a from-scratch-equivalent view. This check is
/// file-internal consistency, not a re-derivation: the loader never
/// rebuilds the tree to compare, so accidental corruption is caught (by
/// it and the FNV checksum) but a consistent file from a buggy writer
/// would be adopted. On any index inconsistency the section is dropped
/// and the index rebuilds from the (fully verified) graphs instead.
#ifndef OTGED_SEARCH_STORE_SERIALIZE_HPP_
#define OTGED_SEARCH_STORE_SERIALIZE_HPP_

#include <cstdint>
#include <string>

#include "search/graph_store.hpp"
#include "search/index/graph_index.hpp"

namespace otged {

inline constexpr uint32_t kStoreFormatVersion = 2;

/// Serializes the store's current snapshot to `path`. When `index` is
/// non-null its compacted view for that snapshot is saved alongside (a
/// v2 index section). Returns false on I/O failure (with `error`
/// describing it).
bool SaveGraphStore(const GraphStore& store, const std::string& path,
                    std::string* error = nullptr,
                    GraphIndex* index = nullptr);

/// Replaces `store`'s contents with the file's. On any failure (I/O, bad
/// magic/version, checksum mismatch, malformed entries, invariant
/// mismatch, unparseable index section) returns false and leaves the
/// store untouched. When `index` is non-null and the file carries an
/// index section with matching configuration, the persisted VP-tree is
/// adopted into `index` after validating its shape and digest against
/// the restored snapshot; a config mismatch or a failed validation
/// skips adoption without failing the load (the store is already fully
/// verified, and the next query rebuilds the index from it).
bool LoadGraphStore(GraphStore* store, const std::string& path,
                    std::string* error = nullptr,
                    GraphIndex* index = nullptr);

}  // namespace otged

#endif  // OTGED_SEARCH_STORE_SERIALIZE_HPP_
