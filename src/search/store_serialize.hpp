/// \file store_serialize.hpp
/// \brief Versioned binary persistence of a GraphStore, following the
/// nn/serialize conventions: magic + fixed-width fields, multi-byte
/// scalars in host byte order (the graph section from graph_io is
/// little-endian), so files are not portable to an opposite-endian host
/// — there they fail cleanly on the magic/checksum validation.
///
/// File layout (version 1):
///   uint64  magic "OTGSTOR1"
///   uint32  format version
///   uint32  reserved (zero)
///   payload:
///     int64   next_id          (id counter, so reloads never reuse ids)
///     uint64  entry count
///     entry*: int64 id
///             graph          (canonical binary encoding, graph_io)
///             invariants     (n, m int32; wl_hash uint64;
///                             n int32 labels; n int32 degrees)
///   uint64  FNV-1a checksum of the payload bytes
///
/// Load validates magic, version and checksum, then *recomputes* every
/// graph's invariants and rejects the file on any mismatch with the
/// stored ones — so a successful load is guaranteed bit-identical to a
/// rebuild from the same graphs, and silent corruption of either the
/// graphs or the index cannot slip through.
#ifndef OTGED_SEARCH_STORE_SERIALIZE_HPP_
#define OTGED_SEARCH_STORE_SERIALIZE_HPP_

#include <cstdint>
#include <string>

#include "search/graph_store.hpp"

namespace otged {

inline constexpr uint32_t kStoreFormatVersion = 1;

/// Serializes the store's current snapshot to `path`. Returns false on
/// I/O failure (with `error` describing it).
bool SaveGraphStore(const GraphStore& store, const std::string& path,
                    std::string* error = nullptr);

/// Replaces `store`'s contents with the file's. On any failure (I/O, bad
/// magic/version, checksum mismatch, malformed entries, invariant
/// mismatch) returns false and leaves the store untouched.
bool LoadGraphStore(GraphStore* store, const std::string& path,
                    std::string* error = nullptr);

}  // namespace otged

#endif  // OTGED_SEARCH_STORE_SERIALIZE_HPP_
