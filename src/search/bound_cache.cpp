#include "search/bound_cache.hpp"

#include <algorithm>
#include <unordered_set>

#include "telemetry/metrics.hpp"

namespace otged {

namespace {
constexpr size_t kNumShards = 16;

constexpr const char* kHitsName = "otged_bound_cache_hits_total";
constexpr const char* kMissesName = "otged_bound_cache_misses_total";
}

BoundCache::BoundCache(size_t capacity)
    : shard_capacity_(std::max<size_t>(1, capacity / kNumShards)) {
  shards_.reserve(kNumShards);
  for (size_t s = 0; s < kNumShards; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

std::optional<int> BoundCache::Lookup(uint64_t query_fp, int graph_id) {
  const Key key{query_fp, graph_id};
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    OTGED_COUNT(kMissesName, "bound-cache lookups that found no entry");
    return std::nullopt;
  }
  OTGED_COUNT(kHitsName, "bound-cache lookups answered from the cache");
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void BoundCache::Insert(uint64_t query_fp, int graph_id, int exact_ged) {
  const Key key{query_fp, graph_id};
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = exact_ged;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.map.size() >= shard_capacity_) {
    OTGED_COUNT("otged_bound_cache_evictions_total",
                "entries evicted by a shard's LRU at capacity");
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
  OTGED_COUNT("otged_bound_cache_inserts_total",
              "proven-exact distances recorded in the bound cache");
  shard.lru.emplace_front(key, exact_ged);
  shard.map.emplace(key, shard.lru.begin());
}

void BoundCache::EraseGraph(int graph_id) {
  EraseGraphs({graph_id});
}

void BoundCache::EraseGraphs(const std::vector<int>& graph_ids) {
  if (graph_ids.empty()) return;
  const std::unordered_set<int> retired(graph_ids.begin(), graph_ids.end());
  long invalidated = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (retired.count(it->first.id) != 0) {
        shard->map.erase(it->first);
        it = shard->lru.erase(it);
        ++invalidated;
      } else {
        ++it;
      }
    }
  }
  if (invalidated > 0)
    OTGED_COUNT_N("otged_bound_cache_invalidations_total",
                  "entries dropped because their graph id was retired",
                  invalidated);
}

void BoundCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
  }
}

size_t BoundCache::Size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

}  // namespace otged
