/// \file graph_store.hpp
/// \brief Indexed graph corpus for similarity search: owns the graphs of a
/// database and precomputes, per graph, the cheap isomorphism invariants
/// the filter cascade consumes (WL hash, sorted node-label multiset,
/// sorted degree sequence, node/edge counts). Invariants are computed once
/// at ingest, so a filter evaluation against a stored graph touches no
/// adjacency structure until the bipartite tier.
#ifndef OTGED_SEARCH_GRAPH_STORE_HPP_
#define OTGED_SEARCH_GRAPH_STORE_HPP_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/dataset.hpp"
#include "graph/graph.hpp"

namespace otged {

/// Per-graph invariants. Equal invariants are necessary (not sufficient)
/// for GED == 0; differences yield admissible GED lower bounds.
struct GraphInvariants {
  int num_nodes = 0;
  int num_edges = 0;
  uint64_t wl_hash = 0;                ///< 3-round WL color-refinement hash
  std::vector<Label> sorted_labels;    ///< node-label multiset, ascending
  std::vector<int> sorted_degrees;     ///< degree sequence, ascending
};

/// Computes the invariants of one graph (O(n log n + m)).
GraphInvariants ComputeInvariants(const Graph& g);

/// Orders a pair by node count — every solver in the repo requires
/// n1 <= n2. Returns {smaller, larger}; ties keep argument order.
inline std::pair<const Graph*, const Graph*> OrderBySize(const Graph& a,
                                                         const Graph& b) {
  if (a.NumNodes() <= b.NumNodes()) return {&a, &b};
  return {&b, &a};
}

/// Admissible GED lower bound from invariants alone, O(n):
/// max(label-set bound of Eq. 22, degree-sequence edge bound). The
/// degree bound pairs the two ascending degree sequences (zero-padded)
/// index-by-index; every edge edit moves two degrees by one, so
/// ceil(L1/2) never exceeds the number of edge edits.
int InvariantLowerBound(const GraphInvariants& a, const GraphInvariants& b);

/// An immutable-after-ingest graph database. Ids are dense [0, Size()).
class GraphStore {
 public:
  GraphStore() = default;

  /// Ingests one graph; returns its id.
  int Add(Graph g);
  /// Ingests every graph of a dataset, in order.
  void AddAll(const std::vector<Graph>& graphs);

  int Size() const { return static_cast<int>(graphs_.size()); }
  const Graph& graph(int id) const {
    OTGED_DCHECK(id >= 0 && id < Size());
    return graphs_[id];
  }
  const GraphInvariants& invariants(int id) const {
    OTGED_DCHECK(id >= 0 && id < Size());
    return invariants_[id];
  }

 private:
  std::vector<Graph> graphs_;
  std::vector<GraphInvariants> invariants_;
};

}  // namespace otged

#endif  // OTGED_SEARCH_GRAPH_STORE_HPP_
