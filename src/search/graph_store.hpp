/// \file graph_store.hpp
/// \brief Dynamic indexed graph corpus for similarity search: owns the
/// graphs of a database and precomputes, per graph, the cheap isomorphism
/// invariants the filter cascade consumes (WL hash, sorted node-label
/// multiset, sorted degree sequence, node/edge counts). Invariants are
/// computed once at ingest, so a filter evaluation against a stored graph
/// touches no adjacency structure until the bipartite tier.
///
/// The store is mutable while serving: Insert/Erase build a new immutable
/// StoreSnapshot (copy-on-write over shared per-graph entries, so a
/// mutation copies O(size) pointers and zero graphs) and publish it under
/// a mutex. Queries pin one snapshot for their whole lifetime, so an
/// in-flight query always sees a consistent corpus — the one tagged with
/// the snapshot's epoch — no matter how many mutations land meanwhile.
/// Graph ids are stable and never reused: Insert assigns the next id from
/// a monotone counter, and Erase retires the id forever.
#ifndef OTGED_SEARCH_GRAPH_STORE_HPP_
#define OTGED_SEARCH_GRAPH_STORE_HPP_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/thread_annotations.hpp"
#include "graph/dataset.hpp"
#include "graph/graph.hpp"

namespace otged {

/// Per-graph invariants. Equal invariants are necessary (not sufficient)
/// for GED == 0; differences yield admissible GED lower bounds.
struct GraphInvariants {
  int num_nodes = 0;
  int num_edges = 0;
  uint64_t wl_hash = 0;                ///< 3-round WL color-refinement hash
  std::vector<Label> sorted_labels;    ///< node-label multiset, ascending
  std::vector<int> sorted_degrees;     ///< degree sequence, ascending

  bool operator==(const GraphInvariants& o) const {
    return num_nodes == o.num_nodes && num_edges == o.num_edges &&
           wl_hash == o.wl_hash && sorted_labels == o.sorted_labels &&
           sorted_degrees == o.sorted_degrees;
  }
};

/// Computes the invariants of one graph (O(n log n + m)).
GraphInvariants ComputeInvariants(const Graph& g);

/// Orders a pair by node count — every solver in the repo requires
/// n1 <= n2. Returns {smaller, larger}; ties keep argument order.
inline std::pair<const Graph*, const Graph*> OrderBySize(const Graph& a,
                                                         const Graph& b) {
  if (a.NumNodes() <= b.NumNodes()) return {&a, &b};
  return {&b, &a};
}

/// Admissible GED lower bound from invariants alone, O(n):
/// max(label-set bound of Eq. 22, degree-sequence edge bound). The
/// degree bound pairs the two ascending degree sequences (zero-padded)
/// index-by-index; every edge edit moves two degrees by one, so
/// ceil(L1/2) never exceeds the number of edge edits.
int InvariantLowerBound(const GraphInvariants& a, const GraphInvariants& b);

namespace detail {

/// Scalar / SIMD twins of the degree-sequence L1 term inside
/// InvariantLowerBound (dispatch on simd::Enabled()). Integer L1 is
/// exact in both, so the bounds are identical; the SIMD twin handles the
/// front zero-padding scalar and runs the aligned overlap through a
/// vector |a - b| reduction.
int DegreeSequenceEdgeBoundScalar(const std::vector<int>& a,
                                  const std::vector<int>& b);
int DegreeSequenceEdgeBoundSimd(const std::vector<int>& a,
                                const std::vector<int>& b);

}  // namespace detail

/// One stored graph with its precomputed invariants; shared between
/// snapshots, immutable after ingest.
struct StoreEntry {
  int id = -1;
  Graph graph;
  GraphInvariants invariants;
};

/// An immutable view of the corpus at one epoch. Slots are dense
/// [0, Size()) and ascend by stable id (mutations preserve insertion
/// order, and ids are assigned monotonically). Safe to read from any
/// number of threads; stays valid for as long as the shared_ptr is held,
/// regardless of later store mutations.
class StoreSnapshot {
 public:
  int Size() const { return static_cast<int>(entries_.size()); }
  uint64_t epoch() const { return epoch_; }

  int id(int slot) const { return entry(slot).id; }
  const Graph& graph(int slot) const { return entry(slot).graph; }
  const GraphInvariants& invariants(int slot) const {
    return entry(slot).invariants;
  }

  /// Slot of a stable id (binary search over the ascending ids), or -1.
  int SlotOf(int id) const;

  /// The shared entries themselves, ascending by id. Index layers hold
  /// these pointers so their structures stay valid (and cheap to diff by
  /// pointer identity) across later store mutations.
  const std::vector<std::shared_ptr<const StoreEntry>>& entry_ptrs() const {
    return entries_;
  }

 private:
  friend class GraphStore;

  const StoreEntry& entry(int slot) const {
    OTGED_DCHECK(slot >= 0 && slot < Size());
    return *entries_[slot];
  }

  uint64_t epoch_ = 0;
  std::vector<std::shared_ptr<const StoreEntry>> entries_;
};

/// A dynamic graph database serving concurrent readers. Mutations
/// (Insert/Erase/Restore) are serialized internally and publish a fresh
/// snapshot; readers either pin a Snapshot() (concurrent-safe) or use the
/// id-based accessors below (single-threaded convenience — the returned
/// references are only guaranteed until the next mutation).
class GraphStore {
 public:
  GraphStore();
  // Move transfers another store's state: the analysis cannot pair this
  // object's members with the source's mutex, so the bodies are exempt
  // (exclusivity is guaranteed by move semantics plus o.mu_).
  GraphStore(GraphStore&& o) noexcept NO_THREAD_SAFETY_ANALYSIS;
  GraphStore& operator=(GraphStore&& o) noexcept NO_THREAD_SAFETY_ANALYSIS;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Ingests one graph; returns its stable id (never reused).
  int Insert(Graph g) EXCLUDES(mu_);
  /// Back-compat alias for Insert.
  int Add(Graph g) { return Insert(std::move(g)); }
  /// Ingests every graph of a dataset, in order, as ONE mutation: ids
  /// are assigned consecutively but a single snapshot (one epoch bump)
  /// is published, so bulk ingest copies the entry vector once instead
  /// of once per graph.
  void AddAll(const std::vector<Graph>& graphs) EXCLUDES(mu_);
  /// Removes the graph with the given id; returns false if absent. The id
  /// is retired permanently and logged for bound-cache invalidation.
  bool Erase(int id) EXCLUDES(mu_);

  /// Number of graphs in the current snapshot.
  int Size() const EXCLUDES(mu_);
  /// Epoch of the current snapshot; bumped by every mutation.
  uint64_t Epoch() const EXCLUDES(mu_);
  /// Smallest id a future Insert can return; ids below it are spoken for.
  int NextId() const EXCLUDES(mu_);
  bool Contains(int id) const EXCLUDES(mu_);

  /// Pins the current snapshot. O(1); the snapshot (and every graph in
  /// it) stays alive and immutable while the pointer is held.
  std::shared_ptr<const StoreSnapshot> Snapshot() const EXCLUDES(mu_);

  /// Atomically pins the current snapshot AND drains the erase log into
  /// `erased` under one lock acquisition, so the drained ids are exactly
  /// those retired up to the pinned snapshot's epoch. Cache consumers
  /// need this atomicity: pinning and draining in two steps would let a
  /// Restore land in between, whose retired ids the caller would consume
  /// now yet whose rebinding it cannot see — entries it inserts against
  /// the (older) pinned snapshot would then never be invalidated.
  std::shared_ptr<const StoreSnapshot> SnapshotAndErased(
      size_t* cursor, std::vector<int>* erased) const EXCLUDES(mu_);

  /// Id-based accessors against the current snapshot. The id must be
  /// present (OTGED_CHECK). References are invalidated by mutations —
  /// concurrent readers must hold a Snapshot() instead.
  const Graph& graph(int id) const EXCLUDES(mu_);
  const GraphInvariants& invariants(int id) const EXCLUDES(mu_);

  /// Replaces the whole corpus (persistence load). `entries` must be
  /// strictly increasing by id; invariants are recomputed from scratch.
  /// Every previously present id is logged as erased so caches keyed on
  /// this store drop entries whose id might now name a different graph.
  /// The id counter only moves forward: max(current, next_id, max id + 1).
  /// Returns false (store unchanged) when the id sequence is invalid.
  bool Restore(std::vector<std::pair<int, Graph>> entries, int next_id)
      EXCLUDES(mu_);

  /// Appends the ids erased since *cursor to the result and advances the
  /// cursor; starting from a zero cursor replays the full erase history.
  /// The log is monotone, so independent consumers each keep their own
  /// cursor. Ids are never reused, which is why consumers may invalidate
  /// lazily (a stale cache entry can never alias a new graph). The log
  /// grows for the store's lifetime — one int per Erase, plus the prior
  /// corpus on Restore — a deliberate trade-off for cursor independence;
  /// under sustained churn measured in hundreds of millions of erases,
  /// plan to recycle the store (e.g. via save/load into a fresh one).
  std::vector<int> ErasedSince(size_t* cursor) const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::shared_ptr<const StoreSnapshot> snap_ GUARDED_BY(mu_);
  int next_id_ GUARDED_BY(mu_) = 0;
  std::vector<int> erase_log_ GUARDED_BY(mu_);
};

}  // namespace otged

#endif  // OTGED_SEARCH_GRAPH_STORE_HPP_
