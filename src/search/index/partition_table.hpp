/// \file partition_table.hpp
/// \brief Signature partitions with inverted label postings — levels 1
/// and 2 of the candidate-generation index.
///
/// Graphs are partitioned by their exact (num_nodes, num_edges)
/// signature. A range query with threshold tau screens partitions
/// wholesale: GED changes num_nodes by at most one per node edit and
/// num_edges by at most one per edge edit, so a partition with
/// max(|dn|, |dm|) > tau cannot contain a hit; a descending-degree
/// min/max envelope sharpens the screen (the envelope L1 gap lower
/// bounds every member's degree-sequence bound). Only surviving
/// partitions are opened.
///
/// Inside an open partition, the inverted index maps each node label to
/// the members containing it. The label-count lower bound
///   max(n_q, n_g) - common + |m_q - m_g|   (common = sum of min counts)
/// is admissible, so a member passes only if
///   common >= max(n_q, n_part) + |dm| - tau.
/// When that threshold is positive, only members touched by the query's
/// posting lists can reach it — untouched members (and with them entire
/// posting lists for labels the query lacks) are dismissed without being
/// visited. At tau == 0 a WL-hash prefix table replaces the walk: WL
/// equality is necessary for GED == 0, so only the query's hash bucket
/// is opened.
#ifndef OTGED_SEARCH_INDEX_PARTITION_TABLE_HPP_
#define OTGED_SEARCH_INDEX_PARTITION_TABLE_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "search/graph_store.hpp"
#include "search/index/index_stats.hpp"

namespace otged {

/// One (num_nodes, num_edges) partition; immutable once built, shared
/// between index views (copy-on-write at the partition level).
struct IndexPartition {
  int num_nodes = 0;
  int num_edges = 0;
  /// Members ascending by stable id.
  std::vector<std::shared_ptr<const StoreEntry>> members;

  /// Inverted index: for each label present in some member, the members
  /// containing it with their multiplicity. Ascending by label; inner
  /// lists ascending by member slot.
  struct Posting {
    Label label = 0;
    std::vector<std::pair<int32_t, int32_t>> counts;  ///< (member slot, count)
  };
  std::vector<Posting> postings;

  /// Positional min/max over members' ascending degree sequences (all
  /// members share num_nodes, so the sequences align index-by-index).
  std::vector<int> degree_min;
  std::vector<int> degree_max;

  /// (wl_hash >> (64 - prefix_bits), member slot) ascending — the
  /// tau == 0 prefix table. Candidate buckets are confirmed against the
  /// full hash before emitting.
  std::vector<std::pair<uint64_t, int32_t>> wl_prefixes;
};

/// Map key for a partition; iteration order is (num_nodes, num_edges).
uint64_t PartitionKey(int num_nodes, int num_edges);

std::shared_ptr<const IndexPartition> BuildPartition(
    int num_nodes, int num_edges,
    std::vector<std::shared_ptr<const StoreEntry>> members,
    int wl_prefix_bits);

using PartitionMap =
    std::map<uint64_t, std::shared_ptr<const IndexPartition>>;

/// Groups a snapshot's entries (ascending by id) into partitions.
PartitionMap BuildPartitionMap(
    const std::vector<std::shared_ptr<const StoreEntry>>& entries,
    int wl_prefix_bits);

/// Copy-on-write update: untouched partitions are shared with `base`,
/// touched ones are rebuilt from their surviving + added members.
PartitionMap ApplyPartitionDiff(
    const PartitionMap& base,
    const std::vector<std::shared_ptr<const StoreEntry>>& added,
    const std::vector<std::shared_ptr<const StoreEntry>>& removed,
    int wl_prefix_bits);

/// Level 1: appends partitions that survive the signature and degree
/// envelope screens to `opened`; accounts pruned members in `stats`.
void ScreenPartitions(const PartitionMap& parts, const GraphInvariants& qi,
                      int tau,
                      std::vector<const IndexPartition*>* opened,
                      IndexStats* stats);

/// Level 2: appends the ids of members of `part` whose label-count lower
/// bound is <= tau (at tau == 0: whose WL hash matches). Run-length
/// encoded query labels in `query_rle` (ascending by label).
void PartitionLabelCandidates(
    const IndexPartition& part, const GraphInvariants& qi,
    const std::vector<std::pair<Label, int>>& query_rle, int tau,
    int wl_prefix_bits, std::vector<int>* out_ids, IndexStats* stats);

}  // namespace otged

#endif  // OTGED_SEARCH_INDEX_PARTITION_TABLE_HPP_
