#include "search/index/graph_index.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.hpp"

namespace otged {

namespace {

#if OTGED_TELEMETRY_COMPILED
/// Index metric handles, resolved once (labeled names cannot go through
/// the one-name-per-call-site OTGED_COUNT macros).
struct IndexMetrics {
  telemetry::Counter* queries[2];  ///< kind = range, topk
  telemetry::Counter* candidates;
  telemetry::Counter* pruned[3];  ///< level = partition, label, vptree
  telemetry::Counter* partitions_opened;
  telemetry::Counter* vp_nodes_visited;
  telemetry::Counter* applies;
  telemetry::Counter* rebuilds;
  telemetry::Gauge* size;
  telemetry::Gauge* partitions;
  telemetry::Gauge* vp_overlay;
  telemetry::Histogram* level_latency[3];
};

const IndexMetrics& Metrics() {
  static const IndexMetrics* m = [] {
    auto* mm = new IndexMetrics;
    auto& reg = telemetry::Registry();
    static const char* kKind[2] = {"range", "topk"};
    static const char* kLevel[3] = {"partition", "label", "vptree"};
    for (int k : {0, 1})
      mm->queries[k] = &reg.GetCounter(
          std::string("otged_index_queries_total{kind=\"") + kKind[k] +
              "\"}",
          "queries answered through the candidate-generation index");
    mm->candidates =
        &reg.GetCounter("otged_index_candidates_total",
                        "graphs the index handed to the filter cascade");
    for (int l : {0, 1, 2})
      mm->pruned[l] = &reg.GetCounter(
          std::string("otged_index_pruned_total{level=\"") + kLevel[l] +
              "\"}",
          "graphs dismissed by this index level's admissible bound");
    mm->partitions_opened =
        &reg.GetCounter("otged_index_partitions_opened_total",
                        "partitions that survived the signature screen");
    mm->vp_nodes_visited =
        &reg.GetCounter("otged_index_vp_nodes_visited_total",
                        "metric evaluations inside VP-tree traversals");
    mm->applies = &reg.GetCounter(
        "otged_index_applies_total",
        "incremental snapshot diffs applied to the cached view");
    mm->rebuilds = &reg.GetCounter(
        "otged_index_rebuilds_total",
        "full VP-tree builds (initial, overlay overflow, or compaction)");
    mm->size =
        &reg.GetGauge("otged_index_size", "graphs in the current view");
    mm->partitions = &reg.GetGauge("otged_index_partitions",
                                   "partitions in the current view");
    mm->vp_overlay = &reg.GetGauge(
        "otged_index_vp_overlay",
        "VP-tree overlay entries (delta inserts + dead ids)");
    for (int l : {0, 1, 2})
      mm->level_latency[l] = &reg.GetHistogram(
          std::string("otged_index_level_latency_us{level=\"") + kLevel[l] +
              "\"}",
          "wall time spent in this index level per query");
    return mm;
  }();
  return *m;
}
#endif  // OTGED_TELEMETRY_COMPILED

/// Run-length encodes an ascending label multiset.
std::vector<std::pair<Label, int>> RleLabels(
    const std::vector<Label>& sorted_labels) {
  std::vector<std::pair<Label, int>> rle;
  for (size_t i = 0; i < sorted_labels.size();) {
    size_t j = i;
    while (j < sorted_labels.size() && sorted_labels[j] == sorted_labels[i])
      ++j;
    rle.emplace_back(sorted_labels[i], static_cast<int>(j - i));
    i = j;
  }
  return rle;
}

void DigestPod(uint64_t* h, uint64_t v) {
  // FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xffu;
    *h *= 1099511628211ull;
  }
}

}  // namespace

void IndexView::RangeCandidates(const GraphInvariants& qi, int tau,
                                std::vector<int>* out_ids,
                                IndexStats* stats) const {
  const size_t first = out_ids->size();
  const double t0 = telemetry::NowUs();
  std::vector<const IndexPartition*> opened;
  ScreenPartitions(partitions_, qi, tau, &opened, stats);
  const double t1 = telemetry::NowUs();
  const auto query_rle = RleLabels(qi.sorted_labels);
  for (const IndexPartition* part : opened)
    PartitionLabelCandidates(*part, qi, query_rle, tau, wl_prefix_bits_,
                             out_ids, stats);
  // Partitions iterate by (n, m); interleave back to ascending id.
  std::sort(out_ids->begin() + static_cast<long>(first), out_ids->end());
  const double t2 = telemetry::NowUs();
  stats->partition_us += t1 - t0;
  stats->label_us += t2 - t1;
#if OTGED_TELEMETRY_COMPILED
  if (telemetry::Enabled()) {
    const auto& m = Metrics();
    m.queries[0]->Inc();
    m.candidates->Inc(static_cast<long>(out_ids->size() - first));
    m.pruned[0]->Inc(stats->partition_pruned);
    m.pruned[1]->Inc(stats->label_pruned);
    m.partitions_opened->Inc(stats->partitions_opened);
    m.level_latency[0]->Record(std::lround(t1 - t0));
    m.level_latency[1]->Record(std::lround(t2 - t1));
  }
#endif
}

void IndexView::TopKSeeds(const GraphInvariants& qi, size_t k,
                          std::vector<std::pair<int, int>>* out,
                          IndexStats* stats) const {
  const double t0 = telemetry::NowUs();
  long visited = 0;
  out->clear();
  out->reserve(delta_.size() + k);
  for (const auto& e : delta_) {
    ++visited;
    out->emplace_back(InvariantLowerBound(qi, e->invariants), e->id);
  }
  vp_->Knn(qi, k, dead_, out, &visited);
  const double t1 = telemetry::NowUs();
  stats->vp_nodes_visited += visited;
  stats->vptree_us += t1 - t0;
#if OTGED_TELEMETRY_COMPILED
  if (telemetry::Enabled()) {
    const auto& m = Metrics();
    m.queries[1]->Inc();
    m.vp_nodes_visited->Inc(visited);
    m.level_latency[2]->Record(std::lround(t1 - t0));
  }
#endif
}

void IndexView::LbRangeCandidates(const GraphInvariants& qi, int tau,
                                  std::vector<int>* out_ids,
                                  IndexStats* stats) const {
  const double t0 = telemetry::NowUs();
  long visited = 0;
  std::vector<std::pair<int, int>> hits;  // (id, lb)
  vp_->Range(qi, tau, dead_, &hits, &visited);
  for (const auto& e : delta_) {
    ++visited;
    if (InvariantLowerBound(qi, e->invariants) <= tau)
      hits.emplace_back(e->id, 0);
  }
  const size_t first = out_ids->size();
  for (const auto& h : hits) out_ids->push_back(h.first);
  std::sort(out_ids->begin() + static_cast<long>(first), out_ids->end());
  const double t1 = telemetry::NowUs();
  const long emitted = static_cast<long>(hits.size());
  stats->scanned += size_;
  stats->candidates += emitted;
  stats->vptree_pruned += static_cast<long>(size_) - emitted;
  stats->vp_nodes_visited += visited;
  stats->vptree_us += t1 - t0;
#if OTGED_TELEMETRY_COMPILED
  if (telemetry::Enabled()) {
    const auto& m = Metrics();
    m.candidates->Inc(emitted);
    m.pruned[2]->Inc(static_cast<long>(size_) - emitted);
    m.vp_nodes_visited->Inc(visited);
    m.level_latency[2]->Record(std::lround(t1 - t0));
  }
#endif
}

uint64_t IndexView::StructuralDigest() const {
  uint64_t h = 14695981039346656037ull;
  DigestPod(&h, static_cast<uint64_t>(wl_prefix_bits_));
  DigestPod(&h, static_cast<uint64_t>(size_));
  for (const auto& [key, part] : partitions_) {
    DigestPod(&h, key);
    DigestPod(&h, part->members.size());
    for (const auto& e : part->members)
      DigestPod(&h, static_cast<uint64_t>(e->id));
  }
  DigestPod(&h, vp_->nodes().size());
  for (size_t i = 0; i < vp_->nodes().size(); ++i) {
    const VpTreeNode& n = vp_->nodes()[i];
    DigestPod(&h, static_cast<uint64_t>(vp_->entries()[i]->id));
    DigestPod(&h, static_cast<uint64_t>(static_cast<int64_t>(n.r_in_max)));
    DigestPod(&h, static_cast<uint64_t>(static_cast<int64_t>(n.r_out_min)));
    DigestPod(&h, static_cast<uint64_t>(n.inner));
  }
  DigestPod(&h, delta_.size());
  for (const auto& e : delta_) DigestPod(&h, static_cast<uint64_t>(e->id));
  DigestPod(&h, dead_.size());
  for (const int id : dead_) DigestPod(&h, static_cast<uint64_t>(id));
  return h;
}

PersistedIndex MakePersistedIndex(const IndexView& view) {
  PersistedIndex out;
  out.wl_prefix_bits = view.wl_prefix_bits_;
  out.nodes = view.vp_->nodes();
  out.node_ids.reserve(out.nodes.size());
  for (const auto& e : view.vp_->entries()) out.node_ids.push_back(e->id);
  out.digest = view.StructuralDigest();
  return out;
}

GraphIndex::GraphIndex(const IndexOptions& opt) : opt_(opt) {}

std::shared_ptr<const IndexView> GraphIndex::ViewFor(
    const std::shared_ptr<const StoreSnapshot>& snap) {
  MutexLock lock(mu_);
  if (view_ != nullptr && base_ != nullptr &&
      base_->epoch() == snap->epoch())
    return view_;
  std::shared_ptr<const IndexView> view =
      (view_ == nullptr) ? BuildFull(snap) : Advance(snap);
  Install(snap, view);
  return view;
}

std::shared_ptr<const IndexView> GraphIndex::CompactViewFor(
    const std::shared_ptr<const StoreSnapshot>& snap) {
  MutexLock lock(mu_);
  if (view_ == nullptr || base_ == nullptr ||
      base_->epoch() != snap->epoch() || !view_->OverlayEmpty()) {
    Install(snap, BuildFull(snap));
  }
  return view_;
}

bool GraphIndex::AdoptPersisted(
    const std::shared_ptr<const StoreSnapshot>& snap,
    const PersistedIndex& persisted, std::string* error) {
  MutexLock lock(mu_);
  if (persisted.wl_prefix_bits != opt_.wl_prefix_bits) {
    if (error != nullptr) *error = "index config mismatch (wl_prefix_bits)";
    return false;
  }
  if (persisted.node_ids.size() !=
          static_cast<size_t>(snap->Size()) ||
      persisted.nodes.size() != persisted.node_ids.size()) {
    if (error != nullptr) *error = "index node count != store size";
    return false;
  }
  std::vector<std::shared_ptr<const StoreEntry>> entries;
  entries.reserve(persisted.node_ids.size());
  for (const int id : persisted.node_ids) {
    const int slot = snap->SlotOf(id);
    if (slot < 0) {
      if (error != nullptr) *error = "index references unknown graph id";
      return false;
    }
    entries.push_back(snap->entry_ptrs()[static_cast<size_t>(slot)]);
  }
  auto vp = VpTree::FromPersisted(std::move(entries), persisted.nodes);
  if (vp == nullptr) {
    if (error != nullptr) *error = "malformed VP-tree layout";
    return false;
  }
  auto view = std::shared_ptr<IndexView>(new IndexView);
  view->epoch_ = snap->epoch();
  view->size_ = snap->Size();
  view->wl_prefix_bits_ = opt_.wl_prefix_bits;
  view->partitions_ =
      BuildPartitionMap(snap->entry_ptrs(), opt_.wl_prefix_bits);
  view->vp_ = std::move(vp);
  if (view->StructuralDigest() != persisted.digest) {
    if (error != nullptr) *error = "index digest mismatch";
    return false;
  }
  Install(snap, std::move(view));
  return true;
}

std::shared_ptr<const IndexView> GraphIndex::BuildFull(
    const std::shared_ptr<const StoreSnapshot>& snap) {
  auto view = std::shared_ptr<IndexView>(new IndexView);
  view->epoch_ = snap->epoch();
  view->size_ = snap->Size();
  view->wl_prefix_bits_ = opt_.wl_prefix_bits;
  view->partitions_ =
      BuildPartitionMap(snap->entry_ptrs(), opt_.wl_prefix_bits);
  view->vp_ = VpTree::Build(snap->entry_ptrs());
#if OTGED_TELEMETRY_COMPILED
  if (telemetry::Enabled()) Metrics().rebuilds->Inc();
#endif
  return view;
}

std::shared_ptr<const IndexView> GraphIndex::Advance(
    const std::shared_ptr<const StoreSnapshot>& snap) {
  // Both entry vectors ascend by stable id; ids are never reused, but a
  // Restore may rebind an id to a fresh entry object, so pointer
  // inequality at an equal id counts as remove + add.
  const auto& olds = base_->entry_ptrs();
  const auto& news = snap->entry_ptrs();
  std::vector<std::shared_ptr<const StoreEntry>> added, removed;
  size_t i = 0, j = 0;
  while (i < olds.size() || j < news.size()) {
    if (j == news.size() ||
        (i < olds.size() && olds[i]->id < news[j]->id)) {
      removed.push_back(olds[i++]);
    } else if (i == olds.size() || news[j]->id < olds[i]->id) {
      added.push_back(news[j++]);
    } else {
      if (olds[i] != news[j]) {
        removed.push_back(olds[i]);
        added.push_back(news[j]);
      }
      ++i;
      ++j;
    }
  }
  if (added.empty() && removed.empty() && view_->size_ == snap->Size()) {
    // Epoch moved without content change (e.g. erase of a missing id).
    auto view = std::shared_ptr<IndexView>(new IndexView(*view_));
    view->epoch_ = snap->epoch();
    return view;
  }

  auto view = std::shared_ptr<IndexView>(new IndexView);
  view->epoch_ = snap->epoch();
  view->size_ = snap->Size();
  view->wl_prefix_bits_ = opt_.wl_prefix_bits;
  view->partitions_ = ApplyPartitionDiff(view_->partitions_, added, removed,
                                         opt_.wl_prefix_bits);

  // VP-tree overlay: erases of tree residents become dead ids, erases of
  // delta entries drop out of the delta, inserts append to the delta.
  // An id can be in BOTH places at once — a Restore rebind of a tree
  // resident marks the stale tree entry dead and serves the fresh entry
  // from the delta — so a removal must always clear the delta entry, and
  // the dead list must stay duplicate-free.
  view->vp_ = view_->vp_;
  view->dead_ = view_->dead_;
  view->delta_ = view_->delta_;
  for (const auto& e : removed) {
    auto it = std::lower_bound(
        view->delta_.begin(), view->delta_.end(), e->id,
        [](const auto& d, int id) { return d->id < id; });
    if (it != view->delta_.end() && (*it)->id == e->id)
      view->delta_.erase(it);
    if (std::binary_search(view->vp_->sorted_ids().begin(),
                           view->vp_->sorted_ids().end(), e->id)) {
      auto dit =
          std::lower_bound(view->dead_.begin(), view->dead_.end(), e->id);
      if (dit == view->dead_.end() || *dit != e->id)
        view->dead_.insert(dit, e->id);
    }
  }
  for (const auto& e : added)
    view->delta_.insert(
        std::lower_bound(view->delta_.begin(), view->delta_.end(), e->id,
                         [](const auto& d, int id) { return d->id < id; }),
        e);

  const size_t overlay = view->delta_.size() + view->dead_.size();
  const size_t limit = std::max(
      static_cast<size_t>(opt_.vp_rebuild_min),
      static_cast<size_t>(opt_.vp_rebuild_fraction *
                          static_cast<double>(snap->Size())));
  if (overlay > limit) {
    view->vp_ = VpTree::Build(snap->entry_ptrs());
    view->delta_.clear();
    view->dead_.clear();
#if OTGED_TELEMETRY_COMPILED
    if (telemetry::Enabled()) Metrics().rebuilds->Inc();
#endif
  }
#if OTGED_TELEMETRY_COMPILED
  if (telemetry::Enabled()) Metrics().applies->Inc();
#endif
  return view;
}

void GraphIndex::Install(const std::shared_ptr<const StoreSnapshot>& snap,
                         std::shared_ptr<const IndexView> view) {
  base_ = snap;
  view_ = std::move(view);
#if OTGED_TELEMETRY_COMPILED
  if (telemetry::Enabled()) {
    const auto& m = Metrics();
    m.size->Set(view_->size_);
    m.partitions->Set(static_cast<long>(view_->partitions_.size()));
    m.vp_overlay->Set(
        static_cast<long>(view_->delta_.size() + view_->dead_.size()));
  }
#endif
}

}  // namespace otged
