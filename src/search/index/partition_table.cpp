#include "search/index/partition_table.hpp"

#include <algorithm>
#include <cstdlib>

namespace otged {

namespace {

int ClampPrefixBits(int bits) { return std::min(64, std::max(1, bits)); }

uint64_t WlPrefix(uint64_t hash, int bits) {
  return hash >> (64 - ClampPrefixBits(bits));
}

/// ceil(L1(query degrees, envelope) / 2): positional gap between the
/// query's ascending degree sequence and the partition's [min, max]
/// envelope, both zero-padded at the front to a common length. Every
/// member's degree sequence lies inside the envelope, so this never
/// exceeds any member's DegreeSequenceEdgeBound — pruning on it is
/// admissible.
int EnvelopeDegreeBound(const std::vector<int>& query_degrees,
                        const std::vector<int>& env_min,
                        const std::vector<int>& env_max) {
  const int nq = static_cast<int>(query_degrees.size());
  const int np = static_cast<int>(env_min.size());
  const int len = std::max(nq, np);
  long l1 = 0;
  for (int j = 0; j < len; ++j) {
    const int qd =
        j >= len - nq ? query_degrees[static_cast<size_t>(j - (len - nq))]
                      : 0;
    const int lo =
        j >= len - np ? env_min[static_cast<size_t>(j - (len - np))] : 0;
    const int hi =
        j >= len - np ? env_max[static_cast<size_t>(j - (len - np))] : 0;
    if (qd < lo)
      l1 += lo - qd;
    else if (qd > hi)
      l1 += qd - hi;
  }
  return static_cast<int>((l1 + 1) / 2);
}

}  // namespace

uint64_t PartitionKey(int num_nodes, int num_edges) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(num_nodes)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(num_edges));
}

std::shared_ptr<const IndexPartition> BuildPartition(
    int num_nodes, int num_edges,
    std::vector<std::shared_ptr<const StoreEntry>> members,
    int wl_prefix_bits) {
  auto part = std::make_shared<IndexPartition>();
  part->num_nodes = num_nodes;
  part->num_edges = num_edges;
  part->members = std::move(members);

  std::map<Label, std::vector<std::pair<int32_t, int32_t>>> postings;
  part->degree_min.assign(static_cast<size_t>(num_nodes), 0);
  part->degree_max.assign(static_cast<size_t>(num_nodes), 0);
  part->wl_prefixes.reserve(part->members.size());
  for (size_t slot = 0; slot < part->members.size(); ++slot) {
    const GraphInvariants& inv = part->members[slot]->invariants;
    // Run-length encode the sorted label multiset into posting entries.
    const auto& labels = inv.sorted_labels;
    for (size_t i = 0; i < labels.size();) {
      size_t j = i;
      while (j < labels.size() && labels[j] == labels[i]) ++j;
      postings[labels[i]].emplace_back(static_cast<int32_t>(slot),
                                       static_cast<int32_t>(j - i));
      i = j;
    }
    for (size_t j = 0; j < inv.sorted_degrees.size(); ++j) {
      const int d = inv.sorted_degrees[j];
      if (slot == 0) {
        part->degree_min[j] = d;
        part->degree_max[j] = d;
      } else {
        part->degree_min[j] = std::min(part->degree_min[j], d);
        part->degree_max[j] = std::max(part->degree_max[j], d);
      }
    }
    part->wl_prefixes.emplace_back(WlPrefix(inv.wl_hash, wl_prefix_bits),
                                   static_cast<int32_t>(slot));
  }
  part->postings.reserve(postings.size());
  for (auto& [label, counts] : postings)
    part->postings.push_back({label, std::move(counts)});
  std::sort(part->wl_prefixes.begin(), part->wl_prefixes.end());
  return part;
}

PartitionMap BuildPartitionMap(
    const std::vector<std::shared_ptr<const StoreEntry>>& entries,
    int wl_prefix_bits) {
  std::map<uint64_t, std::vector<std::shared_ptr<const StoreEntry>>> groups;
  for (const auto& e : entries)
    groups[PartitionKey(e->invariants.num_nodes, e->invariants.num_edges)]
        .push_back(e);
  PartitionMap out;
  for (auto& [key, members] : groups)
    out.emplace(key,
                BuildPartition(static_cast<int>(key >> 32),
                               static_cast<int>(key & 0xffffffffu),
                               std::move(members), wl_prefix_bits));
  return out;
}

PartitionMap ApplyPartitionDiff(
    const PartitionMap& base,
    const std::vector<std::shared_ptr<const StoreEntry>>& added,
    const std::vector<std::shared_ptr<const StoreEntry>>& removed,
    int wl_prefix_bits) {
  struct Delta {
    std::vector<std::shared_ptr<const StoreEntry>> adds;
    std::vector<int> removed_ids;
  };
  std::map<uint64_t, Delta> touched;
  for (const auto& e : added)
    touched[PartitionKey(e->invariants.num_nodes, e->invariants.num_edges)]
        .adds.push_back(e);
  for (const auto& e : removed)
    touched[PartitionKey(e->invariants.num_nodes, e->invariants.num_edges)]
        .removed_ids.push_back(e->id);

  PartitionMap out = base;  // shares untouched partitions
  for (auto& [key, delta] : touched) {
    std::vector<std::shared_ptr<const StoreEntry>> members;
    auto it = out.find(key);
    if (it != out.end()) members = it->second->members;
    std::sort(delta.removed_ids.begin(), delta.removed_ids.end());
    members.erase(
        std::remove_if(members.begin(), members.end(),
                       [&](const auto& e) {
                         return std::binary_search(delta.removed_ids.begin(),
                                                   delta.removed_ids.end(),
                                                   e->id);
                       }),
        members.end());
    std::sort(delta.adds.begin(), delta.adds.end(),
              [](const auto& a, const auto& b) { return a->id < b->id; });
    std::vector<std::shared_ptr<const StoreEntry>> merged;
    merged.reserve(members.size() + delta.adds.size());
    std::merge(members.begin(), members.end(), delta.adds.begin(),
               delta.adds.end(), std::back_inserter(merged),
               [](const auto& a, const auto& b) { return a->id < b->id; });
    if (merged.empty()) {
      if (it != out.end()) out.erase(it);
    } else {
      out[key] =
          BuildPartition(static_cast<int>(key >> 32),
                         static_cast<int>(key & 0xffffffffu),
                         std::move(merged), wl_prefix_bits);
    }
  }
  return out;
}

void ScreenPartitions(const PartitionMap& parts, const GraphInvariants& qi,
                      int tau,
                      std::vector<const IndexPartition*>* opened,
                      IndexStats* stats) {
  for (const auto& [key, part] : parts) {
    stats->partitions_seen++;
    const long size = static_cast<long>(part->members.size());
    stats->scanned += size;
    const int dn = std::abs(qi.num_nodes - part->num_nodes);
    const int dm = std::abs(qi.num_edges - part->num_edges);
    // Each node edit moves num_nodes by one, each edge edit num_edges by
    // one, so GED >= max(dn, dm) for every member.
    if (std::max(dn, dm) > tau) {
      stats->partition_pruned += size;
      continue;
    }
    if (EnvelopeDegreeBound(qi.sorted_degrees, part->degree_min,
                            part->degree_max) > tau) {
      stats->partition_pruned += size;
      continue;
    }
    stats->partitions_opened++;
    opened->push_back(part.get());
  }
}

void PartitionLabelCandidates(
    const IndexPartition& part, const GraphInvariants& qi,
    const std::vector<std::pair<Label, int>>& query_rle, int tau,
    int wl_prefix_bits, std::vector<int>* out_ids, IndexStats* stats) {
  const long size = static_cast<long>(part.members.size());
  long emitted = 0;
  if (tau == 0) {
    // The screen already enforced equal (n, m); WL-hash equality is
    // additionally necessary for GED == 0, so only the query's prefix
    // bucket is opened and confirmed against the full hash.
    const std::pair<uint64_t, int32_t> probe(
        WlPrefix(qi.wl_hash, wl_prefix_bits), -1);
    for (auto it = std::lower_bound(part.wl_prefixes.begin(),
                                    part.wl_prefixes.end(), probe);
         it != part.wl_prefixes.end() && it->first == probe.first; ++it) {
      const auto& member = part.members[static_cast<size_t>(it->second)];
      if (member->invariants.wl_hash == qi.wl_hash) {
        out_ids->push_back(member->id);
        ++emitted;
      }
    }
    // Prefix buckets are unordered by id within the bucket only when
    // hashes tie; restore ascending-id output.
    std::sort(out_ids->end() - emitted, out_ids->end());
  } else {
    const int dm = std::abs(qi.num_edges - part.num_edges);
    const int base = std::max(qi.num_nodes, part.num_nodes) + dm;
    if (base <= tau) {
      // No amount of label mismatch can push the bound past tau.
      for (const auto& member : part.members) out_ids->push_back(member->id);
      emitted = size;
    } else {
      const int need = base - tau;  // >= 1: untouched members cannot pass
      std::vector<int32_t> common(static_cast<size_t>(size), 0);
      std::vector<int32_t> hit;
      auto post = part.postings.begin();
      for (const auto& [label, qcount] : query_rle) {
        while (post != part.postings.end() && post->label < label) ++post;
        if (post == part.postings.end()) break;
        if (post->label != label) continue;
        for (const auto& [slot, count] : post->counts) {
          if (common[static_cast<size_t>(slot)] == 0) hit.push_back(slot);
          common[static_cast<size_t>(slot)] += std::min(count, qcount);
        }
      }
      std::sort(hit.begin(), hit.end());
      for (const int32_t slot : hit) {
        if (common[static_cast<size_t>(slot)] >= need) {
          out_ids->push_back(part.members[static_cast<size_t>(slot)]->id);
          ++emitted;
        }
      }
    }
  }
  stats->candidates += emitted;
  stats->label_pruned += size - emitted;
}

}  // namespace otged
