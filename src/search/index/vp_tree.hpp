/// \file vp_tree.hpp
/// \brief Vantage-point tree over stored graphs, with the invariant GED
/// lower bound as its metric.
///
/// `InvariantLowerBound` is a genuine pseudo-metric on invariants — each
/// ingredient obeys the triangle inequality and those properties survive
/// the combinators used to assemble it:
///   * the label-multiset bound max(|A\B|, |B\A|) is a multiset distance
///     (an element of A\C is missing from B or surplus in B, so
///     |A\C| <= |A\B| + |B\C| with multiplicity);
///   * | |E1| - |E2| | and the degree-sequence bound ceil(L1/2) are
///     metrics (descending degree sequences zero-padded to a common
///     length embed into l1, and ceil(x/2) is subadditive);
///   * sums and maxima of metrics are metrics.
/// It is also admissible (<= the true GED), so triangle-inequality
/// pruning over this metric can dismiss a stored graph only when its
/// lower bound provably exceeds the query threshold — the candidate set
/// always contains every true hit.
///
/// Nodes store two radii (max distance inside the inner child, min
/// distance inside the outer child), so search correctness never depends
/// on how the builder split a node: the builder always halves the
/// subtree, keeping the tree balanced even on tie-heavy metrics.
///
/// The tree is immutable after Build/FromPersisted; views layer recent
/// inserts (a linear delta list) and erases (a dead-id set) on top and
/// rebuild when the overlay grows past a configured fraction.
#ifndef OTGED_SEARCH_INDEX_VP_TREE_HPP_
#define OTGED_SEARCH_INDEX_VP_TREE_HPP_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "search/graph_store.hpp"

namespace otged {

/// One VP-tree node in preorder layout: the node at position `p` with
/// subtree size `s` stores entries()[p] as its vantage, its inner child
/// at [p+1, p+1+inner] and its outer child at [p+1+inner, p+s).
struct VpTreeNode {
  int32_t r_in_max = -1;  ///< max metric(vantage, x) over the inner child
  int32_t r_out_min = -1;  ///< min metric(vantage, x) over the outer child
  int32_t inner = 0;  ///< node count of the inner child
};

class VpTree {
 public:
  /// Builds deterministically from entries sorted ascending by id: the
  /// vantage of every subtree is its smallest id, the rest are sorted by
  /// (distance, id) and halved. O(n log^2 n) metric evaluations.
  static std::shared_ptr<const VpTree> Build(
      std::vector<std::shared_ptr<const StoreEntry>> entries);

  /// Reconstructs a persisted tree: `entries[i]` is the node-i entry (in
  /// preorder layout) and `nodes[i]` carries its radii/split. Returns
  /// nullptr if the node array is not a structurally valid preorder tree.
  static std::shared_ptr<const VpTree> FromPersisted(
      std::vector<std::shared_ptr<const StoreEntry>> entries,
      std::vector<VpTreeNode> nodes);

  int Size() const { return static_cast<int>(nodes_.size()); }

  /// Appends (id, distance) for every live entry with
  /// metric(query, entry) <= tau; ids in `dead` (sorted ascending) still
  /// serve as vantage points but are never emitted. `visited` counts
  /// metric evaluations.
  void Range(const GraphInvariants& query, int tau,
             const std::vector<int>& dead,
             std::vector<std::pair<int, int>>* out, long* visited) const;

  /// Folds the k lexicographically smallest (distance, id) pairs over
  /// live entries into `best` (which may be pre-seeded with outside
  /// candidates, e.g. a delta list); `best` comes back sorted ascending,
  /// at most k long. Deterministic: the result is the set of k smallest
  /// pairs, independent of traversal order.
  void Knn(const GraphInvariants& query, size_t k,
           const std::vector<int>& dead,
           std::vector<std::pair<int, int>>* best, long* visited) const;

  /// Preorder nodes (for persistence and digests).
  const std::vector<VpTreeNode>& nodes() const { return nodes_; }
  /// Entry of node i (preorder layout, parallel to nodes()).
  const std::vector<std::shared_ptr<const StoreEntry>>& entries() const {
    return entries_;
  }
  /// All contained ids, ascending (for overlay membership tests).
  const std::vector<int>& sorted_ids() const { return sorted_ids_; }

 private:
  VpTree() = default;
  void BuildRange(
      std::vector<std::shared_ptr<const StoreEntry>>* scratch, int lo,
      int hi);
  void RangeImpl(const GraphInvariants& query, int tau,
                 const std::vector<int>& dead, int pos, int size,
                 std::vector<std::pair<int, int>>* out, long* visited) const;
  void KnnImpl(const GraphInvariants& query, size_t k,
               const std::vector<int>& dead, int pos, int size,
               std::vector<std::pair<int, int>>* heap, long* visited) const;

  std::vector<VpTreeNode> nodes_;
  std::vector<std::shared_ptr<const StoreEntry>> entries_;
  std::vector<int> sorted_ids_;
};

}  // namespace otged

#endif  // OTGED_SEARCH_INDEX_VP_TREE_HPP_
