/// \file graph_index.hpp
/// \brief Snapshot-consistent multi-level candidate-generation index.
///
/// Sits between GraphStore and FilterCascade: given a pinned snapshot,
/// the engine asks the index for a candidate id list instead of scanning
/// every stored graph. Three levels, all pruning strictly via admissible
/// lower bounds (so indexed results are byte-identical to a linear
/// scan):
///
///   level 1  partition screen   (n, m) signature distance + descending
///                               degree min/max envelope; prunes whole
///                               partitions without opening them
///   level 2  label postings     inverted label index inside a
///                               partition; O(1) per posting entry, and
///                               members untouched by the query's labels
///                               are dismissed wholesale (at tau == 0 a
///                               WL-hash prefix table is used instead)
///   level 3  VP-tree            triangle-inequality pruning over the
///                               InvariantLowerBound pseudo-metric;
///                               serves top-k seeding and the final
///                               LB-range cut
///
/// Consistency model: an IndexView is immutable and tied to one store
/// epoch. GraphIndex caches the view for the most recent snapshot it
/// served and advances it by diffing snapshot entry vectors (both are
/// ascending by stable id, so the diff is a linear merge walk):
/// partitions update copy-on-write, the VP-tree absorbs churn into a
/// linear delta list (recent inserts) plus a dead-id set (erases) and is
/// rebuilt deterministically once the overlay exceeds a configured
/// fraction. Concurrent queries that pinned older views keep using them
/// untouched.
#ifndef OTGED_SEARCH_INDEX_GRAPH_INDEX_HPP_
#define OTGED_SEARCH_INDEX_GRAPH_INDEX_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_annotations.hpp"
#include "search/graph_store.hpp"
#include "search/index/index_stats.hpp"
#include "search/index/partition_table.hpp"
#include "search/index/vp_tree.hpp"

namespace otged {

struct IndexOptions {
  /// Width of the tau == 0 WL-hash prefix tables (1..64). Wider prefixes
  /// mean smaller buckets; candidates are always confirmed against the
  /// full hash, so this only trades space for bucket selectivity.
  int wl_prefix_bits = 16;
  /// Rebuild the VP-tree when overlay entries (delta + dead) exceed
  /// max(vp_rebuild_min, vp_rebuild_fraction * live size).
  double vp_rebuild_fraction = 0.15;
  int vp_rebuild_min = 64;
};

struct PersistedIndex;

/// The index at one store epoch. Immutable; safe to share across
/// threads; valid for as long as the shared_ptr is held.
class IndexView {
 public:
  uint64_t epoch() const { return epoch_; }
  int Size() const { return size_; }

  /// Range candidate generation (levels 1 + 2): appends ascending stable
  /// ids of every graph whose partition/label lower bounds are <= tau.
  /// Superset of the true hit set; the cascade re-checks the full tier-0
  /// bound per candidate.
  void RangeCandidates(const GraphInvariants& qi, int tau,
                       std::vector<int>* out_ids, IndexStats* stats) const;

  /// Top-k seeding (level 3): the k lexicographically smallest
  /// (InvariantLowerBound, id) pairs, ascending — identical to what a
  /// full scan's nth_element by (bound, slot) would select.
  void TopKSeeds(const GraphInvariants& qi, size_t k,
                 std::vector<std::pair<int, int>>* out, IndexStats* stats)
      const;

  /// Exact LB-range cut (level 3): ascending ids of every graph with
  /// InvariantLowerBound(query, g) <= tau — not a superset, the precise
  /// set, as required for top-k exactness.
  void LbRangeCandidates(const GraphInvariants& qi, int tau,
                         std::vector<int>* out_ids, IndexStats* stats) const;

  /// Order-independent structural fingerprint of the whole view
  /// (config, partitions, VP-tree layout, overlay). Equal digests mean
  /// equal candidate generation behavior; used to verify that a
  /// persisted index matches a from-scratch rebuild.
  uint64_t StructuralDigest() const;

  bool OverlayEmpty() const { return delta_.empty() && dead_.empty(); }
  const VpTree& vp_tree() const { return *vp_; }
  const PartitionMap& partitions() const { return partitions_; }

 private:
  friend class GraphIndex;
  friend PersistedIndex MakePersistedIndex(const IndexView& view);

  uint64_t epoch_ = 0;
  int size_ = 0;
  int wl_prefix_bits_ = 16;
  PartitionMap partitions_;
  std::shared_ptr<const VpTree> vp_;
  /// Live entries not yet in vp_, ascending by id (scanned linearly).
  std::vector<std::shared_ptr<const StoreEntry>> delta_;
  /// Ids still in vp_ but no longer live, ascending (skipped on emit).
  std::vector<int> dead_;
};

/// Serialized form of a *compact* view's VP-tree (partitions and
/// postings are cheap to rebuild from the store payload; the tree is the
/// only part worth persisting). The digest pins the full rebuilt view.
struct PersistedIndex {
  int wl_prefix_bits = 16;
  std::vector<int> node_ids;  ///< preorder vantage ids, parallel to nodes
  std::vector<VpTreeNode> nodes;
  uint64_t digest = 0;
};

PersistedIndex MakePersistedIndex(const IndexView& view);

/// Maintains the current IndexView for a store. Thread-safe; queries in
/// flight keep whatever view they pinned.
class GraphIndex {
 public:
  explicit GraphIndex(const IndexOptions& opt = IndexOptions());

  /// The view for `snap`, building or incrementally advancing the cached
  /// view as needed.
  std::shared_ptr<const IndexView> ViewFor(
      const std::shared_ptr<const StoreSnapshot>& snap) EXCLUDES(mu_);

  /// Like ViewFor, but guarantees an empty overlay (forces a VP-tree
  /// rebuild if needed) so the view equals a from-scratch build — the
  /// form that is persisted.
  std::shared_ptr<const IndexView> CompactViewFor(
      const std::shared_ptr<const StoreSnapshot>& snap) EXCLUDES(mu_);

  /// Installs a persisted index for `snap` after validating structure
  /// and digest against a rebuild of the derived levels. On failure
  /// nothing is installed — any previously cached view stays as it was
  /// (the next ViewFor advances or rebuilds it for the snapshot it is
  /// handed) — and *error says why.
  bool AdoptPersisted(const std::shared_ptr<const StoreSnapshot>& snap,
                      const PersistedIndex& persisted, std::string* error)
      EXCLUDES(mu_);

  const IndexOptions& options() const { return opt_; }

 private:
  std::shared_ptr<const IndexView> BuildFull(
      const std::shared_ptr<const StoreSnapshot>& snap) REQUIRES(mu_);
  std::shared_ptr<const IndexView> Advance(
      const std::shared_ptr<const StoreSnapshot>& snap) REQUIRES(mu_);
  void Install(const std::shared_ptr<const StoreSnapshot>& snap,
               std::shared_ptr<const IndexView> view) REQUIRES(mu_);

  const IndexOptions opt_;
  Mutex mu_;
  std::shared_ptr<const StoreSnapshot> base_ GUARDED_BY(mu_);
  std::shared_ptr<const IndexView> view_ GUARDED_BY(mu_);
};

}  // namespace otged

#endif  // OTGED_SEARCH_INDEX_GRAPH_INDEX_HPP_
