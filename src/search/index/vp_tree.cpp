#include "search/index/vp_tree.hpp"

#include <algorithm>
#include <limits>

namespace otged {

namespace {

bool IdIsDead(const std::vector<int>& dead, int id) {
  return std::binary_search(dead.begin(), dead.end(), id);
}

/// Validates that nodes[pos..pos+size) forms a well-shaped preorder
/// subtree (child sizes fit, radii ordered when both children exist).
bool ValidSubtree(const std::vector<VpTreeNode>& nodes, int pos, int size) {
  if (size <= 0) return size == 0;
  const VpTreeNode& n = nodes[static_cast<size_t>(pos)];
  const int rest = size - 1;
  if (n.inner < 0 || n.inner > rest) return false;
  const int outer = rest - n.inner;
  if (n.inner > 0 && n.r_in_max < 0) return false;
  if (outer > 0 && n.r_out_min < 0) return false;
  return ValidSubtree(nodes, pos + 1, n.inner) &&
         ValidSubtree(nodes, pos + 1 + n.inner, outer);
}

}  // namespace

std::shared_ptr<const VpTree> VpTree::Build(
    std::vector<std::shared_ptr<const StoreEntry>> entries) {
  auto tree = std::shared_ptr<VpTree>(new VpTree);
  const int n = static_cast<int>(entries.size());
  tree->nodes_.reserve(entries.size());
  tree->entries_.reserve(entries.size());
  tree->BuildRange(&entries, 0, n);
  tree->sorted_ids_.reserve(entries.size());
  for (const auto& e : tree->entries_) tree->sorted_ids_.push_back(e->id);
  std::sort(tree->sorted_ids_.begin(), tree->sorted_ids_.end());
  return tree;
}

void VpTree::BuildRange(
    std::vector<std::shared_ptr<const StoreEntry>>* scratch, int lo,
    int hi) {
  const int size = hi - lo;
  if (size <= 0) return;
  auto begin = scratch->begin() + lo;
  auto end = scratch->begin() + hi;
  // Deterministic vantage: the smallest id in the subtree.
  auto vp_it = std::min_element(
      begin, end, [](const auto& a, const auto& b) { return a->id < b->id; });
  std::iter_swap(begin, vp_it);
  const GraphInvariants& vi = (*begin)->invariants;

  const size_t my = nodes_.size();
  nodes_.emplace_back();
  entries_.push_back(*begin);

  const int rest = size - 1;
  if (rest == 0) return;
  std::vector<std::pair<int, std::shared_ptr<const StoreEntry>>> by_dist;
  by_dist.reserve(static_cast<size_t>(rest));
  for (auto it = begin + 1; it != end; ++it)
    by_dist.emplace_back(InvariantLowerBound(vi, (*it)->invariants), *it);
  std::sort(by_dist.begin(), by_dist.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->id < b.second->id;
            });
  for (int i = 0; i < rest; ++i)
    (*scratch)[static_cast<size_t>(lo + 1 + i)] =
        by_dist[static_cast<size_t>(i)].second;

  // Halving split: balanced depth regardless of distance ties; the two
  // stored radii keep search exact even when inner and outer overlap.
  const int inner = rest / 2;
  VpTreeNode& node = nodes_[my];
  node.inner = inner;
  node.r_in_max = inner > 0 ? by_dist[static_cast<size_t>(inner - 1)].first
                            : -1;
  node.r_out_min =
      rest > inner ? by_dist[static_cast<size_t>(inner)].first : -1;
  BuildRange(scratch, lo + 1, lo + 1 + inner);
  BuildRange(scratch, lo + 1 + inner, hi);
}

std::shared_ptr<const VpTree> VpTree::FromPersisted(
    std::vector<std::shared_ptr<const StoreEntry>> entries,
    std::vector<VpTreeNode> nodes) {
  if (entries.size() != nodes.size()) return nullptr;
  if (!ValidSubtree(nodes, 0, static_cast<int>(nodes.size()))) return nullptr;
  auto tree = std::shared_ptr<VpTree>(new VpTree);
  tree->nodes_ = std::move(nodes);
  tree->entries_ = std::move(entries);
  tree->sorted_ids_.reserve(tree->entries_.size());
  for (const auto& e : tree->entries_) tree->sorted_ids_.push_back(e->id);
  std::sort(tree->sorted_ids_.begin(), tree->sorted_ids_.end());
  // Duplicate ids cannot come from a snapshot; reject them.
  if (std::adjacent_find(tree->sorted_ids_.begin(),
                         tree->sorted_ids_.end()) != tree->sorted_ids_.end())
    return nullptr;
  return tree;
}

void VpTree::Range(const GraphInvariants& query, int tau,
                   const std::vector<int>& dead,
                   std::vector<std::pair<int, int>>* out,
                   long* visited) const {
  RangeImpl(query, tau, dead, 0, Size(), out, visited);
}

void VpTree::RangeImpl(const GraphInvariants& query, int tau,
                       const std::vector<int>& dead, int pos, int size,
                       std::vector<std::pair<int, int>>* out,
                       long* visited) const {
  if (size <= 0) return;
  const std::shared_ptr<const StoreEntry>& e =
      entries_[static_cast<size_t>(pos)];
  ++*visited;
  const int d = InvariantLowerBound(query, e->invariants);
  if (d <= tau && !IdIsDead(dead, e->id)) out->emplace_back(e->id, d);
  const VpTreeNode& node = nodes_[static_cast<size_t>(pos)];
  const int outer = size - 1 - node.inner;
  // Triangle inequality: for x in the inner child,
  // d(q, x) >= d(q, v) - d(v, x) >= d - r_in_max; for x in the outer
  // child, d(q, x) >= d(v, x) - d(q, v) >= r_out_min - d. A child whose
  // bound exceeds tau cannot contain a hit.
  if (node.inner > 0 && d - node.r_in_max <= tau)
    RangeImpl(query, tau, dead, pos + 1, node.inner, out, visited);
  if (outer > 0 && node.r_out_min - d <= tau)
    RangeImpl(query, tau, dead, pos + 1 + node.inner, outer, out, visited);
}

void VpTree::Knn(const GraphInvariants& query, size_t k,
                 const std::vector<int>& dead,
                 std::vector<std::pair<int, int>>* best,
                 long* visited) const {
  if (k == 0) {
    best->clear();
    return;
  }
  // Max-heap on (distance, id); the root is the current worst keeper.
  std::make_heap(best->begin(), best->end());
  while (best->size() > k) {
    std::pop_heap(best->begin(), best->end());
    best->pop_back();
  }
  KnnImpl(query, k, dead, 0, Size(), best, visited);
  std::sort_heap(best->begin(), best->end());
}

void VpTree::KnnImpl(const GraphInvariants& query, size_t k,
                     const std::vector<int>& dead, int pos, int size,
                     std::vector<std::pair<int, int>>* heap,
                     long* visited) const {
  if (size <= 0) return;
  const std::shared_ptr<const StoreEntry>& e =
      entries_[static_cast<size_t>(pos)];
  ++*visited;
  const int d = InvariantLowerBound(query, e->invariants);
  if (!IdIsDead(dead, e->id)) {
    const std::pair<int, int> cand(d, e->id);
    if (heap->size() < k) {
      heap->push_back(cand);
      std::push_heap(heap->begin(), heap->end());
    } else if (cand < heap->front()) {
      std::pop_heap(heap->begin(), heap->end());
      heap->back() = cand;
      std::push_heap(heap->begin(), heap->end());
    }
  }
  const VpTreeNode& node = nodes_[static_cast<size_t>(pos)];
  const int outer = size - 1 - node.inner;
  const int lb_in = node.inner > 0 ? std::max(0, d - node.r_in_max) : -1;
  const int lb_out = outer > 0 ? std::max(0, node.r_out_min - d) : -1;
  // Visit the nearer child first so the heap tightens before the other
  // child's bound is tested. Prune only on a strictly larger bound: at
  // equality a child may still hold an equal-distance, smaller-id pair.
  auto worst = [&]() {
    return heap->size() < k ? std::numeric_limits<int>::max()
                            : heap->front().first;
  };
  const bool inner_first = node.inner > 0 && (outer == 0 || lb_in <= lb_out);
  for (int leg = 0; leg < 2; ++leg) {
    const bool take_inner = (leg == 0) == inner_first;
    if (take_inner) {
      if (node.inner > 0 && lb_in <= worst())
        KnnImpl(query, k, dead, pos + 1, node.inner, heap, visited);
    } else {
      if (outer > 0 && lb_out <= worst())
        KnnImpl(query, k, dead, pos + 1 + node.inner, outer, heap, visited);
    }
  }
}

}  // namespace otged
