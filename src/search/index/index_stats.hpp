/// \file index_stats.hpp
/// \brief Per-query observability for the candidate-generation index.
#ifndef OTGED_SEARCH_INDEX_INDEX_STATS_HPP_
#define OTGED_SEARCH_INDEX_INDEX_STATS_HPP_

namespace otged {

/// What the index did for one query (or, after Merge, a batch). Pruning
/// is attributed to the *first* level that dismissed a graph: partition
/// screening (size signature / degree envelope), the label posting walk
/// (including the WL-hash table at tau == 0), or VP-tree triangle
/// pruning for top-k. `scanned` counts every graph in the pinned
/// snapshot, so `scanned == candidates + PrunedTotal()` per query.
struct IndexStats {
  long scanned = 0;           ///< corpus size the query ran against
  long partition_pruned = 0;  ///< dismissed without opening the partition
  long label_pruned = 0;      ///< dismissed by the posting walk / WL table
  long vptree_pruned = 0;     ///< dismissed by VP-tree triangle pruning
  long candidates = 0;        ///< survivors handed to the filter cascade
  long partitions_seen = 0;
  long partitions_opened = 0;
  long vp_nodes_visited = 0;  ///< metric evaluations inside the VP-tree
  double partition_us = 0.0;  ///< wall time in partition screening
  double label_us = 0.0;      ///< wall time in posting walks
  double vptree_us = 0.0;     ///< wall time in VP-tree traversals

  long PrunedTotal() const {
    return partition_pruned + label_pruned + vptree_pruned;
  }

  void Merge(const IndexStats& o) {
    scanned += o.scanned;
    partition_pruned += o.partition_pruned;
    label_pruned += o.label_pruned;
    vptree_pruned += o.vptree_pruned;
    candidates += o.candidates;
    partitions_seen += o.partitions_seen;
    partitions_opened += o.partitions_opened;
    vp_nodes_visited += o.vp_nodes_visited;
    partition_us += o.partition_us;
    label_us += o.label_us;
    vptree_us += o.vptree_us;
  }
};

}  // namespace otged

#endif  // OTGED_SEARCH_INDEX_INDEX_STATS_HPP_
