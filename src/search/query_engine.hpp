/// \file query_engine.hpp
/// \brief Parallel filter–verify query serving over a dynamic GraphStore.
///
/// The engine answers range queries (all graphs with GED(q, g) <= tau)
/// and top-k queries (the k nearest graphs by exact GED, ties broken by
/// id) by driving the FilterCascade over a work-stealing thread pool.
/// Every query pins one StoreSnapshot for its whole lifetime, so serving
/// interleaves safely with GraphStore::Insert/Erase: the result is exact
/// for the snapshot whose epoch is reported in QueryStats. Results are
/// bit-identical for any thread count: parallel loops write into
/// per-candidate slots and statistics are merged from per-worker buffers
/// with commutative sums, so scheduling order never leaks into the output.
///
/// With the index enabled (the default), candidate generation goes
/// through GraphIndex first: the partition/label levels produce a range
/// candidate list and the VP-tree seeds top-k, so the cascade only sees
/// a sublinear slice of the store. Index pruning uses the same
/// admissible bounds a full scan's tier 0 would, so hits are
/// byte-identical with the index on or off; pairs the index dismissed
/// are folded into the query's CascadeStats as `pruned_index`, keeping
/// `candidates == corpus size` per query and all counter reconciliation
/// intact.
///
/// Pairs whose exact distance the cascade proves are remembered in a
/// sharded LRU bound cache keyed by (query content fingerprint, stable
/// graph id); repeat queries skip every tier for cached pairs. Only
/// proven-exact distances are cached — a pure function of the pair — so
/// warm results stay correct and deterministic for any tau. Entries of an
/// erased graph are invalidated lazily at the next query (stable ids are
/// never reused, so stale entries can never alias a new graph).
///
/// Top-k runs in three deterministic phases:
///   A. invariant lower bounds for every stored graph (parallel, O(n));
///   B. heuristic upper bounds for the k most promising candidates — the
///      largest of those UBs is a provable cap tau0 on the k-th best
///      distance;
///   C. exact bounded-distance verification (parallel) of every candidate
///      whose lower bound is within tau0, then a final sort by (ged, id).
#ifndef OTGED_SEARCH_QUERY_ENGINE_HPP_
#define OTGED_SEARCH_QUERY_ENGINE_HPP_

#include <memory>
#include <vector>

#include "core/thread_annotations.hpp"

#include "search/bound_cache.hpp"
#include "search/filter_cascade.hpp"
#include "search/graph_store.hpp"
#include "search/index/graph_index.hpp"
#include "search/work_stealing_pool.hpp"

namespace otged {

struct EngineOptions {
  int num_threads = 0;  ///< 0 = std::thread::hardware_concurrency()
  CascadeOptions cascade;
  bool use_bound_cache = true;    ///< cache proven-exact pair distances
  size_t cache_capacity = 65536;  ///< bound-cache entry budget
  /// Generate candidates through the multi-level index instead of
  /// scanning every stored graph. The index prunes only via admissible
  /// lower bounds, so results are byte-identical either way; turning it
  /// off is for verification and micro-benchmarks.
  bool use_index = true;
  IndexOptions index;
  /// Top-k verifies every graph whose lower bound is under the cap set
  /// by the k seeds' upper bounds, so a loose greedy bound on one seed
  /// drags in a large slice of the corpus. Each seed pair therefore
  /// gets a budgeted branch-and-bound refinement (node-expansion budget
  /// below; 0 disables; runs the cascade's parallel exact verifier
  /// when `cascade.parallel_exact_threads` > 1) before the cap is
  /// taken — the incumbent it returns is a feasible edit path, so the
  /// cap stays admissible and
  /// results are byte-identical, only cheaper. k seeds per query pay
  /// this; the collapsed verification set repays it at any real corpus
  /// size.
  long topk_seed_refine_budget = 50'000;
  /// How many low-bound candidates beyond k get a refined upper bound
  /// before the cap is taken. The k-th *smallest* refined bound over the
  /// whole probe pool caps the k-th best distance (each probe admits a
  /// feasible path), so a pool that contains the true neighbors yields a
  /// near-tight cap even when the k lowest-LB graphs are false friends —
  /// ties in the weak invariant bound routinely rank unrelated graphs
  /// ahead of a query's true cluster. 0 = cap from the k seeds alone.
  int topk_seed_probes = 16;
};

/// Per-query serving telemetry.
struct QueryStats {
  double wall_ms = 0.0;    ///< latency of this query: for a single call,
                           ///< its wall time; within a batch, the time
                           ///< from batch start until this query's last
                           ///< pair evaluation completed — so batch-served
                           ///< queries report individual latencies instead
                           ///< of all inheriting the whole-batch wall
  uint64_t epoch = 0;      ///< store epoch the query was served against
  uint64_t trace_id = 0;   ///< process-unique query id; TraceEvents carry
                           ///< it (duplicate queries in a batch share one)
  CascadeStats cascade;    ///< tier-by-tier pruning and solver counts
  IndexStats index;        ///< what the candidate index did (zeros when
                           ///< the engine runs without an index)
};

/// One search hit, shared by range and top-k results. `id` is the stable
/// GraphStore id. `ged` is the best distance the engine needed for its
/// decision: the exact distance iff `exact_distance`, otherwise a
/// feasible upper bound (an unproven distance arises only when the exact
/// tier exhausted its budget — the candidate is then kept conservatively,
/// since the cascade never dismisses without an admissible-bound proof).
///
/// `exact_distance` defaults to false for every hit kind: a distance is
/// only exact when a tier proved it, and every construction site must
/// say so explicitly. (RangeHit and TopKHit used to be separate structs
/// whose defaults silently disagreed — false vs true — which invited
/// misreads in call sites that default-construct hits.)
struct SearchHit {
  int id = -1;
  int ged = -1;
  bool exact_distance = false;
};
using RangeHit = SearchHit;
using TopKHit = SearchHit;

struct RangeResult {
  std::vector<RangeHit> hits;  ///< ascending by id
  QueryStats stats;
};

/// Top-k hits are exact distances ascending (ged, id), except pairs whose
/// exact tier ran out of budget (`exact_distance == false`).
struct TopKResult {
  std::vector<TopKHit> hits;  ///< ascending by (ged, id)
  QueryStats stats;
};

/// Thread-safe for concurrent callers: each call (single query or batch)
/// monopolizes the engine's non-reentrant pool, so concurrent calls on
/// one engine queue up behind each other; inside a call, candidates — and
/// for batches, all (query, candidate) pairs at once — spread over every
/// worker. Store mutations never block serving: a call pins the snapshot
/// current at its start and is oblivious to later Insert/Erase.
class QueryEngine {
 public:
  explicit QueryEngine(const GraphStore* store,
                       const EngineOptions& opt = {});

  /// All graphs with GED(query, g) <= tau; candidates are verified in
  /// parallel across the pool.
  RangeResult Range(const Graph& query, int tau) const EXCLUDES(serve_mu_);

  /// The k nearest graphs by exact GED, ascending (ged, id).
  TopKResult TopK(const Graph& query, int k) const EXCLUDES(serve_mu_);

  /// Batch variants: all queries share one snapshot and one pool pass per
  /// phase — the (query x candidate) pair grid is flattened into a single
  /// parallel loop, so a straggler pair of one query overlaps with other
  /// queries' work instead of idling the pool at a per-query barrier.
  /// Each result equals the corresponding single-query call on the same
  /// snapshot and cache state; `stats.wall_ms` reports each query's own
  /// completion time within the batch (see QueryStats).
  /// Identical queries in one batch are evaluated once and share one
  /// result (so their entries are always byte-identical to each other;
  /// serving them as *sequential* single calls could instead tighten the
  /// later twin's non-exact distances from the cache the earlier one
  /// warmed).
  std::vector<RangeResult> RangeBatch(const std::vector<Graph>& queries,
                                      int tau) const EXCLUDES(serve_mu_);
  std::vector<TopKResult> TopKBatch(const std::vector<Graph>& queries,
                                    int k) const EXCLUDES(serve_mu_);

  const GraphStore& store() const { return *store_; }
  int num_threads() const { return pool_->num_threads(); }
  /// Current bound-cache occupancy (proven-exact pairs retained).
  size_t CacheSize() const { return cache_.Size(); }
  /// The candidate-generation index, or nullptr when use_index is off.
  /// Exposed for persistence (store_serialize saves/adopts through it)
  /// and for inspection; serving maintains it automatically.
  GraphIndex* index() const { return index_.get(); }

 private:
  /// Per-query precomputation shared by all of its pair evaluations.
  struct QueryContext {
    GraphInvariants qi;
    uint64_t fp = 0;        ///< content fingerprint (bound-cache key half)
    uint64_t trace_id = 0;  ///< process-unique id stamped on TraceEvents
  };

  /// Context of one deferred tier-4 evaluation: the cascade's deferral
  /// plus what EvalPair stashed so the trace can be completed after the
  /// batch solve.
  struct DeferredEval {
    DeferredExact d;
    CascadeProbe probe;
    double t0 = 0.0;
    bool tracing = false;
  };

  /// Answers one (query, snapshot slot) pair: bound cache first, then the
  /// cascade; proven-exact outcomes are written back to the cache. With
  /// `dctx` non-null a pair the cheap tiers cannot settle is deferred
  /// (dctx->d.pending set, placeholder verdict returned) for a later
  /// ResolveDeferred batch instead of entering tier 4 here.
  CascadeVerdict EvalPair(const Graph& query, const QueryContext& qc,
                          const StoreSnapshot& snap, int slot, int tau,
                          bool need_distance, CascadeStats* stats,
                          DeferredEval* dctx = nullptr) const;

  /// Completes one deferred pair from the batch solver's result: verdict
  /// assembly (FinishDeferredExact), bound-cache write-back, trace event.
  CascadeVerdict FinishDeferredPair(const QueryContext& qc,
                                    const StoreSnapshot& snap, int slot,
                                    const DeferredEval& dctx,
                                    const GedSearchResult& exact,
                                    CascadeStats* stats) const;

  /// Solves every pending deferral of one pool pass in a single
  /// ExactSearchBatch — all queries' hard pairs share the exact pool's
  /// rounds — and writes the completed verdicts back into their slots.
  /// `tasks[t]` gives the (unique query, slot) behind defers[t]; stats
  /// are attributed per unique query into `stats[u]`.
  void ResolveDeferred(const std::vector<std::pair<int, int>>& tasks,
                       const std::vector<DeferredEval>& defers,
                       const StoreSnapshot& snap,
                       const std::vector<QueryContext>& ctx,
                       std::vector<CascadeStats>* stats,
                       std::vector<CascadeVerdict>* verdicts) const;

  /// Pins the current snapshot, first draining the store's erase log into
  /// cache invalidations.
  std::shared_ptr<const StoreSnapshot> PinSnapshot() const
      REQUIRES(serve_mu_);

  /// Shared-pass implementations.
  std::vector<RangeResult> RangeBatchLocked(
      const std::vector<const Graph*>& queries, int tau) const
      REQUIRES(serve_mu_);
  std::vector<TopKResult> TopKBatchLocked(
      const std::vector<const Graph*>& queries, int k) const
      REQUIRES(serve_mu_);

  const GraphStore* store_;
  FilterCascade cascade_;
  /// Mutable because serving (const) advances the cached view; GraphIndex
  /// is internally synchronized.
  std::unique_ptr<GraphIndex> index_;
  std::unique_ptr<WorkStealingPool> pool_;
  mutable Mutex serve_mu_;  ///< one call at a time on the pool
  bool use_cache_;
  long topk_refine_budget_;
  int topk_probes_;
  mutable BoundCache cache_;
  mutable size_t erase_cursor_ GUARDED_BY(serve_mu_) = 0;
};

}  // namespace otged

#endif  // OTGED_SEARCH_QUERY_ENGINE_HPP_
