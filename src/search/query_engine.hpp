/// \file query_engine.hpp
/// \brief Parallel filter–verify query serving over a GraphStore.
///
/// The engine answers range queries (all graphs with GED(q, g) <= tau)
/// and top-k queries (the k nearest graphs by exact GED, ties broken by
/// id) by driving the FilterCascade over a work-stealing thread pool.
/// Results are bit-identical for any thread count: parallel loops write
/// into per-candidate slots and statistics are merged from per-worker
/// buffers with commutative sums, so scheduling order never leaks into
/// the output.
///
/// Top-k runs in three deterministic phases:
///   A. invariant lower bounds for every stored graph (parallel, O(n));
///   B. heuristic upper bounds for the k most promising candidates — the
///      largest of those UBs is a provable cap tau0 on the k-th best
///      distance;
///   C. exact bounded-distance verification (parallel) of every candidate
///      whose lower bound is within tau0, then a final sort by (ged, id).
#ifndef OTGED_SEARCH_QUERY_ENGINE_HPP_
#define OTGED_SEARCH_QUERY_ENGINE_HPP_

#include <memory>
#include <mutex>
#include <vector>

#include "search/filter_cascade.hpp"
#include "search/graph_store.hpp"
#include "search/work_stealing_pool.hpp"

namespace otged {

struct EngineOptions {
  int num_threads = 0;  ///< 0 = std::thread::hardware_concurrency()
  CascadeOptions cascade;
};

/// Per-query serving telemetry.
struct QueryStats {
  double wall_ms = 0.0;    ///< wall time of this query
  CascadeStats cascade;    ///< tier-by-tier pruning and solver counts
};

/// One range-query hit. `ged` is the best distance the cascade needed to
/// establish membership: exact when `exact_distance`, otherwise a
/// feasible upper bound (normally <= tau; it can exceed tau only when
/// the exact tier exhausted its budget, in which case the candidate is
/// kept conservatively — the cascade never dismisses without an
/// admissible-bound proof).
struct RangeHit {
  int id = -1;
  int ged = -1;
  bool exact_distance = false;
};

struct RangeResult {
  std::vector<RangeHit> hits;  ///< ascending by id
  QueryStats stats;
};

/// One top-k hit; `ged` is the exact distance (ties broken by id) unless
/// the exact tier ran out of budget for this pair, in which case it is
/// the best feasible upper bound and `exact_distance` is false.
struct TopKHit {
  int id = -1;
  int ged = -1;
  bool exact_distance = true;
};

struct TopKResult {
  std::vector<TopKHit> hits;  ///< ascending by (ged, id)
  QueryStats stats;
};

/// Thread-safe for concurrent callers: each query monopolizes the engine's
/// pool (queries parallelize internally over candidates), so concurrent
/// Range/TopK calls on one engine serialize against each other rather
/// than interleave on the non-reentrant pool.
class QueryEngine {
 public:
  explicit QueryEngine(const GraphStore* store,
                       const EngineOptions& opt = {});

  /// All graphs with GED(query, g) <= tau; candidates are verified in
  /// parallel across the pool.
  RangeResult Range(const Graph& query, int tau) const;

  /// The k nearest graphs by exact GED, ascending (ged, id).
  TopKResult TopK(const Graph& query, int k) const;

  /// Batch variants: queries are answered one at a time, each spreading
  /// its candidate set over the full pool, so per-query latency stays flat
  /// while the batch saturates every thread.
  std::vector<RangeResult> RangeBatch(const std::vector<Graph>& queries,
                                      int tau) const;
  std::vector<TopKResult> TopKBatch(const std::vector<Graph>& queries,
                                    int k) const;

  const GraphStore& store() const { return *store_; }
  int num_threads() const { return pool_->num_threads(); }

 private:
  const GraphStore* store_;
  FilterCascade cascade_;
  std::unique_ptr<WorkStealingPool> pool_;
  mutable std::mutex serve_mu_;  ///< one query at a time on the pool
};

}  // namespace otged

#endif  // OTGED_SEARCH_QUERY_ENGINE_HPP_
