#include "search/query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "heuristics/bipartite.hpp"

namespace otged {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

CascadeStats MergeWorkerStats(const std::vector<CascadeStats>& buffers) {
  CascadeStats total;
  for (const CascadeStats& s : buffers) total.Merge(s);
  return total;
}

}  // namespace

QueryEngine::QueryEngine(const GraphStore* store, const EngineOptions& opt)
    : store_(store), cascade_(store, opt.cascade) {
  int threads = opt.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  pool_ = std::make_unique<WorkStealingPool>(threads);
}

RangeResult QueryEngine::Range(const Graph& query, int tau) const {
  std::lock_guard<std::mutex> serve_lock(serve_mu_);
  auto start = std::chrono::steady_clock::now();
  const int n = store_->Size();
  const GraphInvariants qi = ComputeInvariants(query);

  std::vector<CascadeVerdict> verdicts(n);
  std::vector<CascadeStats> worker_stats(pool_->num_threads());
  pool_->ParallelFor(n, /*grain=*/4, [&](int64_t i, int worker) {
    verdicts[i] = cascade_.BoundedDistance(query, qi, static_cast<int>(i),
                                           tau, /*need_distance=*/false,
                                           &worker_stats[worker]);
  });

  RangeResult res;
  for (int i = 0; i < n; ++i) {
    if (verdicts[i].within)
      res.hits.push_back({i, verdicts[i].ged, verdicts[i].exact_distance});
  }
  res.stats.cascade = MergeWorkerStats(worker_stats);
  res.stats.wall_ms = ElapsedMs(start);
  return res;
}

TopKResult QueryEngine::TopK(const Graph& query, int k) const {
  std::lock_guard<std::mutex> serve_lock(serve_mu_);
  auto start = std::chrono::steady_clock::now();
  TopKResult res;
  const int n = store_->Size();
  k = std::min(k, n);
  if (k <= 0) {
    res.stats.wall_ms = ElapsedMs(start);
    return res;
  }
  const GraphInvariants qi = ComputeInvariants(query);

  // --- phase A: invariant lower bound for every stored graph -----------
  std::vector<int> lb(n);
  pool_->ParallelFor(n, /*grain=*/64, [&](int64_t i, int) {
    lb[i] = InvariantLowerBound(qi, store_->invariants(static_cast<int>(i)));
  });

  // --- phase B: cap the k-th best distance ------------------------------
  // The k candidates with the smallest (lb, id) each admit a feasible
  // edit path no longer than their Classic upper bound; the largest of
  // those k upper bounds therefore caps the true k-th best distance.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                   [&](int a, int b) {
                     return lb[a] != lb[b] ? lb[a] < lb[b] : a < b;
                   });
  std::vector<int> seeds(order.begin(), order.begin() + k);
  std::vector<int> seed_ub(k);
  pool_->ParallelFor(k, /*grain=*/1, [&](int64_t s, int) {
    auto [g1, g2] = OrderBySize(query, store_->graph(seeds[s]));
    seed_ub[s] = ClassicGed(*g1, *g2).ged;
  });
  const int tau0 = *std::max_element(seed_ub.begin(), seed_ub.end());

  // --- phase C: exact verification of surviving candidates -------------
  std::vector<int> survivors;
  for (int i = 0; i < n; ++i)
    if (lb[i] <= tau0) survivors.push_back(i);

  std::vector<CascadeVerdict> verdicts(survivors.size());
  std::vector<CascadeStats> worker_stats(pool_->num_threads());
  pool_->ParallelFor(static_cast<int64_t>(survivors.size()), /*grain=*/2,
                     [&](int64_t s, int worker) {
                       verdicts[s] = cascade_.BoundedDistance(
                           query, qi, survivors[s], tau0,
                           /*need_distance=*/true, &worker_stats[worker]);
                     });

  for (size_t s = 0; s < survivors.size(); ++s)
    if (verdicts[s].within)
      res.hits.push_back(
          {survivors[s], verdicts[s].ged, verdicts[s].exact_distance});
  std::sort(res.hits.begin(), res.hits.end(),
            [](const TopKHit& a, const TopKHit& b) {
              return a.ged != b.ged ? a.ged < b.ged : a.id < b.id;
            });
  if (static_cast<int>(res.hits.size()) > k) res.hits.resize(k);

  // Phase A screened all n candidates; fold the ones that never reached
  // the cascade into its tier-0 counter so the stats describe the query.
  res.stats.cascade = MergeWorkerStats(worker_stats);
  const long screened = n - static_cast<long>(survivors.size());
  res.stats.cascade.candidates += screened;
  res.stats.cascade.pruned_invariant += screened;
  res.stats.wall_ms = ElapsedMs(start);
  return res;
}

std::vector<RangeResult> QueryEngine::RangeBatch(
    const std::vector<Graph>& queries, int tau) const {
  std::vector<RangeResult> out;
  out.reserve(queries.size());
  for (const Graph& q : queries) out.push_back(Range(q, tau));
  return out;
}

std::vector<TopKResult> QueryEngine::TopKBatch(
    const std::vector<Graph>& queries, int k) const {
  std::vector<TopKResult> out;
  out.reserve(queries.size());
  for (const Graph& q : queries) out.push_back(TopK(q, k));
  return out;
}

}  // namespace otged
