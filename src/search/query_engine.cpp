#include "search/query_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <thread>
#include <unordered_map>
#include <utility>

#include "graph/graph_io.hpp"
#include "heuristics/bipartite.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace otged {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Allocates `n` consecutive process-unique query trace ids, returning
/// the first. Ids start at 1 so 0 always means "untraced".
uint64_t NextTraceIds(int n) {
  static std::atomic<uint64_t> seq{1};
  return seq.fetch_add(static_cast<uint64_t>(n),
                       std::memory_order_relaxed);
}

/// Per-query completion times within one batch pool pass. Each worker
/// overwrites its own (worker, query) cell after finishing a pair — the
/// value is monotone within a worker, so the max over workers is the
/// time the query's last pair completed. No atomics, no contention.
class QueryWallClock {
 public:
  QueryWallClock(int workers, int nu,
                 std::chrono::steady_clock::time_point start)
      : start_(start), nu_(nu),
        done_ms_(static_cast<size_t>(workers) * nu, 0.0) {}

  void MarkDone(int worker, int u) {
    done_ms_[static_cast<size_t>(worker) * nu_ + u] = ElapsedMs(start_);
  }

  /// Wall time of query `u`, falling back to `batch_ms` for queries that
  /// never ran a pair (empty corpus).
  double WallMs(int u, double batch_ms) const {
    double wall = 0.0;
    for (size_t w = 0; w * nu_ + u < done_ms_.size(); ++w)
      wall = std::max(wall, done_ms_[w * nu_ + u]);
    return wall > 0.0 ? wall : batch_ms;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  size_t nu_;
  std::vector<double> done_ms_;
};

// Identical queries in one batch are evaluated once and share the
// result. Besides not paying twice, this keeps batch output
// deterministic with the bound cache on: two tasks for the same
// (fingerprint, graph) key racing a lookup against the other's insert
// could otherwise settle on differently-tight (though always correct)
// distances depending on scheduling. Fingerprint equality is confirmed
// by comparing the actual graphs, so a 64-bit collision between
// distinct queries degrades to two evaluations, never a shared answer.
std::vector<int> DedupByFingerprint(const std::vector<const Graph*>& queries,
                                    const std::vector<uint64_t>& fp,
                                    std::vector<int>* uniq_of) {
  std::vector<int> uniq;
  std::unordered_multimap<uint64_t, int> by_fp;  // fp -> unique index
  uniq_of->resize(fp.size());
  for (size_t q = 0; q < fp.size(); ++q) {
    int found = -1;
    auto [lo, hi] = by_fp.equal_range(fp[q]);
    for (auto it = lo; it != hi; ++it) {
      if (*queries[uniq[it->second]] == *queries[q]) {
        found = it->second;
        break;
      }
    }
    if (found < 0) {
      found = static_cast<int>(uniq.size());
      uniq.push_back(static_cast<int>(q));
      by_fp.emplace(fp[q], found);
    }
    (*uniq_of)[q] = found;
  }
  return uniq;
}

}  // namespace

QueryEngine::QueryEngine(const GraphStore* store, const EngineOptions& opt)
    : store_(store),
      cascade_(opt.cascade),
      use_cache_(opt.use_bound_cache),
      topk_refine_budget_(opt.topk_seed_refine_budget),
      topk_probes_(opt.topk_seed_probes),
      cache_(opt.cache_capacity) {
  OTGED_CHECK(store_ != nullptr);
  if (opt.use_index) index_ = std::make_unique<GraphIndex>(opt.index);
  int threads = opt.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  pool_ = std::make_unique<WorkStealingPool>(threads);
}

std::shared_ptr<const StoreSnapshot> QueryEngine::PinSnapshot() const {
  // Pin and drain atomically (one store-lock acquisition), then evict.
  // Atomicity matters for Restore (the one mutation that can rebind an
  // id): the drained ids are exactly those retired up to the pinned
  // epoch, so entries for ids the pinned snapshot binds differently are
  // evicted before any lookup, while a Restore landing after the pin
  // leaves its log entries for the NEXT query's drain — which also
  // covers anything this query inserts against the older binding. For
  // plain Erase the drain is hygiene, not correctness: ids are never
  // reused, so a stale entry still holds the right distance.
  if (!use_cache_) return store_->Snapshot();
  std::vector<int> erased;
  auto snap = store_->SnapshotAndErased(&erase_cursor_, &erased);
  cache_.EraseGraphs(erased);
  return snap;
}

CascadeVerdict QueryEngine::EvalPair(const Graph& query,
                                     const QueryContext& qc,
                                     const StoreSnapshot& snap, int slot,
                                     int tau, bool need_distance,
                                     CascadeStats* stats,
                                     DeferredEval* dctx) const {
  const int gid = snap.id(slot);
  const bool tracing =
      OTGED_TELEMETRY_ON() && telemetry::GlobalTrace().enabled();
  const double t0 = tracing ? telemetry::NowUs() : 0.0;
  if (use_cache_) {
    if (std::optional<int> ged = cache_.Lookup(qc.fp, gid)) {
      stats->candidates++;
      stats->cache_hits++;
      // Mirror both stats into the global counters: a cache hit is a
      // candidate the cascade never saw, so the cascade's own candidate
      // counter must be topped up here for totals to reconcile.
      OTGED_COUNT("otged_cascade_candidates_total",
                  "candidate pairs fed into the filter cascade");
      OTGED_COUNT("otged_cascade_cache_hits_total",
                  "candidate pairs answered from the bound cache");
      CascadeVerdict v;
      v.within = *ged <= tau;
      v.ged = *ged;
      v.exact_distance = true;
      v.tier = CascadeTier::kCache;
      if (tracing) {
        telemetry::TraceEvent e;
        e.query_id = qc.trace_id;
        e.graph_id = gid;
        e.tier = static_cast<int>(v.tier);
        e.ged = v.ged;
        e.within = v.within;
        e.exact = true;
        e.cache_hit = true;
        e.total_us = telemetry::NowUs() - t0;
        telemetry::GlobalTrace().Record(e);
      }
      return v;
    }
  }
  CascadeProbe probe;
  CascadeVerdict v = cascade_.BoundedDistance(
      query, qc.qi, snap.graph(slot), snap.invariants(slot), tau,
      need_distance, stats, tracing ? &probe : nullptr,
      dctx != nullptr ? &dctx->d : nullptr);
  if (dctx != nullptr && dctx->d.pending) {
    // Deferred to the batch: stash what FinishDeferredPair needs and
    // hand back the placeholder (the caller overwrites it after the
    // batch solve).
    dctx->tracing = tracing;
    dctx->t0 = t0;
    if (tracing) dctx->probe = probe;
    return v;
  }
  if (use_cache_ && v.exact_distance) cache_.Insert(qc.fp, gid, v.ged);
  if (tracing) {
    telemetry::TraceEvent e;
    e.query_id = qc.trace_id;
    e.graph_id = gid;
    e.tier = static_cast<int>(v.tier);
    e.lb = probe.lb;
    e.ub = probe.ub;
    e.ged = v.ged;
    e.within = v.within;
    e.exact = v.exact_distance;
    e.exact_expansions = probe.exact_expansions;
    std::copy(probe.tier_us, probe.tier_us + 5, e.tier_us);
    e.total_us = telemetry::NowUs() - t0;
    telemetry::GlobalTrace().Record(e);
  }
  return v;
}

CascadeVerdict QueryEngine::FinishDeferredPair(const QueryContext& qc,
                                               const StoreSnapshot& snap,
                                               int slot,
                                               const DeferredEval& dctx,
                                               const GedSearchResult& exact,
                                               CascadeStats* stats) const {
  CascadeVerdict v = cascade_.FinishDeferredExact(dctx.d, exact, stats);
  const int gid = snap.id(slot);
  if (use_cache_ && v.exact_distance) cache_.Insert(qc.fp, gid, v.ged);
  if (dctx.tracing) {
    telemetry::TraceEvent e;
    e.query_id = qc.trace_id;
    e.graph_id = gid;
    e.tier = static_cast<int>(v.tier);
    e.lb = dctx.d.lb;
    e.ub = v.ged;
    e.ged = v.ged;
    e.within = v.within;
    e.exact = v.exact_distance;
    e.exact_expansions = exact.expansions;
    // tier_us[4] stays ~0: the exact tier ran inside a shared batch, so
    // its wall time is not attributable to this one pair. total_us does
    // include the wait for the whole batch.
    std::copy(dctx.probe.tier_us, dctx.probe.tier_us + 5, e.tier_us);
    e.total_us = telemetry::NowUs() - dctx.t0;
    telemetry::GlobalTrace().Record(e);
  }
  return v;
}

void QueryEngine::ResolveDeferred(
    const std::vector<std::pair<int, int>>& tasks,
    const std::vector<DeferredEval>& defers, const StoreSnapshot& snap,
    const std::vector<QueryContext>& ctx, std::vector<CascadeStats>* stats,
    std::vector<CascadeVerdict>* verdicts) const {
  std::vector<size_t> idx;
  for (size_t t = 0; t < defers.size(); ++t)
    if (defers[t].d.pending) idx.push_back(t);
  if (idx.empty()) return;
  std::vector<FilterCascade::ExactBatchRequest> reqs;
  std::vector<CascadeStats*> sinks;
  reqs.reserve(idx.size());
  sinks.reserve(idx.size());
  const long budget = cascade_.options().exact_budget;
  for (const size_t t : idx) {
    const DeferredExact& d = defers[t].d;
    reqs.push_back({d.g1, d.g2, budget, d.ub});
    sinks.push_back(&(*stats)[static_cast<size_t>(tasks[t].first)]);
  }
  const std::vector<GedSearchResult> ex =
      cascade_.ExactSearchBatch(reqs, sinks);
  for (size_t i = 0; i < idx.size(); ++i) {
    const size_t t = idx[i];
    const auto [u, slot] = tasks[t];
    (*verdicts)[t] = FinishDeferredPair(
        ctx[static_cast<size_t>(u)], snap, slot, defers[t], ex[i],
        &(*stats)[static_cast<size_t>(u)]);
  }
}

std::vector<RangeResult> QueryEngine::RangeBatchLocked(
    const std::vector<const Graph*>& queries, int tau) const {
  auto start = std::chrono::steady_clock::now();
  auto snap = PinSnapshot();
  const int n = snap->Size();
  const int nq = static_cast<int>(queries.size());

  std::vector<uint64_t> fp(nq);
  for (int q = 0; q < nq; ++q) fp[q] = GraphContentFingerprint(*queries[q]);
  std::vector<int> uniq_of;
  const std::vector<int> uniq = DedupByFingerprint(queries, fp, &uniq_of);
  const int nu = static_cast<int>(uniq.size());

  const uint64_t trace_base = NextTraceIds(nu);
  std::vector<QueryContext> ctx(nu);
  for (int u = 0; u < nu; ++u)
    ctx[u] = {ComputeInvariants(*queries[uniq[u]]), fp[uniq[u]],
              trace_base + static_cast<uint64_t>(u)};

  QueryWallClock wall_clock(pool_->num_threads(), nu, start);

  // Candidate generation: the index's partition/label levels, or every
  // slot when running without an index. Index pruning is by admissible
  // bounds only, so the surviving set is a superset of the true hits and
  // the cascade's own tier 0 re-screens each survivor — results are
  // byte-identical either way.
  std::shared_ptr<const IndexView> iview;
  if (index_ != nullptr && n > 0) iview = index_->ViewFor(snap);
  std::vector<std::vector<int>> cand(nu);  ///< slots, ascending
  std::vector<IndexStats> istats(nu);
  if (iview != nullptr) {
    pool_->ParallelFor(nu, /*grain=*/1, [&](int64_t u, int worker) {
      std::vector<int> ids;
      iview->RangeCandidates(ctx[u].qi, tau, &ids, &istats[u]);
      cand[u].reserve(ids.size());
      for (const int id : ids) cand[u].push_back(snap->SlotOf(id));
      wall_clock.MarkDone(worker, static_cast<int>(u));
    });
  } else {
    for (int u = 0; u < nu; ++u) {
      cand[u].resize(static_cast<size_t>(n));
      std::iota(cand[u].begin(), cand[u].end(), 0);
    }
  }
  std::vector<std::pair<int, int>> tasks;  ///< (unique query, slot)
  for (int u = 0; u < nu; ++u)
    for (const int slot : cand[u]) tasks.emplace_back(u, slot);

  std::vector<CascadeVerdict> verdicts(tasks.size());
  std::vector<std::vector<CascadeStats>> worker_stats(
      pool_->num_threads(), std::vector<CascadeStats>(nu));
  // With the parallel exact verifier, pairs escalating to tier 4 are
  // deferred out of this pass (they would otherwise take turns on the
  // private exact pool) and solved afterwards as ONE multi-pair batch.
  const bool defer_exact = cascade_.options().parallel_exact_threads > 1;
  std::vector<DeferredEval> defers(defer_exact ? tasks.size() : 0);
  pool_->ParallelFor(static_cast<int64_t>(tasks.size()), /*grain=*/4,
                     [&](int64_t t, int worker) {
                       const auto [u, slot] = tasks[t];
                       verdicts[t] = EvalPair(*queries[uniq[u]], ctx[u],
                                              *snap, slot, tau,
                                              /*need_distance=*/false,
                                              &worker_stats[worker][u],
                                              defer_exact ? &defers[t]
                                                          : nullptr);
                       wall_clock.MarkDone(worker, u);
                     });
  if (defer_exact) {
    ResolveDeferred(tasks, defers, *snap, ctx, &worker_stats[0], &verdicts);
    for (size_t t = 0; t < defers.size(); ++t)
      if (defers[t].d.pending) wall_clock.MarkDone(0, tasks[t].first);
  }
  const double wall = ElapsedMs(start);
  OTGED_COUNT_N("otged_queries_total{kind=\"range\"}",
                "range queries served", nq);
  OTGED_HIST_RECORD("otged_batch_latency_us{kind=\"range\"}",
                    "wall time of one serving call (single or batch)",
                    std::lround(wall * 1000.0));

  std::vector<RangeResult> uniq_res(nu);
  for (size_t t = 0; t < tasks.size(); ++t) {
    const auto [u, slot] = tasks[t];
    const CascadeVerdict& v = verdicts[t];
    if (v.within)
      uniq_res[u].hits.push_back({snap->id(slot), v.ged, v.exact_distance});
  }
  for (int u = 0; u < nu; ++u) {
    RangeResult& res = uniq_res[u];
    for (const auto& ws : worker_stats) res.stats.cascade.Merge(ws[u]);
    res.stats.index = istats[u];
    // Fold index-dismissed graphs into the stats (and mirror into the
    // global counters) so `candidates` still counts the whole corpus and
    // SettledTotal == candidates keeps reconciling.
    const long pruned = static_cast<long>(n) -
                        static_cast<long>(cand[u].size());
    if (pruned > 0) {
      res.stats.cascade.candidates += pruned;
      res.stats.cascade.pruned_index += pruned;
      OTGED_COUNT_N("otged_cascade_candidates_total",
                    "candidate pairs fed into the filter cascade", pruned);
      OTGED_COUNT_N("otged_cascade_pruned_total{tier=\"index\"}",
                    "pairs dismissed by the candidate index before the "
                    "cascade",
                    pruned);
    }
    res.stats.wall_ms = wall_clock.WallMs(u, wall);
    res.stats.epoch = snap->epoch();
    res.stats.trace_id = ctx[u].trace_id;
    OTGED_HIST_RECORD("otged_query_latency_us{kind=\"range\"}",
                      "per-query serving latency",
                      std::lround(res.stats.wall_ms * 1000.0));
  }
  std::vector<RangeResult> out(nq);
  for (int q = 0; q < nq; ++q) out[q] = uniq_res[uniq_of[q]];
  return out;
}

std::vector<TopKResult> QueryEngine::TopKBatchLocked(
    const std::vector<const Graph*>& queries, int k) const {
  auto start = std::chrono::steady_clock::now();
  auto snap = PinSnapshot();
  const int n = snap->Size();
  const int nq = static_cast<int>(queries.size());
  std::vector<TopKResult> out(nq);
  const int kk = std::min(k, n);
  if (kk <= 0 || nq == 0) {
    const double wall = ElapsedMs(start);
    for (TopKResult& res : out) {
      res.stats.wall_ms = wall;
      res.stats.epoch = snap->epoch();
    }
    return out;
  }

  std::vector<uint64_t> fp(nq);
  for (int q = 0; q < nq; ++q) fp[q] = GraphContentFingerprint(*queries[q]);
  std::vector<int> uniq_of;
  const std::vector<int> uniq = DedupByFingerprint(queries, fp, &uniq_of);
  const int nu = static_cast<int>(uniq.size());

  const uint64_t trace_base = NextTraceIds(nu);
  std::vector<QueryContext> ctx(nu);
  for (int u = 0; u < nu; ++u)
    ctx[u] = {ComputeInvariants(*queries[uniq[u]]), fp[uniq[u]],
              trace_base + static_cast<uint64_t>(u)};
  QueryWallClock wall_clock(pool_->num_threads(), nu, start);

  // --- phase A: the most promising probe candidates per query ----------
  // A pool of kp = kk + topk_seed_probes lowest-(bound, id) graphs.
  // Indexed: the VP-tree's k-nearest by (InvariantLowerBound, id) — the
  // same set a full scan's nth_element by (bound, slot) selects, since
  // slots ascend by id. Unindexed: materialize the bound matrix and
  // select directly. Both paths pick the identical pool, so the cap —
  // and with it the phase-C task set — is identical either way.
  const int kp =
      std::min(n, kk + std::max(0, topk_probes_));  ///< probe-pool size
  std::shared_ptr<const IndexView> iview;
  if (index_ != nullptr && n > 0) iview = index_->ViewFor(snap);
  std::vector<IndexStats> istats(nu);
  std::vector<int> seeds(static_cast<size_t>(nu) * kp);
  std::vector<int> lb;  ///< unindexed only: nu x n bound matrix
  if (iview != nullptr) {
    pool_->ParallelFor(nu, /*grain=*/1, [&](int64_t u, int worker) {
      std::vector<std::pair<int, int>> nearest;  // (bound, id) ascending
      iview->TopKSeeds(ctx[u].qi, static_cast<size_t>(kp), &nearest,
                       &istats[u]);
      OTGED_DCHECK(static_cast<int>(nearest.size()) == kp);
      for (int i = 0; i < kp; ++i)
        seeds[static_cast<size_t>(u) * kp + i] =
            snap->SlotOf(nearest[static_cast<size_t>(i)].second);
      wall_clock.MarkDone(worker, static_cast<int>(u));
    });
  } else {
    lb.resize(static_cast<size_t>(nu) * n);
    pool_->ParallelFor(static_cast<int64_t>(nu) * n, /*grain=*/64,
                       [&](int64_t t, int) {
                         const int u = static_cast<int>(t / n);
                         const int slot = static_cast<int>(t % n);
                         lb[t] = InvariantLowerBound(
                             ctx[u].qi, snap->invariants(slot));
                       });
    for (int u = 0; u < nu; ++u) {
      const int* row = lb.data() + static_cast<size_t>(u) * n;
      std::vector<int> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::nth_element(order.begin(), order.begin() + (kp - 1), order.end(),
                       [&](int a, int b) {
                         return row[a] != row[b] ? row[a] < row[b] : a < b;
                       });
      std::copy(order.begin(), order.begin() + kp,
                seeds.begin() + static_cast<size_t>(u) * kp);
    }
  }

  // --- phase B: cap each query's k-th best distance ---------------------
  // Every probe admits a feasible edit path no longer than its upper
  // bound (cached exact distance when known), so the kk-th *smallest*
  // bound over the pool caps the true kk-th best distance. Two things
  // keep that cap tight, and phase C walks *every* graph whose lower
  // bound is under it, so tightness is the whole game: (1) each probe's
  // greedy Classic bound — often 3-4x the true distance on near-identical
  // pairs — is refined by a budgeted branch-and-bound whose incumbent is
  // still a feasible path (admissible, proven or not); (2) the pool
  // extends topk_seed_probes past kk, because the invariant bound is weak
  // enough that unrelated graphs routinely tie with the query's true
  // neighbors at the lowest bounds — with extras, the true neighbors'
  // small refined bounds push the false friends' large ones out of the
  // cap. Together they collapse the phase-C range by orders of magnitude
  // on clustered corpora.
  std::vector<int> seed_ub(static_cast<size_t>(nu) * kp);
  std::vector<std::vector<CascadeStats>> worker_stats(
      pool_->num_threads(), std::vector<CascadeStats>(nu));
  // With the parallel exact verifier, per-seed refinements would take
  // turns on the private exact pool; batch mode instead collects every
  // seed pair needing refinement during the Classic pass and solves them
  // all in one multi-pair batch. Results (and the cap) are byte-identical
  // — ParallelBranchAndBoundGedBatch guarantees per-pair equality.
  const bool batch_refine = cascade_.options().parallel_exact_threads > 1 &&
                            topk_refine_budget_ > 0;
  std::vector<std::pair<const Graph*, const Graph*>> refine(
      batch_refine ? static_cast<size_t>(nu) * kp
                   : 0,
      {nullptr, nullptr});
  pool_->ParallelFor(
      static_cast<int64_t>(nu) * kp, /*grain=*/1,
      [&](int64_t t, int worker) {
        const int u = static_cast<int>(t / kp);
        const int slot = seeds[t];
        if (use_cache_) {
          if (std::optional<int> ged =
                  cache_.Lookup(ctx[u].fp, snap->id(slot))) {
            seed_ub[t] = *ged;
            wall_clock.MarkDone(worker, u);
            return;
          }
        }
        auto [g1, g2] = OrderBySize(*queries[uniq[u]], snap->graph(slot));
        int ub = ClassicGed(*g1, *g2).ged;
        if (topk_refine_budget_ > 0) {
          if (batch_refine) {
            refine[static_cast<size_t>(t)] = {g1, g2};
          } else {
            // Routed through the cascade's exact dispatch so the
            // refinement shares the parallel verifier (and its run
            // counters land in this query's stats; refinement is not an
            // exact_calls tier-4 decision, so only the parallel-run
            // fields move).
            GedSearchResult r =
                cascade_.ExactSearch(*g1, *g2, topk_refine_budget_, ub,
                                     &worker_stats[worker][u]);
            ub = r.ged;
            if (use_cache_ && r.exact)
              cache_.Insert(ctx[u].fp, snap->id(slot), r.ged);
          }
        }
        seed_ub[t] = ub;
        wall_clock.MarkDone(worker, u);
      });
  if (batch_refine) {
    std::vector<size_t> idx;
    std::vector<FilterCascade::ExactBatchRequest> reqs;
    std::vector<CascadeStats*> sinks;
    for (size_t t = 0; t < refine.size(); ++t) {
      if (refine[t].first == nullptr) continue;  // cache hit or no refine
      idx.push_back(t);
      reqs.push_back({refine[t].first, refine[t].second,
                      topk_refine_budget_, seed_ub[t]});
      sinks.push_back(&worker_stats[0][t / static_cast<size_t>(kp)]);
    }
    if (!reqs.empty()) {
      const std::vector<GedSearchResult> ex =
          cascade_.ExactSearchBatch(reqs, sinks);
      for (size_t i = 0; i < idx.size(); ++i) {
        const size_t t = idx[i];
        const int u = static_cast<int>(t / static_cast<size_t>(kp));
        seed_ub[t] = ex[i].ged;
        if (use_cache_ && ex[i].exact)
          cache_.Insert(ctx[u].fp, snap->id(seeds[t]), ex[i].ged);
        wall_clock.MarkDone(0, u);
      }
    }
  }
  std::vector<int> tau0(nu);
  for (int u = 0; u < nu; ++u) {
    std::vector<int> row(seed_ub.begin() + static_cast<size_t>(u) * kp,
                         seed_ub.begin() + static_cast<size_t>(u + 1) * kp);
    std::nth_element(row.begin(), row.begin() + (kk - 1), row.end());
    tau0[u] = row[static_cast<size_t>(kk - 1)];
  }

  // --- phase C: exact verification of surviving candidates -------------
  // The task set is exactly { slot : InvariantLowerBound <= tau0 }: the
  // VP-tree's LB-range cut computes the same set the bound matrix scan
  // does, so indexed and unindexed top-k verify identical pairs.
  std::vector<std::pair<int, int>> tasks;  ///< (unique query, slot)
  std::vector<long> screened(nu, 0);
  if (iview != nullptr) {
    std::vector<std::vector<int>> cand(nu);
    pool_->ParallelFor(nu, /*grain=*/1, [&](int64_t u, int worker) {
      std::vector<int> ids;
      iview->LbRangeCandidates(ctx[u].qi, tau0[u], &ids, &istats[u]);
      cand[u].reserve(ids.size());
      for (const int id : ids) cand[u].push_back(snap->SlotOf(id));
      wall_clock.MarkDone(worker, static_cast<int>(u));
    });
    for (int u = 0; u < nu; ++u) {
      for (const int slot : cand[u]) tasks.emplace_back(u, slot);
      screened[u] = static_cast<long>(n) - static_cast<long>(cand[u].size());
    }
  } else {
    for (int u = 0; u < nu; ++u) {
      for (int slot = 0; slot < n; ++slot) {
        if (lb[static_cast<size_t>(u) * n + slot] <= tau0[u])
          tasks.emplace_back(u, slot);
        else
          ++screened[u];
      }
    }
  }
  std::vector<CascadeVerdict> verdicts(tasks.size());
  const bool defer_exact = cascade_.options().parallel_exact_threads > 1;
  std::vector<DeferredEval> defers(defer_exact ? tasks.size() : 0);
  pool_->ParallelFor(static_cast<int64_t>(tasks.size()), /*grain=*/2,
                     [&](int64_t t, int worker) {
                       const auto [u, slot] = tasks[t];
                       verdicts[t] = EvalPair(*queries[uniq[u]], ctx[u],
                                              *snap, slot, tau0[u],
                                              /*need_distance=*/true,
                                              &worker_stats[worker][u],
                                              defer_exact ? &defers[t]
                                                          : nullptr);
                       wall_clock.MarkDone(worker, u);
                     });
  if (defer_exact) {
    ResolveDeferred(tasks, defers, *snap, ctx, &worker_stats[0], &verdicts);
    for (size_t t = 0; t < defers.size(); ++t)
      if (defers[t].d.pending) wall_clock.MarkDone(0, tasks[t].first);
  }
  const double wall = ElapsedMs(start);
  OTGED_COUNT_N("otged_queries_total{kind=\"topk\"}",
                "top-k queries served", nq);
  OTGED_HIST_RECORD("otged_batch_latency_us{kind=\"topk\"}",
                    "wall time of one serving call (single or batch)",
                    std::lround(wall * 1000.0));

  std::vector<TopKResult> uniq_res(nu);
  for (size_t t = 0; t < tasks.size(); ++t) {
    const auto [u, slot] = tasks[t];
    if (verdicts[t].within)
      uniq_res[u].hits.push_back(
          {snap->id(slot), verdicts[t].ged, verdicts[t].exact_distance});
  }
  for (int u = 0; u < nu; ++u) {
    TopKResult& res = uniq_res[u];
    std::sort(res.hits.begin(), res.hits.end(),
              [](const TopKHit& a, const TopKHit& b) {
                return a.ged != b.ged ? a.ged < b.ged : a.id < b.id;
              });
    if (static_cast<int>(res.hits.size()) > kk) res.hits.resize(kk);
    for (const auto& ws : worker_stats) res.stats.cascade.Merge(ws[u]);
    res.stats.index = istats[u];
    // Fold the candidates screened out before the cascade (by the index's
    // LB-range cut, or by phase A's bound matrix) into the stats so they
    // describe the query — and mirror the fold into the global counters
    // so Prometheus totals keep reconciling with summed QueryStats.
    res.stats.cascade.candidates += screened[u];
    OTGED_COUNT_N("otged_cascade_candidates_total",
                  "candidate pairs fed into the filter cascade",
                  screened[u]);
    if (iview != nullptr) {
      res.stats.cascade.pruned_index += screened[u];
      OTGED_COUNT_N("otged_cascade_pruned_total{tier=\"index\"}",
                    "pairs dismissed by the candidate index before the "
                    "cascade",
                    screened[u]);
    } else {
      res.stats.cascade.pruned_invariant += screened[u];
      OTGED_COUNT_N("otged_cascade_pruned_total{tier=\"invariant\"}",
                    "pairs dismissed by an admissible lower bound at this "
                    "tier",
                    screened[u]);
    }
    res.stats.wall_ms = wall_clock.WallMs(u, wall);
    res.stats.epoch = snap->epoch();
    res.stats.trace_id = ctx[u].trace_id;
    OTGED_HIST_RECORD("otged_query_latency_us{kind=\"topk\"}",
                      "per-query serving latency",
                      std::lround(res.stats.wall_ms * 1000.0));
  }
  for (int q = 0; q < nq; ++q) out[q] = uniq_res[uniq_of[q]];
  return out;
}

RangeResult QueryEngine::Range(const Graph& query, int tau) const {
  MutexLock serve_lock(serve_mu_);
  return std::move(RangeBatchLocked({&query}, tau).front());
}

TopKResult QueryEngine::TopK(const Graph& query, int k) const {
  MutexLock serve_lock(serve_mu_);
  return std::move(TopKBatchLocked({&query}, k).front());
}

std::vector<RangeResult> QueryEngine::RangeBatch(
    const std::vector<Graph>& queries, int tau) const {
  MutexLock serve_lock(serve_mu_);
  std::vector<const Graph*> ptrs;
  ptrs.reserve(queries.size());
  for (const Graph& q : queries) ptrs.push_back(&q);
  return RangeBatchLocked(ptrs, tau);
}

std::vector<TopKResult> QueryEngine::TopKBatch(
    const std::vector<Graph>& queries, int k) const {
  MutexLock serve_lock(serve_mu_);
  std::vector<const Graph*> ptrs;
  ptrs.reserve(queries.size());
  for (const Graph& q : queries) ptrs.push_back(&q);
  return TopKBatchLocked(ptrs, k);
}

}  // namespace otged
