#include "heuristics/bipartite.hpp"

#include <algorithm>
#include <map>

#include "assignment/hungarian.hpp"
#include "assignment/lapjv.hpp"

namespace otged {

namespace {

// Multiset difference size between the neighbor-label multisets of u in g1
// and v in g2: a lower bound on incident-edge substitutions.
int NeighborLabelDiff(const Graph& g1, int u, const Graph& g2, int v) {
  std::map<Label, int> count;
  for (int w : g1.Neighbors(u)) count[g1.label(w)]++;
  for (int x : g2.Neighbors(v)) count[g2.label(x)]--;
  int surplus = 0, deficit = 0;
  for (const auto& [l, c] : count) {
    if (c > 0) surplus += c;
    else deficit -= c;
  }
  return std::max(surplus, deficit);
}

// Repairs a square BP assignment into a total injective G1 -> G2 matching:
// G1 nodes assigned to deletion columns are re-paired with G2 nodes
// assigned to insertion rows (label-matching pairs first).
NodeMatching RepairMatching(const Graph& g1, const Graph& g2,
                            const std::vector<int>& row_to_col) {
  const int n1 = g1.NumNodes(), n2 = g2.NumNodes();
  NodeMatching match(n1, -1);
  std::vector<char> used(n2, 0);
  std::vector<int> deleted;  // G1 nodes sent to the deletion block
  for (int i = 0; i < n1; ++i) {
    int j = row_to_col[i];
    if (j < n2) {
      match[i] = j;
      used[j] = 1;
    } else {
      deleted.push_back(i);
    }
  }
  std::vector<int> inserted;  // G2 nodes with no substitution partner
  for (int j = 0; j < n2; ++j)
    if (!used[j]) inserted.push_back(j);
  OTGED_CHECK(deleted.size() <= inserted.size());
  // Pair label-equal (node, slot) combinations first.
  std::vector<char> slot_used(inserted.size(), 0);
  for (int u : deleted) {
    int pick = -1;
    for (size_t s = 0; s < inserted.size(); ++s) {
      if (slot_used[s]) continue;
      if (g2.label(inserted[s]) == g1.label(u)) {
        pick = static_cast<int>(s);
        break;
      }
      if (pick == -1) pick = static_cast<int>(s);
    }
    OTGED_CHECK(pick >= 0);
    slot_used[pick] = 1;
    match[u] = inserted[pick];
  }
  return match;
}

HeuristicResult SolveWith(const Graph& g1, const Graph& g2,
                          bool use_neighbor_labels, bool use_jv) {
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  Matrix cost = BipartiteCostMatrix(g1, g2, use_neighbor_labels);
  AssignmentResult lap =
      use_jv ? SolveAssignmentJV(cost) : SolveAssignment(cost);
  HeuristicResult res;
  res.matching = RepairMatching(g1, g2, lap.row_to_col);
  res.path = EditPathFromMatching(g1, g2, res.matching);
  res.ged = static_cast<int>(res.path.size());
  return res;
}

}  // namespace

Matrix BipartiteCostMatrix(const Graph& g1, const Graph& g2,
                           bool use_neighbor_labels) {
  const int n1 = g1.NumNodes(), n2 = g2.NumNodes();
  const int n = n1 + n2;
  Matrix c(n, n, 0.0);
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) {
      double sub = g1.label(i) != g2.label(j) ? 1.0 : 0.0;
      if (use_neighbor_labels) {
        sub += NeighborLabelDiff(g1, i, g2, j) / 2.0;
      } else {
        sub += std::abs(g1.Degree(i) - g2.Degree(j)) / 2.0;
      }
      c(i, j) = sub;
    }
  }
  // Deletion block (G1 node i -> eps): diagonal finite, rest forbidden.
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n1; ++j)
      c(i, n2 + j) = (i == j) ? 1.0 + g1.Degree(i) / 2.0 : kAssignInf;
  // Insertion block (eps -> G2 node j).
  for (int i = 0; i < n2; ++i)
    for (int j = 0; j < n2; ++j)
      c(n1 + i, j) = (i == j) ? 1.0 + g2.Degree(j) / 2.0 : kAssignInf;
  // eps -> eps block stays 0.
  return c;
}

HeuristicResult HungarianGed(const Graph& g1, const Graph& g2) {
  return SolveWith(g1, g2, /*use_neighbor_labels=*/false, /*use_jv=*/false);
}

HeuristicResult VjGed(const Graph& g1, const Graph& g2) {
  return SolveWith(g1, g2, /*use_neighbor_labels=*/true, /*use_jv=*/true);
}

HeuristicResult ClassicGed(const Graph& g1, const Graph& g2) {
  HeuristicResult a = HungarianGed(g1, g2);
  HeuristicResult b = VjGed(g1, g2);
  return a.ged <= b.ged ? a : b;
}

}  // namespace otged
