/// \file lower_bounds.hpp
/// \brief Admissible GED lower bounds beyond the label-set bound (Eq. 22):
/// the BRANCH-style bipartite bound, which solves a linear assignment over
/// node substitution costs with half-counted incident edges. Lower bounds
/// prune the k-best GEP search and certify heuristic results
/// (LB == UB proves optimality).
#ifndef OTGED_HEURISTICS_LOWER_BOUNDS_HPP_
#define OTGED_HEURISTICS_LOWER_BOUNDS_HPP_

#include "graph/graph.hpp"

namespace otged {

/// BRANCH-style bipartite lower bound: each node pair's substitution cost
/// is label mismatch + half the degree gap; deletions/insertions cost
/// 1 + degree/2. Each edge edit is counted at most 1/2 on each endpoint,
/// so the LAP optimum never exceeds the true GED. O((n1+n2)^3).
double BranchLowerBound(const Graph& g1, const Graph& g2);

/// The tightest cheap bound available: max of the label-set bound and the
/// (rounded-up) BRANCH bound.
int BestLowerBound(const Graph& g1, const Graph& g2);

}  // namespace otged

#endif  // OTGED_HEURISTICS_LOWER_BOUNDS_HPP_
