#include "heuristics/lower_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "assignment/hungarian.hpp"

namespace otged {

double BranchLowerBound(const Graph& g1, const Graph& g2) {
  const int n1 = g1.NumNodes(), n2 = g2.NumNodes();
  const int n = n1 + n2;
  if (n == 0) return 0.0;
  Matrix c(n, n, 0.0);
  for (int i = 0; i < n1; ++i) {
    for (int j = 0; j < n2; ++j) {
      double sub = g1.label(i) != g2.label(j) ? 1.0 : 0.0;
      // Half-counted edge gap: every edge edit has two endpoints, so
      // charging |d_i - d_j| / 2 per endpoint never exceeds reality.
      sub += std::abs(g1.Degree(i) - g2.Degree(j)) / 2.0;
      c(i, j) = sub;
    }
  }
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n1; ++j)
      c(i, n2 + j) = (i == j) ? 1.0 + g1.Degree(i) / 2.0 : kAssignInf;
  for (int i = 0; i < n2; ++i)
    for (int j = 0; j < n2; ++j)
      c(n1 + i, j) = (i == j) ? 1.0 + g2.Degree(j) / 2.0 : kAssignInf;
  return SolveAssignment(c).cost;
}

int BestLowerBound(const Graph& g1, const Graph& g2) {
  int label_set = LabelSetLowerBound(g1, g2);
  // The BRANCH LAP value is a real lower bound; its ceiling is still one
  // because the GED is integral.
  int branch = static_cast<int>(std::ceil(BranchLowerBound(g1, g2) - 1e-9));
  return std::max(label_set, branch);
}

}  // namespace otged
