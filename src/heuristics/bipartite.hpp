/// \file bipartite.hpp
/// \brief Classical bipartite-matching GED heuristics: Hungarian [39],
/// VJ [15], and "Classic" (best of both), as used in the paper's baseline
/// suite. Each returns a feasible edit path, so the reported GED is
/// always an upper bound (feasibility 100%, as in Tables 3-4).
#ifndef OTGED_HEURISTICS_BIPARTITE_HPP_
#define OTGED_HEURISTICS_BIPARTITE_HPP_

#include "editpath/edit_path.hpp"
#include "graph/graph.hpp"

namespace otged {

/// Output of a heuristic GED computation.
struct HeuristicResult {
  int ged = 0;                ///< edit-path length (feasible upper bound)
  NodeMatching matching;      ///< induced complete matching (n1 <= n2)
  std::vector<EditOp> path;   ///< the edit path itself
};

/// Riesen-Bunke bipartite GED with the Hungarian LAP solver. The
/// substitution cost uses label mismatch + degree-difference/2 (the
/// hand-crafted cost of the paper's Fig. 3). Requires n1 <= n2.
HeuristicResult HungarianGed(const Graph& g1, const Graph& g2);

/// Bipartite GED with the Jonker-Volgenant solver and a richer local
/// structure cost (neighbor-label multiset difference), following the
/// spirit of [15]. Requires n1 <= n2.
HeuristicResult VjGed(const Graph& g1, const Graph& g2);

/// Runs both and returns the result with the shorter edit path.
HeuristicResult ClassicGed(const Graph& g1, const Graph& g2);

/// The (n1+n2) x (n1+n2) Riesen-Bunke cost matrix used by HungarianGed;
/// exposed for tests and for OT-based methods that want a hand-crafted
/// cost. `use_neighbor_labels` switches to the VJ-style local cost.
Matrix BipartiteCostMatrix(const Graph& g1, const Graph& g2,
                           bool use_neighbor_labels);

}  // namespace otged

#endif  // OTGED_HEURISTICS_BIPARTITE_HPP_
