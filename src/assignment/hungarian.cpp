#include "assignment/hungarian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/simd.hpp"

namespace otged {

namespace detail {

AssignmentResult SolveAssignmentScalar(const Matrix& cost) {
  OTGED_CHECK(cost.rows() == cost.cols());
  const int n = cost.rows();
  AssignmentResult res;
  res.row_to_col.assign(n, -1);
  if (n == 0) return res;

  // Shortest augmenting path with potentials (a.k.a. the "JV/Hungarian"
  // O(n^3) algorithm); 1-based sentinel formulation.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0);    // p[j]: row matched to column j (1-based)
  std::vector<int> way(n + 1, 0);
  const double inf = std::numeric_limits<double>::infinity();

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, inf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      int i0 = p[j0], j1 = -1;
      double delta = inf;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      OTGED_CHECK(j1 != -1);
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  res.cost = 0.0;
  for (int j = 1; j <= n; ++j) {
    if (p[j] == 0) continue;
    res.row_to_col[p[j] - 1] = j - 1;
    double c = cost(p[j] - 1, j - 1);
    res.cost += c;
    if (c >= kAssignInf / 2) res.feasible = false;
  }
  return res;
}

// Same algorithm with the two O(n) inner scans vectorized. Column "used"
// state lives in `excl` (+inf used, 0.0 unused) so masked min scans can
// exclude used columns with an exact `minv[j] + excl[j]` add; `way` and
// `minv` writes are restricted to unused lanes (the scalar loop never
// touches a used column's slots, and `way` of used columns IS read later
// when backtracking the augmenting path). All lane arithmetic keeps the
// scalar association, so the result matches SolveAssignmentScalar
// exactly.
AssignmentResult SolveAssignmentSimd(const Matrix& cost) {
  OTGED_CHECK(cost.rows() == cost.cols());
  const int n = cost.rows();
  AssignmentResult res;
  res.row_to_col.assign(n, -1);
  if (n == 0) return res;

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  std::vector<double> minv(n + 1);
  std::vector<double> excl(n + 1);
  std::vector<int> used_js;
  used_js.reserve(n + 1);
  const double* cdata = cost.data();
  constexpr int L = simd::kDoubleLanes;
  const simd::VecD vzero = simd::VecD::Zero();

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::fill(minv.begin(), minv.end(), inf);
    std::fill(excl.begin(), excl.end(), 0.0);
    used_js.clear();
    double* minv1 = minv.data() + 1;  // column j lives at offset j - 1
    double* excl1 = excl.data() + 1;
    const double* v1 = v.data() + 1;
    do {
      excl[j0] = inf;
      used_js.push_back(j0);
      const int i0 = p[j0];
      const double* row = cdata + static_cast<size_t>(i0 - 1) * n;
      const simd::VecD u0 = simd::VecD::Broadcast(u[i0]);
      // Pass 1: minv[j] = min(minv[j], (cost - u) - v) over unused j,
      // recording way[j] = j0 on improvement.
      int t = 0;
      for (; t + L <= n; t += L) {
        simd::VecD cur =
            (simd::VecD::Load(row + t) - u0) - simd::VecD::Load(v1 + t);
        simd::VecD mv = simd::VecD::Load(minv1 + t);
        simd::MaskD unused = simd::CmpEq(simd::VecD::Load(excl1 + t), vzero);
        simd::MaskD m = simd::And(simd::CmpLt(cur, mv), unused);
        simd::Blend(m, cur, mv).Store(minv1 + t);
        int bits = m.MoveMask();
        while (bits != 0) {
          const int l = __builtin_ctz(static_cast<unsigned>(bits));
          way[t + l + 1] = j0;
          bits &= bits - 1;
        }
      }
      for (; t < n; ++t) {
        if (excl1[t] != 0.0) continue;
        const double cur = (row[t] - u[i0]) - v1[t];
        if (cur < minv1[t]) {
          minv1[t] = cur;
          way[t + 1] = j0;
        }
      }
      // Pass 2: delta = min over unused columns, first index on ties —
      // exactly the sequential strict-< scan's pick.
      const simd::MinLoc ml = simd::MinFirstIndexMasked(minv1, excl1, n);
      OTGED_CHECK(ml.index != -1);
      const double delta = ml.value;
      const int j1 = ml.index + 1;
      for (int j : used_js) {
        u[p[j]] += delta;
        v[j] -= delta;
      }
      const simd::VecD dv = simd::VecD::Broadcast(delta);
      t = 0;
      for (; t + L <= n; t += L) {
        simd::VecD mv = simd::VecD::Load(minv1 + t);
        simd::MaskD unused = simd::CmpEq(simd::VecD::Load(excl1 + t), vzero);
        simd::Blend(unused, mv - dv, mv).Store(minv1 + t);
      }
      for (; t < n; ++t)
        if (excl1[t] == 0.0) minv1[t] -= delta;
      j0 = j1;
    } while (p[j0] != 0);
    do {
      int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  res.cost = 0.0;
  for (int j = 1; j <= n; ++j) {
    if (p[j] == 0) continue;
    res.row_to_col[p[j] - 1] = j - 1;
    double c = cost(p[j] - 1, j - 1);
    res.cost += c;
    if (c >= kAssignInf / 2) res.feasible = false;
  }
  return res;
}

}  // namespace detail

AssignmentResult SolveAssignment(const Matrix& cost) {
  return simd::Enabled() ? detail::SolveAssignmentSimd(cost)
                         : detail::SolveAssignmentScalar(cost);
}

AssignmentResult SolveAssignmentRect(const Matrix& cost) {
  const int n1 = cost.rows(), n2 = cost.cols();
  OTGED_CHECK(n1 <= n2);
  Matrix sq(n2, n2, 0.0);
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n2; ++j) sq(i, j) = cost(i, j);
  AssignmentResult full = SolveAssignment(sq);
  AssignmentResult res;
  res.feasible = true;
  res.cost = 0.0;
  res.row_to_col.assign(n1, -1);
  for (int i = 0; i < n1; ++i) {
    res.row_to_col[i] = full.row_to_col[i];
    double c = cost(i, full.row_to_col[i]);
    res.cost += c;
    if (c >= kAssignInf / 2) res.feasible = false;
  }
  return res;
}

AssignmentResult SolveMaxWeightAssignment(const Matrix& weight) {
  // Negate and shift so all entries are finite and non-forbidden unless
  // the caller marked them with -kAssignInf.
  const int n1 = weight.rows(), n2 = weight.cols();
  Matrix cost(n1, n2);
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n2; ++j) {
      double w = weight(i, j);
      cost(i, j) = (w <= -kAssignInf / 2) ? kAssignInf : -w;
    }
  AssignmentResult res =
      (n1 == n2) ? SolveAssignment(cost) : SolveAssignmentRect(cost);
  // Report the achieved weight.
  double total = 0.0;
  for (int i = 0; i < n1; ++i) total += weight(i, res.row_to_col[i]);
  res.cost = total;
  return res;
}

}  // namespace otged
