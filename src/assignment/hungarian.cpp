#include "assignment/hungarian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace otged {

AssignmentResult SolveAssignment(const Matrix& cost) {
  OTGED_CHECK(cost.rows() == cost.cols());
  const int n = cost.rows();
  AssignmentResult res;
  res.row_to_col.assign(n, -1);
  if (n == 0) return res;

  // Shortest augmenting path with potentials (a.k.a. the "JV/Hungarian"
  // O(n^3) algorithm); 1-based sentinel formulation.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0);    // p[j]: row matched to column j (1-based)
  std::vector<int> way(n + 1, 0);
  const double inf = std::numeric_limits<double>::infinity();

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, inf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      int i0 = p[j0], j1 = -1;
      double delta = inf;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      OTGED_CHECK(j1 != -1);
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  res.cost = 0.0;
  for (int j = 1; j <= n; ++j) {
    if (p[j] == 0) continue;
    res.row_to_col[p[j] - 1] = j - 1;
    double c = cost(p[j] - 1, j - 1);
    res.cost += c;
    if (c >= kAssignInf / 2) res.feasible = false;
  }
  return res;
}

AssignmentResult SolveAssignmentRect(const Matrix& cost) {
  const int n1 = cost.rows(), n2 = cost.cols();
  OTGED_CHECK(n1 <= n2);
  Matrix sq(n2, n2, 0.0);
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n2; ++j) sq(i, j) = cost(i, j);
  AssignmentResult full = SolveAssignment(sq);
  AssignmentResult res;
  res.feasible = true;
  res.cost = 0.0;
  res.row_to_col.assign(n1, -1);
  for (int i = 0; i < n1; ++i) {
    res.row_to_col[i] = full.row_to_col[i];
    double c = cost(i, full.row_to_col[i]);
    res.cost += c;
    if (c >= kAssignInf / 2) res.feasible = false;
  }
  return res;
}

AssignmentResult SolveMaxWeightAssignment(const Matrix& weight) {
  // Negate and shift so all entries are finite and non-forbidden unless
  // the caller marked them with -kAssignInf.
  const int n1 = weight.rows(), n2 = weight.cols();
  Matrix cost(n1, n2);
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n2; ++j) {
      double w = weight(i, j);
      cost(i, j) = (w <= -kAssignInf / 2) ? kAssignInf : -w;
    }
  AssignmentResult res =
      (n1 == n2) ? SolveAssignment(cost) : SolveAssignmentRect(cost);
  // Report the achieved weight.
  double total = 0.0;
  for (int i = 0; i < n1; ++i) total += weight(i, res.row_to_col[i]);
  res.cost = total;
  return res;
}

}  // namespace otged
