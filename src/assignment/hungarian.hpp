/// \file hungarian.hpp
/// \brief O(n^3) linear assignment via shortest augmenting paths with
/// potentials (the "Hungarian" solver used across the library: heuristic
/// GED baselines, the GEDGW conditional-gradient subproblem, and the
/// k-best matching framework).
#ifndef OTGED_ASSIGNMENT_HUNGARIAN_HPP_
#define OTGED_ASSIGNMENT_HUNGARIAN_HPP_

#include <vector>

#include "core/matrix.hpp"

namespace otged {

/// Cost value treated as "forbidden" by the solvers. Any assignment using
/// a forbidden entry is considered infeasible.
inline constexpr double kAssignInf = 1e18;

/// Result of a (square) assignment problem.
struct AssignmentResult {
  std::vector<int> row_to_col;  ///< row i assigned to column row_to_col[i]
  double cost = 0.0;            ///< total cost of the assignment
  bool feasible = true;         ///< false if forced to use a forbidden entry
};

/// Solves min-cost perfect matching on a square cost matrix (n x n) in
/// O(n^3) using the Jonker-Volgenant-style shortest augmenting path
/// method with dual potentials. Entries >= kAssignInf / 2 are forbidden.
AssignmentResult SolveAssignment(const Matrix& cost);

/// Rectangular convenience wrapper for n1 <= n2: pads rows with zero cost
/// so that every row is assigned a distinct column; returns row_to_col of
/// size n1 (padding rows dropped).
AssignmentResult SolveAssignmentRect(const Matrix& cost);

/// Maximizes total weight instead of minimizing cost (used by the k-best
/// matching framework where weights come from a coupling matrix).
AssignmentResult SolveMaxWeightAssignment(const Matrix& weight);

namespace detail {

/// Scalar / SIMD twins behind SolveAssignment. The public entry point
/// dispatches on simd::Enabled(); both twins are always compiled so
/// tests and benches can A/B them within one binary. Their outputs are
/// *identical*, not merely close: the vector path preserves the scalar
/// association per lane ((cost - u) - v) and its min scans keep the
/// sequential first-index tie-break, so every augmenting path — and
/// therefore row_to_col, cost, and feasible — matches bit for bit.
AssignmentResult SolveAssignmentScalar(const Matrix& cost);
AssignmentResult SolveAssignmentSimd(const Matrix& cost);

}  // namespace detail

}  // namespace otged

#endif  // OTGED_ASSIGNMENT_HUNGARIAN_HPP_
