/// \file lapjv.hpp
/// \brief Classic Jonker-Volgenant LAP solver (column reduction, reduction
/// transfer, augmenting row reduction, then augmentation), the engine
/// behind the paper's "VJ" baseline [15].
///
/// Functionally equivalent to hungarian.hpp's solver on the same input;
/// kept as a distinct implementation because (a) the paper treats
/// Hungarian and VJ as distinct baselines and (b) the two solvers
/// cross-check each other in the property tests.
#ifndef OTGED_ASSIGNMENT_LAPJV_HPP_
#define OTGED_ASSIGNMENT_LAPJV_HPP_

#include "assignment/hungarian.hpp"

namespace otged {

/// Solves min-cost perfect matching on a square cost matrix with the
/// Jonker-Volgenant algorithm. Same contract as SolveAssignment().
AssignmentResult SolveAssignmentJV(const Matrix& cost);

namespace detail {

/// Scalar / SIMD twins behind SolveAssignmentJV (dispatch on
/// simd::Enabled()). Like the Hungarian twins, outputs are identical:
/// reduced costs keep the scalar association (cost - v), two-smallest
/// scans replay the sequential tie-breaks, and Dijkstra's column picks
/// keep the first-argmin order.
AssignmentResult SolveAssignmentJVScalar(const Matrix& cost);
AssignmentResult SolveAssignmentJVSimd(const Matrix& cost);

}  // namespace detail

}  // namespace otged

#endif  // OTGED_ASSIGNMENT_LAPJV_HPP_
