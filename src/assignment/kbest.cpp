#include "assignment/kbest.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "heuristics/lower_bounds.hpp"

namespace otged {

namespace {

/// A partition of the matching space: matchings that contain all `forced`
/// pairs and none of the `forbidden` pairs. Weights are maximized.
struct Subspace {
  std::vector<std::pair<int, int>> forced;
  std::vector<std::pair<int, int>> forbidden;
  NodeMatching best;          // best matching in this subspace
  double best_weight = 0.0;
  NodeMatching second;        // second-best matching (may be empty)
  double second_weight = -kAssignInf;
  bool has_second = false;
};

// Applies subspace constraints to a copy of the weight matrix.
Matrix ConstrainWeights(const Matrix& weight, const Subspace& s) {
  Matrix w = weight;
  for (auto [r, c] : s.forbidden) w(r, c) = -kAssignInf;
  for (auto [r, c] : s.forced) {
    for (int j = 0; j < w.cols(); ++j)
      if (j != c) w(r, j) = -kAssignInf;
    for (int i = 0; i < w.rows(); ++i)
      if (i != r) w(i, c) = -kAssignInf;
  }
  return w;
}

// Best matching under constraints; returns false if infeasible.
bool SolveBest(const Matrix& weight, const Subspace& s, NodeMatching* match,
               double* total) {
  Matrix w = ConstrainWeights(weight, s);
  AssignmentResult res = SolveMaxWeightAssignment(w);
  if (!res.feasible) return false;
  // Check no forbidden entry was used (feasible flag covers it, but keep a
  // direct check since -kAssignInf negation feeds through the solver).
  for (int i = 0; i < w.rows(); ++i)
    if (w(i, res.row_to_col[i]) <= -kAssignInf / 2) return false;
  *match = res.row_to_col;
  *total = res.cost;
  return true;
}

// Second-best matching in the subspace: for each non-forced pair used by
// `best`, additionally forbid it and re-solve; keep the best outcome.
bool SolveSecond(const Matrix& weight, const Subspace& s,
                 const NodeMatching& best, NodeMatching* second,
                 double* total) {
  std::set<std::pair<int, int>> forced(s.forced.begin(), s.forced.end());
  bool found = false;
  double best_w = -kAssignInf;
  NodeMatching best_m;
  for (size_t r = 0; r < best.size(); ++r) {
    std::pair<int, int> e(static_cast<int>(r), best[r]);
    if (forced.count(e)) continue;
    Subspace t = s;
    t.forbidden.push_back(e);
    NodeMatching m;
    double w;
    if (SolveBest(weight, t, &m, &w) && w > best_w) {
      best_w = w;
      best_m = m;
      found = true;
    }
  }
  if (found) {
    *second = best_m;
    *total = best_w;
  }
  return found;
}

// Splits `s` on a pair present in best but not in second; returns the two
// children with their solutions already positioned per Alg. 4 (best of s
// goes to the "contains e" child, second-best to the other).
std::pair<Subspace, Subspace> Split(const Matrix& weight, const Subspace& s) {
  // Find a splitting pair.
  int split_row = -1;
  for (size_t r = 0; r < s.best.size(); ++r) {
    if (s.best[r] != s.second[r]) {
      split_row = static_cast<int>(r);
      break;
    }
  }
  OTGED_CHECK(split_row >= 0);
  std::pair<int, int> e(split_row, s.best[split_row]);

  Subspace with = s, without = s;
  with.forced.push_back(e);
  without.forbidden.push_back(e);

  with.best = s.best;
  with.best_weight = s.best_weight;
  with.has_second = SolveSecond(weight, with, with.best, &with.second,
                                &with.second_weight);

  without.best = s.second;
  without.best_weight = s.second_weight;
  without.has_second = SolveSecond(weight, without, without.best,
                                   &without.second, &without.second_weight);
  return {with, without};
}

}  // namespace

std::vector<NodeMatching> KBestMatchings(const Matrix& weight, int k) {
  std::vector<NodeMatching> out;
  Subspace root;
  if (!SolveBest(weight, root, &root.best, &root.best_weight)) return out;
  out.push_back(root.best);
  if (k <= 1) return out;
  root.has_second =
      SolveSecond(weight, root, root.best, &root.second, &root.second_weight);

  std::vector<Subspace> parts = {root};
  while (static_cast<int>(out.size()) < k) {
    // Pick the partition whose second-best has maximal weight.
    int id = -1;
    double best_w = -kAssignInf;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].has_second && parts[i].second_weight > best_w) {
        best_w = parts[i].second_weight;
        id = static_cast<int>(i);
      }
    }
    if (id < 0) break;  // space exhausted
    out.push_back(parts[id].second);
    auto [with, without] = Split(weight, parts[id]);
    parts[static_cast<size_t>(id)] = with;
    parts.push_back(without);
  }
  return out;
}

GepResult KBestGepSearch(const Graph& g1, const Graph& g2, const Matrix& pi,
                         int k) {
  OTGED_CHECK(pi.rows() == g1.NumNodes() && pi.cols() == g2.NumNodes());
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());

  GepResult best;
  best.ged = -1;
  // Tightest cheap admissible bound: once the incumbent path matches it,
  // no further partition can improve (Alg. 4's pruning rule).
  const int lb = BestLowerBound(g1, g2);

  auto consider = [&](const NodeMatching& m) {
    int cost = EditCostFromMatching(g1, g2, m);
    if (best.ged < 0 || cost < best.ged) {
      best.ged = cost;
      best.matching = m;
    }
  };

  Subspace root;
  if (!SolveBest(pi, root, &root.best, &root.best_weight)) {
    // Degenerate coupling; fall back to the identity-ish matching.
    NodeMatching m(g1.NumNodes());
    for (int i = 0; i < g1.NumNodes(); ++i) m[i] = i;
    consider(m);
    best.path = EditPathFromMatching(g1, g2, best.matching);
    return best;
  }
  consider(root.best);
  root.has_second =
      SolveSecond(pi, root, root.best, &root.second, &root.second_weight);
  if (root.has_second) consider(root.second);

  std::vector<Subspace> parts = {root};
  for (int t = 1; t < k && best.ged > lb; ++t) {
    int id = -1;
    double best_w = -kAssignInf;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].has_second && parts[i].second_weight > best_w) {
        best_w = parts[i].second_weight;
        id = static_cast<int>(i);
      }
    }
    if (id < 0) break;
    auto [with, without] = Split(pi, parts[id]);
    if (with.has_second) consider(with.second);
    if (without.has_second) consider(without.second);
    parts[static_cast<size_t>(id)] = with;
    parts.push_back(without);
  }

  best.path = EditPathFromMatching(g1, g2, best.matching);
  OTGED_CHECK(static_cast<int>(best.path.size()) == best.ged);
  return best;
}

}  // namespace otged
