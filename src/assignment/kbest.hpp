/// \file kbest.hpp
/// \brief k-best bipartite matching via solution-space splitting
/// (Chegireddy-Hamacher [10]) and the paper's k-best GEP search
/// framework (Algorithm 4) with label-set lower-bound pruning.
#ifndef OTGED_ASSIGNMENT_KBEST_HPP_
#define OTGED_ASSIGNMENT_KBEST_HPP_

#include <optional>
#include <vector>

#include "assignment/hungarian.hpp"
#include "editpath/edit_path.hpp"

namespace otged {

/// Enumerates up to `k` distinct maximum-weight node matchings of the
/// n1 x n2 (n1 <= n2) weight matrix, best first. Weight of a matching is
/// the sum of its selected entries. Used directly by tests; the GEP
/// search below interleaves it with edit-path evaluation.
std::vector<NodeMatching> KBestMatchings(const Matrix& weight, int k);

/// Result of the k-best GEP search.
struct GepResult {
  int ged = 0;                  ///< length of the best edit path found
  NodeMatching matching;        ///< matching that induced it
  std::vector<EditOp> path;     ///< the edit path itself
};

/// Algorithm 4 of the paper: splits the matching space into up to `k`
/// partitions guided by the coupling matrix `pi` (confidence of node
/// matching), evaluates the best & second-best matching of each partition
/// with EditPathFromMatching, prunes partitions whose label-set GED lower
/// bound cannot beat the incumbent, and returns the shortest edit path
/// seen. The result is always a *feasible* GED upper bound.
GepResult KBestGepSearch(const Graph& g1, const Graph& g2, const Matrix& pi,
                         int k);

}  // namespace otged

#endif  // OTGED_ASSIGNMENT_KBEST_HPP_
