#include "assignment/lapjv.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace otged {

AssignmentResult SolveAssignmentJV(const Matrix& cost) {
  OTGED_CHECK(cost.rows() == cost.cols());
  const int n = cost.rows();
  AssignmentResult res;
  res.row_to_col.assign(n, -1);
  if (n == 0) return res;

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<int> rowsol(n, -1), colsol(n, -1);
  std::vector<double> v(n, 0.0);

  // --- Column reduction (scan columns right-to-left). ---
  for (int j = n - 1; j >= 0; --j) {
    double minc = cost(0, j);
    int imin = 0;
    for (int i = 1; i < n; ++i) {
      if (cost(i, j) < minc) {
        minc = cost(i, j);
        imin = i;
      }
    }
    v[j] = minc;
    if (rowsol[imin] == -1) {
      rowsol[imin] = j;
      colsol[j] = imin;
    }
  }

  // --- Reduction transfer for assigned rows. ---
  std::vector<int> free_rows;
  for (int i = 0; i < n; ++i) {
    if (rowsol[i] == -1) {
      free_rows.push_back(i);
    } else {
      int j1 = rowsol[i];
      double minv = inf;
      for (int j = 0; j < n; ++j) {
        if (j != j1) minv = std::min(minv, cost(i, j) - v[j]);
      }
      if (minv < inf) v[j1] -= minv;
    }
  }

  // --- Augmenting row reduction (two passes). ---
  for (int pass = 0; pass < 2 && !free_rows.empty(); ++pass) {
    std::vector<int> next_free;
    size_t k = 0;
    while (k < free_rows.size()) {
      int i = free_rows[k++];
      // Find the two smallest reduced costs in row i.
      double u1 = inf, u2 = inf;
      int j1 = -1, j2 = -1;
      for (int j = 0; j < n; ++j) {
        double h = cost(i, j) - v[j];
        if (h < u1) {
          u2 = u1;
          j2 = j1;
          u1 = h;
          j1 = j;
        } else if (h < u2) {
          u2 = h;
          j2 = j;
        }
      }
      int i0 = colsol[j1];
      if (u1 < u2) {
        v[j1] -= u2 - u1;
      } else if (i0 >= 0 && j2 >= 0) {
        j1 = j2;
        i0 = colsol[j1];
      }
      rowsol[i] = j1;
      colsol[j1] = i;
      if (i0 >= 0) {
        rowsol[i0] = -1;
        if (u1 < u2) {
          // i0 goes to the head of the queue (retry immediately).
          free_rows[--k] = i0;
        } else {
          next_free.push_back(i0);
        }
      }
    }
    free_rows = next_free;
  }

  // --- Augmentation: Dijkstra-like shortest alternating paths. ---
  for (int f : free_rows) {
    std::vector<double> d(n);
    std::vector<int> pred(n, f);
    std::vector<char> done(n, false);
    for (int j = 0; j < n; ++j) d[j] = cost(f, j) - v[j];
    int endofpath = -1;
    double mind = 0.0;
    std::vector<int> scanned;
    while (endofpath == -1) {
      // Pick the unscanned column with minimal d.
      mind = inf;
      int jmin = -1;
      for (int j = 0; j < n; ++j) {
        if (!done[j] && d[j] < mind) {
          mind = d[j];
          jmin = j;
        }
      }
      OTGED_CHECK(jmin != -1);
      done[jmin] = true;
      scanned.push_back(jmin);
      if (colsol[jmin] == -1) {
        endofpath = jmin;
      } else {
        int i = colsol[jmin];
        for (int j = 0; j < n; ++j) {
          if (done[j]) continue;
          double alt = mind + cost(i, j) - v[j] - (cost(i, jmin) - v[jmin]);
          if (alt < d[j]) {
            d[j] = alt;
            pred[j] = i;
          }
        }
      }
    }
    for (int j : scanned) v[j] += d[j] - mind;
    // Backtrack the augmenting path.
    int j = endofpath;
    while (true) {
      int i = pred[j];
      colsol[j] = i;
      std::swap(rowsol[i], j);
      if (i == f) break;
    }
  }

  res.cost = 0.0;
  for (int i = 0; i < n; ++i) {
    res.row_to_col[i] = rowsol[i];
    double c = cost(i, rowsol[i]);
    res.cost += c;
    if (c >= kAssignInf / 2) res.feasible = false;
  }
  return res;
}

}  // namespace otged
