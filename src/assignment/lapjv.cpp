#include "assignment/lapjv.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/simd.hpp"

namespace otged {

namespace detail {

AssignmentResult SolveAssignmentJVScalar(const Matrix& cost) {
  OTGED_CHECK(cost.rows() == cost.cols());
  const int n = cost.rows();
  AssignmentResult res;
  res.row_to_col.assign(n, -1);
  if (n == 0) return res;

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<int> rowsol(n, -1), colsol(n, -1);
  std::vector<double> v(n, 0.0);

  // --- Column reduction (scan columns right-to-left). ---
  for (int j = n - 1; j >= 0; --j) {
    double minc = cost(0, j);
    int imin = 0;
    for (int i = 1; i < n; ++i) {
      if (cost(i, j) < minc) {
        minc = cost(i, j);
        imin = i;
      }
    }
    v[j] = minc;
    if (rowsol[imin] == -1) {
      rowsol[imin] = j;
      colsol[j] = imin;
    }
  }

  // --- Reduction transfer for assigned rows. ---
  std::vector<int> free_rows;
  for (int i = 0; i < n; ++i) {
    if (rowsol[i] == -1) {
      free_rows.push_back(i);
    } else {
      int j1 = rowsol[i];
      double minv = inf;
      for (int j = 0; j < n; ++j) {
        if (j != j1) minv = std::min(minv, cost(i, j) - v[j]);
      }
      if (minv < inf) v[j1] -= minv;
    }
  }

  // --- Augmenting row reduction (two passes). ---
  for (int pass = 0; pass < 2 && !free_rows.empty(); ++pass) {
    std::vector<int> next_free;
    size_t k = 0;
    while (k < free_rows.size()) {
      int i = free_rows[k++];
      // Find the two smallest reduced costs in row i.
      double u1 = inf, u2 = inf;
      int j1 = -1, j2 = -1;
      for (int j = 0; j < n; ++j) {
        double h = cost(i, j) - v[j];
        if (h < u1) {
          u2 = u1;
          j2 = j1;
          u1 = h;
          j1 = j;
        } else if (h < u2) {
          u2 = h;
          j2 = j;
        }
      }
      int i0 = colsol[j1];
      if (u1 < u2) {
        v[j1] -= u2 - u1;
      } else if (i0 >= 0 && j2 >= 0) {
        j1 = j2;
        i0 = colsol[j1];
      }
      rowsol[i] = j1;
      colsol[j1] = i;
      if (i0 >= 0) {
        rowsol[i0] = -1;
        if (u1 < u2) {
          // i0 goes to the head of the queue (retry immediately).
          free_rows[--k] = i0;
        } else {
          next_free.push_back(i0);
        }
      }
    }
    free_rows = next_free;
  }

  // --- Augmentation: Dijkstra-like shortest alternating paths. ---
  for (int f : free_rows) {
    std::vector<double> d(n);
    std::vector<int> pred(n, f);
    std::vector<char> done(n, false);
    for (int j = 0; j < n; ++j) d[j] = cost(f, j) - v[j];
    int endofpath = -1;
    double mind = 0.0;
    std::vector<int> scanned;
    while (endofpath == -1) {
      // Pick the unscanned column with minimal d.
      mind = inf;
      int jmin = -1;
      for (int j = 0; j < n; ++j) {
        if (!done[j] && d[j] < mind) {
          mind = d[j];
          jmin = j;
        }
      }
      OTGED_CHECK(jmin != -1);
      done[jmin] = true;
      scanned.push_back(jmin);
      if (colsol[jmin] == -1) {
        endofpath = jmin;
      } else {
        int i = colsol[jmin];
        for (int j = 0; j < n; ++j) {
          if (done[j]) continue;
          double alt = mind + cost(i, j) - v[j] - (cost(i, jmin) - v[jmin]);
          if (alt < d[j]) {
            d[j] = alt;
            pred[j] = i;
          }
        }
      }
    }
    for (int j : scanned) v[j] += d[j] - mind;
    // Backtrack the augmenting path.
    int j = endofpath;
    while (true) {
      int i = pred[j];
      colsol[j] = i;
      std::swap(rowsol[i], j);
      if (i == f) break;
    }
  }

  res.cost = 0.0;
  for (int i = 0; i < n; ++i) {
    res.row_to_col[i] = rowsol[i];
    double c = cost(i, rowsol[i]);
    res.cost += c;
    if (c >= kAssignInf / 2) res.feasible = false;
  }
  return res;
}

// Same four phases with every O(n) scan vectorized; all lane arithmetic
// keeps the scalar association (cost - v, then ((mind + c) - v) - h0), so
// reduced costs are bit-equal and every tie resolves to the same index
// the sequential scan keeps (see MinFirstIndex). Column-"done" state for
// masked scans lives in +inf/0.0 `excl` arrays, whose exact adds leave
// live values untouched.
AssignmentResult SolveAssignmentJVSimd(const Matrix& cost) {
  OTGED_CHECK(cost.rows() == cost.cols());
  const int n = cost.rows();
  AssignmentResult res;
  res.row_to_col.assign(n, -1);
  if (n == 0) return res;

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<int> rowsol(n, -1), colsol(n, -1);
  std::vector<double> v(n, 0.0);
  std::vector<double> hbuf(n);
  const double* cdata = cost.data();
  constexpr int L = simd::kDoubleLanes;

  // Reduced costs of row i into hbuf (exact scalar association), folding
  // the two smallest values of the row (counting duplicate minima) in the
  // same pass. Two independent accumulator pairs break the loop-carried
  // blend chain. Per-lane (min, second-min) pairs combine associatively,
  // so (u1, u2) match the sequential scan's values exactly.
  auto reduce_row_two_min = [&](int i, double& u1, double& u2) {
    const double* row = cdata + static_cast<size_t>(i) * n;
    u1 = inf;
    u2 = inf;
    int t = 0;
    if constexpr (L > 1) {
      if (n >= 2 * L) {
        simd::VecD b1a = simd::VecD::Broadcast(inf), b2a = b1a;
        simd::VecD b1b = b1a, b2b = b1a;
        for (; t + 2 * L <= n; t += 2 * L) {
          simd::VecD ha =
              simd::VecD::Load(row + t) - simd::VecD::Load(v.data() + t);
          simd::VecD hb = simd::VecD::Load(row + t + L) -
                          simd::VecD::Load(v.data() + t + L);
          ha.Store(hbuf.data() + t);
          hb.Store(hbuf.data() + t + L);
          simd::MaskD ma = simd::CmpLt(ha, b1a);
          simd::MaskD mb = simd::CmpLt(hb, b1b);
          b2a = simd::Min(b2a, simd::Blend(ma, b1a, ha));
          b2b = simd::Min(b2b, simd::Blend(mb, b1b, hb));
          b1a = simd::Blend(ma, ha, b1a);
          b1b = simd::Blend(mb, hb, b1b);
        }
        double l1[2 * L], l2[2 * L];
        b1a.Store(l1);
        b1b.Store(l1 + L);
        b2a.Store(l2);
        b2b.Store(l2 + L);
        for (int l = 0; l < 2 * L; ++l) {
          if (l1[l] < u1) {
            u2 = u1;
            u1 = l1[l];
          } else if (l1[l] < u2) {
            u2 = l1[l];
          }
          if (l2[l] < u2) u2 = l2[l];
        }
      }
    }
    for (; t < n; ++t) {
      const double h = row[t] - v[t];
      hbuf[t] = h;
      if (h < u1) {
        u2 = u1;
        u1 = h;
      } else if (h < u2) {
        u2 = h;
      }
    }
  };

  // --- Column reduction. Per-column (min, first argmin over ascending
  // rows) is order-independent, so it is computed lane-parallel first;
  // the right-to-left assignment sweep then replays the scalar order.
  {
    std::vector<double> minc(n), imind(n);
    int jb = 0;
    for (; jb + L <= n; jb += L) {
      simd::VecD best = simd::VecD::Load(cdata + jb);
      simd::VecD bidx = simd::VecD::Zero();
      for (int i = 1; i < n; ++i) {
        simd::VecD cur =
            simd::VecD::Load(cdata + static_cast<size_t>(i) * n + jb);
        simd::MaskD m = simd::CmpLt(cur, best);
        best = simd::Blend(m, cur, best);
        bidx = simd::Blend(m, simd::VecD::Broadcast(static_cast<double>(i)),
                           bidx);
      }
      best.Store(minc.data() + jb);
      bidx.Store(imind.data() + jb);
    }
    for (; jb < n; ++jb) {
      double best = cost(0, jb);
      int imin = 0;
      for (int i = 1; i < n; ++i) {
        if (cost(i, jb) < best) {
          best = cost(i, jb);
          imin = i;
        }
      }
      minc[jb] = best;
      imind[jb] = static_cast<double>(imin);
    }
    for (int j = n - 1; j >= 0; --j) {
      v[j] = minc[j];
      const int imin = static_cast<int>(imind[j]);
      if (rowsol[imin] == -1) {
        rowsol[imin] = j;
        colsol[j] = imin;
      }
    }
  }

  // --- Reduction transfer. ---
  std::vector<int> free_rows;
  for (int i = 0; i < n; ++i) {
    if (rowsol[i] == -1) {
      free_rows.push_back(i);
    } else {
      const int j1 = rowsol[i];
      double u1, u2;
      reduce_row_two_min(i, u1, u2);
      // min over j != j1: u1 unless the min's sole first occurrence IS
      // column j1, in which case the runner-up u2 is the answer (exact:
      // duplicated minima make u1 == u2 anyway).
      const double minv =
          (u1 < inf && simd::FirstEqIndex(hbuf.data(), n, u1) != j1) ? u1
                                                                     : u2;
      if (minv < inf) v[j1] -= minv;
    }
  }

  // --- Augmenting row reduction (two passes). ---
  for (int pass = 0; pass < 2 && !free_rows.empty(); ++pass) {
    std::vector<int> next_free;
    size_t k = 0;
    while (k < free_rows.size()) {
      const int i = free_rows[k++];
      // Two smallest reduced costs in one pass; argmins recovered by
      // first-equality scans (j1 poked out before locating j2), which
      // replays the sequential single-pass (u1, j1, u2, j2) exactly.
      double u1, u2;
      reduce_row_two_min(i, u1, u2);
      int j1 = simd::FirstEqIndex(hbuf.data(), n, u1);
      int j2 = -1;
      if (u2 < inf) {
        hbuf[j1] = inf;
        j2 = simd::FirstEqIndex(hbuf.data(), n, u2);
      }
      int i0 = colsol[j1];
      if (u1 < u2) {
        v[j1] -= u2 - u1;
      } else if (i0 >= 0 && j2 >= 0) {
        j1 = j2;
        i0 = colsol[j1];
      }
      rowsol[i] = j1;
      colsol[j1] = i;
      if (i0 >= 0) {
        rowsol[i0] = -1;
        if (u1 < u2) {
          free_rows[--k] = i0;
        } else {
          next_free.push_back(i0);
        }
      }
    }
    free_rows = next_free;
  }

  // --- Augmentation. ---
  std::vector<double> d(n), dmask(n);
  std::vector<int> pred(n);
  for (int f : free_rows) {
    std::fill(dmask.begin(), dmask.end(), 0.0);  // 0 live, +inf scanned
    std::fill(pred.begin(), pred.end(), f);
    const double* rowf = cdata + static_cast<size_t>(f) * n;
    int t = 0;
    for (; t + L <= n; t += L)
      (simd::VecD::Load(rowf + t) - simd::VecD::Load(v.data() + t))
          .Store(d.data() + t);
    for (; t < n; ++t) d[t] = rowf[t] - v[t];
    int endofpath = -1;
    double mind = 0.0;
    std::vector<int> scanned;
    while (endofpath == -1) {
      const simd::MinLoc ml =
          simd::MinFirstIndexMasked(d.data(), dmask.data(), n);
      OTGED_CHECK(ml.index != -1);
      mind = ml.value;
      const int jmin = ml.index;
      dmask[jmin] = inf;
      scanned.push_back(jmin);
      if (colsol[jmin] == -1) {
        endofpath = jmin;
      } else {
        const int i = colsol[jmin];
        const double* row = cdata + static_cast<size_t>(i) * n;
        const double h0 = cost(i, jmin) - v[jmin];
        const simd::VecD mindv = simd::VecD::Broadcast(mind);
        const simd::VecD h0v = simd::VecD::Broadcast(h0);
        t = 0;
        for (; t + L <= n; t += L) {
          // + dmask folds the "done" exclusion into the value itself:
          // alt + 0.0 is exact for live lanes, scanned lanes go to +inf
          // and can never beat their (finite) d.
          simd::VecD alt = (((mindv + simd::VecD::Load(row + t)) -
                             simd::VecD::Load(v.data() + t)) -
                            h0v) +
                           simd::VecD::Load(dmask.data() + t);
          simd::VecD dv = simd::VecD::Load(d.data() + t);
          simd::MaskD m = simd::CmpLt(alt, dv);
          simd::Blend(m, alt, dv).Store(d.data() + t);
          int bits = m.MoveMask();
          while (bits != 0) {
            const int l = __builtin_ctz(static_cast<unsigned>(bits));
            pred[t + l] = i;
            bits &= bits - 1;
          }
        }
        for (; t < n; ++t) {
          if (dmask[t] != 0.0) continue;
          const double alt = ((mind + row[t]) - v[t]) - h0;
          if (alt < d[t]) {
            d[t] = alt;
            pred[t] = i;
          }
        }
      }
    }
    for (int j : scanned) v[j] += d[j] - mind;
    int j = endofpath;
    while (true) {
      const int i = pred[j];
      colsol[j] = i;
      std::swap(rowsol[i], j);
      if (i == f) break;
    }
  }

  res.cost = 0.0;
  for (int i = 0; i < n; ++i) {
    res.row_to_col[i] = rowsol[i];
    double c = cost(i, rowsol[i]);
    res.cost += c;
    if (c >= kAssignInf / 2) res.feasible = false;
  }
  return res;
}

}  // namespace detail

AssignmentResult SolveAssignmentJV(const Matrix& cost) {
  return simd::Enabled() ? detail::SolveAssignmentJVSimd(cost)
                         : detail::SolveAssignmentJVScalar(cost);
}

}  // namespace otged
