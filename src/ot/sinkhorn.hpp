/// \file sinkhorn.hpp
/// \brief Entropic optimal transport via the Sinkhorn algorithm
/// (Algorithm 1 of the paper), including the GED-specific dummy-row
/// extension of Section 4.2.
#ifndef OTGED_OT_SINKHORN_HPP_
#define OTGED_OT_SINKHORN_HPP_

#include "core/matrix.hpp"

namespace otged {

/// Options for the Sinkhorn solver.
struct SinkhornOptions {
  double epsilon = 0.05;   ///< entropic regularization coefficient
  int max_iters = 100;     ///< maximum dual update sweeps
  double tol = 1e-9;       ///< early-exit tolerance on marginal violation
  bool log_domain = false; ///< log-space updates (stable for tiny epsilon)
};

/// Result of an entropic OT solve.
struct SinkhornResult {
  Matrix coupling;     ///< optimal coupling (same shape as the cost)
  double cost = 0.0;   ///< transport cost <C, pi>
  int iters = 0;       ///< sweeps performed
  bool converged = false;
};

/// Solves min_{pi in Pi(mu, nu)} <C, pi> + eps * H(pi) by alternating
/// dual scaling. `mu` (rows x 1) and `nu` (cols x 1) are the mass
/// distributions; total masses must agree.
SinkhornResult Sinkhorn(const Matrix& cost, const Matrix& mu,
                        const Matrix& nu, const SinkhornOptions& opt = {});

/// The paper's GED OT formulation (Eq. 11): extends the n1 x n2 cost with
/// a zero dummy row absorbing the (n2 - n1) unmatched G2 nodes, runs
/// Sinkhorn with mu = [1,...,1, n2-n1], nu = 1, and returns the coupling
/// with the dummy row removed (n1 x n2) plus w1 = <C, pi>.
SinkhornResult SolveGedOt(const Matrix& cost, const SinkhornOptions& opt = {});

namespace detail {

/// Scalar / SIMD twins behind Sinkhorn (dispatch on simd::Enabled()).
/// Both hoist the kernel matrix (and its transpose) out of the iteration
/// loop. The scalar twins replicate the original Matrix-expression
/// arithmetic value-for-value (same dot order, same CwiseDiv clamp, same
/// marginal-check cadence); the SIMD twins reassociate the reductions and
/// use the vector exp, so they track the scalar twins to a few ulp per
/// entry rather than bit-for-bit.
SinkhornResult SinkhornPlainScalar(const Matrix& cost, const Matrix& mu,
                                   const Matrix& nu,
                                   const SinkhornOptions& opt);
SinkhornResult SinkhornPlainSimd(const Matrix& cost, const Matrix& mu,
                                 const Matrix& nu,
                                 const SinkhornOptions& opt);
SinkhornResult SinkhornLogScalar(const Matrix& cost, const Matrix& mu,
                                 const Matrix& nu,
                                 const SinkhornOptions& opt);
SinkhornResult SinkhornLogSimd(const Matrix& cost, const Matrix& mu,
                               const Matrix& nu, const SinkhornOptions& opt);

}  // namespace detail

}  // namespace otged

#endif  // OTGED_OT_SINKHORN_HPP_
