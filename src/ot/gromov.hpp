/// \file gromov.hpp
/// \brief Gromov-Wasserstein machinery: the 4th-order tensor product
/// L(C1, C2) ⊗ pi in O(n^3) (Peyré-Cuturi-Solomon decomposition) and the
/// conditional-gradient solver for the paper's GEDGW objective (Eq. 17,
/// Algorithm 2).
#ifndef OTGED_OT_GROMOV_HPP_
#define OTGED_OT_GROMOV_HPP_

#include <functional>
#include <vector>

#include "core/matrix.hpp"
#include "graph/graph.hpp"

namespace otged {

/// Computes (L(C1,C2) ⊗ pi)_{i,k} = sum_{j,l} (C1_ij - C2_kl)^2 pi_{j,l}
/// in O(n^3) via r_i + c_k - 2 (C1 pi C2^T)_{i,k}, where
/// r = (C1 ∘ C1) p, c = (C2 ∘ C2) q, p/q = row/col sums of pi.
/// C1 (n1 x n1) and C2 (n2 x n2) must be symmetric.
Matrix GwTensorProduct(const Matrix& c1, const Matrix& c2, const Matrix& pi);

/// GW energy <pi, L(C1,C2) ⊗ pi>.
double GwObjective(const Matrix& c1, const Matrix& c2, const Matrix& pi);

/// Edge-label-aware tensor product (paper Appendix H.1): with each edge
/// slot assigned a *class* (no-edge, or one of the edge labels), the
/// mismatch tensor is L_{i,j,k,l} = 1{class1(i,j) != class2(k,l)} and
///   (L ⊗ pi)_{i,k} = sum(pi) - sum_c (C1^c pi (C2^c)^T)_{i,k},
/// where C1^c / C2^c are the per-class indicator matrices (which must
/// partition all n x n slots, diagonal included). O(K n^3) for K classes;
/// reduces exactly to GwTensorProduct for the two-class unlabeled case.
Matrix GwTensorProductClasses(const std::vector<Matrix>& c1,
                              const std::vector<Matrix>& c2,
                              const Matrix& pi);

/// Per-class indicator matrices of a graph's edge slots: index 0 is the
/// no-edge class (diagonal included), followed by one matrix per entry of
/// `alphabet` (label 0 = unlabeled edges is always class 1).
std::vector<Matrix> EdgeClassMatrices(const Graph& g, int padded_size,
                                      const std::vector<Label>& alphabet);

/// Options for the conditional-gradient (Frank-Wolfe) solver over the
/// Birkhoff polytope Π(1_n, 1_n).
struct CgOptions {
  int max_iters = 30;
  double tol = 1e-7;  ///< stop when the objective improvement is below this
  /// Optional warm-start coupling (defaults to the uniform 1/n matrix).
  /// Large-graph alignment is a non-convex landscape; a structure-aware
  /// start (e.g., an entropic OT plan over degree similarity) matters.
  const Matrix* init = nullptr;
};

/// Result of the fused OT+GW minimization
///   min_pi <pi, M> + (alpha/2) <pi, L(A1,A2) ⊗ pi>.
struct CgResult {
  Matrix coupling;       ///< n x n doubly-stochastic (often a permutation)
  double objective = 0;  ///< final objective value (the GED estimate)
  int iters = 0;
};

/// Minimizes the fused objective by conditional gradient: the linear
/// subproblem min <G, pi> over the Birkhoff polytope is solved exactly at
/// a permutation vertex (Hungarian), and the step size by exact quadratic
/// line search (Eq. 21). `m` is the linear (node-edit) cost, `a1`/`a2`
/// the intra-graph cost matrices (adjacency in GEDGW); all n x n.
CgResult FusedGwConditionalGradient(const Matrix& m, const Matrix& a1,
                                    const Matrix& a2, double alpha = 1.0,
                                    const CgOptions& opt = {});

/// Generalized conditional gradient over any symmetric quadratic term
/// given by its tensor-product map pi -> L ⊗ pi. Used by the edge-labeled
/// GEDGW variant; FusedGwConditionalGradient delegates here.
CgResult FusedGwConditionalGradientGeneral(
    const Matrix& m, const std::function<Matrix(const Matrix&)>& tensor_product,
    double alpha = 1.0, const CgOptions& opt = {});

namespace detail {

/// Scalar / SIMD twins behind GwTensorProduct and
/// GwTensorProductClasses (dispatch on simd::Enabled()). The scalar
/// twins keep the original Matrix-expression arithmetic bit for bit.
/// The SIMD twins restructure the cross term as (C2 (C1 pi)^T)^T so the
/// exact-zero skip rides the sparse cost matrices instead of the dense
/// intermediate, fold the Hadamard squares into the r/c passes, and
/// vectorize every inner loop — reassociated sums, so equal to a few ulp
/// rather than bit-identical.
Matrix GwTensorProductScalar(const Matrix& c1, const Matrix& c2,
                             const Matrix& pi);
Matrix GwTensorProductSimd(const Matrix& c1, const Matrix& c2,
                           const Matrix& pi);
Matrix GwTensorProductClassesScalar(const std::vector<Matrix>& c1,
                                    const std::vector<Matrix>& c2,
                                    const Matrix& pi);
Matrix GwTensorProductClassesSimd(const std::vector<Matrix>& c1,
                                  const std::vector<Matrix>& c2,
                                  const Matrix& pi);

}  // namespace detail

}  // namespace otged

#endif  // OTGED_OT_GROMOV_HPP_
