#include "ot/gromov.hpp"

#include <algorithm>
#include <cmath>

#include "assignment/hungarian.hpp"
#include "core/simd.hpp"

namespace otged {

namespace {

// a * b with MatMul's exact-zero skip on `a` and the dense axpy inner
// loop vectorized (j lanes stay independent and the k accumulation order
// is preserved, so entries match Matrix::MatMul bit for bit).
Matrix MatMulSimd(const Matrix& a, const Matrix& b) {
  OTGED_CHECK(a.cols() == b.rows());
  const int kk = a.cols(), nn = b.cols();
  Matrix r(a.rows(), nn, 0.0);
  constexpr int L = simd::kDoubleLanes;
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + static_cast<size_t>(i) * kk;
    double* out = r.data() + static_cast<size_t>(i) * nn;
    for (int k = 0; k < kk; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.data() + static_cast<size_t>(k) * nn;
      const simd::VecD av = simd::VecD::Broadcast(aik);
      int j = 0;
      for (; j + L <= nn; j += L)
        (simd::VecD::Load(out + j) + av * simd::VecD::Load(brow + j))
            .Store(out + j);
      for (; j < nn; ++j) out[j] += aik * brow[j];
    }
  }
  return r;
}

// The cross term C1 pi C2^T evaluated as (C2 (C1 pi)^T)^T. C1 pi skips
// C1's zero entries already; the flip lets the second product skip C2's
// zeros too instead of grinding a dense intermediate against them (cost
// matrices are adjacency-like and sparse; the intermediate never is).
Matrix CrossTermSimd(const Matrix& c1, const Matrix& c2, const Matrix& pi) {
  return MatMulSimd(c2, MatMulSimd(c1, pi).Transpose()).Transpose();
}

}  // namespace

namespace detail {

Matrix GwTensorProductScalar(const Matrix& c1, const Matrix& c2,
                             const Matrix& pi) {
  const int n1 = c1.rows(), n2 = c2.rows();
  Matrix p = pi.RowSums();               // n1 x 1
  Matrix q = pi.ColSums().Transpose();   // n2 x 1
  Matrix c1sq = c1.Hadamard(c1);
  Matrix c2sq = c2.Hadamard(c2);
  Matrix r = c1sq.MatMul(p);  // n1 x 1
  Matrix c = c2sq.MatMul(q);  // n2 x 1
  Matrix cross = c1.MatMul(pi).MatMul(c2.Transpose());  // n1 x n2
  Matrix out(n1, n2);
  for (int i = 0; i < n1; ++i)
    for (int k = 0; k < n2; ++k)
      out(i, k) = r(i, 0) + c(k, 0) - 2.0 * cross(i, k);
  return out;
}

Matrix GwTensorProductSimd(const Matrix& c1, const Matrix& c2,
                           const Matrix& pi) {
  const int n1 = c1.rows(), n2 = c2.rows();
  constexpr int L = simd::kDoubleLanes;
  const double* pid = pi.data();
  // Marginals of pi: row sums folded per row, column sums accumulated
  // lane-parallel across rows.
  std::vector<double> p(static_cast<size_t>(n1));
  std::vector<double> q(static_cast<size_t>(n2), 0.0);
  for (int i = 0; i < n1; ++i) {
    const double* row = pid + static_cast<size_t>(i) * n2;
    simd::VecD acc = simd::VecD::Zero();
    int j = 0;
    for (; j + L <= n2; j += L) {
      const simd::VecD x = simd::VecD::Load(row + j);
      acc = acc + x;
      (simd::VecD::Load(q.data() + j) + x).Store(q.data() + j);
    }
    double s = simd::HSum(acc);
    for (; j < n2; ++j) {
      s += row[j];
      q[static_cast<size_t>(j)] += row[j];
    }
    p[static_cast<size_t>(i)] = s;
  }
  // r_i = sum_j C1(i,j)^2 p_j and c_k = sum_j C2(k,j)^2 q_j with the
  // Hadamard squares folded into the pass (no materialized C^2).
  const auto sq_dot = [](const double* row, const double* w, int n) {
    simd::VecD acc = simd::VecD::Zero();
    int j = 0;
    for (; j + L <= n; j += L) {
      const simd::VecD x = simd::VecD::Load(row + j);
      acc = acc + (x * x) * simd::VecD::Load(w + j);
    }
    double s = simd::HSum(acc);
    for (; j < n; ++j) s += (row[j] * row[j]) * w[j];
    return s;
  };
  std::vector<double> r(static_cast<size_t>(n1)), c(static_cast<size_t>(n2));
  for (int i = 0; i < n1; ++i)
    r[static_cast<size_t>(i)] =
        sq_dot(c1.data() + static_cast<size_t>(i) * n1, p.data(), n1);
  for (int k = 0; k < n2; ++k)
    c[static_cast<size_t>(k)] =
        sq_dot(c2.data() + static_cast<size_t>(k) * n2, q.data(), n2);
  Matrix cross = CrossTermSimd(c1, c2, pi);
  Matrix out(n1, n2);
  const simd::VecD two = simd::VecD::Broadcast(2.0);
  for (int i = 0; i < n1; ++i) {
    const double* xrow = cross.data() + static_cast<size_t>(i) * n2;
    double* orow = out.data() + static_cast<size_t>(i) * n2;
    const simd::VecD ri = simd::VecD::Broadcast(r[static_cast<size_t>(i)]);
    int k = 0;
    for (; k + L <= n2; k += L)
      ((ri + simd::VecD::Load(c.data() + k)) -
       two * simd::VecD::Load(xrow + k))
          .Store(orow + k);
    for (; k < n2; ++k)
      orow[k] =
          (r[static_cast<size_t>(i)] + c[static_cast<size_t>(k)]) -
          2.0 * xrow[k];
  }
  return out;
}

Matrix GwTensorProductClassesScalar(const std::vector<Matrix>& c1,
                                    const std::vector<Matrix>& c2,
                                    const Matrix& pi) {
  const int n1 = pi.rows(), n2 = pi.cols();
  Matrix out(n1, n2, pi.Sum());
  for (size_t c = 0; c < c1.size(); ++c) {
    OTGED_CHECK(c1[c].rows() == n1 && c2[c].rows() == n2);
    out -= c1[c].MatMul(pi).MatMul(c2[c].Transpose());
  }
  return out;
}

Matrix GwTensorProductClassesSimd(const std::vector<Matrix>& c1,
                                  const std::vector<Matrix>& c2,
                                  const Matrix& pi) {
  const int n1 = pi.rows(), n2 = pi.cols();
  Matrix out(n1, n2, pi.Sum());
  for (size_t c = 0; c < c1.size(); ++c) {
    OTGED_CHECK(c1[c].rows() == n1 && c2[c].rows() == n2);
    out -= CrossTermSimd(c1[c], c2[c], pi);
  }
  return out;
}

}  // namespace detail

Matrix GwTensorProduct(const Matrix& c1, const Matrix& c2, const Matrix& pi) {
  OTGED_CHECK(c1.rows() == c1.cols() && c2.rows() == c2.cols());
  OTGED_CHECK(pi.rows() == c1.rows() && pi.cols() == c2.rows());
  return simd::Enabled() ? detail::GwTensorProductSimd(c1, c2, pi)
                         : detail::GwTensorProductScalar(c1, c2, pi);
}

double GwObjective(const Matrix& c1, const Matrix& c2, const Matrix& pi) {
  return pi.Dot(GwTensorProduct(c1, c2, pi));
}

Matrix GwTensorProductClasses(const std::vector<Matrix>& c1,
                              const std::vector<Matrix>& c2,
                              const Matrix& pi) {
  OTGED_CHECK(!c1.empty() && c1.size() == c2.size());
  return simd::Enabled() ? detail::GwTensorProductClassesSimd(c1, c2, pi)
                         : detail::GwTensorProductClassesScalar(c1, c2, pi);
}

std::vector<Matrix> EdgeClassMatrices(const Graph& g, int padded_size,
                                      const std::vector<Label>& alphabet) {
  const int n = padded_size;
  OTGED_CHECK(g.NumNodes() <= n);
  std::vector<Matrix> classes(alphabet.size() + 2, Matrix(n, n, 0.0));
  // Class 0: no edge (diagonal and dummy slots included).
  classes[0] = Matrix::Ones(n, n);
  auto class_of = [&](Label l) -> int {
    if (l == 0) return 1;
    for (size_t i = 0; i < alphabet.size(); ++i)
      if (alphabet[i] == l) return static_cast<int>(i) + 2;
    OTGED_CHECK_MSG(false, "edge label outside the alphabet");
    return -1;
  };
  for (int u = 0; u < g.NumNodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      int c = class_of(g.edge_label(u, v));
      classes[c](u, v) = 1.0;
      classes[0](u, v) = 0.0;
    }
  }
  return classes;
}

CgResult FusedGwConditionalGradientGeneral(
    const Matrix& m,
    const std::function<Matrix(const Matrix&)>& tensor_product, double alpha,
    const CgOptions& opt) {
  OTGED_CHECK(m.rows() == m.cols());
  const int n = m.rows();

  auto objective = [&](const Matrix& pi) {
    return m.Dot(pi) + 0.5 * alpha * pi.Dot(tensor_product(pi));
  };

  // Uniform doubly-stochastic start unless the caller warm-starts.
  Matrix pi = opt.init != nullptr ? *opt.init : Matrix(n, n, 1.0 / n);
  OTGED_CHECK(pi.rows() == n && pi.cols() == n);
  CgResult res;
  double prev = objective(pi);

  for (int it = 0; it < opt.max_iters; ++it) {
    res.iters = it + 1;
    // Gradient of the fused objective (the quadratic form is symmetric,
    // so d/dpi (1/2 <pi, L ⊗ pi>) = L ⊗ pi).
    Matrix lp = tensor_product(pi);
    Matrix grad = m + lp * alpha;
    // Linear subproblem over the Birkhoff polytope: permutation vertex.
    AssignmentResult lap = SolveAssignment(grad);
    Matrix target(n, n, 0.0);
    for (int i = 0; i < n; ++i) target(i, lap.row_to_col[i]) = 1.0;

    Matrix delta = target - pi;
    // Exact line search on f(pi + gamma * delta), a quadratic in gamma:
    //   a = (alpha/2) <delta, L ⊗ delta>,
    //   b = <delta, M> + alpha <delta, L ⊗ pi>.
    double a = 0.5 * alpha * delta.Dot(tensor_product(delta));
    double b = delta.Dot(m) + alpha * delta.Dot(lp);
    double gamma;
    if (a > 1e-15) {
      gamma = std::clamp(-b / (2.0 * a), 0.0, 1.0);
    } else {
      gamma = (a + b < 0.0) ? 1.0 : 0.0;  // f(1) - f(0) = a + b
    }
    if (gamma <= 0.0) break;
    pi += delta * gamma;
    double cur = objective(pi);
    if (prev - cur < opt.tol) {
      prev = cur;
      break;
    }
    prev = cur;
  }

  res.coupling = pi;
  res.objective = prev;
  return res;
}

CgResult FusedGwConditionalGradient(const Matrix& m, const Matrix& a1,
                                    const Matrix& a2, double alpha,
                                    const CgOptions& opt) {
  const int n = m.rows();
  OTGED_CHECK(a1.rows() == n && a1.cols() == n);
  OTGED_CHECK(a2.rows() == n && a2.cols() == n);
  return FusedGwConditionalGradientGeneral(
      m, [&](const Matrix& pi) { return GwTensorProduct(a1, a2, pi); },
      alpha, opt);
}

}  // namespace otged
