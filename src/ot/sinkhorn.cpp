#include "ot/sinkhorn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/simd.hpp"

namespace otged {

namespace {

constexpr double kTiny = 1e-300;

// Marginal violation ||pi 1 - mu||_inf + ||pi^T 1 - nu||_inf.
double MarginalError(const Matrix& pi, const Matrix& mu, const Matrix& nu) {
  Matrix r = pi.RowSums();
  Matrix c = pi.ColSums().Transpose();
  return r.MaxAbsDiff(mu) + c.MaxAbsDiff(nu);
}

// CwiseDiv's denominator clamp, inlined for a single value.
inline double ClampDen(double d) {
  if (std::abs(d) < kTiny) d = d < 0 ? -kTiny : kTiny;
  return d;
}

}  // namespace

namespace detail {

// Plain-domain scaling with the kernel matrix K = exp(-C / eps) AND its
// transpose built once, outside the iteration loop (the original spelled
// the updates as Matrix expressions, re-transposing K and reallocating
// temporaries every sweep). The row dots replicate MatMul's zero-skip
// i-k-j accumulation order and psi/phi replicate the CwiseDiv clamp, so
// every iterate — and the final coupling — matches the original
// expression-by-expression arithmetic bit for bit.
SinkhornResult SinkhornPlainScalar(const Matrix& cost, const Matrix& mu,
                                   const Matrix& nu,
                                   const SinkhornOptions& opt) {
  const int n1 = cost.rows(), n2 = cost.cols();
  Matrix K = cost.Map([&](double c) { return std::exp(-c / opt.epsilon); });
  Matrix Kt = K.Transpose();
  const double* kd = K.data();
  const double* ktd = Kt.data();
  std::vector<double> phi(static_cast<size_t>(n1), 1.0);
  std::vector<double> psi(static_cast<size_t>(n2), 1.0);
  Matrix pi(n1, n2);

  const auto build_coupling = [&] {
    for (int i = 0; i < n1; ++i) {
      const double* krow = kd + static_cast<size_t>(i) * n2;
      double* prow = pi.data() + static_cast<size_t>(i) * n2;
      const double p = phi[static_cast<size_t>(i)];
      for (int j = 0; j < n2; ++j)
        prow[j] = (krow[j] * p) * psi[static_cast<size_t>(j)];
    }
  };

  SinkhornResult res;
  for (int m = 0; m < opt.max_iters; ++m) {
    for (int j = 0; j < n2; ++j) {
      const double* krow = ktd + static_cast<size_t>(j) * n1;
      double den = 0.0;
      for (int i = 0; i < n1; ++i) {
        const double k = krow[i];
        if (k == 0.0) continue;  // MatMul's exact-zero skip
        den += k * phi[static_cast<size_t>(i)];
      }
      psi[static_cast<size_t>(j)] = nu(j, 0) / ClampDen(den);
    }
    for (int i = 0; i < n1; ++i) {
      const double* krow = kd + static_cast<size_t>(i) * n2;
      double den = 0.0;
      for (int j = 0; j < n2; ++j) {
        const double k = krow[j];
        if (k == 0.0) continue;
        den += k * psi[static_cast<size_t>(j)];
      }
      phi[static_cast<size_t>(i)] = mu(i, 0) / ClampDen(den);
    }
    res.iters = m + 1;
    if ((m + 1) % 5 == 0 || m + 1 == opt.max_iters) {
      build_coupling();
      if (MarginalError(pi, mu, nu) < opt.tol) {
        res.converged = true;
        break;
      }
    }
  }
  build_coupling();
  res.coupling = pi;
  res.cost = cost.Dot(pi);
  return res;
}

// Vector twin: the same hoisted structure with the kernel build on
// simd::Exp, two-accumulator vector dots for the scaling denominators,
// and the coupling build fused with the marginal sums. Reductions are
// reassociated, so iterates track the scalar twin to a few ulp.
SinkhornResult SinkhornPlainSimd(const Matrix& cost, const Matrix& mu,
                                 const Matrix& nu,
                                 const SinkhornOptions& opt) {
  const int n1 = cost.rows(), n2 = cost.cols();
  constexpr int L = simd::kDoubleLanes;
  Matrix K(n1, n2);
  {
    const double* cd = cost.data();
    double* out = K.data();
    const int total = n1 * n2;
    const simd::VecD epsv = simd::VecD::Broadcast(opt.epsilon);
    const simd::VecD zero = simd::VecD::Zero();
    int t = 0;
    for (; t + L <= total; t += L)
      simd::Exp((zero - simd::VecD::Load(cd + t)) / epsv).Store(out + t);
    for (; t < total; ++t) out[t] = std::exp(-cd[t] / opt.epsilon);
  }
  Matrix Kt = K.Transpose();
  const double* kd = K.data();
  const double* ktd = Kt.data();
  std::vector<double> phi(static_cast<size_t>(n1), 1.0);
  std::vector<double> psi(static_cast<size_t>(n2), 1.0);
  std::vector<double> colsum(static_cast<size_t>(n2));
  Matrix pi(n1, n2);

  // dot(a, b) with two independent vector accumulators.
  const auto vdot = [](const double* a, const double* b, int n) {
    double s = 0.0;
    int t = 0;
    if constexpr (L > 1) {
      if (n >= 2 * L) {
        simd::VecD acc0 = simd::VecD::Zero(), acc1 = acc0;
        for (; t + 2 * L <= n; t += 2 * L) {
          acc0 = acc0 + simd::VecD::Load(a + t) * simd::VecD::Load(b + t);
          acc1 = acc1 +
                 simd::VecD::Load(a + t + L) * simd::VecD::Load(b + t + L);
        }
        s = simd::HSum(acc0 + acc1);
      }
    }
    for (; t < n; ++t) s += a[t] * b[t];
    return s;
  };

  // Fills pi = diag(phi) K diag(psi) and accumulates the row/column sums
  // in the same pass; returns the marginal violation.
  const auto build_and_error = [&] {
    std::fill(colsum.begin(), colsum.end(), 0.0);
    double row_err = 0.0;
    for (int i = 0; i < n1; ++i) {
      const double* krow = kd + static_cast<size_t>(i) * n2;
      double* prow = pi.data() + static_cast<size_t>(i) * n2;
      const simd::VecD p = simd::VecD::Broadcast(phi[static_cast<size_t>(i)]);
      simd::VecD racc = simd::VecD::Zero();
      int j = 0;
      for (; j + L <= n2; j += L) {
        const simd::VecD pij = (simd::VecD::Load(krow + j) * p) *
                               simd::VecD::Load(psi.data() + j);
        pij.Store(prow + j);
        racc = racc + pij;
        (simd::VecD::Load(colsum.data() + j) + pij)
            .Store(colsum.data() + j);
      }
      double rs = simd::HSum(racc);
      for (; j < n2; ++j) {
        const double pij =
            (krow[j] * phi[static_cast<size_t>(i)]) *
            psi[static_cast<size_t>(j)];
        prow[j] = pij;
        rs += pij;
        colsum[static_cast<size_t>(j)] += pij;
      }
      row_err = std::max(row_err, std::abs(rs - mu(i, 0)));
    }
    simd::VecD cacc = simd::VecD::Zero();
    int j = 0;
    for (; j + L <= n2; j += L) {
      const simd::VecD d = simd::VecD::Load(colsum.data() + j) -
                           simd::VecD::Load(nu.data() + j);
      cacc = simd::Max(cacc, simd::Max(d, simd::VecD::Zero() - d));
    }
    double col_err = simd::HMax(cacc);
    for (; j < n2; ++j)
      col_err = std::max(col_err,
                         std::abs(colsum[static_cast<size_t>(j)] - nu(j, 0)));
    return row_err + col_err;
  };

  SinkhornResult res;
  for (int m = 0; m < opt.max_iters; ++m) {
    for (int j = 0; j < n2; ++j)
      psi[static_cast<size_t>(j)] =
          nu(j, 0) /
          ClampDen(vdot(ktd + static_cast<size_t>(j) * n1, phi.data(), n1));
    for (int i = 0; i < n1; ++i)
      phi[static_cast<size_t>(i)] =
          mu(i, 0) /
          ClampDen(vdot(kd + static_cast<size_t>(i) * n2, psi.data(), n2));
    res.iters = m + 1;
    if ((m + 1) % 5 == 0 || m + 1 == opt.max_iters) {
      if (build_and_error() < opt.tol) {
        res.converged = true;
        break;
      }
    }
  }
  build_and_error();
  res.cost = vdot(cost.data(), pi.data(), n1 * n2);
  res.coupling = std::move(pi);
  return res;
}

// Log-domain variant: potentials f, g with soft-min updates; immune to
// underflow for very small epsilon. Kept verbatim as the reference for
// the SIMD twin below.
SinkhornResult SinkhornLogScalar(const Matrix& cost, const Matrix& mu,
                                 const Matrix& nu,
                                 const SinkhornOptions& opt) {
  const int n1 = cost.rows(), n2 = cost.cols();
  const double eps = opt.epsilon;
  std::vector<double> f(n1, 0.0), g(n2, 0.0);
  std::vector<double> log_mu(n1), log_nu(n2);
  for (int i = 0; i < n1; ++i) log_mu[i] = std::log(std::max(mu(i, 0), kTiny));
  for (int j = 0; j < n2; ++j) log_nu[j] = std::log(std::max(nu(j, 0), kTiny));

  auto softmin_row = [&](int i) {
    // -eps * logsumexp_j ((-C_ij + g_j) / eps)
    double mx = -std::numeric_limits<double>::infinity();
    for (int j = 0; j < n2; ++j)
      mx = std::max(mx, (-cost(i, j) + g[j]) / eps);
    double s = 0.0;
    for (int j = 0; j < n2; ++j)
      s += std::exp((-cost(i, j) + g[j]) / eps - mx);
    return -eps * (mx + std::log(s));
  };
  auto softmin_col = [&](int j) {
    double mx = -std::numeric_limits<double>::infinity();
    for (int i = 0; i < n1; ++i)
      mx = std::max(mx, (-cost(i, j) + f[i]) / eps);
    double s = 0.0;
    for (int i = 0; i < n1; ++i)
      s += std::exp((-cost(i, j) + f[i]) / eps - mx);
    return -eps * (mx + std::log(s));
  };

  SinkhornResult res;
  Matrix pi(n1, n2);
  for (int m = 0; m < opt.max_iters; ++m) {
    for (int j = 0; j < n2; ++j) g[j] = softmin_col(j) + eps * log_nu[j];
    for (int i = 0; i < n1; ++i) f[i] = softmin_row(i) + eps * log_mu[i];
    res.iters = m + 1;
    if ((m + 1) % 5 == 0 || m + 1 == opt.max_iters) {
      for (int i = 0; i < n1; ++i)
        for (int j = 0; j < n2; ++j)
          pi(i, j) = std::exp((f[i] + g[j] - cost(i, j)) / eps);
      if (MarginalError(pi, mu, nu) < opt.tol) {
        res.converged = true;
        break;
      }
    }
  }
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n2; ++j)
      pi(i, j) = std::exp((f[i] + g[j] - cost(i, j)) / eps);
  res.coupling = pi;
  res.cost = cost.Dot(pi);
  return res;
}

// Vector twin of the log-domain solver. -C and its transpose are
// precomputed once (negation is exact, so (-c + g) keeps the scalar
// association) and each soft-min stores its shifted arguments in a
// scratch buffer: one fused max pass (max is order-independent, so the
// vector fold is exact), then one vector-exp accumulation pass instead
// of recomputing the argument per element. logsumexp sums are
// reassociated and simd::Exp is ~1 ulp vs std::exp, hence "close", not
// bit-equal.
SinkhornResult SinkhornLogSimd(const Matrix& cost, const Matrix& mu,
                               const Matrix& nu,
                               const SinkhornOptions& opt) {
  const int n1 = cost.rows(), n2 = cost.cols();
  const double eps = opt.epsilon;
  constexpr int L = simd::kDoubleLanes;
  Matrix mc(n1, n2);
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n2; ++j) mc(i, j) = -cost(i, j);
  Matrix mct = mc.Transpose();
  const double* mcd = mc.data();
  const double* mctd = mct.data();
  std::vector<double> f(static_cast<size_t>(n1), 0.0);
  std::vector<double> g(static_cast<size_t>(n2), 0.0);
  std::vector<double> log_mu(static_cast<size_t>(n1));
  std::vector<double> log_nu(static_cast<size_t>(n2));
  for (int i = 0; i < n1; ++i)
    log_mu[static_cast<size_t>(i)] = std::log(std::max(mu(i, 0), kTiny));
  for (int j = 0; j < n2; ++j)
    log_nu[static_cast<size_t>(j)] = std::log(std::max(nu(j, 0), kTiny));
  std::vector<double> tbuf(static_cast<size_t>(std::max(n1, n2)));
  std::vector<double> colsum(static_cast<size_t>(n2));
  const simd::VecD epsv = simd::VecD::Broadcast(eps);

  // -eps * logsumexp_t ((row[t] + add[t]) / eps) over t in [0, n).
  const auto softmin = [&](const double* row, const double* add, int n) {
    double mx = -std::numeric_limits<double>::infinity();
    int t = 0;
    if constexpr (L > 1) {
      if (n >= L) {
        simd::VecD macc = simd::VecD::Broadcast(mx);
        for (; t + L <= n; t += L) {
          const simd::VecD x =
              (simd::VecD::Load(row + t) + simd::VecD::Load(add + t)) / epsv;
          x.Store(tbuf.data() + t);
          macc = simd::Max(macc, x);
        }
        mx = simd::HMax(macc);
      }
    }
    for (; t < n; ++t) {
      tbuf[static_cast<size_t>(t)] = (row[t] + add[t]) / eps;
      mx = std::max(mx, tbuf[static_cast<size_t>(t)]);
    }
    double s = 0.0;
    t = 0;
    if constexpr (L > 1) {
      if (n >= L) {
        const simd::VecD mxv = simd::VecD::Broadcast(mx);
        simd::VecD acc = simd::VecD::Zero();
        for (; t + L <= n; t += L)
          acc = acc + simd::Exp(simd::VecD::Load(tbuf.data() + t) - mxv);
        s = simd::HSum(acc);
      }
    }
    for (; t < n; ++t) s += std::exp(tbuf[static_cast<size_t>(t)] - mx);
    return -eps * (mx + std::log(s));
  };

  Matrix pi(n1, n2);
  // pi = exp((f_i + g_j - C_ij) / eps) fused with the marginal sums.
  const auto build_and_error = [&] {
    std::fill(colsum.begin(), colsum.end(), 0.0);
    double row_err = 0.0;
    for (int i = 0; i < n1; ++i) {
      const double* mrow = mcd + static_cast<size_t>(i) * n2;
      double* prow = pi.data() + static_cast<size_t>(i) * n2;
      const simd::VecD fi =
          simd::VecD::Broadcast(f[static_cast<size_t>(i)]);
      simd::VecD racc = simd::VecD::Zero();
      int j = 0;
      for (; j + L <= n2; j += L) {
        const simd::VecD pij = simd::Exp(
            ((fi + simd::VecD::Load(g.data() + j)) +
             simd::VecD::Load(mrow + j)) /
            epsv);
        pij.Store(prow + j);
        racc = racc + pij;
        (simd::VecD::Load(colsum.data() + j) + pij)
            .Store(colsum.data() + j);
      }
      double rs = simd::HSum(racc);
      for (; j < n2; ++j) {
        const double pij = std::exp(
            ((f[static_cast<size_t>(i)] + g[static_cast<size_t>(j)]) +
             mrow[j]) /
            eps);
        prow[j] = pij;
        rs += pij;
        colsum[static_cast<size_t>(j)] += pij;
      }
      row_err = std::max(row_err, std::abs(rs - mu(i, 0)));
    }
    double col_err = 0.0;
    for (int j = 0; j < n2; ++j)
      col_err = std::max(col_err,
                         std::abs(colsum[static_cast<size_t>(j)] - nu(j, 0)));
    return row_err + col_err;
  };

  SinkhornResult res;
  for (int m = 0; m < opt.max_iters; ++m) {
    for (int j = 0; j < n2; ++j)
      g[static_cast<size_t>(j)] =
          softmin(mctd + static_cast<size_t>(j) * n1, f.data(), n1) +
          eps * log_nu[static_cast<size_t>(j)];
    for (int i = 0; i < n1; ++i)
      f[static_cast<size_t>(i)] =
          softmin(mcd + static_cast<size_t>(i) * n2, g.data(), n2) +
          eps * log_mu[static_cast<size_t>(i)];
    res.iters = m + 1;
    if ((m + 1) % 5 == 0 || m + 1 == opt.max_iters) {
      if (build_and_error() < opt.tol) {
        res.converged = true;
        break;
      }
    }
  }
  build_and_error();
  res.cost = cost.Dot(pi);
  res.coupling = std::move(pi);
  return res;
}

}  // namespace detail

SinkhornResult Sinkhorn(const Matrix& cost, const Matrix& mu,
                        const Matrix& nu, const SinkhornOptions& opt) {
  OTGED_CHECK(mu.rows() == cost.rows() && mu.cols() == 1);
  OTGED_CHECK(nu.rows() == cost.cols() && nu.cols() == 1);
  OTGED_CHECK(opt.epsilon > 0.0);
  OTGED_CHECK_MSG(std::abs(mu.Sum() - nu.Sum()) < 1e-6,
                  "total masses must agree");
  if (opt.log_domain) {
    return simd::Enabled() ? detail::SinkhornLogSimd(cost, mu, nu, opt)
                           : detail::SinkhornLogScalar(cost, mu, nu, opt);
  }
  return simd::Enabled() ? detail::SinkhornPlainSimd(cost, mu, nu, opt)
                         : detail::SinkhornPlainScalar(cost, mu, nu, opt);
}

SinkhornResult SolveGedOt(const Matrix& cost, const SinkhornOptions& opt) {
  const int n1 = cost.rows(), n2 = cost.cols();
  OTGED_CHECK(n1 <= n2);
  // Extend with the zero dummy row (Eq. 11).
  Matrix ext = cost.ConcatRows(Matrix(1, n2, 0.0));
  Matrix mu = Matrix::ColVec(n1 + 1, 1.0);
  mu(n1, 0) = static_cast<double>(n2 - n1);
  Matrix nu = Matrix::ColVec(n2, 1.0);
  // Degenerate case n1 == n2: dummy mass 0 is fine in log/plain updates
  // (row scaling sends that row to ~0).
  SinkhornResult full = Sinkhorn(ext, mu, nu, opt);
  SinkhornResult res;
  res.coupling = full.coupling.SliceRows(0, n1);
  res.cost = cost.Dot(res.coupling);
  res.iters = full.iters;
  res.converged = full.converged;
  return res;
}

}  // namespace otged
