#include "ot/sinkhorn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace otged {

namespace {

constexpr double kTiny = 1e-300;

// Marginal violation ||pi 1 - mu||_inf + ||pi^T 1 - nu||_inf.
double MarginalError(const Matrix& pi, const Matrix& mu, const Matrix& nu) {
  Matrix r = pi.RowSums();
  Matrix c = pi.ColSums().Transpose();
  return r.MaxAbsDiff(mu) + c.MaxAbsDiff(nu);
}

SinkhornResult SinkhornPlain(const Matrix& cost, const Matrix& mu,
                             const Matrix& nu, const SinkhornOptions& opt) {
  const int n1 = cost.rows(), n2 = cost.cols();
  Matrix K = cost.Map([&](double c) { return std::exp(-c / opt.epsilon); });
  Matrix phi = Matrix::ColVec(n1, 1.0);
  Matrix psi = Matrix::ColVec(n2, 1.0);
  SinkhornResult res;
  for (int m = 0; m < opt.max_iters; ++m) {
    psi = nu.CwiseDiv(K.Transpose().MatMul(phi), kTiny);
    phi = mu.CwiseDiv(K.MatMul(psi), kTiny);
    res.iters = m + 1;
    if ((m + 1) % 5 == 0 || m + 1 == opt.max_iters) {
      Matrix pi = K.ScaleRows(phi).ScaleCols(psi);
      if (MarginalError(pi, mu, nu) < opt.tol) {
        res.converged = true;
        break;
      }
    }
  }
  res.coupling = K.ScaleRows(phi).ScaleCols(psi);
  res.cost = cost.Dot(res.coupling);
  return res;
}

// Log-domain variant: potentials f, g with soft-min updates; immune to
// underflow for very small epsilon.
SinkhornResult SinkhornLog(const Matrix& cost, const Matrix& mu,
                           const Matrix& nu, const SinkhornOptions& opt) {
  const int n1 = cost.rows(), n2 = cost.cols();
  const double eps = opt.epsilon;
  std::vector<double> f(n1, 0.0), g(n2, 0.0);
  std::vector<double> log_mu(n1), log_nu(n2);
  for (int i = 0; i < n1; ++i) log_mu[i] = std::log(std::max(mu(i, 0), kTiny));
  for (int j = 0; j < n2; ++j) log_nu[j] = std::log(std::max(nu(j, 0), kTiny));

  auto softmin_row = [&](int i) {
    // -eps * logsumexp_j ((-C_ij + g_j) / eps)
    double mx = -std::numeric_limits<double>::infinity();
    for (int j = 0; j < n2; ++j)
      mx = std::max(mx, (-cost(i, j) + g[j]) / eps);
    double s = 0.0;
    for (int j = 0; j < n2; ++j)
      s += std::exp((-cost(i, j) + g[j]) / eps - mx);
    return -eps * (mx + std::log(s));
  };
  auto softmin_col = [&](int j) {
    double mx = -std::numeric_limits<double>::infinity();
    for (int i = 0; i < n1; ++i)
      mx = std::max(mx, (-cost(i, j) + f[i]) / eps);
    double s = 0.0;
    for (int i = 0; i < n1; ++i)
      s += std::exp((-cost(i, j) + f[i]) / eps - mx);
    return -eps * (mx + std::log(s));
  };

  SinkhornResult res;
  Matrix pi(n1, n2);
  for (int m = 0; m < opt.max_iters; ++m) {
    for (int j = 0; j < n2; ++j) g[j] = softmin_col(j) + eps * log_nu[j];
    for (int i = 0; i < n1; ++i) f[i] = softmin_row(i) + eps * log_mu[i];
    res.iters = m + 1;
    if ((m + 1) % 5 == 0 || m + 1 == opt.max_iters) {
      for (int i = 0; i < n1; ++i)
        for (int j = 0; j < n2; ++j)
          pi(i, j) = std::exp((f[i] + g[j] - cost(i, j)) / eps);
      if (MarginalError(pi, mu, nu) < opt.tol) {
        res.converged = true;
        break;
      }
    }
  }
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n2; ++j)
      pi(i, j) = std::exp((f[i] + g[j] - cost(i, j)) / eps);
  res.coupling = pi;
  res.cost = cost.Dot(pi);
  return res;
}

}  // namespace

SinkhornResult Sinkhorn(const Matrix& cost, const Matrix& mu,
                        const Matrix& nu, const SinkhornOptions& opt) {
  OTGED_CHECK(mu.rows() == cost.rows() && mu.cols() == 1);
  OTGED_CHECK(nu.rows() == cost.cols() && nu.cols() == 1);
  OTGED_CHECK(opt.epsilon > 0.0);
  OTGED_CHECK_MSG(std::abs(mu.Sum() - nu.Sum()) < 1e-6,
                  "total masses must agree");
  return opt.log_domain ? SinkhornLog(cost, mu, nu, opt)
                        : SinkhornPlain(cost, mu, nu, opt);
}

SinkhornResult SolveGedOt(const Matrix& cost, const SinkhornOptions& opt) {
  const int n1 = cost.rows(), n2 = cost.cols();
  OTGED_CHECK(n1 <= n2);
  // Extend with the zero dummy row (Eq. 11).
  Matrix ext = cost.ConcatRows(Matrix(1, n2, 0.0));
  Matrix mu = Matrix::ColVec(n1 + 1, 1.0);
  mu(n1, 0) = static_cast<double>(n2 - n1);
  Matrix nu = Matrix::ColVec(n2, 1.0);
  // Degenerate case n1 == n2: dummy mass 0 is fine in log/plain updates
  // (row scaling sends that row to ~0).
  SinkhornResult full = Sinkhorn(ext, mu, nu, opt);
  SinkhornResult res;
  res.coupling = full.coupling.SliceRows(0, n1);
  res.cost = cost.Dot(res.coupling);
  res.iters = full.iters;
  res.converged = full.converged;
  return res;
}

}  // namespace otged
