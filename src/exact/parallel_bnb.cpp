#include "exact/parallel_bnb.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "exact/search_common.hpp"

namespace otged {

using internal::DfsState;
using internal::Searcher;

namespace {

/// One root subtree: a mapping prefix, the do/undo state replayed to it,
/// and an explicit resumable DFS stack so a worker can advance the
/// subtree by a bounded expansion quota and suspend. All fields are
/// owned by exactly one worker within a round (subtrees are distributed
/// one per ParallelFor index), so none of them need synchronization.
struct Subtree {
  struct Frame {
    std::vector<std::pair<int, int>> kids;  ///< (delta, v) ascending
    size_t next = 0;                        ///< next child to consume
  };

  std::vector<int> prefix;   ///< G2 choices for order[0..depth_of_prefix)
  DfsState state;            ///< positioned at the node owning stack.back()
  std::vector<Frame> stack;  ///< frames root..current, empty before start
  bool started = false;
  bool done = false;
  long expansions = 0;        ///< lifetime expansions in this subtree
  long slice_expansions = 0;  ///< consumed in the current round
  int local_best = std::numeric_limits<int>::max();  ///< best leaf total
  bool local_found = false;
  NodeMatching local_matching;
};

/// Publishes a leaf cost into the pending incumbent via CAS-min. Relaxed
/// ordering suffices: the value is folded by the driver after the
/// ParallelFor barrier, which already orders the accesses.
// otged-lint: hot-path
void PublishPending(std::atomic<int>* pending, int total) {
  int cur = pending->load(std::memory_order_relaxed);
  while (total < cur &&
         !pending->compare_exchange_weak(cur, total,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
  }
}

/// Advances one subtree by at most `quota` expansions. Every prune point
/// reads the round-stable incumbent: the driver only writes it between
/// rounds (the pool's barrier orders those writes), so the loads are
/// race-free within a round and every subtree prunes against the same
/// deterministic bound regardless of which thread runs it, or when —
/// the PASGAL iteration-stable discipline.
// otged-lint: hot-path
void RunSlice(const Searcher& searcher, Subtree* t, long quota,
              const std::atomic<int>& incumbent, std::atomic<int>* pending) {
  const int n1 = searcher.ctx().n1, n2 = searcher.ctx().n2;
  DfsState& s = t->state;
  long used_quota = 0;
  const auto bound = [&]() {
    return std::min(incumbent.load(std::memory_order_relaxed),
                    t->local_best);
  };
  const auto record_leaf = [&](int total) {
    t->local_best = total;
    t->local_found = true;
    t->local_matching = searcher.ExtractMatching(s);
    PublishPending(pending, total);
  };
  const auto expand_current = [&]() {
    ++used_quota;
    ++t->expansions;
    t->stack.emplace_back();
    Subtree::Frame& fr = t->stack.back();
    fr.kids.reserve(static_cast<size_t>(n2 - s.depth));
    for (int v = 0; v < n2; ++v) {
      if (s.used >> v & 1) continue;
      fr.kids.emplace_back(searcher.DeltaFast(s, v), v);
    }
    std::sort(fr.kids.begin(), fr.kids.end());
  };

  if (!t->started) {
    t->started = true;
    if (s.depth == n1) {
      // Degenerate subtree: the prefix is already a complete mapping.
      const int total = s.g + searcher.HeuristicOf(s);
      if (total < bound()) record_leaf(total);
      t->done = true;
      t->slice_expansions = 0;
      return;
    }
    expand_current();
  }

  while (!t->done && used_quota < quota) {
    Subtree::Frame& fr = t->stack.back();
    if (fr.next == fr.kids.size()) {
      t->stack.pop_back();
      if (t->stack.empty()) {
        t->done = true;
        break;
      }
      searcher.Pop(&s);
      continue;
    }
    const auto [delta, v] = fr.kids[fr.next++];
    const int b = bound();
    if (s.g + delta >= b) continue;  // cheap pre-prune
    searcher.Push(&s, v, delta);
    const int f = s.g + searcher.HeuristicOf(s);
    if (f >= b) {  // admissible prune
      searcher.Pop(&s);
      continue;
    }
    if (s.depth == n1) {
      // f == total at leaves; f < b <= local_best, so always record.
      record_leaf(f);
      searcher.Pop(&s);
      continue;
    }
    expand_current();
  }
  t->slice_expansions = used_quota;
}

/// Per-pair state of a (possibly batched) run: the per-pair phases of the
/// solo driver factored into Prepare (seed + frontier + subtree replay)
/// and Finalize (merge + stats), with the round loop driven externally so
/// a batch can interleave many pairs' subtrees over one pool. Every
/// round-loop decision for a pair (quota, live set, incumbent folds) is
/// computed from that pair's own deterministic quantities only, so each
/// pair's result is byte-identical to its solo run — for any pool thread
/// count and any batch composition.
struct PairRun {
  PairRun(const Graph& a, const Graph& b, const ParallelBnbOptions& o)
      : g1(&a), g2(&b), opt(o), searcher(a, b) {}
  PairRun(const PairRun&) = delete;
  PairRun& operator=(const PairRun&) = delete;

  const Graph* g1;
  const Graph* g2;
  ParallelBnbOptions opt;
  Searcher searcher;
  GedSearchResult res;
  std::vector<Subtree> subs;
  std::atomic<int> incumbent{0};  ///< round-stable prune bound
  std::atomic<int> pending{0};    ///< CAS-min improvement inbox
  std::vector<int> live;
  long expansions = 0;
  long remaining = 0;
  long rounds = 0;
  long incumbent_updates = 0;
  bool complete = true;
  bool active = false;  ///< still participates in the round loop

  void Prepare();
  void Finalize(ParallelBnbStats* stats);
};

void PairRun::Prepare() {
  const int n1 = searcher.ctx().n1, n2 = searcher.ctx().n2;

  // Initial upper bound: identity-order greedy matching (always
  // feasible), tightened by the caller's hint — same seed as the
  // sequential driver.
  int ub = opt.initial_upper_bound;
  NodeMatching greedy(static_cast<size_t>(n1));
  for (int i = 0; i < n1; ++i) greedy[i] = i;
  const int greedy_cost = EditCostFromMatching(*g1, *g2, greedy);
  if (ub < 0 || greedy_cost < ub) ub = greedy_cost;
  const int bound0 = ub + 1;  // strict-improvement bound, explores == ub

  res.ged = greedy_cost;
  res.matching = greedy;
  res.exact = true;
  res.expansions = 0;
  if (n1 == 0) return;  // single leaf, greedy == the empty mapping

  // ---- frontier: breadth-first expansion to a fixed target size ------
  // Level-granular (a whole depth at a time) and pruned only against the
  // seed bound, so the decomposition is a pure function of the input.
  std::vector<std::vector<int>> frontier(1);
  {
    DfsState s = searcher.MakeDfs();
    int depth = 0;
    while (depth < n1 &&
           static_cast<int>(frontier.size()) < opt.target_subtrees &&
           !frontier.empty()) {
      std::vector<std::vector<int>> next;
      for (const std::vector<int>& prefix : frontier) {
        for (int v : prefix) searcher.Push(&s, v, searcher.DeltaFast(s, v));
        ++expansions;
        std::vector<std::pair<int, int>> kids;
        for (int v = 0; v < n2; ++v) {
          if (s.used >> v & 1) continue;
          kids.emplace_back(searcher.DeltaFast(s, v), v);
        }
        std::sort(kids.begin(), kids.end());
        for (const auto& [delta, v] : kids) {
          if (s.g + delta >= bound0) continue;
          searcher.Push(&s, v, delta);
          if (s.g + searcher.HeuristicOf(s) < bound0) {
            std::vector<int> p = prefix;
            p.push_back(v);
            next.push_back(std::move(p));
          }
          searcher.Pop(&s);
        }
        for (size_t i = 0; i < prefix.size(); ++i) searcher.Pop(&s);
      }
      frontier = std::move(next);
      ++depth;
    }
  }
  if (frontier.empty()) {
    // Every depth-`depth` extension exceeded the seed bound, so no
    // completion beats ub: the greedy/hinted seed already is optimal.
    // `active` stays false; Finalize reports the seed with zero stats.
    return;
  }

  subs.resize(frontier.size());
  for (size_t i = 0; i < frontier.size(); ++i) {
    subs[i].prefix = std::move(frontier[i]);
    subs[i].state = searcher.MakeDfs();
    for (int v : subs[i].prefix)
      searcher.Push(&subs[i].state, v,
                    searcher.DeltaFast(subs[i].state, v));
  }

  incumbent.store(bound0, std::memory_order_relaxed);
  pending.store(bound0, std::memory_order_relaxed);
  live.resize(subs.size());
  std::iota(live.begin(), live.end(), 0);
  remaining = opt.max_expansions - expansions;
  active = true;
}

void PairRun::Finalize(ParallelBnbStats* stats) {
  // ---- deterministic merge: argmin by (ged, lexicographic matching) --
  int best = std::numeric_limits<int>::max();
  const NodeMatching* best_matching = nullptr;
  for (const Subtree& t : subs) {
    if (!t.local_found) continue;
    if (best_matching == nullptr || t.local_best < best ||
        (t.local_best == best && t.local_matching < *best_matching)) {
      best = t.local_best;
      best_matching = &t.local_matching;
    }
  }
  if (best_matching != nullptr) {
    res.ged = best;  // best < bound0, i.e. <= ub: strictly proven better
    res.matching = *best_matching;
  }
  res.exact = complete;
  res.expansions = expansions;
  if (stats != nullptr && searcher.ctx().n1 > 0) {
    stats->subtrees = static_cast<long>(subs.size());
    stats->rounds = rounds;
    stats->incumbent_updates = incumbent_updates;
  }
}

/// The shared round loop. Each global round advances EVERY active pair by
/// exactly one of its own rounds: the pair's quota is computed from its
/// own (remaining, live) exactly as the solo loop head does, then all
/// pairs' live subtrees are flattened into one worklist and advanced by a
/// single ParallelFor — so a pair whose frontier has collapsed to a few
/// stragglers no longer leaves the pool idle; other pairs' subtrees fill
/// the slots. Subtrees of different pairs never touch each other's
/// incumbent/pending, and the barrier between global rounds is also a
/// barrier between each pair's rounds, so per-pair evolution — and hence
/// the per-pair result — is identical to a solo run.
void RunRounds(const std::vector<PairRun*>& runs, WorkStealingPool* pool) {
  struct Item {
    PairRun* pr;
    int sub;
    long quota;
  };
  std::vector<Item> work;
  std::vector<PairRun*> in_round;
  for (;;) {
    work.clear();
    in_round.clear();
    for (PairRun* pr : runs) {
      if (!pr->active) continue;
      // Per-pair replica of the solo loop head: exit on an exhausted
      // frontier, or mark incomplete on an exhausted budget.
      if (pr->live.empty()) {
        pr->active = false;
        continue;
      }
      if (pr->remaining <= 0) {
        pr->complete = false;
        pr->active = false;
        continue;
      }
      // Deterministic per-round quota: share the pair's remaining budget
      // across its live subtrees, clamped to [1, round_quota].
      const long quota = std::max(
          long{1},
          std::min(pr->remaining / static_cast<long>(pr->live.size()),
                   pr->opt.round_quota));
      for (const int idx : pr->live) work.push_back({pr, idx, quota});
      in_round.push_back(pr);
    }
    if (work.empty()) break;
    const auto slice = [&](int64_t i, int) {
      const Item& it = work[static_cast<size_t>(i)];
      RunSlice(it.pr->searcher, &it.pr->subs[static_cast<size_t>(it.sub)],
               it.quota, it.pr->incumbent, &it.pr->pending);
    };
    if (pool != nullptr) {
      pool->ParallelFor(static_cast<int64_t>(work.size()), /*grain=*/1,
                        slice);
    } else {
      for (size_t i = 0; i < work.size(); ++i)
        slice(static_cast<int64_t>(i), 0);
    }
    for (PairRun* pr : in_round) {
      ++pr->rounds;
      std::vector<int> next_live;
      for (const int idx : pr->live) {
        Subtree& t = pr->subs[static_cast<size_t>(idx)];
        pr->expansions += t.slice_expansions;
        pr->remaining -= t.slice_expansions;
        t.slice_expansions = 0;
        if (!t.done) next_live.push_back(idx);
      }
      pr->live = std::move(next_live);
      // Fold pending improvements into the stable incumbent. The pending
      // value at a barrier is the min over everything published this
      // round — commutative, hence deterministic.
      const int p = pr->pending.load(std::memory_order_relaxed);
      if (p < pr->incumbent.load(std::memory_order_relaxed)) {
        pr->incumbent.store(p, std::memory_order_relaxed);
        ++pr->incumbent_updates;
      }
    }
  }
}

}  // namespace

GedSearchResult ParallelBranchAndBoundGed(const Graph& g1, const Graph& g2,
                                          WorkStealingPool* pool,
                                          const ParallelBnbOptions& opt,
                                          ParallelBnbStats* stats) {
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  PairRun run(g1, g2, opt);
  run.Prepare();
  RunRounds({&run}, pool);
  run.Finalize(stats);
  return std::move(run.res);
}

std::vector<GedSearchResult> ParallelBranchAndBoundGedBatch(
    const std::vector<ParallelBnbBatchItem>& items, WorkStealingPool* pool,
    std::vector<ParallelBnbStats>* stats) {
  std::vector<std::unique_ptr<PairRun>> runs;
  runs.reserve(items.size());
  for (const ParallelBnbBatchItem& it : items) {
    OTGED_CHECK(it.g1 != nullptr && it.g2 != nullptr);
    OTGED_CHECK(it.g1->NumNodes() <= it.g2->NumNodes());
    runs.push_back(std::make_unique<PairRun>(*it.g1, *it.g2, it.opt));
  }
  // The per-pair preamble (greedy seed + frontier build + prefix replay)
  // is independent across pairs and deterministic, so distribute it over
  // the pool one pair per index.
  const auto prep = [&](int64_t i, int) {
    runs[static_cast<size_t>(i)]->Prepare();
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(runs.size()), /*grain=*/1, prep);
  } else {
    for (size_t i = 0; i < runs.size(); ++i) prep(static_cast<int64_t>(i), 0);
  }
  std::vector<PairRun*> ptrs;
  ptrs.reserve(runs.size());
  for (const auto& r : runs) ptrs.push_back(r.get());
  RunRounds(ptrs, pool);
  if (stats != nullptr) stats->assign(items.size(), ParallelBnbStats{});
  std::vector<GedSearchResult> out;
  out.reserve(items.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    runs[i]->Finalize(stats != nullptr ? &(*stats)[i] : nullptr);
    out.push_back(std::move(runs[i]->res));
  }
  return out;
}

}  // namespace otged
