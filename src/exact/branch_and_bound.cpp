#include "exact/branch_and_bound.hpp"

#include <algorithm>

#include "exact/search_common.hpp"

namespace otged {

using internal::Searcher;
using internal::SearchState;

namespace {

struct DfsDriver {
  const Searcher& searcher;
  long budget;
  long visits = 0;
  int best_ged;
  NodeMatching best_matching;
  bool complete = true;  // search space exhausted within budget

  void Dfs(SearchState& s) {
    if (visits++ > budget) {
      complete = false;
      return;
    }
    const int n1 = searcher.ctx().n1, n2 = searcher.ctx().n2;
    if (s.depth == n1) {
      int total = s.g + searcher.CompletionCost(s);
      if (total < best_ged) {
        best_ged = total;
        best_matching = searcher.ExtractMatching(s);
      }
      return;
    }
    // Order children by optimistic estimate to find good bounds early.
    std::vector<std::pair<int, int>> ranked;  // (delta + h-ish, v)
    for (int v = 0; v < n2; ++v) {
      if (s.used >> v & 1) continue;
      ranked.emplace_back(searcher.Delta(s, v), v);
    }
    std::sort(ranked.begin(), ranked.end());
    for (auto [delta, v] : ranked) {
      if (s.g + delta >= best_ged) continue;  // cheap pre-prune
      SearchState child = searcher.Child(s, v);
      if (child.f() >= best_ged) continue;    // admissible prune
      Dfs(child);
      if (!complete && visits > budget) return;
    }
  }
};

}  // namespace

GedSearchResult BranchAndBoundGed(const Graph& g1, const Graph& g2,
                                  const BnbOptions& opt) {
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  Searcher searcher(g1, g2);

  // Initial upper bound: identity-order greedy matching (always feasible).
  int ub = opt.initial_upper_bound;
  NodeMatching greedy(g1.NumNodes());
  for (int i = 0; i < g1.NumNodes(); ++i) greedy[i] = i;
  int greedy_cost = EditCostFromMatching(g1, g2, greedy);
  if (ub < 0 || greedy_cost < ub) ub = greedy_cost;

  DfsDriver driver{searcher, opt.max_visits, 0, ub + 1, greedy, true};
  // Seed: best_ged = ub + 1 so a path matching ub is still explored; the
  // greedy matching backs the result if nothing better is found.
  SearchState root = searcher.Root();
  driver.Dfs(root);

  GedSearchResult res;
  if (driver.best_ged <= ub) {
    res.ged = driver.best_ged;
    res.matching = driver.best_matching;
  } else {
    res.ged = greedy_cost;
    res.matching = greedy;
  }
  res.exact = driver.complete;
  res.expansions = driver.visits;
  return res;
}

}  // namespace otged
