#include "exact/branch_and_bound.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "exact/search_common.hpp"

namespace otged {

using internal::DfsState;
using internal::Searcher;

namespace {

/// Sequential DFS on the do/undo scratch state. The budget counts node
/// *expansions* (internal nodes whose children are generated), the same
/// accounting AstarGed uses for popped non-goal states; a search that
/// exhausts its tree with exactly `budget` expansions is complete. The
/// check runs before an expansion, so at most `budget` expansions ever
/// happen — the old driver's post-increment admitted budget + 1 visits
/// and then mislabeled exactly-exhausted searches as incomplete.
struct SeqDriver {
  const Searcher& searcher;
  long budget;
  long expansions = 0;
  int best_ged;  ///< prune bound; seeded ub + 1, strict improvements only
  NodeMatching best_matching;
  bool complete = true;  ///< search space exhausted within budget

  /// Per-depth child rankings, reused across sibling subtrees so the hot
  /// loop never allocates after warmup.
  std::vector<std::vector<std::pair<int, int>>> ranked;

  // otged-lint: hot-path
  void Dfs(DfsState& s) {
    const int n1 = searcher.ctx().n1, n2 = searcher.ctx().n2;
    if (s.depth == n1) {
      // Leaves cost g + h exactly (HeuristicOf degenerates to the
      // completion cost once every G1 node is mapped).
      const int total = s.g + searcher.HeuristicOf(s);
      if (total < best_ged) {
        best_ged = total;
        best_matching = searcher.ExtractMatching(s);
      }
      return;
    }
    if (expansions >= budget) {
      complete = false;
      return;
    }
    ++expansions;
    // Order children by true cost delta to find good bounds early.
    auto& kids = ranked[s.depth];
    kids.clear();
    for (int v = 0; v < n2; ++v) {
      if (s.used >> v & 1) continue;
      kids.emplace_back(searcher.DeltaFast(s, v), v);
    }
    std::sort(kids.begin(), kids.end());
    for (auto [delta, v] : kids) {
      if (s.g + delta >= best_ged) continue;  // cheap pre-prune
      searcher.Push(&s, v, delta);
      if (s.g + searcher.HeuristicOf(s) >= best_ged) {  // admissible prune
        searcher.Pop(&s);
        continue;
      }
      Dfs(s);
      searcher.Pop(&s);
      if (!complete) return;
    }
  }
};

}  // namespace

GedSearchResult BranchAndBoundGed(const Graph& g1, const Graph& g2,
                                  const BnbOptions& opt) {
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  Searcher searcher(g1, g2);

  // Initial upper bound: identity-order greedy matching (always feasible).
  int ub = opt.initial_upper_bound;
  NodeMatching greedy(static_cast<size_t>(g1.NumNodes()));
  for (int i = 0; i < g1.NumNodes(); ++i) greedy[i] = i;
  int greedy_cost = EditCostFromMatching(g1, g2, greedy);
  if (ub < 0 || greedy_cost < ub) ub = greedy_cost;

  // Seed: best_ged = ub + 1 so a path matching ub is still explored; the
  // greedy matching backs the result if nothing better is found.
  SeqDriver driver{searcher, opt.max_visits, 0, ub + 1, greedy, true, {}};
  driver.ranked.resize(static_cast<size_t>(std::max(g1.NumNodes(), 1)));
  DfsState root = searcher.MakeDfs();
  driver.Dfs(root);

  GedSearchResult res;
  if (driver.best_ged <= ub) {
    res.ged = driver.best_ged;
    res.matching = driver.best_matching;
  } else {
    res.ged = greedy_cost;
    res.matching = greedy;
  }
  res.exact = driver.complete;
  res.expansions = driver.expansions;
  return res;
}

}  // namespace otged
