/// \file parallel_bnb.hpp
/// \brief Deterministic parallel branch-and-bound exact GED: a frontier
/// of root subtrees distributed over a WorkStealingPool, each worker
/// running the sequential do/undo DFS on its subtree, with a shared
/// atomic incumbent bound.
///
/// Determinism contract: for a fixed (g1, g2, options) input the result
/// — ged, matching, exact flag, and even the expansion count — is
/// byte-identical for ANY pool thread count, including 1. The design
/// follows PASGAL's iteration-stable discipline:
///
///   * The search runs in rounds. Within a round every live subtree
///     advances by a deterministic expansion quota, pruning against a
///     *round-stable* incumbent (an atomic the driver wrote before the
///     round; workers only read it, so the reads are race-free and every
///     subtree sees the same bound no matter which thread runs it or
///     when).
///   * Improvements found during a round are published into a separate
///     `pending` atomic via CAS-min. Min-folding is commutative, so the
///     value at the round barrier is the minimum over all improvements —
///     independent of interleaving. The driver folds pending into the
///     stable incumbent between rounds.
///   * The frontier is built by breadth-first expansion to a fixed
///     target size that does NOT depend on the thread count, and
///     per-round quotas are computed from deterministic quantities
///     (remaining budget, live-subtree count).
///   * Pruning uses only admissible bounds (the incumbent is always the
///     cost of a feasible matching, hence >= the optimum), so no optimal
///     leaf is ever lost; the final result is a deterministic argmin
///     over the subtree-local bests by (ged, lexicographic matching).
#ifndef OTGED_EXACT_PARALLEL_BNB_HPP_
#define OTGED_EXACT_PARALLEL_BNB_HPP_

#include <vector>

#include "exact/astar.hpp"
#include "search/work_stealing_pool.hpp"

namespace otged {

struct ParallelBnbOptions {
  /// Global node-expansion budget across all subtrees (plus the frontier
  /// build), same accounting as BnbOptions::max_visits.
  long max_expansions = 20'000'000;
  int initial_upper_bound = -1;  ///< -1 = derive one greedily
  /// Frontier target: breadth-first levels are expanded until at least
  /// this many root subtrees exist (or the tree is exhausted). A fixed
  /// constant — never derived from the thread count — so the subtree
  /// decomposition is part of the deterministic input.
  int target_subtrees = 32;
  /// Upper bound on expansions one subtree may consume per round. Small
  /// values fold incumbent improvements in sooner (better pruning);
  /// large values amortize the round barrier.
  long round_quota = 4096;
};

/// Deterministic observability of one parallel run (all fields are pure
/// functions of the input, like the result itself).
struct ParallelBnbStats {
  long subtrees = 0;          ///< frontier size distributed over the pool
  long rounds = 0;            ///< round barriers executed
  long incumbent_updates = 0; ///< stable-incumbent improvements folded
};

/// Parallel exact GED over `pool` (nullptr or 1-thread pools degrade to
/// an inline run of the same round structure). Requires n1 <= n2 and
/// n2 <= 64 like every exact search here. The pool must not be inside
/// one of its own ParallelFor calls (it is non-reentrant); concurrent
/// callers must serialize externally.
GedSearchResult ParallelBranchAndBoundGed(const Graph& g1, const Graph& g2,
                                          WorkStealingPool* pool,
                                          const ParallelBnbOptions& opt = {},
                                          ParallelBnbStats* stats = nullptr);

/// One pair of a batched run. Both graphs must outlive the call and
/// satisfy g1->NumNodes() <= g2->NumNodes() (use OrderBySize); options —
/// notably the per-pair upper-bound hint and expansion budget — apply to
/// this pair alone.
struct ParallelBnbBatchItem {
  const Graph* g1 = nullptr;
  const Graph* g2 = nullptr;
  ParallelBnbOptions opt;
};

/// Multi-pair exact GED over one pool: all pairs' live subtrees share
/// each round's ParallelFor, so when one pair's frontier collapses to a
/// few straggler subtrees the other pairs' work keeps every thread busy —
/// the cross-pair scheduling win over solving hard pairs back to back.
///
/// Determinism contract, extended: results[i] (and stats[i]) are
/// byte-identical to ParallelBranchAndBoundGed(*items[i].g1,
/// *items[i].g2, pool, items[i].opt) — for ANY pool thread count and ANY
/// batch composition. Each pair keeps its own round-stable incumbent and
/// pending inbox; per-pair quotas, live sets, and the argmin merge are
/// computed from that pair's own deterministic quantities exactly as the
/// solo driver computes them. Same pool caveats as the solo entry point.
std::vector<GedSearchResult> ParallelBranchAndBoundGedBatch(
    const std::vector<ParallelBnbBatchItem>& items, WorkStealingPool* pool,
    std::vector<ParallelBnbStats>* stats = nullptr);

}  // namespace otged

#endif  // OTGED_EXACT_PARALLEL_BNB_HPP_
