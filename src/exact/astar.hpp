/// \file astar.hpp
/// \brief Exact GED via A* search over partial node mappings [40], plus
/// the beam-limited variant (A*-beam [31], the backbone of the Noah
/// baseline).
#ifndef OTGED_EXACT_ASTAR_HPP_
#define OTGED_EXACT_ASTAR_HPP_

#include <optional>

#include "core/matrix.hpp"
#include "editpath/edit_path.hpp"
#include "graph/graph.hpp"

namespace otged {

/// Result of an exact (or beam) GED search.
struct GedSearchResult {
  int ged = 0;
  NodeMatching matching;  ///< G1 node -> G2 node realizing `ged`
  bool exact = true;      ///< false for beam results / budget exhaustion
  long expansions = 0;    ///< search-effort telemetry
};

/// Options for the A* searches.
struct AstarOptions {
  long max_expansions = 1'000'000;  ///< give up (return nullopt) beyond this
  int beam_width = 0;               ///< 0 = full A*; > 0 = beam search
  /// Optional (n1 x n2) guidance matrix: higher value = prefer mapping
  /// u_i -> v_j earlier. Used by the Noah stand-in, where a learned model
  /// (GPN) orders the successor states.
  const Matrix* guidance = nullptr;
};

/// Exact GED by A* with an admissible label-multiset + edge-count
/// heuristic. Requires n1 <= n2 (callers swap). Returns nullopt if the
/// expansion budget is exhausted before the optimum is proven.
std::optional<GedSearchResult> AstarGed(const Graph& g1, const Graph& g2,
                                        const AstarOptions& opt = {});

/// A*-beam: keeps only the best `beam_width` frontier states per depth.
/// Always returns a feasible (upper-bound) result; `exact` is set only if
/// beam happens to be wide enough to be exhaustive.
GedSearchResult BeamGed(const Graph& g1, const Graph& g2, int beam_width,
                        const Matrix* guidance = nullptr);

}  // namespace otged

#endif  // OTGED_EXACT_ASTAR_HPP_
