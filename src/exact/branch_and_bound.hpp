/// \file branch_and_bound.hpp
/// \brief Depth-first branch-and-bound exact GED verifier.
///
/// This is the repository's stand-in for the exact graph-similarity
/// engines the paper compares against in Fig. 15 (Nass [21] and
/// AStar-BMao [8]): a memory-light exponential-time exact solver whose
/// running time is highly sensitive to graph size and GED — exactly the
/// property the figure measures. It is also used to exactify small
/// dataset pairs when A*'s memory profile is unfavourable.
#ifndef OTGED_EXACT_BRANCH_AND_BOUND_HPP_
#define OTGED_EXACT_BRANCH_AND_BOUND_HPP_

#include <optional>

#include "exact/astar.hpp"

namespace otged {

struct BnbOptions {
  /// Node-expansion budget: internal search-tree nodes whose children are
  /// generated, the same accounting AstarGed reports in `expansions`. A
  /// search whose tree takes exactly this many expansions is complete
  /// (`exact == true`); one more node needed means incomplete.
  long max_visits = 5'000'000;
  int initial_upper_bound = -1; ///< -1 = derive one greedily
};

/// Exact GED by DFS branch and bound with the same admissible heuristic
/// as AstarGed. Returns the best result found; `exact` is true iff the
/// search space was exhausted within budget (result proven optimal).
/// Runs on the do/undo structure-of-arrays scratch state, exploring the
/// identical tree in the identical order as the historical copy-based
/// driver — only cheaper per node.
GedSearchResult BranchAndBoundGed(const Graph& g1, const Graph& g2,
                                  const BnbOptions& opt = {});

}  // namespace otged

#endif  // OTGED_EXACT_BRANCH_AND_BOUND_HPP_
