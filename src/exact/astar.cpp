#include "exact/astar.hpp"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "exact/search_common.hpp"

namespace otged {

using internal::Searcher;
using internal::SearchState;

std::optional<GedSearchResult> AstarGed(const Graph& g1, const Graph& g2,
                                        const AstarOptions& opt) {
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  Searcher searcher(g1, g2);
  const int n1 = g1.NumNodes(), n2 = g2.NumNodes();

  struct QEntry {
    int f;
    int depth;
    SearchState state;
    bool operator<(const QEntry& o) const {
      if (f != o.f) return f > o.f;  // min-heap on f
      return depth < o.depth;        // prefer deeper states
    }
  };
  std::priority_queue<QEntry> open;
  SearchState root = searcher.Root();
  open.push({root.f(), 0, root});
  long expansions = 0;

  while (!open.empty()) {
    QEntry top = open.top();
    open.pop();
    SearchState& s = top.state;
    if (s.depth == n1) {
      GedSearchResult res;
      res.ged = s.g;  // completion cost folded in at push time
      res.matching = searcher.ExtractMatching(s);
      res.exact = true;
      res.expansions = expansions;
      return res;
    }
    if (++expansions > opt.max_expansions) return std::nullopt;
    for (int v = 0; v < n2; ++v) {
      if (s.used >> v & 1) continue;
      SearchState child = searcher.Child(s, v);
      if (child.depth == n1) {
        // Fold completion cost so the goal test above is exact; h = 0.
        child.g += searcher.CompletionCost(child);
        child.h = 0;
      }
      open.push({child.f(), child.depth, std::move(child)});
    }
  }
  return std::nullopt;  // unreachable for non-empty graphs
}

GedSearchResult BeamGed(const Graph& g1, const Graph& g2, int beam_width,
                        const Matrix* guidance) {
  OTGED_CHECK(g1.NumNodes() <= g2.NumNodes());
  OTGED_CHECK(beam_width >= 1);
  Searcher searcher(g1, g2);
  const int n1 = g1.NumNodes(), n2 = g2.NumNodes();

  std::vector<SearchState> frontier = {searcher.Root()};
  long expansions = 0;
  bool exhaustive = true;

  for (int depth = 0; depth < n1; ++depth) {
    std::vector<std::pair<double, SearchState>> children;
    const int u = searcher.ctx().order[depth];
    for (const SearchState& s : frontier) {
      ++expansions;
      for (int v = 0; v < n2; ++v) {
        if (s.used >> v & 1) continue;
        SearchState child = searcher.Child(s, v);
        double key = child.f();
        if (guidance != nullptr) {
          // Learned guidance (Noah stand-in): prefer high-confidence pairs.
          key -= (*guidance)(u, v);
        }
        children.emplace_back(key, std::move(child));
      }
    }
    std::sort(children.begin(), children.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (static_cast<int>(children.size()) > beam_width) {
      children.resize(beam_width);
      exhaustive = false;
    }
    frontier.clear();
    for (auto& [key, st] : children) frontier.push_back(std::move(st));
  }

  GedSearchResult best;
  best.ged = -1;
  for (const SearchState& s : frontier) {
    int total = s.g + searcher.CompletionCost(s);
    if (best.ged < 0 || total < best.ged) {
      best.ged = total;
      best.matching = searcher.ExtractMatching(s);
    }
  }
  OTGED_CHECK(best.ged >= 0);
  best.exact = exhaustive;
  best.expansions = expansions;
  return best;
}

}  // namespace otged
