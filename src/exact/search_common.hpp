/// \file search_common.hpp
/// \brief Internal shared machinery for the exact GED searches (A*, beam,
/// branch-and-bound): incremental cost accounting over partial node
/// mappings plus the admissible label-multiset / edge-count heuristic.
/// Not part of the public API.
#ifndef OTGED_EXACT_SEARCH_COMMON_HPP_
#define OTGED_EXACT_SEARCH_COMMON_HPP_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "editpath/edit_path.hpp"
#include "graph/graph.hpp"

namespace otged::internal {

/// Static context: node mapping order and compacted labels.
struct SearchContext {
  const Graph& g1;
  const Graph& g2;
  int n1, n2, num_labels;
  std::vector<int> order;               // depth -> G1 node
  std::vector<int> g1_label, g2_label;  // compacted label ids

  SearchContext(const Graph& a, const Graph& b) : g1(a), g2(b) {
    n1 = g1.NumNodes();
    n2 = g2.NumNodes();
    OTGED_CHECK(n1 <= n2);
    std::map<Label, int> remap;
    auto compact = [&](const Graph& g, std::vector<int>* out) {
      out->resize(g.NumNodes());
      for (int v = 0; v < g.NumNodes(); ++v) {
        auto [it, _] =
            remap.emplace(g.label(v), static_cast<int>(remap.size()));
        (*out)[v] = it->second;
      }
    };
    compact(g1, &g1_label);
    compact(g2, &g2_label);
    num_labels = static_cast<int>(remap.size());
    // Degree-descending mapping order tightens the edge heuristic early.
    order.resize(n1);
    for (int i = 0; i < n1; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](int x, int y) {
      if (g1.Degree(x) != g1.Degree(y)) return g1.Degree(x) > g1.Degree(y);
      return x < y;
    });
  }
};

/// Search state over partial mappings. `used` is a bitmask over G2 nodes,
/// which limits exact search to n2 <= 64 (ample: exact GED beyond ~16
/// nodes is intractable anyway).
struct SearchState {
  std::vector<int> map1to2;
  uint64_t used = 0;
  int depth = 0;
  int g = 0;
  int h = 0;
  int f() const { return g + h; }
};

/// Incremental cost/heuristic evaluator shared by the searches.
class Searcher {
 public:
  Searcher(const Graph& g1, const Graph& g2) : ctx_(g1, g2) {
    OTGED_CHECK_MSG(ctx_.n2 <= 64, "exact search supports up to 64 nodes");
    c1_rem_.assign(ctx_.num_labels, 0);
    c2_rem_.assign(ctx_.num_labels, 0);
    for (int u = 0; u < ctx_.n1; ++u) c1_rem_[ctx_.g1_label[u]]++;
    for (int v = 0; v < ctx_.n2; ++v) c2_rem_[ctx_.g2_label[v]]++;
  }

  const SearchContext& ctx() const { return ctx_; }

  SearchState Root() const {
    SearchState s;
    s.map1to2.assign(ctx_.n1, -1);
    s.h = Heuristic(s);
    return s;
  }

  /// True cost increment of mapping the next node (per ctx order) to v.
  int Delta(const SearchState& s, int v) const {
    int u = ctx_.order[s.depth];
    int c = ctx_.g1_label[u] != ctx_.g2_label[v] ? 1 : 0;
    for (int w : ctx_.g1.Neighbors(u)) {
      int mv = s.map1to2[w];
      if (mv < 0) continue;
      if (!ctx_.g2.HasEdge(v, mv)) {
        ++c;  // deletion
      } else if (ctx_.g1.edge_label(u, w) != ctx_.g2.edge_label(v, mv)) {
        ++c;  // edge relabel (Appendix H.1)
      }
    }
    for (int x : ctx_.g2.Neighbors(v)) {
      if (!(s.used >> x & 1)) continue;
      int pre = -1;
      for (int w = 0; w < ctx_.n1; ++w) {
        if (s.map1to2[w] == x) {
          pre = w;
          break;
        }
      }
      OTGED_DCHECK(pre >= 0);
      if (!ctx_.g1.HasEdge(u, pre)) ++c;
    }
    return c;
  }

  SearchState Child(const SearchState& s, int v) const {
    SearchState t = s;
    int u = ctx_.order[s.depth];
    t.g += Delta(s, v);
    t.map1to2[u] = v;
    t.used |= (1ull << v);
    t.depth += 1;
    t.h = Heuristic(t);
    return t;
  }

  /// Completion cost once all G1 nodes are mapped: unmatched-node
  /// insertions plus insertions of G2 edges touching unmatched nodes.
  int CompletionCost(const SearchState& s) const {
    OTGED_DCHECK(s.depth == ctx_.n1);
    int c = ctx_.n2 - ctx_.n1;
    for (int v = 0; v < ctx_.n2; ++v) {
      if (s.used >> v & 1) continue;
      for (int x : ctx_.g2.Neighbors(v)) {
        if (x > v && !(s.used >> x & 1)) ++c;  // both endpoints unmatched
        if (s.used >> x & 1) ++c;              // one endpoint unmatched
      }
    }
    return c;
  }

  /// Admissible heuristic: label-multiset surplus + inevitable insertions
  /// + remaining-edge-count gap.
  int Heuristic(const SearchState& s) const {
    std::vector<int> c1 = c1_rem_, c2 = c2_rem_;
    for (int u = 0; u < ctx_.n1; ++u)
      if (s.map1to2[u] >= 0) {
        c1[ctx_.g1_label[u]]--;
        c2[ctx_.g2_label[s.map1to2[u]]]--;
      }
    int surplus = 0;
    for (int l = 0; l < ctx_.num_labels; ++l)
      surplus += std::max(0, c1[l] - c2[l]);
    int node_lb = surplus + (ctx_.n2 - ctx_.n1);

    int m1_rem = 0;
    for (int u = 0; u < ctx_.n1; ++u)
      for (int w : ctx_.g1.Neighbors(u))
        if (u < w && (s.map1to2[u] < 0 || s.map1to2[w] < 0)) ++m1_rem;
    int m2_rem = 0;
    for (int v = 0; v < ctx_.n2; ++v)
      for (int x : ctx_.g2.Neighbors(v))
        if (v < x && (!(s.used >> v & 1) || !(s.used >> x & 1))) ++m2_rem;
    return node_lb + std::abs(m1_rem - m2_rem);
  }

  NodeMatching ExtractMatching(const SearchState& s) const {
    NodeMatching m(ctx_.n1);
    for (int u = 0; u < ctx_.n1; ++u) {
      OTGED_CHECK(s.map1to2[u] >= 0);
      m[u] = s.map1to2[u];
    }
    return m;
  }

 private:
  SearchContext ctx_;
  std::vector<int> c1_rem_, c2_rem_;
};

}  // namespace otged::internal

#endif  // OTGED_EXACT_SEARCH_COMMON_HPP_
