/// \file search_common.hpp
/// \brief Internal shared machinery for the exact GED searches (A*, beam,
/// branch-and-bound): incremental cost accounting over partial node
/// mappings plus the admissible label-multiset / edge-count heuristic.
///
/// Two state representations share one Searcher:
///
///   SearchState  immutable value states for the best-first searches
///                (A*, beam), which must hold many frontier states alive
///                at once; Child copies and recomputes the heuristic.
///   DfsState     one mutable do/undo state in structure-of-arrays
///                layout (flat map1to2/map2to1, incremental label
///                remainders and edge counters) for the depth-first
///                branch-and-bound drivers: Push/Pop are O(deg) via
///                bit-parallel neighbor masks and the heuristic is O(1),
///                against the O(n + m) recompute SearchState pays per
///                Child.
///
/// Not part of the public API.
#ifndef OTGED_EXACT_SEARCH_COMMON_HPP_
#define OTGED_EXACT_SEARCH_COMMON_HPP_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <vector>

#include "editpath/edit_path.hpp"
#include "graph/graph.hpp"

namespace otged::internal {

/// Static context: node mapping order, compacted labels, and bitset
/// adjacency (n <= 64, checked) for the do/undo fast path.
struct SearchContext {
  const Graph& g1;
  const Graph& g2;
  int n1, n2, num_labels;
  std::vector<int> order;               // depth -> G1 node
  std::vector<int> g1_label, g2_label;  // compacted label ids
  std::vector<uint64_t> adj1_mask, adj2_mask;  // per-node neighbor bitsets
  std::vector<uint64_t> order_prefix;  // [d] = G1 nodes mapped at depth d

  SearchContext(const Graph& a, const Graph& b) : g1(a), g2(b) {
    n1 = g1.NumNodes();
    n2 = g2.NumNodes();
    OTGED_CHECK(n1 <= n2);
    OTGED_CHECK_MSG(n2 <= 64, "exact search supports up to 64 nodes");
    std::map<Label, int> remap;
    auto compact = [&](const Graph& g, std::vector<int>* out) {
      out->resize(g.NumNodes());
      for (int v = 0; v < g.NumNodes(); ++v) {
        auto [it, _] =
            remap.emplace(g.label(v), static_cast<int>(remap.size()));
        (*out)[v] = it->second;
      }
    };
    compact(g1, &g1_label);
    compact(g2, &g2_label);
    num_labels = static_cast<int>(remap.size());
    // Degree-descending mapping order tightens the edge heuristic early.
    order.resize(n1);
    for (int i = 0; i < n1; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](int x, int y) {
      if (g1.Degree(x) != g1.Degree(y)) return g1.Degree(x) > g1.Degree(y);
      return x < y;
    });
    adj1_mask.assign(static_cast<size_t>(n1), 0);
    for (int u = 0; u < n1; ++u)
      for (int w : g1.Neighbors(u)) adj1_mask[u] |= 1ull << w;
    adj2_mask.assign(static_cast<size_t>(n2), 0);
    for (int v = 0; v < n2; ++v)
      for (int x : g2.Neighbors(v)) adj2_mask[v] |= 1ull << x;
    order_prefix.assign(static_cast<size_t>(n1) + 1, 0);
    for (int d = 0; d < n1; ++d)
      order_prefix[d + 1] = order_prefix[d] | (1ull << order[d]);
  }
};

/// Search state over partial mappings. `used` is a bitmask over G2 nodes,
/// which limits exact search to n2 <= 64 (ample: exact GED beyond ~16
/// nodes is intractable anyway). `map2to1` mirrors `map1to2` so the cost
/// delta never scans for a preimage.
struct SearchState {
  std::vector<int> map1to2;
  std::vector<int> map2to1;
  uint64_t used = 0;
  int depth = 0;
  int g = 0;
  int h = 0;
  int f() const { return g + h; }
};

/// Mutable depth-first state in structure-of-arrays layout. One DfsState
/// serves a whole DFS: the branch-and-bound drivers Push/Pop along the
/// current path instead of copying states, and every quantity the
/// admissible heuristic needs (label remainders, remaining-edge counts)
/// is maintained incrementally. `path_v`/`path_delta` are the undo log.
struct DfsState {
  std::vector<int> map1to2;     ///< G1 node -> G2 node, -1 unmapped
  std::vector<int> map2to1;     ///< G2 node -> G1 node, -1 unmapped
  std::vector<int> c1_rem;      ///< per-label count of unmapped G1 nodes
  std::vector<int> c2_rem;      ///< per-label count of unmapped G2 nodes
  std::vector<int> path_v;      ///< depth -> chosen G2 node
  std::vector<int> path_delta;  ///< depth -> cost charged at that depth
  uint64_t used = 0;            ///< bitmask of mapped G2 nodes
  int depth = 0;
  int g = 0;        ///< cost of the partial mapping
  int surplus = 0;  ///< sum_l max(0, c1_rem[l] - c2_rem[l])
  int m1_rem = 0;   ///< G1 edges with at least one unmapped endpoint
  int m2_rem = 0;   ///< G2 edges with at least one unmapped endpoint
};

/// Incremental cost/heuristic evaluator shared by the searches.
class Searcher {
 public:
  Searcher(const Graph& g1, const Graph& g2) : ctx_(g1, g2) {
    c1_rem_.assign(static_cast<size_t>(ctx_.num_labels), 0);
    c2_rem_.assign(static_cast<size_t>(ctx_.num_labels), 0);
    for (int u = 0; u < ctx_.n1; ++u) c1_rem_[ctx_.g1_label[u]]++;
    for (int v = 0; v < ctx_.n2; ++v) c2_rem_[ctx_.g2_label[v]]++;
  }

  const SearchContext& ctx() const { return ctx_; }

  SearchState Root() const {
    SearchState s;
    s.map1to2.assign(static_cast<size_t>(ctx_.n1), -1);
    s.map2to1.assign(static_cast<size_t>(ctx_.n2), -1);
    s.h = Heuristic(s);
    return s;
  }

  /// True cost increment of mapping the next node (per ctx order) to v.
  int Delta(const SearchState& s, int v) const {
    int u = ctx_.order[s.depth];
    int c = ctx_.g1_label[u] != ctx_.g2_label[v] ? 1 : 0;
    for (int w : ctx_.g1.Neighbors(u)) {
      int mv = s.map1to2[w];
      if (mv < 0) continue;
      if (!ctx_.g2.HasEdge(v, mv)) {
        ++c;  // deletion
      } else if (ctx_.g1.edge_label(u, w) != ctx_.g2.edge_label(v, mv)) {
        ++c;  // edge relabel (Appendix H.1)
      }
    }
    for (int x : ctx_.g2.Neighbors(v)) {
      if (!(s.used >> x & 1)) continue;
      int pre = s.map2to1[x];
      OTGED_DCHECK(pre >= 0);
      if (!ctx_.g1.HasEdge(u, pre)) ++c;
    }
    return c;
  }

  SearchState Child(const SearchState& s, int v) const {
    SearchState t = s;
    int u = ctx_.order[s.depth];
    t.g += Delta(s, v);
    t.map1to2[u] = v;
    t.map2to1[v] = u;
    t.used |= (1ull << v);
    t.depth += 1;
    t.h = Heuristic(t);
    return t;
  }

  /// Completion cost once all G1 nodes are mapped: unmatched-node
  /// insertions plus insertions of G2 edges touching unmatched nodes.
  int CompletionCost(const SearchState& s) const {
    OTGED_DCHECK(s.depth == ctx_.n1);
    int c = ctx_.n2 - ctx_.n1;
    for (int v = 0; v < ctx_.n2; ++v) {
      if (s.used >> v & 1) continue;
      for (int x : ctx_.g2.Neighbors(v)) {
        if (x > v && !(s.used >> x & 1)) ++c;  // both endpoints unmatched
        if (s.used >> x & 1) ++c;              // one endpoint unmatched
      }
    }
    return c;
  }

  /// Admissible heuristic: label-multiset surplus + inevitable insertions
  /// + remaining-edge-count gap.
  int Heuristic(const SearchState& s) const {
    std::vector<int> c1 = c1_rem_, c2 = c2_rem_;
    for (int u = 0; u < ctx_.n1; ++u)
      if (s.map1to2[u] >= 0) {
        c1[ctx_.g1_label[u]]--;
        c2[ctx_.g2_label[s.map1to2[u]]]--;
      }
    int surplus = 0;
    for (int l = 0; l < ctx_.num_labels; ++l)
      surplus += std::max(0, c1[l] - c2[l]);
    int node_lb = surplus + (ctx_.n2 - ctx_.n1);

    int m1_rem = 0;
    for (int u = 0; u < ctx_.n1; ++u)
      for (int w : ctx_.g1.Neighbors(u))
        if (u < w && (s.map1to2[u] < 0 || s.map1to2[w] < 0)) ++m1_rem;
    int m2_rem = 0;
    for (int v = 0; v < ctx_.n2; ++v)
      for (int x : ctx_.g2.Neighbors(v))
        if (v < x && (!(s.used >> v & 1) || !(s.used >> x & 1))) ++m2_rem;
    return node_lb + std::abs(m1_rem - m2_rem);
  }

  NodeMatching ExtractMatching(const SearchState& s) const {
    NodeMatching m(static_cast<size_t>(ctx_.n1));
    for (int u = 0; u < ctx_.n1; ++u) {
      OTGED_CHECK(s.map1to2[u] >= 0);
      m[u] = s.map1to2[u];
    }
    return m;
  }

  // ---- structure-of-arrays do/undo fast path ---------------------------

  /// Root DfsState: nothing mapped, counters over the whole graphs.
  DfsState MakeDfs() const {
    DfsState s;
    s.map1to2.assign(static_cast<size_t>(ctx_.n1), -1);
    s.map2to1.assign(static_cast<size_t>(ctx_.n2), -1);
    s.c1_rem = c1_rem_;
    s.c2_rem = c2_rem_;
    s.path_v.assign(static_cast<size_t>(ctx_.n1), -1);
    s.path_delta.assign(static_cast<size_t>(ctx_.n1), 0);
    s.m1_rem = ctx_.g1.NumEdges();
    s.m2_rem = ctx_.g2.NumEdges();
    for (int l = 0; l < ctx_.num_labels; ++l)
      s.surplus += std::max(0, s.c1_rem[l] - s.c2_rem[l]);
    return s;
  }

  /// Same value as Delta, from the SoA state via bit-parallel neighbor
  /// intersection (mapped G1 nodes are exactly the order prefix).
  // otged-lint: hot-path
  int DeltaFast(const DfsState& s, int v) const {
    const int u = ctx_.order[s.depth];
    int c = ctx_.g1_label[u] != ctx_.g2_label[v] ? 1 : 0;
    for (uint64_t m = ctx_.adj1_mask[u] & ctx_.order_prefix[s.depth];
         m != 0; m &= m - 1) {
      const int w = std::countr_zero(m);
      const int mv = s.map1to2[w];
      OTGED_DCHECK(mv >= 0);
      if (!(ctx_.adj2_mask[mv] >> v & 1)) {
        ++c;  // deletion
      } else if (ctx_.g1.edge_label(u, w) != ctx_.g2.edge_label(v, mv)) {
        ++c;  // edge relabel (Appendix H.1)
      }
    }
    for (uint64_t m = ctx_.adj2_mask[v] & s.used; m != 0; m &= m - 1) {
      const int x = std::countr_zero(m);
      const int pre = s.map2to1[x];
      OTGED_DCHECK(pre >= 0);
      if (!(ctx_.adj1_mask[u] >> pre & 1)) ++c;  // insertion
    }
    return c;
  }

  /// Maps order[depth] -> v, charging `delta` (from DeltaFast) and
  /// updating every incremental counter in O(deg). The surplus update
  /// applies the two label decrements in sequence: removing an unmapped
  /// G1 node of label a lowers the surplus iff a was oversubscribed, and
  /// removing an unmapped G2 node of label b raises it iff b was not.
  // otged-lint: hot-path
  void Push(DfsState* s, int v, int delta) const {
    const int u = ctx_.order[s->depth];
    const int a = ctx_.g1_label[u], b = ctx_.g2_label[v];
    if (s->c1_rem[a] > s->c2_rem[a]) --s->surplus;
    --s->c1_rem[a];
    if (s->c1_rem[b] >= s->c2_rem[b]) ++s->surplus;
    --s->c2_rem[b];
    s->m1_rem -=
        std::popcount(ctx_.adj1_mask[u] & ctx_.order_prefix[s->depth]);
    s->m2_rem -= std::popcount(ctx_.adj2_mask[v] & s->used);
    s->map1to2[u] = v;
    s->map2to1[v] = u;
    s->used |= 1ull << v;
    s->path_v[s->depth] = v;
    s->path_delta[s->depth] = delta;
    s->g += delta;
    ++s->depth;
  }

  /// Exact inverse of Push (undo log), in reverse update order.
  // otged-lint: hot-path
  void Pop(DfsState* s) const {
    --s->depth;
    const int u = ctx_.order[s->depth];
    const int v = s->path_v[s->depth];
    s->g -= s->path_delta[s->depth];
    s->used &= ~(1ull << v);
    s->map1to2[u] = -1;
    s->map2to1[v] = -1;
    s->m1_rem +=
        std::popcount(ctx_.adj1_mask[u] & ctx_.order_prefix[s->depth]);
    s->m2_rem += std::popcount(ctx_.adj2_mask[v] & s->used);
    const int a = ctx_.g1_label[u], b = ctx_.g2_label[v];
    ++s->c2_rem[b];
    if (s->c1_rem[b] >= s->c2_rem[b]) --s->surplus;
    ++s->c1_rem[a];
    if (s->c1_rem[a] > s->c2_rem[a]) ++s->surplus;
  }

  /// O(1) admissible heuristic over the SoA state; equals
  /// Heuristic(SearchState) on equivalent states (asserted in tests). At
  /// depth == n1 it equals CompletionCost exactly (surplus and m1_rem
  /// are zero there), so leaves need no separate completion pass.
  // otged-lint: hot-path
  int HeuristicOf(const DfsState& s) const {
    return s.surplus + (ctx_.n2 - ctx_.n1) + std::abs(s.m1_rem - s.m2_rem);
  }

  NodeMatching ExtractMatching(const DfsState& s) const {
    NodeMatching m(static_cast<size_t>(ctx_.n1));
    for (int u = 0; u < ctx_.n1; ++u) {
      OTGED_CHECK(s.map1to2[u] >= 0);
      m[u] = s.map1to2[u];
    }
    return m;
  }

 private:
  SearchContext ctx_;
  std::vector<int> c1_rem_, c2_rem_;
};

}  // namespace otged::internal

#endif  // OTGED_EXACT_SEARCH_COMMON_HPP_
