#include "core/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace otged {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = static_cast<int>(init.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(init.begin()->size());
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : init) {
    OTGED_CHECK(static_cast<int>(row.size()) == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromVector(const std::vector<double>& v) {
  Matrix m(static_cast<int>(v.size()), 1);
  for (size_t i = 0; i < v.size(); ++i) m[static_cast<int>(i)] = v[i];
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  OTGED_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  OTGED_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::operator+(const Matrix& o) const {
  Matrix r = *this;
  r += o;
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  Matrix r = *this;
  r -= o;
  return r;
}

Matrix Matrix::operator*(double s) const {
  Matrix r = *this;
  r *= s;
  return r;
}

Matrix Matrix::operator-() const { return (*this) * -1.0; }

Matrix Matrix::MatMul(const Matrix& o) const {
  OTGED_CHECK(cols_ == o.rows_);
  Matrix r(rows_, o.cols_, 0.0);
  // i-k-j loop order: streams through both operands row-major.
  for (int i = 0; i < rows_; ++i) {
    const double* a = &data_[static_cast<size_t>(i) * cols_];
    double* out = &r.data_[static_cast<size_t>(i) * o.cols_];
    for (int k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = &o.data_[static_cast<size_t>(k) * o.cols_];
      for (int j = 0; j < o.cols_; ++j) out[j] += aik * b[j];
    }
  }
  return r;
}

Matrix Matrix::Transpose() const {
  Matrix r(cols_, rows_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) r(j, i) = (*this)(i, j);
  return r;
}

Matrix Matrix::Hadamard(const Matrix& o) const {
  OTGED_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix r = *this;
  for (size_t i = 0; i < data_.size(); ++i) r.data_[i] *= o.data_[i];
  return r;
}

Matrix Matrix::CwiseDiv(const Matrix& o, double eps) const {
  OTGED_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix r = *this;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = o.data_[i];
    if (eps > 0.0 && std::abs(d) < eps) d = d < 0 ? -eps : eps;
    r.data_[i] /= d;
  }
  return r;
}

Matrix Matrix::Map(const std::function<double(double)>& f) const {
  Matrix r = *this;
  for (double& x : r.data_) x = f(x);
  return r;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

double Matrix::Min() const {
  OTGED_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::Max() const {
  OTGED_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::Dot(const Matrix& o) const {
  OTGED_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  double s = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) s += data_[i] * o.data_[i];
  return s;
}

double Matrix::FrobeniusNorm() const { return std::sqrt(Dot(*this)); }

Matrix Matrix::RowSums() const {
  Matrix r(rows_, 1);
  for (int i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (int j = 0; j < cols_; ++j) s += (*this)(i, j);
    r(i, 0) = s;
  }
  return r;
}

Matrix Matrix::ColSums() const {
  Matrix r(1, cols_);
  for (int j = 0; j < cols_; ++j) {
    double s = 0.0;
    for (int i = 0; i < rows_; ++i) s += (*this)(i, j);
    r(0, j) = s;
  }
  return r;
}

Matrix Matrix::SliceRows(int r0, int r1) const {
  OTGED_CHECK(0 <= r0 && r0 <= r1 && r1 <= rows_);
  Matrix r(r1 - r0, cols_);
  std::copy(data_.begin() + static_cast<size_t>(r0) * cols_,
            data_.begin() + static_cast<size_t>(r1) * cols_,
            r.data_.begin());
  return r;
}

Matrix Matrix::ConcatCols(const Matrix& o) const {
  OTGED_CHECK(rows_ == o.rows_);
  Matrix r(rows_, cols_ + o.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) r(i, j) = (*this)(i, j);
    for (int j = 0; j < o.cols_; ++j) r(i, cols_ + j) = o(i, j);
  }
  return r;
}

Matrix Matrix::ConcatRows(const Matrix& o) const {
  OTGED_CHECK(cols_ == o.cols_);
  Matrix r(rows_ + o.rows_, cols_);
  std::copy(data_.begin(), data_.end(), r.data_.begin());
  std::copy(o.data_.begin(), o.data_.end(),
            r.data_.begin() + data_.size());
  return r;
}

Matrix Matrix::ScaleRows(const Matrix& v) const {
  OTGED_CHECK(v.rows_ == rows_ && v.cols_ == 1);
  Matrix r = *this;
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) r(i, j) *= v(i, 0);
  return r;
}

Matrix Matrix::ScaleCols(const Matrix& v) const {
  OTGED_CHECK(v.rows_ == cols_ && v.cols_ == 1);
  Matrix r = *this;
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) r(i, j) *= v(j, 0);
  return r;
}

bool Matrix::AllFinite() const {
  for (double x : data_)
    if (!std::isfinite(x)) return false;
  return true;
}

double Matrix::MaxAbsDiff(const Matrix& o) const {
  OTGED_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - o.data_[i]));
  return m;
}

}  // namespace otged
