/// \file thread_annotations.hpp
/// \brief Clang capability-attribute macros plus an annotated Mutex /
/// MutexLock / CondVar shim over the std primitives, so the locking
/// discipline of the serving tier is checked at compile time.
///
/// Under clang, `-Wthread-safety` turns the annotations into a static
/// proof obligation: a member declared `GUARDED_BY(mu_)` may only be
/// touched while `mu_` is held, a function declared `REQUIRES(mu_)` may
/// only be called with `mu_` held, and `EXCLUDES(mu_)` rejects
/// re-entrant acquisition. CI builds with `-Werror=thread-safety`, so a
/// missing lock is a build break, not a code-review hope. Other
/// compilers see empty macros and the shim degrades to the plain std
/// types (same layout, same behavior).
///
/// Usage mirrors abseil's mutex discipline:
///
///   class Table {
///    public:
///     void Put(int k, int v) EXCLUDES(mu_) {
///       MutexLock lock(mu_);
///       map_[k] = v;
///     }
///    private:
///     Mutex mu_;
///     std::map<int, int> map_ GUARDED_BY(mu_);
///   };
///
/// Condition waits keep the guarded reads inside the annotated scope by
/// writing the predicate loop explicitly:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
#ifndef OTGED_CORE_THREAD_ANNOTATIONS_HPP_
#define OTGED_CORE_THREAD_ANNOTATIONS_HPP_

#include <condition_variable>
#include <mutex>

// ----------------------------------------------------------- attributes
// The attribute spellings follow the clang Thread Safety Analysis
// documentation; every macro expands to nothing unless the compiler
// understands the `capability` attribute family (clang does, gcc does
// not — gcc builds compile the exact same code minus the proofs).
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OTGED_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef OTGED_THREAD_ANNOTATION__
#define OTGED_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a lockable capability (e.g. a mutex).
#define CAPABILITY(x) OTGED_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY OTGED_THREAD_ANNOTATION__(scoped_lockable)

/// Data member may only be accessed while `x` is held.
#define GUARDED_BY(x) OTGED_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while `x` is held.
#define PT_GUARDED_BY(x) OTGED_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry.
#define REQUIRES(...) \
  OTGED_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function may not be called while holding the listed capabilities.
#define EXCLUDES(...) OTGED_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ACQUIRE(...) \
  OTGED_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases a capability held on entry.
#define RELEASE(...) \
  OTGED_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  OTGED_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) OTGED_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's body is exempt from analysis. Every use
/// must carry a comment justifying why the analysis cannot see the
/// invariant (e.g. cross-object lock transfer in a move constructor).
#define NO_THREAD_SAFETY_ANALYSIS \
  OTGED_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace otged {

/// Annotated exclusive mutex over std::mutex. Prefer MutexLock to raw
/// Lock/Unlock pairs; the raw calls exist for the rare manual protocol
/// and for the shim's own internals.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock; the scoped-capability annotation lets the analysis treat
/// the guard's lifetime as the critical section.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Wait atomically
/// releases and reacquires `mu`, which the analysis models as "requires
/// mu on entry, holds mu on return" — callers keep their guarded reads
/// in the predicate loop around the Wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { WaitImpl(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // The release/reacquire handoff to std::condition_variable is invisible
  // to the analysis, so the impl is exempt: it adopts the already-held
  // native mutex, waits, and releases ownership back to the caller.
  void WaitImpl(Mutex& mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  std::condition_variable cv_;
};

}  // namespace otged

#endif  // OTGED_CORE_THREAD_ANNOTATIONS_HPP_
