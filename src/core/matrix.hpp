/// \file matrix.hpp
/// \brief Dense row-major double matrix — the numeric workhorse of otged.
///
/// The library deliberately hand-rolls a small dense kernel instead of
/// depending on an external BLAS: every OT / GW / autograd operation in the
/// paper reduces to dense matmuls, element-wise maps and reductions on
/// matrices whose sides are bounded by graph size (n <= a few hundred), so
/// a cache-friendly row-major kernel is entirely sufficient.
#ifndef OTGED_CORE_MATRIX_HPP_
#define OTGED_CORE_MATRIX_HPP_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <vector>

#include "core/check.hpp"

namespace otged {

/// Dense row-major matrix of doubles. Vectors are represented as n x 1
/// (column) or 1 x n (row) matrices.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    OTGED_CHECK(rows >= 0 && cols >= 0);
  }
  /// Build from nested initializer list (row by row); used in tests.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }
  static Matrix Ones(int rows, int cols) { return Matrix(rows, cols, 1.0); }
  static Matrix Identity(int n);
  /// Column vector full of `fill`.
  static Matrix ColVec(int n, double fill = 0.0) { return Matrix(n, 1, fill); }
  static Matrix FromVector(const std::vector<double>& v);  // n x 1

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(int r, int c) {
    OTGED_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    OTGED_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  /// Flat access (row-major).
  double& operator[](int i) { return data_[i]; }
  double operator[](int i) const { return data_[i]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  // Arithmetic. All shape mismatches are CHECK failures.
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(double s) const;
  Matrix operator-() const;

  /// Matrix product this(rows x k) * o(k x cols).
  Matrix MatMul(const Matrix& o) const;
  Matrix Transpose() const;
  /// Element-wise (Hadamard) product.
  Matrix Hadamard(const Matrix& o) const;
  /// Element-wise division; denominator entries are clamped away from zero
  /// by `eps` (Sinkhorn-friendly).
  Matrix CwiseDiv(const Matrix& o, double eps = 0.0) const;
  /// Element-wise map.
  Matrix Map(const std::function<double(double)>& f) const;

  double Sum() const;
  double Min() const;
  double Max() const;
  /// Frobenius dot product <this, o>.
  double Dot(const Matrix& o) const;
  double FrobeniusNorm() const;
  /// Sum of each row -> rows x 1; sum of each column -> 1 x cols.
  Matrix RowSums() const;
  Matrix ColSums() const;

  /// Rows [r0, r1) as a new matrix.
  Matrix SliceRows(int r0, int r1) const;
  /// Horizontal concatenation [this | o].
  Matrix ConcatCols(const Matrix& o) const;
  /// Vertical concatenation [this ; o].
  Matrix ConcatRows(const Matrix& o) const;

  /// diag(v) * this, where v is rows x 1.
  Matrix ScaleRows(const Matrix& v) const;
  /// this * diag(v), where v is cols x 1.
  Matrix ScaleCols(const Matrix& v) const;

  bool AllFinite() const;
  /// Max |a - b| over entries; requires equal shape.
  double MaxAbsDiff(const Matrix& o) const;

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

/// Scalar on the left.
inline Matrix operator*(double s, const Matrix& m) { return m * s; }

}  // namespace otged

#endif  // OTGED_CORE_MATRIX_HPP_
