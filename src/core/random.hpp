/// \file random.hpp
/// \brief Deterministic random number utilities.
///
/// All stochastic components (graph generators, weight init, dataset
/// sampling) draw from an explicitly seeded `Rng` so that every test and
/// benchmark in the repository is reproducible bit-for-bit.
#ifndef OTGED_CORE_RANDOM_HPP_
#define OTGED_CORE_RANDOM_HPP_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/check.hpp"

namespace otged {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the
/// handful of draws the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    OTGED_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev`.
  double Normal(double stddev = 1.0) {
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Index sampled from unnormalized non-negative weights.
  int Categorical(const std::vector<double>& weights) {
    OTGED_DCHECK(!weights.empty());
    return std::discrete_distribution<int>(weights.begin(), weights.end())(
        engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Sample `k` distinct indices from [0, n). Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k) {
    OTGED_CHECK(k <= n);
    std::vector<int> idx(n);
    for (int i = 0; i < n; ++i) idx[i] = i;
    for (int i = 0; i < k; ++i) {
      int j = UniformInt(i, n - 1);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace otged

#endif  // OTGED_CORE_RANDOM_HPP_
