/// \file simd.hpp
/// \brief Portable fixed-width SIMD lanes for the solver hot kernels.
///
/// One compile-time ISA is selected from the compiler's target macros —
/// AVX2, SSE2, NEON (aarch64), or a scalar 1-lane fallback — and every
/// kernel is written once against the `VecD` / `VecU64` abstractions
/// below. The selection is static so the kernels inline to raw
/// intrinsics, but each call site still honors a runtime kill switch:
/// `OTGED_SIMD=off` (also `0` / `false`) makes `Enabled()` return false,
/// and every vectorized kernel falls back to its scalar twin. That twin
/// is a separate, always-compiled function (declared next to the public
/// entry point), so tests and benches can A/B the two paths on the same
/// binary regardless of the environment.
///
/// Semantics the kernels rely on:
///  - `VecD` arithmetic is plain IEEE double per lane: no FMA
///    contraction is emitted from these wrappers, so a vector body that
///    preserves the scalar association per lane produces bit-identical
///    lane results (Hungarian / LAPJV reductions depend on this).
///  - `VecU64` add/xor/shift/MulLo are exact mod-2^64, so hash kernels
///    (WL refinement) are bit-identical to their scalar twins.
///  - Horizontal helpers (`HSum`, `HMin`) fix one reduction order per
///    ISA; float kernels that use them are equivalence-tested to a
///    bounded ulp tolerance instead of bit equality.
///  - `Exp` is a vector exp approximation (Cody-Waite reduction plus the
///    Cephes rational) accurate to ~1 ulp over the finite range; scalar
///    twins use std::exp, so exp-heavy kernels are also ulp-tested.
#ifndef OTGED_CORE_SIMD_HPP_
#define OTGED_CORE_SIMD_HPP_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__AVX2__)
#define OTGED_SIMD_ISA_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define OTGED_SIMD_ISA_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define OTGED_SIMD_ISA_NEON 1
#include <arm_neon.h>
#else
#define OTGED_SIMD_ISA_SCALAR 1
#endif

namespace otged {
namespace simd {

/// Runtime kill switch: true unless the environment sets OTGED_SIMD to
/// "off", "0" or "false". Cached after the first call; flip it between
/// runs, not mid-process.
inline bool Enabled() {
  static const bool on = [] {
    const char* e = std::getenv("OTGED_SIMD");
    if (e == nullptr) return true;
    return !(std::strcmp(e, "off") == 0 || std::strcmp(e, "0") == 0 ||
             std::strcmp(e, "false") == 0);
  }();
  return on;
}

#if defined(OTGED_SIMD_ISA_AVX2)

inline constexpr int kDoubleLanes = 4;
inline constexpr const char* kIsaName = "avx2";

/// `kDoubleLanes` IEEE doubles. Thin value wrapper over the native
/// register; all operations are lane-wise and contraction-free.
struct VecD {
  __m256d v;
  static VecD Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VecD Broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecD Zero() { return {_mm256_setzero_pd()}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }
};

inline VecD Min(VecD a, VecD b) { return {_mm256_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm256_max_pd(a.v, b.v)}; }

/// Full-width lane mask (all-ones / all-zeros per lane).
struct MaskD {
  __m256d m;
  /// Bit i set iff lane i is true.
  int MoveMask() const { return _mm256_movemask_pd(m); }
  bool Any() const { return MoveMask() != 0; }
};

inline MaskD CmpLt(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
inline MaskD CmpLe(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
inline MaskD CmpEq(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
}
/// Lane-wise select: mask ? a : b.
inline VecD Blend(MaskD m, VecD a, VecD b) {
  return {_mm256_blendv_pd(b.v, a.v, m.m)};
}
inline MaskD And(MaskD a, MaskD b) { return {_mm256_and_pd(a.m, b.m)}; }

inline double HSum(VecD a) {
  // Fixed order: (l0+l1) + (l2+l3).
  __m128d lo = _mm256_castpd256_pd128(a.v);
  __m128d hi = _mm256_extractf128_pd(a.v, 1);
  __m128d pair = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
  __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
}
inline double HMin(VecD a) {
  __m128d lo = _mm256_castpd256_pd128(a.v);
  __m128d hi = _mm256_extractf128_pd(a.v, 1);
  __m128d pair = _mm_min_pd(lo, hi);
  __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_min_sd(pair, swap));
}
inline double HMax(VecD a) {
  __m128d lo = _mm256_castpd256_pd128(a.v);
  __m128d hi = _mm256_extractf128_pd(a.v, 1);
  __m128d pair = _mm_max_pd(lo, hi);
  __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_max_sd(pair, swap));
}

/// `kDoubleLanes` uint64 lanes (same width as VecD so hash kernels can
/// process the same stride).
struct VecU64 {
  __m256i v;
  static VecU64 Load(const uint64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static VecU64 Broadcast(uint64_t x) {
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  void Store(uint64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  friend VecU64 operator+(VecU64 a, VecU64 b) {
    return {_mm256_add_epi64(a.v, b.v)};
  }
  friend VecU64 operator^(VecU64 a, VecU64 b) {
    return {_mm256_xor_si256(a.v, b.v)};
  }
};

template <int S>
inline VecU64 ShiftRight(VecU64 a) {
  return {_mm256_srli_epi64(a.v, S)};
}

/// Exact 64x64 -> low-64 multiply per lane, composed from 32-bit
/// multiplies (AVX2 has no 64-bit integer multiply).
inline VecU64 MulLo(VecU64 a, VecU64 b) {
  __m256i ah = _mm256_srli_epi64(a.v, 32);
  __m256i bh = _mm256_srli_epi64(b.v, 32);
  __m256i ll = _mm256_mul_epu32(a.v, b.v);
  __m256i lh = _mm256_mul_epu32(a.v, bh);
  __m256i hl = _mm256_mul_epu32(ah, b.v);
  __m256i mid = _mm256_add_epi64(lh, hl);
  return {_mm256_add_epi64(ll, _mm256_slli_epi64(mid, 32))};
}

#elif defined(OTGED_SIMD_ISA_SSE2)

inline constexpr int kDoubleLanes = 2;
inline constexpr const char* kIsaName = "sse2";

struct VecD {
  __m128d v;
  static VecD Load(const double* p) { return {_mm_loadu_pd(p)}; }
  static VecD Broadcast(double x) { return {_mm_set1_pd(x)}; }
  static VecD Zero() { return {_mm_setzero_pd()}; }
  void Store(double* p) const { _mm_storeu_pd(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm_div_pd(a.v, b.v)}; }
};

inline VecD Min(VecD a, VecD b) { return {_mm_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm_max_pd(a.v, b.v)}; }

struct MaskD {
  __m128d m;
  int MoveMask() const { return _mm_movemask_pd(m); }
  bool Any() const { return MoveMask() != 0; }
};

inline MaskD CmpLt(VecD a, VecD b) { return {_mm_cmplt_pd(a.v, b.v)}; }
inline MaskD CmpLe(VecD a, VecD b) { return {_mm_cmple_pd(a.v, b.v)}; }
inline MaskD CmpEq(VecD a, VecD b) { return {_mm_cmpeq_pd(a.v, b.v)}; }
/// Lane-wise select via bitwise ops (SSE2 has no blendv).
inline VecD Blend(MaskD m, VecD a, VecD b) {
  return {_mm_or_pd(_mm_and_pd(m.m, a.v), _mm_andnot_pd(m.m, b.v))};
}
inline MaskD And(MaskD a, MaskD b) { return {_mm_and_pd(a.m, b.m)}; }

inline double HSum(VecD a) {
  __m128d swap = _mm_unpackhi_pd(a.v, a.v);
  return _mm_cvtsd_f64(_mm_add_sd(a.v, swap));
}
inline double HMin(VecD a) {
  __m128d swap = _mm_unpackhi_pd(a.v, a.v);
  return _mm_cvtsd_f64(_mm_min_sd(a.v, swap));
}
inline double HMax(VecD a) {
  __m128d swap = _mm_unpackhi_pd(a.v, a.v);
  return _mm_cvtsd_f64(_mm_max_sd(a.v, swap));
}

struct VecU64 {
  __m128i v;
  static VecU64 Load(const uint64_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static VecU64 Broadcast(uint64_t x) {
    return {_mm_set1_epi64x(static_cast<long long>(x))};
  }
  void Store(uint64_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  friend VecU64 operator+(VecU64 a, VecU64 b) {
    return {_mm_add_epi64(a.v, b.v)};
  }
  friend VecU64 operator^(VecU64 a, VecU64 b) {
    return {_mm_xor_si128(a.v, b.v)};
  }
};

template <int S>
inline VecU64 ShiftRight(VecU64 a) {
  return {_mm_srli_epi64(a.v, S)};
}

inline VecU64 MulLo(VecU64 a, VecU64 b) {
  __m128i ah = _mm_srli_epi64(a.v, 32);
  __m128i bh = _mm_srli_epi64(b.v, 32);
  __m128i ll = _mm_mul_epu32(a.v, b.v);
  __m128i lh = _mm_mul_epu32(a.v, bh);
  __m128i hl = _mm_mul_epu32(ah, b.v);
  __m128i mid = _mm_add_epi64(lh, hl);
  return {_mm_add_epi64(ll, _mm_slli_epi64(mid, 32))};
}

#elif defined(OTGED_SIMD_ISA_NEON)

inline constexpr int kDoubleLanes = 2;
inline constexpr const char* kIsaName = "neon";

struct VecD {
  float64x2_t v;
  static VecD Load(const double* p) { return {vld1q_f64(p)}; }
  static VecD Broadcast(double x) { return {vdupq_n_f64(x)}; }
  static VecD Zero() { return {vdupq_n_f64(0.0)}; }
  void Store(double* p) const { vst1q_f64(p, v); }
  friend VecD operator+(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {vsubq_f64(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {vdivq_f64(a.v, b.v)}; }
};

inline VecD Min(VecD a, VecD b) { return {vminq_f64(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {vmaxq_f64(a.v, b.v)}; }

struct MaskD {
  uint64x2_t m;
  int MoveMask() const {
    return static_cast<int>((vgetq_lane_u64(m, 0) & 1u) |
                            ((vgetq_lane_u64(m, 1) & 1u) << 1));
  }
  bool Any() const { return MoveMask() != 0; }
};

inline MaskD CmpLt(VecD a, VecD b) { return {vcltq_f64(a.v, b.v)}; }
inline MaskD CmpLe(VecD a, VecD b) { return {vcleq_f64(a.v, b.v)}; }
inline MaskD CmpEq(VecD a, VecD b) { return {vceqq_f64(a.v, b.v)}; }
inline VecD Blend(MaskD m, VecD a, VecD b) {
  return {vbslq_f64(m.m, a.v, b.v)};
}
inline MaskD And(MaskD a, MaskD b) { return {vandq_u64(a.m, b.m)}; }

inline double HSum(VecD a) {
  return vgetq_lane_f64(a.v, 0) + vgetq_lane_f64(a.v, 1);
}
inline double HMin(VecD a) { return vminvq_f64(a.v); }
inline double HMax(VecD a) { return vmaxvq_f64(a.v); }

struct VecU64 {
  uint64x2_t v;
  static VecU64 Load(const uint64_t* p) { return {vld1q_u64(p)}; }
  static VecU64 Broadcast(uint64_t x) { return {vdupq_n_u64(x)}; }
  void Store(uint64_t* p) const { vst1q_u64(p, v); }
  friend VecU64 operator+(VecU64 a, VecU64 b) {
    return {vaddq_u64(a.v, b.v)};
  }
  friend VecU64 operator^(VecU64 a, VecU64 b) {
    return {veorq_u64(a.v, b.v)};
  }
};

template <int S>
inline VecU64 ShiftRight(VecU64 a) {
  return {vshrq_n_u64(a.v, S)};
}

/// NEON has no 64-bit vector multiply; two scalar multiplies match the
/// two-lane width and stay exact mod 2^64.
inline VecU64 MulLo(VecU64 a, VecU64 b) {
  uint64x2_t r = vdupq_n_u64(0);
  r = vsetq_lane_u64(vgetq_lane_u64(a.v, 0) * vgetq_lane_u64(b.v, 0), r, 0);
  r = vsetq_lane_u64(vgetq_lane_u64(a.v, 1) * vgetq_lane_u64(b.v, 1), r, 1);
  return {r};
}

#else  // OTGED_SIMD_ISA_SCALAR

inline constexpr int kDoubleLanes = 1;
inline constexpr const char* kIsaName = "scalar";

struct VecD {
  double v;
  static VecD Load(const double* p) { return {*p}; }
  static VecD Broadcast(double x) { return {x}; }
  static VecD Zero() { return {0.0}; }
  void Store(double* p) const { *p = v; }
  friend VecD operator+(VecD a, VecD b) { return {a.v + b.v}; }
  friend VecD operator-(VecD a, VecD b) { return {a.v - b.v}; }
  friend VecD operator*(VecD a, VecD b) { return {a.v * b.v}; }
  friend VecD operator/(VecD a, VecD b) { return {a.v / b.v}; }
};

inline VecD Min(VecD a, VecD b) { return {a.v < b.v ? a.v : b.v}; }
inline VecD Max(VecD a, VecD b) { return {a.v > b.v ? a.v : b.v}; }

struct MaskD {
  bool m;
  int MoveMask() const { return m ? 1 : 0; }
  bool Any() const { return m; }
};

inline MaskD CmpLt(VecD a, VecD b) { return {a.v < b.v}; }
inline MaskD CmpLe(VecD a, VecD b) { return {a.v <= b.v}; }
inline MaskD CmpEq(VecD a, VecD b) { return {a.v == b.v}; }
inline VecD Blend(MaskD m, VecD a, VecD b) { return m.m ? a : b; }
inline MaskD And(MaskD a, MaskD b) { return {a.m && b.m}; }

inline double HSum(VecD a) { return a.v; }
inline double HMin(VecD a) { return a.v; }
inline double HMax(VecD a) { return a.v; }

struct VecU64 {
  uint64_t v;
  static VecU64 Load(const uint64_t* p) { return {*p}; }
  static VecU64 Broadcast(uint64_t x) { return {x}; }
  void Store(uint64_t* p) const { *p = v; }
  friend VecU64 operator+(VecU64 a, VecU64 b) { return {a.v + b.v}; }
  friend VecU64 operator^(VecU64 a, VecU64 b) { return {a.v ^ b.v}; }
};

template <int S>
inline VecU64 ShiftRight(VecU64 a) {
  return {a.v >> S};
}

inline VecU64 MulLo(VecU64 a, VecU64 b) { return {a.v * b.v}; }

#endif  // ISA select

/// Lane count of the active path: kDoubleLanes when SIMD is enabled,
/// 1 when the env switch forced the scalar twins. This is what benches
/// report as `simd_lanes`.
inline int ActiveDoubleLanes() { return Enabled() ? kDoubleLanes : 1; }

/// Vector exp, Cephes-style: Cody-Waite range reduction against ln 2,
/// the (2,3) rational on the reduced argument, then a 2^n scale via
/// exponent-field assembly. Accurate to ~1 ulp for arguments in
/// [-708, 709]; inputs below/above are clamped (the kernels feed it
/// non-positive shifted arguments, where the clamp is exact zero
/// territory anyway). Matches std::exp to the ulp tolerances the
/// equivalence tests pin; not bit-identical to it.
inline VecD Exp(VecD x) {
  const VecD kHi = VecD::Broadcast(709.436);
  const VecD kLo = VecD::Broadcast(-708.396);
  x = Min(Max(x, kLo), kHi);

  // n = round(x / ln 2), computed as floor(x*log2e + 0.5) so every ISA
  // (and the scalar path) rounds identically. The floor and the 2^n
  // exponent assembly below stay in vector registers — bouncing lanes
  // through memory for scalar int work costs more than the polynomial.
  const VecD kLog2e = VecD::Broadcast(1.4426950408889634074);
  VecD nf = x * kLog2e + VecD::Broadcast(0.5);
#if defined(OTGED_SIMD_ISA_AVX2)
  nf = VecD{_mm256_floor_pd(nf.v)};
#elif defined(OTGED_SIMD_ISA_SSE2)
  {
    // Truncate then step down where truncation rounded up (negatives).
    const __m128d tr = _mm_cvtepi32_pd(_mm_cvttpd_epi32(nf.v));
    nf = VecD{_mm_sub_pd(
        tr, _mm_and_pd(_mm_cmpgt_pd(tr, nf.v), _mm_set1_pd(1.0)))};
  }
#elif defined(OTGED_SIMD_ISA_NEON)
  nf = VecD{vrndmq_f64(nf.v)};
#else
  nf.v = std::floor(nf.v);
#endif

  // r = x - n*ln2 in two pieces (Cody-Waite) keeps r exact to ~2^-60.
  const VecD kC1 = VecD::Broadcast(6.93145751953125e-1);
  const VecD kC2 = VecD::Broadcast(1.42860682030941723212e-6);
  VecD r = x - nf * kC1;
  r = r - nf * kC2;

  // Cephes expansion: exp(r) = 1 + 2 r P(r^2) / (Q(r^2) - r P(r^2)).
  VecD r2 = r * r;
  VecD p = VecD::Broadcast(1.26177193074810590878e-4);
  p = p * r2 + VecD::Broadcast(3.02994407707441961300e-2);
  p = p * r2 + VecD::Broadcast(9.99999999999999999910e-1);
  p = p * r;
  VecD q = VecD::Broadcast(3.00198505138664455042e-6);
  q = q * r2 + VecD::Broadcast(2.52448340349684104192e-3);
  q = q * r2 + VecD::Broadcast(2.27265548208155028766e-1);
  q = q * r2 + VecD::Broadcast(2.00000000000000000005e0);
  VecD e = VecD::Broadcast(1.0) + (p + p) / (q - p);

  // Scale by 2^n through the exponent field; n is in [-1075, 1025] after
  // the clamp, split in two halves (floor/ceil of n/2) so each biased
  // exponent stays positive and each factor is a normal number — the
  // product is exactly 2^n either way.
  VecD scale;
#if defined(OTGED_SIMD_ISA_AVX2)
  {
    const __m128i n32 = _mm256_cvttpd_epi32(nf.v);  // nf integral: exact
    const __m128i half = _mm_srai_epi32(n32, 1);
    const __m128i bias = _mm_set1_epi32(1023);
    const __m256i h64 = _mm256_cvtepi32_epi64(_mm_add_epi32(half, bias));
    const __m256i r64 = _mm256_cvtepi32_epi64(
        _mm_add_epi32(_mm_sub_epi32(n32, half), bias));
    scale = VecD{_mm256_mul_pd(
        _mm256_castsi256_pd(_mm256_slli_epi64(h64, 52)),
        _mm256_castsi256_pd(_mm256_slli_epi64(r64, 52)))};
  }
#elif defined(OTGED_SIMD_ISA_SSE2)
  {
    const __m128i n32 = _mm_cvttpd_epi32(nf.v);  // nf integral: exact
    const __m128i half = _mm_srai_epi32(n32, 1);
    const __m128i bias = _mm_set1_epi32(1023);
    const __m128i zero = _mm_setzero_si128();
    // Biased exponents are positive, so zero-extending the two low
    // int32s to int64 lanes is exact.
    const __m128i h64 =
        _mm_unpacklo_epi32(_mm_add_epi32(half, bias), zero);
    const __m128i r64 = _mm_unpacklo_epi32(
        _mm_add_epi32(_mm_sub_epi32(n32, half), bias), zero);
    scale = VecD{_mm_mul_pd(_mm_castsi128_pd(_mm_slli_epi64(h64, 52)),
                            _mm_castsi128_pd(_mm_slli_epi64(r64, 52)))};
  }
#elif defined(OTGED_SIMD_ISA_NEON)
  {
    const int64x2_t n64 = vcvtq_s64_f64(nf.v);  // nf integral: exact
    const int64x2_t half = vshrq_n_s64(n64, 1);
    const int64x2_t bias = vdupq_n_s64(1023);
    const int64x2_t h = vaddq_s64(half, bias);
    const int64x2_t r = vaddq_s64(vsubq_s64(n64, half), bias);
    scale = VecD{vmulq_f64(
        vreinterpretq_f64_s64(vshlq_n_s64(h, 52)),
        vreinterpretq_f64_s64(vshlq_n_s64(r, 52)))};
  }
#else
  {
    const int64_t n = static_cast<int64_t>(nf.v);
    const int64_t half = n >> 1;
    const uint64_t bits1 = static_cast<uint64_t>(half + 1023) << 52;
    const uint64_t bits2 = static_cast<uint64_t>((n - half) + 1023) << 52;
    double s1, s2;
    std::memcpy(&s1, &bits1, sizeof s1);
    std::memcpy(&s2, &bits2, sizeof s2);
    scale.v = s1 * s2;
  }
#endif
  return e * scale;
}

/// Result of a first-argmin scan. `index == -1` iff no entry compared
/// below +inf (empty input or all entries masked out).
struct MinLoc {
  double value = std::numeric_limits<double>::infinity();
  int index = -1;
};

namespace internal {

/// Min + *first* argmin over x[0..n), optionally reading the value as
/// x[j] + excl[j] (callers pass excl[j] = +inf to mask j out, 0.0 to
/// keep it — the add is exact for finite x). Matches the scalar idiom
///   for (j) if (val[j] < best) { best = val[j]; arg = j; }
/// exactly: strict < keeps the first occurrence of the minimum, and the
/// lane fold below picks the smallest index among lanes that tie at the
/// global min, which is the same index the sequential scan keeps.
// otged-lint: hot-path
template <bool kMasked>
inline MinLoc MinFirstIndexImpl(const double* x, const double* excl, int n) {
  MinLoc r;
  // Pass 1: the min value. Min is exact in any order, so a plain vector
  // fold (no index tracking) is both cheap and equal to the sequential
  // running min.
  int j = 0;
  if constexpr (kDoubleLanes > 1) {
    if (n >= kDoubleLanes) {
      VecD vbest = VecD::Broadcast(r.value);
      for (; j + kDoubleLanes <= n; j += kDoubleLanes) {
        VecD cur = VecD::Load(x + j);
        if constexpr (kMasked) cur = cur + VecD::Load(excl + j);
        vbest = Min(vbest, cur);
      }
      const double m = HMin(vbest);
      if (m < r.value) r.value = m;
    }
  }
  for (; j < n; ++j) {
    double cur = x[j];
    if constexpr (kMasked) cur += excl[j];
    if (cur < r.value) r.value = cur;
  }
  // All +inf (empty or fully masked): the sequential strict-< scan would
  // never fire, so the index stays -1.
  if (r.value == std::numeric_limits<double>::infinity()) return r;
  // Pass 2: first index attaining the min — the index the sequential
  // strict-< scan keeps.
  j = 0;
  if constexpr (kDoubleLanes > 1) {
    const VecD target = VecD::Broadcast(r.value);
    for (; j + kDoubleLanes <= n; j += kDoubleLanes) {
      VecD cur = VecD::Load(x + j);
      if constexpr (kMasked) cur = cur + VecD::Load(excl + j);
      const int bits = CmpEq(cur, target).MoveMask();
      if (bits != 0) {
        r.index = j + __builtin_ctz(static_cast<unsigned>(bits));
        return r;
      }
    }
  }
  for (; j < n; ++j) {
    double cur = x[j];
    if constexpr (kMasked) cur += excl[j];
    if (cur == r.value) {
      r.index = j;
      return r;
    }
  }
  return r;
}

}  // namespace internal

/// Min and first argmin of x[0..n).
inline MinLoc MinFirstIndex(const double* x, int n) {
  return internal::MinFirstIndexImpl<false>(x, nullptr, n);
}

/// Min of x[0..n) (+inf when n == 0); exact in any order.
// otged-lint: hot-path
inline double MinValue(const double* x, int n) {
  double best = std::numeric_limits<double>::infinity();
  int j = 0;
  if constexpr (kDoubleLanes > 1) {
    if (n >= kDoubleLanes) {
      VecD vbest = VecD::Broadcast(best);
      for (; j + kDoubleLanes <= n; j += kDoubleLanes)
        vbest = Min(vbest, VecD::Load(x + j));
      const double m = HMin(vbest);
      if (m < best) best = m;
    }
  }
  for (; j < n; ++j)
    if (x[j] < best) best = x[j];
  return best;
}

/// First index with x[j] == value, or -1. Early-exits on the first
/// matching block, so callers that already know the min pay ~argmin/L
/// loads.
// otged-lint: hot-path
inline int FirstEqIndex(const double* x, int n, double value) {
  int j = 0;
  if constexpr (kDoubleLanes > 1) {
    const VecD target = VecD::Broadcast(value);
    for (; j + kDoubleLanes <= n; j += kDoubleLanes) {
      const int bits = CmpEq(VecD::Load(x + j), target).MoveMask();
      if (bits != 0) return j + __builtin_ctz(static_cast<unsigned>(bits));
    }
  }
  for (; j < n; ++j)
    if (x[j] == value) return j;
  return -1;
}

/// Min and first argmin of x[j] + excl[j] over [0..n); excl[j] = +inf
/// masks j out, 0.0 keeps it.
inline MinLoc MinFirstIndexMasked(const double* x, const double* excl,
                                  int n) {
  return internal::MinFirstIndexImpl<true>(x, excl, n);
}

/// Exact sum of |a[i] - b[i]| over n int32 entries (widened to 64-bit
/// before accumulating, so it cannot overflow for any graph we store).
// otged-lint: hot-path
inline long L1DiffI32(const int32_t* a, const int32_t* b, int n) {
  long total = 0;
  int i = 0;
#if defined(OTGED_SIMD_ISA_AVX2)
  __m256i acc = _mm256_setzero_si256();  // 4 x u64
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i d = _mm256_abs_epi32(_mm256_sub_epi32(va, vb));
    acc = _mm256_add_epi64(acc, _mm256_unpacklo_epi32(d, zero));
    acc = _mm256_add_epi64(acc, _mm256_unpackhi_epi32(d, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  total = static_cast<long>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
#elif defined(OTGED_SIMD_ISA_SSE2)
  __m128i acc = _mm_setzero_si128();  // 2 x u64
  const __m128i zero = _mm_setzero_si128();
  for (; i + 4 <= n; i += 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    __m128i d = _mm_sub_epi32(va, vb);
    __m128i s = _mm_srai_epi32(d, 31);  // abs = (d ^ s) - s
    d = _mm_sub_epi32(_mm_xor_si128(d, s), s);
    acc = _mm_add_epi64(acc, _mm_unpacklo_epi32(d, zero));
    acc = _mm_add_epi64(acc, _mm_unpackhi_epi32(d, zero));
  }
  alignas(16) uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  total = static_cast<long>(lanes[0] + lanes[1]);
#elif defined(OTGED_SIMD_ISA_NEON)
  uint64x2_t acc = vdupq_n_u64(0);
  for (; i + 4 <= n; i += 4) {
    int32x4_t va = vld1q_s32(a + i);
    int32x4_t vb = vld1q_s32(b + i);
    uint32x4_t d = vreinterpretq_u32_s32(vabdq_s32(va, vb));
    acc = vpadalq_u32(acc, d);
  }
  total = static_cast<long>(vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1));
#endif
  for (; i < n; ++i)
    total += a[i] < b[i] ? static_cast<long>(b[i]) - a[i]
                         : static_cast<long>(a[i]) - b[i];
  return total;
}

}  // namespace simd
}  // namespace otged

#endif  // OTGED_CORE_SIMD_HPP_
