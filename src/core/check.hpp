/// \file check.hpp
/// \brief Lightweight invariant-checking macros used across otged.
///
/// Following the database-engine convention (Arrow/RocksDB), hot paths do
/// not throw; internal invariants are enforced with CHECK macros that
/// abort with a readable message. `OTGED_CHECK` is always on (cheap
/// comparisons only); `OTGED_DCHECK` compiles out in NDEBUG builds.
#ifndef OTGED_CORE_CHECK_HPP_
#define OTGED_CORE_CHECK_HPP_

#include <cstdio>
#include <cstdlib>

#define OTGED_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "OTGED_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define OTGED_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "OTGED_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                                  \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define OTGED_DCHECK(cond) ((void)0)
#else
#define OTGED_DCHECK(cond) OTGED_CHECK(cond)
#endif

#endif  // OTGED_CORE_CHECK_HPP_
