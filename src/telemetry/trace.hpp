/// \file trace.hpp
/// \brief Per-candidate cascade tracing with bounded memory.
///
/// While metrics aggregate, traces explain: when tracing is enabled the
/// QueryEngine records one TraceEvent per (query, candidate) cascade
/// decision — which tier settled the pair, the bound values that did it,
/// solver effort, cache outcome and per-tier wall time. Events land in a
/// fixed-capacity ring buffer (oldest overwritten first, overwrites
/// counted), so tracing a long-running server costs a constant amount of
/// memory no matter how many queries it serves. The buffer is dumpable as
/// a JSON array for offline analysis.
///
/// Tracing is off by default (metrics stay on): each event is dozens of
/// bytes and a clock read per tier, which is real hot-path weight. Turn
/// it on around the window you want to inspect:
///
///   telemetry::GlobalTrace().SetEnabled(true);
///   ... serve queries ...
///   std::string json = telemetry::GlobalTrace().DumpJson();
#ifndef OTGED_TELEMETRY_TRACE_HPP_
#define OTGED_TELEMETRY_TRACE_HPP_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"

namespace otged {
namespace telemetry {

/// One (query, candidate) cascade decision. `tier` matches
/// CascadeTier: 0 invariant, 1 branch, 2 heuristic, 3 ot, 4 exact,
/// 5 bound-cache hit.
struct TraceEvent {
  uint64_t query_id = 0;   ///< engine-assigned per-query trace id
  int graph_id = -1;       ///< stable store id of the candidate
  int tier = -1;           ///< deciding tier (CascadeTier as int)
  int lb = -1;             ///< best admissible lower bound established
  int ub = -1;             ///< best feasible upper bound (-1: none needed)
  int ged = -1;            ///< reported distance (-1: dismissed by a LB)
  bool within = false;     ///< candidate passed (GED <= tau)
  bool exact = false;      ///< `ged` proven exact
  bool cache_hit = false;  ///< answered from the bound cache
  long exact_expansions = 0;  ///< branch-and-bound nodes visited
  double tier_us[5] = {0, 0, 0, 0, 0};  ///< wall time spent in each tier
  double total_us = 0;     ///< end-to-end evaluation wall time
};

/// Fixed-capacity concurrent ring buffer of TraceEvents. Record takes a
/// mutex — tracing is an opt-in debugging mode, not part of the always-on
/// metrics path, so simplicity wins over lock-freedom here.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 8192);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Replaces the buffer with an empty one of the new capacity.
  void SetCapacity(size_t capacity) EXCLUDES(mu_);
  size_t capacity() const EXCLUDES(mu_);

  void Record(const TraceEvent& event) EXCLUDES(mu_);

  /// Events currently buffered, oldest first.
  std::vector<TraceEvent> Events() const EXCLUDES(mu_);
  /// Events(), then clear the buffer (recorded/dropped totals persist).
  std::vector<TraceEvent> Drain() EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

  size_t Size() const EXCLUDES(mu_);
  /// Events ever recorded / overwritten before being read.
  uint64_t TotalRecorded() const EXCLUDES(mu_);
  uint64_t Dropped() const EXCLUDES(mu_);

  /// The buffered events as a JSON array (one object per event), plus a
  /// trailing meta object with recorded/dropped totals.
  std::string DumpJson() const EXCLUDES(mu_);

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
  size_t capacity_ GUARDED_BY(mu_);
  size_t head_ GUARDED_BY(mu_) = 0;  ///< next overwrite slot when full
  uint64_t recorded_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// The process-wide sink the QueryEngine records into.
TraceSink& GlobalTrace();

}  // namespace telemetry
}  // namespace otged

#endif  // OTGED_TELEMETRY_TRACE_HPP_
