/// \file metrics.hpp
/// \brief Process-wide lock-free metrics registry for the serving tier.
///
/// Three metric kinds, all safe to update from any thread without taking
/// a lock on the hot path:
///
///   Counter    monotone sum, sharded into cache-line-padded per-thread
///              atomic cells; Inc is one relaxed fetch_add on the
///              caller's stripe, so increments from the work-stealing
///              pool never serialize against each other.
///   Gauge      last-written value (Set) or running signed sum (Add) in
///              a single atomic — used for levels like queue depth or
///              the store epoch where sharding has no meaning.
///   Histogram  log-linear bucketed distribution (8 sub-buckets per
///              power of two => <= 12.5% relative bucket width, exact
///              below 16), buckets sharded into per-thread stripes like
///              counters. Record is two relaxed fetch_adds. Percentiles
///              are estimated from the bucket midpoint at read time.
///
/// Metrics are registered by name on first use and never removed, so a
/// `Counter&` obtained once (typically via a function-local static in an
/// OTGED_* macro below) stays valid for the process lifetime. Names may
/// carry Prometheus-style labels inline: `otged_foo_total{tier="exact"}`.
/// Reading is always available: `Registry().Snapshot()` aggregates every
/// stripe into plain numbers without stopping writers (counts are
/// monotone, so a concurrent snapshot is simply a valid slightly-earlier
/// or slightly-later view).
///
/// Cost when off:
///   * compile time — defining OTGED_TELEMETRY_DISABLED turns every
///     OTGED_* macro into `do {} while (0)`: no statics, no branches, no
///     registry reference survives in the object code;
///   * run time — telemetry::SetEnabled(false) short-circuits the macros
///     to one relaxed atomic-bool load.
#ifndef OTGED_TELEMETRY_METRICS_HPP_
#define OTGED_TELEMETRY_METRICS_HPP_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"

namespace otged {
namespace telemetry {

#ifdef OTGED_TELEMETRY_DISABLED
#define OTGED_TELEMETRY_COMPILED 0
#else
#define OTGED_TELEMETRY_COMPILED 1
#endif

/// Runtime master switch (default on). Flipping it only gates *new*
/// updates; already-registered metrics keep their values.
bool Enabled();
void SetEnabled(bool enabled);

/// Monotonic microsecond clock for latency metrics.
inline double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace internal {

constexpr int kStripes = 16;  ///< per-thread cell stripes per metric

/// Stable stripe for the calling thread (round-robin assignment).
int ThreadStripe();

struct alignas(64) PaddedAtomic {
  std::atomic<long> v{0};
};

}  // namespace internal

/// Monotone counter; Inc is wait-free (one relaxed fetch_add).
class Counter {
 public:
  // otged-lint: hot-path
  void Inc(long n = 1) {
    cells_[internal::ThreadStripe()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  long Value() const {
    long total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  internal::PaddedAtomic cells_[internal::kStripes];
};

/// Level metric: Set publishes an absolute value, Add adjusts it (both on
/// one atomic — gauges track shared levels, not per-thread sums).
class Gauge {
 public:
  // otged-lint: hot-path
  void Set(long v) { value_.store(v, std::memory_order_relaxed); }
  // otged-lint: hot-path
  void Add(long n) { value_.fetch_add(n, std::memory_order_relaxed); }
  long Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<long> value_{0};
};

/// Log-linear histogram bucket geometry, shared by the live histogram and
/// its snapshots. Values are non-negative integers (latencies in us).
struct HistogramBuckets {
  static constexpr int kSubBits = 3;  ///< 8 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kLinear = 2 * kSub;  ///< exact buckets for v < 16
  static constexpr int kMaxMajor = 62;
  static constexpr int kCount =
      kLinear + (kMaxMajor - kSubBits - 1) * kSub + kSub;

  static int BucketOf(long v);
  /// Smallest value mapping to bucket `b` (inclusive).
  static long LowerBound(int b);
  /// Largest value mapping to bucket `b` (inclusive).
  static long UpperBound(int b);
  /// Representative value reported for samples in bucket `b`.
  static double Midpoint(int b);
};

/// Aggregated histogram state, detached from the atomics.
struct HistogramSnapshot {
  long count = 0;
  long sum = 0;
  std::vector<std::pair<int, long>> buckets;  ///< (bucket index, count), asc

  double Mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0;
  }
  /// Nearest-rank percentile estimate (bucket midpoint); q in [0, 1].
  double Percentile(double q) const;
  /// Upper bound of the highest non-empty bucket (0 when empty).
  long Max() const;
};

/// Distribution metric; Record is wait-free (two relaxed fetch_adds on
/// the caller's stripe).
class Histogram {
 public:
  Histogram();
  void Record(long value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  struct alignas(64) Stripe {
    std::atomic<long> sum{0};
    std::atomic<long> count{0};
  };
  // buckets_[stripe * kCount + bucket]; flat so one allocation serves all
  // stripes and aggregation is a linear sweep.
  std::vector<std::atomic<uint32_t>> buckets_;
  Stripe stripes_[internal::kStripes];
};

struct MetricsSnapshot {
  struct Named {
    std::string name;  ///< full name, possibly with {labels}
    std::string help;
    long value = 0;
  };
  struct NamedHistogram {
    std::string name;
    std::string help;
    HistogramSnapshot hist;
  };
  std::vector<Named> counters;            ///< sorted by name
  std::vector<Named> gauges;              ///< sorted by name
  std::vector<NamedHistogram> histograms; ///< sorted by name

  /// Counter value by exact full name, or `fallback` when absent.
  long CounterValue(const std::string& name, long fallback = 0) const;
};

/// Name -> metric table. Registration takes a mutex (first use per call
/// site only); updates through the returned references are lock-free.
/// Returned references are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name, const std::string& help = "")
      EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name, const std::string& help = "")
      EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name,
                          const std::string& help = "") EXCLUDES(mu_);

  /// Aggregates every metric into plain values. Never blocks writers.
  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  /// Zeroes every registered metric (handles stay valid). Meant for test
  /// isolation and `search_cli metrics`; concurrent updates are not lost
  /// atomically-with the reset, they simply land after it.
  void Reset() EXCLUDES(mu_);

 private:
  template <typename M>
  struct Entry {
    std::unique_ptr<M> metric;
    std::string help;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, Entry<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Entry<Histogram>> histograms_ GUARDED_BY(mu_);
};

/// The process-wide registry every OTGED_* macro records into.
MetricsRegistry& Registry();

}  // namespace telemetry
}  // namespace otged

// ---------------------------------------------------------------- macros
// Instrumentation sites use these so a build with OTGED_TELEMETRY_DISABLED
// contains no telemetry code at all. The `static` reference makes the
// registry lookup a one-time cost per call site.
#if OTGED_TELEMETRY_COMPILED

#define OTGED_TELEMETRY_ON() (::otged::telemetry::Enabled())

#define OTGED_COUNT_N(name, help, n)                                      \
  do {                                                                    \
    if (::otged::telemetry::Enabled()) {                                  \
      static ::otged::telemetry::Counter& otged_counter_ =                \
          ::otged::telemetry::Registry().GetCounter((name), (help));      \
      otged_counter_.Inc(n);                                              \
    }                                                                     \
  } while (0)

#define OTGED_GAUGE_SET(name, help, v)                                    \
  do {                                                                    \
    if (::otged::telemetry::Enabled()) {                                  \
      static ::otged::telemetry::Gauge& otged_gauge_ =                    \
          ::otged::telemetry::Registry().GetGauge((name), (help));        \
      otged_gauge_.Set(v);                                                \
    }                                                                     \
  } while (0)

#define OTGED_GAUGE_ADD(name, help, n)                                    \
  do {                                                                    \
    if (::otged::telemetry::Enabled()) {                                  \
      static ::otged::telemetry::Gauge& otged_gauge_ =                    \
          ::otged::telemetry::Registry().GetGauge((name), (help));        \
      otged_gauge_.Add(n);                                                \
    }                                                                     \
  } while (0)

#define OTGED_HIST_RECORD(name, help, value)                              \
  do {                                                                    \
    if (::otged::telemetry::Enabled()) {                                  \
      static ::otged::telemetry::Histogram& otged_hist_ =                 \
          ::otged::telemetry::Registry().GetHistogram((name), (help));    \
      otged_hist_.Record(value);                                          \
    }                                                                     \
  } while (0)

#else  // telemetry compiled out

#define OTGED_TELEMETRY_ON() (false)
#define OTGED_COUNT_N(name, help, n) do {} while (0)
#define OTGED_GAUGE_SET(name, help, v) do {} while (0)
#define OTGED_GAUGE_ADD(name, help, n) do {} while (0)
#define OTGED_HIST_RECORD(name, help, value) do {} while (0)

#endif  // OTGED_TELEMETRY_COMPILED

#define OTGED_COUNT(name, help) OTGED_COUNT_N(name, help, 1)

#endif  // OTGED_TELEMETRY_METRICS_HPP_
