/// \file export.hpp
/// \brief Render a MetricsSnapshot as Prometheus text or JSON.
///
/// Both exporters work on a detached MetricsSnapshot, so scraping never
/// blocks the hot path. Metric names may carry inline Prometheus labels
/// (`name{key="v"}`); the Prometheus exporter groups label variants under
/// one `# TYPE` family and splices the `le` label into histogram bucket
/// lines, emitting only non-empty buckets (cumulatively) plus `+Inf`,
/// `_sum` and `_count`. The JSON exporter reports histograms as summary
/// objects (count / sum / mean / p50 / p90 / p95 / p99 / max) — the shape
/// `search_cli metrics` and the bench reports consume.
#ifndef OTGED_TELEMETRY_EXPORT_HPP_
#define OTGED_TELEMETRY_EXPORT_HPP_

#include <string>

#include "telemetry/metrics.hpp"

namespace otged {
namespace telemetry {

/// Prometheus text exposition format (version 0.0.4).
std::string ToPrometheusText(const MetricsSnapshot& snap);

/// {"counters": {...}, "gauges": {...}, "histograms": {name: summary}}.
std::string ToJson(const MetricsSnapshot& snap);

}  // namespace telemetry
}  // namespace otged

#endif  // OTGED_TELEMETRY_EXPORT_HPP_
