/// \file bench_report.hpp
/// \brief Persisted `BENCH_*.json` performance-trajectory records.
///
/// Every serving benchmark distills its run into one flat JSON document
/// committed at the repository root (e.g. `BENCH_search.json`), so the
/// performance trajectory accumulates in git history: each revision's
/// file carries the rev that produced it, and diffing the file across
/// commits is the perf curve the ROADMAP asks re-anchors to read.
///
/// Schema (all keys always present; validated by
/// `tools/validate_bench_json.py` in the CI bench-smoke job):
///
///   {
///     "bench":        string   benchmark name
///     "git_rev":      string   producing revision ("unknown" outside git)
///     "timestamp":    integer  unix seconds at write time
///     "threads":      integer  worker threads used
///     "corpus_size":  integer  graphs in the store
///     "num_queries":  integer  queries timed
///     "qps":          number   queries per second
///     "latency_ms":   {"p50": number, "p95": number, "p99": number}
///     "tier_fractions": {"invariant","branch","heuristic","ot","exact",
///                        "cache": number}   fraction of candidate pairs
///                                           settled per tier (sums to 1)
///     "cache_hit_rate": number  bound-cache hits / candidate pairs
///   }
#ifndef OTGED_TELEMETRY_BENCH_REPORT_HPP_
#define OTGED_TELEMETRY_BENCH_REPORT_HPP_

#include <string>
#include <vector>

namespace otged {
namespace telemetry {

struct BenchReport {
  std::string bench;
  int threads = 0;
  int corpus_size = 0;
  int num_queries = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Indexed by CascadeTier (0..5: invariant, branch, heuristic, ot,
  /// exact, cache); fraction of candidate pairs settled by each tier.
  double tier_fractions[6] = {0, 0, 0, 0, 0, 0};
  double cache_hit_rate = 0.0;
};

/// The current git revision: $GITHUB_SHA if set, else `git rev-parse
/// HEAD`, else "unknown". Never fails.
std::string GitRevision();

/// Nearest-rank percentile of a latency sample set; q in [0, 1].
double PercentileOf(std::vector<double> samples, double q);

/// Serializes `report` (git_rev and timestamp are stamped here) to
/// `path`. Returns false and fills `error` on I/O failure.
bool WriteBenchJson(const BenchReport& report, const std::string& path,
                    std::string* error);

}  // namespace telemetry
}  // namespace otged

#endif  // OTGED_TELEMETRY_BENCH_REPORT_HPP_
