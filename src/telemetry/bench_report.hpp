/// \file bench_report.hpp
/// \brief Persisted `BENCH_*.json` performance-trajectory records.
///
/// Every serving benchmark distills its run into one flat JSON document
/// committed at the repository root (e.g. `BENCH_search.json`), so the
/// performance trajectory accumulates in git history: each revision's
/// file carries the rev that produced it, and diffing the file across
/// commits is the perf curve the ROADMAP asks re-anchors to read.
///
/// Schema (all keys always present; validated by
/// `tools/validate_bench_json.py` in the CI bench-smoke job):
///
///   {
///     "bench":        string   benchmark name
///     "git_rev":      string   producing revision ("unknown" outside git)
///     "timestamp":    integer  unix seconds at write time
///     "threads":      integer  worker threads used
///     "corpus_size":  integer  graphs in the store
///     "num_queries":  integer  queries timed
///     "qps":          number   queries per second
///     "latency_ms":   {"p50": number, "p95": number, "p99": number}
///     "tier_fractions": {"invariant","branch","heuristic","ot","exact",
///                        "cache","index": number}  fraction of candidate
///                                           pairs settled per tier
///                                           (sums to 1; "index" = pairs
///                                           the GraphIndex dismissed
///                                           before the cascade ran)
///     "cache_hit_rate": number  bound-cache hits / candidate pairs
///   }
///
/// Two optional sections (emitted when the producing bench measured
/// them; validated when present):
///
///   "cache": {            warm-cache methodology of the SLO phase
///     "repeat_ratio":  number  fraction of SLO queries that repeat an
///                              earlier query verbatim
///     "warm_hit_rate": number  bound-cache hit rate over the warm pass
///     "warm_lookups":  integer cache lookups in the warm pass
///   }
///   "index": {            GraphIndex candidate-generation quality
///     "candidate_fraction":      number  candidates / (queries * corpus)
///     "partition_prune_fraction": number  graphs dismissed per level,
///     "label_prune_fraction":     number  as a fraction of all
///     "vptree_prune_fraction":    number  (query, graph) pairs
///   }
#ifndef OTGED_TELEMETRY_BENCH_REPORT_HPP_
#define OTGED_TELEMETRY_BENCH_REPORT_HPP_

#include <string>
#include <vector>

namespace otged {
namespace telemetry {

struct BenchReport {
  std::string bench;
  int threads = 0;
  int corpus_size = 0;
  int num_queries = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Slots 0..5 indexed by CascadeTier (invariant, branch, heuristic,
  /// ot, exact, cache); slot 6 is "index" — pairs the GraphIndex
  /// dismissed before the cascade ran. Fractions of candidate pairs
  /// settled per tier; they partition 1.
  double tier_fractions[7] = {0, 0, 0, 0, 0, 0, 0};
  double cache_hit_rate = 0.0;

  /// Optional warm-cache methodology section (`"cache"` in the JSON);
  /// emitted when `has_cache` is set.
  bool has_cache = false;
  double cache_repeat_ratio = 0.0;
  double cache_warm_hit_rate = 0.0;
  long cache_warm_lookups = 0;

  /// Optional index-quality section (`"index"` in the JSON); emitted
  /// when `has_index` is set.
  bool has_index = false;
  double index_candidate_fraction = 0.0;
  double index_partition_prune_fraction = 0.0;
  double index_label_prune_fraction = 0.0;
  double index_vptree_prune_fraction = 0.0;
};

/// The current git revision: $GITHUB_SHA if set, else `git rev-parse
/// HEAD`, else "unknown". Never fails.
std::string GitRevision();

/// Nearest-rank percentile of a latency sample set; q in [0, 1].
double PercentileOf(std::vector<double> samples, double q);

/// Serializes `report` (git_rev and timestamp are stamped here) to
/// `path`. Returns false and fills `error` on I/O failure.
bool WriteBenchJson(const BenchReport& report, const std::string& path,
                    std::string* error);

}  // namespace telemetry
}  // namespace otged

#endif  // OTGED_TELEMETRY_BENCH_REPORT_HPP_
