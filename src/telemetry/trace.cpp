#include "telemetry/trace.hpp"

#include <cstdio>

namespace otged {
namespace telemetry {

TraceSink::TraceSink(size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_);
}

void TraceSink::SetCapacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity ? capacity : 1;
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
}

size_t TraceSink::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

void TraceSink::Record(const TraceEvent& event) {
  MutexLock lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceSink::Events() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // head_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::vector<TraceEvent> TraceSink::Drain() {
  std::vector<TraceEvent> out = Events();
  Clear();
  return out;
}

void TraceSink::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  head_ = 0;
}

size_t TraceSink::Size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

uint64_t TraceSink::TotalRecorded() const {
  MutexLock lock(mu_);
  return recorded_;
}

uint64_t TraceSink::Dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::string TraceSink::DumpJson() const {
  const std::vector<TraceEvent> events = Events();
  uint64_t recorded, dropped;
  {
    MutexLock lock(mu_);
    recorded = recorded_;
    dropped = dropped_;
  }
  std::string out = "[";
  char buf[512];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n  {\"query_id\": %llu, \"graph_id\": %d, \"tier\": %d, "
        "\"lb\": %d, \"ub\": %d, \"ged\": %d, \"within\": %s, "
        "\"exact\": %s, \"cache_hit\": %s, \"exact_expansions\": %ld, "
        "\"tier_us\": [%.1f, %.1f, %.1f, %.1f, %.1f], \"total_us\": %.1f}",
        i == 0 ? "" : ",", static_cast<unsigned long long>(e.query_id),
        e.graph_id, e.tier, e.lb, e.ub, e.ged, e.within ? "true" : "false",
        e.exact ? "true" : "false", e.cache_hit ? "true" : "false",
        e.exact_expansions, e.tier_us[0], e.tier_us[1], e.tier_us[2],
        e.tier_us[3], e.tier_us[4], e.total_us);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "%s\n  {\"meta\": {\"recorded\": %llu, \"dropped\": %llu, "
                "\"buffered\": %zu}}\n]",
                events.empty() ? "" : ",",
                static_cast<unsigned long long>(recorded),
                static_cast<unsigned long long>(dropped), events.size());
  out += buf;
  return out;
}

TraceSink& GlobalTrace() {
  static TraceSink* sink = new TraceSink();  // never dies
  return *sink;
}

}  // namespace telemetry
}  // namespace otged
