#include "telemetry/export.hpp"

#include <cstdarg>
#include <cstdio>

namespace otged {
namespace telemetry {

namespace {

/// Splits `name{key="v"}` into family and label body (no braces).
void SplitName(const std::string& name, std::string* family,
               std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  const size_t close = name.rfind('}');
  *labels = name.substr(brace + 1,
                        close == std::string::npos || close <= brace
                            ? std::string::npos
                            : close - brace - 1);
}

void AppendFmt(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void AppendFmt(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

/// `# HELP` / `# TYPE` header, emitted once per family.
void EmitHeader(std::string* out, std::string* last_family,
                const std::string& family, const std::string& help,
                const char* type) {
  if (family == *last_family) return;
  *last_family = family;
  if (!help.empty())
    AppendFmt(out, "# HELP %s %s\n", family.c_str(), help.c_str());
  AppendFmt(out, "# TYPE %s %s\n", family.c_str(), type);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  std::string family, labels, last_family;

  for (const auto& c : snap.counters) {
    SplitName(c.name, &family, &labels);
    EmitHeader(&out, &last_family, family, c.help, "counter");
    AppendFmt(&out, "%s %ld\n", c.name.c_str(), c.value);
  }
  for (const auto& g : snap.gauges) {
    SplitName(g.name, &family, &labels);
    EmitHeader(&out, &last_family, family, g.help, "gauge");
    AppendFmt(&out, "%s %ld\n", g.name.c_str(), g.value);
  }
  for (const auto& h : snap.histograms) {
    SplitName(h.name, &family, &labels);
    EmitHeader(&out, &last_family, family, h.help, "histogram");
    const std::string label_prefix =
        labels.empty() ? "{" : "{" + labels + ",";
    long cumulative = 0;
    for (const auto& [bucket, count] : h.hist.buckets) {
      cumulative += count;
      AppendFmt(&out, "%s_bucket%sle=\"%ld\"} %ld\n", family.c_str(),
                label_prefix.c_str(), HistogramBuckets::UpperBound(bucket),
                cumulative);
    }
    AppendFmt(&out, "%s_bucket%sle=\"+Inf\"} %ld\n", family.c_str(),
              label_prefix.c_str(), h.hist.count);
    const std::string label_suffix = labels.empty() ? "" : "{" + labels + "}";
    AppendFmt(&out, "%s_sum%s %ld\n", family.c_str(), label_suffix.c_str(),
              h.hist.sum);
    AppendFmt(&out, "%s_count%s %ld\n", family.c_str(), label_suffix.c_str(),
              h.hist.count);
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i)
    AppendFmt(&out, "%s\n    \"%s\": %ld", i == 0 ? "" : ",",
              JsonEscape(snap.counters[i].name).c_str(),
              snap.counters[i].value);
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i)
    AppendFmt(&out, "%s\n    \"%s\": %ld", i == 0 ? "" : ",",
              JsonEscape(snap.gauges[i].name).c_str(), snap.gauges[i].value);
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    AppendFmt(&out,
              "%s\n    \"%s\": {\"count\": %ld, \"sum\": %ld, "
              "\"mean\": %.2f, \"p50\": %.1f, \"p90\": %.1f, \"p95\": %.1f, "
              "\"p99\": %.1f, \"max\": %ld}",
              i == 0 ? "" : ",", JsonEscape(h.name).c_str(), h.hist.count,
              h.hist.sum, h.hist.Mean(), h.hist.Percentile(0.50),
              h.hist.Percentile(0.90), h.hist.Percentile(0.95),
              h.hist.Percentile(0.99), h.hist.Max());
  }
  out += snap.histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace telemetry
}  // namespace otged
