#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>

#include "core/check.hpp"

namespace otged {
namespace telemetry {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

// otged-lint: hot-path
int ThreadStripe() {
  static std::atomic<unsigned> next{0};
  thread_local int stripe =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<unsigned>(kStripes));
  return stripe;
}

}  // namespace internal

// ------------------------------------------------------------- histogram

int HistogramBuckets::BucketOf(long v) {
  if (v < 0) v = 0;
  if (v < kLinear) return static_cast<int>(v);
  const int major =
      static_cast<int>(std::bit_width(static_cast<uint64_t>(v))) - 1;
  if (major > kMaxMajor) return kCount - 1;
  const int sub = static_cast<int>((v >> (major - kSubBits)) & (kSub - 1));
  return kLinear + (major - kSubBits - 1) * kSub + sub;
}

long HistogramBuckets::LowerBound(int b) {
  if (b < kLinear) return b;
  const int major = kSubBits + 1 + (b - kLinear) / kSub;
  const int sub = (b - kLinear) % kSub;
  return static_cast<long>(kSub + sub) << (major - kSubBits);
}

long HistogramBuckets::UpperBound(int b) {
  if (b < kLinear) return b;
  if (b == kCount - 1) return LowerBound(b);  // open-ended top bucket
  return LowerBound(b + 1) - 1;
}

double HistogramBuckets::Midpoint(int b) {
  if (b < kLinear) return b;
  return 0.5 * (static_cast<double>(LowerBound(b)) +
                static_cast<double>(UpperBound(b)));
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count covers
  // ceil(q * count) samples.
  long rank = static_cast<long>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  long seen = 0;
  for (const auto& [bucket, c] : buckets) {
    seen += c;
    if (seen >= rank) return HistogramBuckets::Midpoint(bucket);
  }
  return HistogramBuckets::Midpoint(buckets.back().first);
}

long HistogramSnapshot::Max() const {
  if (buckets.empty()) return 0;
  return HistogramBuckets::UpperBound(buckets.back().first);
}

Histogram::Histogram()
    : buckets_(static_cast<size_t>(internal::kStripes) *
               HistogramBuckets::kCount) {}

// otged-lint: hot-path
void Histogram::Record(long value) {
  const int stripe = internal::ThreadStripe();
  const int bucket = HistogramBuckets::BucketOf(value);
  buckets_[static_cast<size_t>(stripe) * HistogramBuckets::kCount + bucket]
      .fetch_add(1, std::memory_order_relaxed);
  stripes_[stripe].sum.fetch_add(value < 0 ? 0 : value,
                                 std::memory_order_relaxed);
  stripes_[stripe].count.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  std::vector<long> totals(HistogramBuckets::kCount, 0);
  for (int s = 0; s < internal::kStripes; ++s) {
    const size_t base = static_cast<size_t>(s) * HistogramBuckets::kCount;
    for (int b = 0; b < HistogramBuckets::kCount; ++b)
      totals[b] += buckets_[base + b].load(std::memory_order_relaxed);
    snap.sum += stripes_[s].sum.load(std::memory_order_relaxed);
  }
  for (int b = 0; b < HistogramBuckets::kCount; ++b) {
    if (totals[b] != 0) {
      snap.buckets.emplace_back(b, totals[b]);
      snap.count += totals[b];
    }
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& s : stripes_) {
    s.sum.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
  }
}

// -------------------------------------------------------------- registry

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(mu_);
  OTGED_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                      histograms_.find(name) == histograms_.end(),
                  "metric name registered with a different kind");
  auto& entry = counters_[name];
  if (!entry.metric) entry.metric = std::make_unique<Counter>();
  if (entry.help.empty()) entry.help = help;
  return *entry.metric;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(mu_);
  OTGED_CHECK_MSG(counters_.find(name) == counters_.end() &&
                      histograms_.find(name) == histograms_.end(),
                  "metric name registered with a different kind");
  auto& entry = gauges_[name];
  if (!entry.metric) entry.metric = std::make_unique<Gauge>();
  if (entry.help.empty()) entry.help = help;
  return *entry.metric;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  MutexLock lock(mu_);
  OTGED_CHECK_MSG(counters_.find(name) == counters_.end() &&
                      gauges_.find(name) == gauges_.end(),
                  "metric name registered with a different kind");
  auto& entry = histograms_[name];
  if (!entry.metric) entry.metric = std::make_unique<Histogram>();
  if (entry.help.empty()) entry.help = help;
  return *entry.metric;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  for (const auto& [name, entry] : counters_)
    snap.counters.push_back({name, entry.help, entry.metric->Value()});
  for (const auto& [name, entry] : gauges_)
    snap.gauges.push_back({name, entry.help, entry.metric->Value()});
  for (const auto& [name, entry] : histograms_)
    snap.histograms.push_back({name, entry.help, entry.metric->Snapshot()});
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, entry] : counters_) entry.metric->Reset();
  for (auto& [name, entry] : gauges_) entry.metric->Reset();
  for (auto& [name, entry] : histograms_) entry.metric->Reset();
}

long MetricsSnapshot::CounterValue(const std::string& name,
                                   long fallback) const {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return fallback;
}

MetricsRegistry& Registry() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

}  // namespace telemetry
}  // namespace otged
