#include "telemetry/bench_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace otged {
namespace telemetry {

std::string GitRevision() {
  if (const char* sha = std::getenv("GITHUB_SHA"); sha && *sha) return sha;
#if defined(_WIN32)
  return "unknown";
#else
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (!pipe) return "unknown";
  char buf[128] = {0};
  std::string rev;
  if (std::fgets(buf, sizeof(buf), pipe)) rev = buf;
  ::pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r'))
    rev.pop_back();
  // A 40-hex sha1 (or 64-hex sha256) — anything else means git failed.
  if (rev.size() != 40 && rev.size() != 64) return "unknown";
  return rev;
#endif
}

double PercentileOf(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  long rank =
      static_cast<long>(std::ceil(q * static_cast<double>(samples.size())));
  if (rank < 1) rank = 1;
  return samples[rank - 1];
}

bool WriteBenchJson(const BenchReport& report, const std::string& path,
                    std::string* error) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string rev = GitRevision();
  static const char* kTierNames[7] = {"invariant", "branch", "heuristic",
                                      "ot",        "exact",  "cache",
                                      "index"};
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"git_rev\": \"%s\",\n"
               "  \"timestamp\": %lld,\n"
               "  \"threads\": %d,\n"
               "  \"corpus_size\": %d,\n"
               "  \"num_queries\": %d,\n"
               "  \"qps\": %.2f,\n"
               "  \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
               "\"p99\": %.3f},\n",
               report.bench.c_str(), rev.c_str(),
               static_cast<long long>(std::time(nullptr)), report.threads,
               report.corpus_size, report.num_queries, report.qps,
               report.p50_ms, report.p95_ms, report.p99_ms);
  std::fprintf(f, "  \"tier_fractions\": {");
  for (int t = 0; t < 7; ++t)
    std::fprintf(f, "%s\"%s\": %.4f", t == 0 ? "" : ", ", kTierNames[t],
                 report.tier_fractions[t]);
  std::fprintf(f,
               "},\n"
               "  \"cache_hit_rate\": %.4f",
               report.cache_hit_rate);
  if (report.has_cache)
    std::fprintf(f,
                 ",\n  \"cache\": {\"repeat_ratio\": %.4f, "
                 "\"warm_hit_rate\": %.4f, \"warm_lookups\": %ld}",
                 report.cache_repeat_ratio, report.cache_warm_hit_rate,
                 report.cache_warm_lookups);
  if (report.has_index)
    std::fprintf(f,
                 ",\n  \"index\": {\"candidate_fraction\": %.4f, "
                 "\"partition_prune_fraction\": %.4f, "
                 "\"label_prune_fraction\": %.4f, "
                 "\"vptree_prune_fraction\": %.4f}",
                 report.index_candidate_fraction,
                 report.index_partition_prune_fraction,
                 report.index_label_prune_fraction,
                 report.index_vptree_prune_fraction);
  std::fprintf(f, "\n}\n");
  const bool ok = std::fclose(f) == 0;
  if (!ok && error) *error = "write to " + path + " failed";
  return ok;
}

}  // namespace telemetry
}  // namespace otged
